package promote_test

import (
	"sage/internal/core"
	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/nn"
	"sage/internal/sim"
)

// constModel builds a policy whose action is the constant u regardless of
// input: the head's weights are zeroed and every GMM component mean is set
// to u (means are raw, logits uniform, so the mixture mean is exactly u).
// Constant-action models make gate and lifecycle outcomes deterministic
// and order cleanly: u = -1 collapses cwnd to the floor, u = 0 holds it,
// positive u grows it.
func constModel(u float64) *core.Model {
	pol := nn.NewPolicy(nn.PolicyConfig{InDim: gr.StateDim, Enc: 8, Hidden: 8, ResBlocks: 1, K: 3, Seed: 1})
	for _, p := range pol.Params() {
		switch p.Name {
		case "head.W":
			for i := range p.Data {
				p.Data[i] = 0
			}
		case "head.b":
			for i := range p.Data {
				p.Data[i] = 0
			}
			for k := 0; k < pol.GMM.K; k++ {
				p.Data[pol.GMM.K+k] = u // the means block of [logits|means|logstds]
			}
		}
	}
	return &core.Model{Policy: pol, Mask: gr.MaskFull(), GR: gr.Config{}.Fill()}
}

// gateScenes is a cheap two-bucket suite for gate tests: same path, two
// scenario-name families, short enough to replay four times per test.
func gateScenes(dur sim.Time) []netem.Scenario {
	mk := func(name string) netem.Scenario {
		mrtt := 20 * sim.Millisecond
		return netem.Scenario{
			Name:       name,
			Rate:       netem.FlatRate(netem.Mbps(24)),
			MinRTT:     mrtt,
			QueueBytes: netem.BDPBytes(netem.Mbps(24), mrtt),
			Duration:   dur,
		}
	}
	return []netem.Scenario{mk("flat-a"), mk("step-b")}
}
