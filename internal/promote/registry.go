package promote

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"sage/internal/core"
	"sage/internal/safeio"
)

// State is a model's position in the lifecycle state machine.
type State string

const (
	// StateCandidate: published, awaiting a gate verdict.
	StateCandidate State = "candidate"
	// StateIncumbent: the promoted model the fleet serves.
	StateIncumbent State = "incumbent"
	// StateRetired: a former incumbent superseded by a later promotion
	// (kept on the lineage stack — a demotion falls back to it).
	StateRetired State = "retired"
	// StateRejected: failed the promotion gate.
	StateRejected State = "rejected"
	// StateDemoted: promoted, then reverted by the watchdog or operator.
	StateDemoted State = "demoted"
)

// ModelInfo is a registry entry's metadata.
type ModelInfo struct {
	ID          string `json:"id"`
	State       State  `json:"state"`
	Provenance  string `json:"provenance,omitempty"` // who/what trained it
	TrainStep   int    `json:"train_step,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"` // parameter hash (eval identity)
	Note        string `json:"note,omitempty"`        // last transition's note
}

// Meta is the caller-supplied metadata attached at publish time.
type Meta struct {
	ID         string // empty = derived from provenance + fingerprint
	Provenance string
	TrainStep  int
}

// record is one journal line. T is the transition: publish moves a new
// model into StateCandidate; promote makes a candidate the incumbent
// (retiring the previous one); reject and demote are terminal for the
// named model; demote additionally reverts the incumbency to the previous
// lineage entry — one record, one atomic transaction.
type record struct {
	T           string `json:"t"`
	ID          string `json:"id"`
	Provenance  string `json:"provenance,omitempty"`
	TrainStep   int    `json:"train_step,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Note        string `json:"note,omitempty"`
}

// Registry is the versioned model store. Checkpoints live under
// <dir>/models/<id>.model (safeio's atomic checksummed container, written
// *before* the journal records the publish, so a crash between the two
// leaves only a harmless orphan file); the state machine lives in
// <dir>/registry.journal (safeio.AppendLog: CRC per record, fsync per
// append, torn tail truncated on open). All methods are safe for
// concurrent use.
type Registry struct {
	mu      sync.Mutex
	dir     string
	journal *safeio.AppendLog
	off     int64 // journal bytes folded into the state machine so far
	models  map[string]*ModelInfo
	lineage []string // promotion order; top (last) is the incumbent

	// hookPreDemoteAppend, when non-nil, runs between Demote's refresh and
	// its journal append — test seam for the cross-process race where a
	// foreign promotion lands in that window.
	hookPreDemoteAppend func()
}

// JournalName is the registry journal file name under the registry dir.
const JournalName = "registry.journal"

// ErrNoIncumbent reports a registry in which nothing has been promoted
// yet: there is no model a daemon may legitimately serve.
var ErrNoIncumbent = fmt.Errorf("promote: registry has no incumbent")

// OpenRegistry opens (creating if absent) the registry rooted at dir,
// replaying the journal to rebuild the state machine.
func OpenRegistry(dir string) (*Registry, error) {
	if err := os.MkdirAll(filepath.Join(dir, "models"), 0o755); err != nil {
		return nil, fmt.Errorf("promote: registry dir: %w", err)
	}
	r := &Registry{dir: dir, models: make(map[string]*ModelInfo)}
	j, _, err := safeio.OpenAppendLog(filepath.Join(dir, JournalName), func(payload []byte) {
		var rec record
		if json.Unmarshal(payload, &rec) != nil {
			return // CRC passed but JSON didn't: skip, don't lose the rest
		}
		r.applyLocked(rec)
	})
	if err != nil {
		return nil, fmt.Errorf("promote: open journal: %w", err)
	}
	r.journal = j
	r.off = j.Offset()
	return r, nil
}

// refreshLocked folds journal records other processes (a trainer's
// publish, an operator's promote) appended since the last read. The
// journal is the cross-process coordination point: a long-running daemon
// sees a promotion the moment it next consults the registry.
func (r *Registry) refreshLocked() error {
	off, err := r.journal.ReplayFrom(r.off, func(payload []byte) {
		var rec record
		if json.Unmarshal(payload, &rec) != nil {
			return
		}
		r.applyLocked(rec)
	})
	if err != nil {
		return fmt.Errorf("promote: refresh journal: %w", err)
	}
	r.off = off
	return nil
}

// applyLocked folds one journal record into the in-memory state machine.
// It must accept every record sequence append() ever produced; unknown
// transitions are ignored for forward compatibility.
func (r *Registry) applyLocked(rec record) {
	switch rec.T {
	case "publish":
		r.models[rec.ID] = &ModelInfo{
			ID:          rec.ID,
			State:       StateCandidate,
			Provenance:  rec.Provenance,
			TrainStep:   rec.TrainStep,
			Fingerprint: rec.Fingerprint,
			Note:        rec.Note,
		}
	case "promote":
		m, ok := r.models[rec.ID]
		if !ok {
			return
		}
		if n := len(r.lineage); n > 0 {
			if prev, ok := r.models[r.lineage[n-1]]; ok {
				prev.State = StateRetired
			}
		}
		m.State = StateIncumbent
		m.Note = rec.Note
		r.lineage = append(r.lineage, rec.ID)
	case "reject":
		if m, ok := r.models[rec.ID]; ok {
			m.State = StateRejected
			m.Note = rec.Note
		}
	case "demote":
		n := len(r.lineage)
		if n == 0 || r.lineage[n-1] != rec.ID {
			return
		}
		if m, ok := r.models[rec.ID]; ok {
			m.State = StateDemoted
			m.Note = rec.Note
		}
		r.lineage = r.lineage[:n-1]
		if n >= 2 {
			if m, ok := r.models[r.lineage[n-2]]; ok {
				m.State = StateIncumbent
			}
		}
	}
}

// appendLocked commits one transition: the record is fsynced to the
// journal, then the state machine catches up by replaying the tail — which
// applies our record and any a concurrent process slipped in before it, in
// commit order, exactly once.
func (r *Registry) appendLocked(rec record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := r.journal.Append(payload); err != nil {
		return fmt.Errorf("promote: journal append: %w", err)
	}
	return r.refreshLocked()
}

// Fingerprint hashes a model's parameters (FNV-1a over the float bits):
// two models with the same fingerprint make bitwise-identical decisions,
// so the fingerprint is the eval identity of a checkpoint.
func Fingerprint(m *core.Model) string {
	h := fnv.New64a()
	var b [8]byte
	for _, p := range m.Policy.Params() {
		for _, v := range p.Data {
			bits := math.Float64bits(v)
			for i := 0; i < 8; i++ {
				b[i] = byte(bits >> (8 * i))
			}
			h.Write(b[:])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Publish writes the model checkpoint and journals it as a candidate.
// Returns the assigned id.
func (r *Registry) Publish(m *core.Model, meta Meta) (string, error) {
	fp := Fingerprint(m)
	id := meta.ID
	if id == "" {
		prov := meta.Provenance
		if prov == "" {
			prov = "model"
		}
		id = fmt.Sprintf("%s-%s", prov, fp[:10])
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.refreshLocked(); err != nil {
		return "", err
	}
	if _, exists := r.models[id]; exists {
		return "", fmt.Errorf("promote: model %q already published", id)
	}
	if err := m.Save(r.modelPath(id)); err != nil {
		return "", err
	}
	return id, r.appendLocked(record{
		T: "publish", ID: id,
		Provenance:  meta.Provenance,
		TrainStep:   meta.TrainStep,
		Fingerprint: fp,
	})
}

// Promote makes candidate id the incumbent (retiring the previous one).
func (r *Registry) Promote(id, note string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.refreshLocked(); err != nil {
		return err
	}
	m, ok := r.models[id]
	if !ok {
		return fmt.Errorf("promote: unknown model %q", id)
	}
	if m.State != StateCandidate {
		return fmt.Errorf("promote: model %q is %s, not a candidate", id, m.State)
	}
	return r.appendLocked(record{T: "promote", ID: id, Note: note})
}

// Reject marks candidate id as having failed the gate.
func (r *Registry) Reject(id, note string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.refreshLocked(); err != nil {
		return err
	}
	m, ok := r.models[id]
	if !ok {
		return fmt.Errorf("promote: unknown model %q", id)
	}
	if m.State != StateCandidate {
		return fmt.Errorf("promote: model %q is %s, not a candidate", id, m.State)
	}
	return r.appendLocked(record{T: "reject", ID: id, Note: note})
}

// Demote reverts the current incumbent to the previous one in a single
// journal transaction (one fsynced record flips both states), returning
// the restored incumbent's id. If a concurrent process promotes another
// model between the refresh and the append, the demote record names a
// model that is no longer the lineage top and the state machine drops it;
// Demote verifies the transition actually applied and reports a conflict
// error instead of claiming success, so the caller can retry against the
// fresh state.
func (r *Registry) Demote(note string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.refreshLocked(); err != nil {
		return "", err
	}
	n := len(r.lineage)
	if n == 0 {
		return "", fmt.Errorf("promote: no incumbent to demote")
	}
	if n < 2 {
		return "", fmt.Errorf("promote: no previous incumbent to fall back to")
	}
	victim := r.lineage[n-1]
	if r.hookPreDemoteAppend != nil {
		r.hookPreDemoteAppend()
	}
	if err := r.appendLocked(record{T: "demote", ID: victim, Note: note}); err != nil {
		return "", err
	}
	if m, ok := r.models[victim]; !ok || m.State != StateDemoted {
		top := "(none)"
		if len(r.lineage) > 0 {
			top = r.lineage[len(r.lineage)-1]
		}
		return "", fmt.Errorf("promote: demotion of %q lost to a concurrent promotion (incumbent is now %q); retry against the fresh state", victim, top)
	}
	return r.lineage[len(r.lineage)-1], nil
}

// Refresh folds journal records other processes appended since the last
// read, surfacing journal corruption as an error. The read-only accessors
// (Incumbent, Get, List) refresh best-effort and never fail; callers that
// must not act on a stale view (a daemon reacting to SIGHUP) call Refresh
// first.
func (r *Registry) Refresh() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.refreshLocked()
}

// Incumbent returns the current incumbent's metadata (zero, false when
// nothing has been promoted yet).
func (r *Registry) Incumbent() (ModelInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.refreshLocked() // best effort: serve the freshest view we can read
	if len(r.lineage) == 0 {
		return ModelInfo{}, false
	}
	m, ok := r.models[r.lineage[len(r.lineage)-1]]
	if !ok {
		return ModelInfo{}, false
	}
	return *m, true
}

// Get returns one model's metadata.
func (r *Registry) Get(id string) (ModelInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.refreshLocked()
	m, ok := r.models[id]
	if !ok {
		return ModelInfo{}, false
	}
	return *m, true
}

// List returns every entry, sorted by id.
func (r *Registry) List() []ModelInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.refreshLocked()
	out := make([]ModelInfo, 0, len(r.models))
	for _, m := range r.models {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ModelPath returns where id's checkpoint lives.
func (r *Registry) ModelPath(id string) string { return r.modelPath(id) }

func (r *Registry) modelPath(id string) string {
	return filepath.Join(r.dir, "models", id+".model")
}

// Load reads model id's checkpoint, surfacing safeio corruption errors.
func (r *Registry) Load(id string) (*core.Model, error) {
	r.mu.Lock()
	r.refreshLocked()
	_, ok := r.models[id]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("promote: unknown model %q", id)
	}
	return core.LoadModel(r.modelPath(id))
}

// LoadIncumbent loads the promoted model a (re)starting daemon must
// serve. It never returns a candidate: promotion is only acknowledged
// once its journal record is on disk.
func (r *Registry) LoadIncumbent() (*core.Model, ModelInfo, error) {
	info, ok := r.Incumbent()
	if !ok {
		return nil, ModelInfo{}, ErrNoIncumbent
	}
	m, err := core.LoadModel(r.modelPath(info.ID))
	if err != nil {
		return nil, info, err
	}
	return m, info, nil
}

// Close closes the journal. The registry must not be used afterwards.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.journal.Close()
}
