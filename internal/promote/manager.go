package promote

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"sage/internal/guard"
	"sage/internal/serve"
	"sage/internal/telemetry"
)

// Lifecycle metric names.
const (
	MetricLifecycleSwaps     = "promote.swaps"
	MetricLifecycleDemotions = "promote.demotions"
	// MetricWatchdogMasked counts Tick evaluations skipped because the
	// serving plane was in overload brownout: fallback storms under
	// overload are a capacity problem, not a model regression, and must
	// not demote the incumbent.
	MetricWatchdogMasked = "promote.watchdog_masked"
)

// ManagerConfig wires the lifecycle manager to a live serving plane.
type ManagerConfig struct {
	Registry *Registry
	Engine   *serve.Engine
	// Metrics is the registry the engine and the fleet's guardians report
	// into; the watchdog reads serve.decisions / serve.fallbacks /
	// guard.trips from it and the manager adds the promote.* counters.
	Metrics  *telemetry.Registry
	Watchdog WatchdogConfig
	// Events, when non-nil, receives one JSONL record per swap/demotion.
	Events *telemetry.JSONL
	// OverloadActive reports whether the serving plane is in overload
	// brownout; while true, Tick masks the demotion watchdog (and on
	// recovery rebases its baseline past the brownout-polluted counters).
	// Defaults to Engine.OverloadActive.
	OverloadActive func() bool
}

// LifecycleEvent is the JSONL record of one swap or demotion.
type LifecycleEvent struct {
	Kind   string          `json:"event"` // "swap" or "demote"
	From   string          `json:"from,omitempty"`
	To     string          `json:"to"`
	Reason string          `json:"reason,omitempty"`
	Stats  serve.SwapStats `json:"stats"`
}

// Manager binds the registry to a live engine: it serves the control
// socket's swap/status verbs, arms the demotion watchdog after every
// swap, and reverts to the previous incumbent when the watchdog fires.
// It implements serve.Control. Safe for concurrent use.
type Manager struct {
	cfg   ManagerConfig
	watch *Watchdog

	mu        sync.Mutex
	servingID string // model id currently loaded in the engine
	prevID    string // what the engine served before the watched swap
	masked    bool   // watchdog suppressed by an ongoing overload brownout
}

// NewManager wires a manager. servingID names the model the engine was
// booted with (empty if unknown — the first SyncIncumbent fixes it).
func NewManager(cfg ManagerConfig, servingID string) (*Manager, error) {
	if cfg.Registry == nil || cfg.Engine == nil {
		return nil, errors.New("promote: manager needs a registry and an engine")
	}
	if cfg.OverloadActive == nil {
		cfg.OverloadActive = cfg.Engine.OverloadActive
	}
	return &Manager{cfg: cfg, watch: NewWatchdog(cfg.Watchdog), servingID: servingID}, nil
}

// sample reads the watchdog's counter snapshot from the shared metrics
// registry.
func (m *Manager) sample() WatchSample {
	r := m.cfg.Metrics
	return WatchSample{
		Decisions: r.Counter(serve.MetricDecisions).Value(),
		Fallbacks: r.Counter(serve.MetricFallbacks).Value(),
		Trips:     r.Counter(guard.MetricTrips).Value(),
	}
}

// Serving returns the model id currently loaded in the engine.
func (m *Manager) Serving() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.servingID
}

// Swap implements serve.Control: hot-swap the engine to model id (empty
// id = the registry incumbent), arming the demotion watchdog against the
// pre-swap baseline. The report names the model and the session
// migration outcome.
func (m *Manager) Swap(id string) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.swapLocked(id, true)
}

// SyncIncumbent loads the registry incumbent into the engine if it is
// not already serving (daemon boot, SIGHUP). Unlike an operator swap it
// does not arm the watchdog when nothing changed.
func (m *Manager) SyncIncumbent() (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.cfg.Registry.Refresh(); err != nil {
		return "", err // journal corruption must not be mistaken for "no change"
	}
	info, ok := m.cfg.Registry.Incumbent()
	if !ok {
		return "", ErrNoIncumbent
	}
	if info.ID == m.servingID {
		return fmt.Sprintf("already serving incumbent %s", info.ID), nil
	}
	return m.swapLocked("", true)
}

func (m *Manager) swapLocked(id string, arm bool) (string, error) {
	target := id
	if target == "" {
		info, ok := m.cfg.Registry.Incumbent()
		if !ok {
			return "", ErrNoIncumbent
		}
		target = info.ID
	}
	model, err := m.cfg.Registry.Load(target)
	if err != nil {
		return "", err
	}
	pre := m.sample()
	stats, err := m.cfg.Engine.Swap(model.Policy, model.Mask)
	if err != nil {
		return "", err
	}
	from := m.servingID
	m.prevID = from
	m.servingID = target
	if arm {
		m.watch.Arm(pre)
	}
	m.cfg.Metrics.Counter(MetricLifecycleSwaps).Inc()
	m.cfg.Events.Emit(LifecycleEvent{Kind: "swap", From: from, To: target, Stats: stats})
	return fmt.Sprintf("swapped %s -> %s (%s)", orNone(from), target, stats), nil
}

// Tick drives the watchdog: the daemon calls it periodically after a
// swap. When the watchdog fires, the manager reverts the engine to the
// previous incumbent — and, when the degraded model had actually been
// promoted, demotes it in the registry in one journal transaction — then
// reports (true, reason).
func (m *Manager) Tick() (demoted bool, reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()

	// Overload brownout masks the watchdog: under brownout the engine
	// deliberately floods serve.fallbacks-adjacent behavior (cheap-path
	// decisions, guard brownout trips) that looks exactly like a model
	// regression but is a capacity condition. Demoting a healthy incumbent
	// for it would thrash models at the worst possible moment.
	if m.cfg.OverloadActive != nil && m.cfg.OverloadActive() {
		if m.watch.Armed() {
			m.masked = true
			m.cfg.Metrics.Counter(MetricWatchdogMasked).Inc()
		}
		return false, ""
	}
	if m.masked {
		// Recovery: slide the armed watchdog's counter window past the
		// brownout so fallbacks and trips accumulated while shedding can
		// never be charged to the model (baseline rates are preserved).
		m.masked = false
		if m.watch.Armed() {
			m.watch.Rebase(m.sample())
			return false, ""
		}
	}

	fire, why := m.watch.Observe(m.sample())
	if !fire {
		return false, ""
	}

	// Decide what to fall back to. If the degraded model is the registry
	// incumbent, demote it (the journal transaction flips incumbency to
	// the previous promotion); if it was a forced swap of a non-incumbent
	// candidate, the registry is already right and only the engine needs
	// reverting.
	target := ""
	if info, ok := m.cfg.Registry.Incumbent(); ok && info.ID == m.servingID {
		prev, err := m.cfg.Registry.Demote(why)
		if err != nil {
			// No previous incumbent to fall back to: keep serving (there
			// is nothing better to serve) but surface the verdict.
			m.cfg.Events.Emit(LifecycleEvent{
				Kind: "demote", From: m.servingID, To: m.servingID,
				Reason: why + " (no previous incumbent: " + err.Error() + ")",
			})
			return true, why
		}
		target = prev
	}
	if _, err := m.swapLocked(target, false); err != nil {
		m.cfg.Events.Emit(LifecycleEvent{
			Kind: "demote", From: m.servingID, To: target,
			Reason: why + " (revert failed: " + err.Error() + ")",
		})
		return true, why
	}
	m.cfg.Metrics.Counter(MetricLifecycleDemotions).Inc()
	m.cfg.Events.Emit(LifecycleEvent{Kind: "demote", From: m.prevID, To: m.servingID, Reason: why})
	return true, why
}

// statusDoc is the JSON document Status returns.
type statusDoc struct {
	Serving   string      `json:"serving"`
	Incumbent string      `json:"incumbent,omitempty"`
	Watchdog  bool        `json:"watchdog_armed"`
	Masked    bool        `json:"watchdog_masked,omitempty"`
	Sessions  int         `json:"sessions"`
	Models    []ModelInfo `json:"models"`
}

// Status implements serve.Control.
func (m *Manager) Status() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	doc := statusDoc{
		Serving:  m.servingID,
		Watchdog: m.watch.Armed(),
		Masked:   m.masked,
		Sessions: m.cfg.Engine.Sessions(),
		Models:   m.cfg.Registry.List(),
	}
	if info, ok := m.cfg.Registry.Incumbent(); ok {
		doc.Incumbent = info.ID
	}
	b, err := json.Marshal(doc)
	if err != nil {
		return `{"error":"status marshal failed"}`
	}
	return string(b)
}

func orNone(id string) string {
	if id == "" {
		return "(unknown)"
	}
	return id
}
