package promote

import "fmt"

// WatchdogConfig tunes the automatic demotion watchdog.
type WatchdogConfig struct {
	// TripFactor / FallbackFactor: the post-swap guard trip rate (resp.
	// engine fallback ratio) may grow to this multiple of the pre-swap
	// baseline before the watchdog votes to demote (default 2.0 each).
	TripFactor     float64
	FallbackFactor float64
	// RateFloor is the absolute per-decision rate below which a post-swap
	// rate is never actionable (default 0.01): with a clean baseline of
	// zero, any factor comparison would otherwise demote on a single
	// stray trip.
	RateFloor float64
	// MinDecisions is how many post-swap decisions must accrue before a
	// verdict (default 256): judging a model on ten decisions is noise.
	MinDecisions int64
	// Consecutive is how many successive bad observations demote
	// (default 2): one polluted polling window should not unseat a model.
	Consecutive int
}

func (c WatchdogConfig) fill() WatchdogConfig {
	if c.TripFactor == 0 {
		c.TripFactor = 2.0
	}
	if c.FallbackFactor == 0 {
		c.FallbackFactor = 2.0
	}
	if c.RateFloor == 0 {
		c.RateFloor = 0.01
	}
	if c.MinDecisions == 0 {
		c.MinDecisions = 256
	}
	if c.Consecutive == 0 {
		c.Consecutive = 2
	}
	return c
}

// WatchSample is a cumulative counter snapshot the watchdog compares:
// total decisions served, engine fallback decisions, and guard trips
// (read from the shared telemetry registry).
type WatchSample struct {
	Decisions int64 `json:"decisions"`
	Fallbacks int64 `json:"fallbacks"`
	Trips     int64 `json:"trips"`
}

// Watchdog monitors a freshly swapped-in model against the pre-swap
// baseline and votes to demote when post-swap guard trip rates or
// fallback ratios exceed it. It holds no locks and is driven by a single
// poller (Manager.Tick).
type Watchdog struct {
	cfg       WatchdogConfig
	armed     bool
	base      WatchSample // counters at swap time
	baseTrip  float64     // pre-swap trips per decision
	baseFall  float64     // pre-swap fallbacks per decision
	badStreak int
}

// NewWatchdog builds an unarmed watchdog.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	return &Watchdog{cfg: cfg.fill()}
}

// Arm starts a post-swap observation window: base is the counter
// snapshot at swap time, whose all-time rates become the baseline the
// new model must not exceed.
func (w *Watchdog) Arm(base WatchSample) {
	w.armed = true
	w.base = base
	w.badStreak = 0
	w.baseTrip, w.baseFall = 0, 0
	if base.Decisions > 0 {
		w.baseTrip = float64(base.Trips) / float64(base.Decisions)
		w.baseFall = float64(base.Fallbacks) / float64(base.Decisions)
	}
}

// Disarm stops the observation window (a demotion or an operator ack).
func (w *Watchdog) Disarm() { w.armed = false; w.badStreak = 0 }

// Rebase moves an armed observation window's counter snapshot forward to
// cur while keeping the pre-swap baseline rates and clearing the bad
// streak. The manager calls it when an overload brownout ends: fallbacks
// and trips accumulated while the serving plane was shedding load are a
// capacity artifact and must never be charged to the model — but what
// counted as normal for this model before the swap must not be diluted
// by them either, which is why this is not a re-Arm.
func (w *Watchdog) Rebase(cur WatchSample) {
	if !w.armed {
		return
	}
	w.base = cur
	w.badStreak = 0
}

// Armed reports whether a post-swap window is being observed.
func (w *Watchdog) Armed() bool { return w.armed }

// Observe feeds the current counter snapshot. It returns demote=true
// when the post-swap window has conclusively degraded, with a
// human-readable reason.
func (w *Watchdog) Observe(cur WatchSample) (demote bool, reason string) {
	if !w.armed {
		return false, ""
	}
	d := cur.Decisions - w.base.Decisions
	if d < w.cfg.MinDecisions {
		return false, ""
	}
	tripRate := float64(cur.Trips-w.base.Trips) / float64(d)
	fallRate := float64(cur.Fallbacks-w.base.Fallbacks) / float64(d)
	tripLimit := maxf(w.cfg.RateFloor, w.cfg.TripFactor*w.baseTrip)
	fallLimit := maxf(w.cfg.RateFloor, w.cfg.FallbackFactor*w.baseFall)

	var bad string
	switch {
	case tripRate > tripLimit:
		bad = fmt.Sprintf("guard trip rate %.4f/decision exceeds limit %.4f (pre-swap %.4f)",
			tripRate, tripLimit, w.baseTrip)
	case fallRate > fallLimit:
		bad = fmt.Sprintf("fallback ratio %.4f exceeds limit %.4f (pre-swap %.4f)",
			fallRate, fallLimit, w.baseFall)
	}
	if bad == "" {
		w.badStreak = 0
		return false, ""
	}
	w.badStreak++
	if w.badStreak < w.cfg.Consecutive {
		return false, ""
	}
	w.Disarm()
	return true, bad
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
