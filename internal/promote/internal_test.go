package promote

import (
	"testing"

	"sage/internal/core"
	"sage/internal/gr"
	"sage/internal/nn"
)

func testModel(seed int64) *core.Model {
	pol := nn.NewPolicy(nn.PolicyConfig{InDim: gr.StateDim, Enc: 8, Hidden: 8, ResBlocks: 1, K: 3, Seed: seed})
	return &core.Model{Policy: pol, Mask: gr.MaskFull(), GR: gr.Config{}.Fill()}
}

// Demote must not report success when its journal record lost the race to
// a concurrent promotion from another process: the record names a model
// that is no longer the lineage top, the state machine drops it, and the
// degraded model was never actually demoted.
func TestDemoteLosesToConcurrentPromote(t *testing.T) {
	dir := t.TempDir()
	r1, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	for i, id := range []string{"A", "B", "C"} {
		if _, err := r1.Publish(testModel(int64(i+1)), Meta{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r1.Promote("A", ""); err != nil {
		t.Fatal(err)
	}
	if err := r1.Promote("B", ""); err != nil {
		t.Fatal(err)
	}

	// A second process's handle promotes C in the window between r1's
	// Demote refreshing its view (incumbent = B) and appending its demote
	// record — the exact cross-process race the verification guards.
	r2, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	r1.hookPreDemoteAppend = func() {
		if err := r2.Promote("C", "raced in"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r1.Demote("watchdog fired"); err == nil {
		t.Fatal("Demote reported success though its record was dropped by a concurrent promotion")
	}

	// The registry reflects the promotion, not the phantom demotion: C is
	// the incumbent and B was retired by C's promote, never demoted.
	if info, ok := r1.Incumbent(); !ok || info.ID != "C" {
		t.Fatalf("incumbent = %+v, want C", info)
	}
	if info, ok := r1.Get("B"); !ok || info.State != StateRetired {
		t.Fatalf("B = %+v, want retired", info)
	}

	// A fresh replay of the journal (a restarting daemon) agrees: the
	// dropped demote record stays dropped.
	r3, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Close()
	if info, ok := r3.Incumbent(); !ok || info.ID != "C" {
		t.Fatalf("replayed incumbent = %+v, want C", info)
	}

	// With no interleaved promotion the same demote succeeds and restores B.
	r1.hookPreDemoteAppend = nil
	restored, err := r1.Demote("watchdog fired")
	if err != nil {
		t.Fatal(err)
	}
	if restored != "B" {
		t.Fatalf("restored incumbent = %q, want B", restored)
	}
	if info, ok := r1.Get("C"); !ok || info.State != StateDemoted {
		t.Fatalf("C = %+v, want demoted", info)
	}
}

// Regime tags must not outlive the bounded shadow pool: tagging an
// unbounded stream of session ids keeps the regimes map within twice the
// session cap, and evicting a shadow session drops its tag with it.
func TestShadowRegimeTagsBounded(t *testing.T) {
	const cap = 8
	sh := NewShadow(testModel(1), ShadowConfig{MaxSessions: cap})
	state := make([]float64, gr.StateDim)
	for sid := uint64(1); sid <= 100*cap; sid++ {
		sh.TagSession(sid, "bulk")
		sh.Observe(sid, state, 1.0, false)
	}
	sh.mu.Lock()
	nSess, nTags := len(sh.sessions), len(sh.regimes)
	sh.mu.Unlock()
	if nSess > cap {
		t.Fatalf("session pool holds %d entries, cap is %d", nSess, cap)
	}
	if nTags > 2*cap {
		t.Fatalf("regimes map holds %d entries after 800 tagged sessions, want <= %d", nTags, 2*cap)
	}
	if st := sh.Stats(); st.PerRegime["bulk"].N != int64(100*cap) {
		t.Fatalf("per-regime n = %d, want %d (bounding tags must not drop attribution of live sessions)", st.PerRegime["bulk"].N, 100*cap)
	}
}
