package promote_test

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"sage/internal/chaos"
	"sage/internal/promote"
	"sage/internal/rl"
	"sage/internal/serve"
	"sage/internal/sim"
	"sage/internal/telemetry"
)

// The full model lifecycle, end to end on a live serving plane:
//
//	publish -> shadow -> gate -> promote -> zero-drop hot-swap ->
//	degraded promotion -> watchdog demotion -> journal-backed recovery
//
// The incumbent is a collapse policy (u=-0.75), the candidate a grow
// policy (u=+0.25) — constant-action models whose behavior, divergence,
// and gate ordering are all known in closed form.
func TestLifecycleEndToEnd(t *testing.T) {
	dir := t.TempDir()
	reg, err := promote.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	incumbent := constModel(-0.75)
	candidate := constModel(0.25)

	// Stage 1: bootstrap — publish and promote the first incumbent, then
	// boot the serving plane the way sage-serve does: LoadIncumbent only.
	idA, err := reg.Publish(incumbent, promote.Meta{Provenance: "boot", TrainStep: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote(idA, "bootstrap"); err != nil {
		t.Fatal(err)
	}
	served, servedInfo, err := reg.LoadIncumbent()
	if err != nil {
		t.Fatal(err)
	}

	metrics := telemetry.NewRegistry()
	eng := serve.NewEngine(serve.Config{
		Policy:        served.Policy,
		Mask:          served.Mask,
		MaxBatch:      32,
		BatchDeadline: 50 * time.Microsecond,
		Workers:       2,
		ReprimeWindow: 8,
		Metrics:       metrics,
	})
	eng.Start()
	defer eng.Close()

	mgr, err := promote.NewManager(promote.ManagerConfig{
		Registry: reg,
		Engine:   eng,
		Metrics:  metrics,
		Watchdog: promote.WatchdogConfig{MinDecisions: 32, Consecutive: 1},
	}, servedInfo.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Stage 2: shadow — mirror live decisions onto the candidate. The
	// incumbent acts at u=-0.75, the candidate at +0.25: every mirrored
	// decision diverges by exactly 1.0.
	shadow := promote.NewShadow(candidate, promote.ShadowConfig{Metrics: metrics})
	eng.SetShadow(shadow)

	drive := func(flows, calls int, tag string) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make([]error, flows)
		for f := 0; f < flows; f++ {
			sid := eng.NewSessionID()
			if tag != "" {
				shadow.TagSession(sid, tag)
			}
			wg.Add(1)
			go func(f int, sid uint64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(f)))
				for i := 0; i < calls; i++ {
					if _, _, err := eng.Decide(sid, 100, shadowState(rng.Intn(64))); err != nil {
						errs[f] = err
						return
					}
				}
			}(f, sid)
		}
		wg.Wait()
		for f, err := range errs {
			if err != nil {
				t.Fatalf("%s: flow %d: %v", tag, f, err)
			}
		}
	}
	drive(4, 50, "flat")

	st := shadow.Stats()
	if st.Mirrored != 200 {
		t.Fatalf("shadow mirrored %d decisions, want 200", st.Mirrored)
	}
	if math.Abs(st.MeanAbsDiv-1.0) > 1e-9 {
		t.Fatalf("shadow divergence %v, want exactly 1.0 (=|0.25 - (-0.75)|)", st.MeanAbsDiv)
	}
	if st.PerRegime["flat"].N != 200 {
		t.Fatalf("per-regime stats = %+v, want all 200 in flat", st.PerRegime)
	}

	// Stage 3: gate — the grow policy dominates the collapse policy on
	// the replay suite, and its live divergence is within the ceiling.
	idB, err := reg.Publish(candidate, promote.Meta{Provenance: "trainer", TrainStep: 5000})
	if err != nil {
		t.Fatal(err)
	}
	verdict := promote.RunGate(incumbent, candidate, promote.GateConfig{
		Buckets: gateScenes(2 * sim.Second),
		RelTol:  1e-9, AbsTol: 1e-9,
		Shadow:              &st,
		MaxShadowDivergence: 1.5,
	})
	if !verdict.Promote {
		t.Fatalf("gate rejected the dominating candidate: %s", verdict.Reason)
	}
	if err := reg.Promote(idB, verdict.Reason); err != nil {
		t.Fatal(err)
	}

	// Stage 4: zero-downtime hot-swap under live traffic. Every decision
	// issued across the swap must succeed; afterwards a fresh session
	// must act at the candidate's constant ratio.
	eng.SetShadow(nil)
	before := metrics.Counter(serve.MetricDecisions).Value()
	var wg sync.WaitGroup
	swapErrs := make([]error, 6)
	for f := 0; f < 6; f++ {
		sid := eng.NewSessionID()
		wg.Add(1)
		go func(f int, sid uint64) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if _, _, err := eng.Decide(sid, 100, shadowState(i%64)); err != nil {
					swapErrs[f] = err
					return
				}
			}
		}(f, sid)
	}
	time.Sleep(time.Millisecond)
	report, err := mgr.SyncIncumbent()
	if err != nil {
		t.Fatalf("hot-swap to new incumbent: %v", err)
	}
	if !strings.Contains(report, idB) {
		t.Fatalf("swap report %q does not name %s", report, idB)
	}
	wg.Wait()
	for f, err := range swapErrs {
		if err != nil {
			t.Fatalf("decision dropped across swap (flow %d): %v", f, err)
		}
	}
	if got := metrics.Counter(serve.MetricDecisions).Value() - before; got != 6*300 {
		t.Fatalf("decisions across swap = %d, want %d (dropped requests)", got, 6*300)
	}
	if mgr.Serving() != idB {
		t.Fatalf("manager serving %s, want %s", mgr.Serving(), idB)
	}
	wantRatio := rl.UToRatio(0.25)
	freshSid := eng.NewSessionID()
	cwnd, fallback, err := eng.Decide(freshSid, 100, shadowState(1))
	if err != nil || fallback {
		t.Fatalf("post-swap decision: cwnd=%v fallback=%v err=%v", cwnd, fallback, err)
	}
	if math.Abs(cwnd-100*wantRatio) > 1e-9 {
		t.Fatalf("post-swap action %v, want %v: the engine is not serving the new incumbent", cwnd, 100*wantRatio)
	}
	// A healthy post-swap window keeps the watchdog quiet.
	drive(4, 50, "")
	if demoted, why := mgr.Tick(); demoted {
		t.Fatalf("watchdog demoted a healthy model: %s", why)
	}

	// Stage 5: a degraded promotion (all-NaN weights — chaos-poisoned)
	// forces every decision to the fallback; the watchdog detects the
	// fallback-ratio explosion and demotes back to idB in one journal
	// transaction.
	bad := constModel(0)
	chaos.PoisonPolicy(bad.Policy)
	idC, err := reg.Publish(bad, promote.Meta{Provenance: "operator-override"})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote(idC, "forced without gate"); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.SyncIncumbent(); err != nil {
		t.Fatal(err)
	}
	drive(4, 50, "") // all fallbacks now
	if fb := metrics.Counter(serve.MetricFallbacks).Value(); fb < 32 {
		t.Fatalf("poisoned incumbent produced %d fallbacks, want >= 32", fb)
	}
	demoted, why := mgr.Tick()
	if !demoted {
		t.Fatal("watchdog did not demote the poisoned incumbent")
	}
	if !strings.Contains(why, "fallback ratio") {
		t.Fatalf("demotion reason = %q, want a fallback-ratio verdict", why)
	}
	if info, ok := reg.Incumbent(); !ok || info.ID != idB {
		t.Fatalf("registry incumbent after demotion = %+v, want %s", info, idB)
	}
	if got, _ := reg.Get(idC); got.State != promote.StateDemoted {
		t.Fatalf("poisoned model state = %s, want demoted", got.State)
	}
	if mgr.Serving() != idB {
		t.Fatalf("engine serving %s after demotion, want %s", mgr.Serving(), idB)
	}
	cwnd, fallback, err = eng.Decide(eng.NewSessionID(), 100, shadowState(2))
	if err != nil || fallback || math.Abs(cwnd-100*wantRatio) > 1e-9 {
		t.Fatalf("post-demotion decision (%v, %v, %v), want the restored incumbent's action %v",
			cwnd, fallback, err, 100*wantRatio)
	}
	if metrics.Counter(promote.MetricLifecycleDemotions).Value() != 1 {
		t.Fatal("demotion counter not incremented")
	}

	// Stage 6: recovery — a restarted daemon replays the journal and
	// serves idB, never the demoted idC and never an unpromoted candidate.
	reopened, err := promote.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	m2, info2, err := reopened.LoadIncumbent()
	if err != nil {
		t.Fatal(err)
	}
	if info2.ID != idB {
		t.Fatalf("restarted daemon would serve %s, want %s", info2.ID, idB)
	}
	if promote.Fingerprint(m2) != servedFingerprint(t, reopened, idB) {
		t.Fatal("reloaded incumbent checkpoint does not match its journal fingerprint")
	}
}

func servedFingerprint(t *testing.T, r *promote.Registry, id string) string {
	t.Helper()
	info, ok := r.Get(id)
	if !ok {
		t.Fatalf("model %s missing from registry", id)
	}
	return info.Fingerprint
}
