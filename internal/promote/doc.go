// Package promote is the model-lifecycle subsystem of the serving plane:
// it makes swapping a retrained policy into a live fleet safe.
//
// Four pieces compose the lifecycle:
//
//   - Registry: a versioned model store (safeio-checksummed checkpoints +
//     provenance metadata) whose incumbent/candidate/rejected state
//     machine is persisted in a CRC'd append-only journal. A restarted
//     daemon always reloads the last *promoted* model — never a
//     half-written candidate — because the journal is fsynced per record
//     and torn tails are truncated on open.
//
//   - Shadow: a shadow evaluator that mirrors a configurable fraction of
//     live serve.Engine decisions to the candidate model in a second
//     session pool. Candidate decisions are recorded (divergence
//     histograms, per-regime stats) but never applied.
//
//   - Gate: a dominance promotion gate that replays the adversarial and
//     Set I suites for incumbent and candidate and promotes only if the
//     candidate is no worse in every regime bucket and better in at
//     least one — learned policies that win on average can regress badly
//     in specific regimes, so promotion is dominance-gated per regime,
//     never mean-gated.
//
//   - Manager + Watchdog: glue binding the registry to a live
//     serve.Engine. Swap() hot-swaps with zero dropped decisions
//     (serve.Engine.Swap re-primes per-flow recurrent state from each
//     flow's recent trace window); the demotion watchdog then compares
//     post-swap guard trip rates and fallback ratios against the
//     pre-swap baseline and reverts to the previous incumbent in one
//     registry transaction if the new model degrades the fleet.
package promote
