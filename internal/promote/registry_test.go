package promote_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"sage/internal/promote"
)

func TestRegistryStateMachine(t *testing.T) {
	r, err := promote.OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if _, ok := r.Incumbent(); ok {
		t.Fatal("fresh registry has an incumbent")
	}
	if _, _, err := r.LoadIncumbent(); err != promote.ErrNoIncumbent {
		t.Fatalf("LoadIncumbent on empty registry = %v, want ErrNoIncumbent", err)
	}

	a, err := r.Publish(constModel(-1), promote.Meta{Provenance: "boot", TrainStep: 100})
	if err != nil {
		t.Fatal(err)
	}
	if info, _ := r.Get(a); info.State != promote.StateCandidate || info.TrainStep != 100 {
		t.Fatalf("published model = %+v, want a candidate at step 100", info)
	}
	if _, ok := r.Incumbent(); ok {
		t.Fatal("a publish alone must not create an incumbent")
	}

	// Promote requires candidacy; double-promote and promote-after-reject
	// are rejected.
	if err := r.Promote(a, "bootstrap"); err != nil {
		t.Fatal(err)
	}
	if err := r.Promote(a, "again"); err == nil {
		t.Fatal("promoting an incumbent succeeded")
	}
	if info, ok := r.Incumbent(); !ok || info.ID != a {
		t.Fatalf("incumbent = %+v, want %s", info, a)
	}

	b, err := r.Publish(constModel(0), promote.Meta{Provenance: "trainer"})
	if err != nil {
		t.Fatal(err)
	}
	rej, err := r.Publish(constModel(0.5), promote.Meta{Provenance: "trainer"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Reject(rej, "gate: regresses"); err != nil {
		t.Fatal(err)
	}
	if err := r.Promote(rej, "sneak in"); err == nil {
		t.Fatal("promoting a rejected model succeeded")
	}
	if err := r.Promote(b, "gate verdict"); err != nil {
		t.Fatal(err)
	}
	if info, _ := r.Get(a); info.State != promote.StateRetired {
		t.Fatalf("previous incumbent state = %s, want retired", info.State)
	}

	// Demote is one transaction: b out, a back in.
	restored, err := r.Demote("watchdog: fallback ratio")
	if err != nil {
		t.Fatal(err)
	}
	if restored != a {
		t.Fatalf("demote restored %s, want %s", restored, a)
	}
	if info, _ := r.Get(b); info.State != promote.StateDemoted {
		t.Fatalf("demoted model state = %s, want demoted", info.State)
	}
	if info, ok := r.Incumbent(); !ok || info.ID != a {
		t.Fatalf("incumbent after demote = %+v, want %s", info, a)
	}
	// With only one promotion left there is nothing to fall back to.
	if _, err := r.Demote("again"); err == nil {
		t.Fatal("demoting with no previous incumbent succeeded")
	}

	// Duplicate ids are refused (same provenance + same weights = same
	// derived id).
	if _, err := r.Publish(constModel(-1), promote.Meta{Provenance: "boot"}); err == nil {
		t.Fatal("duplicate publish succeeded")
	}
}

// A restarted daemon must see exactly the state the journal recorded:
// reopening replays publish/promote/reject/demote into the same machine.
func TestRegistryReopenReplays(t *testing.T) {
	dir := t.TempDir()
	r, err := promote.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := r.Publish(constModel(-1), promote.Meta{Provenance: "boot"})
	b, _ := r.Publish(constModel(0), promote.Meta{Provenance: "trainer", TrainStep: 7})
	if err := r.Promote(a, "bootstrap"); err != nil {
		t.Fatal(err)
	}
	if err := r.Promote(b, "gate"); err != nil {
		t.Fatal(err)
	}
	fpB, _ := r.Get(b)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := promote.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	info, ok := r2.Incumbent()
	if !ok || info.ID != b || info.Fingerprint != fpB.Fingerprint {
		t.Fatalf("reopened incumbent = %+v, want %s (%s)", info, b, fpB.Fingerprint)
	}
	if got, _ := r2.Get(a); got.State != promote.StateRetired {
		t.Fatalf("reopened %s state = %s, want retired", a, got.State)
	}
	m, minfo, err := r2.LoadIncumbent()
	if err != nil {
		t.Fatal(err)
	}
	if minfo.ID != b || promote.Fingerprint(m) != fpB.Fingerprint {
		t.Fatal("reopened incumbent checkpoint does not match its journaled fingerprint")
	}
}

// Torn-tail recovery: for EVERY byte-length prefix of the journal — every
// possible crash point, including mid-record tears — reopening succeeds
// and never yields an incumbent that was not genuinely promoted by the
// surviving prefix. A candidate must never be served because the promote
// record was half-written.
func TestRegistryJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	r, err := promote.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := r.Publish(constModel(-1), promote.Meta{Provenance: "boot"})
	b, _ := r.Publish(constModel(0), promote.Meta{Provenance: "trainer"})
	c, _ := r.Publish(constModel(0.5), promote.Meta{Provenance: "trainer2"})
	if err := r.Promote(a, "bootstrap"); err != nil {
		t.Fatal(err)
	}
	if err := r.Promote(b, "gate"); err != nil {
		t.Fatal(err)
	}
	if err := r.Reject(c, "gate"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Demote("watchdog"); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	journal, err := os.ReadFile(filepath.Join(dir, promote.JournalName))
	if err != nil {
		t.Fatal(err)
	}
	promoted := map[string]bool{a: true, b: true} // ever-promoted set

	scratch := t.TempDir()
	for n := 0; n <= len(journal); n++ {
		sub := filepath.Join(scratch, "crash")
		if err := os.RemoveAll(sub); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Join(sub, "models"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sub, promote.JournalName), journal[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		rr, err := promote.OpenRegistry(sub)
		if err != nil {
			t.Fatalf("prefix %d/%d bytes: reopen failed: %v", n, len(journal), err)
		}
		if info, ok := rr.Incumbent(); ok {
			if !promoted[info.ID] {
				t.Fatalf("prefix %d: incumbent %q was never promoted", n, info.ID)
			}
			if got, _ := rr.Get(info.ID); got.State != promote.StateIncumbent {
				t.Fatalf("prefix %d: incumbent %s in state %s", n, info.ID, got.State)
			}
		}
		// The tear is truncated on open: the repaired registry must accept
		// new appends (the post-crash daemon keeps operating).
		if _, err := rr.Publish(constModel(-0.25), promote.Meta{Provenance: "postcrash"}); err != nil {
			t.Fatalf("prefix %d: post-recovery publish failed: %v", n, err)
		}
		rr.Close()
	}
}

// A checkpoint whose bytes rotted on disk must surface a load error — the
// journal alone saying "promoted" is not enough to serve it.
func TestRegistryLoadCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	r, err := promote.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	id, err := r.Publish(constModel(0), promote.Meta{Provenance: "boot"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Promote(id, "bootstrap"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(r.ModelPath(id))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(r.ModelPath(id), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.LoadIncumbent(); err == nil {
		t.Fatal("loading a corrupted checkpoint succeeded")
	}
}

// Kill-during-promotion: a subprocess churns publish/promote/demote in a
// tight loop and is SIGKILLed at an arbitrary point; the survivor registry
// must reopen cleanly with a legitimately promoted incumbent (or none).
// The fsync-per-append journal is what makes this hold for ANY kill point.
func TestRegistryKillDuringPromotion(t *testing.T) {
	if os.Getenv("PROMOTE_CHURN_DIR") != "" {
		churnRegistry(os.Getenv("PROMOTE_CHURN_DIR"))
		os.Exit(0) // unreachable: churnRegistry loops until killed
	}
	if testing.Short() {
		t.Skip("subprocess kill test skipped in -short")
	}

	for round := 0; round < 3; round++ {
		dir := t.TempDir()
		cmd := exec.Command(os.Args[0], "-test.run=TestRegistryKillDuringPromotion")
		cmd.Env = append(os.Environ(), "PROMOTE_CHURN_DIR="+dir)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Duration(50+70*round) * time.Millisecond)
		cmd.Process.Signal(syscall.SIGKILL)
		cmd.Wait()

		r, err := promote.OpenRegistry(dir)
		if err != nil {
			t.Fatalf("round %d: reopen after SIGKILL: %v", round, err)
		}
		if info, ok := r.Incumbent(); ok {
			m, got, err := r.LoadIncumbent()
			if err != nil {
				t.Fatalf("round %d: incumbent %s unloadable: %v", round, info.ID, err)
			}
			if promote.Fingerprint(m) != got.Fingerprint {
				t.Fatalf("round %d: incumbent fingerprint mismatch", round)
			}
		}
		r.Close()
	}
}

// churnRegistry is the kill-test subprocess body: an endless
// publish → promote → (sometimes) demote loop.
func churnRegistry(dir string) {
	r, err := promote.OpenRegistry(dir)
	if err != nil {
		os.Exit(1)
	}
	for i := 0; ; i++ {
		u := float64(i%7)/10 - 0.3
		id, err := r.Publish(constModel(u), promote.Meta{Provenance: "churn-" + strconv.Itoa(i)})
		if err != nil {
			os.Exit(1)
		}
		if i%3 != 2 {
			if err := r.Promote(id, "churn"); err != nil {
				os.Exit(1)
			}
		} else if err := r.Reject(id, "churn"); err != nil {
			os.Exit(1)
		}
		if i%5 == 4 {
			if _, err := r.Demote("churn"); err != nil {
				os.Exit(1)
			}
		}
	}
}
