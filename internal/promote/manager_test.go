package promote_test

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"sage/internal/promote"
	"sage/internal/serve"
	"sage/internal/telemetry"
)

// SyncIncumbent is the SIGHUP/boot path: when the registry incumbent is
// unchanged it must be a pure no-op — no engine drain, no session
// re-prime, and crucially no armed demotion watchdog that a post-HUP
// traffic shift could trip against a stale baseline. Only an actual
// incumbent change swaps (and arms).
func TestSyncIncumbentNoChangeIsNoOp(t *testing.T) {
	dir := t.TempDir()
	reg, err := promote.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	idA, err := reg.Publish(constModel(-0.5), promote.Meta{Provenance: "boot"})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote(idA, "bootstrap"); err != nil {
		t.Fatal(err)
	}
	served, info, err := reg.LoadIncumbent()
	if err != nil {
		t.Fatal(err)
	}

	metrics := telemetry.NewRegistry()
	eng := serve.NewEngine(serve.Config{
		Policy: served.Policy, Mask: served.Mask,
		MaxBatch: 8, BatchDeadline: 50 * time.Microsecond, Workers: 1,
		Metrics: metrics,
	})
	eng.Start()
	defer eng.Close()
	mgr, err := promote.NewManager(promote.ManagerConfig{
		Registry: reg, Engine: eng, Metrics: metrics,
	}, info.ID)
	if err != nil {
		t.Fatal(err)
	}

	armed := func() bool {
		t.Helper()
		var doc struct {
			Armed bool `json:"watchdog_armed"`
		}
		if err := json.Unmarshal([]byte(mgr.Status()), &doc); err != nil {
			t.Fatalf("status: %v", err)
		}
		return doc.Armed
	}

	report, err := mgr.SyncIncumbent()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "already serving") {
		t.Fatalf("no-change sync report = %q, want an already-serving no-op", report)
	}
	if got := metrics.Counter(promote.MetricLifecycleSwaps).Value(); got != 0 {
		t.Fatalf("no-change sync performed %d engine swaps, want 0", got)
	}
	if armed() {
		t.Fatal("no-change sync armed the demotion watchdog")
	}

	// A real incumbent change swaps and arms.
	idB, err := reg.Publish(constModel(0.25), promote.Meta{Provenance: "trainer"})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote(idB, "gate passed"); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.SyncIncumbent(); err != nil {
		t.Fatal(err)
	}
	if mgr.Serving() != idB {
		t.Fatalf("serving %s after incumbent change, want %s", mgr.Serving(), idB)
	}
	if got := metrics.Counter(promote.MetricLifecycleSwaps).Value(); got != 1 {
		t.Fatalf("incumbent change performed %d swaps, want 1", got)
	}
	if !armed() {
		t.Fatal("incumbent change did not arm the demotion watchdog")
	}
}
