package promote_test

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sage/internal/promote"
	"sage/internal/sim"
	"sage/internal/telemetry"
)

// A candidate identical to the incumbent scores identically (the replay
// is deterministic) and must be rejected: it is not better anywhere.
func TestGateRejectsIdenticalCandidate(t *testing.T) {
	m := constModel(-0.25)
	v := promote.RunGate(m, constModel(-0.25), promote.GateConfig{
		Buckets: gateScenes(2 * sim.Second),
		RelTol:  1e-9, AbsTol: 1e-9,
	})
	if v.Promote {
		t.Fatalf("identical candidate promoted: %s", v.Reason)
	}
	if !strings.Contains(v.Reason, "not better") {
		t.Fatalf("reason = %q, want a not-better rejection", v.Reason)
	}
	for _, b := range v.Buckets {
		if b.IncScore != b.CandScore {
			t.Fatalf("bucket %s: identical models scored %v vs %v — the replay is not deterministic",
				b.Bucket, b.IncScore, b.CandScore)
		}
		if b.Better || b.Worse {
			t.Fatalf("bucket %s flagged better=%v worse=%v for identical models", b.Bucket, b.Better, b.Worse)
		}
	}
}

// Dominance is antisymmetric: between a collapse policy (u=-1, cwnd pinned
// to the floor) and a hold policy (u=0), whichever direction promotes, the
// reverse direction must reject with a regression — and it is the hold
// policy that wins, since it delivers strictly more at the same minimal
// delay in every bucket.
func TestGateDominanceDirection(t *testing.T) {
	collapse, hold := constModel(-1), constModel(0)
	scenes := gateScenes(2 * sim.Second)
	cfg := promote.GateConfig{Buckets: scenes, RelTol: 1e-9, AbsTol: 1e-9}

	up := promote.RunGate(collapse, hold, cfg)
	if !up.Promote {
		t.Fatalf("hold policy not promoted over collapse policy: %s", up.Reason)
	}
	for _, b := range up.Buckets {
		if !b.Better {
			t.Fatalf("bucket %s not better for the hold policy: %+v", b.Bucket, b)
		}
	}

	down := promote.RunGate(hold, collapse, cfg)
	if down.Promote {
		t.Fatalf("collapse policy promoted over hold policy: %s", down.Reason)
	}
	if !strings.Contains(down.Reason, "regresses") {
		t.Fatalf("reason = %q, want a regression rejection", down.Reason)
	}
}

// Dominance, not the mean: a candidate that wins one bucket but regresses
// in another is rejected even if its average is higher. The per-bucket
// margin test is synthesized by checking the verdict plumbing directly:
// any Worse bucket vetoes, regardless of Better buckets elsewhere.
func TestGateWorseBucketVetoes(t *testing.T) {
	collapse, hold := constModel(-1), constModel(0)
	// One bucket where the candidate regresses is enough to reject, even
	// though the other comparison would promote. Build an asymmetric
	// verdict by gating hold-vs-collapse on one bucket list and checking
	// its buckets carry the veto flags RunGate aggregates.
	v := promote.RunGate(hold, collapse, promote.GateConfig{
		Buckets: gateScenes(2 * sim.Second),
		RelTol:  1e-9, AbsTol: 1e-9,
	})
	worse := 0
	for _, b := range v.Buckets {
		if b.Worse {
			worse++
		}
	}
	if worse == 0 || v.Promote {
		t.Fatalf("collapse candidate: worse buckets=%d promote=%v, want vetoed", worse, v.Promote)
	}

	// Wide tolerance turns the same regression into "within margin": the
	// candidate is no longer worse anywhere, but it is not better either —
	// still rejected, just for the other reason.
	v2 := promote.RunGate(hold, collapse, promote.GateConfig{
		Buckets: gateScenes(2 * sim.Second),
		RelTol:  1e-9, AbsTol: 1e9,
	})
	if v2.Promote {
		t.Fatal("candidate inside an enormous margin was promoted")
	}
	if !strings.Contains(v2.Reason, "not better") {
		t.Fatalf("reason = %q, want not-better once the margin swallows the gap", v2.Reason)
	}
}

// A live shadow run that disagrees wildly with the replay verdict vetoes
// the promotion: the gate cannot trust scores for a model that behaves
// like a different policy on live traffic.
func TestGateShadowDivergenceVetoes(t *testing.T) {
	collapse, hold := constModel(-1), constModel(0)
	sh := &promote.ShadowStats{Mirrored: 500, MeanAbsDiv: 1.7}
	v := promote.RunGate(collapse, hold, promote.GateConfig{
		Buckets: gateScenes(2 * sim.Second),
		RelTol:  1e-9, AbsTol: 1e-9,
		Shadow: sh, MaxShadowDivergence: 1.0,
	})
	if v.Promote {
		t.Fatal("candidate promoted despite shadow divergence over the limit")
	}
	if !strings.Contains(v.Reason, "shadow divergence") {
		t.Fatalf("reason = %q, want a shadow-divergence rejection", v.Reason)
	}
	if v.Shadow == nil || v.Shadow.MeanAbsDiv != 1.7 {
		t.Fatal("verdict does not carry the shadow stats it judged")
	}

	// The same shadow under the limit does not veto.
	ok := promote.RunGate(collapse, hold, promote.GateConfig{
		Buckets: gateScenes(2 * sim.Second),
		RelTol:  1e-9, AbsTol: 1e-9,
		Shadow:              &promote.ShadowStats{Mirrored: 500, MeanAbsDiv: 0.4},
		MaxShadowDivergence: 1.0,
	})
	if !ok.Promote {
		t.Fatalf("in-limit shadow vetoed a dominating candidate: %s", ok.Reason)
	}
}

// The gate emits an auditable JSONL bundle: one record per bucket plus the
// verdict, machine-readable.
func TestGateEmitsVerdictBundle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdict.jsonl")
	j, err := telemetry.CreateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	v := promote.RunGate(constModel(-1), constModel(0), promote.GateConfig{
		Buckets: gateScenes(2 * sim.Second),
		RelTol:  1e-9, AbsTol: 1e-9,
		Events: j,
	})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var kinds []string
	var gotVerdict bool
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec struct {
			Kind    string `json:"kind"`
			Bucket  string `json:"bucket"`
			Verdict *struct {
				Promote bool `json:"promote"`
			} `json:"verdict"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		kinds = append(kinds, rec.Kind)
		if rec.Kind == "gate_verdict" {
			gotVerdict = true
			if rec.Verdict == nil || rec.Verdict.Promote != v.Promote {
				t.Fatalf("journaled verdict does not match the returned one")
			}
		}
	}
	if len(kinds) != len(v.Buckets)+1 || !gotVerdict {
		t.Fatalf("bundle = %v, want %d bucket records plus a verdict", kinds, len(v.Buckets))
	}
}
