package promote

import (
	"fmt"
	"sort"
	"strings"

	"sage/internal/cc"
	"sage/internal/core"
	"sage/internal/netem"
	"sage/internal/rollout"
	"sage/internal/sim"
	"sage/internal/telemetry"
)

// GateConfig tunes the dominance promotion gate.
type GateConfig struct {
	// Level/Duration/Seed parameterize the default replay suite:
	// the adversarial grid plus Set I (the same regimes the robustness
	// experiment runs). Buckets overrides the suite with an explicit
	// scenario list.
	Level    netem.GridLevel
	Duration sim.Time
	Seed     int64
	Buckets  []netem.Scenario

	// "No worse" tolerance: the candidate's bucket score may trail the
	// incumbent's by AbsTol + RelTol·|incumbent| before the bucket counts
	// as a regression (defaults 0.02 and 0.05). The same margin gates
	// "better", so simulator noise can neither fail nor pass a candidate.
	RelTol float64
	AbsTol float64

	// Shadow, when non-nil, folds a live shadow run into the verdict: a
	// candidate whose mean action divergence exceeds MaxShadowDivergence
	// (in |Δu|, the log2-cwnd-ratio space; default 1.0 when a shadow is
	// supplied) is rejected outright — it is a different policy than the
	// one the suite scored, or it disagrees with the incumbent too wildly
	// to trust a replay-only verdict.
	Shadow              *ShadowStats
	MaxShadowDivergence float64

	// Events, when non-nil, receives the JSONL verdict bundle: one
	// record per (bucket, model) score, then the verdict itself.
	Events *telemetry.JSONL
}

func (c GateConfig) fill() GateConfig {
	if c.Duration == 0 {
		c.Duration = 10 * sim.Second
	}
	if c.RelTol == 0 {
		c.RelTol = 0.05
	}
	if c.AbsTol == 0 {
		c.AbsTol = 0.02
	}
	if c.MaxShadowDivergence == 0 {
		c.MaxShadowDivergence = 1.0
	}
	return c
}

// BucketResult is one regime bucket's incumbent-vs-candidate comparison.
type BucketResult struct {
	Bucket        string  `json:"bucket"`
	Scenarios     int     `json:"scenarios"`
	IncScore      float64 `json:"inc_score"`
	CandScore     float64 `json:"cand_score"`
	IncCompleted  int     `json:"inc_completed"`
	CandCompleted int     `json:"cand_completed"`
	Better        bool    `json:"better"`
	Worse         bool    `json:"worse"`
}

// Verdict is the gate's decision plus everything needed to audit it.
type Verdict struct {
	Promote bool           `json:"promote"`
	Reason  string         `json:"reason"`
	Buckets []BucketResult `json:"buckets"`
	Shadow  *ShadowStats   `json:"shadow,omitempty"`
}

// gateRecord is the per-bucket JSONL line of the verdict bundle.
type gateRecord struct {
	Kind string `json:"kind"` // "gate_bucket" or "gate_verdict"
	BucketResult
	Verdict *Verdict `json:"verdict,omitempty"`
}

// RunGate replays the regime suite for incumbent and candidate and
// decides promotion by dominance: the candidate must be no worse than the
// incumbent in *every* regime bucket and strictly better in at least one.
// A mean-gated candidate can buy its average on easy regimes while
// regressing badly on hard ones — exactly the failure mode learned
// policies exhibit — so the mean never appears in the decision.
//
// Both models run deterministically (mixture mean, fixed seeds) over
// identical scenarios, so a verdict is reproducible bit for bit.
func RunGate(inc, cand *core.Model, cfg GateConfig) Verdict {
	cfg = cfg.fill()
	scens := cfg.Buckets
	if scens == nil {
		scens = append(scens, netem.AdversarialGrid(netem.AdversarialOptions{
			Level: cfg.Level, Duration: cfg.Duration, Seed: cfg.Seed,
		})...)
		scens = append(scens, netem.SetI(netem.SetIOptions{
			Level: cfg.Level, Duration: cfg.Duration, Seed: cfg.Seed,
		})...)
	}

	type acc struct {
		n                 int
		incSum, candSum   float64
		incDone, candDone int
	}
	buckets := make(map[string]*acc)
	var order []string
	for _, sc := range scens {
		b := bucketOf(sc.Name)
		a := buckets[b]
		if a == nil {
			a = &acc{}
			buckets[b] = a
			order = append(order, b)
		}
		incScore, incDone := scoreScenario(inc, sc, cfg.Seed)
		candScore, candDone := scoreScenario(cand, sc, cfg.Seed)
		a.n++
		a.incSum += incScore
		a.candSum += candScore
		if incDone {
			a.incDone++
		}
		if candDone {
			a.candDone++
		}
	}
	sort.Strings(order)

	var v Verdict
	var better, worse []string
	for _, b := range order {
		a := buckets[b]
		br := BucketResult{
			Bucket:        b,
			Scenarios:     a.n,
			IncScore:      a.incSum / float64(a.n),
			CandScore:     a.candSum / float64(a.n),
			IncCompleted:  a.incDone,
			CandCompleted: a.candDone,
		}
		margin := cfg.AbsTol + cfg.RelTol*abs(br.IncScore)
		switch {
		case br.CandCompleted < br.IncCompleted:
			br.Worse = true // a regime the incumbent survives and the candidate doesn't
		case br.CandScore < br.IncScore-margin:
			br.Worse = true
		case br.CandScore > br.IncScore+margin || br.CandCompleted > br.IncCompleted:
			br.Better = true
		}
		if br.Worse {
			worse = append(worse, b)
		}
		if br.Better {
			better = append(better, b)
		}
		v.Buckets = append(v.Buckets, br)
		cfg.Events.Emit(gateRecord{Kind: "gate_bucket", BucketResult: br})
	}

	v.Shadow = cfg.Shadow
	switch {
	case cfg.Shadow != nil && cfg.Shadow.Mirrored > 0 && cfg.Shadow.MeanAbsDiv > cfg.MaxShadowDivergence:
		v.Reason = fmt.Sprintf("shadow divergence %.3f exceeds %.3f",
			cfg.Shadow.MeanAbsDiv, cfg.MaxShadowDivergence)
	case len(worse) > 0:
		v.Reason = "candidate regresses in: " + strings.Join(worse, ", ")
	case len(better) == 0:
		v.Reason = "candidate is not better in any regime bucket"
	default:
		v.Promote = true
		v.Reason = "candidate dominates: better in " + strings.Join(better, ", ")
	}
	cfg.Events.Emit(gateRecord{Kind: "gate_verdict", Verdict: &v})
	return v
}

// scoreScenario runs one model deterministically over one scenario and
// returns its mean per-step GR reward plus whether the flow completed
// (still making delivery progress at the end).
func scoreScenario(m *core.Model, sc netem.Scenario, seed int64) (score float64, completed bool) {
	res := rollout.Run(sc, cc.MustNew("pure"), rollout.Options{
		GR:           m.GR,
		Controller:   m.NewAgent(seed),
		CollectSteps: true,
	})
	if n := len(res.Steps); n > 0 {
		var sum float64
		for _, st := range res.Steps {
			sum += st.Reward
		}
		score = sum / float64(n)
	}
	if len(res.Intervals) == 0 {
		return score, res.ThroughputBps > 0
	}
	return score, res.Intervals[len(res.Intervals)-1].ThroughputBps > 0
}

// bucketOf maps a scenario name to its regime bucket: the condition
// family before the first '-' ("flap-48mbps-40ms" → "flap", "flat-…" →
// "flat"), which groups the grid's operating points per pathology.
func bucketOf(name string) string {
	if i := strings.IndexByte(name, '-'); i > 0 {
		return name[:i]
	}
	return name
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
