package promote_test

import (
	"encoding/json"
	"testing"
	"time"

	"sage/internal/guard"
	"sage/internal/promote"
	"sage/internal/serve"
	"sage/internal/telemetry"
)

// Overload brownout masks the demotion watchdog: trip and fallback storms
// manufactured by load shedding must not demote a healthy incumbent, and
// on recovery the watchdog's window is rebased past the polluted counters
// — while a genuine post-recovery regression still demotes.
func TestWatchdogMaskedDuringOverload(t *testing.T) {
	dir := t.TempDir()
	reg, err := promote.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	idA, err := reg.Publish(constModel(-0.5), promote.Meta{Provenance: "boot"})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote(idA, "bootstrap"); err != nil {
		t.Fatal(err)
	}
	idB, err := reg.Publish(constModel(0.25), promote.Meta{Provenance: "trainer"})
	if err != nil {
		t.Fatal(err)
	}

	metrics := telemetry.NewRegistry()
	model, _, err := reg.LoadIncumbent()
	if err != nil {
		t.Fatal(err)
	}
	eng := serve.NewEngine(serve.Config{
		Policy: model.Policy, Mask: model.Mask,
		MaxBatch: 8, BatchDeadline: 50 * time.Microsecond, Workers: 1,
		Metrics: metrics,
	})
	eng.Start()
	defer eng.Close()

	overloaded := false
	mgr, err := promote.NewManager(promote.ManagerConfig{
		Registry: reg, Engine: eng, Metrics: metrics,
		OverloadActive: func() bool { return overloaded },
	}, idA)
	if err != nil {
		t.Fatal(err)
	}

	// Arm the watchdog by promoting and swapping to B (clean baseline:
	// zero trips, zero fallbacks — limits sit at the rate floor).
	if err := reg.Promote(idB, "gate passed"); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.SyncIncumbent(); err != nil {
		t.Fatal(err)
	}
	if mgr.Serving() != idB {
		t.Fatalf("serving %s, want %s", mgr.Serving(), idB)
	}

	// Brownout: counters that would conclusively demote — every decision a
	// guard trip — accumulate while the plane is overloaded.
	overloaded = true
	metrics.Counter(serve.MetricDecisions).Add(600)
	metrics.Counter(guard.MetricTrips).Add(600)
	for i := 0; i < 3; i++ {
		if demoted, why := mgr.Tick(); demoted {
			t.Fatalf("watchdog demoted during brownout: %s", why)
		}
	}
	if got := metrics.Counter(promote.MetricWatchdogMasked).Value(); got != 3 {
		t.Fatalf("masked counter = %d, want 3", got)
	}
	var doc struct {
		Masked bool `json:"watchdog_masked"`
		Armed  bool `json:"watchdog_armed"`
	}
	if err := json.Unmarshal([]byte(mgr.Status()), &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Masked || !doc.Armed {
		t.Fatalf("status during brownout = %+v, want armed and masked", doc)
	}

	// Recovery: the first tick rebases past the polluted window — no
	// demotion, still armed — and steady-state ticks stay quiet.
	overloaded = false
	for i := 0; i < 3; i++ {
		if demoted, why := mgr.Tick(); demoted {
			t.Fatalf("watchdog demoted on recovery tick %d: %s", i, why)
		}
	}
	if mgr.Serving() != idB {
		t.Fatalf("recovery reverted the incumbent to %s", mgr.Serving())
	}

	// A genuine regression after recovery is still caught: the rebase must
	// not have widened the baseline (it was clean — limits at the floor).
	metrics.Counter(serve.MetricDecisions).Add(600)
	metrics.Counter(guard.MetricTrips).Add(600)
	demoted := false
	var why string
	for i := 0; i < 3 && !demoted; i++ {
		demoted, why = mgr.Tick()
	}
	if !demoted {
		t.Fatal("genuine post-recovery regression never demoted")
	}
	if mgr.Serving() != idA {
		t.Fatalf("demotion (%s) reverted to %s, want %s", why, mgr.Serving(), idA)
	}
}
