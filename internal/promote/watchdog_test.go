package promote_test

import (
	"strings"
	"testing"

	"sage/internal/promote"
)

func TestWatchdogNoVerdictBelowMinDecisions(t *testing.T) {
	w := promote.NewWatchdog(promote.WatchdogConfig{MinDecisions: 100, Consecutive: 1})
	w.Arm(promote.WatchSample{Decisions: 1000, Fallbacks: 0, Trips: 0})
	// 99 post-swap decisions, all fallbacks: terrible, but not yet a verdict.
	if fire, _ := w.Observe(promote.WatchSample{Decisions: 1099, Fallbacks: 99}); fire {
		t.Fatal("watchdog fired below MinDecisions")
	}
	if fire, _ := w.Observe(promote.WatchSample{Decisions: 1100, Fallbacks: 100}); !fire {
		t.Fatal("watchdog silent once MinDecisions accrued")
	}
}

func TestWatchdogConsecutiveStreak(t *testing.T) {
	w := promote.NewWatchdog(promote.WatchdogConfig{MinDecisions: 10, Consecutive: 3})
	w.Arm(promote.WatchSample{})
	bad := promote.WatchSample{Decisions: 100, Fallbacks: 50}
	if fire, _ := w.Observe(bad); fire {
		t.Fatal("fired on first bad observation with Consecutive=3")
	}
	// A clean window in between resets the streak (cumulative rate dips
	// back under the floor as healthy decisions accrue).
	if fire, _ := w.Observe(promote.WatchSample{Decisions: 10000, Fallbacks: 50}); fire {
		t.Fatal("fired on a clean observation")
	}
	bad2 := promote.WatchSample{Decisions: 10100, Fallbacks: 200}
	bad3 := promote.WatchSample{Decisions: 10200, Fallbacks: 400}
	bad4 := promote.WatchSample{Decisions: 10300, Fallbacks: 600}
	if f1, _ := w.Observe(bad2); f1 {
		t.Fatal("streak survived the clean window")
	}
	if f2, _ := w.Observe(bad3); f2 {
		t.Fatal("fired one observation early")
	}
	f3, reason := w.Observe(bad4)
	if !f3 {
		t.Fatal("did not fire after three consecutive bad observations")
	}
	if !strings.Contains(reason, "fallback ratio") {
		t.Fatalf("reason = %q, want a fallback-ratio verdict", reason)
	}
	if w.Armed() {
		t.Fatal("watchdog still armed after firing")
	}
}

// The baseline scales the limit: a fleet that already trips 10% of the
// time only demotes when the new model doubles that, while a clean fleet
// falls back to the absolute RateFloor.
func TestWatchdogBaselineFactorAndFloor(t *testing.T) {
	// Noisy baseline: 10% trips pre-swap. Post-swap 15% is within 2×.
	w := promote.NewWatchdog(promote.WatchdogConfig{MinDecisions: 10, Consecutive: 1})
	w.Arm(promote.WatchSample{Decisions: 1000, Trips: 100})
	if fire, _ := w.Observe(promote.WatchSample{Decisions: 2000, Trips: 250}); fire {
		t.Fatal("fired at 15% trips against a 10% baseline (limit 20%)")
	}
	if fire, reason := w.Observe(promote.WatchSample{Decisions: 3000, Trips: 700}); !fire {
		t.Fatal("did not fire at 22.5% trips against a 10% baseline")
	} else if !strings.Contains(reason, "trip rate") {
		t.Fatalf("reason = %q, want a trip-rate verdict", reason)
	}

	// Clean baseline: zero trips. One stray trip in 1000 decisions is
	// under the floor; 5% is over it.
	w2 := promote.NewWatchdog(promote.WatchdogConfig{MinDecisions: 10, Consecutive: 1, RateFloor: 0.01})
	w2.Arm(promote.WatchSample{Decisions: 5000})
	if fire, _ := w2.Observe(promote.WatchSample{Decisions: 6000, Trips: 1}); fire {
		t.Fatal("fired on a single stray trip under the rate floor")
	}
	if fire, _ := w2.Observe(promote.WatchSample{Decisions: 7000, Trips: 100}); !fire {
		t.Fatal("did not fire at 5% trips over a clean baseline")
	}
}

func TestWatchdogDisarmedIsSilent(t *testing.T) {
	w := promote.NewWatchdog(promote.WatchdogConfig{MinDecisions: 1, Consecutive: 1})
	if fire, _ := w.Observe(promote.WatchSample{Decisions: 1000, Fallbacks: 1000}); fire {
		t.Fatal("an unarmed watchdog fired")
	}
	w.Arm(promote.WatchSample{})
	w.Disarm()
	if fire, _ := w.Observe(promote.WatchSample{Decisions: 1000, Fallbacks: 1000}); fire {
		t.Fatal("a disarmed watchdog fired")
	}
}
