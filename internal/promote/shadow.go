package promote

import (
	"math"
	"sync"

	"sage/internal/core"
	"sage/internal/gr"
	"sage/internal/telemetry"
)

// Shadow metric names.
const (
	MetricShadowObserved   = "shadow.observed"   // live decisions seen
	MetricShadowMirrored   = "shadow.mirrored"   // decisions replayed on the candidate
	MetricShadowFallbacks  = "shadow.fallbacks"  // live decisions that were safety no-ops
	MetricShadowDivergence = "shadow.divergence" // histogram of |u_cand − u_live|
)

// ShadowConfig tunes the shadow evaluator.
type ShadowConfig struct {
	// Fraction of sessions mirrored onto the candidate, selected by a
	// deterministic hash of the session id (default 1.0). Mirroring whole
	// sessions — not individual requests — keeps the candidate's
	// recurrent state coherent: a GRU fed every fourth observation of a
	// flow tells you nothing about how it would actually run it.
	Fraction float64
	// Seed salts the session-selection hash so repeated shadow runs over
	// the same ids can pick different subsets.
	Seed int64
	// MaxSessions bounds the candidate session pool (default 4096).
	MaxSessions int
	// Metrics receives the shadow.* series (nil costs nothing).
	Metrics *telemetry.Registry
}

func (c ShadowConfig) fill() ShadowConfig {
	if c.Fraction == 0 {
		c.Fraction = 1.0
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 4096
	}
	return c
}

// RegimeDivergence aggregates candidate/incumbent action divergence for
// one regime bucket.
type RegimeDivergence struct {
	N          int64   `json:"n"`
	MeanAbsDiv float64 `json:"mean_abs_div"`
	MaxAbsDiv  float64 `json:"max_abs_div"`
}

// ShadowStats is a point-in-time digest of the shadow run.
type ShadowStats struct {
	Observed   int64                       `json:"observed"`
	Mirrored   int64                       `json:"mirrored"`
	Fallbacks  int64                       `json:"fallbacks"`
	MeanAbsDiv float64                     `json:"mean_abs_div"`
	MaxAbsDiv  float64                     `json:"max_abs_div"`
	PerRegime  map[string]RegimeDivergence `json:"per_regime,omitempty"`
}

// Shadow mirrors live serve.Engine decisions onto a candidate model in a
// second session pool. It implements serve.ShadowObserver: the engine
// hands it every decision *after* applying the incumbent's action, so the
// candidate's output is recorded — divergence in action space, per-regime
// aggregates — but can never reach a connection. Safe for concurrent use
// (the engine's workers call Observe from multiple goroutines); the
// candidate forward pass runs under one mutex, which is fine for the
// mirrored fraction of traffic but is why the shadow pool is separate
// from the serving hot path.
type Shadow struct {
	cfg   ShadowConfig
	model *core.Model

	mu        sync.Mutex
	sessions  map[uint64]*shadowSess
	regimes   map[uint64]string
	stats     map[string]*regimeAcc
	observed  int64
	mirrored  int64
	fallbacks int64
	sumAbs    float64
	maxAbs    float64
	maskBuf   []float64
	meanBuf   []float64
}

type shadowSess struct {
	hidden []float64
}

type regimeAcc struct {
	n      int64
	sumAbs float64
	maxAbs float64
}

// NewShadow builds a shadow evaluator for candidate cand.
func NewShadow(cand *core.Model, cfg ShadowConfig) *Shadow {
	return &Shadow{
		cfg:      cfg.fill(),
		model:    cand,
		sessions: make(map[uint64]*shadowSess),
		regimes:  make(map[uint64]string),
		stats:    make(map[string]*regimeAcc),
	}
}

// TagSession attributes session sid's subsequent decisions to a regime
// bucket (e.g. the netem scenario family it is running under). Tags are
// capped at twice the session-pool bound and expire alongside it (a tag
// whose session was evicted goes first), so tagging an unbounded stream
// of session ids cannot leak; the per-regime stats map is bounded by the
// number of distinct regime names, not by session count.
func (s *Shadow) TagSession(sid uint64, regime string) {
	s.mu.Lock()
	if _, ok := s.regimes[sid]; !ok && len(s.regimes) >= 2*s.cfg.MaxSessions {
		// At least half the tags have no live shadow session (the pool is
		// capped at MaxSessions): evict one of those, never a live one.
		for k := range s.regimes {
			if _, live := s.sessions[k]; !live {
				delete(s.regimes, k)
				break
			}
		}
	}
	s.regimes[sid] = regime
	s.mu.Unlock()
}

// selected reports whether sid's session is in the mirrored fraction
// (deterministic splitmix64 hash, so a session is either always mirrored
// or never — its candidate hidden state stays coherent).
func (s *Shadow) selected(sid uint64) bool {
	if s.cfg.Fraction >= 1 {
		return true
	}
	x := sid + 0x9e3779b97f4a7c15 + uint64(s.cfg.Seed)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < s.cfg.Fraction
}

// Observe implements serve.ShadowObserver. ratio is the multiplicative
// cwnd action the incumbent actually applied; fallback marks safety
// no-ops (non-finite state or a degraded session), which are counted but
// not mirrored — the candidate would be judged on garbage input.
func (s *Shadow) Observe(sid uint64, state []float64, ratio float64, fallback bool) {
	s.cfg.Metrics.Counter(MetricShadowObserved).Inc()
	if fallback {
		s.cfg.Metrics.Counter(MetricShadowFallbacks).Inc()
		s.mu.Lock()
		s.observed++
		s.fallbacks++
		s.mu.Unlock()
		return
	}
	if !s.selected(sid) {
		s.mu.Lock()
		s.observed++
		s.mu.Unlock()
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.observed++
	sess, ok := s.sessions[sid]
	if !ok {
		if len(s.sessions) >= s.cfg.MaxSessions {
			for k := range s.sessions { // approximate eviction: drop one
				delete(s.sessions, k)
				delete(s.regimes, k) // its regime tag must not outlive it
				break
			}
		}
		sess = &shadowSess{hidden: s.model.Policy.InitHidden()}
		s.sessions[sid] = sess
	}
	s.maskBuf = gr.ApplyMaskInto(s.maskBuf, state, s.model.Mask)
	head, h, _ := s.model.Policy.Forward(s.maskBuf, sess.hidden)
	sess.hidden = h
	if cap(s.meanBuf) < s.model.Policy.GMM.K {
		s.meanBuf = make([]float64, s.model.Policy.GMM.K)
	}
	// Deterministic mixture mean: the shadow never samples, so it cannot
	// perturb any RNG the serving path owns.
	uCand := s.model.Policy.GMM.MeanInto(head, s.meanBuf[:s.model.Policy.GMM.K])
	uLive := math.Log2(ratio)
	div := math.Abs(uCand - uLive)
	if math.IsNaN(div) || math.IsInf(div, 0) {
		return
	}
	s.mirrored++
	s.sumAbs += div
	if div > s.maxAbs {
		s.maxAbs = div
	}
	s.cfg.Metrics.Counter(MetricShadowMirrored).Inc()
	s.cfg.Metrics.Histogram(MetricShadowDivergence).Observe(div)
	if regime, ok := s.regimes[sid]; ok {
		acc := s.stats[regime]
		if acc == nil {
			acc = &regimeAcc{}
			s.stats[regime] = acc
		}
		acc.n++
		acc.sumAbs += div
		if div > acc.maxAbs {
			acc.maxAbs = div
		}
	}
}

// Stats snapshots the shadow run.
func (s *Shadow) Stats() ShadowStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := ShadowStats{
		Observed:  s.observed,
		Mirrored:  s.mirrored,
		Fallbacks: s.fallbacks,
		MaxAbsDiv: s.maxAbs,
	}
	if s.mirrored > 0 {
		out.MeanAbsDiv = s.sumAbs / float64(s.mirrored)
	}
	if len(s.stats) > 0 {
		out.PerRegime = make(map[string]RegimeDivergence, len(s.stats))
		for regime, acc := range s.stats {
			rd := RegimeDivergence{N: acc.n, MaxAbsDiv: acc.maxAbs}
			if acc.n > 0 {
				rd.MeanAbsDiv = acc.sumAbs / float64(acc.n)
			}
			out.PerRegime[regime] = rd
		}
	}
	return out
}
