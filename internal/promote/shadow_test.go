package promote_test

import (
	"math"
	"testing"

	"sage/internal/gr"
	"sage/internal/promote"
	"sage/internal/rl"
	"sage/internal/telemetry"
)

func shadowState(i int) []float64 {
	v := make([]float64, gr.StateDim)
	for j := range v {
		v[j] = float64((i+j)%5) * 0.1
	}
	return v
}

// The shadow must measure exactly the action gap between candidate and
// incumbent: with constant-action models the divergence is known in
// closed form (|u_cand - u_live| on every mirrored decision).
func TestShadowDivergenceExact(t *testing.T) {
	cand := constModel(0.25)
	reg := telemetry.NewRegistry()
	sh := promote.NewShadow(cand, promote.ShadowConfig{Metrics: reg})

	liveRatio := rl.UToRatio(-0.5) // the incumbent's constant action
	sh.TagSession(1, "flap")
	sh.TagSession(2, "blackout")
	for i := 0; i < 10; i++ {
		sh.Observe(1, shadowState(i), liveRatio, false)
	}
	for i := 0; i < 4; i++ {
		sh.Observe(2, shadowState(i), liveRatio, false)
	}
	sh.Observe(3, shadowState(0), 1.0, true) // a safety no-op: counted, never mirrored

	st := sh.Stats()
	if st.Observed != 15 || st.Mirrored != 14 || st.Fallbacks != 1 {
		t.Fatalf("stats = %+v, want 15 observed / 14 mirrored / 1 fallback", st)
	}
	want := math.Abs(0.25 - (-0.5))
	if math.Abs(st.MeanAbsDiv-want) > 1e-12 || math.Abs(st.MaxAbsDiv-want) > 1e-12 {
		t.Fatalf("divergence mean=%v max=%v, want exactly %v", st.MeanAbsDiv, st.MaxAbsDiv, want)
	}
	if st.PerRegime["flap"].N != 10 || st.PerRegime["blackout"].N != 4 {
		t.Fatalf("per-regime = %+v, want flap=10 blackout=4", st.PerRegime)
	}
	if math.Abs(st.PerRegime["flap"].MeanAbsDiv-want) > 1e-12 {
		t.Fatalf("flap divergence = %v, want %v", st.PerRegime["flap"].MeanAbsDiv, want)
	}
	if got := reg.Counter(promote.MetricShadowMirrored).Value(); got != 14 {
		t.Fatalf("%s = %d, want 14", promote.MetricShadowMirrored, got)
	}
}

// Fraction selects whole sessions, deterministically: a session is either
// always mirrored or never, so the candidate's recurrent state stays
// coherent, and a nil metrics registry costs nothing.
func TestShadowFractionSelectsWholeSessions(t *testing.T) {
	cand := constModel(0)
	sh := promote.NewShadow(cand, promote.ShadowConfig{Fraction: 0.5, Seed: 3})

	const sessions = 64
	mirroredAt := make(map[uint64]int64)
	for round := 0; round < 3; round++ {
		for sid := uint64(1); sid <= sessions; sid++ {
			before := sh.Stats().Mirrored
			sh.Observe(sid, shadowState(int(sid)), 1.0, false)
			if sh.Stats().Mirrored > before {
				mirroredAt[sid]++
			}
		}
	}
	picked := 0
	for sid, n := range mirroredAt {
		if n != 3 {
			t.Fatalf("session %d mirrored %d/3 rounds: selection is not per-session", sid, n)
		}
		picked++
	}
	if picked == 0 || picked == sessions {
		t.Fatalf("fraction 0.5 picked %d/%d sessions", picked, sessions)
	}
}

// The candidate pool is bounded: observing far more sessions than
// MaxSessions must not grow without limit.
func TestShadowSessionCap(t *testing.T) {
	cand := constModel(0)
	sh := promote.NewShadow(cand, promote.ShadowConfig{MaxSessions: 8})
	for sid := uint64(1); sid <= 100; sid++ {
		sh.Observe(sid, shadowState(int(sid)), 1.0, false)
	}
	if st := sh.Stats(); st.Mirrored != 100 {
		t.Fatalf("mirrored = %d, want 100 (the cap bounds residency, not observation)", st.Mirrored)
	}
}
