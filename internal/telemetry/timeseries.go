package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"

	"sage/internal/sim"
)

// Sampler records a fixed set of named float64 fields keyed by simulated
// time, decimated to at most one row per Period (0 = keep every sample).
// It is driven by sim.Time, never the wall clock, so recorded series are
// as deterministic as the simulation itself. A nil *Sampler no-ops.
type Sampler struct {
	mu     sync.Mutex
	fields []string
	period sim.Time
	next   sim.Time
	times  []sim.Time
	rows   [][]float64
}

// NewSampler returns a sampler for the given fields decimated to period.
func NewSampler(period sim.Time, fields ...string) *Sampler {
	return &Sampler{fields: fields, period: period}
}

// Fields returns the sampler's column names.
func (s *Sampler) Fields() []string {
	if s == nil {
		return nil
	}
	return s.fields
}

// Sample records vals at simulated time now and reports whether the row
// was kept (rows inside the decimation period are dropped). len(vals)
// must equal len(fields); short rows are zero-padded, long rows
// truncated, so a mismatched call never panics a hot loop.
func (s *Sampler) Sample(now sim.Time, vals ...float64) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.period > 0 && now < s.next {
		return false
	}
	s.next = now + s.period
	row := make([]float64, len(s.fields))
	copy(row, vals)
	s.times = append(s.times, now)
	s.rows = append(s.rows, row)
	return true
}

// Len returns the number of recorded rows.
func (s *Sampler) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.rows)
}

// At returns row i as (time, values). The returned slice is owned by the
// sampler; callers must not mutate it.
func (s *Sampler) At(i int) (sim.Time, []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.times[i], s.rows[i]
}

// WriteCSV writes the series with a header row ("t_us" plus the field
// names); timestamps are integer simulated microseconds.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"t_us"}, s.fields...)); err != nil {
		return err
	}
	rec := make([]string, 1+len(s.fields))
	for i, row := range s.rows {
		rec[0] = strconv.FormatInt(int64(s.times[i]), 10)
		for j, v := range row {
			rec[j+1] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSONL writes one JSON object per row: {"t_us":..., "<field>":...}.
func (s *Sampler) WriteJSONL(w io.Writer) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	enc := json.NewEncoder(w)
	obj := make(map[string]float64, len(s.fields)+1)
	for i, row := range s.rows {
		clear(obj)
		obj["t_us"] = float64(s.times[i])
		for j, f := range s.fields {
			obj[f] = row[j]
		}
		if err := enc.Encode(obj); err != nil {
			return fmt.Errorf("telemetry: sampler jsonl: %w", err)
		}
	}
	return nil
}
