package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestFleetTotals(t *testing.T) {
	f := NewFleet()
	f.Update("agent-a", map[string]float64{"cells_done": 3, "shard_bytes": 100})
	f.Update("agent-b", map[string]float64{"cells_done": 2})
	f.Update("agent-a", map[string]float64{"cells_done": 5, "shard_bytes": 150}) // replaces, not adds

	if got := f.Total("cells_done"); got != 7 {
		t.Fatalf("cells_done total = %g, want 7", got)
	}
	if got := f.Totals()["shard_bytes"]; got != 150 {
		t.Fatalf("shard_bytes total = %g, want 150", got)
	}
	if agents := f.Agents(); len(agents) != 2 || agents[0] != "agent-a" || agents[1] != "agent-b" {
		t.Fatalf("agents = %v", agents)
	}
	if s := f.String(); !strings.Contains(s, "cells_done=7") {
		t.Fatalf("String() = %q", s)
	}

	f.Forget("agent-a")
	if got := f.Total("cells_done"); got != 2 {
		t.Fatalf("after forget, cells_done = %g, want 2", got)
	}
}

func TestFleetStale(t *testing.T) {
	f := NewFleet()
	now := time.Unix(1000, 0)
	f.SetClock(func() time.Time { return now })
	f.Update("fresh", map[string]float64{})
	f.Update("dead", map[string]float64{})

	now = now.Add(10 * time.Second)
	f.Update("fresh", map[string]float64{})

	stale := f.Stale(5 * time.Second)
	if len(stale) != 1 || stale[0] != "dead" {
		t.Fatalf("stale = %v, want [dead]", stale)
	}
	if got := f.LastSeen("fresh"); !got.Equal(now) {
		t.Fatalf("lastSeen = %v, want %v", got, now)
	}
	if !f.LastSeen("unknown").IsZero() {
		t.Fatal("unknown agent has a LastSeen")
	}
}

// TestFleetNilSafe: every method on a nil fleet is a usable no-op, so
// call sites need no nil guards (matching Registry's contract).
func TestFleetNilSafe(t *testing.T) {
	var f *Fleet
	f.Update("a", map[string]float64{"x": 1})
	f.Forget("a")
	f.SetClock(time.Now)
	if f.Agents() != nil || f.Stale(time.Second) != nil {
		t.Fatal("nil fleet invented agents")
	}
	if f.Total("x") != 0 || f.Totals() != nil || f.String() != "" {
		t.Fatal("nil fleet invented totals")
	}
	if !f.LastSeen("a").IsZero() {
		t.Fatal("nil fleet has a LastSeen")
	}
	f.PublishExpvar("nil-fleet") // must not panic
}
