package telemetry

import (
	"testing"

	"sage/internal/sim"
)

// BenchmarkTelemetryDisabled is the no-op-path guard: the exact calls a
// rollout step makes when telemetry is off (nil trace, nil counters)
// must cost a handful of nil checks — under 5 ns/op on any modern core.
// TestNoopOverheadBudget enforces the budget in regular test runs.
func BenchmarkTelemetryDisabled(b *testing.B) {
	var (
		tr *FlowTrace
		c  *Counter
		g  *Gauge
	)
	s := FlowSample{AtUs: 1, Flow: 1, Cwnd: 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(s)
		c.Add(1)
		g.Set(1)
	}
}

// BenchmarkTelemetryEnabled is the comparison point: the same calls
// against live metrics and an in-period (decimated-away) trace sample.
func BenchmarkTelemetryEnabled(b *testing.B) {
	tr := NewFlowTrace(sim.Second)
	r := NewRegistry()
	c := r.Counter("ticks")
	g := r.Gauge("cwnd")
	s := FlowSample{AtUs: 1, Flow: 1, Cwnd: 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(s)
		c.Add(1)
		g.Set(1)
	}
}

func BenchmarkNoopCounter(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 1023))
	}
}

// TestNoopOverheadBudget measures the disabled path with testing.Benchmark
// and fails if a nil-telemetry rollout-step's worth of calls exceeds the
// budget. The bound is generous (5 ns/op target, 50 ns/op ceiling) so a
// loaded CI machine doesn't flake; the race detector and -short skip it.
func TestNoopOverheadBudget(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("timing-sensitive; skipped under -short and -race")
	}
	res := testing.Benchmark(BenchmarkTelemetryDisabled)
	if res.N == 0 {
		t.Skip("benchmark did not run")
	}
	if ns := res.NsPerOp(); ns > 50 {
		t.Fatalf("disabled telemetry costs %d ns/op, budget 50 (target 5)", ns)
	}
	if res.AllocsPerOp() != 0 {
		t.Fatalf("disabled telemetry allocates %d/op", res.AllocsPerOp())
	}
}
