package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"

	"sage/internal/sim"
)

// FlowSample is one per-tick observation of a TCP flow's datapath,
// combining sender state (cwnd, srtt, inflight, delivery rate, loss and
// retransmission counters) with bottleneck state (queue occupancy) —
// the raw material of the paper's cwnd/delay/throughput time-series
// figures (Figs. 17–19, 24, 25).
type FlowSample struct {
	AtUs         int64   `json:"t_us"` // simulated microseconds
	Flow         int     `json:"flow"`
	Cwnd         float64 `json:"cwnd_pkts"`
	SRTTMs       float64 `json:"srtt_ms"`
	RTTVarMs     float64 `json:"rttvar_ms"`
	InflightPkts int     `json:"inflight_pkts"`
	DeliveryBps  float64 `json:"delivery_bps"`
	LostPkts     int64   `json:"lost_pkts"`  // cumulative
	Retrans      int64   `json:"rto_count"`  // cumulative RTO firings
	Recoveries   int64   `json:"recoveries"` // cumulative fast-recovery entries
	QueuePkts    int     `json:"queue_pkts"`
	QueueBytes   int     `json:"queue_bytes"`
	Action       float64 `json:"action"` // GR cwnd ratio (0 when not collected)
	Reward       float64 `json:"reward"`
}

// FlowTrace accumulates FlowSamples, optionally decimated to one sample
// per Period of simulated time per flow. A nil *FlowTrace no-ops, so
// rollout hot loops carry the pointer unconditionally.
type FlowTrace struct {
	mu      sync.Mutex
	period  sim.Time
	next    map[int]sim.Time
	samples []FlowSample
}

// NewFlowTrace returns a trace decimated to period (0 = keep every tick).
func NewFlowTrace(period sim.Time) *FlowTrace {
	return &FlowTrace{period: period, next: make(map[int]sim.Time)}
}

// Record appends s unless it falls inside the flow's decimation period.
func (t *FlowTrace) Record(s FlowSample) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.period > 0 {
		if at := sim.Time(s.AtUs); at < t.next[s.Flow] {
			return
		} else {
			t.next[s.Flow] = at + t.period
		}
	}
	t.samples = append(t.samples, s)
}

// Len returns the number of recorded samples.
func (t *FlowTrace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.samples)
}

// Samples returns a copy of the recorded samples.
func (t *FlowTrace) Samples() []FlowSample {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]FlowSample(nil), t.samples...)
}

// WriteJSONL writes one JSON object per sample (the schema documented in
// README's Observability section).
func (t *FlowTrace) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	enc := json.NewEncoder(w)
	for i := range t.samples {
		if err := enc.Encode(&t.samples[i]); err != nil {
			return fmt.Errorf("telemetry: flow trace jsonl: %w", err)
		}
	}
	return nil
}

// WriteCSV writes the samples with a header row matching the JSON field
// names.
func (t *FlowTrace) WriteCSV(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cw := csv.NewWriter(w)
	header := []string{"t_us", "flow", "cwnd_pkts", "srtt_ms", "rttvar_ms",
		"inflight_pkts", "delivery_bps", "lost_pkts", "rto_count",
		"recoveries", "queue_pkts", "queue_bytes", "action", "reward"}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, s := range t.samples {
		rec := []string{
			strconv.FormatInt(s.AtUs, 10),
			strconv.Itoa(s.Flow),
			f(s.Cwnd), f(s.SRTTMs), f(s.RTTVarMs),
			strconv.Itoa(s.InflightPkts),
			f(s.DeliveryBps),
			strconv.FormatInt(s.LostPkts, 10),
			strconv.FormatInt(s.Retrans, 10),
			strconv.FormatInt(s.Recoveries, 10),
			strconv.Itoa(s.QueuePkts),
			strconv.Itoa(s.QueueBytes),
			f(s.Action), f(s.Reward),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
