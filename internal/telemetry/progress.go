package telemetry

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is an operator-facing progress meter with rate and ETA: the
// done count is a telemetry Counter fed (possibly concurrently) by
// worker goroutines, and prints are throttled to at most one per
// MinInterval so hot loops can call Add freely. This is the one type in
// the package that reads the wall clock — ETAs are about the run, not
// the simulation. A nil *Progress no-ops.
type Progress struct {
	label      string
	total      int64
	done       Counter
	extra      Counter // secondary unit (e.g. transitions, steps)
	extraLabel string

	w         io.Writer
	interval  time.Duration
	start     time.Time
	mu        sync.Mutex
	lastPrint time.Time
	lastDone  int64
	closed    atomic.Bool
}

// NewProgress returns a meter for total units of work (0 = unknown
// total: rate is still reported, ETA is not), printing to w at most
// every interval (0 = a 1 s default).
func NewProgress(w io.Writer, label string, total int64, interval time.Duration) *Progress {
	if interval == 0 {
		interval = time.Second
	}
	return &Progress{
		label:    label,
		total:    total,
		w:        w,
		interval: interval,
		start:    time.Now(),
	}
}

// ExtraLabel names the secondary unit in the printed rate (default
// "extra"). Returns p for chaining.
func (p *Progress) ExtraLabel(name string) *Progress {
	if p != nil {
		p.extraLabel = name
	}
	return p
}

// Done returns the units completed so far.
func (p *Progress) Done() int64 { return p.done.Value() }

// Extra returns the secondary-unit count (see AddExtra).
func (p *Progress) Extra() int64 { return p.extra.Value() }

// AddExtra accumulates a secondary unit reported alongside the rate
// line — e.g. transitions collected while rollouts are the primary unit.
func (p *Progress) AddExtra(n int64) {
	if p == nil {
		return
	}
	p.extra.Add(n)
}

// Add records n completed units and prints a throttled progress line.
func (p *Progress) Add(n int64) {
	if p == nil {
		return
	}
	p.done.Add(n)
	p.maybePrint(false)
}

func (p *Progress) maybePrint(final bool) {
	if p.w == nil || p.closed.Load() {
		return
	}
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	if !final && now.Sub(p.lastPrint) < p.interval {
		return
	}
	done := p.done.Value()
	if !final && done == p.lastDone {
		return
	}
	p.lastPrint = now
	p.lastDone = done
	elapsed := now.Sub(p.start)
	rate := float64(done) / elapsed.Seconds()
	line := fmt.Sprintf("%s: %d", p.label, done)
	if p.total > 0 {
		line += fmt.Sprintf("/%d (%.0f%%)", p.total, 100*float64(done)/float64(p.total))
	}
	if elapsed > 0 && done > 0 {
		line += fmt.Sprintf("  %.1f/s", rate)
		if extra := p.extra.Value(); extra > 0 {
			unit := p.extraLabel
			if unit == "" {
				unit = "extra"
			}
			line += fmt.Sprintf("  %.0f %s/s", float64(extra)/elapsed.Seconds(), unit)
		}
		if p.total > 0 && done < p.total && rate > 0 {
			eta := time.Duration(float64(p.total-done) / rate * float64(time.Second))
			line += fmt.Sprintf("  ETA %s", eta.Round(time.Second))
		}
	}
	if final {
		line += fmt.Sprintf("  done in %s", elapsed.Round(time.Millisecond))
	}
	fmt.Fprintln(p.w, line)
}

// Finish prints a final summary line and silences further output.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.maybePrint(true)
	p.closed.Store(true)
}
