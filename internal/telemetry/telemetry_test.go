package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"sage/internal/sim"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pkts")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d", got)
	}
	if r.Counter("pkts") != c {
		t.Fatal("counter not memoized")
	}
	g := r.Gauge("cwnd")
	g.Set(12.5)
	if got := g.Value(); got != 12.5 {
		t.Fatalf("gauge = %g", got)
	}
	snap := r.Snapshot()
	if snap["pkts"] != 4 || snap["cwnd"] != 12.5 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Inc()
				r.Histogram("h").Observe(float64(j % 17))
				r.Gauge("g").Set(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d", got)
	}
	if got := r.Histogram("h").Summary().Count; got != 8000 {
		t.Fatalf("concurrent histogram count = %d", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{1, 2, 4, 8, 1000} {
		h.Observe(v)
	}
	s := h.Summary()
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum != 1015 {
		t.Fatalf("sum = %g", s.Sum)
	}
	if s.Min != 1 || s.Max != 1000 {
		t.Fatalf("min/max = %g/%g", s.Min, s.Max)
	}
	// P50 lands in the bucket holding the 3rd value (4): upper edge 8.
	if s.P50 < 4 || s.P50 > 8 {
		t.Fatalf("p50 = %g", s.P50)
	}
	if s.P99 < 1000 || s.P99 > 2048 {
		t.Fatalf("p99 = %g", s.P99)
	}
	if m := h.Mean(); m != 203 {
		t.Fatalf("mean = %g", m)
	}
	// Degenerate observations must not panic or corrupt the digest.
	h.Observe(0)
	h.Observe(-3)
	h.Observe(math.NaN())
	if got := h.Summary().Count; got != 8 {
		t.Fatalf("count after degenerate = %d", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	r.RegisterSampler("x", nil)
	if r.Snapshot() != nil || r.Sampler("x") != nil {
		t.Fatal("nil registry not empty")
	}
	if r.String() != "telemetry: disabled" {
		t.Fatalf("nil registry string = %q", r.String())
	}
	var c *Counter
	c.Add(1)
	if c.Value() != 0 {
		t.Fatal("nil counter")
	}
	var g *Gauge
	g.Set(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge")
	}
	var h *Histogram
	h.Observe(1)
	if h.Summary().Count != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram")
	}
	var s *Sampler
	if s.Sample(0, 1) || s.Len() != 0 || s.Fields() != nil {
		t.Fatal("nil sampler")
	}
	if err := s.WriteCSV(nil); err != nil {
		t.Fatal(err)
	}
	var ft *FlowTrace
	ft.Record(FlowSample{})
	if ft.Len() != 0 || ft.Samples() != nil {
		t.Fatal("nil flow trace")
	}
	if err := ft.WriteJSONL(nil); err != nil {
		t.Fatal(err)
	}
	var j *JSONL
	if err := j.Emit(1); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var p *Progress
	p.Add(1)
	p.AddExtra(1)
	p.Finish()
}

func TestSamplerDecimation(t *testing.T) {
	s := NewSampler(10*sim.Millisecond, "cwnd", "rtt")
	kept := 0
	for i := 0; i < 100; i++ {
		if s.Sample(sim.Time(i)*sim.Millisecond, float64(i), float64(2*i)) {
			kept++
		}
	}
	if kept != s.Len() || kept != 10 {
		t.Fatalf("kept %d rows (len %d), want 10", kept, s.Len())
	}
	at, row := s.At(1)
	if at != 10*sim.Millisecond || row[0] != 10 || row[1] != 20 {
		t.Fatalf("row 1 = %v %v", at, row)
	}
	// Short rows zero-pad, long rows truncate.
	s2 := NewSampler(0, "a", "b")
	s2.Sample(1, 5)
	s2.Sample(2, 1, 2, 3)
	if _, row := s2.At(0); row[1] != 0 {
		t.Fatal("short row not padded")
	}
	if _, row := s2.At(1); len(row) != 2 {
		t.Fatal("long row not truncated")
	}
}

func TestSamplerExport(t *testing.T) {
	s := NewSampler(0, "x")
	s.Sample(sim.Second, 1.5)
	s.Sample(2*sim.Second, 2.5)
	var csvBuf bytes.Buffer
	if err := s.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 3 || lines[0] != "t_us,x" || lines[1] != "1000000,1.5" {
		t.Fatalf("csv = %q", lines)
	}
	var jb bytes.Buffer
	if err := s.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&jb)
	n := 0
	for sc.Scan() {
		var obj map[string]float64
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if obj["x"] == 0 || obj["t_us"] == 0 {
			t.Fatalf("line %d = %v", n, obj)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("jsonl rows = %d", n)
	}
}

func TestFlowTrace(t *testing.T) {
	tr := NewFlowTrace(100 * sim.Millisecond)
	for i := 0; i < 50; i++ {
		tr.Record(FlowSample{AtUs: int64(i) * 20_000, Flow: 1, Cwnd: float64(i)})
		tr.Record(FlowSample{AtUs: int64(i) * 20_000, Flow: 2, Cwnd: float64(i)})
	}
	// 50 ticks at 20 ms decimated to 100 ms → 10 per flow.
	if tr.Len() != 20 {
		t.Fatalf("trace len = %d", tr.Len())
	}
	var jb bytes.Buffer
	if err := tr.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(jb.String(), "\n", 2)[0]
	var obj map[string]any
	if err := json.Unmarshal([]byte(first), &obj); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"t_us", "flow", "cwnd_pkts", "queue_pkts", "delivery_bps"} {
		if _, ok := obj[key]; !ok {
			t.Fatalf("jsonl missing %q: %v", key, obj)
		}
	}
	var cb bytes.Buffer
	if err := tr.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(cb.String()), "\n")); got != 21 {
		t.Fatalf("csv rows = %d", got)
	}
}

func TestJSONLEmit(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	type rec struct {
		Step int     `json:"step"`
		Loss float64 `json:"loss"`
	}
	if err := j.Emit(rec{1, 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := j.Emit(rec{2, 0.25}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var r rec
	if err := json.Unmarshal([]byte(lines[1]), &r); err != nil {
		t.Fatal(err)
	}
	if r.Step != 2 || r.Loss != 0.25 {
		t.Fatalf("record = %+v", r)
	}
}

func TestProgress(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "rollouts", 10, time.Nanosecond)
	for i := 0; i < 10; i++ {
		p.Add(1)
		p.AddExtra(100)
	}
	p.Finish()
	out := buf.String()
	if !strings.Contains(out, "rollouts: 10/10 (100%)") {
		t.Fatalf("missing final line: %q", out)
	}
	if !strings.Contains(out, "done in") {
		t.Fatalf("missing duration: %q", out)
	}
	if p.Done() != 10 || p.Extra() != 1000 {
		t.Fatalf("done=%d extra=%d", p.Done(), p.Extra())
	}
	// After Finish, output is silenced.
	n := buf.Len()
	p.Add(1)
	if buf.Len() != n {
		t.Fatal("progress printed after Finish")
	}
}

func TestServeDebug(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// The listener address isn't exposed by http.Server; bind a second
	// server to verify the error path instead and hit the mux directly.
	if _, err := ServeDebug("256.0.0.1:bad"); err == nil {
		t.Fatal("bad addr accepted")
	}
	req, _ := http.NewRequest("GET", "/debug/vars", nil)
	rec := &responseRecorder{header: http.Header{}}
	srv.Handler.ServeHTTP(rec, req)
	if rec.status != 0 && rec.status != http.StatusOK {
		t.Fatalf("vars status = %d", rec.status)
	}
	if !strings.Contains(rec.body.String(), "memstats") {
		t.Fatalf("expvar output missing memstats: %.80s", rec.body.String())
	}
}

type responseRecorder struct {
	header http.Header
	body   bytes.Buffer
	status int
}

func (r *responseRecorder) Header() http.Header         { return r.header }
func (r *responseRecorder) Write(b []byte) (int, error) { return r.body.Write(b) }
func (r *responseRecorder) WriteHeader(code int)        { r.status = code }
