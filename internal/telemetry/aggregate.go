package telemetry

import (
	"expvar"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Fleet aggregates metric snapshots reported by remote agents — the
// coordinator-side view of a distributed campaign. Each agent ships its
// Registry.Snapshot() in heartbeats; the fleet keeps the latest snapshot
// per agent and exposes cross-fleet totals, so one scrape of the
// coordinator answers "how many rollouts/transitions has the whole fleet
// done" without touching any agent. Nil-safe like the rest of the
// package: every method on a nil *Fleet is a no-op.
type Fleet struct {
	mu     sync.Mutex
	agents map[string]*agentSnap
	now    func() time.Time
}

type agentSnap struct {
	metrics  map[string]float64
	lastSeen time.Time
}

// NewFleet returns an empty aggregator.
func NewFleet() *Fleet {
	return &Fleet{agents: make(map[string]*agentSnap), now: time.Now}
}

// SetClock overrides the time source (tests).
func (f *Fleet) SetClock(now func() time.Time) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = now
}

// Update replaces agent's latest snapshot and stamps it as seen now.
// Counter-style metrics must be cumulative per agent (which is what
// Registry.Snapshot produces), so totals never double-count.
func (f *Fleet) Update(agent string, snap map[string]float64) {
	if f == nil || agent == "" {
		return
	}
	cp := make(map[string]float64, len(snap))
	for k, v := range snap {
		cp[k] = v
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.agents[agent] = &agentSnap{metrics: cp, lastSeen: f.now()}
}

// Forget drops an agent (evicted or drained) from the aggregate.
func (f *Fleet) Forget(agent string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.agents, agent)
}

// Agents returns the known agent ids, sorted.
func (f *Fleet) Agents() []string {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.agents))
	for id := range f.agents {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// LastSeen returns when the agent last reported, or a zero time if it
// never has.
func (f *Fleet) LastSeen(agent string) time.Time {
	if f == nil {
		return time.Time{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if a, ok := f.agents[agent]; ok {
		return a.lastSeen
	}
	return time.Time{}
}

// Stale returns the ids of agents not heard from within ttl, sorted —
// the coordinator's liveness sweep reads this to expire leases.
func (f *Fleet) Stale(ttl time.Duration) []string {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cutoff := f.now().Add(-ttl)
	var out []string
	for id, a := range f.agents {
		if a.lastSeen.Before(cutoff) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Totals sums every metric across agents, keyed by metric name. Gauges
// and histogram percentiles sum too — meaningless for some of them, but
// the caller knows which names are counters; the fleet does not invent a
// schema.
func (f *Fleet) Totals() map[string]float64 {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := map[string]float64{}
	for _, a := range f.agents {
		for k, v := range a.metrics {
			out[k] += v
		}
	}
	return out
}

// Total returns the fleet-wide sum of one metric.
func (f *Fleet) Total(name string) float64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s := 0.0
	for _, a := range f.agents {
		s += a.metrics[name]
	}
	return s
}

// String renders a sorted name=total line, mirroring Registry.String.
func (f *Fleet) String() string {
	if f == nil {
		return ""
	}
	totals := f.Totals()
	names := make([]string, 0, len(totals))
	for n := range totals {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%g", n, totals[n])
	}
	return b.String()
}

// PublishExpvar exposes the fleet totals (plus an agent count) under the
// given expvar name. Idempotent per name; panics on duplicate names like
// expvar itself, so call once per process.
func (f *Fleet) PublishExpvar(name string) {
	if f == nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		v := map[string]any{"agents": len(f.Agents())}
		for k, t := range f.Totals() {
			v[k] = t
		}
		return v
	}))
}
