package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// ServeDebug starts an HTTP server on addr exposing the Go profiling
// endpoints (/debug/pprof/...) and expvar (/debug/vars) — the profiling
// hook behind the cmd tools' -pprof flag. It uses a private mux, so
// nothing leaks onto http.DefaultServeMux. The listener is bound
// synchronously (so a bad addr fails fast) and served in a background
// goroutine; the returned server can be Closed by the caller, or simply
// abandoned for process-lifetime profiling.
func ServeDebug(addr string) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: pprof listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, nil
}
