//go:build !race

package telemetry

// raceEnabled reports whether the race detector instruments this build;
// timing-sensitive guards (the no-op overhead test) relax under it.
const raceEnabled = false
