package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// JSONL is a concurrency-safe, buffered JSON-lines emitter: every Emit
// writes one JSON object on its own line. It is the wire format of the
// -metrics flags on the cmd tools. A nil *JSONL no-ops, so callers can
// thread a single pointer through and leave it nil when metrics are off.
type JSONL struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	c   io.Closer // non-nil when the emitter owns the file
}

// NewJSONL wraps w in a buffered JSONL emitter. Call Close to flush.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{bw: bw, enc: json.NewEncoder(bw)}
}

// CreateJSONL creates (truncating) path and returns an emitter that owns
// the file: Close flushes and closes it.
func CreateJSONL(path string) (*JSONL, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: metrics file: %w", err)
	}
	j := NewJSONL(f)
	j.c = f
	return j, nil
}

// Emit writes record as one JSON line. Marshalling errors are returned
// but leave the emitter usable.
func (j *JSONL) Emit(record any) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.enc.Encode(record)
}

// Flush forces buffered lines to the underlying writer.
func (j *JSONL) Flush() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bw.Flush()
}

// Close flushes and, when the emitter owns its file, closes it. The
// first error encountered wins (flush errors are not masked by a
// successful close, and vice versa).
func (j *JSONL) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.bw.Flush()
	if j.c != nil {
		if cerr := j.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
