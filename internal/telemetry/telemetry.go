// Package telemetry is the repository's observability layer: an
// allocation-conscious metrics core (counters, gauges, log-bucketed
// histograms), a sim-time-keyed timeseries sampler, per-flow datapath
// tracing, progress/ETA reporting, and JSONL/CSV export for the
// paper-style figures.
//
// Every type in this package is nil-safe: calling any method on a nil
// *Registry, *Counter, *Gauge, *Histogram, *Sampler, *FlowTrace or
// *Progress is a no-op. Hot paths therefore carry a single nil pointer
// and pay only a predicted branch when telemetry is disabled — see
// BenchmarkNoopCounter / BenchmarkTelemetryDisabled for the guard.
//
// Wall-clock time never enters simulation-derived metrics: the Sampler
// and FlowTrace are keyed by sim.Time, so traces are reproducible
// bit-for-bit like the simulations that produce them. Only Progress
// (operator-facing ETA output) reads the wall clock.
package telemetry

import (
	"expvar"
	"fmt"
	"sort"
	"sync"
)

// Registry is a named collection of metrics. The zero value is not
// usable; use NewRegistry. A nil *Registry is a valid "disabled"
// registry: every lookup returns a nil metric whose methods no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	samplers map[string]*Sampler
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		samplers: make(map[string]*Sampler),
	}
}

// Counter returns the named counter, creating it on first use.
// Returns nil (a no-op counter) when r is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// RegisterSampler attaches a sampler so it appears in snapshots and
// exports. Re-registering a name replaces the previous sampler.
func (r *Registry) RegisterSampler(name string, s *Sampler) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samplers[name] = s
}

// Sampler returns the sampler registered under name, or nil.
func (r *Registry) Sampler(name string) *Sampler {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.samplers[name]
}

// Snapshot returns a point-in-time flat view of every counter, gauge,
// and histogram summary, keyed by metric name (histograms expand to
// name.count / name.sum / name.min / name.max / name.p50 / name.p99).
// Keys are sorted for stable output.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+6*len(r.hists))
	for n, c := range r.counters {
		out[n] = float64(c.Value())
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	for n, h := range r.hists {
		s := h.Summary()
		out[n+".count"] = float64(s.Count)
		out[n+".sum"] = s.Sum
		out[n+".min"] = s.Min
		out[n+".max"] = s.Max
		out[n+".p50"] = s.P50
		out[n+".p99"] = s.P99
	}
	return out
}

// Names returns the sorted metric names present in a snapshot — handy
// for deterministic CSV headers.
func Names(snap map[string]float64) []string {
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PublishExpvar exposes the registry as an expvar.Var under name, so a
// -pprof debug server serves it at /debug/vars. Publishing the same
// name twice panics (expvar semantics); callers should publish once.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// String renders the snapshot compactly (for logs and tests).
func (r *Registry) String() string {
	if r == nil {
		return "telemetry: disabled"
	}
	snap := r.Snapshot()
	s := ""
	for _, n := range Names(snap) {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%g", n, snap[n])
	}
	return s
}
