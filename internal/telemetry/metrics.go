package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. Safe for concurrent use;
// a nil *Counter no-ops.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float64. Safe for concurrent use; a nil *Gauge
// no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 for nil; the zero bit pattern
// decodes to 0.0, so an unset gauge also reads 0).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of log2 buckets: bucket i counts values in
// [2^(i+histMinExp), 2^(i+1+histMinExp)), spanning ~1e-9 .. ~1e9 with
// one bucket per octave. Values outside the span clamp to the end
// buckets; zero and negative values land in bucket 0.
const (
	histBuckets = 64
	histMinExp  = -30 // 2^-30 ≈ 1e-9
)

// Histogram is a log2-bucketed distribution with exact count/sum/min/max.
// Observe is lock-free (atomics only); Summary is approximate at bucket
// resolution (≤2× relative error on quantiles). A nil *Histogram no-ops.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	minBits atomic.Uint64
	maxBits atomic.Uint64
	buckets [histBuckets]atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

func bucketOf(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	e := int(math.Floor(math.Log2(v))) - histMinExp
	if e < 0 {
		return 0
	}
	if e >= histBuckets {
		return histBuckets - 1
	}
	return e
}

// bucketUpper returns the upper edge of bucket i.
func bucketUpper(i int) float64 {
	return math.Ldexp(1, i+1+histMinExp)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.buckets[bucketOf(v)].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) {
			break
		}
		if h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// HistSummary is a point-in-time histogram digest.
type HistSummary struct {
	Count    int64
	Sum      float64
	Min, Max float64
	P50, P99 float64 // bucket-resolution quantiles (upper edge)
}

// Summary digests the histogram. Quantiles report the upper edge of the
// bucket containing the quantile; Min/Max are exact. Nil or empty
// histograms return the zero summary.
func (h *Histogram) Summary() HistSummary {
	if h == nil {
		return HistSummary{}
	}
	n := h.count.Load()
	if n == 0 {
		return HistSummary{}
	}
	s := HistSummary{
		Count: n,
		Sum:   math.Float64frombits(h.sumBits.Load()),
		Min:   math.Float64frombits(h.minBits.Load()),
		Max:   math.Float64frombits(h.maxBits.Load()),
	}
	quantile := func(q float64) float64 {
		target := int64(math.Ceil(q * float64(n)))
		if target < 1 {
			target = 1
		}
		cum := int64(0)
		for i := 0; i < histBuckets; i++ {
			cum += h.buckets[i].Load()
			if cum >= target {
				return bucketUpper(i)
			}
		}
		return s.Max
	}
	s.P50 = quantile(0.50)
	s.P99 = quantile(0.99)
	return s
}

// Mean returns Sum/Count (0 when empty).
func (h *Histogram) Mean() float64 {
	s := h.Summary()
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
