package gr

import (
	"testing"
)

func TestApplyMaskInto(t *testing.T) {
	state := make([]float64, StateDim)
	for i := range state {
		state[i] = float64(i)
	}
	for _, mask := range [][]int{MaskFull(), MaskNoMinMax(), MaskNoRTTVar(), MaskNoLossInflight()} {
		want := ApplyMask(state, mask)
		var buf []float64
		buf = ApplyMaskInto(buf, state, mask) // grows from nil
		if len(buf) != len(want) {
			t.Fatalf("len = %d, want %d", len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("buf[%d] = %v, want %v", i, buf[i], want[i])
			}
		}
		// A big-enough buffer is reused, shrunk to the mask length.
		big := make([]float64, StateDim+7)
		out := ApplyMaskInto(big, state, mask)
		if &out[0] != &big[0] {
			t.Error("ApplyMaskInto reallocated a sufficient buffer")
		}
	}
}

// The per-interval decision path must not pay an allocation for the mask
// projection once its scratch buffer is warm.
func TestApplyMaskIntoNoAllocs(t *testing.T) {
	state := make([]float64, StateDim)
	mask := MaskNoMinMax()
	buf := make([]float64, len(mask))
	allocs := testing.AllocsPerRun(100, func() {
		buf = ApplyMaskInto(buf, state, mask)
	})
	if allocs != 0 {
		t.Errorf("ApplyMaskInto allocates %v per call with a warm buffer", allocs)
	}
}
