package gr

import "fmt"

// SignalNames returns the 69 input-signal names in Table 1 order.
// Index i of a state vector corresponds to SignalNames()[i]
// (Table 1 numbers rows from 1; slices are 0-based).
func SignalNames() []string {
	names := []string{"srtt", "rttvar", "thr", "ca_state"}
	for _, sig := range []string{"rtt", "thr", "rtt_rate", "rtt_var", "inflight", "lost"} {
		for _, w := range []string{"s", "m", "l"} {
			for _, st := range []string{"avg", "min", "max"} {
				names = append(names, fmt.Sprintf("%s_%s.%s", sig, w, st))
			}
		}
	}
	names = append(names,
		"time_delta", "rtt_rate", "loss_db", "acked_rate", "dr_ratio",
		"bdp_cwnd", "dr", "cwnd_unacked_rate", "dr_max", "dr_max_ratio", "pre_act")
	return names
}

// Masks select input subsets for the ablation study of Fig. 12. Each mask is
// the sorted list of kept 0-based indices.

// MaskFull keeps all 69 signals.
func MaskFull() []int {
	idx := make([]int, StateDim)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// MaskNoMinMax removes every windowed min/max statistic, leaving the
// 33-element vector of the paper's "no Min/Max" model.
func MaskNoMinMax() []int {
	var keep []int
	for i := 0; i < 4; i++ {
		keep = append(keep, i)
	}
	// Windowed block: rows 5..58 (indices 4..57) in groups of 3 (avg,min,max).
	for g := 0; g < 18; g++ {
		keep = append(keep, 4+3*g) // the avg slot
	}
	for i := 58; i < StateDim; i++ {
		keep = append(keep, i)
	}
	return keep
}

// MaskNoRTTVar removes the RTT-rate and RTT-variance windows
// (Table 1 rows 23–40, indices 22..39), the "no rrtVar" model.
func MaskNoRTTVar() []int { return maskDroppingRange(22, 40) }

// MaskNoLossInflight removes the inflight and lost windows
// (Table 1 rows 41–58, indices 40..57), the "no Loss/Inf" model.
func MaskNoLossInflight() []int { return maskDroppingRange(40, 58) }

func maskDroppingRange(lo, hi int) []int {
	var keep []int
	for i := 0; i < StateDim; i++ {
		if i >= lo && i < hi {
			continue
		}
		keep = append(keep, i)
	}
	return keep
}

// ApplyMask projects state onto the kept indices.
func ApplyMask(state []float64, mask []int) []float64 {
	return ApplyMaskInto(make([]float64, len(mask)), state, mask)
}

// ApplyMaskInto is ApplyMask writing into dst, growing it only when it is
// too small. Controllers on the per-interval decision path keep a scratch
// buffer and call this to stay allocation-free.
func ApplyMaskInto(dst, state []float64, mask []int) []float64 {
	if cap(dst) < len(mask) {
		dst = make([]float64, len(mask))
	}
	dst = dst[:len(mask)]
	for i, j := range mask {
		dst[i] = state[j]
	}
	return dst
}
