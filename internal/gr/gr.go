// Package gr implements the paper's General Representation (GR) unit
// (Section 4.1): it periodically samples raw statistics of a TCP connection,
// maintains them over three timescales (Small/Medium/Large observation
// windows), assembles the 69-element state vector of Table 1, represents the
// scheme's output as the cwnd ratio a_t = cwnd_t / cwnd_{t-1}, and assigns
// the two reward terms — the power-style single-flow reward R1 (Eq. 1) and
// the TCP-friendliness reward R2 (Eq. 2).
package gr

import (
	"math"

	"sage/internal/sim"
)

// StateDim is the length of the full input vector (Table 1).
const StateDim = 69

// Config parameterizes the GR unit.
type Config struct {
	Interval sim.Time // monitoring/action period (default 20 ms)
	Small    int      // small observation window, in ticks (default 10)
	Medium   int      // medium observation window (default 200)
	Large    int      // large observation window (default 1000)
	Xi       float64  // loss penalty ξ in R1 (default 1)
	Kappa    float64  // throughput emphasis κ in R1 (default 2)
	// RewardWindow smooths the delivery/loss rates used for reward labeling
	// over this many ticks (default 50, i.e. 1 s at the default interval):
	// per-tick ACK clocking is too bursty to score long-horizon objectives.
	RewardWindow int
}

// Fill applies the paper's defaults to unset fields and returns the config.
func (c Config) Fill() Config {
	if c.Interval == 0 {
		c.Interval = 20 * sim.Millisecond
	}
	if c.Small == 0 {
		c.Small = 10
	}
	if c.Medium == 0 {
		c.Medium = 200
	}
	if c.Large == 0 {
		c.Large = 1000
	}
	if c.Xi == 0 {
		c.Xi = 1
	}
	if c.Kappa == 0 {
		c.Kappa = 2
	}
	if c.RewardWindow == 0 {
		c.RewardWindow = 50
	}
	return c
}

// Granularity presets for the Fig. 14 study: every window forced to a single
// observation length.
func (c Config) WithUniformWindow(n int) Config {
	c = c.Fill()
	c.Small, c.Medium, c.Large = n, n, n
	return c
}

// RewardKind selects which reward term labels a trajectory.
type RewardKind int

// Reward terms.
const (
	RewardSingleFlow RewardKind = iota // R1: power-style (Eq. 1)
	RewardFriendly                     // R2: TCP-friendliness (Eq. 2)
)

// RewardContext supplies the environment ground truth the GR unit needs to
// label rewards (available because data collection runs under emulation,
// exactly as in the paper).
type RewardContext struct {
	Kind      RewardKind
	Capacity  func(now sim.Time) float64 // bottleneck bits/second at time now
	MinRTT    sim.Time                   // propagation round trip
	FairShare float64                    // bits/second ideal share (RewardFriendly)
}

// R1 computes the single-flow reward of Eq. 1, made scale-free by
// normalizing the delivery and loss rates by capacity and the delay by the
// propagation RTT: R1 = ((r−ξ·l)/cap)^κ / (d/minRTT).
func R1(deliveryBps, lossBps, capacityBps float64, delay, minRTT sim.Time, xi, kappa float64) float64 {
	if capacityBps <= 0 || minRTT <= 0 || delay <= 0 {
		return 0
	}
	num := (deliveryBps - xi*lossBps) / capacityBps
	if num < 0 {
		num = 0
	}
	d := float64(delay) / float64(minRTT)
	if d < 1 {
		d = 1
	}
	return math.Pow(num, kappa) / d
}

// R2 computes the TCP-friendliness reward of Eq. 2: exp(−8(x−1)²) with
// x = r/fr, peaking at the ideal fair share (Fig. 5).
func R2(deliveryBps, fairShareBps float64) float64 {
	if fairShareBps <= 0 {
		return 0
	}
	x := deliveryBps / fairShareBps
	return math.Exp(-8 * (x - 1) * (x - 1))
}
