package gr

import (
	"sage/internal/sim"
	"sage/internal/tcp"
)

// Step is one recorded timestep of a trajectory: the 69-element state, the
// generalized action a_t = cwnd_t/cwnd_{t-1}, and the reward.
type Step struct {
	State  []float64
	Action float64
	Reward float64
}

// Monitor samples a connection every Config.Interval and produces Steps.
// It plays the GR unit's role: the underlying CC scheme is a black box whose
// effect is visible only through the recorded raw signals and cwnd ratio.
type Monitor struct {
	cfg  Config
	conn *tcp.Conn
	rctx RewardContext

	// Windowed raw signals.
	sRTT     *series // ms
	sThr     *series // Mb/s
	sRTTRate *series // unitless
	sRTTVar  *series // ms
	sInfl    *series // packets
	sLost    *series // packets newly lost this tick

	prevNow       sim.Time
	prevCwnd      float64
	prevLastRTT   sim.Time
	prevDelivered int64
	prevDelPkts   int64
	prevLost      int64
	prevDR        float64
	prevDRMax     float64
	prevAction    float64
	ticks         int

	// Cumulative counters sampled at each tick, for reward-rate smoothing
	// over the trailing RewardWindow ticks.
	delHist  []int64
	lostHist []int64
	timeHist []sim.Time
	histNext int
	histLen  int
}

// NewMonitor attaches a GR monitor to conn. The reward context describes the
// environment the connection runs in (used only during data collection; at
// deployment the policy consumes states, never rewards).
func NewMonitor(cfg Config, conn *tcp.Conn, rctx RewardContext) *Monitor {
	cfg = cfg.Fill()
	return &Monitor{
		cfg:        cfg,
		conn:       conn,
		rctx:       rctx,
		sRTT:       newSeries(cfg.Large),
		sThr:       newSeries(cfg.Large),
		sRTTRate:   newSeries(cfg.Large),
		sRTTVar:    newSeries(cfg.Large),
		sInfl:      newSeries(cfg.Large),
		sLost:      newSeries(cfg.Large),
		prevAction: 1,
		prevCwnd:   conn.Cwnd,
		delHist:    make([]int64, cfg.RewardWindow+1),
		lostHist:   make([]int64, cfg.RewardWindow+1),
		timeHist:   make([]sim.Time, cfg.RewardWindow+1),
	}
}

// smoothedRates returns delivery and loss rates in bits/second over the
// trailing reward window ending at now.
func (m *Monitor) smoothedRates(now sim.Time, delivered, lostBytes int64) (delBps, lossBps float64) {
	n := len(m.delHist)
	m.delHist[m.histNext] = delivered
	m.lostHist[m.histNext] = lostBytes
	m.timeHist[m.histNext] = now
	m.histNext = (m.histNext + 1) % n
	if m.histLen < n {
		m.histLen++
	}
	oldest := m.histNext
	if m.histLen < n {
		oldest = 0
	}
	span := now - m.timeHist[oldest]
	if m.histLen < 2 || span <= 0 {
		return 0, 0
	}
	delBps = float64(delivered-m.delHist[oldest]) * 8 / span.Seconds()
	lossBps = float64(lostBytes-m.lostHist[oldest]) * 8 / span.Seconds()
	return delBps, lossBps
}

// Config returns the monitor's (filled) configuration.
func (m *Monitor) Config() Config { return m.cfg }

// Ticks returns how many samples have been taken.
func (m *Monitor) Ticks() int { return m.ticks }

func msOf(t sim.Time) float64 { return t.Millis() }

func mbpsOfBytesPerSec(b float64) float64 { return b * 8 / 1e6 }

// Tick samples the connection at now and returns the completed Step.
func (m *Monitor) Tick(now sim.Time) Step {
	c := m.conn
	mss := float64(c.MSS())

	srttMs := msOf(c.SRTT())
	rttvarMs := msOf(c.RTTVar())
	thrMbps := mbpsOfBytesPerSec(c.DeliveryRate())
	lastRTT := c.LastRTT()

	rttRate := 1.0
	if m.prevLastRTT > 0 && lastRTT > 0 {
		rttRate = float64(lastRTT) / float64(m.prevLastRTT)
	}
	newLostPkts := float64(c.LostPkts() - m.prevLost)
	inflPkts := float64(c.InflightPkts())

	m.sRTT.push(srttMs)
	m.sThr.push(thrMbps)
	m.sRTTRate.push(rttRate)
	m.sRTTVar.push(rttvarMs)
	m.sInfl.push(inflPkts)
	m.sLost.push(newLostPkts)

	state := make([]float64, 0, StateDim)
	// 1-4: instantaneous kernel signals.
	state = append(state, srttMs, rttvarMs, thrMbps, float64(c.State()))
	// 5-58: windowed stats, avg/min/max over Small, Medium, Large.
	for _, s := range []*series{m.sRTT, m.sThr, m.sRTTRate, m.sRTTVar, m.sInfl, m.sLost} {
		for _, k := range []int{m.cfg.Small, m.cfg.Medium, m.cfg.Large} {
			avg, min, max := s.stats(k)
			state = append(state, avg, min, max)
		}
	}
	// 59-69: scalar signals.
	interval := now - m.prevNow
	if m.prevNow == 0 {
		interval = m.cfg.Interval
	}
	minRTT := c.MinRTT()
	timeDelta := 1.0
	if minRTT > 0 {
		timeDelta = float64(interval) / float64(minRTT)
	}
	lossDBMbps := mbpsOfBytesPerSec(newLostPkts * mss / interval.Seconds())
	ackedRate := 0.0
	if c.Cwnd > 0 {
		ackedRate = float64(c.DeliveredPkts()-m.prevDelPkts) / c.Cwnd
	}
	dr := c.DeliveryRate()
	drRatio := 1.0
	if m.prevDR > 0 && dr > 0 {
		drRatio = dr / m.prevDR
	}
	drMax := c.MaxDeliveryRate()
	bdpCwnd := 0.0
	if c.Cwnd > 0 && minRTT > 0 {
		bdpCwnd = drMax * minRTT.Seconds() / mss / c.Cwnd
	}
	cwndUnacked := 0.0
	if c.Cwnd > 0 {
		cwndUnacked = inflPkts / c.Cwnd
	}
	drMaxRatio := 1.0
	if m.prevDRMax > 0 && drMax > 0 {
		drMaxRatio = drMax / m.prevDRMax
	}
	state = append(state,
		timeDelta,                // 59 time_delta
		rttRate,                  // 60 rtt_rate
		lossDBMbps,               // 61 loss_db
		ackedRate,                // 62 acked_rate
		drRatio,                  // 63 dr_ratio
		bdpCwnd,                  // 64 bdp_cwnd
		mbpsOfBytesPerSec(dr),    // 65 dr
		cwndUnacked,              // 66 cwnd_unacked_rate
		mbpsOfBytesPerSec(drMax), // 67 dr_max
		drMaxRatio,               // 68 dr_max_ratio
		m.prevAction,             // 69 pre_act
	)

	// Generalized action: cwnd ratio.
	action := 1.0
	if m.prevCwnd > 0 {
		action = c.Cwnd / m.prevCwnd
	}

	// Reward for this timestep, over smoothed trailing-window rates.
	deliveryBps, lossBps := m.smoothedRates(now, c.Delivered(), c.LostPkts()*int64(mss))
	var reward float64
	switch m.rctx.Kind {
	case RewardFriendly:
		reward = R2(deliveryBps, m.rctx.FairShare)
	default:
		cap := 0.0
		if m.rctx.Capacity != nil {
			cap = m.rctx.Capacity(now)
		}
		delay := c.SRTT()
		reward = R1(deliveryBps, lossBps, cap, delay, m.rctx.MinRTT, m.cfg.Xi, m.cfg.Kappa)
	}

	m.prevNow = now
	m.prevCwnd = c.Cwnd
	m.prevLastRTT = lastRTT
	m.prevDelivered = c.Delivered()
	m.prevDelPkts = c.DeliveredPkts()
	m.prevLost = c.LostPkts()
	m.prevDR = dr
	m.prevDRMax = drMax
	m.prevAction = action
	m.ticks++

	return Step{State: state, Action: action, Reward: reward}
}
