package gr

import (
	"math"
	"testing"
	"testing/quick"

	"sage/internal/cc"
	"sage/internal/netem"
	"sage/internal/sim"
	"sage/internal/tcp"
)

func TestSignalNamesLayout(t *testing.T) {
	names := SignalNames()
	if len(names) != StateDim {
		t.Fatalf("got %d names, want %d", len(names), StateDim)
	}
	// Spot-check against Table 1.
	checks := map[int]string{
		0:  "srtt",
		1:  "rttvar",
		2:  "thr",
		3:  "ca_state",
		4:  "rtt_s.avg",
		12: "rtt_l.max",
		13: "thr_s.avg",
		22: "rtt_rate_s.avg",
		31: "rtt_var_s.avg",
		40: "inflight_s.avg",
		49: "lost_s.avg",
		58: "time_delta",
		64: "dr",
		68: "pre_act",
	}
	for i, want := range checks {
		if names[i] != want {
			t.Fatalf("names[%d] = %q, want %q", i, names[i], want)
		}
	}
}

func TestMasks(t *testing.T) {
	if got := len(MaskFull()); got != StateDim {
		t.Fatalf("full mask %d", got)
	}
	// The paper says removing min/max leaves 33 elements.
	if got := len(MaskNoMinMax()); got != 33 {
		t.Fatalf("no-minmax mask %d, want 33", got)
	}
	if got := len(MaskNoRTTVar()); got != StateDim-18 {
		t.Fatalf("no-rttvar mask %d, want %d", got, StateDim-18)
	}
	if got := len(MaskNoLossInflight()); got != StateDim-18 {
		t.Fatalf("no-loss/inf mask %d, want %d", got, StateDim-18)
	}
	names := SignalNames()
	for _, i := range MaskNoRTTVar() {
		n := names[i]
		if len(n) > 8 && (n[:8] == "rtt_rate" || n[:8] == "rtt_var_") && n != "rtt_rate" {
			t.Fatalf("no-rttvar mask kept %q", n)
		}
	}
	s := make([]float64, StateDim)
	for i := range s {
		s[i] = float64(i)
	}
	got := ApplyMask(s, []int{0, 5, 68})
	if got[0] != 0 || got[1] != 5 || got[2] != 68 {
		t.Fatalf("ApplyMask = %v", got)
	}
}

func TestSeriesStats(t *testing.T) {
	s := newSeries(5)
	if a, mn, mx := s.stats(3); a != 0 || mn != 0 || mx != 0 {
		t.Fatal("empty series must be zeros")
	}
	for _, v := range []float64{1, 2, 3, 4, 5, 6, 7} { // wraps the ring
		s.push(v)
	}
	a, mn, mx := s.stats(3) // last three: 5,6,7
	if a != 6 || mn != 5 || mx != 7 {
		t.Fatalf("stats(3) = %v %v %v", a, mn, mx)
	}
	a, mn, mx = s.stats(100) // clamped to capacity 5: 3..7
	if a != 5 || mn != 3 || mx != 7 {
		t.Fatalf("stats(100) = %v %v %v", a, mn, mx)
	}
}

// Property: windowed stats always satisfy min <= avg <= max and lie within
// the pushed values' range.
func TestSeriesStatsProperty(t *testing.T) {
	f := func(vals []float64, k uint8) bool {
		if len(vals) == 0 {
			return true
		}
		s := newSeries(64)
		for _, v := range vals {
			if math.IsNaN(v) || math.Abs(v) > 1e100 {
				return true // avoid float overflow artifacts in the sum
			}
			s.push(v)
		}
		a, mn, mx := s.stats(int(k%64) + 1)
		return mn <= a+1e-9 && a <= mx+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestR1Shape(t *testing.T) {
	minRTT := 20 * sim.Millisecond
	cap := 48e6
	// Full utilization at propagation delay: reward 1.
	if r := R1(cap, 0, cap, minRTT, minRTT, 1, 2); math.Abs(r-1) > 1e-9 {
		t.Fatalf("ideal R1 = %v", r)
	}
	// Higher delay strictly reduces reward.
	r1 := R1(cap, 0, cap, 2*minRTT, minRTT, 1, 2)
	if r1 >= 1 {
		t.Fatalf("bufferbloat not penalized: %v", r1)
	}
	// Loss strictly reduces reward.
	r2 := R1(cap, 0.5*cap, cap, minRTT, minRTT, 1, 2)
	if r2 >= 1 || r2 <= 0 {
		t.Fatalf("loss not penalized: %v", r2)
	}
	// Negative effective rate clamps to zero.
	if r := R1(0.1*cap, cap, cap, minRTT, minRTT, 1, 2); r != 0 {
		t.Fatalf("negative base not clamped: %v", r)
	}
	// Degenerate inputs.
	if R1(1, 0, 0, minRTT, minRTT, 1, 2) != 0 || R1(1, 0, cap, 0, minRTT, 1, 2) != 0 {
		t.Fatal("degenerate inputs must be zero")
	}
}

func TestR2Shape(t *testing.T) {
	// Peak of 1 at the fair share, symmetric decay (Fig. 5).
	if r := R2(10e6, 10e6); math.Abs(r-1) > 1e-12 {
		t.Fatalf("peak = %v", r)
	}
	lo, hi := R2(5e6, 10e6), R2(15e6, 10e6)
	if math.Abs(lo-hi) > 1e-12 {
		t.Fatalf("asymmetric: %v vs %v", lo, hi)
	}
	if lo >= 1 || lo <= 0 {
		t.Fatalf("decay value %v", lo)
	}
	if want := math.Exp(-8 * 0.25); math.Abs(lo-want) > 1e-12 {
		t.Fatalf("R2(0.5) = %v, want %v", lo, want)
	}
	if R2(1, 0) != 0 {
		t.Fatal("zero fair share must be zero")
	}
}

// Property: R2 is maximized at x=1 for any rate.
func TestR2PeakProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Abs(x)
		return R2(x*10e6, 10e6) <= R2(10e6, 10e6)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorProducesFullState(t *testing.T) {
	loop := sim.NewLoop()
	rate := netem.FlatRate(netem.Mbps(24))
	mrtt := 20 * sim.Millisecond
	qb := netem.BDPBytes(rate.At(0), mrtt) // 1-BDP buffer: delay stays bounded
	n := netem.New(loop, netem.Config{Rate: rate, MinRTT: mrtt, Queue: netem.NewDropTail(qb)})
	fl := tcp.NewFlow(loop, n, 1, cc.MustNew("cubic"), tcp.Options{})
	mon := NewMonitor(Config{}, fl.Conn, RewardContext{
		Kind:     RewardSingleFlow,
		Capacity: rate.At,
		MinRTT:   mrtt,
	})
	fl.Conn.Start(0)

	var steps []Step
	for tick := mon.Config().Interval; tick <= 5*sim.Second; tick += mon.Config().Interval {
		loop.RunUntil(tick)
		steps = append(steps, mon.Tick(tick))
	}
	if len(steps) < 200 {
		t.Fatalf("only %d steps", len(steps))
	}
	for i, s := range steps {
		if len(s.State) != StateDim {
			t.Fatalf("step %d: state dim %d", i, len(s.State))
		}
		for j, v := range s.State {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("step %d: state[%d] (%s) = %v", i, j, SignalNames()[j], v)
			}
		}
		if s.Action <= 0 || math.IsNaN(s.Action) {
			t.Fatalf("step %d: action %v", i, s.Action)
		}
		if s.Reward < 0 || math.IsNaN(s.Reward) {
			t.Fatalf("step %d: reward %v", i, s.Reward)
		}
	}
	// Cubic on an uncongested path must eventually earn strong rewards.
	late := steps[len(steps)-50:]
	sum := 0.0
	for _, s := range late {
		sum += s.Reward
	}
	if avg := sum / float64(len(late)); avg < 0.3 {
		t.Fatalf("late average reward %v, want utilization-driven reward", avg)
	}
	// pre_act (last element) must echo the previous action.
	for i := 1; i < len(steps); i++ {
		if steps[i].State[StateDim-1] != steps[i-1].Action {
			t.Fatalf("pre_act mismatch at %d", i)
		}
	}
	if mon.Ticks() != len(steps) {
		t.Fatalf("Ticks = %d", mon.Ticks())
	}
}

func TestMonitorFriendlyReward(t *testing.T) {
	loop := sim.NewLoop()
	rate := netem.FlatRate(netem.Mbps(24))
	mrtt := 40 * sim.Millisecond
	qb := netem.BDPBytes(rate.At(0), mrtt) * 2
	n := netem.New(loop, netem.Config{Rate: rate, MinRTT: mrtt, Queue: netem.NewDropTail(qb)})
	bg := tcp.NewFlow(loop, n, 1, cc.MustNew("cubic"), tcp.Options{})
	ut := tcp.NewFlow(loop, n, 2, cc.MustNew("cubic"), tcp.Options{})
	mon := NewMonitor(Config{}, ut.Conn, RewardContext{
		Kind:      RewardFriendly,
		FairShare: netem.Mbps(12),
	})
	bg.Conn.Start(0)
	loop.RunUntil(2 * sim.Second)
	ut.Conn.Start(loop.Now())
	var rewards []float64
	for tick := loop.Now() + 20*sim.Millisecond; tick <= 30*sim.Second; tick += 20 * sim.Millisecond {
		loop.RunUntil(tick)
		rewards = append(rewards, mon.Tick(tick).Reward)
	}
	// Cubic-vs-Cubic converges toward the fair share: late rewards high.
	late := rewards[len(rewards)-200:]
	sum := 0.0
	for _, r := range late {
		sum += r
	}
	if avg := sum / float64(len(late)); avg < 0.25 {
		t.Fatalf("late friendliness reward %v for cubic-vs-cubic", avg)
	}
}

func TestWithUniformWindow(t *testing.T) {
	c := Config{}.WithUniformWindow(10)
	if c.Small != 10 || c.Medium != 10 || c.Large != 10 {
		t.Fatalf("uniform window config %+v", c)
	}
	d := Config{}.Fill()
	if d.Small != 10 || d.Medium != 200 || d.Large != 1000 {
		t.Fatalf("defaults %+v", d)
	}
}
