package gr

// series is a ring buffer of the most recent Large samples of one raw
// signal, supporting avg/min/max over the trailing k samples — the
// Small/Medium/Large observation windows of Section 7.4.
type series struct {
	buf   []float64
	next  int
	count int
}

func newSeries(capacity int) *series {
	if capacity < 1 {
		capacity = 1
	}
	return &series{buf: make([]float64, capacity)}
}

func (s *series) push(v float64) {
	s.buf[s.next] = v
	s.next = (s.next + 1) % len(s.buf)
	if s.count < len(s.buf) {
		s.count++
	}
}

// stats returns (avg, min, max) over the trailing k samples (or all samples
// if fewer have been observed). With no samples it returns zeros.
func (s *series) stats(k int) (avg, min, max float64) {
	n := k
	if n > s.count {
		n = s.count
	}
	if n == 0 {
		return 0, 0, 0
	}
	i := s.next - 1
	if i < 0 {
		i += len(s.buf)
	}
	sum := 0.0
	min = s.buf[i]
	max = s.buf[i]
	for j := 0; j < n; j++ {
		v := s.buf[i]
		sum += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		i--
		if i < 0 {
			i += len(s.buf)
		}
	}
	return sum / float64(n), min, max
}
