package cc

import (
	"sage/internal/sim"
	"sage/internal/tcp"
)

func init() { Register("illinois", func() tcp.CongestionControl { return NewIllinois() }) }

// Illinois implements TCP-Illinois (Liu, Başar, Srikant 2008): a loss-delay
// hybrid whose AIMD parameters α (increase) and β (decrease) adapt to the
// measured queueing delay — aggressive when the queue is empty, gentle and
// sharply-backing-off when it fills.
type Illinois struct {
	AlphaMax, AlphaMin float64 // 10, 0.3
	BetaMin, BetaMax   float64 // 0.125, 0.5

	maxRTT sim.Time
	alpha  float64
	beta   float64
	clock  rttClock
	sumRTT sim.Time
	cntRTT int
}

// NewIllinois returns Illinois with the paper's standard parameters.
func NewIllinois() *Illinois {
	return &Illinois{AlphaMax: 10, AlphaMin: 0.3, BetaMin: 0.125, BetaMax: 0.5, alpha: 1, beta: 0.5}
}

// Name implements tcp.CongestionControl.
func (*Illinois) Name() string { return "illinois" }

// Init implements tcp.CongestionControl.
func (il *Illinois) Init(c *tcp.Conn) {}

func (il *Illinois) updateParams(c *tcp.Conn) {
	if il.cntRTT == 0 {
		return
	}
	avg := il.sumRTT / sim.Time(il.cntRTT)
	il.sumRTT, il.cntRTT = 0, 0
	base := c.BaseRTT()
	if base <= 0 || il.maxRTT <= base {
		il.alpha = il.AlphaMax
		il.beta = il.BetaMin
		return
	}
	da := float64(avg - base)       // current average queueing delay
	dm := float64(il.maxRTT - base) // maximum observed queueing delay
	d1 := 0.01 * dm
	if da <= d1 {
		il.alpha = il.AlphaMax
	} else {
		// α(da) = k1/(k2+da), continuous at d1 with α(d1)=αmax, α(dm)=αmin.
		k1 := (dm - d1) * il.AlphaMin * il.AlphaMax / (il.AlphaMax - il.AlphaMin)
		k2 := k1/il.AlphaMax - d1
		il.alpha = k1 / (k2 + da)
		if il.alpha < il.AlphaMin {
			il.alpha = il.AlphaMin
		}
	}
	d2, d3 := 0.1*dm, 0.8*dm
	switch {
	case da < d2:
		il.beta = il.BetaMin
	case da > d3:
		il.beta = il.BetaMax
	default:
		il.beta = il.BetaMin + (il.BetaMax-il.BetaMin)*(da-d2)/(d3-d2)
	}
}

// OnAck implements tcp.CongestionControl.
func (il *Illinois) OnAck(c *tcp.Conn, e tcp.AckEvent) {
	if e.RTT > il.maxRTT {
		il.maxRTT = e.RTT
	}
	il.sumRTT += e.RTT
	il.cntRTT++
	if il.clock.tick(e.Now, e.SRTT) {
		il.updateParams(c)
	}
	if e.State != tcp.StateOpen {
		return
	}
	if slowStart(c) {
		c.SetCwnd(c.Cwnd + float64(e.AckedPkts))
		return
	}
	c.SetCwnd(c.Cwnd + il.alpha*float64(e.AckedPkts)/c.Cwnd)
}

// OnLoss implements tcp.CongestionControl.
func (il *Illinois) OnLoss(c *tcp.Conn, lost int, now sim.Time) {
	multiplicativeLoss(c, 1-il.beta)
}

// OnRTO implements tcp.CongestionControl.
func (il *Illinois) OnRTO(c *tcp.Conn, now sim.Time) { rtoCollapse(c) }
