package cc

import (
	"sage/internal/sim"
	"sage/internal/tcp"
)

func init() { Register("westwood", func() tcp.CongestionControl { return &Westwood{} }) }

// Westwood implements TCP Westwood+ (Casetti et al. 2002): Reno-style growth
// with a bandwidth-estimate-based setting of ssthresh on loss
// (ssthresh = BWE · RTTmin), which avoids blind halving on lossy links.
type Westwood struct {
	bwe     float64 // bytes/second, low-pass filtered
	bkBytes int64
	lastT   sim.Time
}

// Name implements tcp.CongestionControl.
func (*Westwood) Name() string { return "westwood" }

// Init implements tcp.CongestionControl.
func (w *Westwood) Init(c *tcp.Conn) {}

// OnAck implements tcp.CongestionControl.
func (w *Westwood) OnAck(c *tcp.Conn, e tcp.AckEvent) {
	w.bkBytes += int64(e.AckedPkts * c.MSS())
	// Sample the ACK rate once per RTT and low-pass it (Westwood+).
	if w.lastT == 0 {
		w.lastT = e.Now
	} else if e.SRTT > 0 && e.Now-w.lastT >= e.SRTT {
		sample := float64(w.bkBytes) / (e.Now - w.lastT).Seconds()
		if w.bwe == 0 {
			w.bwe = sample
		} else {
			w.bwe = 0.875*w.bwe + 0.125*sample
		}
		w.bkBytes = 0
		w.lastT = e.Now
	}
	renoAck(c, e)
}

func (w *Westwood) bdpPkts(c *tcp.Conn) float64 {
	base := c.BaseRTT()
	if w.bwe <= 0 || base <= 0 {
		return 0
	}
	return w.bwe * base.Seconds() / float64(c.MSS())
}

// OnLoss implements tcp.CongestionControl.
func (w *Westwood) OnLoss(c *tcp.Conn, lost int, now sim.Time) {
	ss := w.bdpPkts(c)
	if ss < 2 {
		multiplicativeLoss(c, 0.5)
		return
	}
	c.Ssthresh = ss
	if c.Cwnd > ss {
		c.SetCwnd(ss)
	}
}

// OnRTO implements tcp.CongestionControl.
func (w *Westwood) OnRTO(c *tcp.Conn, now sim.Time) {
	ss := w.bdpPkts(c)
	if ss < 2 {
		ss = 2
	}
	c.Ssthresh = ss
	c.SetCwnd(1)
}
