package cc

import (
	"sage/internal/sim"
	"sage/internal/tcp"
)

func init() { Register("c2tcp", func() tcp.CongestionControl { return NewC2TCP() }) }

// C2TCP implements Cellular Controlled-delay TCP (Abbasloo et al. 2018/19):
// an add-on that lets an underlying loss-based scheme (Cubic here, as in the
// reference design) run unchanged while delay is below a setpoint, and cuts
// the window proportionally whenever packets exceed the target delay —
// bounding delay without modelling the link.
type C2TCP struct {
	Alpha float64 // setpoint multiplier over minRTT (the paper's knob)

	inner    *Cubic
	interval rttClock
	sumRTT   sim.Time
	cntRTT   int
}

// NewC2TCP returns C2TCP wrapping Cubic with setpoint α=1.6·minRTT.
func NewC2TCP() *C2TCP { return &C2TCP{Alpha: 1.6, inner: NewCubic()} }

// Name implements tcp.CongestionControl.
func (*C2TCP) Name() string { return "c2tcp" }

// Init implements tcp.CongestionControl.
func (t *C2TCP) Init(c *tcp.Conn) { t.inner.Init(c) }

// OnAck implements tcp.CongestionControl.
func (t *C2TCP) OnAck(c *tcp.Conn, e tcp.AckEvent) {
	t.inner.OnAck(c, e)
	t.sumRTT += e.RTT
	t.cntRTT++
	if !t.interval.tick(e.Now, e.SRTT) || t.cntRTT == 0 {
		return
	}
	avg := t.sumRTT / sim.Time(t.cntRTT)
	t.sumRTT, t.cntRTT = 0, 0
	base := c.BaseRTT()
	if base <= 0 {
		return
	}
	setpoint := sim.Time(float64(base) * t.Alpha)
	if avg > setpoint {
		// The condition fired: scale the window down toward the setpoint.
		f := float64(setpoint) / float64(avg)
		c.SetCwnd(c.Cwnd * f)
		if c.Cwnd < 2 {
			c.SetCwnd(2)
		}
		c.Ssthresh = c.Cwnd
	}
}

// OnLoss implements tcp.CongestionControl.
func (t *C2TCP) OnLoss(c *tcp.Conn, lost int, now sim.Time) { t.inner.OnLoss(c, lost, now) }

// OnRTO implements tcp.CongestionControl.
func (t *C2TCP) OnRTO(c *tcp.Conn, now sim.Time) { t.inner.OnRTO(c, now) }
