package cc

import (
	"sage/internal/sim"
	"sage/internal/tcp"
)

func init() { Register("pure", func() tcp.CongestionControl { return &Pure{} }) }

// Pure is the execution block's kernel module ("TCP Pure" in Section 3):
// it inherits the general TCP functionality — loss detection, RTO, ACK
// clocking — but makes no congestion decisions of its own. An external
// policy drives the window through the rollout.Controller hook. The only
// built-in reaction is the mandatory RTO collapse, a transport-correctness
// requirement rather than a policy.
type Pure struct{}

// Name implements tcp.CongestionControl.
func (*Pure) Name() string { return "pure" }

// Init implements tcp.CongestionControl.
func (*Pure) Init(c *tcp.Conn) {}

// OnAck implements tcp.CongestionControl.
func (*Pure) OnAck(c *tcp.Conn, e tcp.AckEvent) {}

// OnLoss implements tcp.CongestionControl.
func (*Pure) OnLoss(c *tcp.Conn, lost int, now sim.Time) {}

// OnRTO implements tcp.CongestionControl.
func (*Pure) OnRTO(c *tcp.Conn, now sim.Time) { c.SetCwnd(1) }
