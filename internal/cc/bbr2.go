package cc

import (
	"sage/internal/sim"
	"sage/internal/tcp"
)

func init() { Register("bbr2", func() tcp.CongestionControl { return NewBBR2() }) }

// bbrState is BBR's top-level state machine.
type bbrState int

const (
	bbrStartup bbrState = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

// BBR2 implements a faithful scaled-down TCP BBR v2 (Cardwell et al.):
// a model-based scheme that paces at a gain-cycled multiple of the windowed
// maximum delivery rate, bounds inflight by the estimated BDP, periodically
// probes for the minimum RTT, and — the v2 addition — reacts to loss by
// capping inflight at a headroom below the level that produced the loss.
type BBR2 struct {
	HighGain    float64 // startup pacing gain (2/ln2 ≈ 2.885)
	DrainGain   float64 // 1/HighGain
	CwndGain    float64 // 2.0
	Beta        float64 // v2 loss response (0.7)
	ProbeRTTGap sim.Time
	ProbeRTTDur sim.Time

	state       bbrState
	btlBw       *tcp.WindowedFilter // bytes/second
	minRTT      sim.Time
	minRTTStamp sim.Time
	fullBw      float64
	fullBwCnt   int
	round       rttClock
	cycleIdx    int
	cycleStamp  sim.Time
	inflightHi  float64 // v2 loss-bounded inflight cap, in packets (0 = unset)
	probeRTTEnd sim.Time
	priorCwnd   float64
}

var bbrPacingGains = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// NewBBR2 returns BBR v2 with the reference constants.
func NewBBR2() *BBR2 {
	return &BBR2{
		HighGain:    2.885,
		DrainGain:   1 / 2.885,
		CwndGain:    2.0,
		Beta:        0.7,
		ProbeRTTGap: 10 * sim.Second,
		ProbeRTTDur: 200 * sim.Millisecond,
		btlBw:       tcp.NewMaxFilter(2 * sim.Second),
	}
}

// Name implements tcp.CongestionControl.
func (*BBR2) Name() string { return "bbr2" }

// Init implements tcp.CongestionControl.
func (b *BBR2) Init(c *tcp.Conn) {
	b.state = bbrStartup
	c.PacingRate = float64(c.MSS()*10) / 0.001 // until the first rate sample
}

func (b *BBR2) bdpPkts(c *tcp.Conn) float64 {
	bw := b.btlBw.Get()
	if bw <= 0 || b.minRTT <= 0 {
		return c.Cwnd
	}
	return bw * b.minRTT.Seconds() / float64(c.MSS())
}

// OnAck implements tcp.CongestionControl.
func (b *BBR2) OnAck(c *tcp.Conn, e tcp.AckEvent) {
	now := e.Now
	if e.DeliveryRate > 0 {
		b.btlBw.Update(now, e.DeliveryRate)
	}
	if e.RTT > 0 && (b.minRTT == 0 || e.RTT <= b.minRTT || now-b.minRTTStamp > b.ProbeRTTGap) {
		b.minRTT = e.RTT
		b.minRTTStamp = now
	}
	newRound := b.round.tick(now, e.SRTT)

	switch b.state {
	case bbrStartup:
		if newRound {
			bw := b.btlBw.Get()
			if bw > b.fullBw*1.25 {
				b.fullBw = bw
				b.fullBwCnt = 0
			} else {
				b.fullBwCnt++
				if b.fullBwCnt >= 3 {
					b.state = bbrDrain
				}
			}
		}
	case bbrDrain:
		if float64(e.Inflight) <= b.bdpPkts(c) {
			b.enterProbeBW(now)
		}
	case bbrProbeBW:
		b.advanceCycle(c, e)
	case bbrProbeRTT:
		if now >= b.probeRTTEnd {
			b.minRTTStamp = now
			b.enterProbeBW(now)
			if b.priorCwnd > 0 {
				c.SetCwnd(b.priorCwnd)
			}
		}
	}

	// Enter ProbeRTT when the min-RTT estimate has gone stale.
	if b.state != bbrProbeRTT && b.minRTT > 0 && now-b.minRTTStamp > b.ProbeRTTGap {
		b.state = bbrProbeRTT
		b.probeRTTEnd = now + b.ProbeRTTDur
		b.priorCwnd = c.Cwnd
	}

	b.applyModel(c, e)
}

func (b *BBR2) enterProbeBW(now sim.Time) {
	b.state = bbrProbeBW
	b.cycleIdx = 2 // start in cruise
	b.cycleStamp = now
}

func (b *BBR2) advanceCycle(c *tcp.Conn, e tcp.AckEvent) {
	phaseLen := b.minRTT
	if phaseLen <= 0 {
		phaseLen = e.SRTT
	}
	if e.Now-b.cycleStamp < phaseLen {
		return
	}
	// Leave the 0.75 phase early once inflight has drained to the BDP.
	if bbrPacingGains[b.cycleIdx] == 0.75 && float64(e.Inflight) > b.bdpPkts(c) {
		return
	}
	b.cycleIdx = (b.cycleIdx + 1) % len(bbrPacingGains)
	b.cycleStamp = e.Now
	if bbrPacingGains[b.cycleIdx] == 1.25 {
		// v2 probing raises the inflight cap, reclaiming headroom.
		if b.inflightHi > 0 {
			b.inflightHi *= 1.25
		}
	}
}

func (b *BBR2) applyModel(c *tcp.Conn, e tcp.AckEvent) {
	bw := b.btlBw.Get()
	if bw <= 0 {
		return
	}
	var pacingGain, cwndGain float64
	switch b.state {
	case bbrStartup:
		pacingGain, cwndGain = b.HighGain, b.HighGain
	case bbrDrain:
		pacingGain, cwndGain = b.DrainGain, b.HighGain
	case bbrProbeBW:
		pacingGain, cwndGain = bbrPacingGains[b.cycleIdx], b.CwndGain
	case bbrProbeRTT:
		c.PacingRate = bw
		c.SetCwnd(4)
		return
	}
	c.PacingRate = pacingGain * bw
	cwnd := cwndGain * b.bdpPkts(c)
	if b.inflightHi > 0 && cwnd > b.inflightHi {
		cwnd = b.inflightHi
	}
	if cwnd < 4 {
		cwnd = 4
	}
	c.SetCwnd(cwnd)
}

// OnLoss implements tcp.CongestionControl.
func (b *BBR2) OnLoss(c *tcp.Conn, lost int, now sim.Time) {
	// v2 loss response: remember a bounded inflight and back off to Beta×.
	hi := float64(c.InflightPkts()+lost) * b.Beta
	if hi < 4 {
		hi = 4
	}
	if b.inflightHi == 0 || hi < b.inflightHi {
		b.inflightHi = hi
	}
	if b.state == bbrStartup {
		b.state = bbrDrain
	}
}

// OnRTO implements tcp.CongestionControl.
func (b *BBR2) OnRTO(c *tcp.Conn, now sim.Time) {
	c.SetCwnd(4)
	b.inflightHi = 0
	b.fullBw, b.fullBwCnt = 0, 0
	b.state = bbrStartup
}
