package cc

import (
	"sage/internal/sim"
	"sage/internal/tcp"
)

func init() { Register("bic", func() tcp.CongestionControl { return NewBIC() }) }

// BIC implements Binary Increase Congestion control (Xu, Harfoush, Rhee
// 2004): binary search toward the last loss point Wmax, linear "additive"
// steps capped at SMax far from it, and max-probing beyond it.
type BIC struct {
	Beta      float64 // multiplicative decrease (0.8, Linux's 819/1024)
	SMax      float64 // max per-RTT increment (32)
	SMin      float64 // min per-RTT increment (0.01)
	LowWindow float64 // below this behave like Reno (14)

	wMax     float64
	lastWMax float64
}

// NewBIC returns BIC with the Linux defaults.
func NewBIC() *BIC { return &BIC{Beta: 0.8, SMax: 32, SMin: 0.01, LowWindow: 14} }

// Name implements tcp.CongestionControl.
func (*BIC) Name() string { return "bic" }

// Init implements tcp.CongestionControl.
func (b *BIC) Init(c *tcp.Conn) { b.wMax = 0 }

// OnAck implements tcp.CongestionControl.
func (b *BIC) OnAck(c *tcp.Conn, e tcp.AckEvent) {
	if e.State != tcp.StateOpen {
		return
	}
	if slowStart(c) {
		c.SetCwnd(c.Cwnd + float64(e.AckedPkts))
		return
	}
	if c.Cwnd < b.LowWindow || b.wMax == 0 {
		c.SetCwnd(c.Cwnd + float64(e.AckedPkts)/c.Cwnd)
		return
	}
	var inc float64 // per-RTT target increment
	if c.Cwnd < b.wMax {
		dist := (b.wMax - c.Cwnd) / 2 // binary search midpoint step
		switch {
		case dist > b.SMax:
			inc = b.SMax
		case dist < b.SMin:
			inc = b.SMin
		default:
			inc = dist
		}
	} else {
		// Max probing: slow start away from wMax, accelerating.
		dist := c.Cwnd - b.wMax
		switch {
		case dist < b.SMax:
			inc = b.SMin + dist/2
		default:
			inc = b.SMax
		}
	}
	c.SetCwnd(c.Cwnd + inc*float64(e.AckedPkts)/c.Cwnd)
}

// OnLoss implements tcp.CongestionControl.
func (b *BIC) OnLoss(c *tcp.Conn, lost int, now sim.Time) {
	// Fast convergence.
	if c.Cwnd < b.lastWMax {
		b.lastWMax = c.Cwnd * (2 - b.Beta) / 2
	} else {
		b.lastWMax = c.Cwnd
	}
	b.wMax = b.lastWMax
	if c.Cwnd <= b.LowWindow {
		multiplicativeLoss(c, 0.5)
		return
	}
	multiplicativeLoss(c, b.Beta)
}

// OnRTO implements tcp.CongestionControl.
func (b *BIC) OnRTO(c *tcp.Conn, now sim.Time) {
	b.wMax = 0
	rtoCollapse(c)
}
