package cc

import (
	"sage/internal/sim"
	"sage/internal/tcp"
)

func init() { Register("yeah", func() tcp.CongestionControl { return NewYeAH() }) }

// YeAH implements YeAH-TCP (Baiocchi et al. 2007): a scalable "Fast" mode
// while the estimated queue is small, a Reno "Slow" mode plus precautionary
// decongestion once the queue estimate exceeds QMax, and a queue-aware loss
// response.
type YeAH struct {
	QMax float64 // queue threshold in packets (80)
	Phi  float64 // delay-ratio threshold divisor (8)

	clock   rttClock
	minRTT  sim.Time
	queuePk float64 // last queue estimate in packets
	fast    bool
}

// NewYeAH returns YeAH with the paper's Qmax=80, φ=8 parameters.
func NewYeAH() *YeAH { return &YeAH{QMax: 80, Phi: 8, fast: true} }

// Name implements tcp.CongestionControl.
func (*YeAH) Name() string { return "yeah" }

// Init implements tcp.CongestionControl.
func (y *YeAH) Init(c *tcp.Conn) {}

// OnAck implements tcp.CongestionControl.
func (y *YeAH) OnAck(c *tcp.Conn, e tcp.AckEvent) {
	if e.State != tcp.StateOpen {
		return
	}
	if y.minRTT == 0 || e.RTT < y.minRTT {
		y.minRTT = e.RTT
	}
	if slowStart(c) {
		c.SetCwnd(c.Cwnd + float64(e.AckedPkts))
	} else if y.fast {
		// Scalable (STCP) increase: 1 per 100th of the window per ack.
		c.SetCwnd(c.Cwnd + float64(e.AckedPkts)*c.Cwnd/100/c.Cwnd + float64(e.AckedPkts)*0.01)
	} else {
		c.SetCwnd(c.Cwnd + float64(e.AckedPkts)/c.Cwnd)
	}
	if !y.clock.tick(e.Now, e.SRTT) {
		return
	}
	rtt, base := y.minRTT, c.BaseRTT()
	y.minRTT = 0
	if rtt <= 0 || base <= 0 || rtt < base {
		return
	}
	queueDelay := rtt - base
	y.queuePk = float64(queueDelay) / float64(rtt) * c.Cwnd
	delayRatio := float64(queueDelay) / float64(base)
	y.fast = y.queuePk < y.QMax && delayRatio < 1/y.Phi
	if !y.fast && y.queuePk > y.QMax {
		// Precautionary decongestion: drain the estimated backlog.
		c.SetCwnd(c.Cwnd - y.queuePk/2)
		c.Ssthresh = c.Cwnd
	}
}

// OnLoss implements tcp.CongestionControl.
func (y *YeAH) OnLoss(c *tcp.Conn, lost int, now sim.Time) {
	// Reduce by the queue estimate when meaningful, else fall back to 1/2;
	// never cut less than 1/8 (the YeAH rule).
	red := y.queuePk
	if red < c.Cwnd/8 {
		red = c.Cwnd / 8
	}
	if red > c.Cwnd/2 {
		red = c.Cwnd / 2
	}
	ss := c.Cwnd - red
	if ss < 2 {
		ss = 2
	}
	c.Ssthresh = ss
	c.SetCwnd(ss)
}

// OnRTO implements tcp.CongestionControl.
func (y *YeAH) OnRTO(c *tcp.Conn, now sim.Time) { rtoCollapse(c) }
