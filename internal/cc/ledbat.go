package cc

import (
	"sage/internal/sim"
	"sage/internal/tcp"
)

func init() { Register("ledbat", func() tcp.CongestionControl { return NewLEDBAT() }) }

// LEDBAT implements the Low Extra Delay Background Transport controller
// (RFC 6817): a linear controller that servoes the queueing delay to Target,
// yielding to any queue growth caused by other traffic.
type LEDBAT struct {
	Target sim.Time // queueing-delay target (100 ms)
	Gain   float64  // proportional gain (1)
}

// NewLEDBAT returns LEDBAT with the RFC's 100 ms target.
func NewLEDBAT() *LEDBAT { return &LEDBAT{Target: 100 * sim.Millisecond, Gain: 1} }

// Name implements tcp.CongestionControl.
func (*LEDBAT) Name() string { return "ledbat" }

// Init implements tcp.CongestionControl.
func (l *LEDBAT) Init(c *tcp.Conn) {}

// OnAck implements tcp.CongestionControl.
func (l *LEDBAT) OnAck(c *tcp.Conn, e tcp.AckEvent) {
	if e.State != tcp.StateOpen || e.RTT <= 0 {
		return
	}
	base := c.BaseRTT()
	qd := e.RTT - base
	if qd < 0 {
		qd = 0
	}
	offTarget := float64(l.Target-qd) / float64(l.Target)
	c.SetCwnd(c.Cwnd + l.Gain*offTarget*float64(e.AckedPkts)/c.Cwnd)
	if c.Cwnd < 2 {
		c.SetCwnd(2)
	}
}

// OnLoss implements tcp.CongestionControl.
func (l *LEDBAT) OnLoss(c *tcp.Conn, lost int, now sim.Time) { multiplicativeLoss(c, 0.5) }

// OnRTO implements tcp.CongestionControl.
func (l *LEDBAT) OnRTO(c *tcp.Conn, now sim.Time) { rtoCollapse(c) }
