package cc

import (
	"math"

	"sage/internal/sim"
	"sage/internal/tcp"
)

func init() { Register("vivace", func() tcp.CongestionControl { return NewVivace() }) }

// vivacePhase is the probing state machine.
type vivacePhase int

const (
	vivaceStartup vivacePhase = iota
	vivaceProbeUp
	vivaceProbeDown
)

// vivaceProbe is one monitor interval, scored over the packets *sent* during
// it. The score is computed only once all of those packets have resolved
// (acked or declared lost), which removes the one-RTT measurement lag that
// otherwise corrupts the utility gradient.
type vivaceProbe struct {
	kind      vivacePhase
	sentStart int64
	sentEnd   int64 // filled when the MI closes
	closed    bool
	crossed   bool
	t0        sim.Time
	delAt0    int64
	lostAt0   int64
	rttAt0    sim.Time
	utility   float64
	scored    bool
}

// Vivace implements PCC Vivace (Dong et al., NSDI 2018): an online-learning
// rate controller. Pairs of monitor intervals probe rates r(1+ε) and r(1−ε);
// each interval is scored with the utility u(x) = x^0.9 − b·x·(dRTT/dt) −
// c·x·L over exactly the packets it sent, and the rate moves along the
// empirical utility gradient with confidence amplification.
type Vivace struct {
	Epsilon float64 // probe spread (0.05)
	B       float64 // latency-gradient penalty (900)
	C       float64 // loss penalty (11.35)

	phase       vivacePhase
	rate        float64 // bytes/second
	mi          rttClock
	pending     []*vivaceProbe
	lastStartup float64
	conf        float64
	dir         float64
}

// NewVivace returns Vivace with the reference utility constants.
func NewVivace() *Vivace {
	return &Vivace{Epsilon: 0.05, B: 900, C: 11.35, conf: 1, phase: vivaceStartup, dir: 1}
}

// Name implements tcp.CongestionControl.
func (*Vivace) Name() string { return "vivace" }

// Init implements tcp.CongestionControl.
func (v *Vivace) Init(c *tcp.Conn) {
	v.rate = float64(10 * c.MSS() * 10) // ~1.2 Mb/s starting rate
	v.applyRate(c)
	v.pending = append(v.pending, &vivaceProbe{kind: vivaceStartup})
}

// applyRate programs pacing and keeps the window out of pacing's way.
func (v *Vivace) applyRate(c *tcp.Conn) {
	minRate := float64(2 * c.MSS() * 10)
	if v.rate < minRate {
		v.rate = minRate
	}
	// Never chase more than 2× what the path has ever delivered.
	if maxDel := c.MaxDeliveryRate(); maxDel > 0 && v.rate > 2*maxDel+minRate {
		v.rate = 2*maxDel + minRate
	}
	c.PacingRate = v.rate * v.probeGain()
	srtt := c.SRTT()
	if srtt <= 0 {
		srtt = 50 * sim.Millisecond
	}
	w := 2 * c.PacingRate * srtt.Seconds() / float64(c.MSS())
	if w < 4 {
		w = 4
	}
	c.SetCwnd(w)
}

func (v *Vivace) probeGain() float64 {
	switch v.phase {
	case vivaceProbeUp:
		return 1 + v.Epsilon
	case vivaceProbeDown:
		return 1 - v.Epsilon
	}
	return 1
}

// miLen sizes the monitor interval: at least one RTT and ≥10 packets.
func (v *Vivace) miLen(c *tcp.Conn, srtt sim.Time) sim.Time {
	mi := maxTime(srtt, 10*sim.Millisecond)
	if v.rate > 0 {
		mi = maxTime(mi, sim.FromSeconds(10*float64(c.MSS())/v.rate))
	}
	return mi
}

// OnAck implements tcp.CongestionControl.
func (v *Vivace) OnAck(c *tcp.Conn, e tcp.AckEvent) {
	v.scorePending(c, e.Now)
	v.decide(c)
	if !v.mi.tick(e.Now, v.miLen(c, e.SRTT)) {
		return
	}
	// Close the current MI and open the next.
	if n := len(v.pending); n > 0 && !v.pending[n-1].closed {
		v.pending[n-1].closed = true
		v.pending[n-1].sentEnd = c.SentPkts()
	}
	switch v.phase {
	case vivaceProbeUp:
		v.phase = vivaceProbeDown
	case vivaceProbeDown:
		v.phase = vivaceProbeUp
	}
	v.applyRate(c)
	v.pending = append(v.pending, &vivaceProbe{kind: v.phase, sentStart: c.SentPkts()})
	// Bound the backlog of unscored probes (e.g. across blackouts).
	if len(v.pending) > 8 {
		v.pending = v.pending[len(v.pending)-8:]
	}
}

// scorePending advances probe scoring as their packets resolve.
func (v *Vivace) scorePending(c *tcp.Conn, now sim.Time) {
	resolved := c.DeliveredPkts() + c.LostPkts()
	for _, p := range v.pending {
		if p.scored {
			continue
		}
		if !p.crossed {
			if resolved >= p.sentStart {
				p.crossed = true
				p.t0 = now
				p.delAt0 = c.DeliveredPkts()
				p.lostAt0 = c.LostPkts()
				p.rttAt0 = c.SRTT()
			}
			continue
		}
		if !p.closed || resolved < p.sentEnd {
			continue
		}
		span := (now - p.t0).Seconds()
		if span <= 0 {
			span = 1e-3
		}
		del := float64(c.DeliveredPkts() - p.delAt0)
		lost := float64(c.LostPkts() - p.lostAt0)
		x := del * float64(c.MSS()) * 8 / span / 1e6 // Mb/s
		lossRate := 0.0
		if del+lost > 0 {
			lossRate = lost / (del + lost)
		}
		rttGrad := (c.SRTT() - p.rttAt0).Seconds() / span
		p.utility = math.Pow(x, 0.9) - v.B*x*rttGrad - v.C*x*lossRate
		p.scored = true
	}
}

// decide consumes scored probes: rate doubling during startup, utility
// gradient steps while probing.
func (v *Vivace) decide(c *tcp.Conn) {
	for len(v.pending) > 0 && v.pending[0].scored {
		p := v.pending[0]
		switch p.kind {
		case vivaceStartup:
			v.pending = v.pending[1:]
			if v.lastStartup == 0 || p.utility >= v.lastStartup {
				v.lastStartup = p.utility
				v.rate *= 2
			} else {
				v.rate /= 2
				v.phase = vivaceProbeUp
				// Drop the startup probes still in flight: they would
				// trigger spurious extra halvings once scored.
				kept := v.pending[:0]
				for _, q := range v.pending {
					if q.kind != vivaceStartup {
						kept = append(kept, q)
					}
				}
				v.pending = kept
			}
			v.applyRate(c)
		default:
			// Need a scored up/down pair at the head.
			if len(v.pending) < 2 || !v.pending[1].scored {
				return
			}
			a, b := v.pending[0], v.pending[1]
			v.pending = v.pending[2:]
			up, down := a, b
			if a.kind == vivaceProbeDown {
				up, down = b, a
			}
			diff := up.utility - down.utility
			scale := math.Abs(up.utility)
			if s := math.Abs(down.utility); s > scale {
				scale = s
			}
			if scale < 1 {
				scale = 1
			}
			if math.Abs(diff) < 0.02*scale {
				v.conf = 1 // inconclusive probe pair: hold the rate
				continue
			}
			dir := 1.0
			if diff < 0 {
				dir = -1
			}
			if dir == v.dir {
				v.conf++
				if v.conf > 4 {
					v.conf = 4
				}
			} else {
				v.conf = 1
				v.dir = dir
			}
			v.rate *= 1 + 0.05*v.conf*dir
			v.applyRate(c)
			// Probes still in flight were measured under the old rate;
			// acting on them would compound stale decisions into a limit
			// cycle. Start the next probe pair fresh.
			v.pending = v.pending[:0]
			return
		}
	}
}

// OnLoss implements tcp.CongestionControl (loss enters the utility).
func (v *Vivace) OnLoss(c *tcp.Conn, lost int, now sim.Time) {}

// OnRTO implements tcp.CongestionControl.
func (v *Vivace) OnRTO(c *tcp.Conn, now sim.Time) {
	v.rate /= 2
	v.applyRate(c)
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
