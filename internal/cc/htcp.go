package cc

import (
	"sage/internal/sim"
	"sage/internal/tcp"
)

func init() { Register("htcp", func() tcp.CongestionControl { return NewHTCP() }) }

// HTCP implements H-TCP (Leith & Shorten 2004): the additive increase grows
// quadratically with the time elapsed since the last loss event, and the
// backoff factor adapts to the observed RTT spread.
type HTCP struct {
	DeltaL sim.Time // low-speed regime threshold (1 s)

	lastLoss sim.Time
	beta     float64
	minRTT   sim.Time
	maxRTT   sim.Time
	started  bool
}

// NewHTCP returns H-TCP with the paper's Δ_L = 1 s.
func NewHTCP() *HTCP { return &HTCP{DeltaL: sim.Second, beta: 0.5} }

// Name implements tcp.CongestionControl.
func (*HTCP) Name() string { return "htcp" }

// Init implements tcp.CongestionControl.
func (h *HTCP) Init(c *tcp.Conn) {}

func (h *HTCP) alpha(now sim.Time) float64 {
	if !h.started {
		return 1
	}
	delta := now - h.lastLoss
	if delta <= h.DeltaL {
		return 1
	}
	ds := (delta - h.DeltaL).Seconds()
	a := 1 + 10*ds + ds*ds/4
	// Scale by 2(1-beta) so throughput is invariant to the backoff factor.
	return 2 * (1 - h.beta) * a
}

// OnAck implements tcp.CongestionControl.
func (h *HTCP) OnAck(c *tcp.Conn, e tcp.AckEvent) {
	if !h.started {
		h.started = true
		h.lastLoss = e.Now
	}
	if h.minRTT == 0 || e.RTT < h.minRTT {
		h.minRTT = e.RTT
	}
	if e.RTT > h.maxRTT {
		h.maxRTT = e.RTT
	}
	if e.State != tcp.StateOpen {
		return
	}
	if slowStart(c) {
		c.SetCwnd(c.Cwnd + float64(e.AckedPkts))
		return
	}
	c.SetCwnd(c.Cwnd + h.alpha(e.Now)*float64(e.AckedPkts)/c.Cwnd)
}

// OnLoss implements tcp.CongestionControl.
func (h *HTCP) OnLoss(c *tcp.Conn, lost int, now sim.Time) {
	// Adaptive backoff: β = RTTmin/RTTmax clamped to [0.5, 0.8].
	if h.minRTT > 0 && h.maxRTT > 0 {
		h.beta = float64(h.minRTT) / float64(h.maxRTT)
		if h.beta < 0.5 {
			h.beta = 0.5
		}
		if h.beta > 0.8 {
			h.beta = 0.8
		}
	} else {
		h.beta = 0.5
	}
	h.lastLoss = now
	h.minRTT, h.maxRTT = 0, 0
	multiplicativeLoss(c, h.beta)
}

// OnRTO implements tcp.CongestionControl.
func (h *HTCP) OnRTO(c *tcp.Conn, now sim.Time) {
	h.lastLoss = now
	rtoCollapse(c)
}
