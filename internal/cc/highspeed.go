package cc

import (
	"math"

	"sage/internal/sim"
	"sage/internal/tcp"
)

func init() { Register("highspeed", func() tcp.CongestionControl { return &HighSpeed{} }) }

// HighSpeed implements HighSpeed TCP (RFC 3649): the AIMD parameters a(w)
// and b(w) grow/shrink with the window so large-BDP paths are filled quickly
// while small windows behave exactly like Reno.
type HighSpeed struct{}

// RFC 3649 corner points.
const (
	hsLowWindow  = 38.0
	hsHighWindow = 83000.0
	hsHighP      = 1e-7
	hsHighDecr   = 0.1
)

// hsB returns b(w), the multiplicative-decrease fraction.
func hsB(w float64) float64 {
	if w <= hsLowWindow {
		return 0.5
	}
	b := (hsHighDecr-0.5)*(math.Log(w)-math.Log(hsLowWindow))/
		(math.Log(hsHighWindow)-math.Log(hsLowWindow)) + 0.5
	if b < hsHighDecr {
		b = hsHighDecr
	}
	return b
}

// hsA returns a(w), the per-RTT additive increase in packets.
func hsA(w float64) float64 {
	if w <= hsLowWindow {
		return 1
	}
	// RFC 3649 §5: p(w) follows the response function; a(w) derived from it.
	p := 0.078 / math.Pow(w, 1.2)
	b := hsB(w)
	a := w * w * p * 2 * b / (2 - b)
	if a < 1 {
		a = 1
	}
	return a
}

// Name implements tcp.CongestionControl.
func (*HighSpeed) Name() string { return "highspeed" }

// Init implements tcp.CongestionControl.
func (*HighSpeed) Init(c *tcp.Conn) {}

// OnAck implements tcp.CongestionControl.
func (*HighSpeed) OnAck(c *tcp.Conn, e tcp.AckEvent) {
	if e.State != tcp.StateOpen {
		return
	}
	if slowStart(c) {
		c.SetCwnd(c.Cwnd + float64(e.AckedPkts))
		return
	}
	c.SetCwnd(c.Cwnd + hsA(c.Cwnd)*float64(e.AckedPkts)/c.Cwnd)
}

// OnLoss implements tcp.CongestionControl.
func (*HighSpeed) OnLoss(c *tcp.Conn, lost int, now sim.Time) {
	multiplicativeLoss(c, 1-hsB(c.Cwnd))
}

// OnRTO implements tcp.CongestionControl.
func (*HighSpeed) OnRTO(c *tcp.Conn, now sim.Time) { rtoCollapse(c) }
