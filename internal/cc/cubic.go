package cc

import (
	"math"

	"sage/internal/sim"
	"sage/internal/tcp"
)

func init() { Register("cubic", func() tcp.CongestionControl { return NewCubic() }) }

// Cubic implements CUBIC (Ha, Rhee, Xu 2008 / RFC 8312): the congestion
// window follows W(t) = C(t−K)³ + Wmax after a loss, with a TCP-friendly
// region and fast convergence. It is the default scheme on most platforms
// and the background traffic of every Set II scenario.
type Cubic struct {
	C    float64 // scaling constant (0.4)
	Beta float64 // multiplicative decrease (0.7)
	// HyStart enables the hybrid slow-start delay-increase detector
	// (Ha & Rhee 2011), on by default as in Linux: slow start exits before
	// the first loss when the per-round minimum RTT rises by ≥ max(2 ms,
	// baseRTT/8) over the previous round.
	HyStart bool

	wMax       float64
	wLastMax   float64
	k          float64
	epochStart sim.Time
	ackCnt     float64
	wEst       float64 // TCP-friendly (Reno-emulation) window

	hsRound   rttClock
	hsCurMin  sim.Time
	hsPrevMin sim.Time
	hsExited  bool
}

// NewCubic returns a CUBIC instance with the RFC 8312 constants and
// HyStart enabled.
func NewCubic() *Cubic { return &Cubic{C: 0.4, Beta: 0.7, HyStart: true} }

// Name implements tcp.CongestionControl.
func (*Cubic) Name() string { return "cubic" }

// Init implements tcp.CongestionControl.
func (cu *Cubic) Init(c *tcp.Conn) { cu.reset() }

func (cu *Cubic) reset() {
	cu.epochStart = -1
	cu.wMax = 0
	cu.k = 0
	cu.ackCnt = 0
	cu.wEst = 0
}

// OnAck implements tcp.CongestionControl.
func (cu *Cubic) OnAck(c *tcp.Conn, e tcp.AckEvent) {
	if e.State != tcp.StateOpen {
		return
	}
	if slowStart(c) {
		if cu.HyStart && !cu.hsExited {
			cu.hystartCheck(c, e)
		}
		if slowStart(c) {
			c.SetCwnd(c.Cwnd + float64(e.AckedPkts))
			return
		}
	}
	if cu.epochStart < 0 {
		cu.epochStart = e.Now
		if cu.wMax < c.Cwnd {
			cu.wMax = c.Cwnd
			cu.k = 0
		} else {
			cu.k = math.Cbrt(cu.wMax * (1 - cu.Beta) / cu.C)
		}
		cu.ackCnt = 0
		cu.wEst = c.Cwnd
	}
	t := (e.Now - cu.epochStart).Seconds()
	target := cu.C*math.Pow(t-cu.k, 3) + cu.wMax

	// TCP-friendly region (RFC 8312 §4.2).
	cu.ackCnt += float64(e.AckedPkts)
	if e.SRTT > 0 {
		inc := 3 * (1 - cu.Beta) / (1 + cu.Beta) * cu.ackCnt / c.Cwnd
		cu.wEst += inc
		cu.ackCnt = 0
	}
	if cu.wEst > target {
		target = cu.wEst
	}
	if target > c.Cwnd {
		c.SetCwnd(c.Cwnd + (target-c.Cwnd)/c.Cwnd)
	} else {
		c.SetCwnd(c.Cwnd + 0.01/c.Cwnd) // minimal growth in the concave plateau
	}
}

// hystartCheck runs the delay-increase detector once per round.
func (cu *Cubic) hystartCheck(c *tcp.Conn, e tcp.AckEvent) {
	if cu.hsCurMin == 0 || e.RTT < cu.hsCurMin {
		cu.hsCurMin = e.RTT
	}
	if !cu.hsRound.tick(e.Now, e.SRTT) {
		return
	}
	if cu.hsPrevMin > 0 && cu.hsCurMin > 0 {
		thresh := cu.hsPrevMin / 8
		if thresh < 2*sim.Millisecond {
			thresh = 2 * sim.Millisecond
		}
		if cu.hsCurMin >= cu.hsPrevMin+thresh && c.Cwnd >= 16 {
			// Queue is building: leave slow start before the overshoot.
			c.Ssthresh = c.Cwnd
			cu.hsExited = true
		}
	}
	cu.hsPrevMin = cu.hsCurMin
	cu.hsCurMin = 0
}

// OnLoss implements tcp.CongestionControl.
func (cu *Cubic) OnLoss(c *tcp.Conn, lost int, now sim.Time) {
	cu.epochStart = -1
	// Fast convergence: release bandwidth faster when the loss point drops.
	if c.Cwnd < cu.wLastMax {
		cu.wLastMax = c.Cwnd * (2 - cu.Beta) / 2
	} else {
		cu.wLastMax = c.Cwnd
	}
	cu.wMax = cu.wLastMax
	multiplicativeLoss(c, cu.Beta)
}

// OnRTO implements tcp.CongestionControl.
func (cu *Cubic) OnRTO(c *tcp.Conn, now sim.Time) {
	cu.reset()
	rtoCollapse(c)
}
