package cc

import (
	"sage/internal/sim"
	"sage/internal/tcp"
)

func init() { Register("newreno", func() tcp.CongestionControl { return &NewReno{} }) }

// NewReno is the classic AIMD scheme (RFC 3782/6582): slow start, additive
// increase of one packet per RTT, halving on loss. The paper uses its pure
// AIMD logic as the baseline for the "TCP-friendly region" in Fig. 7.
type NewReno struct{}

// Name implements tcp.CongestionControl.
func (*NewReno) Name() string { return "newreno" }

// Init implements tcp.CongestionControl.
func (*NewReno) Init(c *tcp.Conn) {}

// OnAck implements tcp.CongestionControl.
func (*NewReno) OnAck(c *tcp.Conn, e tcp.AckEvent) { renoAck(c, e) }

// OnLoss implements tcp.CongestionControl.
func (*NewReno) OnLoss(c *tcp.Conn, lost int, now sim.Time) { multiplicativeLoss(c, 0.5) }

// OnRTO implements tcp.CongestionControl.
func (*NewReno) OnRTO(c *tcp.Conn, now sim.Time) { rtoCollapse(c) }
