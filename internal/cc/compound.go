package cc

import (
	"math"

	"sage/internal/sim"
	"sage/internal/tcp"
)

func init() { Register("compound", func() tcp.CongestionControl { return NewCompound() }) }

// Compound implements Compound TCP (Tan et al., INFOCOM 2006): the send
// window is the sum of a loss-based component (Reno's cwnd) and a
// delay-based component dwnd that grows aggressively while the path is
// uncongested (a Vegas-style backlog estimate stays below γ) and retreats
// as the queue builds — filling large-BDP pipes without abandoning Reno's
// fairness.
type Compound struct {
	Alpha float64 // dwnd growth scaling (1/8)
	Beta  float64 // dwnd backlog retreat factor (1/2)
	K     float64 // growth exponent (3/4)
	Gamma float64 // backlog threshold in packets (30)

	dwnd   float64
	lwnd   float64 // the Reno component
	clock  rttClock
	minRTT sim.Time
}

// NewCompound returns Compound TCP with the paper's α=1/8, β=1/2, k=3/4.
func NewCompound() *Compound { return &Compound{Alpha: 0.125, Beta: 0.5, K: 0.75, Gamma: 30} }

// Name implements tcp.CongestionControl.
func (*Compound) Name() string { return "compound" }

// Init implements tcp.CongestionControl.
func (cp *Compound) Init(c *tcp.Conn) { cp.lwnd = c.Cwnd }

func (cp *Compound) apply(c *tcp.Conn) {
	if cp.lwnd < 2 {
		cp.lwnd = 2
	}
	if cp.dwnd < 0 {
		cp.dwnd = 0
	}
	c.SetCwnd(cp.lwnd + cp.dwnd)
}

// OnAck implements tcp.CongestionControl.
func (cp *Compound) OnAck(c *tcp.Conn, e tcp.AckEvent) {
	if e.State != tcp.StateOpen {
		return
	}
	if cp.minRTT == 0 || e.RTT < cp.minRTT {
		cp.minRTT = e.RTT
	}
	// Loss component: standard Reno growth.
	if slowStart(c) {
		cp.lwnd += float64(e.AckedPkts)
		cp.apply(c)
		return
	}
	cp.lwnd += float64(e.AckedPkts) / (cp.lwnd + cp.dwnd)

	// Delay component, once per RTT.
	if cp.clock.tick(e.Now, e.SRTT) {
		rtt, base := cp.minRTT, c.BaseRTT()
		cp.minRTT = 0
		if rtt > 0 && base > 0 {
			wnd := cp.lwnd + cp.dwnd
			diff := wnd * float64(rtt-base) / float64(rtt)
			if diff < cp.Gamma {
				// Uncongested: binomial growth α·w^k per RTT.
				cp.dwnd += cp.Alpha * math.Pow(wnd, cp.K)
			} else {
				// Queue building: retreat proportionally to the backlog.
				cp.dwnd -= cp.Beta * diff
			}
		}
	}
	cp.apply(c)
}

// OnLoss implements tcp.CongestionControl.
func (cp *Compound) OnLoss(c *tcp.Conn, lost int, now sim.Time) {
	cp.lwnd /= 2
	cp.dwnd *= 0.5 // the paper halves dwnd on loss as well
	cp.apply(c)
	c.Ssthresh = c.Cwnd
}

// OnRTO implements tcp.CongestionControl.
func (cp *Compound) OnRTO(c *tcp.Conn, now sim.Time) {
	cp.lwnd = 1
	cp.dwnd = 0
	rtoCollapse(c)
}
