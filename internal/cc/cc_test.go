package cc

import (
	"math"
	"testing"

	"sage/internal/netem"
	"sage/internal/sim"
	"sage/internal/tcp"
)

// result summarizes one single-flow run.
type result struct {
	thrBps float64
	owdAvg sim.Time
	lost   int64
	util   float64
}

func run1(t *testing.T, name string, bwMbps, rttMs, bdpMult float64, dur sim.Time) result {
	t.Helper()
	loop := sim.NewLoop()
	rate := netem.FlatRate(netem.Mbps(bwMbps))
	mrtt := sim.FromMillis(rttMs)
	qb := int(float64(netem.BDPBytes(rate.At(0), mrtt)) * bdpMult)
	if qb < 2*netem.MTU {
		qb = 2 * netem.MTU
	}
	n := netem.New(loop, netem.Config{Rate: rate, MinRTT: mrtt, Queue: netem.NewDropTail(qb)})
	fl := tcp.NewFlow(loop, n, 1, MustNew(name), tcp.Options{})
	fl.Conn.Start(0)
	loop.RunUntil(dur)
	thr := float64(fl.Sink.RxBytes) * 8 / dur.Seconds()
	return result{
		thrBps: thr,
		owdAvg: fl.Sink.OWDAvg(),
		lost:   fl.Conn.LostPkts(),
		util:   thr / netem.Mbps(bwMbps),
	}
}

func TestRegistryComplete(t *testing.T) {
	for _, n := range PoolNames() {
		if _, err := New(n); err != nil {
			t.Fatalf("pool scheme missing: %v", err)
		}
	}
	for _, n := range DelayLeagueNames() {
		if _, err := New(n); err != nil {
			t.Fatalf("delay-league scheme missing: %v", err)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if len(Names()) < 17 {
		t.Fatalf("only %d schemes registered", len(Names()))
	}
	// Name() must match the registry key.
	for _, n := range Names() {
		if got := MustNew(n).Name(); got != n {
			t.Fatalf("scheme %q reports Name %q", n, got)
		}
	}
}

func TestMustNewPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew("nope")
}

// Every scheme must achieve reasonable utilization alone on a friendly path
// (24 Mb/s, 20 ms, 2 BDP buffer) without collapsing.
func TestAllSchemesUtilizeFriendlyPath(t *testing.T) {
	for _, name := range Names() {
		name := name
		if name == "pure" {
			continue // no policy of its own: driven externally
		}
		t.Run(name, func(t *testing.T) {
			r := run1(t, name, 24, 20, 2, 10*sim.Second)
			min := 0.5
			if name == "sprout" || name == "ledbat" || name == "vegas" || name == "cdg" {
				min = 0.3 // conservative delay-based schemes may sit lower
			}
			if r.util < min {
				t.Fatalf("utilization %.2f below %.2f (thr %.2f Mb/s)", r.util, min, r.thrBps/1e6)
			}
		})
	}
}

// Loss-based schemes must fill deep buffers (bufferbloat); delay-based
// schemes must keep the queue — and hence one-way delay — low.
func TestDelayVsLossBasedQueueOccupancy(t *testing.T) {
	cubic := run1(t, "cubic", 24, 20, 8, 15*sim.Second)
	vegas := run1(t, "vegas", 24, 20, 8, 15*sim.Second)
	copa := run1(t, "copa", 24, 20, 8, 15*sim.Second)
	if cubic.owdAvg <= vegas.owdAvg {
		t.Fatalf("cubic owd %v should exceed vegas owd %v in a deep buffer", cubic.owdAvg, vegas.owdAvg)
	}
	if cubic.owdAvg <= copa.owdAvg {
		t.Fatalf("cubic owd %v should exceed copa owd %v", cubic.owdAvg, copa.owdAvg)
	}
	// Vegas holds only alpha..beta packets of backlog: owd stays near the
	// propagation floor (10 ms) plus the slow-start transient in the average.
	if vegas.owdAvg > 40*sim.Millisecond {
		t.Fatalf("vegas owd %v too high", vegas.owdAvg)
	}
}

func TestCubicRecoversAfterLoss(t *testing.T) {
	r := run1(t, "cubic", 48, 20, 0.5, 15*sim.Second)
	if r.lost == 0 {
		t.Fatal("cubic never overflowed a half-BDP buffer")
	}
	if r.util < 0.6 {
		t.Fatalf("cubic utilization %.2f after losses", r.util)
	}
}

func TestBBR2KeepsDelayLowInDeepBuffer(t *testing.T) {
	bbr := run1(t, "bbr2", 24, 20, 16, 15*sim.Second)
	cubic := run1(t, "cubic", 24, 20, 16, 15*sim.Second)
	if bbr.util < 0.7 {
		t.Fatalf("bbr2 utilization %.2f", bbr.util)
	}
	if bbr.owdAvg >= cubic.owdAvg {
		t.Fatalf("bbr2 owd %v should be below cubic %v in deep buffer", bbr.owdAvg, cubic.owdAvg)
	}
}

func TestHighSpeedResponseFunction(t *testing.T) {
	if hsA(10) != 1 || hsB(10) != 0.5 {
		t.Fatal("below LowWindow must be Reno")
	}
	if a := hsA(1000); a <= 1 {
		t.Fatalf("a(1000) = %v, want >1", a)
	}
	if hsA(10000) <= hsA(1000) {
		t.Fatal("a(w) must grow with w")
	}
	if b := hsB(83000); math.Abs(b-0.1) > 0.01 {
		t.Fatalf("b(83000) = %v, want ~0.1", b)
	}
	if hsB(1000) >= 0.5 || hsB(1000) <= 0.1 {
		t.Fatalf("b(1000) = %v out of range", hsB(1000))
	}
}

func TestHyblaRhoScaling(t *testing.T) {
	// Hybla on a 200 ms path should grow far faster than Reno.
	hybla := run1(t, "hybla", 48, 200, 2, 6*sim.Second)
	reno := run1(t, "newreno", 48, 200, 2, 6*sim.Second)
	if hybla.thrBps <= reno.thrBps {
		t.Fatalf("hybla %.2f Mb/s should beat reno %.2f Mb/s on long RTT",
			hybla.thrBps/1e6, reno.thrBps/1e6)
	}
}

func TestIllinoisAlphaBetaAdaptation(t *testing.T) {
	il := NewIllinois()
	loop := sim.NewLoop()
	n := netem.New(loop, netem.Config{Rate: netem.FlatRate(netem.Mbps(24)), MinRTT: 20 * sim.Millisecond, Queue: netem.NewDropTail(1 << 20)})
	conn := tcp.NewConn(loop, n, 1, il, tcp.Options{})
	forceBaseRTT(t, loop, n, conn)
	base := conn.BaseRTT()

	// Empty queue (avg == base): alpha at its maximum, beta at its minimum.
	il.maxRTT = base + 20*sim.Millisecond
	il.sumRTT = base
	il.cntRTT = 1
	il.updateParams(conn)
	if il.alpha != il.AlphaMax {
		t.Fatalf("alpha = %v at empty queue, want max", il.alpha)
	}
	if il.beta != il.BetaMin {
		t.Fatalf("beta = %v at empty queue, want min", il.beta)
	}

	// Full queue (avg == max observed): alpha shrinks, beta at its maximum.
	il.sumRTT = il.maxRTT
	il.cntRTT = 1
	il.updateParams(conn)
	if il.alpha >= il.AlphaMax {
		t.Fatalf("alpha = %v at full queue", il.alpha)
	}
	if il.beta != il.BetaMax {
		t.Fatalf("beta = %v at full queue, want max", il.beta)
	}
}

// forceBaseRTT gives conn a 20 ms base RTT sample by running it briefly.
func forceBaseRTT(t *testing.T, loop *sim.Loop, n *netem.Network, conn *tcp.Conn) {
	t.Helper()
	sink := tcp.NewSink(n)
	n.Attach(conn.ID, netem.Endpoints{Data: sink, Ack: conn})
	conn.Start(loop.Now())
	loop.RunUntil(loop.Now() + 500*sim.Millisecond)
	conn.Stop()
	if conn.BaseRTT() <= 0 {
		t.Fatal("no base RTT established")
	}
}

func TestLEDBATYieldsToQueueGrowth(t *testing.T) {
	// LEDBAT alone targets ~100 ms queueing delay.
	r := run1(t, "ledbat", 24, 20, 16, 15*sim.Second)
	if r.owdAvg < 30*sim.Millisecond || r.owdAvg > 200*sim.Millisecond {
		t.Fatalf("ledbat owd %v, want near its 100 ms target", r.owdAvg)
	}
}

func TestC2TCPBoundsDelayBelowCubic(t *testing.T) {
	c2 := run1(t, "c2tcp", 24, 20, 16, 15*sim.Second)
	cubic := run1(t, "cubic", 24, 20, 16, 15*sim.Second)
	if c2.owdAvg >= cubic.owdAvg {
		t.Fatalf("c2tcp owd %v not below cubic %v", c2.owdAvg, cubic.owdAvg)
	}
}

func TestStepDownSchemesAdapt(t *testing.T) {
	// 96 -> 24 Mb/s at t=5 s: schemes must not stall after the cut.
	for _, name := range []string{"cubic", "bbr2", "vegas", "yeah"} {
		name := name
		t.Run(name, func(t *testing.T) {
			loop := sim.NewLoop()
			rate := netem.StepRate(netem.Mbps(96), netem.Mbps(24), 5*sim.Second)
			mrtt := 20 * sim.Millisecond
			qb := netem.BDPBytes(netem.Mbps(96), mrtt) * 2
			n := netem.New(loop, netem.Config{Rate: rate, MinRTT: mrtt, Queue: netem.NewDropTail(qb)})
			fl := tcp.NewFlow(loop, n, 1, MustNew(name), tcp.Options{})
			fl.Conn.Start(0)
			loop.RunUntil(5 * sim.Second)
			before := fl.Sink.RxBytes
			loop.RunUntil(10 * sim.Second)
			after := fl.Sink.RxBytes - before
			thrAfter := float64(after) * 8 / 5
			if thrAfter < 0.4*24e6 {
				t.Fatalf("post-step throughput %.2f Mb/s", thrAfter/1e6)
			}
			if thrAfter > 1.05*24e6 {
				t.Fatalf("post-step throughput %.2f Mb/s exceeds capacity", thrAfter/1e6)
			}
		})
	}
}

func TestVenoMildCutOnRandomLoss(t *testing.T) {
	v := NewVeno()
	loop := sim.NewLoop()
	n := netem.New(loop, netem.Config{Rate: netem.FlatRate(netem.Mbps(24)), MinRTT: 20 * sim.Millisecond, Queue: netem.NewDropTail(1 << 20)})
	c := tcp.NewConn(loop, n, 1, v, tcp.Options{})
	c.SetCwnd(100)
	v.n = 1 // small backlog: random loss
	v.OnLoss(c, 1, 0)
	if math.Abs(c.Cwnd-80) > 1e-9 {
		t.Fatalf("random-loss cut to %v, want 80", c.Cwnd)
	}
	c.SetCwnd(100)
	v.n = 10 // congestive
	v.OnLoss(c, 1, 0)
	if math.Abs(c.Cwnd-50) > 1e-9 {
		t.Fatalf("congestive cut to %v, want 50", c.Cwnd)
	}
}

func TestCubicFastConvergence(t *testing.T) {
	cu := NewCubic()
	loop := sim.NewLoop()
	n := netem.New(loop, netem.Config{Rate: netem.FlatRate(netem.Mbps(24)), MinRTT: 20 * sim.Millisecond, Queue: netem.NewDropTail(1 << 20)})
	c := tcp.NewConn(loop, n, 1, cu, tcp.Options{})
	c.SetCwnd(100)
	cu.OnLoss(c, 1, 0)
	first := cu.wMax
	if first != 100 {
		t.Fatalf("wMax = %v", first)
	}
	// Second loss at a lower point triggers fast convergence: wMax < cwnd.
	c.SetCwnd(80)
	cu.OnLoss(c, 1, 0)
	if cu.wMax >= 80 {
		t.Fatalf("fast convergence: wMax = %v, want < 80", cu.wMax)
	}
}

func TestTwoCubicFlowsShareFairly(t *testing.T) {
	loop := sim.NewLoop()
	mrtt := 40 * sim.Millisecond
	rate := netem.FlatRate(netem.Mbps(48))
	qb := netem.BDPBytes(rate.At(0), mrtt)
	n := netem.New(loop, netem.Config{Rate: rate, MinRTT: mrtt, Queue: netem.NewDropTail(qb)})
	f1 := tcp.NewFlow(loop, n, 1, MustNew("cubic"), tcp.Options{})
	f2 := tcp.NewFlow(loop, n, 2, MustNew("cubic"), tcp.Options{})
	f1.Conn.Start(0)
	f2.Conn.Start(0)
	loop.RunUntil(30 * sim.Second)
	t1 := float64(f1.Sink.RxBytes)
	t2 := float64(f2.Sink.RxBytes)
	ratio := t1 / t2
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("cubic/cubic share ratio %.2f (%.1f vs %.1f Mb/s)", ratio, t1*8/30e6, t2*8/30e6)
	}
	if (t1+t2)*8/30 < 0.85*48e6 {
		t.Fatalf("aggregate utilization %.2f", (t1+t2)*8/30/48e6)
	}
}
