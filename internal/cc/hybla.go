package cc

import (
	"math"

	"sage/internal/sim"
	"sage/internal/tcp"
)

func init() { Register("hybla", func() tcp.CongestionControl { return NewHybla() }) }

// Hybla implements TCP Hybla (Caini & Firrincieli 2004): the window growth is
// scaled by ρ = RTT/RTT0 so long-RTT (satellite-like) connections ramp up as
// fast as a reference 25 ms connection.
type Hybla struct {
	RTT0 sim.Time // reference round trip (25 ms)
	rho  float64
}

// NewHybla returns Hybla with the paper's 25 ms reference RTT.
func NewHybla() *Hybla { return &Hybla{RTT0: 25 * sim.Millisecond, rho: 1} }

// Name implements tcp.CongestionControl.
func (*Hybla) Name() string { return "hybla" }

// Init implements tcp.CongestionControl.
func (h *Hybla) Init(c *tcp.Conn) {}

// OnAck implements tcp.CongestionControl.
func (h *Hybla) OnAck(c *tcp.Conn, e tcp.AckEvent) {
	if e.SRTT > 0 {
		h.rho = float64(e.SRTT) / float64(h.RTT0)
		if h.rho < 1 {
			h.rho = 1
		}
	}
	if e.State != tcp.StateOpen {
		return
	}
	if slowStart(c) {
		c.SetCwnd(c.Cwnd + (math.Pow(2, h.rho)-1)*float64(e.AckedPkts))
		return
	}
	c.SetCwnd(c.Cwnd + h.rho*h.rho*float64(e.AckedPkts)/c.Cwnd)
}

// OnLoss implements tcp.CongestionControl.
func (h *Hybla) OnLoss(c *tcp.Conn, lost int, now sim.Time) { multiplicativeLoss(c, 0.5) }

// OnRTO implements tcp.CongestionControl.
func (h *Hybla) OnRTO(c *tcp.Conn, now sim.Time) { rtoCollapse(c) }
