package cc

import (
	"sage/internal/sim"
	"sage/internal/tcp"
)

func init() { Register("copa", func() tcp.CongestionControl { return NewCopa() }) }

// Copa implements Copa (Arun & Balakrishnan, NSDI 2018): it targets the rate
// λ = 1/(δ·dq) where dq is the standing queueing delay, moves the window
// toward the target with velocity doubling, and switches to a competitive
// mode (shrinking δ) when a buffer-filling competitor prevents the queue
// from draining.
type Copa struct {
	DeltaDefault float64 // 0.5 in default mode
	DeltaMin     float64 // competitive-mode floor (0.04)

	delta      float64
	velocity   float64
	direction  int // +1 up, -1 down
	dirRounds  int
	clock      rttClock
	standing   *tcp.WindowedFilter // standing RTT: windowed min over srtt/2
	nearEmpty  bool
	emptyClock rttClock
}

// NewCopa returns Copa with the paper's δ=0.5 default mode.
func NewCopa() *Copa {
	return &Copa{
		DeltaDefault: 0.5,
		DeltaMin:     0.04,
		delta:        0.5,
		velocity:     1,
		direction:    1,
		standing:     tcp.NewMinFilter(100 * sim.Millisecond),
	}
}

// Name implements tcp.CongestionControl.
func (*Copa) Name() string { return "copa" }

// Init implements tcp.CongestionControl.
func (cp *Copa) Init(c *tcp.Conn) {}

// OnAck implements tcp.CongestionControl.
func (cp *Copa) OnAck(c *tcp.Conn, e tcp.AckEvent) {
	if e.RTT <= 0 || e.SRTT <= 0 {
		return
	}
	cp.standing.Window = e.SRTT / 2
	if cp.standing.Window < sim.Millisecond {
		cp.standing.Window = sim.Millisecond
	}
	standingRTT := sim.Time(cp.standing.Update(e.Now, float64(e.RTT)))
	base := c.BaseRTT()
	dq := standingRTT - base
	if dq < 0 {
		dq = 0
	}
	// Track whether the queue nearly drains once per ~5 RTT: if it never
	// does, a buffer-filler is present -> competitive mode.
	if dq < base/10+sim.Millisecond {
		cp.nearEmpty = true
	}
	if cp.emptyClock.tick(e.Now, 5*e.SRTT) {
		if cp.nearEmpty {
			cp.delta = cp.DeltaDefault
		} else {
			cp.delta = cp.delta / 2
			if cp.delta < cp.DeltaMin {
				cp.delta = cp.DeltaMin
			}
		}
		cp.nearEmpty = false
	}

	// Target rate in packets/second; compare against current rate.
	var targetRate float64
	if dq <= 0 {
		targetRate = 2 * c.Cwnd / e.SRTT.Seconds() // queue empty: push up
	} else {
		targetRate = 1 / (cp.delta * dq.Seconds())
	}
	curRate := c.Cwnd / e.SRTT.Seconds()

	dir := 1
	if curRate > targetRate {
		dir = -1
	}
	if cp.clock.tick(e.Now, e.SRTT) {
		if dir == cp.direction {
			cp.dirRounds++
			if cp.dirRounds >= 3 {
				cp.velocity *= 2
			}
		} else {
			cp.direction = dir
			cp.dirRounds = 0
			cp.velocity = 1
		}
		if cp.velocity > c.Cwnd {
			cp.velocity = c.Cwnd
		}
	}
	step := cp.velocity / (cp.delta * c.Cwnd) * float64(e.AckedPkts)
	if dir > 0 {
		c.SetCwnd(c.Cwnd + step)
	} else {
		c.SetCwnd(c.Cwnd - step)
	}
	if c.Cwnd < 2 {
		c.SetCwnd(2)
	}
}

// OnLoss implements tcp.CongestionControl.
func (cp *Copa) OnLoss(c *tcp.Conn, lost int, now sim.Time) {
	// Copa reduces via 1/(2δ)-style backoff only on heavy loss; mirror the
	// reference implementation's cwnd/2 on loss episodes.
	multiplicativeLoss(c, 0.5)
	cp.velocity = 1
	cp.dirRounds = 0
}

// OnRTO implements tcp.CongestionControl.
func (cp *Copa) OnRTO(c *tcp.Conn, now sim.Time) {
	rtoCollapse(c)
	cp.velocity = 1
}
