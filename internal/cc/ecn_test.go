package cc

import (
	"testing"

	"sage/internal/netem"
	"sage/internal/sim"
	"sage/internal/tcp"
)

// ecnScenario builds a bottleneck with a marking AQM (CoDel).
func ecnScenario(bwMbps float64, dur sim.Time) (*sim.Loop, *netem.Network, netem.Queue) {
	loop := sim.NewLoop()
	q := netem.NewCoDel(1 << 20)
	n := netem.New(loop, netem.Config{
		Rate:   netem.FlatRate(netem.Mbps(bwMbps)),
		MinRTT: 20 * sim.Millisecond,
		Queue:  q,
	})
	return loop, n, q
}

func TestDCTCPReceivesMarksNotDrops(t *testing.T) {
	loop, n, q := ecnScenario(24, 0)
	fl := tcp.NewFlow(loop, n, 1, MustNew("dctcp"), tcp.Options{})
	fl.Conn.Start(0)
	loop.RunUntil(10 * sim.Second)
	if fl.Conn.ECEPkts() == 0 {
		t.Fatal("DCTCP never saw an ECN mark under CoDel")
	}
	if q.(*netem.CoDel).Marks() == 0 {
		t.Fatal("CoDel never marked")
	}
	// With ECT packets, congestion is signalled by marks; losses must be
	// rare compared to marks.
	if fl.Conn.LostPkts() > fl.Conn.ECEPkts() {
		t.Fatalf("drops (%d) exceed marks (%d) despite ECN", fl.Conn.LostPkts(), fl.Conn.ECEPkts())
	}
	// DCTCP must still utilize the link.
	thr := float64(fl.Sink.RxBytes) * 8 / 10
	if thr < 0.7*24e6 {
		t.Fatalf("dctcp throughput %.2f Mb/s", thr/1e6)
	}
	// And keep the queue (hence delay) low thanks to proportional cuts —
	// measured over the second half, past the slow-start overshoot.
	bytesHalf, pktsHalf, owdHalf := fl.Sink.Totals()
	_ = bytesHalf
	loop.RunUntil(20 * sim.Second)
	bytesEnd, pktsEnd, owdEnd := fl.Sink.Totals()
	_ = bytesEnd
	if dp := pktsEnd - pktsHalf; dp > 0 {
		steadyOWD := (owdEnd - owdHalf) / sim.Time(dp)
		if steadyOWD > 40*sim.Millisecond {
			t.Fatalf("dctcp steady owd %v too high for a marking AQM", steadyOWD)
		}
	}
}

func TestDCTCPAlphaTracksCongestion(t *testing.T) {
	loop, n, _ := ecnScenario(12, 0)
	d := NewDCTCP()
	fl := tcp.NewFlow(loop, n, 1, d, tcp.Options{})
	fl.Conn.Start(0)
	loop.RunUntil(8 * sim.Second)
	if d.Alpha() <= 0 || d.Alpha() > 1 {
		t.Fatalf("alpha = %v", d.Alpha())
	}
}

func TestNonECNFlowStillDropsUnderCoDel(t *testing.T) {
	loop, n, q := ecnScenario(12, 0)
	fl := tcp.NewFlow(loop, n, 1, MustNew("cubic"), tcp.Options{})
	fl.Conn.Start(0)
	loop.RunUntil(8 * sim.Second)
	if q.(*netem.CoDel).Marks() != 0 {
		t.Fatal("CoDel marked non-ECT packets")
	}
	if fl.Conn.LostPkts() == 0 {
		t.Fatal("cubic saw no CoDel drops")
	}
}

func TestDelayedAcksHalveAckCount(t *testing.T) {
	run := func(delack bool) (*tcp.Flow, int64) {
		loop := sim.NewLoop()
		n := netem.New(loop, netem.Config{
			Rate:   netem.FlatRate(netem.Mbps(24)),
			MinRTT: 20 * sim.Millisecond,
			Queue:  netem.NewDropTail(1 << 20),
		})
		fl := tcp.NewFlow(loop, n, 1, MustNew("cubic"), tcp.Options{DelAck: delack})
		fl.Conn.Start(0)
		loop.RunUntil(5 * sim.Second)
		return fl, fl.Sink.AcksTx
	}
	flNo, acksNo := run(false)
	flYes, acksYes := run(true)
	if acksYes >= acksNo*3/4 {
		t.Fatalf("delayed acks did not coalesce: %d vs %d", acksYes, acksNo)
	}
	// Throughput must not collapse with delayed ACKs.
	if flYes.Sink.RxBytes < flNo.Sink.RxBytes/2 {
		t.Fatalf("delack throughput collapsed: %d vs %d bytes", flYes.Sink.RxBytes, flNo.Sink.RxBytes)
	}
	// Packet conservation still holds with batched ACKs.
	c := flYes.Conn
	if c.SentPkts() != c.DeliveredPkts()+c.LostPkts()-c.SpuriousRetrans()+int64(c.InflightPkts()) {
		t.Fatal("conservation broke with delayed ACKs")
	}
}

func TestCompoundBeatsRenoOnLossyLargeBDP(t *testing.T) {
	// 96 Mb/s x 160 ms with light random loss: Reno's AIMD window collapses
	// far below the BDP; Compound's delay component keeps the pipe full as
	// long as no queue builds.
	run := func(name string) float64 {
		loop := sim.NewLoop()
		rate := netem.FlatRate(netem.Mbps(96))
		mrtt := 160 * sim.Millisecond
		n := netem.New(loop, netem.Config{
			Rate: rate, MinRTT: mrtt,
			Queue:    netem.NewDropTail(netem.BDPBytes(rate.At(0), mrtt)),
			LossProb: 1e-4, Seed: 7,
		})
		fl := tcp.NewFlow(loop, n, 1, MustNew(name), tcp.Options{})
		fl.Conn.Start(0)
		loop.RunUntil(30 * sim.Second)
		return float64(fl.Sink.RxBytes) * 8 / 30
	}
	comp, reno := run("compound"), run("newreno")
	if comp <= 1.5*reno {
		t.Fatalf("compound %.2f vs reno %.2f Mb/s on lossy large BDP", comp/1e6, reno/1e6)
	}
}

func TestScalableRecovery(t *testing.T) {
	r := run1(t, "scalable", 96, 40, 0.5, 10*sim.Second)
	if r.util < 0.6 {
		t.Fatalf("scalable utilization %.2f", r.util)
	}
}

func TestNATCPTracksCapacityStep(t *testing.T) {
	mrtt := 20 * sim.Millisecond
	sc := netem.Scenario{
		Name:       "natcp-step",
		Rate:       netem.StepRate(netem.Mbps(24), netem.Mbps(48), 5*sim.Second),
		MinRTT:     mrtt,
		QueueBytes: 2 * netem.BDPBytes(netem.Mbps(48), mrtt),
		Duration:   10 * sim.Second,
	}
	loop := sim.NewLoop()
	n := sc.Build(loop)
	fl := tcp.NewFlow(loop, n, 1, NewNATCP(sc, 1), tcp.Options{})
	fl.Conn.Start(0)
	loop.RunUntil(sc.Duration)
	// The oracle should utilize both halves near-perfectly with near-floor
	// delay: mean capacity is 36 Mb/s.
	thr := float64(fl.Sink.RxBytes) * 8 / sc.Duration.Seconds()
	if thr < 0.85*36e6 {
		t.Fatalf("natcp throughput %.2f Mb/s", thr/1e6)
	}
	if fl.Sink.OWDAvg() > 15*sim.Millisecond {
		t.Fatalf("natcp owd %v, want near the 10 ms floor", fl.Sink.OWDAvg())
	}
	if sent := fl.Conn.SentPkts(); sent > 0 && float64(fl.Conn.LostPkts())/float64(sent) > 0.01 {
		t.Fatalf("natcp loss %.3f", float64(fl.Conn.LostPkts())/float64(sent))
	}
}

func TestCubicHyStartExitsBeforeLossInDeepBuffer(t *testing.T) {
	// Deep buffer: classic slow start overshoots to the full buffer before
	// the first loss; HyStart should exit on the delay rise instead.
	loop := sim.NewLoop()
	rate := netem.FlatRate(netem.Mbps(24))
	mrtt := 40 * sim.Millisecond
	qb := 16 * netem.BDPBytes(rate.At(0), mrtt)
	n := netem.New(loop, netem.Config{Rate: rate, MinRTT: mrtt, Queue: netem.NewDropTail(qb)})
	withHS := NewCubic()
	fl := tcp.NewFlow(loop, n, 1, withHS, tcp.Options{})
	fl.Conn.Start(0)
	loop.RunUntil(3 * sim.Second)
	if !withHS.hsExited {
		t.Fatal("HyStart never fired in a deep buffer")
	}
	if fl.Conn.LostPkts() != 0 {
		t.Fatal("losses before HyStart exit")
	}
	// The exit point should be in the vicinity of the BDP, not 16x beyond.
	bdpPkts := float64(netem.BDPBytes(rate.At(0), mrtt)) / float64(netem.MTU)
	if fl.Conn.Ssthresh > 6*bdpPkts {
		t.Fatalf("HyStart exit at ssthresh %.0f, BDP is %.0f pkts", fl.Conn.Ssthresh, bdpPkts)
	}
}
