package cc

import (
	"sage/internal/sim"
	"sage/internal/tcp"
)

func init() { Register("vegas", func() tcp.CongestionControl { return NewVegas() }) }

// Vegas implements TCP Vegas (Brakmo & Peterson 1994), the canonical
// delay-based scheme: it estimates the backlog diff = cwnd·(RTT−base)/RTT
// and holds it between Alpha and Beta packets.
type Vegas struct {
	Alpha float64 // lower backlog bound (2)
	Beta  float64 // upper backlog bound (4)
	Gamma float64 // slow-start backlog bound (1)

	clock  rttClock
	minRTT sim.Time // min RTT seen within the current observation RTT
}

// NewVegas returns Vegas with the classic α=2, β=4, γ=1 parameters.
func NewVegas() *Vegas { return &Vegas{Alpha: 2, Beta: 4, Gamma: 1} }

// Name implements tcp.CongestionControl.
func (*Vegas) Name() string { return "vegas" }

// Init implements tcp.CongestionControl.
func (v *Vegas) Init(c *tcp.Conn) {}

// OnAck implements tcp.CongestionControl.
func (v *Vegas) OnAck(c *tcp.Conn, e tcp.AckEvent) {
	if e.State != tcp.StateOpen {
		return
	}
	if v.minRTT == 0 || e.RTT < v.minRTT {
		v.minRTT = e.RTT
	}
	if !v.clock.tick(e.Now, e.SRTT) {
		return
	}
	rtt := v.minRTT
	v.minRTT = 0
	base := c.BaseRTT()
	if rtt <= 0 || base <= 0 {
		return
	}
	// Expected vs actual throughput difference, in packets of backlog.
	diff := c.Cwnd * float64(rtt-base) / float64(rtt)
	if slowStart(c) {
		if diff > v.Gamma {
			// Leave slow start: the queue is already building.
			c.Ssthresh = c.Cwnd
			c.SetCwnd(c.Cwnd - diff)
		} else {
			c.SetCwnd(c.Cwnd * 2) // Vegas doubles once per RTT in slow start
		}
		return
	}
	switch {
	case diff < v.Alpha:
		c.SetCwnd(c.Cwnd + 1)
	case diff > v.Beta:
		c.SetCwnd(c.Cwnd - 1)
	}
	if c.Cwnd < 2 {
		c.SetCwnd(2)
	}
}

// OnLoss implements tcp.CongestionControl.
func (v *Vegas) OnLoss(c *tcp.Conn, lost int, now sim.Time) { multiplicativeLoss(c, 0.5) }

// OnRTO implements tcp.CongestionControl.
func (v *Vegas) OnRTO(c *tcp.Conn, now sim.Time) { rtoCollapse(c) }
