package cc

import (
	"math"
	"math/rand"

	"sage/internal/sim"
	"sage/internal/tcp"
)

func init() { Register("cdg", func() tcp.CongestionControl { return NewCDG(1) }) }

// CDG implements CAIA Delay-Gradient TCP (Hayes & Armitage 2011): per-RTT
// gradients of the minimum and maximum RTT drive a probabilistic backoff
// P = 1 − exp(−g/G), while a Reno "shadow window" preserves competitiveness
// with loss-based flows after losses.
type CDG struct {
	G       float64 // backoff scaling in ms of gradient (3)
	Backoff float64 // multiplicative backoff factor (0.7)
	Window  int     // gradient moving-average length (8)

	rng       *rand.Rand
	clock     rttClock
	minRTT    sim.Time
	maxRTT    sim.Time
	prevMin   sim.Time
	prevMax   sim.Time
	gMinHist  []float64
	gMaxHist  []float64
	shadowWnd float64
}

// NewCDG returns CDG with the paper's G=3, backoff 0.7 and an 8-sample
// gradient average. The seed drives the probabilistic backoff.
func NewCDG(seed int64) *CDG {
	return &CDG{G: 3, Backoff: 0.7, Window: 8, rng: rand.New(rand.NewSource(seed))}
}

// Name implements tcp.CongestionControl.
func (*CDG) Name() string { return "cdg" }

// Init implements tcp.CongestionControl.
func (d *CDG) Init(c *tcp.Conn) { d.shadowWnd = c.Cwnd }

func avg(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// OnAck implements tcp.CongestionControl.
func (d *CDG) OnAck(c *tcp.Conn, e tcp.AckEvent) {
	if d.minRTT == 0 || e.RTT < d.minRTT {
		d.minRTT = e.RTT
	}
	if e.RTT > d.maxRTT {
		d.maxRTT = e.RTT
	}
	if d.clock.tick(e.Now, e.SRTT) {
		if d.prevMin > 0 {
			gMin := (d.minRTT - d.prevMin).Millis()
			gMax := (d.maxRTT - d.prevMax).Millis()
			d.gMinHist = append(d.gMinHist, gMin)
			d.gMaxHist = append(d.gMaxHist, gMax)
			if len(d.gMinHist) > d.Window {
				d.gMinHist = d.gMinHist[1:]
				d.gMaxHist = d.gMaxHist[1:]
			}
			g := avg(d.gMinHist)
			if gm := avg(d.gMaxHist); gm > g {
				g = gm
			}
			if g > 0 && e.State == tcp.StateOpen {
				p := 1 - math.Exp(-g/d.G)
				if d.rng.Float64() < p {
					// Delay-gradient backoff; the shadow window remembers
					// what Reno would have kept.
					if c.Cwnd > d.shadowWnd {
						d.shadowWnd = c.Cwnd
					}
					c.Ssthresh = c.Cwnd * d.Backoff
					c.SetCwnd(c.Cwnd * d.Backoff)
				}
			}
		}
		d.prevMin, d.prevMax = d.minRTT, d.maxRTT
		d.minRTT, d.maxRTT = 0, 0
	}
	if e.State != tcp.StateOpen {
		return
	}
	if slowStart(c) {
		c.SetCwnd(c.Cwnd + float64(e.AckedPkts))
	} else {
		c.SetCwnd(c.Cwnd + float64(e.AckedPkts)/c.Cwnd)
	}
	// The shadow window grows like Reno regardless of delay backoffs.
	if d.shadowWnd > 0 {
		d.shadowWnd += float64(e.AckedPkts) / d.shadowWnd
	}
}

// OnLoss implements tcp.CongestionControl.
func (d *CDG) OnLoss(c *tcp.Conn, lost int, now sim.Time) {
	// Use the shadow window so prior delay backoffs are not punished twice.
	w := c.Cwnd
	if d.shadowWnd > w {
		w = d.shadowWnd
	}
	ss := w / 2
	if ss < 2 {
		ss = 2
	}
	c.Ssthresh = ss
	c.SetCwnd(ss)
	d.shadowWnd = ss
}

// OnRTO implements tcp.CongestionControl.
func (d *CDG) OnRTO(c *tcp.Conn, now sim.Time) {
	d.shadowWnd = 2
	rtoCollapse(c)
}
