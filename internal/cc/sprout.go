package cc

import (
	"math"

	"sage/internal/sim"
	"sage/internal/tcp"
)

func init() { Register("sprout", func() tcp.CongestionControl { return NewSprout() }) }

// Sprout implements a compact Sprout-EWMA variant (Winstein, Sivaraman,
// Balakrishnan, NSDI 2013): it forecasts the link's deliverable volume from
// a smoothed delivery-rate estimate with an uncertainty discount, and sizes
// the window so queued data drains within the delay tolerance — trading
// throughput for tightly bounded delay on variable links.
type Sprout struct {
	TargetDelay sim.Time // tolerated queueing delay (100 ms in the paper)
	Sigma       float64  // uncertainty discount in standard deviations (1)

	mean  float64 // bytes/second
	varr  float64
	clock rttClock
}

// NewSprout returns Sprout with the paper's 100 ms delay tolerance.
func NewSprout() *Sprout { return &Sprout{TargetDelay: 100 * sim.Millisecond, Sigma: 1} }

// Name implements tcp.CongestionControl.
func (*Sprout) Name() string { return "sprout" }

// Init implements tcp.CongestionControl.
func (s *Sprout) Init(c *tcp.Conn) {}

// OnAck implements tcp.CongestionControl.
func (s *Sprout) OnAck(c *tcp.Conn, e tcp.AckEvent) {
	if e.DeliveryRate <= 0 {
		return
	}
	if s.mean == 0 {
		s.mean = e.DeliveryRate
	}
	d := e.DeliveryRate - s.mean
	s.mean += 0.125 * d
	s.varr = 0.875*s.varr + 0.125*d*d
	if !s.clock.tick(e.Now, e.SRTT) {
		return
	}
	// Conservative forecast: mean − σ·std, floored at a tenth of the mean.
	forecast := s.mean - s.Sigma*math.Sqrt(s.varr)
	if forecast < s.mean/10 {
		forecast = s.mean / 10
	}
	// Window = volume the link drains in (minRTT + tolerance).
	horizon := c.BaseRTT() + s.TargetDelay
	w := forecast * horizon.Seconds() / float64(c.MSS())
	if w < 2 {
		w = 2
	}
	c.SetCwnd(w)
}

// OnLoss implements tcp.CongestionControl.
func (s *Sprout) OnLoss(c *tcp.Conn, lost int, now sim.Time) { multiplicativeLoss(c, 0.5) }

// OnRTO implements tcp.CongestionControl.
func (s *Sprout) OnRTO(c *tcp.Conn, now sim.Time) { rtoCollapse(c) }
