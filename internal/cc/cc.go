// Package cc implements the congestion-control algorithms of the paper's
// pool of policies (13 kernel schemes: Westwood, Cubic, Vegas, YeAH, BBR2,
// NewReno, Illinois, Veno, HighSpeed, CDG, HTCP, BIC, Hybla) plus the
// delay-based league (Copa, C2TCP, LEDBAT, Sprout). Each scheme is a
// from-scratch port of the published algorithm onto the tcp.CongestionControl
// hook surface, the same way kernel modules implement tcp_congestion_ops.
package cc

import (
	"fmt"
	"sort"
	"strings"

	"sage/internal/sim"
	"sage/internal/tcp"
)

// Factory builds a fresh congestion-control instance. Schemes keep per-flow
// state, so every flow needs its own instance.
type Factory func() tcp.CongestionControl

var registry = map[string]Factory{}

// Register adds a scheme factory under name. It panics on duplicates so a
// wiring mistake fails loudly at init time.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic("cc: duplicate registration of " + name)
	}
	registry[name] = f
}

// New returns a fresh instance of the named scheme.
func New(name string) (tcp.CongestionControl, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("cc: unknown scheme %q", name)
	}
	return f(), nil
}

// MustNew is New for compile-time-constant names; it panics on error.
// Anything that takes scheme names from user input (flags, pool files)
// must go through New or Validate instead, so a typo is an error with the
// known-scheme list rather than a mid-campaign crash.
func MustNew(name string) tcp.CongestionControl {
	c, err := New(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Validate checks every name against the registry and returns one error
// naming all unknown schemes plus the registered list. It exists so CLI
// tools can reject a typo in -schemes before hours of collection start.
func Validate(names ...string) error {
	var unknown []string
	for _, n := range names {
		if _, ok := registry[n]; !ok {
			unknown = append(unknown, fmt.Sprintf("%q", n))
		}
	}
	if len(unknown) == 0 {
		return nil
	}
	return fmt.Errorf("cc: unknown scheme(s) %s (known: %s)",
		strings.Join(unknown, ", "), strings.Join(Names(), ", "))
}

// Names returns every registered scheme, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PoolNames returns the paper's 13-scheme pool of policies (Section 5).
func PoolNames() []string {
	return []string{"westwood", "cubic", "vegas", "yeah", "bbr2", "newreno",
		"illinois", "veno", "highspeed", "cdg", "htcp", "bic", "hybla"}
}

// DelayLeagueNames returns the delay-based league of Section 6.3.
func DelayLeagueNames() []string {
	return []string{"bbr2", "copa", "c2tcp", "ledbat", "vegas", "sprout"}
}

// ---- shared helpers ----

// slowStart reports whether the connection is below ssthresh.
func slowStart(c *tcp.Conn) bool { return c.Cwnd < c.Ssthresh }

// renoAck applies the standard NewReno window growth for one ACK when the
// connection is in the Open state.
func renoAck(c *tcp.Conn, e tcp.AckEvent) {
	if e.State != tcp.StateOpen {
		return
	}
	if slowStart(c) {
		c.SetCwnd(c.Cwnd + float64(e.AckedPkts))
		return
	}
	c.SetCwnd(c.Cwnd + float64(e.AckedPkts)/c.Cwnd)
}

// multiplicativeLoss applies ssthresh = max(cwnd*beta, 2) and deflates cwnd.
func multiplicativeLoss(c *tcp.Conn, beta float64) {
	ss := c.Cwnd * beta
	if ss < 2 {
		ss = 2
	}
	c.Ssthresh = ss
	c.SetCwnd(ss)
}

// rtoCollapse applies the standard timeout response.
func rtoCollapse(c *tcp.Conn) {
	ss := c.Cwnd / 2
	if ss < 2 {
		ss = 2
	}
	c.Ssthresh = ss
	c.SetCwnd(1)
}

// rttClock triggers once per smoothed RTT, for schemes with per-RTT logic.
type rttClock struct{ next sim.Time }

func (r *rttClock) tick(now, srtt sim.Time) bool {
	if srtt <= 0 {
		return false
	}
	if now < r.next {
		return false
	}
	r.next = now + srtt
	return true
}
