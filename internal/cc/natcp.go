package cc

import (
	"sage/internal/netem"
	"sage/internal/sim"
	"sage/internal/tcp"
)

// NATCP approximates Network-Assisted TCP (Abbasloo et al., HotEdge 2019):
// the network tells the sender its current capacity and the propagation
// delay, and the sender simply tracks cwnd = capacity × minRTT (one BDP).
// Under emulation the "network assistance" is the scenario's ground truth,
// which is why the paper plots NATCP as the near-optimal reference in its
// cellular experiments (Fig. 8c/26). It is deliberately NOT in the
// registry: it needs the scenario and therefore cannot be a black-box
// kernel module.
type NATCP struct {
	rate   *netem.RateSchedule
	minRTT sim.Time
	share  float64 // fraction of capacity this flow may take
	clock  rttClock
}

// NewNATCP builds the oracle for one scenario. share is the flow's fair
// fraction of the link (1 for single-flow scenarios).
func NewNATCP(sc netem.Scenario, share float64) *NATCP {
	if share <= 0 || share > 1 {
		share = 1
	}
	return &NATCP{rate: sc.Rate, minRTT: sc.MinRTT, share: share}
}

// Name implements tcp.CongestionControl.
func (*NATCP) Name() string { return "natcp" }

// Init implements tcp.CongestionControl.
func (n *NATCP) Init(c *tcp.Conn) {}

// OnAck implements tcp.CongestionControl.
func (n *NATCP) OnAck(c *tcp.Conn, e tcp.AckEvent) {
	if !n.clock.tick(e.Now, maxTime(e.SRTT/4, 5*sim.Millisecond)) {
		return
	}
	capacity := n.rate.At(e.Now) * n.share // bits/second, told by the network
	bdp := capacity / 8 * n.minRTT.Seconds() / float64(c.MSS())
	if bdp < 2 {
		bdp = 2
	}
	c.SetCwnd(bdp)
	c.PacingRate = capacity / 8
}

// OnLoss implements tcp.CongestionControl (the oracle never overshoots by
// more than scheduling noise; no extra reaction needed).
func (n *NATCP) OnLoss(c *tcp.Conn, lost int, now sim.Time) {}

// OnRTO implements tcp.CongestionControl.
func (n *NATCP) OnRTO(c *tcp.Conn, now sim.Time) { c.SetCwnd(2) }
