package cc

import (
	"sage/internal/sim"
	"sage/internal/tcp"
)

func init() { Register("dctcp", func() tcp.CongestionControl { return NewDCTCP() }) }

// DCTCP implements Data Center TCP (Alizadeh et al., SIGCOMM 2010): the
// sender enables ECN, estimates the fraction α of marked packets per RTT
// with an EWMA, and scales its window down by α/2 — a congestion response
// proportional to the *extent* of congestion rather than its mere presence.
// It needs a marking AQM (CoDel/PIE with ECT packets) at the bottleneck.
type DCTCP struct {
	G float64 // EWMA gain (1/16)

	alpha    float64
	ackTotal int
	ackMarks int
	clock    rttClock
	cutThis  bool // already reduced for the current window of marks
}

// NewDCTCP returns DCTCP with the paper's g = 1/16.
func NewDCTCP() *DCTCP { return &DCTCP{G: 1.0 / 16} }

// Name implements tcp.CongestionControl.
func (*DCTCP) Name() string { return "dctcp" }

// Init implements tcp.CongestionControl.
func (d *DCTCP) Init(c *tcp.Conn) { c.EnableECN() }

// Alpha returns the current marked-fraction estimate.
func (d *DCTCP) Alpha() float64 { return d.alpha }

// OnAck implements tcp.CongestionControl.
func (d *DCTCP) OnAck(c *tcp.Conn, e tcp.AckEvent) {
	d.ackTotal += e.AckedPkts
	if e.ECE {
		d.ackMarks += e.AckedPkts
	}
	if d.clock.tick(e.Now, e.SRTT) && d.ackTotal > 0 {
		f := float64(d.ackMarks) / float64(d.ackTotal)
		d.alpha = (1-d.G)*d.alpha + d.G*f
		if d.ackMarks > 0 {
			// Proportional multiplicative decrease, once per RTT.
			ss := c.Cwnd * (1 - d.alpha/2)
			if ss < 2 {
				ss = 2
			}
			c.Ssthresh = ss
			c.SetCwnd(ss)
			d.cutThis = true
		} else {
			d.cutThis = false
		}
		d.ackTotal, d.ackMarks = 0, 0
	}
	if e.State != tcp.StateOpen || (e.ECE && d.cutThis) {
		return
	}
	renoAck(c, e)
}

// OnLoss implements tcp.CongestionControl.
func (d *DCTCP) OnLoss(c *tcp.Conn, lost int, now sim.Time) { multiplicativeLoss(c, 0.5) }

// OnRTO implements tcp.CongestionControl.
func (d *DCTCP) OnRTO(c *tcp.Conn, now sim.Time) { rtoCollapse(c) }
