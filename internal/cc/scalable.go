package cc

import (
	"sage/internal/sim"
	"sage/internal/tcp"
)

func init() { Register("scalable", func() tcp.CongestionControl { return NewScalable() }) }

// Scalable implements Scalable TCP (Kelly 2003): multiplicative increase of
// a fixed 0.01 per ACK and a gentle 1/8 multiplicative decrease, making the
// recovery time after loss independent of the window size — the high-speed
// behaviour YeAH borrows for its "Fast" mode.
type Scalable struct {
	A float64 // per-ack increase (0.01)
	B float64 // decrease fraction (0.125)
}

// NewScalable returns Scalable TCP with Kelly's a=0.01, b=1/8.
func NewScalable() *Scalable { return &Scalable{A: 0.01, B: 0.125} }

// Name implements tcp.CongestionControl.
func (*Scalable) Name() string { return "scalable" }

// Init implements tcp.CongestionControl.
func (s *Scalable) Init(c *tcp.Conn) {}

// OnAck implements tcp.CongestionControl.
func (s *Scalable) OnAck(c *tcp.Conn, e tcp.AckEvent) {
	if e.State != tcp.StateOpen {
		return
	}
	if slowStart(c) {
		c.SetCwnd(c.Cwnd + float64(e.AckedPkts))
		return
	}
	c.SetCwnd(c.Cwnd + s.A*float64(e.AckedPkts))
}

// OnLoss implements tcp.CongestionControl.
func (s *Scalable) OnLoss(c *tcp.Conn, lost int, now sim.Time) {
	multiplicativeLoss(c, 1-s.B)
}

// OnRTO implements tcp.CongestionControl.
func (s *Scalable) OnRTO(c *tcp.Conn, now sim.Time) { rtoCollapse(c) }
