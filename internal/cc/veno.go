package cc

import (
	"sage/internal/sim"
	"sage/internal/tcp"
)

func init() { Register("veno", func() tcp.CongestionControl { return NewVeno() }) }

// Veno implements TCP Veno (Fu & Liew 2003): Vegas's backlog estimate N
// distinguishes congestive from random (wireless) loss — cwnd is cut by only
// 1/5 when the backlog is small, and the increase slows once N exceeds Beta.
type Veno struct {
	Beta float64 // backlog threshold in packets (3)

	n       float64 // current backlog estimate
	minRTT  sim.Time
	clock   rttClock
	ackSkip bool
}

// NewVeno returns Veno with the paper's β=3 threshold.
func NewVeno() *Veno { return &Veno{Beta: 3} }

// Name implements tcp.CongestionControl.
func (*Veno) Name() string { return "veno" }

// Init implements tcp.CongestionControl.
func (v *Veno) Init(c *tcp.Conn) {}

// OnAck implements tcp.CongestionControl.
func (v *Veno) OnAck(c *tcp.Conn, e tcp.AckEvent) {
	if v.minRTT == 0 || e.RTT < v.minRTT {
		v.minRTT = e.RTT
	}
	if v.clock.tick(e.Now, e.SRTT) {
		base := c.BaseRTT()
		if v.minRTT > 0 && base > 0 && v.minRTT >= base {
			v.n = c.Cwnd * float64(v.minRTT-base) / float64(v.minRTT)
		}
		v.minRTT = 0
	}
	if e.State != tcp.StateOpen {
		return
	}
	if slowStart(c) {
		c.SetCwnd(c.Cwnd + float64(e.AckedPkts))
		return
	}
	if v.n < v.Beta {
		c.SetCwnd(c.Cwnd + float64(e.AckedPkts)/c.Cwnd)
		return
	}
	// Backlog built up: increase every other ACK only.
	if v.ackSkip {
		c.SetCwnd(c.Cwnd + float64(e.AckedPkts)/c.Cwnd)
	}
	v.ackSkip = !v.ackSkip
}

// OnLoss implements tcp.CongestionControl.
func (v *Veno) OnLoss(c *tcp.Conn, lost int, now sim.Time) {
	if v.n < v.Beta {
		multiplicativeLoss(c, 0.8) // random loss: mild cut
	} else {
		multiplicativeLoss(c, 0.5) // congestive loss: classic halving
	}
}

// OnRTO implements tcp.CongestionControl.
func (v *Veno) OnRTO(c *tcp.Conn, now sim.Time) { rtoCollapse(c) }
