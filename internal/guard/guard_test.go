package guard

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sage/internal/cc"
	"sage/internal/chaos"
	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/nn"
	"sage/internal/rl"
	"sage/internal/rollout"
	"sage/internal/sim"
	"sage/internal/tcp"
	"sage/internal/telemetry"
)

// testConn builds a started flow over a simple bottleneck so guardian unit
// tests can drive Control directly against a real connection.
func testConn(t *testing.T, rate *netem.RateSchedule) (*tcp.Conn, *sim.Loop) {
	t.Helper()
	loop := sim.NewLoop()
	n := netem.New(loop, netem.Config{Rate: rate, MinRTT: 20 * sim.Millisecond, Queue: netem.NewDropTail(1 << 20)})
	fl := tcp.NewFlow(loop, n, 1, cc.MustNew("pure"), tcp.Options{})
	return fl.Conn, loop
}

// setCwnd is a controller that applies f to the current window each tick.
type setCwnd struct{ f func(w float64) float64 }

func (s setCwnd) Control(_ sim.Time, conn *tcp.Conn, _ []float64) {
	conn.SetCwnd(s.f(conn.Cwnd))
}

func finiteState() []float64 { return make([]float64, 8) }

func adversarialScenario(t *testing.T, family string) netem.Scenario {
	t.Helper()
	grid := netem.AdversarialGrid(netem.AdversarialOptions{Level: netem.GridTiny, Duration: 10 * sim.Second, Seed: 1})
	for _, sc := range grid {
		if strings.HasPrefix(sc.Name, family+"-") {
			return sc
		}
	}
	t.Fatalf("no %q scenario in the adversarial grid", family)
	return netem.Scenario{}
}

// TestGuardianRecoversNaNPolicy is the headline robustness contrast: under
// an adversarial scenario, a policy whose weights corrupt to NaN mid-flight
// permanently stalls an unguarded connection, while the guardian trips the
// same connection to Cubic within the watchdog budget, completes the flow,
// and re-admits the (healed) policy after probation — with every transition
// recorded in telemetry.
func TestGuardianRecoversNaNPolicy(t *testing.T) {
	sc := adversarialScenario(t, "reorder")
	newPolicy := func() *nn.Policy {
		return nn.NewPolicy(nn.PolicyConfig{InDim: gr.StateDim, Enc: 8, Hidden: 4, K: 2, Seed: 1})
	}
	// The untrained test policy legitimately rides the cwnd floor, which
	// would fire the collapse watchdog before the poison lands; park that
	// watchdog (it has a dedicated test below) so this test isolates the
	// NaN trip → probation → re-admission cycle.
	cfg := func(reg *telemetry.Registry) Config {
		return Config{Metrics: reg, CollapseIntervals: 1 << 20}
	}

	// Unguarded: the NaN policy blackholes the connection for good.
	polA := newPolicy()
	bare := &chaos.NaNInjector{
		Inner:       rl.NewPolicyController(polA, nil, false, 1),
		Policy:      polA,
		PoisonAfter: 50, // ~1 s in at the default 20 ms GR interval
	}
	bareRes := rollout.Run(sc, cc.MustNew("pure"), rollout.Options{Controller: bare})
	if n := len(bareRes.Intervals); n == 0 || bareRes.Intervals[n-1].ThroughputBps != 0 {
		t.Fatalf("unguarded NaN policy should stall the flow; final interval = %+v", bareRes.Intervals)
	}

	// Guarded: same corruption, but the weights heal one policy tick after
	// the poison (the guardian freezes the policy while tripped, so the
	// heal lands on the first post-restore inference).
	polB := newPolicy()
	inj := &chaos.NaNInjector{
		Inner:       rl.NewPolicyController(polB, nil, false, 1),
		Policy:      polB,
		PoisonAfter: 50,
		HealAfter:   51,
	}
	reg := telemetry.NewRegistry()
	g := New(inj, cfg(reg))
	res := rollout.Run(sc, cc.MustNew("pure"), rollout.Options{Controller: g})

	if g.Trips() < 1 {
		t.Fatal("guardian never tripped on the NaN policy")
	}
	if g.Restores() < 1 {
		t.Fatalf("policy never re-admitted after probation (trips=%d)", g.Trips())
	}
	if n := len(res.Intervals); n == 0 || res.Intervals[n-1].ThroughputBps == 0 {
		t.Fatalf("guarded flow did not complete; final interval = %+v", res.Intervals)
	}
	if res.ThroughputBps <= 2*bareRes.ThroughputBps {
		t.Fatalf("guarded throughput %.0f not clearly above unguarded %.0f",
			res.ThroughputBps, bareRes.ThroughputBps)
	}

	// The trip fired within the same control interval the NaN surfaced in:
	// the first event is a trip for a non-finite window.
	ev := g.Events()
	if len(ev) < 2 {
		t.Fatalf("events = %+v, want at least trip+restore", ev)
	}
	if ev[0].Kind != KindTrip || ev[0].Reason != ReasonBadCwnd {
		t.Fatalf("first event = %+v, want %s/%s", ev[0], KindTrip, ReasonBadCwnd)
	}
	var sawRestore bool
	for _, e := range ev {
		if e.Kind == KindRestore {
			sawRestore = true
			if e.AtUs <= ev[0].AtUs {
				t.Fatalf("restore at %d not after trip at %d", e.AtUs, ev[0].AtUs)
			}
		}
	}
	if !sawRestore {
		t.Fatalf("no restore event in %+v", ev)
	}

	// Counters landed in the registry.
	snap := reg.Snapshot()
	if snap[MetricTrips] < 1 || snap[MetricRestores] < 1 || snap[MetricBadCwnds] < 1 {
		t.Fatalf("registry snapshot missing guard counters: %v", snap)
	}

	// And the event log round-trips through the JSONL exporter.
	path := filepath.Join(t.TempDir(), "guard.jsonl")
	j, err := telemetry.CreateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.EmitEvents(j); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != len(ev) {
		t.Fatalf("JSONL has %d lines, want %d", len(lines), len(ev))
	}
	if !strings.Contains(lines[0], ReasonBadCwnd) {
		t.Fatalf("first JSONL line %q missing reason", lines[0])
	}
}

func TestGuardianTripsOnBadStateVector(t *testing.T) {
	conn, _ := testConn(t, netem.FlatRate(netem.Mbps(12)))
	reg := telemetry.NewRegistry()
	g := New(setCwnd{func(w float64) float64 { return w }}, Config{Metrics: reg})

	state := finiteState()
	state[3] = math.NaN()
	g.Control(0, conn, state)

	if !g.Tripped() || g.Trips() != 1 {
		t.Fatalf("tripped=%v trips=%d, want trip on NaN state", g.Tripped(), g.Trips())
	}
	if name := conn.CC().Name(); name != "cubic" {
		t.Fatalf("fallback CC = %q, want cubic", name)
	}
	if ev := g.Events(); len(ev) != 1 || ev[0].Reason != ReasonBadState {
		t.Fatalf("events = %+v", ev)
	}
	if snap := reg.Snapshot(); snap[MetricBadStates] != 1 {
		t.Fatalf("bad_states counter = %v", snap[MetricBadStates])
	}
}

func TestGuardianClampsWildStep(t *testing.T) {
	conn, _ := testConn(t, netem.FlatRate(netem.Mbps(12)))
	g := New(setCwnd{func(w float64) float64 { return w * 100 }}, Config{})

	before := conn.Cwnd
	g.Control(0, conn, finiteState())
	if want := before * 4; conn.Cwnd != want { // default MaxStepRatio 4
		t.Fatalf("cwnd = %v after 100x step, want clamped to %v", conn.Cwnd, want)
	}
	if g.Clamps() != 1 || g.Tripped() {
		t.Fatalf("clamps=%d tripped=%v, want a clamp without a trip", g.Clamps(), g.Tripped())
	}
}

func TestGuardianCollapseTrip(t *testing.T) {
	conn, _ := testConn(t, netem.FlatRate(netem.Mbps(12)))
	reg := telemetry.NewRegistry()
	g := New(setCwnd{func(float64) float64 { return 1 }}, Config{Metrics: reg})

	for i := 0; i < 40 && !g.Tripped(); i++ {
		g.Control(sim.Time(i)*20*sim.Millisecond, conn, finiteState())
	}
	if !g.Tripped() {
		t.Fatal("sustained floor-pinned cwnd never tripped the collapse watchdog")
	}
	if ev := g.Events(); ev[len(ev)-1].Reason != ReasonCollapse {
		t.Fatalf("events = %+v, want collapse trip", ev)
	}
	if snap := reg.Snapshot(); snap[MetricCollapses] != 1 {
		t.Fatalf("collapse counter = %v", snap[MetricCollapses])
	}
	if g.Clamps() == 0 {
		t.Fatal("driving cwnd below the floor should have registered clamps")
	}
}

func TestGuardianStallTrip(t *testing.T) {
	// A link that serves ~1 kb/s strands the initial window in flight:
	// data outstanding, zero delivery progress.
	conn, loop := testConn(t, netem.FlatRate(1000))
	conn.Start(0)
	loop.RunUntil(100 * sim.Millisecond)
	if conn.InflightPkts() == 0 {
		t.Fatal("setup: nothing in flight")
	}

	reg := telemetry.NewRegistry()
	g := New(setCwnd{func(w float64) float64 { return w }}, Config{})
	_ = reg
	for i := 0; i < 8; i++ { // default StallIntervals
		g.Control(100*sim.Millisecond+sim.Time(i)*20*sim.Millisecond, conn, finiteState())
	}
	if !g.Tripped() {
		t.Fatal("stalled flow never tripped the watchdog")
	}
	if ev := g.Events(); ev[len(ev)-1].Reason != ReasonStall {
		t.Fatalf("events = %+v, want stall trip", ev)
	}
	if name := conn.CC().Name(); name != "cubic" {
		t.Fatalf("fallback CC = %q, want cubic", name)
	}
}

// TestGuardianHysteresisDoublesProbation checks re-trips lengthen probation:
// a controller that is always broken keeps the connection on the fallback,
// and successive restore events space out.
func TestGuardianHysteresisDoublesProbation(t *testing.T) {
	conn, loop := testConn(t, netem.FlatRate(netem.Mbps(12)))
	conn.Start(0)
	g := New(setCwnd{func(float64) float64 { return math.NaN() }},
		Config{Probation: 4, MaxProbation: 16})

	now := sim.Time(0)
	step := 20 * sim.Millisecond
	for i := 0; i < 400; i++ {
		now += step
		loop.RunUntil(now) // keep the fallback delivering so probation elapses
		g.Control(now, conn, finiteState())
	}
	if g.Trips() < 3 {
		t.Fatalf("persistently broken policy tripped only %d times", g.Trips())
	}
	ev := g.Events()
	var restores []sim.Time
	lastTrip := sim.Time(-1)
	gaps := []sim.Time{}
	for _, e := range ev {
		switch e.Kind {
		case KindTrip:
			lastTrip = sim.Time(e.AtUs)
		case KindRestore:
			restores = append(restores, sim.Time(e.AtUs))
			gaps = append(gaps, sim.Time(e.AtUs)-lastTrip)
		}
	}
	if len(gaps) < 3 {
		t.Fatalf("not enough trip→restore cycles: %+v", ev)
	}
	// Hysteresis: the second fallback episode lasts at least as long as the
	// first, and strictly longer until MaxProbation caps it.
	if gaps[1] < gaps[0] || gaps[1] <= gaps[0] && gaps[2] <= gaps[0] {
		t.Fatalf("probation gaps %v not lengthening", gaps)
	}
}
