// Package guard is the runtime safety layer around policy inference: a
// GuardedController wraps any rollout.Controller (rl.PolicyController,
// core.Agent, or a baseline) and validates every control decision before
// it reaches the connection. When the policy misbehaves — a non-finite
// state vector or window, a sustained stall, or a collapsed cwnd — the
// guardian switches the connection to a heuristic fallback (Cubic by
// default) via tcp.Conn.SwitchCC, exactly as a production deployment
// would rather than let a NaN in a forward pass blackhole a user's
// connection. After a probation window on the fallback the policy is
// re-admitted; every re-trip doubles the next probation (hysteresis), so
// a persistently broken policy converges to running the heuristic while a
// transiently confused one gets its connection back.
//
// Every trip and restore is recorded through internal/telemetry: counters
// in an optional Registry plus an in-memory event log exportable as
// JSONL.
package guard

import (
	"math"

	"sage/internal/cc"
	"sage/internal/sim"
	"sage/internal/tcp"
	"sage/internal/telemetry"
)

// Controller is the wrapped interface (identical to rollout.Controller;
// redeclared locally so guard does not import rollout, letting rollout
// users wrap freely without an import cycle).
type Controller interface {
	Control(now sim.Time, conn *tcp.Conn, state []float64)
}

// resettable is implemented by controllers with recurrent state
// (core.Agent, rl.PolicyController); the guardian resets them on
// re-admission so the policy restarts from a clean hidden state instead
// of one poisoned by the episode that tripped it.
type resettable interface{ Reset() }

// Flusher mirrors rollout.BatchFlusher (redeclared locally, like
// Controller, to avoid an import cycle): a controller that defers its
// decisions into a shared batching engine and applies them on flush.
type Flusher interface {
	FlushBatch(now sim.Time)
}

// BatchController is a controller whose decisions go through a batching
// engine (serve.Controller).
type BatchController interface {
	Controller
	Flusher
}

// Config tunes the guardian. The zero value is usable: every field has a
// conservative default.
type Config struct {
	// NewFallback builds the heuristic the connection falls back to on a
	// trip (default: Cubic). A fresh instance is built per trip, so
	// fallback state never leaks across episodes.
	NewFallback func() tcp.CongestionControl

	MinCwnd      float64 // cwnd floor in packets (default 2)
	MaxCwnd      float64 // hard cwnd ceiling in packets (default 20000)
	BDPMult      float64 // adaptive ceiling: BDPMult × estimated BDP packets (default 8)
	MaxStepRatio float64 // max multiplicative cwnd change per control interval (default 4)

	// StallIntervals is K: consecutive control intervals without delivery
	// progress (while data is outstanding) before the watchdog trips
	// (default 8).
	StallIntervals int
	// CollapseIntervals is how many consecutive intervals the window may
	// sit at the floor before the watchdog declares cwnd collapse
	// (default 16).
	CollapseIntervals int

	// Probation is how many healthy control intervals the fallback must
	// serve before the policy is re-admitted (default 32). Each
	// subsequent trip doubles the next probation, up to MaxProbation
	// (default 8× Probation).
	Probation    int
	MaxProbation int

	// Metrics, when non-nil, receives the guard.* counters. Nil costs
	// nothing (telemetry counters are nil-safe).
	Metrics *telemetry.Registry
}

func (c Config) fill() Config {
	if c.NewFallback == nil {
		c.NewFallback = func() tcp.CongestionControl { return cc.MustNew("cubic") }
	}
	if c.MinCwnd == 0 {
		c.MinCwnd = 2
	}
	if c.MaxCwnd == 0 {
		c.MaxCwnd = 20000
	}
	if c.BDPMult == 0 {
		c.BDPMult = 8
	}
	if c.MaxStepRatio == 0 {
		c.MaxStepRatio = 4
	}
	if c.StallIntervals == 0 {
		c.StallIntervals = 8
	}
	if c.CollapseIntervals == 0 {
		c.CollapseIntervals = 16
	}
	if c.Probation == 0 {
		c.Probation = 32
	}
	if c.MaxProbation == 0 {
		c.MaxProbation = 8 * c.Probation
	}
	return c
}

// Event is one guardian transition, in JSONL-friendly form.
type Event struct {
	AtUs   int64   `json:"t_us"`
	Kind   string  `json:"event"`  // "trip" or "restore"
	Reason string  `json:"reason"` // what tripped ("" for restores)
	Cwnd   float64 `json:"cwnd_pkts"`
	Trip   int     `json:"trip"` // 1-based trip episode this event belongs to
}

// Trip/restore reasons.
const (
	ReasonBadState     = "non-finite state vector"
	ReasonBadCwnd      = "non-finite cwnd after inference"
	ReasonStall        = "sustained stall"
	ReasonCollapse     = "cwnd collapse"
	ReasonSwapReprime  = "hot-swap re-prime failed"
	ReasonOverload     = "serving-plane overload brownout"
	KindTrip           = "trip"
	KindRestore        = "restore"
	MetricTrips        = "guard.trips"
	MetricRestores     = "guard.restores"
	MetricBadStates    = "guard.bad_states"
	MetricBadCwnds     = "guard.bad_cwnds"
	MetricStallTrips   = "guard.stall_trips"
	MetricCollapses    = "guard.collapse_trips"
	MetricSwapTrips    = "guard.swap_trips"
	MetricBrownoutTrps = "guard.brownout_trips"
	MetricClamps       = "guard.clamps"
	MetricFallbackTks  = "guard.fallback_intervals"
)

// degradable is implemented by controllers that can be pinned to fallback
// decisions by a failed model hot-swap (serve.Controller): the engine
// could not migrate the flow's recurrent state onto the new model, so its
// rows come back as safety no-ops. The guardian polls this and trips such
// a flow to the heuristic outright — the fallback actually controls the
// window, and the post-probation restore resets the session against the
// new incumbent.
type degradable interface{ Degraded() bool }

// brownable is implemented by controllers whose backing engine can enter
// an overload brownout (serve.Controller): the engine is serving this
// flow the cheap ratio-1.0 path, so a frozen window is all the policy
// path can offer. The guardian trips such a flow to the heuristic — Cubic
// genuinely controlling the window beats a window pinned in place — and
// the usual probation re-admits the policy once the engine recovers.
type brownable interface{ BrownedOut() bool }

// GuardedController validates a wrapped controller's every decision and
// owns the trip/fallback/re-admission state machine. It implements
// rollout.Controller and is not safe for concurrent use (neither are the
// controllers it wraps — one instance per flow).
type GuardedController struct {
	inner Controller
	cfg   Config

	origCC       tcp.CongestionControl // the module the policy drives (captured at first tick)
	tripped      bool
	probation    int // intervals left in the current fallback episode
	curProbation int // probation length of the current episode (hysteresis doubles it)
	trips        int
	restores     int
	stallTicks   int
	floorTicks   int
	clamps       int64
	lastDeliver  int64
	seen         bool
	events       []Event
}

// New wraps inner in a guardian.
func New(inner Controller, cfg Config) *GuardedController {
	return &GuardedController{inner: inner, cfg: cfg.fill()}
}

// BatchGuarded is a GuardedController over a batching controller. It
// forwards FlushBatch so rollout's per-interval flush still reaches the
// shared engine when the policy path is guarded. It is a separate type —
// rather than a FlushBatch method on GuardedController — so that only
// genuinely batching controllers satisfy rollout.BatchFlusher; rollout
// skips its inline Kick for flushers, which would stall a non-batching
// guarded flow.
//
// A tripped guard never calls the inner controller, so a tripped flow
// simply contributes no row to the batch: the remaining flows' batch
// proceeds without stalling on it.
type BatchGuarded struct {
	*GuardedController
	flusher Flusher
}

// NewBatched wraps a batching controller (e.g. serve.Controller) in a
// guardian that keeps the flush path intact.
func NewBatched(inner BatchController, cfg Config) *BatchGuarded {
	return &BatchGuarded{GuardedController: New(inner, cfg), flusher: inner}
}

// FlushBatch implements rollout.BatchFlusher.
func (b *BatchGuarded) FlushBatch(now sim.Time) { b.flusher.FlushBatch(now) }

// Control implements rollout.Controller.
func (g *GuardedController) Control(now sim.Time, conn *tcp.Conn, state []float64) {
	if !g.seen {
		g.seen = true
		g.origCC = conn.CC()
		g.lastDeliver = conn.Delivered()
	}
	delivered := conn.Delivered()
	progressed := delivered > g.lastDeliver
	g.lastDeliver = delivered

	if g.tripped {
		g.cfg.Metrics.Counter(MetricFallbackTks).Inc()
		// Hysteresis: probation only elapses while the fallback is
		// actually delivering — a dead link does not count toward
		// re-admitting the policy.
		if progressed {
			g.probation--
			if g.probation <= 0 {
				g.restore(now, conn)
			}
		}
		return
	}

	// 1. A hot-swap that failed to migrate this flow's recurrent state has
	// pinned it to no-op decisions; running the heuristic beats holding the
	// window frozen, so trip immediately.
	if d, ok := g.inner.(degradable); ok && d.Degraded() {
		g.cfg.Metrics.Counter(MetricSwapTrips).Inc()
		g.trip(now, conn, ReasonSwapReprime)
		return
	}

	// 1b. The serving plane is in overload brownout and would serve this
	// flow the cheap ratio-1.0 path anyway: trip to the heuristic so a real
	// congestion controller owns the window for the duration.
	if b, ok := g.inner.(brownable); ok && b.BrownedOut() {
		g.cfg.Metrics.Counter(MetricBrownoutTrps).Inc()
		g.trip(now, conn, ReasonOverload)
		return
	}

	// 2. Validate the observation before it reaches the network.
	if !finiteVec(state) {
		g.cfg.Metrics.Counter(MetricBadStates).Inc()
		g.trip(now, conn, ReasonBadState)
		return
	}

	before := conn.Cwnd
	g.inner.Control(now, conn, state)
	w := conn.Cwnd

	// 3. Validate the inference result (a NaN anywhere in the forward
	// pass, the GMM head, or the sampled action surfaces as a non-finite
	// window, since cwnd *= 2^u).
	if math.IsNaN(w) || math.IsInf(w, 0) {
		g.cfg.Metrics.Counter(MetricBadCwnds).Inc()
		g.trip(now, conn, ReasonBadCwnd)
		return
	}

	// 4. Sanity-bound the action: per-interval multiplicative step, floor,
	// and a ceiling keyed to the BDP estimate.
	clamped := w
	if before > 0 && !math.IsNaN(before) {
		if max := before * g.cfg.MaxStepRatio; clamped > max {
			clamped = max
		}
		if min := before / g.cfg.MaxStepRatio; clamped < min {
			clamped = min
		}
	}
	clamped = tcp.ClampCwnd(clamped, g.cfg.MinCwnd, g.ceiling(conn))
	if clamped != w {
		g.clamps++
		g.cfg.Metrics.Counter(MetricClamps).Inc()
		conn.SetCwnd(clamped)
	}

	// 5. Watchdog: sustained stall and cwnd collapse.
	if !progressed && conn.InflightPkts() > 0 {
		g.stallTicks++
	} else {
		g.stallTicks = 0
	}
	if conn.Cwnd <= g.cfg.MinCwnd {
		g.floorTicks++
	} else {
		g.floorTicks = 0
	}
	switch {
	case g.stallTicks >= g.cfg.StallIntervals:
		g.cfg.Metrics.Counter(MetricStallTrips).Inc()
		g.trip(now, conn, ReasonStall)
	case g.floorTicks >= g.cfg.CollapseIntervals:
		g.cfg.Metrics.Counter(MetricCollapses).Inc()
		g.trip(now, conn, ReasonCollapse)
	}
}

// ceiling returns the adaptive cwnd ceiling: BDPMult × the BDP estimated
// from the max delivery rate and min RTT, bounded by MaxCwnd. Before any
// delivery-rate sample exists the hard ceiling applies alone.
func (g *GuardedController) ceiling(conn *tcp.Conn) float64 {
	bdpPkts := conn.MaxDeliveryRate() * conn.MinRTT().Seconds() / float64(conn.MSS())
	if bdpPkts <= 0 || math.IsNaN(bdpPkts) || math.IsInf(bdpPkts, 0) {
		return g.cfg.MaxCwnd
	}
	ceil := g.cfg.BDPMult * bdpPkts
	// Never strangle startup: a fresh flow's delivery-rate estimate
	// lowballs the true BDP until the pipe fills.
	if ceil < 4*g.cfg.MinCwnd+10 {
		ceil = 4*g.cfg.MinCwnd + 10
	}
	if ceil > g.cfg.MaxCwnd {
		ceil = g.cfg.MaxCwnd
	}
	return ceil
}

func (g *GuardedController) trip(now sim.Time, conn *tcp.Conn, reason string) {
	g.trips++
	g.tripped = true
	g.stallTicks, g.floorTicks = 0, 0
	if g.curProbation == 0 {
		g.curProbation = g.cfg.Probation
	} else {
		g.curProbation *= 2
		if g.curProbation > g.cfg.MaxProbation {
			g.curProbation = g.cfg.MaxProbation
		}
	}
	g.probation = g.curProbation

	// Hand the heuristic a workable window: SwitchCC sanitizes non-finite
	// congestion state, and restarting from the floor lets the fallback
	// slow-start back to the link's capacity instead of inheriting a
	// possibly pathological window.
	conn.SwitchCC(g.cfg.NewFallback(), now)
	if w := conn.Cwnd; math.IsNaN(w) || w > g.ceiling(conn) || w < g.cfg.MinCwnd {
		conn.SetCwnd(g.cfg.MinCwnd)
	}
	conn.Kick(now)

	g.cfg.Metrics.Counter(MetricTrips).Inc()
	g.events = append(g.events, Event{
		AtUs: int64(now), Kind: KindTrip, Reason: reason, Cwnd: conn.Cwnd, Trip: g.trips,
	})
}

func (g *GuardedController) restore(now sim.Time, conn *tcp.Conn) {
	g.tripped = false
	g.restores++
	g.stallTicks, g.floorTicks = 0, 0
	if r, ok := g.inner.(resettable); ok {
		r.Reset()
	}
	if g.origCC != nil {
		conn.SwitchCC(g.origCC, now)
	}
	g.cfg.Metrics.Counter(MetricRestores).Inc()
	g.events = append(g.events, Event{
		AtUs: int64(now), Kind: KindRestore, Cwnd: conn.Cwnd, Trip: g.trips,
	})
}

// Tripped reports whether the connection is currently on the fallback.
func (g *GuardedController) Tripped() bool { return g.tripped }

// Trips returns how many times the guardian switched to the fallback.
func (g *GuardedController) Trips() int { return g.trips }

// Restores returns how many times the policy was re-admitted.
func (g *GuardedController) Restores() int { return g.restores }

// Clamps returns how many control decisions needed bounding.
func (g *GuardedController) Clamps() int64 { return g.clamps }

// Events returns a copy of the trip/restore log.
func (g *GuardedController) Events() []Event {
	return append([]Event(nil), g.events...)
}

// EmitEvents writes every trip/restore event to the JSONL emitter (one
// line per event, the telemetry wire format).
func (g *GuardedController) EmitEvents(j *telemetry.JSONL) error {
	for _, e := range g.events {
		if err := j.Emit(e); err != nil {
			return err
		}
	}
	return nil
}

func finiteVec(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
