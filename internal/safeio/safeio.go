// Package safeio provides crash-safe artifact persistence for every file
// the pipeline writes (pools, checkpoints, policies, traces): payloads go
// into a versioned, CRC-checksummed container that is written to a
// temporary file, fsynced, and atomically renamed into place. A reader
// therefore either sees the previous complete artifact or the new complete
// artifact — never a torn write — and loads detect truncation and
// corruption up front with actionable errors instead of surfacing gzip/gob
// internals halfway through a decode.
//
// Container layout:
//
//	[8]  magic+version  "SAGEIO01"
//	[n]  payload        (opaque bytes, typically gzipped gob)
//	[8]  payload length (little-endian uint64)
//	[8]  CRC-64/ECMA of the payload (little-endian uint64)
//
// The trailer-at-end design lets writers stream the payload without
// knowing its size in advance. Files that start with the gzip magic are
// accepted as legacy (pre-container) artifacts and passed through
// unverified, so pools and models written before this format still load.
package safeio

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"
)

const (
	magic       = "SAGEIO01"
	trailerSize = 16
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// ErrCorrupt marks an artifact whose checksum does not match its payload
// (bit rot, a partially overwritten file, or a non-artifact file).
var ErrCorrupt = errors.New("checksum mismatch (artifact is corrupt)")

// ErrTruncated marks an artifact that is shorter than its header claims —
// the signature of a crash or ENOSPC mid-write on a non-atomic writer.
var ErrTruncated = errors.New("artifact is truncated")

// Hooks let the fault-injection harness (internal/chaos) perturb the write
// path: wrapping the payload writer simulates short writes and ENOSPC,
// failing before the rename simulates a crash in the widest window of the
// protocol. Production code never sets this.
type Hooks struct {
	WrapWriter   func(io.Writer) io.Writer
	BeforeRename func(tmp, final string) error
}

// TestHooks is consulted on every WriteFile when non-nil. Tests must
// restore it to nil.
var TestHooks *Hooks

// WriteFile atomically writes the payload produced by fn to path:
// temp file in the same directory → header+payload+trailer → fsync →
// rename → directory fsync. On any error the destination is untouched and
// the temp file is removed.
func WriteFile(path string, fn func(io.Writer) error) error {
	return writeFile(path, true, fn)
}

// WriteFileRaw is WriteFile without the container: the file holds exactly
// the bytes fn wrote, under the same atomic temp→fsync→rename protocol.
// For interchange exports (CSV, JSONL) that external tools must be able
// to read as-is; ReadFile cannot verify these, so prefer WriteFile for
// anything the pipeline itself loads back.
func WriteFileRaw(path string, fn func(io.Writer) error) error {
	return writeFile(path, false, fn)
}

func writeFile(path string, container bool, fn func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("safeio: %s: %w", path, err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	var w io.Writer = f
	if TestHooks != nil && TestHooks.WrapWriter != nil {
		w = TestHooks.WrapWriter(w)
	}
	want := int64(0)
	if container {
		if _, err = io.WriteString(w, magic); err != nil {
			return fmt.Errorf("safeio: %s: %w", path, err)
		}
		want += int64(len(magic)) + trailerSize
	}
	cw := &crcWriter{w: w}
	if err = fn(cw); err != nil {
		return fmt.Errorf("safeio: %s: %w", path, err)
	}
	want += cw.n
	if container {
		var trailer [trailerSize]byte
		binary.LittleEndian.PutUint64(trailer[:8], uint64(cw.n))
		binary.LittleEndian.PutUint64(trailer[8:], cw.sum)
		if _, err = w.Write(trailer[:]); err != nil {
			return fmt.Errorf("safeio: %s: %w", path, err)
		}
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("safeio: %s: sync: %w", path, err)
	}
	// Verify every byte actually reached the file before publishing it: a
	// layer that silently swallows writes (or a filesystem that lies) must
	// not get a truncated artifact renamed over the good one.
	if fi, serr := f.Stat(); serr == nil && fi.Size() != want {
		err = fmt.Errorf("safeio: %s: wrote %d bytes but only %d reached the file — %w", path, want, fi.Size(), ErrTruncated)
		return err
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("safeio: %s: close: %w", path, err)
	}
	if TestHooks != nil && TestHooks.BeforeRename != nil {
		if err = TestHooks.BeforeRename(tmp, path); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("safeio: %s: %w", path, err)
		}
	}
	if err = os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("safeio: %s: %w", path, err)
	}
	// Persist the rename itself; without the directory fsync a power cut
	// can forget the new directory entry even though the data is on disk.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ReadFile reads path and returns its verified payload. Corruption and
// truncation are reported as wrapped ErrCorrupt / ErrTruncated with the
// path and what to do about it; legacy raw-gzip files are returned as-is.
func ReadFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("safeio: %w", err)
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("safeio: %s: file is empty — %w (the writing process likely died before its first write; delete the file or restore a backup)", path, ErrTruncated)
	}
	if len(raw) >= 2 && raw[0] == 0x1f && raw[1] == 0x8b {
		// Legacy artifact from before the container format: raw gzip,
		// no checksum to verify.
		return raw, nil
	}
	if len(raw) < len(magic)+trailerSize || string(raw[:len(magic)]) != magic {
		return nil, fmt.Errorf("safeio: %s: not a sage artifact (bad header) — %w (was the file overwritten by another tool?)", path, ErrCorrupt)
	}
	body := raw[len(magic):]
	payload := body[:len(body)-trailerSize]
	trailer := body[len(body)-trailerSize:]
	wantLen := binary.LittleEndian.Uint64(trailer[:8])
	wantSum := binary.LittleEndian.Uint64(trailer[8:])
	if uint64(len(payload)) != wantLen {
		return nil, fmt.Errorf("safeio: %s: payload is %d bytes but the header promises %d — %w (incomplete write; use the previous/rotated copy)", path, len(payload), wantLen, ErrTruncated)
	}
	if crc64.Checksum(payload, crcTable) != wantSum {
		return nil, fmt.Errorf("safeio: %s: %w (use the previous/rotated copy or re-generate the artifact)", path, ErrCorrupt)
	}
	return payload, nil
}

// WriteGobGz writes v as gzipped gob inside a checksummed container — the
// shared save path for pools, checkpoints, policies, and models.
func WriteGobGz(path string, v any) error {
	return WriteFile(path, func(w io.Writer) error {
		zw := gzip.NewWriter(w)
		if err := gob.NewEncoder(zw).Encode(v); err != nil {
			return fmt.Errorf("encode: %w", err)
		}
		return zw.Close()
	})
}

// ReadGobGz reads and verifies path, then decodes its gzipped-gob payload
// into v. Checksum failures are caught before gzip or gob ever run, so
// decode errors here mean a schema mismatch, not silent corruption.
func ReadGobGz(path string, v any) error {
	payload, err := ReadFile(path)
	if err != nil {
		return err
	}
	zr, err := gzip.NewReader(bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("safeio: %s: gzip: %w — %w", path, err, ErrCorrupt)
	}
	if err := gob.NewDecoder(zr).Decode(v); err != nil {
		return fmt.Errorf("safeio: %s: decode: %w (artifact was written by an incompatible version?)", path, err)
	}
	return zr.Close()
}

// crcWriter tees payload bytes into the running CRC and byte count.
type crcWriter struct {
	w   io.Writer
	n   int64
	sum uint64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.sum = crc64.Update(c.sum, crcTable, p[:n])
	c.n += int64(n)
	return n, err
}
