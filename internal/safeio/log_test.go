package safeio

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func replayAll(t *testing.T, path string) (*AppendLog, []string) {
	t.Helper()
	var got []string
	log, _, err := OpenAppendLog(path, func(p []byte) { got = append(got, string(p)) })
	if err != nil {
		t.Fatal(err)
	}
	return log, got
}

func TestAppendLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	log, n, err := OpenAppendLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("fresh log replayed %d records", n)
	}
	for _, rec := range []string{`{"t":"grant"}`, `{"t":"done"}`, `{"t":"epoch","step":3}`} {
		if err := log.Append([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	log.Close()

	log2, got := replayAll(t, path)
	defer log2.Close()
	if len(got) != 3 || got[2] != `{"t":"epoch","step":3}` {
		t.Fatalf("replayed %v", got)
	}
	// Appending after a replayed open keeps growing the same log.
	if err := log2.Append([]byte("four")); err != nil {
		t.Fatal(err)
	}
	log3, got3 := replayAll(t, path)
	log3.Close()
	if len(got3) != 4 || got3[3] != "four" {
		t.Fatalf("after reopen-append: %v", got3)
	}
}

// TestAppendLogTornTail: a crash mid-append leaves a record without its
// newline; open replays the intact prefix, truncates the tear, and the
// log keeps working.
func TestAppendLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	log, _, err := OpenAppendLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	log.Append([]byte("one"))
	log.Append([]byte("two"))
	log.Close()
	// Simulate the crash: half a record, no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("deadbeef th")
	f.Close()

	log2, got := replayAll(t, path)
	if len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Fatalf("torn-tail replay = %v", got)
	}
	if err := log2.Append([]byte("three")); err != nil {
		t.Fatal(err)
	}
	log2.Close()
	log3, got3 := replayAll(t, path)
	log3.Close()
	if len(got3) != 3 || got3[2] != "three" {
		t.Fatalf("post-heal replay = %v", got3)
	}
}

// TestAppendLogCorruptRecord: a bit flip inside a record fails its CRC;
// that record and everything after it are discarded.
func TestAppendLogCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	log, _, err := OpenAppendLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	log.Append([]byte("alpha"))
	log.Append([]byte("bravo"))
	log.Append([]byte("charlie"))
	log.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's payload.
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	log2, got := replayAll(t, path)
	log2.Close()
	if len(got) != 1 || got[0] != "alpha" {
		t.Fatalf("corrupt-record replay = %v", got)
	}
}

func TestAppendLogRejectsNewlines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	log, _, err := OpenAppendLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if err := log.Append([]byte("a\nb")); err == nil {
		t.Fatal("newline payload accepted")
	}
}

// ReplayFrom follows a log another handle is appending to: each call picks
// up exactly the records committed since the returned offset, and a torn
// tail pauses the reader without error until the record completes.
func TestAppendLogReplayFromFollowsWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	writer, _, err := OpenAppendLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	reader, _, err := OpenAppendLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()

	off := reader.Offset()
	if off != 0 {
		t.Fatalf("fresh log offset = %d", off)
	}
	if err := writer.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := writer.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	var got []string
	off, err = reader.ReplayFrom(off, func(p []byte) { got = append(got, string(p)) })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Fatalf("first follow replayed %v", got)
	}

	// Nothing new: same offset, no records.
	got = nil
	off2, err := reader.ReplayFrom(off, func(p []byte) { got = append(got, string(p)) })
	if err != nil || off2 != off || len(got) != 0 {
		t.Fatalf("idle follow: off %d->%d records %v err %v", off, off2, got, err)
	}

	// A torn in-flight record (no newline yet) pauses the reader...
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("deadbeef par"); err != nil {
		t.Fatal(err)
	}
	got = nil
	off3, err := reader.ReplayFrom(off, func(p []byte) { got = append(got, string(p)) })
	if err != nil || off3 != off || len(got) != 0 {
		t.Fatalf("torn follow: off %d->%d records %v err %v", off, off3, got, err)
	}
	f.Close()

	// The reader never advances past the tear, so once it is repaired (a
	// fresh open truncates it) new appends flow again from that offset.
	reader.Close()
	writer.Close()
	repaired, n, err := OpenAppendLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer repaired.Close()
	if n != 2 {
		t.Fatalf("repaired log replayed %d records, want 2", n)
	}
	if err := repaired.Append([]byte("three")); err != nil {
		t.Fatal(err)
	}
	got = nil
	if _, err := repaired.ReplayFrom(off, func(p []byte) { got = append(got, string(p)) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "three" {
		t.Fatalf("post-repair follow replayed %v", got)
	}
}

// Two handles appending to one log (two processes sharing a registry
// journal) interleave without clobbering: O_APPEND sends every record to
// the true end of file.
func TestAppendLogMultiHandleAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	a, _, err := OpenAppendLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := OpenAppendLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := a.Append([]byte("a")); err != nil {
			t.Fatal(err)
		}
		if err := b.Append([]byte("b")); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	b.Close()
	log, got := replayAll(t, path)
	log.Close()
	if len(got) != 10 {
		t.Fatalf("interleaved appends left %d records, want 10: %v", len(got), got)
	}
}

// A complete record that fails its CRC is damage, not an in-flight tail:
// ReplayFrom must surface it instead of silently stalling the follower at
// that offset forever.
func TestAppendLogReplayFromCorruptRecordErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	log, _, err := OpenAppendLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	log.Append([]byte("alpha"))
	log.Append([]byte("bravo"))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x40 // flip a byte inside the second record
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var got []string
	off, err := log.ReplayFrom(0, func(p []byte) { got = append(got, string(p)) })
	if !errors.Is(err, ErrLogCorrupt) {
		t.Fatalf("corrupt mid-log record: err = %v, want ErrLogCorrupt", err)
	}
	if len(got) != 1 || got[0] != "alpha" {
		t.Fatalf("replayed %v before the corruption, want [alpha]", got)
	}
	// The returned offset points at the corrupt record, not past it.
	if _, err := log.ReplayFrom(off, nil); !errors.Is(err, ErrLogCorrupt) {
		t.Fatalf("retry at returned offset: err = %v, want ErrLogCorrupt", err)
	}
}

// A foreign truncation that shrinks the log below a follower's offset is a
// desync, not "nothing new": ReplayFrom must report it.
func TestAppendLogReplayFromShrunkenLogErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	log, _, err := OpenAppendLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	log.Append([]byte("one"))
	log.Append([]byte("two"))
	off, err := log.ReplayFrom(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, off/2); err != nil {
		t.Fatal(err)
	}
	if _, err := log.ReplayFrom(off, nil); !errors.Is(err, ErrLogCorrupt) {
		t.Fatalf("shrunken log: err = %v, want ErrLogCorrupt", err)
	}
}

// Regression for the open-vs-append race: re-opening a log (read, verify,
// truncate) while other handles are mid-append must never delete a record
// whose Append already returned nil. The flock discipline makes the
// opener's verify-and-truncate mutually exclusive with appends; before it,
// an opener could observe a half-written tail and truncate committed
// fsynced bytes. Seeded with a crash-left torn tail so every reopen
// genuinely exercises the truncation path.
func TestAppendLogOpenConcurrentWithAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	seed, _, err := OpenAppendLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	seed.Append([]byte("seed"))
	seed.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("deadbeef torn") // crash-left tail, no newline
	f.Close()

	const writers, perWriter = 4, 50
	var wgWriters, wgOpener sync.WaitGroup
	stop := make(chan struct{})
	wgOpener.Add(1)
	go func() { // churn openers: each open repairs/verifies under the lock
		defer wgOpener.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			l, _, err := OpenAppendLog(path, nil)
			if err != nil {
				t.Error(err)
				return
			}
			l.Close()
		}
	}()
	for w := 0; w < writers; w++ {
		wgWriters.Add(1)
		go func(w int) {
			defer wgWriters.Done()
			l, _, err := OpenAppendLog(path, nil)
			if err != nil {
				t.Error(err)
				return
			}
			defer l.Close()
			for i := 0; i < perWriter; i++ {
				if err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wgWriters.Wait()
	close(stop)
	wgOpener.Wait()

	final, got := replayAll(t, path)
	final.Close()
	present := make(map[string]bool, len(got))
	for _, p := range got {
		present[p] = true
	}
	if !present["seed"] {
		t.Fatal("seed record lost")
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			if rec := fmt.Sprintf("w%d-%d", w, i); !present[rec] {
				t.Fatalf("committed record %s was truncated away (%d records survive)", rec, len(got))
			}
		}
	}
}

// A read-only follower replays intact records without repairing the
// writer's torn tail (truncation is the writer's exclusive job) and
// refuses appends outright.
func TestAppendLogReaderFollowsWithoutRepair(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	log, _, err := OpenAppendLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	log.Close()
	// Simulate a crash mid-append: half a record with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("deadbeef ha"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	r, err := OpenAppendLogReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var got []string
	if _, err := r.ReplayFrom(0, func(p []byte) { got = append(got, string(p)) }); err != nil {
		t.Fatalf("follower replay over torn tail: %v", err)
	}
	if len(got) != 1 || got[0] != "one" {
		t.Fatalf("follower replayed %v, want the one intact record", got)
	}
	if err := r.Append([]byte("nope")); err == nil {
		t.Fatal("read-only log accepted an append")
	}
	st, err := r.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != before.Size() {
		t.Fatalf("follower changed the file: %d -> %d bytes", before.Size(), st.Size())
	}

	// The writer's reopen still owns the repair.
	w, n, err := OpenAppendLog(path, nil)
	if err != nil || n != 1 {
		t.Fatalf("writer reopen: n=%d err=%v", n, err)
	}
	if err := w.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	r2, err := OpenAppendLogReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	got = nil
	if _, err := r2.ReplayFrom(0, func(p []byte) { got = append(got, string(p)) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1] != "two" {
		t.Fatalf("after repair, follower replayed %v", got)
	}
}
