package safeio

import (
	"os"
	"path/filepath"
	"testing"
)

func replayAll(t *testing.T, path string) (*AppendLog, []string) {
	t.Helper()
	var got []string
	log, _, err := OpenAppendLog(path, func(p []byte) { got = append(got, string(p)) })
	if err != nil {
		t.Fatal(err)
	}
	return log, got
}

func TestAppendLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	log, n, err := OpenAppendLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("fresh log replayed %d records", n)
	}
	for _, rec := range []string{`{"t":"grant"}`, `{"t":"done"}`, `{"t":"epoch","step":3}`} {
		if err := log.Append([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	log.Close()

	log2, got := replayAll(t, path)
	defer log2.Close()
	if len(got) != 3 || got[2] != `{"t":"epoch","step":3}` {
		t.Fatalf("replayed %v", got)
	}
	// Appending after a replayed open keeps growing the same log.
	if err := log2.Append([]byte("four")); err != nil {
		t.Fatal(err)
	}
	log3, got3 := replayAll(t, path)
	log3.Close()
	if len(got3) != 4 || got3[3] != "four" {
		t.Fatalf("after reopen-append: %v", got3)
	}
}

// TestAppendLogTornTail: a crash mid-append leaves a record without its
// newline; open replays the intact prefix, truncates the tear, and the
// log keeps working.
func TestAppendLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	log, _, err := OpenAppendLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	log.Append([]byte("one"))
	log.Append([]byte("two"))
	log.Close()
	// Simulate the crash: half a record, no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("deadbeef th")
	f.Close()

	log2, got := replayAll(t, path)
	if len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Fatalf("torn-tail replay = %v", got)
	}
	if err := log2.Append([]byte("three")); err != nil {
		t.Fatal(err)
	}
	log2.Close()
	log3, got3 := replayAll(t, path)
	log3.Close()
	if len(got3) != 3 || got3[2] != "three" {
		t.Fatalf("post-heal replay = %v", got3)
	}
}

// TestAppendLogCorruptRecord: a bit flip inside a record fails its CRC;
// that record and everything after it are discarded.
func TestAppendLogCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	log, _, err := OpenAppendLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	log.Append([]byte("alpha"))
	log.Append([]byte("bravo"))
	log.Append([]byte("charlie"))
	log.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's payload.
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	log2, got := replayAll(t, path)
	log2.Close()
	if len(got) != 1 || got[0] != "alpha" {
		t.Fatalf("corrupt-record replay = %v", got)
	}
}

func TestAppendLogRejectsNewlines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	log, _, err := OpenAppendLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if err := log.Append([]byte("a\nb")); err == nil {
		t.Fatal("newline payload accepted")
	}
}
