//go:build !unix

package safeio

import "os"

// Non-unix platforms get no cross-process advisory locking; multi-process
// log sharing is only supported where flock exists.
func flockExclusive(*os.File) error { return nil }
func flockShared(*os.File) error    { return nil }
func flockUnlock(*os.File) error    { return nil }
