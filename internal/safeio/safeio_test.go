package safeio

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path string, payload []byte) {
	t.Helper()
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.bin")
	payload := []byte("the pool of policies")
	write(t, path, payload)
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q", got)
	}
	// No temp files left behind.
	ents, _ := os.ReadDir(filepath.Dir(path))
	if len(ents) != 1 {
		t.Fatalf("leftover files: %v", ents)
	}
}

func TestEmptyPayloadRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.bin")
	write(t, path, nil)
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("payload = %q, want empty", got)
	}
}

func TestFlippedByteIsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.bin")
	write(t, path, []byte("some payload worth protecting"))
	raw, _ := os.ReadFile(path)
	raw[len(magic)+3] ^= 0x40
	os.WriteFile(path, raw, 0o644)
	_, err := ReadFile(path)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("error does not name the file: %v", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.bin")
	write(t, path, bytes.Repeat([]byte("x"), 4096))
	raw, _ := os.ReadFile(path)
	os.WriteFile(path, raw[:len(raw)/2], 0o644)
	if _, err := ReadFile(path); !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want truncation/corruption", err)
	}
}

func TestEmptyFileIsTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.bin")
	os.WriteFile(path, nil, 0o644)
	if _, err := ReadFile(path); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestForeignFileIsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.bin")
	os.WriteFile(path, []byte("#!/bin/sh\necho not an artifact\n"), 0o644)
	if _, err := ReadFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestLegacyGzipPassthrough(t *testing.T) {
	// Artifacts written before the container format are raw gzip; they must
	// still load, unverified.
	path := filepath.Join(t.TempDir(), "legacy.gob.gz")
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := gob.NewEncoder(zw).Encode(map[string]int{"steps": 7}); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	os.WriteFile(path, buf.Bytes(), 0o644)

	var got map[string]int
	if err := ReadGobGz(path, &got); err != nil {
		t.Fatal(err)
	}
	if got["steps"] != 7 {
		t.Fatalf("legacy decode = %v", got)
	}
}

func TestGobGzRoundTrip(t *testing.T) {
	type blob struct {
		Name  string
		Vals  []float64
		Steps int
	}
	path := filepath.Join(t.TempDir(), "b.gob.gz")
	in := blob{Name: "ckpt", Vals: []float64{1, 2.5, -3}, Steps: 42}
	if err := WriteGobGz(path, &in); err != nil {
		t.Fatal(err)
	}
	var out blob
	if err := ReadGobGz(path, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.Steps != in.Steps || len(out.Vals) != 3 {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestWriteErrorLeavesOldFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.bin")
	write(t, path, []byte("generation one"))
	err := WriteFile(path, func(w io.Writer) error {
		w.Write([]byte("half of generation tw"))
		return errors.New("boom")
	})
	if err == nil {
		t.Fatal("write error swallowed")
	}
	got, rerr := ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != "generation one" {
		t.Fatalf("old artifact clobbered: %q", got)
	}
	ents, _ := os.ReadDir(filepath.Dir(path))
	if len(ents) != 1 {
		t.Fatalf("temp file leaked: %v", ents)
	}
}

func TestMissingFile(t *testing.T) {
	_, err := ReadFile(filepath.Join(t.TempDir(), "nope"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestWriteFileRawIsPlain(t *testing.T) {
	// Raw mode: the file holds exactly the payload (interchange exports
	// must stay readable by external tools), still written atomically.
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := WriteFileRaw(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "{\"t\":1}\n{\"t\":2}\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "{\"t\":1}\n{\"t\":2}\n" {
		t.Fatalf("raw export altered: %q", raw)
	}
	// And the atomic guarantee still holds.
	werr := WriteFileRaw(path, func(w io.Writer) error {
		io.WriteString(w, "{\"t\":3}")
		return errors.New("boom")
	})
	if werr == nil {
		t.Fatal("error swallowed")
	}
	got, _ := os.ReadFile(path)
	if string(got) != string(raw) {
		t.Fatalf("old export clobbered: %q", got)
	}
}
