//go:build unix

package safeio

import (
	"os"
	"syscall"
)

// flockExclusive blocks until f holds the exclusive advisory lock: no
// other process holds any flock on the file, so it is quiescent — safe to
// read its true tail and truncate a torn one.
func flockExclusive(f *os.File) error { return syscall.Flock(int(f.Fd()), syscall.LOCK_EX) }

// flockShared blocks until f holds a shared advisory lock: appenders and
// followers hold it concurrently with each other but never overlap an
// exclusive holder's open/truncate window.
func flockShared(f *os.File) error { return syscall.Flock(int(f.Fd()), syscall.LOCK_SH) }

// flockUnlock releases f's advisory lock.
func flockUnlock(f *os.File) error { return syscall.Flock(int(f.Fd()), syscall.LOCK_UN) }
