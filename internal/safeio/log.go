package safeio

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
)

// AppendLog is the write-ahead-log primitive behind the control plane's
// crash recovery: an append-only text file of checksummed records, one
// per line as "<crc32-hex> <payload>\n", fsynced per append. It
// complements this package's atomic whole-file writers for state that
// grows record by record and must survive a crash mid-append: opening a
// log replays every intact record and truncates the torn tail a crash
// may have left, so the file is always a clean prefix of what was
// acknowledged.
//
// Payloads must not contain newlines (JSON objects qualify).
//
// The file is opened O_APPEND, so several processes may append to one log
// concurrently (each record is a single write syscall); a reader following
// the log with ReplayFrom sees every writer's records in commit order.
// Cross-process safety rests on flock: every Append and ReplayFrom runs
// under a shared lock, while OpenAppendLog's read-verify-truncate runs
// under the exclusive lock — so an opener only ever truncates a tail the
// file provably acquired from a crash, never bytes a live writer just
// committed, and a follower never observes a half-written record.
type AppendLog struct {
	f        *os.File
	openOff  int64 // end of the last intact record at open time
	writeErr error // sticky: a failed write may have torn the log mid-file
	readOnly bool  // opened by OpenAppendLogReader: Append refused
}

// ErrLogCorrupt marks a complete log record that failed its checksum: the
// log is damaged (bit rot, foreign truncation, a torn middle), as opposed
// to the benign half-written tail a live writer leaves mid-append.
var ErrLogCorrupt = errors.New("log record failed its checksum")

// OpenAppendLog opens (creating if absent) the log at path, streams
// every intact record's payload to replay (which may be nil), truncates
// anything after the last intact record, and returns the log positioned
// for appending along with the number of records replayed.
//
// The verify-and-truncate runs under an exclusive flock, so it blocks
// until no other process is mid-append and no other opener is mid-repair:
// a torn tail seen under the lock is genuinely crash-left, and truncating
// it can never delete a record another process's Append acknowledged.
func OpenAppendLog(path string, replay func(payload []byte)) (*AppendLog, int, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, err
	}
	if err := flockExclusive(f); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("safeio: lock %s for open: %w", path, err)
	}
	defer flockUnlock(f)
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	valid, replayed := 0, 0
	rest := raw
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // torn tail: record written without its newline
		}
		line := rest[:nl]
		payload, ok := checkRecord(line)
		if !ok {
			break // corrupt record; everything after it is suspect
		}
		if replay != nil {
			replay(payload)
		}
		replayed++
		valid += nl + 1
		rest = rest[nl+1:]
	}
	if valid < len(raw) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("safeio: truncate torn log tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, 0, err
	}
	return &AppendLog{f: f, openOff: int64(valid)}, replayed, nil
}

// Offset returns the byte offset just past the last intact record replayed
// at open time — the position ReplayFrom continues from.
func (l *AppendLog) Offset() int64 { return l.openOff }

// OpenAppendLogReader opens an existing log read-only, for a follower
// tailing a file another process is actively appending to. Unlike
// OpenAppendLog it performs no verify-and-truncate repair — a reader must
// never rewrite the writer's live tail — so it takes no exclusive lock and
// cannot block behind the writer. Use ReplayFrom to consume records: its
// shared flock plus the benign-torn-tail rule make following safe against
// concurrent appends (a half-written final record reads as "no new data
// yet"). Append on the returned handle always fails.
func OpenAppendLogReader(path string) (*AppendLog, error) {
	f, err := os.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	return &AppendLog{f: f, readOnly: true}, nil
}

// ReplayFrom streams every intact record that starts at or after byte
// offset off to replay and returns the offset just past the last one. A
// half-written record at end of file is an in-flight append: ReplayFrom
// stops there without error, and calling it again later with the returned
// offset picks up exactly the new records — so a live reader can follow a
// log other processes are appending to. A *complete* record that fails
// its checksum, or an offset beyond end of file, is not in-flight: the
// log (or this reader's offset) is damaged, and ReplayFrom reports a
// wrapped ErrLogCorrupt so the caller can surface it and re-open rather
// than silently stall forever.
func (l *AppendLog) ReplayFrom(off int64, replay func(payload []byte)) (int64, error) {
	if err := flockShared(l.f); err != nil {
		return off, fmt.Errorf("safeio: lock log for replay: %w", err)
	}
	defer flockUnlock(l.f)
	fi, err := l.f.Stat()
	if err != nil {
		return off, err
	}
	if fi.Size() < off {
		return off, fmt.Errorf("safeio: log shrank below replay offset %d (size %d) — foreign truncation: %w", off, fi.Size(), ErrLogCorrupt)
	}
	if fi.Size() == off {
		return off, nil
	}
	buf := make([]byte, fi.Size()-off)
	if _, err := l.f.ReadAt(buf, off); err != nil && err != io.EOF {
		return off, err
	}
	rest := buf
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // in-flight tail: a writer crashed (or died) mid-append
		}
		payload, ok := checkRecord(rest[:nl])
		if !ok {
			return off, fmt.Errorf("safeio: log record at offset %d: %w", off, ErrLogCorrupt)
		}
		if replay != nil {
			replay(payload)
		}
		off += int64(nl + 1)
		rest = rest[nl+1:]
	}
	return off, nil
}

// checkRecord splits "<crc32-hex> <payload>" and verifies the checksum.
func checkRecord(line []byte) ([]byte, bool) {
	sp := bytes.IndexByte(line, ' ')
	if sp != 8 {
		return nil, false
	}
	want, err := strconv.ParseUint(string(line[:sp]), 16, 32)
	if err != nil {
		return nil, false
	}
	payload := line[sp+1:]
	if crc32.ChecksumIEEE(payload) != uint32(want) {
		return nil, false
	}
	return payload, true
}

// Append writes one record and syncs it to disk before returning: once
// Append returns nil the record survives a crash. It holds the shared
// flock across the write, so an opener's truncate can never interleave
// with (and delete) a record mid-commit. After a failed write the handle
// is poisoned — the file may hold a torn middle that would corrupt every
// later record, so the caller must re-open to repair before appending.
func (l *AppendLog) Append(payload []byte) error {
	if l.readOnly {
		return fmt.Errorf("safeio: append to a log opened read-only")
	}
	if l.writeErr != nil {
		return fmt.Errorf("safeio: log handle poisoned by earlier write failure (re-open to repair): %w", l.writeErr)
	}
	if bytes.IndexByte(payload, '\n') >= 0 {
		return fmt.Errorf("safeio: log payload contains a newline")
	}
	rec := make([]byte, 0, len(payload)+10)
	rec = append(rec, fmt.Sprintf("%08x ", crc32.ChecksumIEEE(payload))...)
	rec = append(rec, payload...)
	rec = append(rec, '\n')
	if err := flockShared(l.f); err != nil {
		return fmt.Errorf("safeio: lock log for append: %w", err)
	}
	defer flockUnlock(l.f)
	if _, err := l.f.Write(rec); err != nil {
		l.writeErr = err
		return err
	}
	return l.f.Sync()
}

// Stat reports the underlying file's metadata (a follower uses the size
// to distinguish a drained segment from one with an unreadable tail).
func (l *AppendLog) Stat() (os.FileInfo, error) { return l.f.Stat() }

// Close closes the underlying file.
func (l *AppendLog) Close() error { return l.f.Close() }
