// Package exp implements every experiment of the paper's evaluation: one
// function per table/figure, each returning printable result tables. The
// root-level benchmarks and cmd/sage-bench both drive this package, so a
// figure is regenerated identically from `go test -bench` and from the CLI.
//
// Experiments share expensive artifacts (the collected pool, the trained
// Sage model, the baseline models) through Artifacts, which memoizes them
// per Sizing.
package exp

import (
	"fmt"
	"io"
	"strings"

	"sage/internal/netem"
	"sage/internal/nn"
	"sage/internal/rl"
	"sage/internal/sim"
)

// Sizing scales every experiment. Quick is CPU/bench-sized; Paper raises
// grids, durations and training toward the paper's own scale (the shapes
// are the claim, not the absolute numbers — see EXPERIMENTS.md).
type Sizing struct {
	Name string

	Level    netem.GridLevel
	SetIDur  sim.Time
	SetIIDur sim.Time

	TrainSteps   int // CRR gradient steps for Sage
	BCSteps      int
	OnlineRounds int // env interactions for OnlineRL/Orca/DeepCC
	OnlineSteps  int // gradient steps per interaction
	Episodes     int // Aurora/Genet on-policy episodes
	DaggerIters  int // Indigo

	Policy nn.PolicyConfig
	Critic nn.CriticConfig

	PathCount int // paths per Fig. 8 regime
	PathDur   sim.Time
	Repeats   int

	Parallel int
	Seed     int64
}

// Quick returns the bench-sized preset: tiny grids, seconds-long emulations,
// and CPU-sized networks. A full suite run finishes in minutes.
func Quick() Sizing {
	return Sizing{
		Name:         "quick",
		Level:        netem.GridTiny,
		SetIDur:      4 * sim.Second,
		SetIIDur:     12 * sim.Second,
		TrainSteps:   3000,
		BCSteps:      800,
		OnlineRounds: 6,
		OnlineSteps:  60,
		Episodes:     8,
		DaggerIters:  2,
		Policy:       nn.PolicyConfig{Enc: 32, Hidden: 16, ResBlocks: 2, K: 3},
		Critic:       nn.CriticConfig{Hidden: 48, Atoms: 21},
		PathCount:    3,
		PathDur:      8 * sim.Second,
		Repeats:      1,
		Seed:         1,
	}
}

// Paper returns a heavier preset approaching the paper's setup (full grid,
// 10/30 s runs, larger networks). Expect hours of CPU time.
func Paper() Sizing {
	return Sizing{
		Name:         "paper",
		Level:        netem.GridFull,
		SetIDur:      10 * sim.Second,
		SetIIDur:     60 * sim.Second,
		TrainSteps:   20000,
		BCSteps:      10000,
		OnlineRounds: 60,
		OnlineSteps:  200,
		Episodes:     60,
		DaggerIters:  4,
		Policy:       nn.PolicyConfig{Enc: 128, Hidden: 128, ResBlocks: 2, K: 5},
		Critic:       nn.CriticConfig{Hidden: 128, Atoms: 51},
		PathCount:    13,
		PathDur:      15 * sim.Second,
		Repeats:      3,
		Seed:         1,
	}
}

// crr returns the CRR config for this sizing. Paper sizing trains
// data-parallel.
func (s Sizing) crr() rl.CRRConfig {
	workers := 0
	if s.Name == "paper" {
		workers = 8
	}
	return rl.CRRConfig{
		Policy:  s.Policy,
		Critic:  s.Critic,
		Steps:   s.TrainSteps,
		Workers: workers,
		Seed:    s.Seed,
	}
}

// SetI returns the sizing's single-flow scenarios.
func (s Sizing) SetI() []netem.Scenario {
	return netem.SetI(netem.SetIOptions{Level: s.Level, Duration: s.SetIDur, Seed: s.Seed})
}

// SetII returns the sizing's multi-flow scenarios.
func (s Sizing) SetII() []netem.Scenario {
	return netem.SetII(netem.SetIIOptions{Level: s.Level, Duration: s.SetIIDur, Seed: s.Seed})
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i < len(widths) {
				sb.WriteString(fmt.Sprintf("%-*s  ", widths[i], c))
			} else {
				sb.WriteString(c + "  ")
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// pct formats a rate as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// mbps formats bits/second as Mb/s.
func mbps(v float64) string { return fmt.Sprintf("%.2f", v/1e6) }

// ms formats a sim.Time as milliseconds.
func msStr(t sim.Time) string { return fmt.Sprintf("%.1f", t.Millis()) }
