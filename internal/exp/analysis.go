package exp

import (
	"context"
	"fmt"
	"math/rand"

	"sage/internal/cc"

	"sage/internal/collector"
	"sage/internal/core"
	"sage/internal/eval"
	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/rollout"
	"sage/internal/sim"
)

// Fig05 tabulates the TCP-friendliness reward R2 = exp(−8(x−1)²) across
// x = r/fr, the curve sketched in Figure 5.
func Fig05() *Table {
	t := &Table{Title: "Fig. 5 — TCP-friendliness reward R2(x), x = r/fr",
		Header: []string{"x", "R2"}}
	for x := 0.0; x <= 2.001; x += 0.25 {
		t.AddRow(fmt.Sprintf("%.2f", x), fmt.Sprintf("%.4f", gr.R2(x*10e6, 10e6)))
	}
	return t
}

// fig11Scenario is the paper's distributional-shift environment: a step
// from 24 to 96 Mb/s.
func fig11Scenario(s Sizing) netem.Scenario {
	mrtt := 40 * sim.Millisecond
	return netem.Scenario{
		Name:       "step-24to96-fig11",
		Rate:       netem.StepRate(netem.Mbps(24), netem.Mbps(96), s.SetIDur/2),
		MinRTT:     mrtt,
		QueueBytes: 2 * netem.BDPBytes(netem.Mbps(96), mrtt),
		Duration:   s.SetIDur,
		Seed:       424,
	}
}

// Fig11 reproduces Figure 11: roll Sage, Vegas and BC in a step environment
// from the pool, and report the CDF of each trajectory's minimum pairwise
// cosine distance to the pool transitions. Vegas (a pool scheme) should sit
// near zero; Sage and BC observe genuinely shifted trajectories.
func Fig11(a *Artifacts) *Table {
	sc := fig11Scenario(a.S)
	pool := a.Pool()

	// Pool transitions from comparable single-flow environments.
	var poolVecs [][]float64
	for _, tr := range pool.Trajs {
		if tr.MultiFlow {
			continue
		}
		poolVecs = append(poolVecs, eval.TransitionVectors(tr.Steps)...)
	}
	stride := 1
	if len(poolVecs) > 4000 {
		stride = len(poolVecs) / 4000
	}

	rows := []struct {
		name string
		ent  eval.Entrant
	}{
		{"vegas", a.Entrant("vegas")},
		{"sage", a.Entrant("sage")},
		{"bc", a.Entrant("bc")},
	}
	t := &Table{Title: "Fig. 11 — Distance CDF (distributional shift)",
		Header: []string{"scheme", "p50", "p65", "p90", "thr_mbps", "rtt_ms"}}
	for _, r := range rows {
		res := r.ent.Run(sc, rollout.Options{CollectSteps: true})
		qs := eval.TransitionVectors(res.Steps)
		ds := eval.MinDistances(qs, poolVecs, stride)
		t.AddRow(r.name,
			fmt.Sprintf("%.3f", eval.Percentile(ds, 50)),
			fmt.Sprintf("%.3f", eval.Percentile(ds, 65)),
			fmt.Sprintf("%.3f", eval.Percentile(ds, 90)),
			mbps(res.ThroughputBps),
			msStr(res.AvgRTT),
		)
	}
	return t
}

// Fig13 reproduces Figure 13: the Similarity Index of Sage's trajectories
// to each pool scheme's trajectories over randomly chosen environments —
// the scheme Sage most resembles should change across environments.
func Fig13(a *Artifacts, envs int) *Table {
	if envs == 0 {
		envs = 8
	}
	pool := a.Pool()
	scens := append(a.S.SetI(), a.S.SetII()...)
	rng := rand.New(rand.NewSource(a.S.Seed + 313))
	if envs > len(scens) {
		envs = len(scens)
	}
	perm := rng.Perm(len(scens))[:envs]

	// Index pool trajectories by (env, scheme).
	byEnvScheme := map[string]map[string][][]float64{}
	for _, tr := range pool.Trajs {
		m := byEnvScheme[tr.Env]
		if m == nil {
			m = map[string][][]float64{}
			byEnvScheme[tr.Env] = m
		}
		m[tr.Scheme] = eval.TransitionVectors(tr.Steps)
	}

	schemes := pool.Schemes()
	header := append([]string{"env"}, schemes...)
	header = append(header, "most_similar")
	t := &Table{Title: "Fig. 13 — Sage's Similarity Index to pool schemes", Header: header}
	sage := a.Entrant("sage")
	for _, idx := range perm {
		sc := scens[idx]
		res := sage.Run(sc, rollout.Options{CollectSteps: true})
		qs := eval.TransitionVectors(res.Steps)
		row := []string{sc.Name}
		best, bestV := "", -1.0
		for _, scheme := range schemes {
			refs := byEnvScheme[sc.Name][scheme]
			v := eval.MeanSimilarity(qs, refs, 4)
			row = append(row, fmt.Sprintf("%.3f", v))
			if v > bestV {
				bestV, best = v, scheme
			}
		}
		row = append(row, best)
		t.AddRow(row...)
	}
	return t
}

// GranularityModels trains (memoized) the Fig. 14 variants: pools rebuilt
// with uniform observation windows Small=10, Medium=200, Large=1000, plus
// the default three-timescale Sage.
func (a *Artifacts) GranularityModels() map[string]*core.Model {
	out := map[string]*core.Model{"sage": a.Sage()}
	for _, v := range []struct {
		name   string
		window int
	}{{"sage-s", 10}, {"sage-m", 200}, {"sage-l", 1000}} {
		v := v
		out[v.name] = a.memo(v.name, func() *core.Model {
			grCfg := gr.Config{}.WithUniformWindow(v.window)
			scens := append(a.S.SetI(), a.S.SetII()...)
			pool := mustCollect(collector.Collect(context.Background(), cc.PoolNames(), scens,
				collector.Options{GR: grCfg, Parallel: a.S.Parallel}))
			return core.Train(pool, core.Config{GR: grCfg, CRR: a.S.crr()}, nil)
		})
	}
	return out
}

// Fig16 reproduces Figure 16: embed the last-hidden-layer activations of
// Sage-s/m/l over Set II environments with t-SNE, and score how cleanly the
// environments separate (the paper's claim: only the large-window model
// distinguishes multi-flow environments).
func Fig16(a *Artifacts, envs int) *Table {
	if envs == 0 {
		envs = 7
	}
	models := a.GranularityModels()
	setII := a.S.SetII()
	if envs > len(setII) {
		envs = len(setII)
	}
	t := &Table{Title: "Fig. 16 — t-SNE cluster separation of last hidden layer (Set II envs)",
		Header: []string{"model", "cluster_separation", "points"}}
	for _, name := range []string{"sage-s", "sage-m", "sage-l"} {
		model := models[name]
		var pts [][]float64
		var labels []int
		for e := 0; e < envs; e++ {
			sc := setII[e]
			agent := model.NewAgent(int64(e))
			res := eval.ControllerEntrant(name, func() rollout.Controller { return agent }).
				Run(sc, rollout.Options{GR: model.GR, CollectSteps: true})
			// Subsample embeddings along the trajectory.
			emb := model.NewAgent(int64(e))
			stride := len(res.Steps) / 12
			if stride < 1 {
				stride = 1
			}
			for i := 0; i < len(res.Steps); i += stride {
				pts = append(pts, emb.LastHiddenEmbedding(res.Steps[i].State))
				labels = append(labels, e)
			}
		}
		embedding := eval.TSNE(pts, eval.TSNEOptions{Perplexity: 8, Iterations: 250, Seed: a.S.Seed})
		sep := eval.ClusterSeparation(embedding, labels)
		t.AddRow(name, fmt.Sprintf("%.2f", sep), itoa(len(pts)))
	}
	return t
}
