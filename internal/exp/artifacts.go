package exp

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"sage/internal/cc"
	"sage/internal/collector"
	"sage/internal/core"
	"sage/internal/eval"
	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/nn"
	"sage/internal/rl"
	"sage/internal/rollout"
)

// Artifacts memoizes the expensive shared pieces of the evaluation: the
// pool of policies, the trained Sage model, and every learning baseline.
// All getters are safe for concurrent use and build lazily.
type Artifacts struct {
	S Sizing

	mu     sync.Mutex
	pool   *collector.Pool
	sage   *core.Model
	models map[string]*core.Model
	onceBy map[string]*sync.Once
}

// NewArtifacts returns an empty cache for the sizing.
func NewArtifacts(s Sizing) *Artifacts {
	return &Artifacts{S: s, models: map[string]*core.Model{}, onceBy: map[string]*sync.Once{}}
}

func (a *Artifacts) memo(key string, build func() *core.Model) *core.Model {
	a.mu.Lock()
	once, ok := a.onceBy[key]
	if !ok {
		once = &sync.Once{}
		a.onceBy[key] = once
	}
	a.mu.Unlock()
	once.Do(func() {
		m := build()
		a.mu.Lock()
		a.models[key] = m
		a.mu.Unlock()
	})
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.models[key]
}

// Pool collects (once) the pool of policies: the 13 kernel schemes over
// Set I and Set II.
func (a *Artifacts) Pool() *collector.Pool {
	a.mu.Lock()
	p := a.pool
	a.mu.Unlock()
	if p != nil {
		return p
	}
	scens := append(a.S.SetI(), a.S.SetII()...)
	p = mustCollect(collector.Collect(context.Background(), cc.PoolNames(), scens, collector.Options{Parallel: a.S.Parallel}))
	a.mu.Lock()
	if a.pool == nil {
		a.pool = p
	}
	p = a.pool
	a.mu.Unlock()
	return p
}

// Sage trains (once) the headline model with CRR on the full pool.
func (a *Artifacts) Sage() *core.Model {
	return a.memo("sage", func() *core.Model {
		return core.Train(a.Pool(), core.Config{CRR: a.S.crr()}, nil)
	})
}

// TrainOnPool trains a CRR model on an alternative pool (ablation and
// diversity studies), memoized under key.
func (a *Artifacts) TrainOnPool(key string, pool *collector.Pool, cfg core.Config) *core.Model {
	return a.memo(key, func() *core.Model {
		if cfg.CRR.Steps == 0 {
			cfg.CRR = a.S.crr()
		}
		return core.Train(pool, cfg, nil)
	})
}

// baselineNames lists every learning baseline Baseline can build.
var baselineNames = []string{"bc", "bc-top", "bc-top3", "bcv2", "onlinerl",
	"aurora", "genet", "orca", "orcav2", "deepcc", "indigo", "indigov2"}

// mustCollect unwraps a collector.Collect call whose inputs are
// compile-time constants (PoolNames over a background context): an error
// there is a programming bug, not a runtime condition.
func mustCollect(p *collector.Pool, err error) *collector.Pool {
	if err != nil {
		panic(err)
	}
	return p
}

// mustPol unwraps a baseline trainer result. The trainers only error on
// divergence (non-finite loss or weights); inside the experiment suite
// that is unrecoverable and should fail the run loudly rather than let a
// NaN policy skew every downstream table.
func mustPol(p *nn.Policy, err error) *nn.Policy {
	if err != nil {
		panic(err)
	}
	return p
}

// Baseline builds (once) the named learning baseline of the ML league.
// Unknown names return an error listing the known baselines instead of
// panicking mid-suite.
func (a *Artifacts) Baseline(name string) (*core.Model, error) {
	known := false
	for _, n := range baselineNames {
		if n == name {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("exp: unknown baseline %q (known: %s)", name, strings.Join(baselineNames, ", "))
	}
	return a.baseline(name), nil
}

// mustBaseline is Baseline for the compile-time-constant names Entrant
// dispatches on; the error path is unreachable there.
func (a *Artifacts) mustBaseline(name string) *core.Model {
	m, err := a.Baseline(name)
	if err != nil {
		panic(err)
	}
	return m
}

func (a *Artifacts) baseline(name string) *core.Model {
	s := a.S
	bcCfg := func() rl.BCConfig {
		return rl.BCConfig{Policy: s.Policy, Steps: s.BCSteps, Seed: s.Seed}
	}
	onlineCfg := func(underlying string, scens []netem.Scenario) rl.OnlineRLConfig {
		return rl.OnlineRLConfig{
			CRR:        s.crr(),
			Scenarios:  scens,
			Rounds:     s.OnlineRounds,
			StepsPer:   s.OnlineSteps,
			Underlying: underlying,
			Seed:       s.Seed,
		}
	}
	return a.memo(name, func() *core.Model {
		switch name {
		case "bc":
			ds := rl.BuildDataset(a.Pool(), nil)
			return core.WrapPolicy(mustPol(rl.TrainBC(ds, bcCfg(), nil)), nil, gr.Config{})
		case "bc-top":
			pool := a.Pool()
			sub := pool.FilterSchemes(pool.TopSchemes(1)...)
			ds := rl.BuildDataset(sub, nil)
			return core.WrapPolicy(mustPol(rl.TrainBC(ds, bcCfg(), nil)), nil, gr.Config{})
		case "bc-top3":
			pool := a.Pool()
			sub := pool.FilterSchemes(pool.TopSchemes(3)...)
			ds := rl.BuildDataset(sub, nil)
			return core.WrapPolicy(mustPol(rl.TrainBC(ds, bcCfg(), nil)), nil, gr.Config{})
		case "bcv2":
			ds := rl.BuildDataset(a.Pool().WinnersPerEnv(), nil)
			return core.WrapPolicy(mustPol(rl.TrainBC(ds, bcCfg(), nil)), nil, gr.Config{})
		case "onlinerl":
			scens := append(s.SetI(), s.SetII()...)
			return core.WrapPolicy(mustPol(rl.TrainOnlineRL(onlineCfg("pure", scens))), nil, gr.Config{})
		case "orca":
			// Orca: hybrid over Cubic, original single-flow-reward training.
			return core.WrapPolicy(mustPol(rl.TrainOnlineRL(onlineCfg("cubic", s.SetI()))), nil, gr.Config{})
		case "orcav2":
			// Orcav2: retrained with both rewards over Set I and Set II.
			scens := append(s.SetI(), s.SetII()...)
			return core.WrapPolicy(mustPol(rl.TrainOnlineRL(onlineCfg("cubic", scens))), nil, gr.Config{})
		case "deepcc":
			// DeepCC: hybrid plugin trained on variable-link scenarios only.
			var steps []netem.Scenario
			for _, sc := range s.SetI() {
				if len(sc.Name) >= 4 && sc.Name[:4] == "step" {
					steps = append(steps, sc)
				}
			}
			if len(steps) == 0 {
				steps = s.SetI()
			}
			return core.WrapPolicy(mustPol(rl.TrainOnlineRL(onlineCfg("cubic", steps))), nil, gr.Config{})
		case "aurora":
			pol := mustPol(rl.TrainAurora(rl.AuroraConfig{
				Policy: s.Policy, Scenarios: s.SetI(), Episodes: s.Episodes, Seed: s.Seed,
			}))
			return core.WrapPolicy(pol, nil, gr.Config{})
		case "genet":
			scens := append(s.SetI(), s.SetII()...)
			pol := mustPol(rl.TrainAurora(rl.AuroraConfig{
				Policy: s.Policy, Scenarios: scens, Episodes: s.Episodes,
				Curriculum: true, Seed: s.Seed,
			}))
			return core.WrapPolicy(pol, nil, gr.Config{})
		case "indigo":
			pol := mustPol(rl.TrainIndigo(rl.IndigoConfig{
				Policy: s.Policy, Scenarios: capScens(s.SetI(), 12),
				DaggerIters: s.DaggerIters, Seed: s.Seed,
			}))
			return core.WrapPolicy(pol, nil, gr.Config{})
		case "indigov2":
			scens := append(capScens(s.SetI(), 8), capScens(s.SetII(), 8)...)
			pol := mustPol(rl.TrainIndigo(rl.IndigoConfig{
				Policy: s.Policy, Scenarios: scens,
				DaggerIters: s.DaggerIters, Seed: s.Seed,
			}))
			return core.WrapPolicy(pol, nil, gr.Config{})
		}
		// Unreachable: Baseline validated name against baselineNames.
		return nil
	})
}

func capScens(scens []netem.Scenario, n int) []netem.Scenario {
	if len(scens) > n {
		return scens[:n]
	}
	return scens
}

// Entrant wraps a name into a league entrant: "sage", a baseline name, or a
// registered cc scheme.
func (a *Artifacts) Entrant(name string) eval.Entrant {
	switch name {
	case "sage":
		model := a.Sage()
		return eval.ControllerEntrant("sage", func() rollout.Controller { return model.NewAgent(a.S.Seed) })
	case "orca", "orcav2", "deepcc":
		// Hybrids deploy their controller on top of Cubic, as trained.
		model := a.mustBaseline(name)
		return eval.HybridEntrant(name, "cubic", func() rollout.Controller { return model.NewAgent(a.S.Seed) })
	case "bc", "bc-top", "bc-top3", "bcv2", "onlinerl", "aurora", "genet",
		"indigo", "indigov2":
		model := a.mustBaseline(name)
		return eval.ControllerEntrant(name, func() rollout.Controller { return model.NewAgent(a.S.Seed) })
	default:
		return eval.SchemeEntrant(name)
	}
}

// ModelEntrant wraps an explicit model under a display name.
func (a *Artifacts) ModelEntrant(name string, m *core.Model) eval.Entrant {
	return eval.ControllerEntrant(name, func() rollout.Controller { return m.NewAgent(a.S.Seed) })
}
