package exp

import (
	"fmt"

	"sage/internal/cc"
	"sage/internal/core"
	"sage/internal/guard"
	"sage/internal/netem"
	"sage/internal/rollout"
	"sage/internal/sim"
	"sage/internal/telemetry"
)

// robustnessRun is one (scheme, adversarial scenario) rollout outcome.
type robustnessRun struct {
	Scenario  string  `json:"scenario"`
	Scheme    string  `json:"scheme"`
	Completed bool    `json:"completed"`
	ThrBps    float64 `json:"thr_bps"`
	FairBps   float64 `json:"fair_bps"`
	StallMs   float64 `json:"stall_ms"`
	LossRate  float64 `json:"loss_rate"`
	Trips     int     `json:"trips"`
	Restores  int     `json:"restores"`
}

// robustnessStallPeriod is the sampling period stall time is measured at:
// a period with zero receiver throughput counts as stalled.
const robustnessStallPeriod = 100 * sim.Millisecond

// Robustness is the runtime-safety experiment: the trained policy runs
// bare, guarded, and against the Cubic yardstick over the adversarial
// grid (link flaps, blackouts, reordering, ACK loss/duplication, burst
// loss) — conditions deliberately absent from the training pool. It
// reports completion rate, stall time, and guardian trip counts: the
// serving-time counterpart of the storage-time fault-tolerance suite.
func Robustness(a *Artifacts) []*Table {
	return RobustnessWithModel(a.Sage(), a.S.Level, a.S.SetIDur, a.S.Seed, nil)
}

// RobustnessWithModel runs the robustness matrix for an explicit model
// (sage-eval calls this with a model loaded from disk). Per-run records
// are emitted to events (nil-safe), and guardian trip/restore events ride
// along on the same stream.
func RobustnessWithModel(m *core.Model, level netem.GridLevel, dur sim.Time, seed int64, events *telemetry.JSONL) []*Table {
	grid := netem.AdversarialGrid(netem.AdversarialOptions{Level: level, Duration: dur, Seed: seed})
	if err := netem.ValidateAll(grid); err != nil {
		// The grid is generated, not user input: a validation failure here
		// is a bug in AdversarialGrid itself.
		panic(err)
	}

	reg := telemetry.NewRegistry()
	schemes := []string{"sage", "sage+guard", "cubic"}
	var runs []robustnessRun
	for _, sc := range grid {
		for _, scheme := range schemes {
			opt := rollout.Options{SamplePeriod: robustnessStallPeriod}
			var g *guard.GuardedController
			var under = "pure"
			switch scheme {
			case "sage":
				opt.Controller = m.NewAgent(seed)
			case "sage+guard":
				g = guard.New(m.NewAgent(seed), guard.Config{Metrics: reg})
				opt.Controller = g
			case "cubic":
				under = "cubic"
			}
			res := rollout.Run(sc, cc.MustNew(under), opt)
			run := robustnessRun{
				Scenario: sc.Name,
				Scheme:   scheme,
				ThrBps:   res.ThroughputBps,
				FairBps:  sc.FairShare(),
				StallMs:  stallTime(res.Series).Millis(),
				LossRate: res.LossRate,
			}
			run.Completed = completed(res)
			if g != nil {
				run.Trips = g.Trips()
				run.Restores = g.Restores()
				g.EmitEvents(events)
			}
			events.Emit(run)
			runs = append(runs, run)
		}
	}

	summary := &Table{
		Title:  "robustness: adversarial grid summary (completion / stall / trips)",
		Header: []string{"scheme", "completed", "avg stall ms", "avg thr/fair", "trips", "restores"},
	}
	for _, scheme := range schemes {
		var n, done, trips, restores int
		var stall, rel float64
		for _, r := range runs {
			if r.Scheme != scheme {
				continue
			}
			n++
			if r.Completed {
				done++
			}
			stall += r.StallMs
			if r.FairBps > 0 {
				rel += r.ThrBps / r.FairBps
			}
			trips += r.Trips
			restores += r.Restores
		}
		if n == 0 {
			continue
		}
		summary.AddRow(scheme,
			fmt.Sprintf("%d/%d", done, n),
			fmt.Sprintf("%.0f", stall/float64(n)),
			pct(rel/float64(n)),
			fmt.Sprintf("%d", trips),
			fmt.Sprintf("%d", restores),
		)
	}

	detail := &Table{
		Title:  "robustness: per-scenario throughput (Mb/s) and stall (ms)",
		Header: []string{"scenario", "sage thr", "sage stall", "guard thr", "guard stall", "guard trips", "cubic thr", "cubic stall"},
	}
	for _, sc := range grid {
		byScheme := map[string]robustnessRun{}
		for _, r := range runs {
			if r.Scenario == sc.Name {
				byScheme[r.Scheme] = r
			}
		}
		s, gd, cu := byScheme["sage"], byScheme["sage+guard"], byScheme["cubic"]
		detail.AddRow(sc.Name,
			mbps(s.ThrBps), fmt.Sprintf("%.0f", s.StallMs),
			mbps(gd.ThrBps), fmt.Sprintf("%.0f", gd.StallMs),
			fmt.Sprintf("%d", gd.Trips),
			mbps(cu.ThrBps), fmt.Sprintf("%.0f", cu.StallMs),
		)
	}

	guardStats := &Table{
		Title:  "robustness: guardian telemetry counters",
		Header: []string{"counter", "value"},
	}
	snap := reg.Snapshot()
	for _, name := range telemetry.Names(snap) {
		guardStats.AddRow(name, fmt.Sprintf("%g", snap[name]))
	}
	if len(guardStats.Rows) == 0 {
		guardStats.AddRow("(no guardian interventions)", "0")
	}

	return []*Table{summary, detail, guardStats}
}

// completed reports whether the flow was still making delivery progress
// by the end of the run: the final score interval saw receiver bytes. A
// flow the adversary permanently stalled (or a policy that blackholed
// it) fails this.
func completed(res rollout.Result) bool {
	if len(res.Intervals) == 0 {
		return res.ThroughputBps > 0
	}
	return res.Intervals[len(res.Intervals)-1].ThroughputBps > 0
}

// stallTime sums the sampling periods in which the receiver made no
// progress — the operator-facing "connection is dead" seconds.
func stallTime(series []rollout.Sample) sim.Time {
	var prev sim.Time
	var stalled sim.Time
	for i, s := range series {
		if i > 0 && s.ThrBps == 0 {
			stalled += s.At - prev
		}
		prev = s.At
	}
	return stalled
}
