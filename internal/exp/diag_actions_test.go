package exp

import (
	"context"
	"fmt"
	"os"
	"testing"

	"sage/internal/cc"
	"sage/internal/core"
	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/rl"
	"sage/internal/rollout"
	"sage/internal/sim"
	"sage/internal/tcp"
)

type uProbe struct {
	agent *core.Agent
	model *core.Model
	us    []float64
	cwnd  []float64
}

func (p *uProbe) Control(now sim.Time, conn *tcp.Conn, state []float64) {
	before := conn.Cwnd
	p.agent.Control(now, conn, state)
	ratio := conn.Cwnd / before
	p.us = append(p.us, ratio)
	p.cwnd = append(p.cwnd, conn.Cwnd)
}

func TestDiagDeployActions(t *testing.T) {
	if os.Getenv("SAGE_DIAG") == "" {
		t.Skip("diagnostic")
	}
	pool := diagGetPool(t)
	s := Quick()
	if v := os.Getenv("SAGE_STEPS"); v != "" {
		fmt.Sscanf(v, "%d", &s.TrainSteps)
	}
	ds := rl.BuildDataset(pool, nil)
	learner := rl.NewCRR(ds, s.crr())
	learner.Train(context.Background(), ds, nil)
	model := &core.Model{Policy: learner.Policy, Mask: ds.Mask, GR: pool.GR}

	// Pool-state policy means + Q diagnostics.
	for _, pr := range []struct{ traj, step int }{{0, 2}, {0, 120}, {40, 120}} {
		tr := pool.Trajs[pr.traj]
		if pr.step >= len(tr.Steps) {
			continue
		}
		st := gr.ApplyMask(tr.Steps[pr.step].State, ds.Mask)
		head, _, _ := learner.Policy.Forward(st, learner.Policy.InitHidden())
		fmt.Printf("pool %s/%s step%d: mean_u=%.3f  Q(-0.5/0/0.5)=%.2f/%.2f/%.2f\n",
			tr.Scheme, tr.Env, pr.step, learner.Policy.GMM.Mean(head),
			learner.QValue(st, -0.5), learner.QValue(st, 0), learner.QValue(st, 0.5))
	}

	mrtt := 20 * sim.Millisecond
	sc := netem.Scenario{Name: "diag", Rate: netem.FlatRate(netem.Mbps(48)), MinRTT: mrtt,
		QueueBytes: 2 * netem.BDPBytes(netem.Mbps(48), mrtt), Duration: 6 * sim.Second}
	pr := &uProbe{agent: model.NewAgent(1), model: model}
	res := rollout.Run(sc, cc.MustNew("pure"), rollout.Options{Controller: pr})
	fmt.Printf("deploy thr=%.2f loss=%.3f\n", res.ThroughputBps/1e6, res.LossRate)
	for i := 0; i < len(pr.us); i += 20 {
		fmt.Printf("tick %3d ratio=%.3f cwnd=%.1f\n", i, pr.us[i], pr.cwnd[i])
	}
}
