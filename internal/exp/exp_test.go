package exp

import (
	"strings"
	"testing"

	"sage/internal/netem"
	"sage/internal/nn"
	"sage/internal/sim"
)

// micro is an even smaller sizing than Quick, for tests.
func micro() Sizing {
	s := Quick()
	s.Name = "micro"
	s.SetIDur = 3 * sim.Second
	s.SetIIDur = 6 * sim.Second
	s.TrainSteps = 40
	s.BCSteps = 30
	s.OnlineRounds = 2
	s.OnlineSteps = 5
	s.Episodes = 2
	s.DaggerIters = 1
	s.Policy = nn.PolicyConfig{Enc: 12, Hidden: 6, ResBlocks: 1, K: 2}
	s.Critic = nn.CriticConfig{Hidden: 12, Atoms: 11}
	s.PathCount = 1
	s.PathDur = 4 * sim.Second
	return s
}

var microArt = NewArtifacts(micro())

func TestSizingPresets(t *testing.T) {
	q, p := Quick(), Paper()
	if q.TrainSteps >= p.TrainSteps {
		t.Fatal("paper must train longer than quick")
	}
	if len(q.SetI()) == 0 || len(q.SetII()) == 0 {
		t.Fatal("empty scenario sets")
	}
	if len(p.SetI()) <= len(q.SetI()) {
		t.Fatal("paper grid must be denser")
	}
	if q.Level != netem.GridTiny {
		t.Fatal("quick level")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}}
	tab.AddRow("xx", "y")
	s := tab.String()
	if !strings.Contains(s, "== T ==") || !strings.Contains(s, "xx") {
		t.Fatalf("rendered: %q", s)
	}
}

func TestFig05Shape(t *testing.T) {
	tab := Fig05()
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Peak at x=1 (row index 4).
	if tab.Rows[4][1] != "1.0000" {
		t.Fatalf("peak = %v", tab.Rows[4])
	}
	if tab.Rows[0][1] != tab.Rows[8][1] {
		t.Fatalf("not symmetric: %v vs %v", tab.Rows[0], tab.Rows[8])
	}
}

func TestArtifactsMemoization(t *testing.T) {
	a := microArt
	p1 := a.Pool()
	p2 := a.Pool()
	if p1 != p2 {
		t.Fatal("pool not memoized")
	}
	m1 := a.Sage()
	m2 := a.Sage()
	if m1 != m2 {
		t.Fatal("sage not memoized")
	}
	b1, err := a.Baseline("bc")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := a.Baseline("bc")
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Fatal("baseline not memoized")
	}
	if _, err := a.Baseline("no-such-baseline"); err == nil {
		t.Fatal("unknown baseline must error")
	}
}

func TestEntrantNames(t *testing.T) {
	a := microArt
	for _, n := range []string{"sage", "bc", "cubic", "vivace"} {
		e := a.Entrant(n)
		if e.Name != n {
			t.Fatalf("entrant %q has name %q", n, e.Name)
		}
	}
	orca := a.Entrant("orca")
	if orca.CC == nil || orca.Controller == nil {
		t.Fatal("orca must be a hybrid entrant")
	}
}

func TestFig01Runs(t *testing.T) {
	tab := Fig01(microArt)
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Rows must be ranked by Set I rate (descending).
	if tab.Header[1] != "winrate_setI" {
		t.Fatal("header")
	}
}

func TestFig11Runs(t *testing.T) {
	tab := Fig11(microArt)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Vegas is in the pool: its distances must be very small.
	if tab.Rows[0][0] != "vegas" {
		t.Fatal("row order")
	}
}

func TestFig17Runs(t *testing.T) {
	tabs := Fig17(microArt)
	if len(tabs) != 3 {
		t.Fatalf("tables = %d", len(tabs))
	}
	for _, tb := range tabs {
		if len(tb.Rows) < 5 {
			t.Fatalf("%s too few rows", tb.Title)
		}
	}
}

func TestFig19Runs(t *testing.T) {
	tab := Fig19(microArt)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestSuiteRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 22 {
		t.Fatalf("experiments = %d", len(ids))
	}
	if _, err := Find("fig09"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("robustness"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	e, _ := Find("fig05")
	var sb strings.Builder
	RunAndPrint(e, microArt, &sb)
	if !strings.Contains(sb.String(), "Fig. 5") {
		t.Fatal("RunAndPrint output")
	}
}
