package exp

import (
	"io"
	"testing"
)

// TestSuiteSmokeAll runs every experiment at micro sizing: it validates that
// each table/figure regenerates without panics and produces non-empty
// tables. Skipped under -short.
func TestSuiteSmokeAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite smoke is slow")
	}
	a := microArt
	for _, e := range Suite() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(a)
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("%s: empty table %q", e.ID, tb.Title)
				}
				tb.Fprint(io.Discard)
			}
		})
	}
}
