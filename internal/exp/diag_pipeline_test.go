package exp

import (
	"context"
	"fmt"
	"os"
	"testing"

	"sage/internal/cc"
	"sage/internal/collector"
	"sage/internal/core"
	"sage/internal/eval"
	"sage/internal/netem"
	"sage/internal/rollout"
	"sage/internal/sim"
)

const diagPool = "/tmp/sage_diag_pool.gob.gz"

func diagGetPool(t *testing.T) *collector.Pool {
	if p, err := collector.Load(diagPool); err == nil {
		return p
	}
	s := Quick()
	scens := append(s.SetI(), s.SetII()...)
	p, err := collector.Collect(context.Background(), cc.PoolNames(), scens, collector.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Save(diagPool); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDiagTrainDeploy(t *testing.T) {
	if os.Getenv("SAGE_DIAG") == "" {
		t.Skip("diagnostic; set SAGE_DIAG=1")
	}
	pool := diagGetPool(t)
	s := Quick()
	if v := os.Getenv("SAGE_STEPS"); v != "" {
		fmt.Sscanf(v, "%d", &s.TrainSteps)
	}
	cfg := s.crr()
	fmt.Printf("pool: %d transitions; training %d steps...\n", pool.Transitions(), cfg.Steps)
	model := core.Train(pool, core.Config{CRR: cfg}, func(step int, cl, pl float64) {
		if step%200 == 0 {
			fmt.Printf("  step %d critic %.3f policy %.3f\n", step, cl, pl)
		}
	})
	ent := eval.ControllerEntrant("sage", func() rollout.Controller { return model.NewAgent(1) })
	entMode := eval.ControllerEntrant("sage-mode", func() rollout.Controller {
		ag := model.NewAgent(1)
		ag.UseMode = true
		return ag
	})

	mrtt := 20 * sim.Millisecond
	envs := []netem.Scenario{
		{Name: "empty-48", Rate: netem.FlatRate(netem.Mbps(48)), MinRTT: mrtt,
			QueueBytes: 2 * netem.BDPBytes(netem.Mbps(48), mrtt), Duration: 8 * sim.Second},
		{Name: "deep-24", Rate: netem.FlatRate(netem.Mbps(24)), MinRTT: mrtt,
			QueueBytes: 8 * netem.BDPBytes(netem.Mbps(24), mrtt), Duration: 8 * sim.Second},
		{Name: "vs-cubic-24", Rate: netem.FlatRate(netem.Mbps(24)), MinRTT: 40 * sim.Millisecond,
			QueueBytes: 2 * netem.BDPBytes(netem.Mbps(24), 40*sim.Millisecond),
			Duration:   20 * sim.Second, CubicFlows: 1, TestStart: 2 * sim.Second},
	}
	for _, e := range []eval.Entrant{ent, entMode} {
		for _, sc := range envs {
			res := e.Run(sc, rollout.Options{})
			fmt.Printf("%-10s %-12s thr=%6.2fMbps rtt=%6.1fms loss=%.3f fair=%.1f\n",
				e.Name, sc.Name, res.ThroughputBps/1e6, res.AvgRTT.Millis(), res.LossRate, res.FairShareBps/1e6)
		}
	}
}
