package exp

import (
	"fmt"
	"io"
	"sort"
)

// Experiment regenerates one table/figure of the paper.
type Experiment struct {
	ID    string // e.g. "fig09"
	About string
	Run   func(a *Artifacts) []*Table
}

// Suite returns every experiment, keyed by figure/table id.
func Suite() []Experiment {
	one := func(f func(*Artifacts) *Table) func(*Artifacts) []*Table {
		return func(a *Artifacts) []*Table { return []*Table{f(a)} }
	}
	return []Experiment{
		{"fig01", "heuristic winning rates, Set I vs Set II", one(Fig01)},
		{"fig05", "TCP-friendliness reward curve", func(*Artifacts) []*Table { return []*Table{Fig05()} }},
		{"fig07", "Sage winning rate during training", func(a *Artifacts) []*Table { return []*Table{Fig07(a, 0)} }},
		{"fig08", "Internet-regime evaluation (intra/inter/cellular)", Fig08},
		{"fig09", "ML-based league", one(Fig09)},
		{"fig10", "delay-based league", one(Fig10)},
		{"fig11", "distributional-shift distance CDF", one(Fig11)},
		{"fig12", "ablation study", one(Fig12)},
		{"fig13", "similarity to pool schemes", func(a *Artifacts) []*Table { return []*Table{Fig13(a, 0)} }},
		{"fig14", "input granularity (Sage-s/m/l)", one(Fig14)},
		{"fig15", "pool diversity (Sage-Top/Top4)", one(Fig15)},
		{"fig16", "t-SNE hidden-layer separation", func(a *Artifacts) []*Table { return []*Table{Fig16(a, 0)} }},
		{"fig17", "behaviour in three sample scenarios", Fig17},
		{"fig18", "fairness among Sage flows", func(a *Artifacts) []*Table { return []*Table{Fig18(a, 0)} }},
		{"fig19", "TCP-friendliness vs 3 and 7 Cubic flows", one(Fig19)},
		{"fig20_21", "leagues at 5% winner margin", Fig20Fig21},
		{"fig22", "performance frontier", Fig22},
		{"fig23", "AQM robustness", one(Fig23)},
		{"fig24_25", "friendliness dynamics samples", one(Fig24Fig25)},
		{"fig27_28", "fairness/friendliness of other schemes", Fig27Fig28},
		{"table2_3", "Set I rankings at α=3", Table2Table3},
		{"robustness", "runtime guardian vs adversarial network faults", Robustness},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, error) {
	for _, e := range Suite() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// IDs lists all experiment ids, sorted.
func IDs() []string {
	var out []string
	for _, e := range Suite() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// RunAndPrint executes the experiment and writes its tables to w.
func RunAndPrint(e Experiment, a *Artifacts, w io.Writer) {
	for _, t := range e.Run(a) {
		t.Fprint(w)
	}
}
