package exp

import (
	"fmt"
	"sync"

	"sage/internal/cc"
	"sage/internal/eval"
	"sage/internal/netem"
	"sage/internal/rollout"
	"sage/internal/tcp"
	"sage/internal/trace"
)

// fig08Schemes is the subset plotted in Fig. 8 (bad performers omitted for
// readability in the paper; we keep a representative mix of delay-based,
// throughput-oriented, hybrid and learned schemes).
var fig08Schemes = []string{"sage", "bbr2", "cubic", "vegas", "copa", "c2tcp",
	"westwood", "yeah", "sprout", "orca"}

// Fig08 reproduces Figure 8: normalized average throughput and delay of the
// schemes over (a) intra-continental, (b) inter-continental, and (c) highly
// variable (cellular) synthetic path models, averaged over Repeats runs.
func Fig08(a *Artifacts) []*Table {
	s := a.S
	regimes := []struct {
		name  string
		scens []netem.Scenario
	}{
		{"Fig. 8a — intra-continental", trace.IntraContinental(s.PathCount, s.PathDur)},
		{"Fig. 8b — inter-continental", trace.InterContinental(s.PathCount, s.PathDur)},
		{"Fig. 8c — highly variable (cellular)", trace.CellularScenarios(s.PathCount, s.PathDur)},
	}
	// NATCP joins the cellular regime as the "(Optimal)" reference, exactly
	// where the paper plots it: the oracle needs network assistance, which
	// emulation can provide.
	natcp := eval.Entrant{Name: "natcp(optimal)", CCFor: func(sc netem.Scenario) tcp.CongestionControl {
		return cc.NewNATCP(sc, 1)
	}}
	var tables []*Table
	for ri, reg := range regimes {
		type agg struct {
			thr, owd float64
			n        int
		}
		perScheme := map[string]*agg{}
		var mu sync.Mutex
		var wg sync.WaitGroup
		sem := make(chan struct{}, parallelism(s.Parallel))
		schemes := fig08Schemes
		entrants := map[string]eval.Entrant{}
		for _, n := range schemes {
			entrants[n] = a.Entrant(n)
		}
		if ri == 2 { // cellular regime gets the oracle reference
			schemes = append(append([]string(nil), schemes...), natcp.Name)
			entrants[natcp.Name] = natcp
		}
		for _, name := range schemes {
			ent := entrants[name]
			for i, sc := range reg.scens {
				for r := 0; r < s.Repeats; r++ {
					wg.Add(1)
					sc := sc
					sc.Seed += int64(r) * 101
					name, ent := name, ent
					_ = i
					sem <- struct{}{}
					go func() {
						defer wg.Done()
						defer func() { <-sem }()
						res := ent.Run(sc, rollout.Options{})
						mu.Lock()
						ag := perScheme[name]
						if ag == nil {
							ag = &agg{}
							perScheme[name] = ag
						}
						ag.thr += res.ThroughputBps
						ag.owd += res.AvgOWD.Millis()
						ag.n++
						mu.Unlock()
					}()
				}
			}
		}
		wg.Wait()

		// Normalize: throughput over the max mean, delay over the min mean.
		maxThr, minOWD := 0.0, 0.0
		for _, ag := range perScheme {
			t := ag.thr / float64(ag.n)
			d := ag.owd / float64(ag.n)
			if t > maxThr {
				maxThr = t
			}
			if minOWD == 0 || d < minOWD {
				minOWD = d
			}
		}
		t := &Table{Title: reg.name,
			Header: []string{"scheme", "norm_thr", "norm_delay", "thr_mbps", "owd_ms"}}
		for _, name := range schemes {
			ag := perScheme[name]
			if ag == nil || ag.n == 0 {
				continue
			}
			thr := ag.thr / float64(ag.n)
			owd := ag.owd / float64(ag.n)
			t.AddRow(name,
				fmt.Sprintf("%.2f", thr/maxThr),
				fmt.Sprintf("%.2f", owd/minOWD),
				mbps(thr),
				fmt.Sprintf("%.1f", owd),
			)
		}
		tables = append(tables, t)
	}
	return tables
}

func parallelism(p int) int {
	if p > 0 {
		return p
	}
	return 8
}

// Run executes the entrant on one scenario (exported for experiment code).
func (a *Artifacts) RunEntrant(name string, sc netem.Scenario, opt rollout.Options) rollout.Result {
	return a.Entrant(name).Run(sc, opt)
}
