package exp

import (
	"sage/internal/core"
	"sage/internal/eval"
	"sage/internal/gr"
	"sage/internal/nn"
)

// ablationVariant describes one Fig. 12 retrain.
type ablationVariant struct {
	name   string
	mask   func() []int
	mutate func(*nn.PolicyConfig)
}

func ablationVariants() []ablationVariant {
	return []ablationVariant{
		{"no-minmax", gr.MaskNoMinMax, nil},
		{"no-rttvar", gr.MaskNoRTTVar, nil},
		{"no-loss/inf", gr.MaskNoLossInflight, nil},
		{"no-gru", nil, func(p *nn.PolicyConfig) { p.NoGRU = true }},
		{"no-encoder", nil, func(p *nn.PolicyConfig) { p.NoEncoder = true }},
		{"no-gmm", nil, func(p *nn.PolicyConfig) { p.K = 1 }},
	}
}

// AblationModels retrains (memoized) the six Fig. 12 variants on the same
// pool and training regime as Sage.
func (a *Artifacts) AblationModels() map[string]*core.Model {
	out := map[string]*core.Model{"sage": a.Sage()}
	for _, v := range ablationVariants() {
		v := v
		out[v.name] = a.memo("ablate/"+v.name, func() *core.Model {
			cfg := core.Config{CRR: a.S.crr()}
			if v.mask != nil {
				cfg.Mask = v.mask()
			}
			if v.mutate != nil {
				v.mutate(&cfg.CRR.Policy)
			}
			return core.Train(a.Pool(), cfg, nil)
		})
	}
	return out
}

// Fig12 reproduces Figure 12: winning rates of Sage and its six ablated
// variants over both sets (each variant wins where its removed component
// did not matter; the full model should lead).
func Fig12(a *Artifacts) *Table {
	models := a.AblationModels()
	order := []string{"sage", "no-minmax", "no-gmm", "no-encoder", "no-rttvar", "no-loss/inf", "no-gru"}
	var entrants []eval.Entrant
	for _, n := range order {
		entrants = append(entrants, a.ModelEntrant(n, models[n]))
	}
	m := a.matrixOf("ablation", entrants)
	res := eval.ScoreLeague(m, a.leagueOpts())
	t := &Table{Title: "Fig. 12 — ablation study winning rates",
		Header: []string{"variant", "winrate_setI", "winrate_setII"}}
	for _, n := range order {
		t.AddRow(n, pct(res.RateSingle[n]), pct(res.RateMulti[n]))
	}
	return t
}

// Fig14 reproduces Figure 14: Sage against the uniform-granularity variants
// Sage-s/m/l (observation windows 10/200/1000), in both sets.
func Fig14(a *Artifacts) *Table {
	models := a.GranularityModels()
	order := []string{"sage", "sage-l", "sage-m", "sage-s"}
	var entrants []eval.Entrant
	for _, n := range order {
		entrants = append(entrants, a.ModelEntrant(n, models[n]))
	}
	m := a.matrixOf("granularity", entrants)
	res := eval.ScoreLeague(m, a.leagueOpts())
	t := &Table{Title: "Fig. 14 — impact of input-representation granularity",
		Header: []string{"model", "winrate_setI", "winrate_setII"}}
	for _, n := range order {
		t.AddRow(n, pct(res.RateSingle[n]), pct(res.RateMulti[n]))
	}
	return t
}

// Fig15 reproduces Figure 15: Sage retrained on narrower pools — Sage-Top
// (only the top scheme of each set) and Sage-Top4 (the top four of each
// set) — showing that pool diversity, not just data volume, drives
// performance ("the more the merrier").
func Fig15(a *Artifacts) *Table {
	pool := a.Pool()
	topModel := a.memo("sage-top", func() *core.Model {
		sub := pool.FilterSchemes(pool.TopSchemes(1)...)
		return core.Train(sub, core.Config{CRR: a.S.crr()}, nil)
	})
	top4Model := a.memo("sage-top4", func() *core.Model {
		sub := pool.FilterSchemes(pool.TopSchemes(4)...)
		return core.Train(sub, core.Config{CRR: a.S.crr()}, nil)
	})
	entrants := []eval.Entrant{
		a.ModelEntrant("sage", a.Sage()),
		a.ModelEntrant("sage-top4", top4Model),
		a.ModelEntrant("sage-top", topModel),
	}
	m := a.matrixOf("diversity", entrants)
	res := eval.ScoreLeague(m, a.leagueOpts())
	t := &Table{Title: "Fig. 15 — impact of pool diversity",
		Header: []string{"model", "pool_schemes", "winrate_setI", "winrate_setII"}}
	t.AddRow("sage", itoa(len(pool.Schemes())), pct(res.RateSingle["sage"]), pct(res.RateMulti["sage"]))
	t.AddRow("sage-top4", itoa(len(pool.TopSchemes(4))), pct(res.RateSingle["sage-top4"]), pct(res.RateMulti["sage-top4"]))
	t.AddRow("sage-top", itoa(len(pool.TopSchemes(1))), pct(res.RateSingle["sage-top"]), pct(res.RateMulti["sage-top"]))
	return t
}
