package exp

import (
	"context"
	"strconv"
	"sync"

	"sage/internal/cc"
	"sage/internal/collector"
	"sage/internal/core"
	"sage/internal/eval"
	"sage/internal/rl"
)

// leagueOpts returns the default league options for a sizing.
func (a *Artifacts) leagueOpts() eval.LeagueOptions {
	return eval.LeagueOptions{Parallel: a.S.Parallel}
}

// matrixOf runs (and memoizes) the rollout matrix for a named entrant set.
var matrixCache sync.Map // key string -> *eval.Matrix

func (a *Artifacts) matrixOf(key string, entrants []eval.Entrant) *eval.Matrix {
	full := a.S.Name + "/" + key
	if m, ok := matrixCache.Load(full); ok {
		return m.(*eval.Matrix)
	}
	scens := append(a.S.SetI(), a.S.SetII()...)
	m := eval.RunMatrix(entrants, scens, a.leagueOpts())
	matrixCache.Store(full, m)
	return m
}

func leagueTable(title string, res *eval.LeagueResult) *Table {
	t := &Table{Title: title, Header: []string{"scheme", "winrate_setI", "winrate_setII"}}
	for _, name := range res.RankingSingle() {
		t.AddRow(name, pct(res.RateSingle[name]), pct(res.RateMulti[name]))
	}
	return t
}

// Fig01 reproduces Figure 1: winning rates of the heuristic pool schemes in
// the single-flow (Set I) and multi-flow (Set II) scenario sets, showing
// that no heuristic wins everywhere and the two rankings invert.
func Fig01(a *Artifacts) *Table {
	var entrants []eval.Entrant
	for _, n := range []string{"vegas", "yeah", "copa", "bbr2", "cubic", "htcp", "bic", "newreno"} {
		entrants = append(entrants, a.Entrant(n))
	}
	m := a.matrixOf("heuristics8", entrants)
	res := eval.ScoreLeague(m, a.leagueOpts())
	return leagueTable("Fig. 1 — heuristic winning rates (Set I vs Set II)", res)
}

// heuristicEntrants returns the full 13-scheme pool as entrants.
func (a *Artifacts) heuristicEntrants() []eval.Entrant {
	var out []eval.Entrant
	for _, n := range cc.PoolNames() {
		out = append(out, a.Entrant(n))
	}
	return out
}

// Fig07 reproduces Figure 7: Sage's winning rate against the 13-scheme
// league as training progresses ("training days" become training epochs at
// this scale). The TCP-friendly region's base rate is NewReno's multi-flow
// winning rate, as in the paper.
func Fig07(a *Artifacts, epochs int) *Table {
	if epochs == 0 {
		epochs = 4
	}
	pool := a.Pool()
	ds := rl.BuildDataset(pool, nil)
	cfg := a.S.crr()
	perEpoch := cfg.Steps / epochs
	if perEpoch < 1 {
		perEpoch = 1
	}
	learner := rl.NewCRR(ds, cfg)

	t := &Table{
		Title:  "Fig. 7 — Sage winning rate during training",
		Header: []string{"epoch", "sage_setI", "sage_setII", "best_heuristic_setI", "newreno_setII(base)"},
	}
	heur := a.heuristicEntrants()
	heurMatrix := a.matrixOf("pool13", heur)
	for e := 1; e <= epochs; e++ {
		learner.Cfg.Steps = perEpoch
		learner.Train(context.Background(), ds, nil)
		model := &core.Model{Policy: learner.Policy, Mask: ds.Mask, GR: pool.GR}
		entrants := append([]eval.Entrant{a.ModelEntrant("sage", model)}, heur...)
		// Reuse the heuristics' cached rollouts: rebuild a matrix with Sage
		// rolled fresh and the heuristics copied over.
		scens := append(a.S.SetI(), a.S.SetII()...)
		sageM := eval.RunMatrix(entrants[:1], scens, a.leagueOpts())
		m := &eval.Matrix{Entrants: entrants, Scenarios: scens,
			Results: append(sageM.Results, heurMatrix.Results...)}
		res := eval.ScoreLeague(m, a.leagueOpts())
		bestI := 0.0
		for _, h := range cc.PoolNames() {
			if res.RateSingle[h] > bestI {
				bestI = res.RateSingle[h]
			}
		}
		t.AddRow(
			itoa(e),
			pct(res.RateSingle["sage"]),
			pct(res.RateMulti["sage"]),
			pct(bestI),
			pct(res.RateMulti["newreno"]),
		)
	}
	return t
}

// mlLeagueNames is Fig. 9's league.
var mlLeagueNames = []string{"sage", "bc", "bc-top", "bc-top3", "bcv2",
	"onlinerl", "aurora", "genet", "orca", "orcav2", "deepcc",
	"indigo", "indigov2", "vivace"}

// Fig09 reproduces Figure 9: the ML-based league rankings in both sets.
func Fig09(a *Artifacts) *Table {
	var entrants []eval.Entrant
	for _, n := range mlLeagueNames {
		entrants = append(entrants, a.Entrant(n))
	}
	m := a.matrixOf("mlleague", entrants)
	res := eval.ScoreLeague(m, a.leagueOpts())
	return leagueTable("Fig. 9 — ML-based league winning rates", res)
}

// delayLeagueNames is Fig. 10's league plus Sage.
var delayLeagueNames = []string{"sage", "vegas", "c2tcp", "bbr2", "ledbat", "copa", "sprout"}

// Fig10 reproduces Figure 10: the delay-based league rankings in both sets.
func Fig10(a *Artifacts) *Table {
	var entrants []eval.Entrant
	for _, n := range delayLeagueNames {
		entrants = append(entrants, a.Entrant(n))
	}
	m := a.matrixOf("delayleague", entrants)
	res := eval.ScoreLeague(m, a.leagueOpts())
	return leagueTable("Fig. 10 — delay-based league winning rates", res)
}

// Fig20Fig21 re-scores both leagues with the tighter 5% winner margin of
// Appendix D.2 (the rankings should remain largely intact).
func Fig20Fig21(a *Artifacts) []*Table {
	opt := a.leagueOpts()
	opt.Margin = 0.05
	var mlE, dlE []eval.Entrant
	for _, n := range mlLeagueNames {
		mlE = append(mlE, a.Entrant(n))
	}
	for _, n := range delayLeagueNames {
		dlE = append(dlE, a.Entrant(n))
	}
	ml := eval.ScoreLeague(a.matrixOf("mlleague", mlE), opt)
	dl := eval.ScoreLeague(a.matrixOf("delayleague", dlE), opt)
	return []*Table{
		leagueTable("Fig. 20 — ML league at 5% winner margin", ml),
		leagueTable("Fig. 21 — delay league at 5% winner margin", dl),
	}
}

// Table2Table3 re-scores both leagues' Set I with α=3 in the power score
// (Appendix D.1: rankings should remain largely intact).
func Table2Table3(a *Artifacts) []*Table {
	opt := a.leagueOpts()
	opt.Alpha = 3
	var mlE, dlE []eval.Entrant
	for _, n := range mlLeagueNames {
		mlE = append(mlE, a.Entrant(n))
	}
	for _, n := range delayLeagueNames {
		dlE = append(dlE, a.Entrant(n))
	}
	dl := eval.ScoreLeague(a.matrixOf("delayleague", dlE), opt)
	ml := eval.ScoreLeague(a.matrixOf("mlleague", mlE), opt)
	t2 := &Table{Title: "Table 2 — delay league, Set I, α=3", Header: []string{"scheme", "winrate_setI"}}
	for _, n := range dl.RankingSingle() {
		t2.AddRow(n, pct(dl.RateSingle[n]))
	}
	t3 := &Table{Title: "Table 3 — ML league, Set I, α=3", Header: []string{"scheme", "winrate_setI"}}
	for _, n := range ml.RankingSingle() {
		t3.AddRow(n, pct(ml.RateSingle[n]))
	}
	return []*Table{t2, t3}
}

// poolFiltered is a convenience for the diversity studies.
func (a *Artifacts) poolFiltered(names ...string) *collector.Pool {
	return a.Pool().FilterSchemes(names...)
}

func itoa(v int) string { return strconv.Itoa(v) }
