package exp

import (
	"fmt"

	"sage/internal/cc"
	"sage/internal/eval"
	"sage/internal/netem"
	"sage/internal/rollout"
	"sage/internal/sim"
	"sage/internal/tcp"
)

// fig17Scenarios are the three sample environments of Figure 17: a sudden
// capacity doubling, a sudden halving, and competition with a Cubic flow.
// 20 ms minRTT and a 450 KB (300-packet) buffer, as in the paper.
func fig17Scenarios(dur sim.Time) []netem.Scenario {
	mrtt := 20 * sim.Millisecond
	const buf = 450_000
	return []netem.Scenario{
		{Name: "bw-24to48", Rate: netem.StepRate(netem.Mbps(24), netem.Mbps(48), dur/2),
			MinRTT: mrtt, QueueBytes: buf, Duration: dur, Seed: 171},
		{Name: "bw-48to24", Rate: netem.StepRate(netem.Mbps(48), netem.Mbps(24), dur/2),
			MinRTT: mrtt, QueueBytes: buf, Duration: dur, Seed: 172},
		{Name: "vs-cubic-24", Rate: netem.FlatRate(netem.Mbps(24)),
			MinRTT: mrtt, QueueBytes: buf, Duration: dur, CubicFlows: 1,
			TestStart: dur / 10, Seed: 173},
	}
}

// Fig17 reproduces Figure 17: Sage's sending rate, one-way delay, and cwnd
// across the three sample scenarios; the table reports the series at a few
// checkpoints plus per-half aggregates (probing/adaptation behaviour).
func Fig17(a *Artifacts) []*Table {
	sage := a.Entrant("sage")
	var tables []*Table
	for _, sc := range fig17Scenarios(a.S.SetIIDur) {
		res := sage.Run(sc, rollout.Options{SamplePeriod: sc.Duration / 12})
		t := &Table{Title: "Fig. 17 — Sage dynamics in " + sc.Name,
			Header: []string{"t_s", "send_mbps", "thr_mbps", "owd_ms", "cwnd_pkts"}}
		for _, s := range res.Series {
			t.AddRow(
				fmt.Sprintf("%.1f", s.At.Seconds()),
				mbps(s.SendRateBps),
				mbps(s.ThrBps),
				msStr(s.OWD),
				fmt.Sprintf("%.0f", s.Cwnd),
			)
		}
		t.AddRow("avg", mbps(res.ThroughputBps), mbps(res.ThroughputBps), msStr(res.AvgOWD), "-")
		tables = append(tables, t)
	}
	return tables
}

// Fig18 reproduces Figure 18: Sage flows joining a shared bottleneck every
// interval; the table reports each flow's steady share and the Jain index
// over the final window (all flows active).
func Fig18(a *Artifacts, flows int) *Table {
	if flows == 0 {
		flows = 4
	}
	model := a.Sage()
	dur := a.S.SetIIDur * 2
	stagger := dur / sim.Time(flows+1)
	mrtt := 40 * sim.Millisecond
	sc := netem.Scenario{
		Name:       "fairness-sage",
		Rate:       netem.FlatRate(netem.Mbps(48)),
		MinRTT:     mrtt,
		QueueBytes: 2 * netem.BDPBytes(netem.Mbps(48), mrtt),
		Duration:   dur,
		Seed:       181,
	}
	var specs []rollout.FlowSpec
	for i := 0; i < flows; i++ {
		agent := model.NewAgent(int64(i))
		specs = append(specs, rollout.FlowSpec{
			Name:       fmt.Sprintf("sage-%d", i+1),
			CC:         cc.MustNew("pure"),
			Controller: agent,
			Start:      sim.Time(i) * stagger,
		})
	}
	results := rollout.RunMulti(sc, specs, rollout.MultiOptions{SamplePeriod: dur / 10})
	t := &Table{Title: "Fig. 18 — fairness among Sage flows (staggered joins)",
		Header: []string{"flow", "join_s", "final_window_mbps"}}
	var final []float64
	for i, r := range results {
		last := r.Series[len(r.Series)-1]
		final = append(final, last.ThrBps)
		t.AddRow(r.Name, fmt.Sprintf("%.0f", specs[i].Start.Seconds()), mbps(last.ThrBps))
	}
	t.AddRow("jain_index", "-", fmt.Sprintf("%.3f", eval.JainIndex(final)))
	return t
}

// friendlinessRun shares a 48 Mb/s, 40 ms, 1-BDP bottleneck between the
// entrant and n Cubic flows (the Fig. 19/28 setup) and returns per-flow
// throughputs plus the entrant's distance from its fair share.
func (a *Artifacts) friendlinessRun(name string, nCubic int) (entrantMbps, fairMbps float64, cubic []float64) {
	mrtt := 40 * sim.Millisecond
	dur := a.S.SetIIDur * 2
	sc := netem.Scenario{
		Name:       fmt.Sprintf("friendliness-%s-%d", name, nCubic),
		Rate:       netem.FlatRate(netem.Mbps(48)),
		MinRTT:     mrtt,
		QueueBytes: netem.BDPBytes(netem.Mbps(48), mrtt),
		Duration:   dur,
		Seed:       191,
	}
	ent := a.Entrant(name)
	specs := []rollout.FlowSpec{{
		Name:  name,
		CC:    underlyingOf(ent),
		Start: dur / 10,
	}}
	if ent.Controller != nil {
		specs[0].Controller = ent.Controller()
	}
	for i := 0; i < nCubic; i++ {
		specs = append(specs, rollout.FlowSpec{
			Name:  fmt.Sprintf("cubic-%d", i+1),
			CC:    cc.MustNew("cubic"),
			Start: sim.Time(i) * 50 * sim.Millisecond,
		})
	}
	results := rollout.RunMulti(sc, specs, rollout.MultiOptions{})
	fair := netem.Mbps(48) / float64(nCubic+1)
	for i, r := range results {
		if i == 0 {
			entrantMbps = r.ThroughputBps / 1e6
		} else {
			cubic = append(cubic, r.ThroughputBps/1e6)
		}
	}
	return entrantMbps, fair / 1e6, cubic
}

func underlyingOf(e eval.Entrant) tcp.CongestionControl {
	if e.CC != nil {
		return e.CC()
	}
	return cc.MustNew("pure")
}

// Fig19 reproduces Figure 19: Sage sharing with 3 and with 7 Cubic flows.
func Fig19(a *Artifacts) *Table {
	t := &Table{Title: "Fig. 19 — Sage's TCP-friendliness vs 3 and 7 Cubic flows",
		Header: []string{"competing_cubic", "sage_mbps", "fair_share_mbps", "share_ratio"}}
	for _, n := range []int{3, 7} {
		got, fair, _ := a.friendlinessRun("sage", n)
		t.AddRow(itoa(n), fmt.Sprintf("%.2f", got), fmt.Sprintf("%.2f", fair),
			fmt.Sprintf("%.2f", got/fair))
	}
	return t
}

// Fig22 reproduces Figure 22: the throughput/delay frontier of Sage against
// the 13 pool heuristics in a shallow- and a deep-buffer environment.
func Fig22(a *Artifacts) []*Table {
	mrtt := 20 * sim.Millisecond
	envs := []struct {
		name string
		bdp  float64
	}{{"shallow buffer (0.5 BDP)", 0.5}, {"deep buffer (8 BDP)", 8}}
	names := append([]string{"sage"}, cc.PoolNames()...)
	var tables []*Table
	for i, env := range envs {
		qb := int(float64(netem.BDPBytes(netem.Mbps(48), mrtt)) * env.bdp)
		sc := netem.Scenario{
			Name: "frontier", Rate: netem.FlatRate(netem.Mbps(48)), MinRTT: mrtt,
			QueueBytes: qb, Duration: a.S.SetIDur * 2, Seed: int64(221 + i),
		}
		t := &Table{Title: "Fig. 22 — performance frontier, " + env.name,
			Header: []string{"scheme", "thr_mbps", "avg_rtt_ms"}}
		for _, n := range names {
			res := a.Entrant(n).Run(sc, rollout.Options{})
			t.AddRow(n, mbps(res.ThroughputBps), msStr(res.AvgRTT))
		}
		tables = append(tables, t)
	}
	return tables
}

// Fig23 reproduces Figure 23: throughput/delay of the schemes under five
// AQM disciplines at the bottleneck (48 Mb/s, 20 ms, 240 KB). Sage's spread
// across AQMs should be the smallest.
func Fig23(a *Artifacts) *Table {
	mrtt := 20 * sim.Millisecond
	aqms := []netem.AQMKind{netem.AQMHeadDrop, netem.AQMDropTail, netem.AQMPIE, netem.AQMBoDe, netem.AQMCoDel}
	schemes := []string{"sage", "cubic", "bbr2", "vegas", "westwood", "yeah"}
	t := &Table{Title: "Fig. 23 — impact of AQM disciplines (48 Mb/s, 20 ms, 240 KB)",
		Header: []string{"scheme", "aqm", "thr_mbps", "avg_rtt_ms"}}
	type point struct{ thr, rtt float64 }
	spread := map[string][]point{}
	for _, name := range schemes {
		for _, q := range aqms {
			sc := netem.Scenario{
				Name: "aqm-" + q.String(), Rate: netem.FlatRate(netem.Mbps(48)),
				MinRTT: mrtt, QueueBytes: 240_000, AQM: q,
				Duration: a.S.SetIDur * 2, Seed: 231,
			}
			res := a.Entrant(name).Run(sc, rollout.Options{})
			t.AddRow(name, q.String(), mbps(res.ThroughputBps), msStr(res.AvgRTT))
			spread[name] = append(spread[name], point{res.ThroughputBps / 1e6, res.AvgRTT.Millis()})
		}
	}
	for _, name := range schemes {
		pts := spread[name]
		minT, maxT := pts[0].thr, pts[0].thr
		for _, p := range pts {
			if p.thr < minT {
				minT = p.thr
			}
			if p.thr > maxT {
				maxT = p.thr
			}
		}
		t.AddRow(name, "thr_spread", fmt.Sprintf("%.2f", maxT-minT), "-")
	}
	return t
}

// Fig24Fig25 reproduces Figures 24/25: friendliness dynamics of the ML and
// delay leagues in a small-buffer (80-packet) and a large-buffer
// (1280-packet) Set II environment (24 Mb/s, 40 ms). The table reports the
// entrant's share of its fair share in each.
func Fig24Fig25(a *Artifacts) *Table {
	names := []string{"sage", "bc-top", "orca", "aurora", "onlinerl", "vivace",
		"cubic", "vegas", "copa", "c2tcp", "bbr2", "ledbat"}
	mrtt := 40 * sim.Millisecond
	envs := []struct {
		name string
		pkts int
	}{{"small-buffer(80p)", 80}, {"large-buffer(1280p)", 1280}}
	t := &Table{Title: "Figs. 24/25 — friendliness dynamics vs Cubic (24 Mb/s, 40 ms)",
		Header: []string{"scheme", "env", "scheme_mbps", "cubic_mbps", "share_ratio"}}
	for _, env := range envs {
		for _, name := range names {
			sc := netem.Scenario{
				Name: "dyn-" + env.name, Rate: netem.FlatRate(netem.Mbps(24)),
				MinRTT: mrtt, QueueBytes: env.pkts * netem.MTU,
				Duration: a.S.SetIIDur * 2, CubicFlows: 1,
				TestStart: a.S.SetIIDur / 5, Seed: 241,
			}
			res := a.Entrant(name).Run(sc, rollout.Options{})
			fair := 12.0
			t.AddRow(name, env.name, mbps(res.ThroughputBps), mbps(res.BgThroughput[0]),
				fmt.Sprintf("%.2f", res.ThroughputBps/1e6/fair))
		}
	}
	return t
}

// Fig27Fig28 reproduces Figures 27/28: the fairness (own-kind flows) and
// TCP-friendliness (vs 3 and 7 Cubic flows) of the comparison schemes, to
// contextualize Figs. 18/19.
func Fig27Fig28(a *Artifacts) []*Table {
	schemes := []string{"sage", "vivace", "onlinerl", "aurora", "indigo", "orca", "c2tcp", "bbr2", "yeah", "cubic"}
	mrtt := 40 * sim.Millisecond
	dur := a.S.SetIIDur * 2

	fair := &Table{Title: "Fig. 27 — fairness among own-kind flows (Jain index, 4 staggered flows)",
		Header: []string{"scheme", "jain_index"}}
	for _, name := range schemes {
		ent := a.Entrant(name)
		sc := netem.Scenario{
			Name: "fairness-" + name, Rate: netem.FlatRate(netem.Mbps(48)), MinRTT: mrtt,
			QueueBytes: 2 * netem.BDPBytes(netem.Mbps(48), mrtt), Duration: dur, Seed: 271,
		}
		var specs []rollout.FlowSpec
		for i := 0; i < 4; i++ {
			spec := rollout.FlowSpec{
				Name:  fmt.Sprintf("%s-%d", name, i+1),
				CC:    underlyingOf(ent),
				Start: sim.Time(i) * dur / 5,
			}
			if ent.Controller != nil {
				spec.Controller = ent.Controller()
			}
			specs = append(specs, spec)
		}
		results := rollout.RunMulti(sc, specs, rollout.MultiOptions{SamplePeriod: dur / 8})
		var final []float64
		for _, r := range results {
			last := r.Series[len(r.Series)-1]
			final = append(final, last.ThrBps)
		}
		fair.AddRow(name, fmt.Sprintf("%.3f", eval.JainIndex(final)))
	}

	friendly := &Table{Title: "Fig. 28 — TCP-friendliness of other schemes (share of fair share)",
		Header: []string{"scheme", "vs3cubic_ratio", "vs7cubic_ratio"}}
	for _, name := range []string{"sage", "aurora", "indigo", "bbr2", "cubic"} {
		g3, f3, _ := a.friendlinessRun(name, 3)
		g7, f7, _ := a.friendlinessRun(name, 7)
		friendly.AddRow(name, fmt.Sprintf("%.2f", g3/f3), fmt.Sprintf("%.2f", g7/f7))
	}
	return []*Table{fair, friendly}
}
