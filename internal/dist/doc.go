// Package dist is the distributed control plane: a coordinator that
// shards a collection campaign's (scheme, env) cells across remote
// sage-collect agents and drives data-parallel CRR training across
// sage-train workers, over one small length-prefixed RPC protocol.
//
// Collection. The coordinator owns the campaign: the cell set comes from
// a Campaign spec (schemes × Set I/Set II grid) that both sides build
// identically, so assignments travel as (scheme, env) names, never as
// serialized scenarios. Agents lease cells, renew the leases with
// heartbeats, run each cell with collector.CollectCell, and ship the
// resulting single-cell pool shard back checksummed; the coordinator
// persists every shard through internal/safeio and records completion in
// the same JSONL manifest sage-collect's resume path uses. A lease that
// is not renewed within its TTL returns the cell to the pending set and
// marks the holder evicted — a revived agent learns its session is dead
// on its next message and exits with a distinct status so a supervisor
// can relaunch it. Because each cell's trajectory is a pure function of
// (scheme, scenario, GR config), the merged pool is byte-identical to a
// single-process sage-collect run over the same campaign, no matter how
// cells were distributed, reassigned, or duplicated.
//
// Training. N trainer workers each hold a learner replica and the same
// deterministic sampler stream an in-process worker with that index
// would use (internal/rl's ShardWorker). Per step, every worker computes
// its gradient shard and pushes it to the coordinator; the coordinator
// all-reduces the shards in worker order onto the master learner
// (rl.ApplyShards), steps the optimizer, and broadcasts the new
// parameters. The decomposition is bitwise-identical to in-process
// Workers=N training, and the master checkpoint carries the remote
// sampler positions, so any worker or coordinator restart resumes with a
// bitwise-identical loss curve through the existing checkpoint
// machinery.
package dist
