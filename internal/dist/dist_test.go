package dist

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sage/internal/collector"
	"sage/internal/telemetry"
)

func testCampaign() *Campaign {
	return &Campaign{
		Schemes:    []string{"cubic", "vegas"},
		Level:      "tiny",
		SetIDurSec: 3,
		SetIIDur:   5,
		Seed:       1,
	}
}

// refPool computes the single-process reference pool for testCampaign
// once and returns its canonical saved bytes.
var refOnce struct {
	sync.Once
	bytes []byte
	err   error
}

func referencePoolBytes(t *testing.T) []byte {
	t.Helper()
	refOnce.Do(func() {
		c := testCampaign()
		scens, err := c.Scenarios()
		if err != nil {
			refOnce.err = err
			return
		}
		pool, err := collector.Collect(context.Background(), c.Schemes, scens, collector.Options{GR: c.GR(), Parallel: 4})
		if err != nil {
			refOnce.err = err
			return
		}
		pool.SortByCell()
		path := filepath.Join(os.TempDir(), "dist-ref-pool.gob.gz")
		defer os.Remove(path)
		if err := pool.Save(path); err != nil {
			refOnce.err = err
			return
		}
		refOnce.bytes, refOnce.err = os.ReadFile(path)
	})
	if refOnce.err != nil {
		t.Fatal(refOnce.err)
	}
	return refOnce.bytes
}

func startCoordinator(t *testing.T, cfg CoordConfig) (*Coordinator, string) {
	t.Helper()
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve(ln)
	return coord, ln.Addr().String()
}

func savedBytes(t *testing.T, pool *collector.Pool) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pool.gob.gz")
	if err := pool.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestShardedCampaignByteIdenticalToSingleProcess is the tentpole
// guarantee: two agents splitting a campaign produce, after merge, the
// exact bytes a single-process run saves.
func TestShardedCampaignByteIdenticalToSingleProcess(t *testing.T) {
	dir := t.TempDir()
	coord, addr := startCoordinator(t, CoordConfig{
		Campaign:     testCampaign(),
		ShardDir:     filepath.Join(dir, "shards"),
		ManifestPath: filepath.Join(dir, "manifest"),
		LeaseTTL:     10 * time.Second,
	})
	defer coord.Shutdown()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	agentErrs := make(chan error, 2)
	for _, id := range []string{"agent-1", "agent-2"} {
		go func(id string) {
			agentErrs <- RunAgent(ctx, AgentConfig{Coordinator: addr, ID: id, Parallel: 2, Metrics: telemetry.NewRegistry()})
		}(id)
	}
	if err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-agentErrs; err != nil {
			t.Fatalf("agent: %v", err)
		}
	}
	merged, err := coord.MergedPool()
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Failed) != 0 {
		t.Fatalf("failed cells: %v", merged.Failed)
	}
	if !bytes.Equal(savedBytes(t, merged), referencePoolBytes(t)) {
		t.Fatal("sharded campaign pool differs from single-process bytes")
	}
}

// TestCoordinatorRestartMidCampaign: a coordinator killed mid-campaign
// leaves its manifest and shards; a successor with -resume re-admits the
// verified cells and the completed campaign is still byte-identical.
func TestCoordinatorRestartMidCampaign(t *testing.T) {
	dir := t.TempDir()
	shardDir := filepath.Join(dir, "shards")
	manifest := filepath.Join(dir, "manifest")
	campaign := testCampaign()
	cells, err := campaign.Cells()
	if err != nil {
		t.Fatal(err)
	}
	scens, err := campaign.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for i, sc := range scens {
		byName[sc.Name] = i
	}

	// Phase 1: a raw protocol client completes three cells, then the
	// coordinator dies without merging.
	coord1, addr := startCoordinator(t, CoordConfig{
		Campaign: campaign, ShardDir: shardDir, ManifestPath: manifest, LeaseTTL: 10 * time.Second,
	})
	cli, err := dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.roundTrip(&Message{Type: MsgHello, AgentID: "pre", Role: "collect"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		resp, err := cli.roundTrip(&Message{Type: MsgRequestCell, AgentID: "pre"})
		if err != nil || resp.Type != MsgAssign {
			t.Fatalf("assign %d: %v %+v", i, err, resp)
		}
		sc := scens[byName[resp.Env]]
		tr, err := collector.CollectCell(context.Background(), resp.Scheme, sc, collector.Options{GR: campaign.GR()})
		if err != nil {
			t.Fatal(err)
		}
		payload, sum, err := EncodeShard(&collector.Pool{GR: campaign.GR().Fill(), Trajs: []collector.Trajectory{tr}})
		if err != nil {
			t.Fatal(err)
		}
		ack, err := cli.roundTrip(&Message{Type: MsgCellDone, AgentID: "pre", Scheme: resp.Scheme, Env: resp.Env, Shard: payload, Checksum: sum})
		if err != nil || ack.Verdict != VerdictOK {
			t.Fatalf("cell done: %v %+v", err, ack)
		}
	}
	cli.close()
	coord1.Shutdown()

	// Phase 2: the successor resumes and two agents finish the campaign.
	coord2, addr2 := startCoordinator(t, CoordConfig{
		Campaign: campaign, ShardDir: shardDir, ManifestPath: manifest,
		LeaseTTL: 10 * time.Second, Resume: true,
	})
	defer coord2.Shutdown()
	if coord2.Resumed() != 3 {
		t.Fatalf("resumed %d cells, want 3", coord2.Resumed())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	agentErrs := make(chan error, 2)
	for _, id := range []string{"agent-1", "agent-2"} {
		go func(id string) {
			agentErrs <- RunAgent(ctx, AgentConfig{Coordinator: addr2, ID: id, Parallel: 2})
		}(id)
	}
	if err := coord2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-agentErrs; err != nil {
			t.Fatalf("agent: %v", err)
		}
	}
	merged, err := coord2.MergedPool()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(savedBytes(t, merged), referencePoolBytes(t)) {
		t.Fatal("resumed campaign pool differs from single-process bytes")
	}
	if len(cells) != len(merged.Trajs) {
		t.Fatalf("trajs = %d, want %d", len(merged.Trajs), len(cells))
	}
}

// TestEvictionAndDuplicateCompletion drives the revived-agent story at
// the protocol level: a stalled agent's lease expires, the cell is
// reassigned and completed elsewhere, and the zombie's late messages get
// evicted/duplicate verdicts while the pool keeps exactly one copy.
func TestEvictionAndDuplicateCompletion(t *testing.T) {
	dir := t.TempDir()
	campaign := &Campaign{Schemes: []string{"cubic"}, Level: "tiny", SetIDurSec: 3, SetIIDur: 5, Seed: 1}
	coord, addr := startCoordinator(t, CoordConfig{
		Campaign: campaign, ShardDir: filepath.Join(dir, "shards"), ManifestPath: filepath.Join(dir, "manifest"),
		LeaseTTL: 10 * time.Second,
	})
	defer coord.Shutdown()
	now := time.Unix(0, 0)
	var mu sync.Mutex
	coord.Tracker().SetClock(func() time.Time { mu.Lock(); defer mu.Unlock(); return now })
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	zombie, err := dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer zombie.close()
	if _, err := zombie.roundTrip(&Message{Type: MsgHello, AgentID: "zombie", Role: "collect"}); err != nil {
		t.Fatal(err)
	}
	assign, err := zombie.roundTrip(&Message{Type: MsgRequestCell, AgentID: "zombie"})
	if err != nil || assign.Type != MsgAssign {
		t.Fatalf("assign: %v %+v", err, assign)
	}

	// The zombie goes silent past the TTL; a healthy agent gets the cell.
	advance(25 * time.Second)
	healthy, err := dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.close()
	if _, err := healthy.roundTrip(&Message{Type: MsgHello, AgentID: "healthy", Role: "collect"}); err != nil {
		t.Fatal(err)
	}
	reassign, err := healthy.roundTrip(&Message{Type: MsgRequestCell, AgentID: "healthy"})
	if err != nil || reassign.Type != MsgAssign || reassign.Env != assign.Env {
		t.Fatalf("reassign: %v %+v (want cell %s)", err, reassign, assign.Env)
	}

	scens, _ := campaign.Scenarios()
	var sc = scens[0]
	for _, s := range scens {
		if s.Name == assign.Env {
			sc = s
		}
	}
	tr, err := collector.CollectCell(context.Background(), assign.Scheme, sc, collector.Options{GR: campaign.GR()})
	if err != nil {
		t.Fatal(err)
	}
	payload, sum, err := EncodeShard(&collector.Pool{GR: campaign.GR().Fill(), Trajs: []collector.Trajectory{tr}})
	if err != nil {
		t.Fatal(err)
	}

	// A corrupted shard (checksum mismatch) is asked to resend, not
	// persisted.
	bad := append([]byte(nil), payload...)
	bad[len(bad)/2] ^= 0x01
	ack, err := healthy.roundTrip(&Message{Type: MsgCellDone, AgentID: "healthy", Scheme: assign.Scheme, Env: assign.Env, Shard: bad, Checksum: sum})
	if err != nil || ack.Verdict != VerdictRetry {
		t.Fatalf("corrupt shard verdict: %v %+v", err, ack)
	}

	ack, err = healthy.roundTrip(&Message{Type: MsgCellDone, AgentID: "healthy", Scheme: assign.Scheme, Env: assign.Env, Shard: payload, Checksum: sum})
	if err != nil || ack.Verdict != VerdictOK {
		t.Fatalf("healthy completion: %v %+v", err, ack)
	}

	// The zombie wakes up: heartbeat and late completion both tell it the
	// session is dead.
	hb, err := zombie.roundTrip(&Message{Type: MsgHeartbeat, AgentID: "zombie"})
	if err != nil || hb.Verdict != VerdictEvicted {
		t.Fatalf("zombie heartbeat: %v %+v", err, hb)
	}
	late, err := zombie.roundTrip(&Message{Type: MsgCellDone, AgentID: "zombie", Scheme: assign.Scheme, Env: assign.Env, Shard: payload, Checksum: sum})
	if err != nil || late.Verdict != VerdictEvicted {
		t.Fatalf("zombie late completion: %v %+v", err, late)
	}

	// A fresh Hello revives the identity; its duplicate result is then
	// reported as duplicate, and the pool still has exactly one copy.
	if _, err := zombie.roundTrip(&Message{Type: MsgHello, AgentID: "zombie", Role: "collect"}); err != nil {
		t.Fatal(err)
	}
	dup, err := zombie.roundTrip(&Message{Type: MsgCellDone, AgentID: "zombie", Scheme: assign.Scheme, Env: assign.Env, Shard: payload, Checksum: sum})
	if err != nil || dup.Verdict != VerdictDuplicate {
		t.Fatalf("revived duplicate completion: %v %+v", err, dup)
	}
	if done := coord.Tracker().DoneCells(); len(done) != 1 {
		t.Fatalf("done cells = %v", done)
	}
}

func TestCampaignValidate(t *testing.T) {
	good := testCampaign()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Campaign{
		{Schemes: nil, Level: "tiny", SetIDurSec: 1, SetIIDur: 1},
		{Schemes: []string{"nope"}, Level: "tiny", SetIDurSec: 1, SetIIDur: 1},
		{Schemes: []string{"cubic"}, Level: "huge", SetIDurSec: 1, SetIIDur: 1},
		{Schemes: []string{"cubic"}, Level: "tiny", SetIDurSec: 0, SetIIDur: 1},
		{Schemes: []string{"cubic"}, Level: "tiny", SetIDurSec: 1, SetIIDur: 1, Window: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad campaign %d validated", i)
		}
	}
	cells, err := good.Cells()
	if err != nil {
		t.Fatal(err)
	}
	scens, _ := good.Scenarios()
	if len(cells) != len(good.Schemes)*len(scens) {
		t.Fatalf("cells = %d, want %d", len(cells), len(good.Schemes)*len(scens))
	}
	// Scheme-major order, like collector.Collect dispatch.
	if cells[0].Scheme != "cubic" || cells[len(scens)].Scheme != "vegas" {
		t.Fatalf("cell order: %v ... %v", cells[0], cells[len(scens)])
	}
}

func TestShardEncodeVerify(t *testing.T) {
	campaign := testCampaign()
	scens, _ := campaign.Scenarios()
	tr, err := collector.CollectCell(context.Background(), "cubic", scens[0], collector.Options{GR: campaign.GR()})
	if err != nil {
		t.Fatal(err)
	}
	grCfg := campaign.GR().Fill()
	payload, sum, err := EncodeShard(&collector.Pool{GR: grCfg, Trajs: []collector.Trajectory{tr}})
	if err != nil {
		t.Fatal(err)
	}
	if ChecksumShard(payload) != sum {
		t.Fatal("checksum disagrees with EncodeShard")
	}
	cell := collector.CellKey{Scheme: "cubic", Env: scens[0].Name}
	if err := verifyShardPayload(payload, cell, grCfg); err != nil {
		t.Fatal(err)
	}
	// Wrong cell claimed → rejected.
	if err := verifyShardPayload(payload, collector.CellKey{Scheme: "vegas", Env: scens[0].Name}, grCfg); err == nil {
		t.Fatal("shard for the wrong cell accepted")
	}
	// Same shard name for the same cell, different for others.
	if ShardName(cell) != ShardName(cell) {
		t.Fatal("shard name unstable")
	}
	if ShardName(cell) == ShardName(collector.CellKey{Scheme: "vegas", Env: scens[0].Name}) {
		t.Fatal("shard name collision")
	}
}
