package dist

import (
	"sort"
	"sync"
	"time"

	"sage/internal/collector"
)

// CellStatus is a tracked cell's lifecycle state.
type CellStatus int

// Cell lifecycle.
const (
	CellPending CellStatus = iota
	CellLeased
	CellDone
	CellFailed
)

// AcquireResult reports what Acquire found.
type AcquireResult int

// Acquire outcomes.
const (
	AcquireGranted  AcquireResult = iota // a cell was leased to the caller
	AcquireWait                          // all remaining cells are leased out; retry later
	AcquireComplete                      // every cell is done or failed
	AcquireHedged                        // a straggling cell was speculatively re-leased to the caller
)

// Tracker is the coordinator's lease table: every campaign cell with its
// status, holder, and lease deadline. Leases are renewed by heartbeat;
// a lease that reaches its deadline un-renewed returns the cell to the
// pending set and marks the holder evicted, so a stalled or dead agent's
// work is reassigned instead of wedging the campaign. All methods are
// safe for concurrent use from connection handlers.
type Tracker struct {
	mu      sync.Mutex
	order   []collector.CellKey
	cells   map[collector.CellKey]*cellInfo
	evicted map[string]bool
	ttl     time.Duration
	now     func() time.Time

	// Straggler hedging: a trailing window of completion durations and
	// the multiple of their p75 past which a leased cell counts as
	// straggling. hedgeFactor <= 0 disables hedging.
	hedgeFactor float64
	durations   []time.Duration
}

// durationWindow bounds the trailing completion-duration sample; a
// window (rather than all history) lets the straggler threshold adapt
// when the campaign moves from short cells to long ones.
const durationWindow = 64

type cellInfo struct {
	status   CellStatus
	agent    string
	expires  time.Time
	leasedAt time.Time
	err      string

	// A hedge is a second, speculative lease on a straggling cell.
	// Cells are deterministic, so whichever holder finishes first wins
	// and the loser's copy is a harmless duplicate.
	hedgeAgent   string
	hedgeExpires time.Time
	hedgeAt      time.Time
}

// NewTracker builds the table over the campaign's cells with the given
// lease TTL.
func NewTracker(cells []collector.CellKey, ttl time.Duration) *Tracker {
	t := &Tracker{
		order:   append([]collector.CellKey(nil), cells...),
		cells:   make(map[collector.CellKey]*cellInfo, len(cells)),
		evicted: map[string]bool{},
		ttl:     ttl,
		now:     time.Now,
	}
	for _, c := range t.order {
		t.cells[c] = &cellInfo{}
	}
	return t
}

// SetClock overrides the time source (tests drive lease expiry without
// sleeping).
func (t *Tracker) SetClock(now func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
}

// SetHedge enables straggler hedging: once at least three completion
// durations are on record, a cell leased for longer than factor × the
// p75 completion duration may be speculatively re-leased to an idle
// agent. factor <= 0 disables hedging (the default).
func (t *Tracker) SetHedge(factor float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hedgeFactor = factor
}

// expireLocked sweeps leases past their deadline: the cell goes back to
// pending and the delinquent holder is marked evicted. A hedged cell
// whose primary expires is promoted to its hedge holder instead of
// returning to pending. Called lazily at the top of every mutating
// operation, so expiry needs no timer goroutine — any agent activity
// (and there is always activity while an agent lives, because idle
// agents poll) advances the sweep.
func (t *Tracker) expireLocked() {
	now := t.now()
	for _, ci := range t.cells {
		if ci.status != CellLeased {
			continue
		}
		if ci.hedgeAgent != "" && now.After(ci.hedgeExpires) {
			t.evicted[ci.hedgeAgent] = true
			ci.hedgeAgent = ""
		}
		if now.After(ci.expires) {
			t.evicted[ci.agent] = true
			if ci.hedgeAgent != "" {
				ci.agent, ci.expires, ci.leasedAt = ci.hedgeAgent, ci.hedgeExpires, ci.hedgeAt
				ci.hedgeAgent = ""
			} else {
				ci.status = CellPending
				ci.agent = ""
			}
		}
	}
}

// stragglerThresholdLocked computes the lease age past which a cell is
// hedgeable: hedgeFactor × the p75 of the trailing completion-duration
// window, requiring at least three samples so one fast fluke cannot
// trigger a hedge storm at campaign start.
func (t *Tracker) stragglerThresholdLocked() (time.Duration, bool) {
	if t.hedgeFactor <= 0 || len(t.durations) < 3 {
		return 0, false
	}
	ds := append([]time.Duration(nil), t.durations...)
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	q := ds[len(ds)*3/4]
	return time.Duration(float64(q) * t.hedgeFactor), true
}

func (t *Tracker) recordDurationLocked(d time.Duration) {
	t.durations = append(t.durations, d)
	if len(t.durations) > durationWindow {
		t.durations = t.durations[1:]
	}
}

// Register opens (or re-opens) a session for agent: a fresh Hello clears
// any eviction, so a relaunched agent under the same id starts clean.
func (t *Tracker) Register(agent string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.evicted, agent)
}

// Evicted reports whether the agent's session has been declared dead.
func (t *Tracker) Evicted(agent string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked()
	return t.evicted[agent]
}

// Acquire leases the first pending cell to agent. With hedging enabled
// and no pending cells left, it may instead re-lease a straggling cell
// (leased longer than the fleet's trailing-quantile completion rate
// predicts, to someone else, not yet hedged) and report AcquireHedged —
// idle capacity races the straggler, first checksummed shard wins.
func (t *Tracker) Acquire(agent string) (collector.CellKey, AcquireResult) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked()
	now := t.now()
	open := false
	for _, key := range t.order {
		ci := t.cells[key]
		switch ci.status {
		case CellPending:
			ci.status = CellLeased
			ci.agent = agent
			ci.expires = now.Add(t.ttl)
			ci.leasedAt = now
			return key, AcquireGranted
		case CellLeased:
			open = true
		}
	}
	if !open {
		return collector.CellKey{}, AcquireComplete
	}
	if threshold, ok := t.stragglerThresholdLocked(); ok {
		for _, key := range t.order {
			ci := t.cells[key]
			if ci.status == CellLeased && ci.hedgeAgent == "" && ci.agent != agent &&
				!ci.leasedAt.IsZero() && now.Sub(ci.leasedAt) > threshold {
				ci.hedgeAgent = agent
				ci.hedgeExpires = now.Add(t.ttl)
				ci.hedgeAt = now
				return key, AcquireHedged
			}
		}
	}
	return collector.CellKey{}, AcquireWait
}

// Renew extends every lease agent holds, hedges included.
func (t *Tracker) Renew(agent string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked()
	deadline := t.now().Add(t.ttl)
	for _, ci := range t.cells {
		if ci.status != CellLeased {
			continue
		}
		if ci.agent == agent {
			ci.expires = deadline
		}
		if ci.hedgeAgent == agent {
			ci.hedgeExpires = deadline
		}
	}
}

// Release returns every cell agent holds to the pending set without
// evicting it — the clean-disconnect path (connection closed), where the
// agent is expected to redial and re-register. A hedged cell whose
// primary disconnects stays leased to the hedge holder.
func (t *Tracker) Release(agent string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, ci := range t.cells {
		if ci.status != CellLeased {
			continue
		}
		if ci.hedgeAgent == agent {
			ci.hedgeAgent = ""
		}
		if ci.agent == agent {
			if ci.hedgeAgent != "" {
				ci.agent, ci.expires, ci.leasedAt = ci.hedgeAgent, ci.hedgeExpires, ci.hedgeAt
				ci.hedgeAgent = ""
			} else {
				ci.status = CellPending
				ci.agent = ""
			}
		}
	}
}

// Complete marks a cell done. The first completion wins regardless of
// who currently holds the lease (cells are deterministic, so a result
// from a lapsed lease is still the correct result); later completions
// report VerdictDuplicate so a revived agent knows to discard its copy.
// hedgeWin reports whether the winner was the cell's hedge holder —
// the speculative re-lease beat the straggler.
func (t *Tracker) Complete(agent string, cell collector.CellKey) (verdict string, hedgeWin bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked()
	ci, ok := t.cells[cell]
	if !ok {
		return VerdictDuplicate, false // not a campaign cell; nothing to record
	}
	if ci.status == CellDone {
		return VerdictDuplicate, false
	}
	if ci.status == CellLeased {
		start := ci.leasedAt
		if agent == ci.hedgeAgent && ci.hedgeAgent != "" {
			hedgeWin = true
			start = ci.hedgeAt
		}
		if !start.IsZero() {
			t.recordDurationLocked(t.now().Sub(start))
		}
	}
	ci.status = CellDone
	ci.agent = agent
	ci.hedgeAgent = ""
	ci.err = ""
	return VerdictOK, hedgeWin
}

// Fail marks a cell permanently failed (unless it already completed
// elsewhere).
func (t *Tracker) Fail(agent string, cell collector.CellKey, errMsg string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked()
	ci, ok := t.cells[cell]
	if !ok || ci.status == CellDone {
		return VerdictDuplicate
	}
	ci.status = CellFailed
	ci.agent = agent
	ci.hedgeAgent = ""
	ci.err = errMsg
	return VerdictOK
}

// Readopt restores a lease from the write-ahead log after a coordinator
// restart: the cell is leased to agent with a fresh TTL, as if the
// grant had just happened. If the agent is truly gone the lease expires
// normally; if it is alive its next heartbeat renews it and its
// in-flight completion lands without re-collection.
func (t *Tracker) Readopt(cell collector.CellKey, agent string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ci, ok := t.cells[cell]
	if !ok || ci.status != CellPending {
		return
	}
	now := t.now()
	ci.status = CellLeased
	ci.agent = agent
	ci.expires = now.Add(t.ttl)
	ci.leasedAt = now
}

// MarkDone pre-completes a cell (coordinator resume from manifest +
// shard files).
func (t *Tracker) MarkDone(cell collector.CellKey) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ci, ok := t.cells[cell]; ok {
		ci.status = CellDone
	}
}

// Done reports whether every cell has reached a terminal state.
func (t *Tracker) Done() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked()
	for _, ci := range t.cells {
		if ci.status == CellPending || ci.status == CellLeased {
			return false
		}
	}
	return true
}

// Counts returns how many cells are in each state.
func (t *Tracker) Counts() (pending, leased, done, failed int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked()
	for _, ci := range t.cells {
		switch ci.status {
		case CellPending:
			pending++
		case CellLeased:
			leased++
		case CellDone:
			done++
		case CellFailed:
			failed++
		}
	}
	return
}

// DoneCells returns the completed cells, in campaign order.
func (t *Tracker) DoneCells() []collector.CellKey {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []collector.CellKey
	for _, key := range t.order {
		if t.cells[key].status == CellDone {
			out = append(out, key)
		}
	}
	return out
}

// Failures returns the permanently failed cells in canonical (scheme,
// env) order — the Pool.Failed a single-process run would report.
func (t *Tracker) Failures() []collector.FailedCell {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []collector.FailedCell
	for _, key := range t.order {
		if ci := t.cells[key]; ci.status == CellFailed {
			out = append(out, collector.FailedCell{Scheme: key.Scheme, Env: key.Env, Err: ci.err})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Scheme != out[j].Scheme {
			return out[i].Scheme < out[j].Scheme
		}
		return out[i].Env < out[j].Env
	})
	return out
}
