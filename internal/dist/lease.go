package dist

import (
	"sort"
	"sync"
	"time"

	"sage/internal/collector"
)

// CellStatus is a tracked cell's lifecycle state.
type CellStatus int

// Cell lifecycle.
const (
	CellPending CellStatus = iota
	CellLeased
	CellDone
	CellFailed
)

// AcquireResult reports what Acquire found.
type AcquireResult int

// Acquire outcomes.
const (
	AcquireGranted  AcquireResult = iota // a cell was leased to the caller
	AcquireWait                          // all remaining cells are leased out; retry later
	AcquireComplete                      // every cell is done or failed
)

// Tracker is the coordinator's lease table: every campaign cell with its
// status, holder, and lease deadline. Leases are renewed by heartbeat;
// a lease that reaches its deadline un-renewed returns the cell to the
// pending set and marks the holder evicted, so a stalled or dead agent's
// work is reassigned instead of wedging the campaign. All methods are
// safe for concurrent use from connection handlers.
type Tracker struct {
	mu      sync.Mutex
	order   []collector.CellKey
	cells   map[collector.CellKey]*cellInfo
	evicted map[string]bool
	ttl     time.Duration
	now     func() time.Time
}

type cellInfo struct {
	status  CellStatus
	agent   string
	expires time.Time
	err     string
}

// NewTracker builds the table over the campaign's cells with the given
// lease TTL.
func NewTracker(cells []collector.CellKey, ttl time.Duration) *Tracker {
	t := &Tracker{
		order:   append([]collector.CellKey(nil), cells...),
		cells:   make(map[collector.CellKey]*cellInfo, len(cells)),
		evicted: map[string]bool{},
		ttl:     ttl,
		now:     time.Now,
	}
	for _, c := range t.order {
		t.cells[c] = &cellInfo{}
	}
	return t
}

// SetClock overrides the time source (tests drive lease expiry without
// sleeping).
func (t *Tracker) SetClock(now func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
}

// expireLocked sweeps leases past their deadline: the cell goes back to
// pending and the delinquent holder is marked evicted. Called lazily at
// the top of every mutating operation, so expiry needs no timer
// goroutine — any agent activity (and there is always activity while an
// agent lives, because idle agents poll) advances the sweep.
func (t *Tracker) expireLocked() {
	now := t.now()
	for _, ci := range t.cells {
		if ci.status == CellLeased && now.After(ci.expires) {
			t.evicted[ci.agent] = true
			ci.status = CellPending
			ci.agent = ""
		}
	}
}

// Register opens (or re-opens) a session for agent: a fresh Hello clears
// any eviction, so a relaunched agent under the same id starts clean.
func (t *Tracker) Register(agent string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.evicted, agent)
}

// Evicted reports whether the agent's session has been declared dead.
func (t *Tracker) Evicted(agent string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked()
	return t.evicted[agent]
}

// Acquire leases the first pending cell to agent.
func (t *Tracker) Acquire(agent string) (collector.CellKey, AcquireResult) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked()
	open := false
	for _, key := range t.order {
		ci := t.cells[key]
		switch ci.status {
		case CellPending:
			ci.status = CellLeased
			ci.agent = agent
			ci.expires = t.now().Add(t.ttl)
			return key, AcquireGranted
		case CellLeased:
			open = true
		}
	}
	if open {
		return collector.CellKey{}, AcquireWait
	}
	return collector.CellKey{}, AcquireComplete
}

// Renew extends every lease agent holds.
func (t *Tracker) Renew(agent string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked()
	deadline := t.now().Add(t.ttl)
	for _, ci := range t.cells {
		if ci.status == CellLeased && ci.agent == agent {
			ci.expires = deadline
		}
	}
}

// Release returns every cell agent holds to the pending set without
// evicting it — the clean-disconnect path (connection closed), where the
// agent is expected to redial and re-register.
func (t *Tracker) Release(agent string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, ci := range t.cells {
		if ci.status == CellLeased && ci.agent == agent {
			ci.status = CellPending
			ci.agent = ""
		}
	}
}

// Complete marks a cell done. The first completion wins regardless of
// who currently holds the lease (cells are deterministic, so a result
// from a lapsed lease is still the correct result); later completions
// report VerdictDuplicate so a revived agent knows to discard its copy.
func (t *Tracker) Complete(agent string, cell collector.CellKey) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked()
	ci, ok := t.cells[cell]
	if !ok {
		return VerdictDuplicate // not a campaign cell; nothing to record
	}
	if ci.status == CellDone {
		return VerdictDuplicate
	}
	ci.status = CellDone
	ci.agent = agent
	ci.err = ""
	return VerdictOK
}

// Fail marks a cell permanently failed (unless it already completed
// elsewhere).
func (t *Tracker) Fail(agent string, cell collector.CellKey, errMsg string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked()
	ci, ok := t.cells[cell]
	if !ok || ci.status == CellDone {
		return VerdictDuplicate
	}
	ci.status = CellFailed
	ci.agent = agent
	ci.err = errMsg
	return VerdictOK
}

// MarkDone pre-completes a cell (coordinator resume from manifest +
// shard files).
func (t *Tracker) MarkDone(cell collector.CellKey) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ci, ok := t.cells[cell]; ok {
		ci.status = CellDone
	}
}

// Done reports whether every cell has reached a terminal state.
func (t *Tracker) Done() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked()
	for _, ci := range t.cells {
		if ci.status == CellPending || ci.status == CellLeased {
			return false
		}
	}
	return true
}

// Counts returns how many cells are in each state.
func (t *Tracker) Counts() (pending, leased, done, failed int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked()
	for _, ci := range t.cells {
		switch ci.status {
		case CellPending:
			pending++
		case CellLeased:
			leased++
		case CellDone:
			done++
		case CellFailed:
			failed++
		}
	}
	return
}

// DoneCells returns the completed cells, in campaign order.
func (t *Tracker) DoneCells() []collector.CellKey {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []collector.CellKey
	for _, key := range t.order {
		if t.cells[key].status == CellDone {
			out = append(out, key)
		}
	}
	return out
}

// Failures returns the permanently failed cells in canonical (scheme,
// env) order — the Pool.Failed a single-process run would report.
func (t *Tracker) Failures() []collector.FailedCell {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []collector.FailedCell
	for _, key := range t.order {
		if ci := t.cells[key]; ci.status == CellFailed {
			out = append(out, collector.FailedCell{Scheme: key.Scheme, Env: key.Env, Err: ci.err})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Scheme != out[j].Scheme {
			return out[i].Scheme < out[j].Scheme
		}
		return out[i].Env < out[j].Env
	})
	return out
}
