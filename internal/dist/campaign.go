package dist

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"hash/crc64"

	"sage/internal/cc"
	"sage/internal/collector"
	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/sim"
)

// Campaign is the complete, serializable description of one collection
// campaign. Coordinator and agents both expand it into the identical
// scenario grid, so cell assignments are just (scheme, env) names and a
// cell collected anywhere yields the identical trajectory. Durations are
// carried in seconds to keep the spec independent of sim.Time's
// representation.
type Campaign struct {
	Schemes    []string
	Level      string // tiny | small | full
	SetIDurSec float64
	SetIIDur   float64
	Seed       int64
	Window     int // uniform GR observation window (0 = default 10/200/1000)
}

// Validate rejects a spec whose expansion would fail on either side.
func (c Campaign) Validate() error {
	if len(c.Schemes) == 0 {
		return fmt.Errorf("dist: campaign has no schemes")
	}
	if err := cc.Validate(c.Schemes...); err != nil {
		return fmt.Errorf("dist: campaign: %w", err)
	}
	if _, err := netem.ParseLevel(c.Level); err != nil {
		return fmt.Errorf("dist: campaign: %w", err)
	}
	if c.SetIDurSec <= 0 || c.SetIIDur <= 0 {
		return fmt.Errorf("dist: campaign durations must be positive (seti=%gs setii=%gs)", c.SetIDurSec, c.SetIIDur)
	}
	if c.Window < 0 {
		return fmt.Errorf("dist: campaign window %d is negative", c.Window)
	}
	return nil
}

// GR returns the campaign's GR configuration.
func (c Campaign) GR() gr.Config {
	cfg := gr.Config{}
	if c.Window > 0 {
		cfg = cfg.WithUniformWindow(c.Window)
	}
	return cfg
}

// Scenarios expands the campaign's environment grid, in the same order
// sage-collect builds it (Set I then Set II).
func (c Campaign) Scenarios() ([]netem.Scenario, error) {
	lvl, err := netem.ParseLevel(c.Level)
	if err != nil {
		return nil, err
	}
	scens := append(
		netem.SetI(netem.SetIOptions{Level: lvl, Duration: sim.FromSeconds(c.SetIDurSec), Seed: c.Seed}),
		netem.SetII(netem.SetIIOptions{Level: lvl, Duration: sim.FromSeconds(c.SetIIDur), Seed: c.Seed})...)
	if err := netem.ValidateAll(scens); err != nil {
		return nil, err
	}
	return scens, nil
}

// Cells lists every (scheme, env) cell of the campaign, scheme-major —
// the same nested order collector.Collect dispatches in.
func (c Campaign) Cells() ([]collector.CellKey, error) {
	scens, err := c.Scenarios()
	if err != nil {
		return nil, err
	}
	cells := make([]collector.CellKey, 0, len(c.Schemes)*len(scens))
	for _, s := range c.Schemes {
		for _, sc := range scens {
			cells = append(cells, collector.CellKey{Scheme: s, Env: sc.Name})
		}
	}
	return cells, nil
}

var shardCRC = crc64.MakeTable(crc64.ECMA)

// ShardName returns the deterministic shard filename for a cell. Scheme
// and env names can contain characters a filesystem dislikes, so the
// name is a hash of the key; the cell identity inside the shard is
// authoritative and verified at resume.
func ShardName(cell collector.CellKey) string {
	h := crc64.New(shardCRC)
	h.Write([]byte(cell.Scheme))
	h.Write([]byte{0})
	h.Write([]byte(cell.Env))
	return fmt.Sprintf("shard-%016x.pool", h.Sum64())
}

// EncodeShard serializes a single-cell pool as the gzipped-gob payload
// that travels in MsgCellDone, with its CRC-64 for wire verification.
// The coordinator wraps the same bytes in safeio's container, so the
// shard file on disk is a normal pool artifact collector.Load reads.
func EncodeShard(pool *collector.Pool) (payload []byte, sum uint64, err error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := gob.NewEncoder(zw).Encode(pool); err != nil {
		return nil, 0, fmt.Errorf("dist: encode shard: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, 0, fmt.Errorf("dist: encode shard: %w", err)
	}
	return buf.Bytes(), crc64.Checksum(buf.Bytes(), shardCRC), nil
}

// ChecksumShard computes the wire checksum of a shard payload.
func ChecksumShard(payload []byte) uint64 { return crc64.Checksum(payload, shardCRC) }

// decodeShard decodes a shard payload back into its pool — the
// coordinator's pre-persist sanity check that the shard really carries
// the cell it claims.
func decodeShard(payload []byte) (*collector.Pool, error) {
	zr, err := gzip.NewReader(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("dist: decode shard: %w", err)
	}
	var p collector.Pool
	if err := gob.NewDecoder(zr).Decode(&p); err != nil {
		return nil, fmt.Errorf("dist: decode shard: %w", err)
	}
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("dist: decode shard: %w", err)
	}
	return &p, nil
}
