package dist

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"sage/internal/collector"
	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/rl"
	"sage/internal/telemetry"
)

// ErrRevoked is returned by RunAgent when the coordinator has evicted
// this agent's session (its leases expired un-renewed — the agent
// stalled or was partitioned past the TTL). The work was reassigned; the
// right response is to exit with a distinct status so a supervisor can
// relaunch a fresh session.
var ErrRevoked = errors.New("dist: session evicted by coordinator (leases expired)")

// sessionConfig bundles the transport-reliability knobs shared by
// collection agents and training workers.
type sessionConfig struct {
	attempts int           // dial/retry budget (default 10)
	backoff  time.Duration // base backoff between retries (default 500ms)
	timeout  time.Duration // per-RPC deadline; 0 disables
	metrics  *telemetry.Registry
	logf     func(string, ...any)
}

// session is one logical agent↔coordinator connection that survives
// transport failures: every call carries a (session nonce, request ID)
// pair, and a call that hits a broken connection redials, replays its
// Hello, and retries the request under capped exponential backoff with
// jitter — with the same request ID, so the coordinator's reply cache
// makes the retry idempotent. Safe for concurrent use (work loop +
// heartbeat goroutine).
type session struct {
	spec   string
	hello  *Message
	cfg    sessionConfig
	nonce  uint64
	reqSeq atomic.Uint64

	mu      sync.Mutex
	cli     *client
	welcome *Message
	gen     int
}

// connect dials the coordinator and performs the Hello handshake.
func connect(ctx context.Context, spec string, hello *Message, cfg sessionConfig) (*session, error) {
	if cfg.attempts <= 0 {
		cfg.attempts = 10
	}
	if cfg.backoff <= 0 {
		cfg.backoff = 500 * time.Millisecond
	}
	if cfg.logf == nil {
		cfg.logf = func(string, ...any) {}
	}
	s := &session{spec: spec, hello: hello, cfg: cfg, nonce: uint64(time.Now().UnixNano())}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.reconnectLocked(ctx); err != nil {
		return nil, err
	}
	return s, nil
}

// retryDelay is capped exponential backoff with full jitter: the
// attempt'th delay is uniform in (0, min(base<<attempt, cap)]. Jitter
// decorrelates a fleet of agents retrying into the same recovering
// coordinator.
func retryDelay(base time.Duration, attempt int) time.Duration {
	const ceiling = 10 * time.Second
	d := base << uint(min(attempt, 20))
	if d <= 0 || d > ceiling {
		d = ceiling
	}
	return time.Duration(rand.Int63n(int64(d))) + time.Millisecond
}

// reconnectLocked (re)establishes the connection and replays Hello.
// Callers hold s.mu or own s exclusively.
func (s *session) reconnectLocked(ctx context.Context) error {
	var lastErr error
	for i := 0; i < s.cfg.attempts; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if i > 0 {
			select {
			case <-time.After(retryDelay(s.cfg.backoff, i-1)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		cli, err := dial(s.spec, s.cfg.timeout)
		if err != nil {
			lastErr = err
			s.logf("dist: dial %s: %v (attempt %d/%d)", s.spec, err, i+1, s.cfg.attempts)
			continue
		}
		cli.onStale = func() { s.cfg.metrics.Counter("dist.stale_replies").Inc() }
		// Hello is never served from the reply cache (it resets the
		// session), but it still carries a fresh request ID so a
		// duplicated welcome frame cannot be mistaken for the reply to a
		// later request on the new connection.
		s.hello.Session = s.nonce
		s.hello.Req = s.reqSeq.Add(1)
		welcome, err := cli.roundTrip(s.hello)
		if err != nil {
			cli.close()
			// A coordinator-level rejection of Hello is permanent
			// (wrong role, bad index); retrying cannot help.
			if welcome != nil {
				return err
			}
			lastErr = err
			s.logf("dist: hello %s: %v (attempt %d/%d)", s.spec, err, i+1, s.cfg.attempts)
			continue
		}
		if welcome.Type != MsgWelcome {
			cli.close()
			return fmt.Errorf("dist: expected welcome, got message type %d", welcome.Type)
		}
		s.cli = cli
		s.welcome = welcome
		s.gen++
		if i > 0 || s.gen > 1 {
			s.cfg.metrics.Counter("dist.reconnects").Inc()
		}
		return nil
	}
	return fmt.Errorf("dist: coordinator %s unreachable after %d attempts: %w", s.spec, s.cfg.attempts, lastErr)
}

func (s *session) logf(format string, args ...any) { s.cfg.logf(format, args...) }

// lastWelcome returns the most recent Hello response and the connection
// generation it came from.
func (s *session) lastWelcome() (*Message, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.welcome, s.gen
}

// call round-trips one request, stamping it with this session's nonce
// and the next request ID. On transport errors it reconnects (replaying
// Hello) and retries the request with the SAME ID under capped
// exponential backoff with jitter: if the original executed and only
// the reply was lost, the coordinator's reply cache returns the
// original verdict instead of executing twice. Coordinator MsgError
// replies are returned as errors with resp non-nil and are never
// retried.
func (s *session) call(ctx context.Context, req *Message) (*Message, error) {
	req.Session = s.nonce
	req.Req = s.reqSeq.Add(1)
	var lastErr error
	for attempt := 0; attempt < s.cfg.attempts; attempt++ {
		if attempt > 0 {
			s.cfg.metrics.Counter("dist.retries").Inc()
			select {
			case <-time.After(retryDelay(s.cfg.backoff, attempt-1)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		s.mu.Lock()
		cli, gen := s.cli, s.gen
		s.mu.Unlock()
		resp, err := cli.roundTrip(req)
		if err == nil || resp != nil {
			return resp, err
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		lastErr = err
		s.logf("dist: connection to %s lost (%v); reconnecting", s.spec, err)
		s.mu.Lock()
		if s.gen == gen {
			s.cli.close()
			if rerr := s.reconnectLocked(ctx); rerr != nil {
				s.mu.Unlock()
				return nil, rerr
			}
		}
		s.mu.Unlock()
	}
	return nil, fmt.Errorf("dist: request type %d to %s failed after %d attempts: %w", req.Type, s.spec, s.cfg.attempts, lastErr)
}

func (s *session) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cli != nil {
		s.cli.close()
	}
}

// AgentConfig configures a collection agent (RunAgent).
type AgentConfig struct {
	Coordinator string // address spec: host:port or unix:/path
	ID          string // stable identity; leases and eviction key on it
	// Parallel is how many cells run concurrently (default 1). All
	// parallel runners share one connection and one lease session.
	Parallel int
	// RedialAttempts/RedialBackoff govern connect, reconnect and RPC
	// retries (defaults 10 attempts, 500ms base for the capped
	// exponential backoff).
	RedialAttempts int
	RedialBackoff  time.Duration
	// RPCTimeout is the per-RPC deadline (default 10s, which is well
	// under the default lease TTL so a single stalled exchange turns
	// into a retry before the coordinator gives the work away; negative
	// disables deadlines).
	RPCTimeout time.Duration
	// Metrics, when non-nil, is snapshotted into every heartbeat — the
	// coordinator's Fleet view aggregates them across agents — and
	// counts this agent's dist.retries/reconnects/stale_replies.
	Metrics *telemetry.Registry
	Logf    func(format string, args ...any)
}

// RunAgent runs the collection agent loop against the coordinator:
// register, lease cells, collect each with collector.CollectCell, ship
// checksummed shards back, heartbeat throughout. Returns nil when the
// campaign completes, ErrRevoked when the session is evicted, and
// ctx.Err() when cancelled (signal drain).
func RunAgent(ctx context.Context, cfg AgentConfig) error {
	if cfg.ID == "" {
		return errors.New("dist: agent needs an ID")
	}
	if _, _, err := ParseAddr(cfg.Coordinator); err != nil {
		return err
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	timeout := cfg.RPCTimeout
	switch {
	case timeout == 0:
		timeout = 10 * time.Second
	case timeout < 0:
		timeout = 0
	}
	hello := &Message{Type: MsgHello, AgentID: cfg.ID, Role: "collect"}
	sess, err := connect(ctx, cfg.Coordinator, hello, sessionConfig{
		attempts: cfg.RedialAttempts, backoff: cfg.RedialBackoff,
		timeout: timeout, metrics: cfg.Metrics, logf: cfg.Logf,
	})
	if err != nil {
		return err
	}
	defer sess.close()
	welcome, _ := sess.lastWelcome()
	if welcome.Campaign == nil {
		return errors.New("dist: welcome carried no campaign")
	}
	campaign := *welcome.Campaign
	scens, err := campaign.Scenarios()
	if err != nil {
		return fmt.Errorf("dist: campaign from coordinator does not expand: %w", err)
	}
	byName := make(map[string]netem.Scenario, len(scens))
	for _, sc := range scens {
		byName[sc.Name] = sc
	}
	grCfg := campaign.GR().Fill()
	ttl := welcome.LeaseTTL
	if ttl <= 0 {
		ttl = 30 * time.Second
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		evictOnce sync.Once
		evicted   = make(chan struct{})
	)
	markEvicted := func() {
		evictOnce.Do(func() { close(evicted); cancel() })
	}

	// Heartbeats renew every lease this agent holds and ship the local
	// telemetry snapshot. TTL/3 gives two chances to miss before expiry.
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		tick := time.NewTicker(ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-tick.C:
			}
			resp, err := sess.call(runCtx, &Message{Type: MsgHeartbeat, AgentID: cfg.ID, Metrics: cfg.Metrics.Snapshot()})
			if err != nil {
				continue // work loop surfaces persistent failures
			}
			if resp.Verdict == VerdictEvicted {
				markEvicted()
				return
			}
		}
	}()

	errs := make(chan error, cfg.Parallel)
	for i := 0; i < cfg.Parallel; i++ {
		go func() { errs <- agentWorkLoop(runCtx, sess, cfg, byName, grCfg) }()
	}
	var firstErr error
	for i := 0; i < cfg.Parallel; i++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
			cancel() // one runner failing drains the rest
		}
	}
	cancel()
	hbWG.Wait()
	select {
	case <-evicted:
		return ErrRevoked
	default:
	}
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err() // nil on campaign completion, Canceled on drain
}

// agentWorkLoop is one runner: request a cell, run it, report, repeat.
func agentWorkLoop(ctx context.Context, sess *session, cfg AgentConfig, scens map[string]netem.Scenario, grCfg gr.Config) error {
	for {
		if err := ctx.Err(); err != nil {
			return nil // drain: RunAgent reports ctx state
		}
		resp, err := sess.call(ctx, &Message{Type: MsgRequestCell, AgentID: cfg.ID})
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		if resp.Verdict == VerdictEvicted {
			return ErrRevoked
		}
		switch resp.Type {
		case MsgCampaignDone:
			return nil
		case MsgWait:
			backoff := resp.Backoff
			if backoff <= 0 {
				backoff = 200 * time.Millisecond
			}
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
			}
		case MsgAssign:
			if err := runAssignedCell(ctx, sess, cfg, scens, grCfg, resp.Scheme, resp.Env); err != nil {
				return err
			}
		default:
			return fmt.Errorf("dist: unexpected reply type %d to cell request", resp.Type)
		}
	}
}

// runAssignedCell collects one leased cell and reports the outcome.
func runAssignedCell(ctx context.Context, sess *session, cfg AgentConfig, scens map[string]netem.Scenario, grCfg gr.Config, scheme, env string) error {
	cell := collector.CellKey{Scheme: scheme, Env: env}
	sc, ok := scens[env]
	if !ok {
		// The coordinator assigned a cell outside our expansion of its own
		// campaign — a version skew serious enough to fail loudly.
		return fmt.Errorf("dist: assigned unknown env %q (agent and coordinator expand the campaign differently)", env)
	}
	cfg.Metrics.Counter("agent.cells_started").Inc()
	tr, err := collector.CollectCell(ctx, scheme, sc, collector.Options{GR: grCfg})
	if err != nil {
		if ctx.Err() != nil {
			return nil // cancelled mid-cell: just drop the lease
		}
		cfg.Metrics.Counter("agent.cells_failed").Inc()
		cfg.Logf("dist: cell %s/%s failed: %v", scheme, env, err)
		resp, rerr := sess.call(ctx, &Message{Type: MsgCellFailed, AgentID: cfg.ID, Scheme: scheme, Env: env, Err: err.Error()})
		if rerr != nil {
			return rerr
		}
		if resp.Verdict == VerdictEvicted {
			return ErrRevoked
		}
		return nil
	}
	payload, sum, err := EncodeShard(&collector.Pool{GR: grCfg, Trajs: []collector.Trajectory{tr}})
	if err != nil {
		return err
	}
	cfg.Metrics.Counter("agent.shard_bytes").Add(int64(len(payload)))
	for attempt := 0; ; attempt++ {
		resp, err := sess.call(ctx, &Message{
			Type: MsgCellDone, AgentID: cfg.ID,
			Scheme: scheme, Env: env, Shard: payload, Checksum: sum,
		})
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		switch resp.Verdict {
		case VerdictOK:
			cfg.Metrics.Counter("agent.cells_done").Inc()
			return nil
		case VerdictDuplicate:
			// Someone else finished the cell while our lease lapsed; the
			// results are identical, so losing the race costs nothing.
			cfg.Metrics.Counter("agent.cells_duplicate").Inc()
			cfg.Logf("dist: cell %s/%s completed elsewhere; discarding local copy", cell.Scheme, cell.Env)
			return nil
		case VerdictRetry:
			if attempt >= 2 {
				return fmt.Errorf("dist: shard %s/%s rejected %d times (persistent corruption in transit)", scheme, env, attempt+1)
			}
			cfg.Metrics.Counter("agent.shard_retries").Inc()
		case VerdictEvicted:
			return ErrRevoked
		default:
			return fmt.Errorf("dist: unexpected verdict %q for completed cell", resp.Verdict)
		}
	}
}

// TrainWorkerConfig configures one data-parallel training worker
// (RunTrainWorker).
type TrainWorkerConfig struct {
	Coordinator string
	ID          string
	Index       int // worker slot [0, Workers)
	// Workers, when non-zero, is asserted against the coordinator's
	// worker count at Hello.
	Workers int
	// Pool is the training pool; the worker builds its dataset from it
	// with the mask the coordinator announces.
	Pool           *collector.Pool
	RedialAttempts int
	RedialBackoff  time.Duration
	// RPCTimeout bounds each exchange with the coordinator (0 disables —
	// the default, because a gradient submission legitimately blocks at
	// the barrier until the slowest worker arrives; set it only when an
	// outer supervisor restarts stuck workers).
	RPCTimeout time.Duration
	// Metrics, when non-nil, counts dist.retries/reconnects/stale_replies.
	Metrics *telemetry.Registry
	Logf    func(format string, args ...any)
	// OnStep, when non-nil, observes every applied step index.
	OnStep func(step int)
}

// RunTrainWorker runs one trainer worker: join, then loop compute
// shard → submit → install broadcast until the run reaches StepsTotal.
// The coordinator resolves every restart disagreement by resyncing, so
// the loop needs no special cases beyond "Targets present means Join".
func RunTrainWorker(ctx context.Context, cfg TrainWorkerConfig) error {
	if cfg.ID == "" {
		return errors.New("dist: worker needs an ID")
	}
	if _, _, err := ParseAddr(cfg.Coordinator); err != nil {
		return err
	}
	if cfg.Pool == nil {
		return errors.New("dist: worker needs a pool")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	hello := &Message{Type: MsgHello, AgentID: cfg.ID, Role: "train", WorkerIdx: cfg.Index, Workers: cfg.Workers}
	sess, err := connect(ctx, cfg.Coordinator, hello, sessionConfig{
		attempts: cfg.RedialAttempts, backoff: cfg.RedialBackoff,
		timeout: cfg.RPCTimeout, metrics: cfg.Metrics, logf: cfg.Logf,
	})
	if err != nil {
		return err
	}
	defer sess.close()
	welcome, _ := sess.lastWelcome()
	if welcome.CRR == nil {
		return errors.New("dist: welcome carried no training config")
	}
	ds := rl.BuildDataset(cfg.Pool, welcome.Mask)
	if ds.Transitions() == 0 {
		return errors.New("dist: worker pool has no usable transitions")
	}
	worker, err := rl.NewShardWorker(ds, *welcome.CRR, cfg.Index, welcome.Workers)
	if err != nil {
		return err
	}
	join := func(m *Message) error {
		return worker.Join(m.Step, m.Params, m.Targets, m.RNG)
	}
	if err := join(welcome); err != nil {
		return err
	}
	if welcome.Done {
		return nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		sh := worker.ComputeShard(ds)
		resp, err := sess.call(ctx, &Message{Type: MsgGrads, AgentID: cfg.ID, GradShard: &sh})
		if err != nil {
			if resp != nil && resp.Verdict == VerdictEvicted {
				// Another process took over this worker slot; our gradients
				// are fenced off for good. Exit distinctly so a supervisor
				// knows not to relaunch under the same identity.
				return ErrRevoked
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		if resp.Type != MsgTrainStep {
			return fmt.Errorf("dist: unexpected reply type %d to gradient shard", resp.Type)
		}
		// If the session re-helloed underneath this call (connection loss),
		// the retried shard still carried a valid step: the coordinator
		// either applied it or answered with a resync below.
		if resp.Targets != nil {
			// Full resync: the coordinator and this worker disagreed about
			// history (one of us restarted). Rewind to its state.
			cfg.Logf("dist: worker %d resynced to step %d", cfg.Index, resp.Step)
			if err := join(resp); err != nil {
				return err
			}
		} else {
			if err := worker.Sync(resp.Step, resp.Params); err != nil {
				return err
			}
		}
		if cfg.OnStep != nil {
			cfg.OnStep(resp.Step)
		}
		if resp.Done {
			return nil
		}
	}
}
