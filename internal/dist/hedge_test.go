package dist

import (
	"testing"
	"time"

	"sage/internal/collector"
)

// hedgeTracker builds a tracker with a fake clock and three recorded
// completion durations of ~1s each, so the p75 sample is primed.
func hedgeTracker(t *testing.T, cells []collector.CellKey, factor float64) (*Tracker, *time.Time) {
	t.Helper()
	tr := NewTracker(cells, time.Minute)
	now := time.Unix(0, 0)
	tr.SetClock(func() time.Time { return now })
	tr.SetHedge(factor)
	for i := 0; i < 3; i++ {
		cell, res := tr.Acquire("warmup")
		if res != AcquireGranted {
			t.Fatalf("warmup acquire %d = %v", i, res)
		}
		now = now.Add(time.Second)
		if v, _ := tr.Complete("warmup", cell); v != VerdictOK {
			t.Fatalf("warmup complete %d = %q", i, v)
		}
	}
	return tr, &now
}

// TestTrackerHedgesStraggler: with the fleet completing cells in ~1s, a
// cell leased for longer than factor × p75 is speculatively re-leased
// to an idle agent; the first completion wins and is counted a hedge
// win; the straggler's late copy is a duplicate.
func TestTrackerHedgesStraggler(t *testing.T) {
	cells := cellList(4)
	tr, now := hedgeTracker(t, cells, 3)

	cell, res := tr.Acquire("slow")
	if res != AcquireGranted {
		t.Fatalf("straggler acquire = %v", res)
	}
	// Not yet straggling: 3×1s threshold not crossed.
	*now = now.Add(2 * time.Second)
	tr.Renew("slow")
	if _, res := tr.Acquire("idle"); res != AcquireWait {
		t.Fatalf("premature hedge: %v", res)
	}
	// Straggling now. The idle agent gets a hedge on the same cell.
	*now = now.Add(2 * time.Second)
	tr.Renew("slow")
	hedged, res := tr.Acquire("idle")
	if res != AcquireHedged || hedged != cell {
		t.Fatalf("hedge = %v %v, want AcquireHedged on %v", hedged, res, cell)
	}
	// Only one hedge per cell: a second idle agent waits.
	if _, res := tr.Acquire("idle2"); res != AcquireWait {
		t.Fatalf("double hedge: %v", res)
	}
	// An agent never hedges its own cell even when it is the straggler.
	if _, res := tr.Acquire("slow"); res != AcquireWait {
		t.Fatalf("self-hedge: %v", res)
	}
	v, hedgeWin := tr.Complete("idle", hedged)
	if v != VerdictOK || !hedgeWin {
		t.Fatalf("hedge completion = %q hedgeWin=%v", v, hedgeWin)
	}
	if v, _ := tr.Complete("slow", cell); v != VerdictDuplicate {
		t.Fatalf("straggler late completion = %q", v)
	}
	if tr.Evicted("slow") {
		t.Fatal("losing a hedge race must not evict the straggler")
	}
}

// TestTrackerHedgeDisabledByDefault: without SetHedge, a straggling cell
// is never re-leased before its TTL.
func TestTrackerHedgeDisabledByDefault(t *testing.T) {
	tr := NewTracker(cellList(1), time.Minute)
	now := time.Unix(0, 0)
	tr.SetClock(func() time.Time { return now })
	tr.Acquire("slow")
	now = now.Add(50 * time.Second)
	tr.Renew("slow")
	if _, res := tr.Acquire("idle"); res != AcquireWait {
		t.Fatalf("hedge granted with hedging disabled: %v", res)
	}
}

// TestTrackerHedgeNeedsSamples: no hedge before three completion
// durations are on record, no matter how old the lease.
func TestTrackerHedgeNeedsSamples(t *testing.T) {
	tr := NewTracker(cellList(1), time.Minute)
	now := time.Unix(0, 0)
	tr.SetClock(func() time.Time { return now })
	tr.SetHedge(2)
	tr.Acquire("slow")
	now = now.Add(55 * time.Second)
	tr.Renew("slow")
	if _, res := tr.Acquire("idle"); res != AcquireWait {
		t.Fatalf("hedge granted without duration samples: %v", res)
	}
}

// TestTrackerHedgePromotionOnPrimaryExpiry: when the straggler's lease
// finally expires, the hedge holder becomes the cell's primary instead
// of the cell bouncing back to pending.
func TestTrackerHedgePromotionOnPrimaryExpiry(t *testing.T) {
	cells := cellList(4)
	tr, now := hedgeTracker(t, cells, 2)

	cell, _ := tr.Acquire("slow")
	*now = now.Add(5 * time.Second)
	tr.Renew("slow")
	if hedged, res := tr.Acquire("idle"); res != AcquireHedged || hedged != cell {
		t.Fatalf("hedge = %v %v", hedged, res)
	}
	// The straggler goes silent past its TTL; the hedge holder renews.
	for i := 0; i < 3; i++ {
		*now = now.Add(30 * time.Second)
		tr.Renew("idle")
	}
	if !tr.Evicted("slow") {
		t.Fatal("silent straggler not evicted")
	}
	if tr.Evicted("idle") {
		t.Fatal("renewing hedge holder evicted")
	}
	if v, hedgeWin := tr.Complete("idle", cell); v != VerdictOK || hedgeWin {
		// After promotion the hedge holder IS the primary; its win is a
		// normal completion, not a hedge win.
		t.Fatalf("promoted completion = %q hedgeWin=%v", v, hedgeWin)
	}
}

// TestTrackerHedgeHolderExpiry: a hedge holder that goes silent is
// evicted and the hedge slot reopens, while the renewing primary keeps
// its lease.
func TestTrackerHedgeHolderExpiry(t *testing.T) {
	cells := cellList(4)
	tr, now := hedgeTracker(t, cells, 2)

	cell, _ := tr.Acquire("slow")
	*now = now.Add(5 * time.Second)
	tr.Renew("slow")
	if _, res := tr.Acquire("idle"); res != AcquireHedged {
		t.Fatalf("hedge = %v", res)
	}
	// The hedge holder dies; the primary keeps heartbeating.
	for i := 0; i < 3; i++ {
		*now = now.Add(30 * time.Second)
		tr.Renew("slow")
	}
	if !tr.Evicted("idle") {
		t.Fatal("silent hedge holder not evicted")
	}
	if tr.Evicted("slow") {
		t.Fatal("renewing primary evicted")
	}
	// The slot reopened: another idle agent can hedge the still-slow cell.
	if hedged, res := tr.Acquire("idle2"); res != AcquireHedged || hedged != cell {
		t.Fatalf("re-hedge = %v %v", hedged, res)
	}
}
