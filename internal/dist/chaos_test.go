package dist

import (
	"bytes"
	"context"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sage/internal/chaos"
	"sage/internal/rl"
	"sage/internal/telemetry"
)

// chaosServe starts coord behind a fault-injecting listener and reports
// how many faults fired.
func chaosServe(t *testing.T, coord *Coordinator, spec chaos.FaultSpec) (addr string, faults *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr := chaos.NewTransport(spec)
	faults = &atomic.Int64{}
	tr.OnEvent = func(chaos.FaultEvent) { faults.Add(1) }
	go coord.Serve(tr.Listener(ln))
	return ln.Addr().String(), faults
}

// TestCampaignByteIdenticalUnderChaos is the tentpole acceptance test at
// the package level: a sharded campaign over a transport that drops
// connections and duplicates and truncates frames still produces a
// merged pool byte-identical to the fault-free single-process run, with
// the retries/reconnects/dedups visible in dist.* counters.
func TestCampaignByteIdenticalUnderChaos(t *testing.T) {
	dir := t.TempDir()
	coordMetrics := telemetry.NewRegistry()
	coord, err := NewCoordinator(CoordConfig{
		Campaign:     testCampaign(),
		ShardDir:     filepath.Join(dir, "shards"),
		ManifestPath: filepath.Join(dir, "manifest"),
		WALPath:      filepath.Join(dir, "wal"),
		LeaseTTL:     30 * time.Second,
		HedgeFactor:  4,
		Metrics:      coordMetrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Shutdown()
	addr, faults := chaosServe(t, coord, chaos.FaultSpec{
		Seed: 11, Drop: 0.05, Dup: 0.10, Trunc: 0.02,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	agentMetrics := []*telemetry.Registry{telemetry.NewRegistry(), telemetry.NewRegistry()}
	var wg sync.WaitGroup
	agentErrs := make(chan error, 2)
	for i, id := range []string{"agent-1", "agent-2"} {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			agentErrs <- RunAgent(ctx, AgentConfig{
				Coordinator: addr, ID: id, Parallel: 2,
				RedialAttempts: 30, RedialBackoff: 10 * time.Millisecond,
				RPCTimeout: 5 * time.Second,
				Metrics:    agentMetrics[i],
			})
		}(i, id)
	}
	if err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if err := <-agentErrs; err != nil {
			t.Fatalf("agent under chaos: %v", err)
		}
	}
	merged, err := coord.MergedPool()
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Failed) != 0 {
		t.Fatalf("failed cells under chaos: %v", merged.Failed)
	}
	if !bytes.Equal(savedBytes(t, merged), referencePoolBytes(t)) {
		t.Fatal("pool under chaos differs from fault-free single-process bytes")
	}
	if faults.Load() == 0 {
		t.Fatal("chaos transport injected no faults; the test exercised nothing")
	}
	var retries, reconnects float64
	for _, m := range agentMetrics {
		snap := m.Snapshot()
		retries += snap["dist.retries"]
		reconnects += snap["dist.reconnects"]
	}
	if retries == 0 && reconnects == 0 {
		t.Fatalf("no dist.retries/dist.reconnects recorded despite %d faults", faults.Load())
	}
	if got := coordMetrics.Snapshot()["dist.wal_records"]; got == 0 {
		t.Fatal("no dist.wal_records recorded")
	}
	t.Logf("chaos campaign: %d faults, %.0f retries, %.0f reconnects, %.0f dedup hits",
		faults.Load(), retries, reconnects, coordMetrics.Snapshot()["dist.dedup_hits"])
}

// TestTrainingBitwiseUnderChaos: data-parallel training over the same
// faulty transport converges to parameters bitwise-identical to the
// in-process run — lost replies resync, duplicated gradient frames are
// reconciled by the step barrier, dropped connections redial.
func TestTrainingBitwiseUnderChaos(t *testing.T) {
	cfg := trainCfg()
	pool := trainPool(t)
	ds := rl.BuildDataset(pool, nil)
	want, _ := referenceParams(t, ds, cfg, cfg.Steps)

	master := rl.NewCRR(ds, cfg)
	coord, err := NewCoordinator(CoordConfig{
		Train: &TrainConfig{Learner: master, Workers: cfg.Workers, StepsTotal: cfg.Steps},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Shutdown()
	addr, faults := chaosServe(t, coord, chaos.FaultSpec{
		Seed: 5, Drop: 0.04, Dup: 0.10, Trunc: 0.02,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	workerMetrics := []*telemetry.Registry{telemetry.NewRegistry(), telemetry.NewRegistry()}
	errs := make(chan error, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go func(i int) {
			errs <- RunTrainWorker(ctx, TrainWorkerConfig{
				Coordinator: addr, ID: "w" + string(rune('0'+i)), Index: i,
				Workers: cfg.Workers, Pool: pool,
				RedialAttempts: 30, RedialBackoff: 10 * time.Millisecond,
				Metrics: workerMetrics[i],
			})
		}(i)
	}
	for i := 0; i < cfg.Workers; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker under chaos: %v", err)
		}
	}
	if err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	assertParamsEqual(t, master.SnapshotParams(), want, "training under chaos")
	if faults.Load() == 0 {
		t.Fatal("chaos transport injected no faults; the test exercised nothing")
	}
}
