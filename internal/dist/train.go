package dist

import (
	"errors"
	"sync"

	"sage/internal/rl"
)

// trainState is the coordinator's side of data-parallel training: a step
// barrier over the master learner. Worker connection handlers call
// submit with their gradient shard; the handler that delivers the last
// missing shard applies the all-reduced step, everyone else blocks on
// the condition variable until the step lands, and each handler replies
// with the post-step parameter broadcast. A shard for any step other
// than the one in flight means the worker and coordinator disagree about
// history (one of them restarted) and gets a full resync instead.
type trainState struct {
	mu   sync.Mutex
	cond *sync.Cond
	cfg  *TrainConfig

	pending   map[int]rl.GradShard
	step      int // absolute applied-step index
	workerRNG []uint64
	// owners fences each worker slot to the agent that most recently
	// Hello'd it: when a supervisor replaces a wedged worker, the old
	// process's late gradients must not race the replacement's. Latest
	// registration wins; the fenced-off predecessor is told VerdictEvicted.
	owners []string
	done   bool
	closed bool
	onDone func()

	// failedStep/failErr mark a step whose apply errored, so handlers
	// blocked on that step's barrier wake with the error instead of
	// waiting for an advance that will never come.
	failedStep int
	failErr    string
}

func newTrainState(cfg *TrainConfig, onDone func()) (*trainState, error) {
	if cfg.Learner == nil {
		return nil, errors.New("dist: training config needs a learner")
	}
	if cfg.Workers < 2 {
		return nil, errors.New("dist: distributed training needs at least 2 workers")
	}
	if cfg.Learner.Cfg.Workers != cfg.Workers {
		return nil, errors.New("dist: learner Cfg.Workers must equal the training worker count")
	}
	if cfg.StepsTotal <= 0 {
		return nil, errors.New("dist: training needs a positive StepsTotal")
	}
	ts := &trainState{
		cfg:     cfg,
		pending: map[int]rl.GradShard{},
		step:    cfg.Learner.StepsDone(),
		owners:  make([]string, cfg.Workers),
		onDone:  onDone,
	}
	ts.cond = sync.NewCond(&ts.mu)
	// Sampler positions: a resumed checkpoint carries every worker's
	// stream; a fresh learner starts them at the canonical seeds.
	ts.workerRNG = cfg.Learner.WorkerRNGStates()
	if len(ts.workerRNG) != cfg.Workers {
		ts.workerRNG = rl.InitialWorkerRNGStates(cfg.Learner.Cfg)
	}
	if ts.step >= cfg.StepsTotal {
		ts.done = true
	}
	return ts, nil
}

func (ts *trainState) finished() bool {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.done
}

// abort wakes every blocked handler during coordinator shutdown. Workers
// see an error (not Done), so they keep redialing and resume against the
// restarted coordinator instead of exiting as if training completed.
func (ts *trainState) abort() {
	ts.mu.Lock()
	ts.closed = true
	ts.cond.Broadcast()
	ts.mu.Unlock()
}

// welcome answers a training worker's Hello with the full join state:
// config, mask, parameters, targets, step, and the worker's sampler
// position after the last applied step.
func (ts *trainState) welcome(req *Message) *Message {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if req.Workers != 0 && req.Workers != ts.cfg.Workers {
		return errMsg("worker expects %d workers, run has %d", req.Workers, ts.cfg.Workers)
	}
	if req.WorkerIdx < 0 || req.WorkerIdx >= ts.cfg.Workers {
		return errMsg("worker index %d out of range [0,%d)", req.WorkerIdx, ts.cfg.Workers)
	}
	ts.owners[req.WorkerIdx] = req.AgentID
	cfg := ts.cfg.Learner.Cfg
	return &Message{
		Type:       MsgWelcome,
		WorkerIdx:  req.WorkerIdx,
		Workers:    ts.cfg.Workers,
		Step:       ts.step,
		StepsTotal: ts.cfg.StepsTotal,
		CRR:        &cfg,
		Mask:       append([]int(nil), ts.cfg.Mask...),
		Params:     ts.cfg.Learner.SnapshotParams(),
		Targets:    ts.cfg.Learner.SnapshotTargets(),
		RNG:        ts.workerRNG[req.WorkerIdx],
		Done:       ts.done,
	}
}

// submit delivers one worker's gradient shard and blocks until the step
// it belongs to has been applied (by this handler or another), then
// returns the post-step broadcast.
func (ts *trainState) submit(agentID string, sh *rl.GradShard) *Message {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if sh.Worker < 0 || sh.Worker >= ts.cfg.Workers {
		return errMsg("shard worker index %d out of range [0,%d)", sh.Worker, ts.cfg.Workers)
	}
	if owner := ts.owners[sh.Worker]; agentID != "" && owner != "" && owner != agentID {
		m := errMsg("worker slot %d was taken over by %s; this session is fenced off", sh.Worker, owner)
		m.Verdict = VerdictEvicted
		return m
	}
	if ts.closed {
		return errMsg("coordinator draining")
	}
	if ts.done {
		return &Message{Type: MsgTrainStep, Step: ts.step, Done: true}
	}
	if sh.Step != ts.step+1 {
		// The worker computed against a different history than the run's
		// (worker restart recomputing an applied step, or coordinator
		// restart from an older checkpoint). Resync it to ours.
		return ts.resyncReplyLocked(sh.Worker)
	}
	// A duplicate for the in-flight step (worker reconnected mid-step)
	// recomputed the identical shard; overwriting is a no-op.
	ts.pending[sh.Worker] = *sh
	if len(ts.pending) == ts.cfg.Workers {
		return ts.applyLocked()
	}
	target := sh.Step
	for !ts.closed && ts.step < target && ts.failedStep != target {
		ts.cond.Wait()
	}
	if ts.closed {
		return errMsg("coordinator draining")
	}
	if ts.failedStep == target {
		return errMsg("apply step %d: %s", target, ts.failErr)
	}
	return ts.stepReplyLocked()
}

// applyLocked all-reduces the pending shards onto the master learner and
// advances the barrier. Called with ts.mu held by the handler that
// delivered the final shard.
func (ts *trainState) applyLocked() *Message {
	shards := make([]rl.GradShard, 0, ts.cfg.Workers)
	for i := 0; i < ts.cfg.Workers; i++ {
		shards = append(shards, ts.pending[i])
	}
	stats, err := ts.cfg.Learner.ApplyShards(shards)
	for k := range ts.pending {
		delete(ts.pending, k)
	}
	if err != nil {
		// A malformed shard set is unrecoverable for this round; wake the
		// waiters with the error instead of an advance.
		ts.failedStep = ts.step + 1
		ts.failErr = err.Error()
		ts.cond.Broadcast()
		return errMsg("apply step %d: %v", ts.step+1, err)
	}
	ts.failedStep, ts.failErr = 0, ""
	ts.step = ts.cfg.Learner.StepsDone()
	ts.workerRNG = append(ts.workerRNG[:0], ts.cfg.Learner.WorkerRNGStates()...)
	if ts.cfg.OnStep != nil {
		// Runs under the lock: checkpoints taken here see a consistent
		// (params, step, worker RNG) triple with no step racing past.
		ts.cfg.OnStep(stats)
	}
	if ts.step >= ts.cfg.StepsTotal {
		ts.done = true
		if ts.onDone != nil {
			// Off this goroutine: onDone (Coordinator.checkDone) re-enters
			// finished(), which needs ts.mu — held here.
			go ts.onDone()
		}
	}
	ts.cond.Broadcast()
	return ts.stepReplyLocked()
}

func (ts *trainState) stepReplyLocked() *Message {
	return &Message{
		Type:   MsgTrainStep,
		Step:   ts.step,
		Params: ts.cfg.Learner.SnapshotParams(),
		Done:   ts.done,
	}
}

// resyncReplyLocked is the full-state variant of the step reply: Targets
// and RNG are set, which tells the worker to Join (rewind) rather than
// Sync.
func (ts *trainState) resyncReplyLocked(idx int) *Message {
	m := ts.stepReplyLocked()
	m.Targets = ts.cfg.Learner.SnapshotTargets()
	m.RNG = ts.workerRNG[idx]
	return m
}
