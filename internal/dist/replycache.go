package dist

import "sync"

// replyCacheSize is how many replies the coordinator remembers per
// agent. An agent has at most a handful of requests outstanding (one
// per parallel runner plus the heartbeat), so a few dozen slots cover
// every retry window with room to spare.
const replyCacheSize = 32

// replyCache is the coordinator's bounded dedup/reply store, the server
// half of idempotent RPC. Collection requests are at-least-once on the
// wire: an agent that loses the reply retries the same (session, req)
// pair, possibly on a new connection. The cache replays the original
// reply instead of re-executing the handler, so a retried CellDone whose
// first execution landed gets its original VerdictOK back — not the
// VerdictDuplicate a re-execution would produce — and a retried
// RequestCell cannot leak a second lease.
//
// Entries are keyed (agent, session, req); a Hello-minted session nonce
// that differs from the cached one resets the agent's entry, so a
// restarted agent process (new nonce, req counter back at 1) never
// collides with its predecessor's replies.
type replyCache struct {
	mu     sync.Mutex
	agents map[string]*agentReplies
}

type agentReplies struct {
	session uint64
	replies map[uint64]Message
	order   []uint64 // insertion ring for bounded eviction
}

func newReplyCache() *replyCache {
	return &replyCache{agents: map[string]*agentReplies{}}
}

// cacheable reports whether req participates in reply dedup. Hello
// resets a session rather than joining one; Grads carries the training
// barrier's own step/resync reconciliation (already idempotent) and a
// parameter-sized reply not worth pinning in memory. Legacy requests
// without IDs fall back to execute-every-time.
func cacheable(req *Message) bool {
	if req.Req == 0 || req.Session == 0 || req.AgentID == "" {
		return false
	}
	switch req.Type {
	case MsgRequestCell, MsgHeartbeat, MsgCellDone, MsgCellFailed:
		return true
	}
	return false
}

// lookup returns a copy of the cached reply for req, if this exact
// (agent, session, req) was already served.
func (rc *replyCache) lookup(req *Message) (*Message, bool) {
	if !cacheable(req) {
		return nil, false
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	ar := rc.agents[req.AgentID]
	if ar == nil || ar.session != req.Session {
		return nil, false
	}
	cached, ok := ar.replies[req.Req]
	if !ok {
		return nil, false
	}
	cp := cached // copy: the cached message itself is never written again
	return &cp, true
}

// store records the reply just produced for req, evicting the agent's
// oldest entry past the per-agent bound.
func (rc *replyCache) store(req, resp *Message) {
	if !cacheable(req) {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	ar := rc.agents[req.AgentID]
	if ar == nil || ar.session != req.Session {
		ar = &agentReplies{session: req.Session, replies: map[uint64]Message{}}
		rc.agents[req.AgentID] = ar
	}
	if _, dup := ar.replies[req.Req]; !dup {
		ar.order = append(ar.order, req.Req)
	}
	ar.replies[req.Req] = *resp
	for len(ar.order) > replyCacheSize {
		delete(ar.replies, ar.order[0])
		ar.order = ar.order[1:]
	}
}
