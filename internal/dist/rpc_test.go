package dist

import (
	"context"
	"net"
	"path/filepath"
	"testing"
	"time"

	"sage/internal/collector"
	"sage/internal/telemetry"
)

// TestIdempotentCellDoneReplay: the coordinator replays its original
// verdict for a retried (session, req) CellDone — the retry after a
// lost reply must see VerdictOK, not the VerdictDuplicate a
// re-execution would produce — while a genuinely new session gets the
// truthful duplicate verdict.
func TestIdempotentCellDoneReplay(t *testing.T) {
	dir := t.TempDir()
	campaign := &Campaign{Schemes: []string{"cubic"}, Level: "tiny", SetIDurSec: 3, SetIIDur: 5, Seed: 1}
	metrics := telemetry.NewRegistry()
	coord, addr := startCoordinator(t, CoordConfig{
		Campaign: campaign, ShardDir: filepath.Join(dir, "shards"), ManifestPath: filepath.Join(dir, "manifest"),
		LeaseTTL: 10 * time.Second, Metrics: metrics,
	})
	defer coord.Shutdown()

	cli, err := dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.close()
	if _, err := cli.roundTrip(&Message{Type: MsgHello, AgentID: "a", Role: "collect", Session: 42, Req: 1}); err != nil {
		t.Fatal(err)
	}

	// A retried RequestCell must not leak a second lease: same req →
	// same cell, next req → a different one.
	first, err := cli.roundTrip(&Message{Type: MsgRequestCell, AgentID: "a", Session: 42, Req: 2})
	if err != nil || first.Type != MsgAssign {
		t.Fatalf("assign: %v %+v", err, first)
	}
	retry, err := cli.roundTrip(&Message{Type: MsgRequestCell, AgentID: "a", Session: 42, Req: 2})
	if err != nil || retry.Type != MsgAssign || retry.Env != first.Env || retry.Scheme != first.Scheme {
		t.Fatalf("retried assign = %+v, want replay of %+v", retry, first)
	}
	second, err := cli.roundTrip(&Message{Type: MsgRequestCell, AgentID: "a", Session: 42, Req: 3})
	if err != nil || second.Type != MsgAssign || second.Env == first.Env {
		t.Fatalf("fresh request after replay: %v %+v", err, second)
	}

	scens, _ := campaign.Scenarios()
	sc := scens[0]
	for _, s := range scens {
		if s.Name == first.Env {
			sc = s
		}
	}
	tr, err := collector.CollectCell(context.Background(), first.Scheme, sc, collector.Options{GR: campaign.GR()})
	if err != nil {
		t.Fatal(err)
	}
	payload, sum, err := EncodeShard(&collector.Pool{GR: campaign.GR().Fill(), Trajs: []collector.Trajectory{tr}})
	if err != nil {
		t.Fatal(err)
	}
	done := &Message{Type: MsgCellDone, AgentID: "a", Session: 42, Req: 4, Scheme: first.Scheme, Env: first.Env, Shard: payload, Checksum: sum}
	ack, err := cli.roundTrip(done)
	if err != nil || ack.Verdict != VerdictOK {
		t.Fatalf("cell done: %v %+v", err, ack)
	}
	replay, err := cli.roundTrip(done)
	if err != nil || replay.Verdict != VerdictOK {
		t.Fatalf("retried cell done = %+v, want replayed VerdictOK", replay)
	}
	if replay.Req != 4 {
		t.Fatalf("replayed reply echoes req %d, want 4", replay.Req)
	}
	if got := metrics.Snapshot()["dist.dedup_hits"]; got < 2 {
		t.Fatalf("dist.dedup_hits = %v, want ≥ 2", got)
	}
	if done := coord.Tracker().DoneCells(); len(done) != 1 {
		t.Fatalf("done cells = %v, want exactly one", done)
	}

	// A restarted agent process (new session nonce, req counter reset)
	// must NOT hit the old session's cache: its duplicate completion is
	// reported truthfully.
	if _, err := cli.roundTrip(&Message{Type: MsgHello, AgentID: "a", Role: "collect", Session: 43, Req: 1}); err != nil {
		t.Fatal(err)
	}
	dup, err := cli.roundTrip(&Message{Type: MsgCellDone, AgentID: "a", Session: 43, Req: 4, Scheme: first.Scheme, Env: first.Env, Shard: payload, Checksum: sum})
	if err != nil || dup.Verdict != VerdictDuplicate {
		t.Fatalf("new-session duplicate = %+v, want VerdictDuplicate", dup)
	}
}

// TestRoundTripDiscardsStaleReplies: a duplicated reply frame left over
// from an earlier exchange must not be taken as the answer to the
// current request.
func TestRoundTripDiscardsStaleReplies(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	stale := 0
	cli := &client{conn: a, onStale: func() { stale++ }}
	go func() {
		req, err := readMsg(b)
		if err != nil {
			return
		}
		// A leftover duplicate of reply 6, then the real reply.
		writeMsg(b, &Message{Type: MsgHeartbeatAck, Verdict: VerdictEvicted, Req: 6})
		writeMsg(b, &Message{Type: MsgHeartbeatAck, Verdict: VerdictOK, Req: req.Req})
	}()
	resp, err := cli.roundTrip(&Message{Type: MsgHeartbeat, AgentID: "a", Session: 1, Req: 7})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Req != 7 || resp.Verdict != VerdictOK {
		t.Fatalf("accepted stale reply: %+v", resp)
	}
	if stale != 1 {
		t.Fatalf("stale count = %d, want 1", stale)
	}
}

// TestRoundTripDeadline: a stalled coordinator surfaces as a timeout
// error instead of blocking the caller forever.
func TestRoundTripDeadline(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	cli := &client{conn: a, timeout: 50 * time.Millisecond}
	go readMsg(b) // swallow the request, never reply
	start := time.Now()
	_, err := cli.roundTrip(&Message{Type: MsgHeartbeat, AgentID: "a", Session: 1, Req: 1})
	if err == nil {
		t.Fatal("stalled server did not time the call out")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	nerr, ok := err.(net.Error)
	if !ok || !nerr.Timeout() {
		t.Fatalf("error %v is not a timeout", err)
	}
}

// TestReplyCacheBounded: the per-agent cache holds the most recent
// replyCacheSize entries and evicts the oldest.
func TestReplyCacheBounded(t *testing.T) {
	rc := newReplyCache()
	for i := 1; i <= replyCacheSize+5; i++ {
		req := &Message{Type: MsgHeartbeat, AgentID: "a", Session: 9, Req: uint64(i)}
		rc.store(req, &Message{Type: MsgHeartbeatAck, Req: uint64(i)})
	}
	if _, ok := rc.lookup(&Message{Type: MsgHeartbeat, AgentID: "a", Session: 9, Req: 1}); ok {
		t.Fatal("oldest entry survived past the bound")
	}
	got, ok := rc.lookup(&Message{Type: MsgHeartbeat, AgentID: "a", Session: 9, Req: replyCacheSize + 5})
	if !ok || got.Req != replyCacheSize+5 {
		t.Fatal("newest entry missing")
	}
	// Requests without IDs and Hello never cache.
	rc.store(&Message{Type: MsgHeartbeat, AgentID: "a", Session: 9}, &Message{})
	if _, ok := rc.lookup(&Message{Type: MsgHeartbeat, AgentID: "a", Session: 9}); ok {
		t.Fatal("legacy request cached")
	}
	rc.store(&Message{Type: MsgHello, AgentID: "a", Session: 9, Req: 99}, &Message{})
	if _, ok := rc.lookup(&Message{Type: MsgHello, AgentID: "a", Session: 9, Req: 99}); ok {
		t.Fatal("hello cached")
	}
}
