package dist

import (
	"encoding/json"
	"sync"

	"sage/internal/collector"
	"sage/internal/safeio"
	"sage/internal/telemetry"
)

// The coordinator's write-ahead log extends the "any agent may die"
// guarantee to the coordinator itself. The manifest and shard files
// already make *completed* work durable; the WAL makes *in-flight*
// state durable too: every lease grant, terminal cell outcome, and
// applied training step is appended (checksummed, fsynced — see
// safeio.AppendLog) before or immediately after the action it records.
// A restarted coordinator replays the log, re-adopts leases whose
// agents may still be alive (their next heartbeat renews; their
// in-flight shard lands without re-collection), and knows the last
// committed barrier epoch.
//
// WAL record, one JSON object per log line:
//
//	{"t":"grant","agent":"a1","scheme":"cubic","env":"wired-12"}
//	{"t":"done","agent":"a1","scheme":"cubic","env":"wired-12"}
//	{"t":"fail","agent":"a1","scheme":"cubic","env":"wired-12","err":"..."}
//	{"t":"epoch","step":41}
type walRecord struct {
	T      string `json:"t"`
	Agent  string `json:"agent,omitempty"`
	Scheme string `json:"scheme,omitempty"`
	Env    string `json:"env,omitempty"`
	Step   int    `json:"step,omitempty"`
	Err    string `json:"err,omitempty"`
}

func (r walRecord) cell() collector.CellKey {
	return collector.CellKey{Scheme: r.Scheme, Env: r.Env}
}

// wal serializes appends from concurrent connection handlers. All
// methods are nil-receiver safe (WAL disabled) and treat write errors
// as soft: losing the log costs only recovery speed after a future
// crash, never correctness, so a full disk degrades durability instead
// of killing the campaign. Errors are logged and counted.
type wal struct {
	mu      sync.Mutex
	log     *safeio.AppendLog
	metrics *telemetry.Registry
	logf    func(string, ...any)
}

// openWAL opens the log at path, replaying intact records. The returned
// records drive lease re-adoption and epoch recovery in NewCoordinator.
func openWAL(path string, metrics *telemetry.Registry, logf func(string, ...any)) (*wal, []walRecord, error) {
	var recs []walRecord
	log, _, err := safeio.OpenAppendLog(path, func(payload []byte) {
		var rec walRecord
		if json.Unmarshal(payload, &rec) == nil {
			recs = append(recs, rec)
		}
	})
	if err != nil {
		return nil, nil, err
	}
	return &wal{log: log, metrics: metrics, logf: logf}, recs, nil
}

func (w *wal) append(rec walRecord) {
	if w == nil {
		return
	}
	payload, err := json.Marshal(rec)
	if err == nil {
		w.mu.Lock()
		err = w.log.Append(payload)
		w.mu.Unlock()
	}
	if err != nil {
		w.metrics.Counter("dist.wal_errors").Inc()
		w.logf("coord: wal append %q: %v", rec.T, err)
		return
	}
	w.metrics.Counter("dist.wal_records").Inc()
}

func (w *wal) close() {
	if w != nil {
		w.log.Close()
	}
}
