package dist

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"sage/internal/collector"
	"sage/internal/telemetry"
)

// TestWALReadoptsInFlightLease: a coordinator that crashes after
// granting a lease but before the shard lands re-adopts the lease from
// its WAL on restart — the agent's in-flight work is still expected, a
// third party has to wait, and the original agent's completion lands as
// VerdictOK without re-collection.
func TestWALReadoptsInFlightLease(t *testing.T) {
	dir := t.TempDir()
	campaign := &Campaign{Schemes: []string{"cubic"}, Level: "tiny", SetIDurSec: 3, SetIIDur: 5, Seed: 1}
	base := CoordConfig{
		Campaign: campaign, ShardDir: filepath.Join(dir, "shards"),
		ManifestPath: filepath.Join(dir, "manifest"), WALPath: filepath.Join(dir, "wal"),
		LeaseTTL: 10 * time.Second,
	}
	coord1, addr := startCoordinator(t, base)
	cli, err := dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.roundTrip(&Message{Type: MsgHello, AgentID: "worker", Role: "collect", Session: 7, Req: 1}); err != nil {
		t.Fatal(err)
	}
	assign, err := cli.roundTrip(&Message{Type: MsgRequestCell, AgentID: "worker", Session: 7, Req: 2})
	if err != nil || assign.Type != MsgAssign {
		t.Fatalf("assign: %v %+v", err, assign)
	}
	cli.close()
	coord1.Shutdown() // crash: no CellDone ever arrived

	resumeCfg := base
	resumeCfg.Resume = true
	resumeCfg.Metrics = telemetry.NewRegistry()
	coord2, addr2 := startCoordinator(t, resumeCfg)
	defer coord2.Shutdown()
	if got := resumeCfg.Metrics.Snapshot()["dist.wal_replayed"]; got < 1 {
		t.Fatalf("dist.wal_replayed = %v, want ≥ 1", got)
	}
	if _, leased, _, _ := coord2.Tracker().Counts(); leased != 1 {
		t.Fatalf("re-adopted leases = %d, want 1", leased)
	}

	// A different agent never receives the re-adopted cell: draining the
	// pending set hands out every OTHER cell, then waits.
	other, err := dial(addr2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer other.close()
	if _, err := other.roundTrip(&Message{Type: MsgHello, AgentID: "other", Role: "collect", Session: 9, Req: 1}); err != nil {
		t.Fatal(err)
	}
	for req := uint64(2); ; req++ {
		resp, err := other.roundTrip(&Message{Type: MsgRequestCell, AgentID: "other", Session: 9, Req: req})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Type == MsgWait {
			break
		}
		if resp.Type != MsgAssign {
			t.Fatalf("drain reply = %+v", resp)
		}
		if resp.Scheme == assign.Scheme && resp.Env == assign.Env {
			t.Fatalf("re-adopted cell %s/%s leaked to another agent", resp.Scheme, resp.Env)
		}
	}

	// ...while the original agent's in-flight completion lands first try.
	scens, _ := campaign.Scenarios()
	sc := scens[0]
	for _, s := range scens {
		if s.Name == assign.Env {
			sc = s
		}
	}
	tr, err := collector.CollectCell(context.Background(), assign.Scheme, sc, collector.Options{GR: campaign.GR()})
	if err != nil {
		t.Fatal(err)
	}
	payload, sum, err := EncodeShard(&collector.Pool{GR: campaign.GR().Fill(), Trajs: []collector.Trajectory{tr}})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := dial(addr2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer orig.close()
	if _, err := orig.roundTrip(&Message{Type: MsgHello, AgentID: "worker", Role: "collect", Session: 8, Req: 1}); err != nil {
		t.Fatal(err)
	}
	ack, err := orig.roundTrip(&Message{Type: MsgCellDone, AgentID: "worker", Session: 8, Req: 2,
		Scheme: assign.Scheme, Env: assign.Env, Shard: payload, Checksum: sum})
	if err != nil || ack.Verdict != VerdictOK {
		t.Fatalf("in-flight completion after restart = %v %+v", err, ack)
	}
	if got := resumeCfg.Metrics.Snapshot()["dist.wal_records"]; got < 1 {
		t.Fatalf("dist.wal_records = %v, want ≥ 1 (done record)", got)
	}
}

// TestWALDoneRecordPreventsReadoption: a cell whose grant is followed by
// a done record is not re-leased — the manifest/shard path already owns
// completed work; the WAL only resurrects genuinely in-flight leases.
func TestWALDoneRecordPreventsReadoption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	w, recs, err := openWAL(path, nil, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh wal replayed %v", recs)
	}
	cell := collector.CellKey{Scheme: "cubic", Env: "x"}
	w.append(walRecord{T: "grant", Agent: "a", Scheme: cell.Scheme, Env: cell.Env})
	w.append(walRecord{T: "done", Agent: "a", Scheme: cell.Scheme, Env: cell.Env})
	w.append(walRecord{T: "grant", Agent: "b", Scheme: "cubic", Env: "y"})
	w.append(walRecord{T: "epoch", Step: 5})
	w.close()

	w2, recs, err := openWAL(path, nil, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	tracker := NewTracker([]collector.CellKey{cell, {Scheme: "cubic", Env: "y"}}, time.Minute)
	c := &Coordinator{cfg: CoordConfig{Logf: func(string, ...any) {}}, tracker: tracker}
	c.replayWAL(recs)
	if pending, leased, _, _ := tracker.Counts(); pending != 1 || leased != 1 {
		t.Fatalf("after replay: pending=%d leased=%d (want the done cell pending, the granted one leased)", pending, leased)
	}
	if c.LastEpoch() != 5 {
		t.Fatalf("LastEpoch = %d, want 5", c.LastEpoch())
	}
}
