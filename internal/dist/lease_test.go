package dist

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"sage/internal/collector"
	"sage/internal/telemetry"
)

func cellList(n int) []collector.CellKey {
	out := make([]collector.CellKey, n)
	for i := range out {
		out[i] = collector.CellKey{Scheme: "cubic", Env: string(rune('a' + i))}
	}
	return out
}

func TestTrackerAcquireRenewComplete(t *testing.T) {
	tr := NewTracker(cellList(2), time.Minute)
	c1, res := tr.Acquire("a1")
	if res != AcquireGranted {
		t.Fatalf("acquire = %v", res)
	}
	c2, res := tr.Acquire("a1")
	if res != AcquireGranted || c2 == c1 {
		t.Fatalf("second acquire = %v (%v)", res, c2)
	}
	if _, res := tr.Acquire("a2"); res != AcquireWait {
		t.Fatalf("exhausted acquire = %v, want wait", res)
	}
	if v, _ := tr.Complete("a1", c1); v != VerdictOK {
		t.Fatalf("complete = %q", v)
	}
	if v, _ := tr.Complete("a1", c1); v != VerdictDuplicate {
		t.Fatalf("re-complete = %q", v)
	}
	tr.Complete("a1", c2)
	if !tr.Done() {
		t.Fatal("all cells done but tracker disagrees")
	}
	if _, res := tr.Acquire("a2"); res != AcquireComplete {
		t.Fatalf("post-completion acquire = %v", res)
	}
}

// TestTrackerLeaseExpiry: an un-renewed lease returns its cell to the
// pending set and evicts the holder; renewal prevents it; a fresh
// Register clears the eviction.
func TestTrackerLeaseExpiry(t *testing.T) {
	tr := NewTracker(cellList(1), 10*time.Second)
	now := time.Unix(0, 0)
	tr.SetClock(func() time.Time { return now })

	cell, res := tr.Acquire("slow")
	if res != AcquireGranted {
		t.Fatalf("acquire = %v", res)
	}
	now = now.Add(8 * time.Second)
	tr.Renew("slow")
	now = now.Add(8 * time.Second) // 16s total, but renewed at 8s
	if tr.Evicted("slow") {
		t.Fatal("renewed agent evicted")
	}
	now = now.Add(11 * time.Second) // past the renewed deadline
	cell2, res := tr.Acquire("fast")
	if res != AcquireGranted || cell2 != cell {
		t.Fatalf("expired cell not reassigned: %v %v", cell2, res)
	}
	if !tr.Evicted("slow") {
		t.Fatal("delinquent agent not evicted")
	}
	tr.Register("slow")
	if tr.Evicted("slow") {
		t.Fatal("re-registered agent still evicted")
	}
}

// TestTrackerDuplicateCompletionFromRevivedAgent: the lapsed holder's
// late result is reported as duplicate once someone else completed the
// cell, and first-completion-wins even when the lapsed holder reports
// first.
func TestTrackerDuplicateCompletionFromRevivedAgent(t *testing.T) {
	tr := NewTracker(cellList(1), time.Second)
	now := time.Unix(0, 0)
	tr.SetClock(func() time.Time { return now })

	cell, _ := tr.Acquire("zombie")
	now = now.Add(2 * time.Second)
	if c2, res := tr.Acquire("healthy"); res != AcquireGranted || c2 != cell {
		t.Fatalf("reassignment failed: %v %v", c2, res)
	}
	// The zombie finishes first anyway — deterministic cells make its
	// result correct, so it wins.
	if v, _ := tr.Complete("zombie", cell); v != VerdictOK {
		t.Fatalf("first completion = %q", v)
	}
	if v, _ := tr.Complete("healthy", cell); v != VerdictDuplicate {
		t.Fatalf("second completion = %q", v)
	}
	if pending, leased, done, failed := tr.Counts(); done != 1 || pending+leased+failed != 0 {
		t.Fatalf("counts = %d %d %d %d", pending, leased, done, failed)
	}
}

// TestTrackerReleaseIsNotEviction: a clean disconnect returns cells to
// pending without branding the agent.
func TestTrackerReleaseIsNotEviction(t *testing.T) {
	tr := NewTracker(cellList(2), time.Minute)
	tr.Acquire("a1")
	tr.Release("a1")
	if tr.Evicted("a1") {
		t.Fatal("released agent evicted")
	}
	if pending, leased, _, _ := tr.Counts(); pending != 2 || leased != 0 {
		t.Fatalf("counts after release: pending=%d leased=%d", pending, leased)
	}
}

func TestTrackerFailAndFailures(t *testing.T) {
	cells := cellList(3)
	tr := NewTracker(cells, time.Minute)
	tr.Acquire("a")
	tr.Acquire("a")
	tr.Acquire("a")
	tr.Fail("a", cells[2], "panic: boom")
	tr.Fail("a", cells[0], "panic: bust")
	tr.Complete("a", cells[1])
	if !tr.Done() {
		t.Fatal("terminal states not recognized")
	}
	fs := tr.Failures()
	if len(fs) != 2 || fs[0].Env > fs[1].Env {
		t.Fatalf("failures = %v (want 2, sorted)", fs)
	}
	// A failure reported after another agent completed the cell is a
	// duplicate, not a campaign failure.
	tr2 := NewTracker(cells[:1], time.Minute)
	tr2.Acquire("a")
	tr2.Complete("a", cells[0])
	if v := tr2.Fail("b", cells[0], "x"); v != VerdictDuplicate {
		t.Fatalf("late failure verdict = %q", v)
	}
}

func TestTrackerMarkDoneResume(t *testing.T) {
	cells := cellList(2)
	tr := NewTracker(cells, time.Minute)
	tr.MarkDone(cells[0])
	c, res := tr.Acquire("a")
	if res != AcquireGranted || c != cells[1] {
		t.Fatalf("resume acquire = %v %v", c, res)
	}
	if done := tr.DoneCells(); len(done) != 1 || done[0] != cells[0] {
		t.Fatalf("done cells = %v", done)
	}
}

// TestTrackerLeaseBoundaryExactTTL pins the eviction boundary: the
// lease interval is closed — a heartbeat or completion landing at
// exactly granted-time + TTL still counts, and only strictly-after is
// delinquent. (An earlier draft evicted at >= TTL, which made agents
// whose heartbeat period equals the TTL flap; this test keeps the
// boundary honest.)
func TestTrackerLeaseBoundaryExactTTL(t *testing.T) {
	tr := NewTracker(cellList(1), 10*time.Second)
	now := time.Unix(0, 0)
	tr.SetClock(func() time.Time { return now })
	cell, _ := tr.Acquire("edge")

	// Heartbeat at exactly the deadline renews.
	now = now.Add(10 * time.Second)
	tr.Renew("edge")
	if tr.Evicted("edge") {
		t.Fatal("agent heartbeating exactly at TTL evicted")
	}
	if _, res := tr.Acquire("poacher"); res != AcquireWait {
		t.Fatalf("boundary heartbeat did not hold the lease: %v", res)
	}
	// Completion at exactly the renewed deadline is the holder's win.
	now = now.Add(10 * time.Second)
	if v, _ := tr.Complete("edge", cell); v != VerdictOK {
		t.Fatalf("completion at exact TTL = %q", v)
	}
	if tr.Evicted("edge") {
		t.Fatal("agent completing exactly at TTL evicted")
	}
}

// TestTrackerLeaseBoundaryJustPastTTL: one nanosecond past the deadline
// the sweep has already run — a renewal arriving then cannot resurrect
// the lease, and the agent is evicted.
func TestTrackerLeaseBoundaryJustPastTTL(t *testing.T) {
	tr := NewTracker(cellList(1), 10*time.Second)
	now := time.Unix(0, 0)
	tr.SetClock(func() time.Time { return now })
	tr.Acquire("late")
	now = now.Add(10*time.Second + time.Nanosecond)
	tr.Renew("late")
	if !tr.Evicted("late") {
		t.Fatal("agent renewing past TTL not evicted")
	}
	if pending, leased, _, _ := tr.Counts(); pending != 1 || leased != 0 {
		t.Fatalf("expired cell not reclaimed: pending=%d leased=%d", pending, leased)
	}
}

// TestCoordinatorRejectsEvictedShardDone drives the eviction boundary
// end to end: an agent whose lease lapsed loses the race to a healthy
// one, and its late CellDone is rejected with VerdictEvicted at the
// coordinator — the shard is never merged a second time.
func TestCoordinatorRejectsEvictedShardDone(t *testing.T) {
	dir := t.TempDir()
	campaign := &Campaign{Schemes: []string{"cubic"}, Level: "tiny", SetIDurSec: 3, SetIIDur: 5, Seed: 1}
	metrics := telemetry.NewRegistry()
	coord, addr := startCoordinator(t, CoordConfig{
		Campaign: campaign, ShardDir: filepath.Join(dir, "shards"),
		ManifestPath: filepath.Join(dir, "manifest"),
		LeaseTTL:     10 * time.Second, Metrics: metrics,
	})
	defer coord.Shutdown()
	now := time.Unix(0, 0)
	coord.Tracker().SetClock(func() time.Time { return now })

	slow, err := dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.close()
	if _, err := slow.roundTrip(&Message{Type: MsgHello, AgentID: "slow", Role: "collect", Session: 1, Req: 1}); err != nil {
		t.Fatal(err)
	}
	assign, err := slow.roundTrip(&Message{Type: MsgRequestCell, AgentID: "slow", Session: 1, Req: 2})
	if err != nil || assign.Type != MsgAssign {
		t.Fatalf("assign: %v %+v", err, assign)
	}

	// The slow agent goes silent past its TTL; its cell returns to the
	// head of the pending order, so the healthy agent picks it up.
	now = now.Add(10*time.Second + time.Millisecond)
	fast, err := dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.close()
	if _, err := fast.roundTrip(&Message{Type: MsgHello, AgentID: "fast", Role: "collect", Session: 2, Req: 1}); err != nil {
		t.Fatal(err)
	}
	reassign, err := fast.roundTrip(&Message{Type: MsgRequestCell, AgentID: "fast", Session: 2, Req: 2})
	if err != nil || reassign.Type != MsgAssign || reassign.Scheme != assign.Scheme || reassign.Env != assign.Env {
		t.Fatalf("expired cell not reassigned first: %v %+v", err, reassign)
	}

	scens, _ := campaign.Scenarios()
	sc := scens[0]
	for _, s := range scens {
		if s.Name == assign.Env {
			sc = s
		}
	}
	tr, err := collector.CollectCell(context.Background(), assign.Scheme, sc, collector.Options{GR: campaign.GR()})
	if err != nil {
		t.Fatal(err)
	}
	payload, sum, err := EncodeShard(&collector.Pool{GR: campaign.GR().Fill(), Trajs: []collector.Trajectory{tr}})
	if err != nil {
		t.Fatal(err)
	}
	done := &Message{Type: MsgCellDone, AgentID: "fast", Session: 2, Req: 3,
		Scheme: assign.Scheme, Env: assign.Env, Shard: payload, Checksum: sum}
	if ack, err := fast.roundTrip(done); err != nil || ack.Verdict != VerdictOK {
		t.Fatalf("healthy completion = %v %+v", err, ack)
	}

	// The evicted agent's late copy: rejected outright, not merged, not
	// even counted a duplicate — the agent must re-Hello before anything
	// it says is trusted again.
	late := &Message{Type: MsgCellDone, AgentID: "slow", Session: 1, Req: 3,
		Scheme: assign.Scheme, Env: assign.Env, Shard: payload, Checksum: sum}
	ack, err := slow.roundTrip(late)
	if err != nil || ack.Verdict != VerdictEvicted {
		t.Fatalf("evicted late CellDone = %v %+v, want VerdictEvicted", err, ack)
	}
	snap := metrics.Snapshot()
	if snap["coord.evicted_rejections"] < 1 {
		t.Fatalf("coord.evicted_rejections = %v, want >= 1", snap["coord.evicted_rejections"])
	}
	if snap["coord.cells_done"] != 1 {
		t.Fatalf("coord.cells_done = %v after late duplicate, want exactly 1", snap["coord.cells_done"])
	}
}
