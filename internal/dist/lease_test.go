package dist

import (
	"testing"
	"time"

	"sage/internal/collector"
)

func cellList(n int) []collector.CellKey {
	out := make([]collector.CellKey, n)
	for i := range out {
		out[i] = collector.CellKey{Scheme: "cubic", Env: string(rune('a' + i))}
	}
	return out
}

func TestTrackerAcquireRenewComplete(t *testing.T) {
	tr := NewTracker(cellList(2), time.Minute)
	c1, res := tr.Acquire("a1")
	if res != AcquireGranted {
		t.Fatalf("acquire = %v", res)
	}
	c2, res := tr.Acquire("a1")
	if res != AcquireGranted || c2 == c1 {
		t.Fatalf("second acquire = %v (%v)", res, c2)
	}
	if _, res := tr.Acquire("a2"); res != AcquireWait {
		t.Fatalf("exhausted acquire = %v, want wait", res)
	}
	if v := tr.Complete("a1", c1); v != VerdictOK {
		t.Fatalf("complete = %q", v)
	}
	if v := tr.Complete("a1", c1); v != VerdictDuplicate {
		t.Fatalf("re-complete = %q", v)
	}
	tr.Complete("a1", c2)
	if !tr.Done() {
		t.Fatal("all cells done but tracker disagrees")
	}
	if _, res := tr.Acquire("a2"); res != AcquireComplete {
		t.Fatalf("post-completion acquire = %v", res)
	}
}

// TestTrackerLeaseExpiry: an un-renewed lease returns its cell to the
// pending set and evicts the holder; renewal prevents it; a fresh
// Register clears the eviction.
func TestTrackerLeaseExpiry(t *testing.T) {
	tr := NewTracker(cellList(1), 10*time.Second)
	now := time.Unix(0, 0)
	tr.SetClock(func() time.Time { return now })

	cell, res := tr.Acquire("slow")
	if res != AcquireGranted {
		t.Fatalf("acquire = %v", res)
	}
	now = now.Add(8 * time.Second)
	tr.Renew("slow")
	now = now.Add(8 * time.Second) // 16s total, but renewed at 8s
	if tr.Evicted("slow") {
		t.Fatal("renewed agent evicted")
	}
	now = now.Add(11 * time.Second) // past the renewed deadline
	cell2, res := tr.Acquire("fast")
	if res != AcquireGranted || cell2 != cell {
		t.Fatalf("expired cell not reassigned: %v %v", cell2, res)
	}
	if !tr.Evicted("slow") {
		t.Fatal("delinquent agent not evicted")
	}
	tr.Register("slow")
	if tr.Evicted("slow") {
		t.Fatal("re-registered agent still evicted")
	}
}

// TestTrackerDuplicateCompletionFromRevivedAgent: the lapsed holder's
// late result is reported as duplicate once someone else completed the
// cell, and first-completion-wins even when the lapsed holder reports
// first.
func TestTrackerDuplicateCompletionFromRevivedAgent(t *testing.T) {
	tr := NewTracker(cellList(1), time.Second)
	now := time.Unix(0, 0)
	tr.SetClock(func() time.Time { return now })

	cell, _ := tr.Acquire("zombie")
	now = now.Add(2 * time.Second)
	if c2, res := tr.Acquire("healthy"); res != AcquireGranted || c2 != cell {
		t.Fatalf("reassignment failed: %v %v", c2, res)
	}
	// The zombie finishes first anyway — deterministic cells make its
	// result correct, so it wins.
	if v := tr.Complete("zombie", cell); v != VerdictOK {
		t.Fatalf("first completion = %q", v)
	}
	if v := tr.Complete("healthy", cell); v != VerdictDuplicate {
		t.Fatalf("second completion = %q", v)
	}
	if pending, leased, done, failed := tr.Counts(); done != 1 || pending+leased+failed != 0 {
		t.Fatalf("counts = %d %d %d %d", pending, leased, done, failed)
	}
}

// TestTrackerReleaseIsNotEviction: a clean disconnect returns cells to
// pending without branding the agent.
func TestTrackerReleaseIsNotEviction(t *testing.T) {
	tr := NewTracker(cellList(2), time.Minute)
	tr.Acquire("a1")
	tr.Release("a1")
	if tr.Evicted("a1") {
		t.Fatal("released agent evicted")
	}
	if pending, leased, _, _ := tr.Counts(); pending != 2 || leased != 0 {
		t.Fatalf("counts after release: pending=%d leased=%d", pending, leased)
	}
}

func TestTrackerFailAndFailures(t *testing.T) {
	cells := cellList(3)
	tr := NewTracker(cells, time.Minute)
	tr.Acquire("a")
	tr.Acquire("a")
	tr.Acquire("a")
	tr.Fail("a", cells[2], "panic: boom")
	tr.Fail("a", cells[0], "panic: bust")
	tr.Complete("a", cells[1])
	if !tr.Done() {
		t.Fatal("terminal states not recognized")
	}
	fs := tr.Failures()
	if len(fs) != 2 || fs[0].Env > fs[1].Env {
		t.Fatalf("failures = %v (want 2, sorted)", fs)
	}
	// A failure reported after another agent completed the cell is a
	// duplicate, not a campaign failure.
	tr2 := NewTracker(cells[:1], time.Minute)
	tr2.Acquire("a")
	tr2.Complete("a", cells[0])
	if v := tr2.Fail("b", cells[0], "x"); v != VerdictDuplicate {
		t.Fatalf("late failure verdict = %q", v)
	}
}

func TestTrackerMarkDoneResume(t *testing.T) {
	cells := cellList(2)
	tr := NewTracker(cells, time.Minute)
	tr.MarkDone(cells[0])
	c, res := tr.Acquire("a")
	if res != AcquireGranted || c != cells[1] {
		t.Fatalf("resume acquire = %v %v", c, res)
	}
	if done := tr.DoneCells(); len(done) != 1 || done[0] != cells[0] {
		t.Fatalf("done cells = %v", done)
	}
}
