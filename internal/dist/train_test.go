package dist

import (
	"context"
	"math"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sage/internal/collector"
	"sage/internal/netem"
	"sage/internal/nn"
	"sage/internal/rl"
	"sage/internal/sim"
)

var trainPoolOnce struct {
	sync.Once
	pool *collector.Pool
	err  error
}

func trainPool(t *testing.T) *collector.Pool {
	t.Helper()
	trainPoolOnce.Do(func() {
		scens := netem.SetI(netem.SetIOptions{Level: netem.GridTiny, Duration: 3 * sim.Second})[:3]
		trainPoolOnce.pool, trainPoolOnce.err = collector.Collect(context.Background(),
			[]string{"cubic", "vegas"}, scens, collector.Options{Parallel: 4})
	})
	if trainPoolOnce.err != nil {
		t.Fatal(trainPoolOnce.err)
	}
	return trainPoolOnce.pool
}

func trainCfg() rl.CRRConfig {
	return rl.CRRConfig{
		Policy:      nn.PolicyConfig{Enc: 8, Hidden: 4, ResBlocks: 1, K: 2},
		Steps:       6,
		Batch:       4,
		SeqLen:      4,
		TargetEvery: 2,
		Workers:     2,
		Seed:        21,
	}
}

// referenceParams runs the in-process parallel trainer (Workers=2) for
// the configured steps and returns its final parameter snapshot — the
// baseline every distributed run must match bit for bit.
func referenceParams(t *testing.T, ds *rl.Dataset, cfg rl.CRRConfig, steps int) ([][]float64, rl.TrainStats) {
	t.Helper()
	ref := rl.NewCRR(ds, cfg)
	var last rl.TrainStats
	for i := 0; i < steps; i++ {
		last = ref.TrainStep(ds)
	}
	return ref.SnapshotParams(), last
}

func assertParamsEqual(t *testing.T, got, want [][]float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d tensors, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: tensor %d has %d params, want %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: tensor %d param %d = %v, want %v (bitwise mismatch)",
					label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestEmulatedShardWorkersMatchInProcess drives the master/ShardWorker
// split without any RPC: two shard workers against one master must
// reproduce the in-process Workers=2 run bit for bit. This isolates the
// all-reduce math from the wire.
func TestEmulatedShardWorkersMatchInProcess(t *testing.T) {
	cfg := trainCfg()
	ds := rl.BuildDataset(trainPool(t), nil)
	want, _ := referenceParams(t, ds, cfg, cfg.Steps)

	master := rl.NewCRR(ds, cfg)
	seeds := rl.InitialWorkerRNGStates(cfg)
	workers := make([]*rl.ShardWorker, cfg.Workers)
	for i := range workers {
		w, err := rl.NewShardWorker(ds, cfg, i, cfg.Workers)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Join(0, master.SnapshotParams(), master.SnapshotTargets(), seeds[i]); err != nil {
			t.Fatal(err)
		}
		workers[i] = w
	}
	for step := 0; step < cfg.Steps; step++ {
		shards := make([]rl.GradShard, len(workers))
		for i, w := range workers {
			shards[i] = w.ComputeShard(ds)
		}
		if _, err := master.ApplyShards(shards); err != nil {
			t.Fatal(err)
		}
		for _, w := range workers {
			if err := w.Sync(master.StepsDone(), master.SnapshotParams()); err != nil {
				t.Fatal(err)
			}
		}
	}
	assertParamsEqual(t, master.SnapshotParams(), want, "emulated shard workers")
}

func startTrainCoordinator(t *testing.T, master *rl.CRR, workers, steps int, onStep func(rl.TrainStats)) (*Coordinator, string) {
	t.Helper()
	coord, err := NewCoordinator(CoordConfig{
		Train: &TrainConfig{Learner: master, Workers: workers, StepsTotal: steps, OnStep: onStep},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve(ln)
	return coord, ln.Addr().String()
}

// TestDistTrainingSurvivesWorkerRestart: the full RPC path with one
// worker killed mid-run and relaunched on the same slot. The final
// parameters must still match the uninterrupted in-process run bitwise.
func TestDistTrainingSurvivesWorkerRestart(t *testing.T) {
	cfg := trainCfg()
	pool := trainPool(t)
	ds := rl.BuildDataset(pool, nil)
	want, _ := referenceParams(t, ds, cfg, cfg.Steps)

	master := rl.NewCRR(ds, cfg)
	coord, addr := startTrainCoordinator(t, master, cfg.Workers, cfg.Steps, nil)
	defer coord.Shutdown()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	errs := make(chan error, 1)
	go func() {
		errs <- RunTrainWorker(ctx, TrainWorkerConfig{
			Coordinator: addr, ID: "w1", Index: 1, Workers: cfg.Workers, Pool: pool,
			RedialBackoff: 20 * time.Millisecond,
		})
	}()

	// Worker 0 dies (context cancelled) after two applied steps.
	dieCtx, die := context.WithCancel(ctx)
	err := RunTrainWorker(dieCtx, TrainWorkerConfig{
		Coordinator: addr, ID: "w0", Index: 0, Workers: cfg.Workers, Pool: pool,
		RedialBackoff: 20 * time.Millisecond,
		OnStep: func(step int) {
			if step >= 2 {
				die()
			}
		},
	})
	if err == nil {
		t.Fatal("killed worker reported success")
	}

	// Its replacement joins the same slot mid-run; the coordinator resyncs
	// it and the run finishes.
	if err := RunTrainWorker(ctx, TrainWorkerConfig{
		Coordinator: addr, ID: "w0b", Index: 0, Workers: cfg.Workers, Pool: pool,
		RedialBackoff: 20 * time.Millisecond,
	}); err != nil {
		t.Fatalf("replacement worker: %v", err)
	}
	if err := <-errs; err != nil {
		t.Fatalf("worker 1: %v", err)
	}
	if err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	assertParamsEqual(t, master.SnapshotParams(), want, "post worker-restart")
}

// TestDistTrainingSurvivesCoordinatorRestart: the coordinator checkpoints
// every applied step, dies mid-run, and a successor resumes from the
// checkpoint on the same address. Supervised workers redial and the final
// parameters match the uninterrupted run bitwise.
func TestDistTrainingSurvivesCoordinatorRestart(t *testing.T) {
	cfg := trainCfg()
	pool := trainPool(t)
	ds := rl.BuildDataset(pool, nil)
	want, _ := referenceParams(t, ds, cfg, cfg.Steps)

	ckpt := filepath.Join(t.TempDir(), "dist.ckpt")
	master1 := rl.NewCRR(ds, cfg)
	crashed := make(chan struct{})
	var crashOnce sync.Once
	coord1, err := NewCoordinator(CoordConfig{Train: &TrainConfig{
		Learner: master1, Workers: cfg.Workers, StepsTotal: cfg.Steps,
		OnStep: func(rl.TrainStats) {
			if err := master1.SaveCheckpointRotate(ckpt, master1.StepsDone(), 2); err != nil {
				t.Errorf("checkpoint: %v", err)
			}
			if master1.StepsDone() >= 3 {
				crashOnce.Do(func() { close(crashed) })
			}
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go coord1.Serve(ln)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	// Workers run under a supervisor loop: a coordinator restart can
	// surface as an error (drain reply or dropped connection past the
	// redial budget), and the supervisor relaunches them — the deployment
	// contract from the README.
	supervise := func(idx int) chan error {
		out := make(chan error, 1)
		go func() {
			for {
				err := RunTrainWorker(ctx, TrainWorkerConfig{
					Coordinator: addr, ID: "w", Index: idx, Workers: cfg.Workers, Pool: pool,
					RedialAttempts: 40, RedialBackoff: 25 * time.Millisecond,
				})
				if err == nil || ctx.Err() != nil {
					out <- err
					return
				}
				time.Sleep(25 * time.Millisecond)
			}
		}()
		return out
	}
	w0 := supervise(0)
	w1 := supervise(1)

	<-crashed
	coord1.Shutdown()

	// The successor resumes the master from the newest checkpoint and
	// listens on the same address the workers keep redialing.
	master2, stepsDone, _, err := rl.LoadCheckpointAuto(ckpt, ds)
	if err != nil {
		t.Fatal(err)
	}
	if stepsDone < 3 || stepsDone >= cfg.Steps {
		t.Fatalf("resumed at step %d", stepsDone)
	}
	coord2, err := NewCoordinator(CoordConfig{Train: &TrainConfig{
		Learner: master2, Workers: cfg.Workers, StepsTotal: cfg.Steps,
	}})
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go coord2.Serve(ln2)
	defer coord2.Shutdown()

	if err := <-w0; err != nil {
		t.Fatalf("worker 0: %v", err)
	}
	if err := <-w1; err != nil {
		t.Fatalf("worker 1: %v", err)
	}
	if err := coord2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	assertParamsEqual(t, master2.SnapshotParams(), want, "post coordinator-restart")
}

// TestDistTrainingTracksSerial: serial (Workers=1) and distributed runs
// draw different batch streams, so they are not bitwise comparable — but
// both are deterministic and must land in the same loss regime on the
// same data.
func TestDistTrainingTracksSerial(t *testing.T) {
	cfg := trainCfg()
	ds := rl.BuildDataset(trainPool(t), nil)

	serial := cfg
	serial.Workers = 1
	s := rl.NewCRR(ds, serial)
	var serialLast rl.TrainStats
	for i := 0; i < serial.Steps; i++ {
		serialLast = s.TrainStep(ds)
	}
	_, distLast := referenceParams(t, ds, cfg, cfg.Steps)

	for _, v := range []float64{serialLast.CriticLoss, distLast.CriticLoss, serialLast.PolicyLoss, distLast.PolicyLoss} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite loss: serial %+v dist %+v", serialLast, distLast)
		}
	}
	diff := math.Abs(serialLast.CriticLoss - distLast.CriticLoss)
	scale := math.Max(1, math.Max(math.Abs(serialLast.CriticLoss), math.Abs(distLast.CriticLoss)))
	if diff > scale {
		t.Fatalf("critic loss diverged: serial %g vs dist %g", serialLast.CriticLoss, distLast.CriticLoss)
	}
}
