package dist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"strings"
	"testing"
	"time"
)

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Message{
		Type:    MsgCellDone,
		AgentID: "agent-1",
		Scheme:  "cubic", Env: "seti-x",
		Shard: []byte{1, 2, 3}, Checksum: 42,
		Metrics:  map[string]float64{"cells": 3},
		LeaseTTL: 30 * time.Second,
		Params:   [][]float64{{1.5, -2.25}, {0}},
	}
	if err := writeMsg(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.AgentID != in.AgentID || out.Checksum != 42 ||
		len(out.Shard) != 3 || out.Metrics["cells"] != 3 || out.LeaseTTL != in.LeaseTTL {
		t.Fatalf("round trip mangled message: %+v", out)
	}
	// Parameter tensors must survive bit-exactly: distributed training's
	// bitwise-equivalence guarantee rides on this.
	if out.Params[0][1] != -2.25 {
		t.Fatalf("params = %v", out.Params)
	}
}

func TestReadMsgRejectsOversizedFrame(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	if _, err := readMsg(bytes.NewReader(hdr[:])); err != errFrameTooBig {
		t.Fatalf("err = %v", err)
	}
}

func TestReadMsgRejectsVersionSkew(t *testing.T) {
	// Hand-frame a message stamped with a future protocol version.
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(&Message{Version: ProtoVersion + 1, Type: MsgHello}); err != nil {
		t.Fatal(err)
	}
	var frame bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(body.Len()))
	frame.Write(hdr[:])
	frame.Write(body.Bytes())
	if _, err := readMsg(&frame); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version skew accepted: %v", err)
	}
}

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in, network, addr string
		ok                bool
	}{
		{"127.0.0.1:7070", "tcp", "127.0.0.1:7070", true},
		{":7070", "tcp", ":7070", true},
		{"unix:/tmp/coord.sock", "unix", "/tmp/coord.sock", true},
		{"unix:", "", "", false},
		{"", "", "", false},
		{"no-port", "", "", false},
	}
	for _, c := range cases {
		network, addr, err := ParseAddr(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("ParseAddr(%q) err = %v", c.in, err)
		}
		if c.ok && (network != c.network || addr != c.addr) {
			t.Fatalf("ParseAddr(%q) = %q %q", c.in, network, addr)
		}
	}
}
