package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sage/internal/collector"
	"sage/internal/gr"
	"sage/internal/rl"
	"sage/internal/safeio"
	"sage/internal/telemetry"
)

// TrainConfig configures the coordinator's data-parallel training
// service.
type TrainConfig struct {
	// Learner is the master: it owns the optimizer moments and applies
	// every all-reduced step. Its Cfg.Workers must equal Workers.
	Learner *rl.CRR
	Workers int
	// StepsTotal is the absolute step index to stop at (the learner may
	// already be past zero when resumed from a checkpoint).
	StepsTotal int
	// Mask is the input mask workers must build their datasets with.
	Mask []int
	// OnStep receives every applied step's stats on the applying
	// handler's goroutine — the checkpoint/metrics hook.
	OnStep func(rl.TrainStats)
}

// CoordConfig configures a Coordinator. Campaign enables the collection
// service, Train the training service; either or both may be set.
type CoordConfig struct {
	Campaign *Campaign
	// ShardDir is where verified pool shards are persisted (collection).
	ShardDir string
	// ManifestPath is the campaign's JSONL cell ledger — the same format
	// sage-collect -resume reads, reused here for coordinator restarts.
	ManifestPath string
	// LeaseTTL bounds how long a silent agent keeps its cells
	// (default 30s). Agents heartbeat at TTL/3.
	LeaseTTL time.Duration
	// Resume re-admits cells whose manifest entry says "ok" AND whose
	// shard file verifies; anything less is re-collected.
	Resume bool
	// HedgeFactor enables straggler hedging: a cell leased for longer
	// than HedgeFactor × the fleet's p75 completion duration is
	// speculatively re-leased to an idle agent; the first checksummed
	// shard wins. 0 disables hedging.
	HedgeFactor float64
	// WALPath, when set, makes lease grants, terminal cell outcomes and
	// training barrier epochs durable in a write-ahead log, so a
	// restarted coordinator (Resume) re-adopts in-flight leases instead
	// of waiting out their TTLs.
	WALPath string

	Train *TrainConfig

	Metrics  *telemetry.Registry
	Fleet    *telemetry.Fleet
	Progress *telemetry.Progress
	Logf     func(format string, args ...any)
}

// Coordinator serves the distributed control plane: cell leases and
// shard intake for collection agents, gradient all-reduce for training
// workers. One goroutine per connection decodes request frames
// sequentially, mirroring internal/serve's server shape.
type Coordinator struct {
	cfg      CoordConfig
	tracker  *Tracker
	manifest *collector.Manifest
	grCfg    gr.Config
	total    int
	resumed  int
	train    *trainState
	replies  *replyCache
	wal      *wal

	epochMu   sync.Mutex
	lastEpoch int

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	doneOnce sync.Once
	doneCh   chan struct{}
}

// NewCoordinator validates the configuration, rebuilds resume state from
// the manifest and shard directory, and returns a coordinator ready to
// Serve.
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) {
	if cfg.Campaign == nil && cfg.Train == nil {
		return nil, errors.New("dist: coordinator needs a campaign, a training config, or both")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &Coordinator{
		cfg:     cfg,
		conns:   map[net.Conn]struct{}{},
		doneCh:  make(chan struct{}),
		replies: newReplyCache(),
	}
	if cfg.Campaign != nil {
		if err := cfg.Campaign.Validate(); err != nil {
			return nil, err
		}
		if cfg.ShardDir == "" || cfg.ManifestPath == "" {
			return nil, errors.New("dist: collection coordinator needs ShardDir and ManifestPath")
		}
		if err := os.MkdirAll(cfg.ShardDir, 0o755); err != nil {
			return nil, fmt.Errorf("dist: shard dir: %w", err)
		}
		cells, err := cfg.Campaign.Cells()
		if err != nil {
			return nil, err
		}
		c.total = len(cells)
		c.grCfg = cfg.Campaign.GR().Fill()
		c.tracker = NewTracker(cells, cfg.LeaseTTL)
		if !cfg.Resume {
			os.Remove(cfg.ManifestPath)
		}
		manifest, recorded, err := collector.OpenManifest(cfg.ManifestPath)
		if err != nil {
			return nil, err
		}
		c.manifest = manifest
		if cfg.Resume {
			// A cell is finished only when the ledger and a verified
			// shard agree — the ledger alone could claim a cell whose
			// shard never reached disk (crash between record and fsync
			// ordering is write-shard-first, but trust nothing).
			for cell, status := range recorded {
				if status != "ok" {
					continue
				}
				if c.shardHasCell(cell) {
					c.tracker.MarkDone(cell)
					c.resumed++
				}
			}
		}
		c.tracker.SetHedge(cfg.HedgeFactor)
	}
	if cfg.WALPath != "" {
		if !cfg.Resume {
			os.Remove(cfg.WALPath)
		}
		w, recs, err := openWAL(cfg.WALPath, cfg.Metrics, cfg.Logf)
		if err != nil {
			return nil, fmt.Errorf("dist: wal: %w", err)
		}
		c.wal = w
		c.replayWAL(recs)
	}
	if cfg.Train != nil {
		// The coordinator wraps the caller's OnStep (on a copy of the
		// config) to commit each applied step to the WAL before the
		// checkpoint hook sees it.
		tc := *cfg.Train
		userOnStep := tc.OnStep
		tc.OnStep = func(st rl.TrainStats) {
			c.epochMu.Lock()
			c.lastEpoch = st.Step
			c.epochMu.Unlock()
			c.wal.append(walRecord{T: "epoch", Step: st.Step})
			if userOnStep != nil {
				userOnStep(st)
			}
		}
		c.cfg.Train = &tc
		ts, err := newTrainState(&tc, c.checkDone)
		if err != nil {
			return nil, err
		}
		c.train = ts
	}
	c.checkDone()
	return c, nil
}

// replayWAL rebuilds in-flight state from the recovered log: a cell
// whose last record is a grant (no terminal done/fail, not completed
// per the manifest) is re-adopted — leased back to its agent with a
// fresh TTL, so a live agent's in-flight work lands without
// re-collection while a dead agent's lease simply expires. Epoch
// records recover the last committed training step.
func (c *Coordinator) replayWAL(recs []walRecord) {
	if len(recs) == 0 {
		return
	}
	inflight := map[collector.CellKey]string{}
	for _, rec := range recs {
		switch rec.T {
		case "grant":
			inflight[rec.cell()] = rec.Agent
		case "done", "fail":
			delete(inflight, rec.cell())
		case "epoch":
			if rec.Step > c.lastEpoch {
				c.lastEpoch = rec.Step
			}
		}
	}
	c.cfg.Metrics.Counter("dist.wal_replayed").Add(int64(len(recs)))
	if c.tracker != nil {
		for cell, agent := range inflight {
			c.tracker.Readopt(cell, agent)
			c.cfg.Logf("coord: wal: re-adopted lease %s/%s → %s", cell.Scheme, cell.Env, agent)
		}
	}
	if c.lastEpoch > 0 {
		c.cfg.Logf("coord: wal: last committed training step %d", c.lastEpoch)
	}
}

// LastEpoch reports the most recent training step committed to the WAL
// (applied live or recovered at startup); 0 before any step.
func (c *Coordinator) LastEpoch() int {
	c.epochMu.Lock()
	defer c.epochMu.Unlock()
	return c.lastEpoch
}

func (c *Coordinator) walGrant(agent string, cell collector.CellKey) {
	c.wal.append(walRecord{T: "grant", Agent: agent, Scheme: cell.Scheme, Env: cell.Env})
}

func (c *Coordinator) walDone(agent string, cell collector.CellKey) {
	c.wal.append(walRecord{T: "done", Agent: agent, Scheme: cell.Scheme, Env: cell.Env})
}

func (c *Coordinator) walFail(agent string, cell collector.CellKey, errMsg string) {
	c.wal.append(walRecord{T: "fail", Agent: agent, Scheme: cell.Scheme, Env: cell.Env, Err: errMsg})
}

// Resumed reports how many cells were re-admitted from a previous
// coordinator's manifest and shards.
func (c *Coordinator) Resumed() int { return c.resumed }

// TotalCells reports the campaign's cell count.
func (c *Coordinator) TotalCells() int { return c.total }

// Tracker exposes the lease table (status reporting, tests).
func (c *Coordinator) Tracker() *Tracker { return c.tracker }

func (c *Coordinator) shardPath(cell collector.CellKey) string {
	return filepath.Join(c.cfg.ShardDir, ShardName(cell))
}

// shardHasCell verifies that the shard file for cell exists, passes
// checksum verification, and actually contains that cell.
func (c *Coordinator) shardHasCell(cell collector.CellKey) bool {
	p, err := collector.Load(c.shardPath(cell))
	return err == nil && p.Cells()[cell]
}

// checkDone closes the completion channel once every configured service
// has finished.
func (c *Coordinator) checkDone() {
	if c.tracker != nil && !c.tracker.Done() {
		return
	}
	if c.train != nil && !c.train.finished() {
		return
	}
	c.doneOnce.Do(func() { close(c.doneCh) })
}

// Wait blocks until the campaign (and/or training run) completes or ctx
// is cancelled.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.doneCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// DoneCh exposes the completion channel.
func (c *Coordinator) DoneCh() <-chan struct{} { return c.doneCh }

// Serve accepts connections on ln until Shutdown. Always returns a
// non-nil error; after Shutdown it is net.ErrClosed.
func (c *Coordinator) Serve(ln net.Listener) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	c.ln = ln
	c.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return net.ErrClosed
			}
			return err
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		c.conns[conn] = struct{}{}
		c.wg.Add(1)
		c.mu.Unlock()
		go c.handle(conn)
	}
}

// ListenAndServe listens on the address spec ("host:port" or
// "unix:/path") and serves until Shutdown.
func (c *Coordinator) ListenAndServe(spec string) error {
	network, addr, err := ParseAddr(spec)
	if err != nil {
		return err
	}
	if network == "unix" {
		if err := os.Remove(addr); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return err
	}
	return c.Serve(ln)
}

// DrainAgents keeps serving until every agent connection has closed or
// the grace period expires. Agents hang up on their own once told the
// campaign (or training run) is done; draining before Shutdown lets them
// observe that verdict instead of a vanished coordinator, so supervised
// agents exit 0 rather than churning through redials.
func (c *Coordinator) DrainAgents(grace time.Duration) {
	deadline := time.Now().Add(grace)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		n := len(c.conns)
		c.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Shutdown stops accepting, closes every connection, wakes blocked
// training handlers, and waits for handlers to exit. The manifest and
// shard files stay on disk — a future coordinator resumes from them.
func (c *Coordinator) Shutdown() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.wg.Wait()
		return
	}
	c.closed = true
	if c.ln != nil {
		c.ln.Close()
	}
	conns := make([]net.Conn, 0, len(c.conns))
	for conn := range c.conns {
		conns = append(conns, conn)
	}
	c.mu.Unlock()
	if c.train != nil {
		c.train.abort()
	}
	for _, conn := range conns {
		conn.Close()
	}
	c.wg.Wait()
	if c.manifest != nil {
		c.manifest.Close()
	}
	c.wal.close()
}

// handle serves one agent connection until EOF, error, or Shutdown.
func (c *Coordinator) handle(conn net.Conn) {
	agentID := ""
	defer func() {
		conn.Close()
		c.mu.Lock()
		delete(c.conns, conn)
		c.mu.Unlock()
		// A vanished connection releases its leases immediately (faster
		// than TTL expiry) without eviction: the agent may simply redial.
		if agentID != "" && c.tracker != nil {
			c.tracker.Release(agentID)
		}
		c.wg.Done()
	}()
	for {
		req, err := readMsg(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				c.cfg.Logf("coord: %s: read: %v", agentID, err)
			}
			return
		}
		if req.Type == MsgHello {
			agentID = req.AgentID
		}
		resp := c.replyFor(req)
		if err := writeMsg(conn, resp); err != nil {
			return
		}
	}
}

func errMsg(format string, args ...any) *Message {
	return &Message{Type: MsgError, Err: fmt.Sprintf(format, args...)}
}

// replyFor serves req from the dedup cache when this exact (agent,
// session, req) was already executed — the idempotency half of
// at-least-once RPC — and dispatches it otherwise. Every reply echoes
// the request ID so clients can discard stale replies from duplicated
// frames.
func (c *Coordinator) replyFor(req *Message) *Message {
	if cached, ok := c.replies.lookup(req); ok {
		c.cfg.Metrics.Counter("dist.dedup_hits").Inc()
		return cached
	}
	resp := c.dispatch(req)
	resp.Req = req.Req
	c.replies.store(req, resp)
	return resp
}

func (c *Coordinator) dispatch(req *Message) *Message {
	switch req.Type {
	case MsgHello:
		return c.handleHello(req)
	case MsgRequestCell:
		return c.handleRequestCell(req)
	case MsgHeartbeat:
		return c.handleHeartbeat(req)
	case MsgCellDone:
		return c.handleCellDone(req)
	case MsgCellFailed:
		return c.handleCellFailed(req)
	case MsgGrads:
		return c.handleGrads(req)
	default:
		return errMsg("unknown message type %d", req.Type)
	}
}

func (c *Coordinator) handleHello(req *Message) *Message {
	if req.AgentID == "" {
		return errMsg("hello without agent id")
	}
	switch req.Role {
	case "collect":
		if c.tracker == nil {
			return errMsg("no collection campaign configured")
		}
		c.tracker.Register(req.AgentID)
		c.cfg.Metrics.Counter("coord.hellos").Inc()
		c.cfg.Logf("coord: agent %s joined", req.AgentID)
		return &Message{Type: MsgWelcome, Campaign: c.cfg.Campaign, LeaseTTL: c.cfg.LeaseTTL}
	case "train":
		if c.train == nil {
			return errMsg("no training run configured")
		}
		return c.train.welcome(req)
	default:
		return errMsg("unknown role %q", req.Role)
	}
}

func (c *Coordinator) handleRequestCell(req *Message) *Message {
	if c.tracker == nil {
		return errMsg("no collection campaign configured")
	}
	if c.tracker.Evicted(req.AgentID) {
		c.cfg.Metrics.Counter("coord.evicted_rejections").Inc()
		return &Message{Type: MsgWait, Verdict: VerdictEvicted}
	}
	cell, res := c.tracker.Acquire(req.AgentID)
	switch res {
	case AcquireGranted:
		c.cfg.Metrics.Counter("coord.leases_granted").Inc()
		c.walGrant(req.AgentID, cell)
		return &Message{Type: MsgAssign, Scheme: cell.Scheme, Env: cell.Env, Verdict: VerdictOK}
	case AcquireHedged:
		c.cfg.Metrics.Counter("dist.hedges").Inc()
		c.walGrant(req.AgentID, cell)
		c.cfg.Logf("coord: hedging straggler cell %s/%s to idle agent %s", cell.Scheme, cell.Env, req.AgentID)
		return &Message{Type: MsgAssign, Scheme: cell.Scheme, Env: cell.Env, Verdict: VerdictOK}
	case AcquireWait:
		backoff := c.cfg.LeaseTTL / 4
		if backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
		return &Message{Type: MsgWait, Verdict: VerdictOK, Backoff: backoff}
	default:
		c.checkDone()
		return &Message{Type: MsgCampaignDone, Verdict: VerdictOK}
	}
}

func (c *Coordinator) handleHeartbeat(req *Message) *Message {
	if c.tracker == nil {
		return errMsg("no collection campaign configured")
	}
	c.cfg.Fleet.Update(req.AgentID, req.Metrics)
	if c.tracker.Evicted(req.AgentID) {
		c.cfg.Metrics.Counter("coord.evicted_rejections").Inc()
		return &Message{Type: MsgHeartbeatAck, Verdict: VerdictEvicted}
	}
	c.tracker.Renew(req.AgentID)
	c.cfg.Metrics.Counter("coord.heartbeats").Inc()
	return &Message{Type: MsgHeartbeatAck, Verdict: VerdictOK}
}

func (c *Coordinator) handleCellDone(req *Message) *Message {
	if c.tracker == nil {
		return errMsg("no collection campaign configured")
	}
	if c.tracker.Evicted(req.AgentID) {
		c.cfg.Metrics.Counter("coord.evicted_rejections").Inc()
		return &Message{Type: MsgCellAck, Verdict: VerdictEvicted}
	}
	cell := collector.CellKey{Scheme: req.Scheme, Env: req.Env}
	if ChecksumShard(req.Shard) != req.Checksum {
		c.cfg.Metrics.Counter("coord.shard_checksum_mismatches").Inc()
		c.cfg.Logf("coord: shard %s/%s failed wire checksum; asking %s to resend", cell.Scheme, cell.Env, req.AgentID)
		return &Message{Type: MsgCellAck, Verdict: VerdictRetry}
	}
	// The shard must decode and actually contain the cell it claims —
	// a confused agent must not poison the campaign's shard store.
	if err := verifyShardPayload(req.Shard, cell, c.grCfg); err != nil {
		return errMsg("shard %s/%s rejected: %v", cell.Scheme, cell.Env, err)
	}
	// Durability order: shard bytes reach disk (atomically, checksummed)
	// before the cell can be declared done anywhere.
	path := c.shardPath(cell)
	err := safeio.WriteFile(path, func(w io.Writer) error {
		_, werr := w.Write(req.Shard)
		return werr
	})
	if err != nil {
		c.cfg.Logf("coord: persist shard %s: %v", path, err)
		return &Message{Type: MsgCellAck, Verdict: VerdictRetry}
	}
	verdict, hedgeWin := c.tracker.Complete(req.AgentID, cell)
	if verdict == VerdictOK {
		c.manifest.Record(cell.Scheme, cell.Env, nil)
		c.walDone(req.AgentID, cell)
		c.cfg.Metrics.Counter("coord.cells_done").Inc()
		c.cfg.Metrics.Counter("coord.shard_bytes").Add(int64(len(req.Shard)))
		if hedgeWin {
			c.cfg.Metrics.Counter("dist.hedge_wins").Inc()
			c.cfg.Logf("coord: hedge won cell %s/%s (agent %s beat the straggler)", cell.Scheme, cell.Env, req.AgentID)
		}
		c.cfg.Progress.Add(1)
		c.checkDone()
	} else {
		c.cfg.Metrics.Counter("coord.duplicate_completions").Inc()
	}
	return &Message{Type: MsgCellAck, Verdict: verdict}
}

func (c *Coordinator) handleCellFailed(req *Message) *Message {
	if c.tracker == nil {
		return errMsg("no collection campaign configured")
	}
	if c.tracker.Evicted(req.AgentID) {
		c.cfg.Metrics.Counter("coord.evicted_rejections").Inc()
		return &Message{Type: MsgCellAck, Verdict: VerdictEvicted}
	}
	cell := collector.CellKey{Scheme: req.Scheme, Env: req.Env}
	verdict := c.tracker.Fail(req.AgentID, cell, req.Err)
	if verdict == VerdictOK {
		c.manifest.Record(cell.Scheme, cell.Env, errors.New(req.Err))
		c.walFail(req.AgentID, cell, req.Err)
		c.cfg.Metrics.Counter("coord.cells_failed").Inc()
		c.cfg.Progress.Add(1)
		c.cfg.Logf("coord: cell %s/%s failed permanently: %s", cell.Scheme, cell.Env, req.Err)
		c.checkDone()
	}
	return &Message{Type: MsgCellAck, Verdict: verdict}
}

func (c *Coordinator) handleGrads(req *Message) *Message {
	if c.train == nil {
		return errMsg("no training run configured")
	}
	if req.GradShard == nil {
		return errMsg("grads message without a shard")
	}
	return c.train.submit(req.AgentID, req.GradShard)
}

// verifyShardPayload decodes a shard payload and checks it carries
// exactly the claimed cell under the campaign's GR config.
func verifyShardPayload(payload []byte, cell collector.CellKey, want gr.Config) error {
	p, err := decodeShard(payload)
	if err != nil {
		return err
	}
	if got := p.GR.Fill(); got != want {
		return fmt.Errorf("GR config %+v differs from campaign %+v", got, want)
	}
	if len(p.Trajs) != 1 && len(p.Failed) == 0 {
		return fmt.Errorf("shard has %d trajectories, want 1", len(p.Trajs))
	}
	if !p.Cells()[cell] {
		return fmt.Errorf("shard does not contain cell %s/%s", cell.Scheme, cell.Env)
	}
	return nil
}

// MergedPool streams the completed cells' shard files into the final
// deduplicated pool, appends the campaign's permanent failures, and
// sorts canonically — byte-identical to a single-process run over the
// same campaign once saved.
func (c *Coordinator) MergedPool() (*collector.Pool, error) {
	if c.tracker == nil {
		return nil, errors.New("dist: no collection campaign configured")
	}
	cells := c.tracker.DoneCells()
	paths := make([]string, len(cells))
	for i, cell := range cells {
		paths[i] = c.shardPath(cell)
	}
	pool, err := collector.MergeShardFiles(paths...)
	if err != nil {
		return nil, err
	}
	if len(pool.Trajs) == 0 {
		pool.GR = c.grCfg
	}
	pool.Failed = append(pool.Failed, c.tracker.Failures()...)
	pool.SortByCell()
	return pool, nil
}

// CleanupResumeState removes the manifest and shard files after the
// final pool is safely saved.
func (c *Coordinator) CleanupResumeState() {
	if c.manifest != nil {
		c.manifest.Close()
	}
	if c.cfg.ManifestPath != "" {
		os.Remove(c.cfg.ManifestPath)
	}
	if c.cfg.WALPath != "" {
		c.wal.close()
		os.Remove(c.cfg.WALPath)
	}
	if c.cfg.ShardDir != "" {
		os.RemoveAll(c.cfg.ShardDir)
	}
}
