package dist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"sage/internal/collector"
	"sage/internal/gr"
	"sage/internal/rl"
)

// gob wire type IDs are allocated from a process-global counter in the
// order types are first encoded. A coordinator exchanges Messages before
// it saves the merged pool; without care the pool's types would get
// different IDs than in a single-process sage-collect run, and the two
// saved pools — identical in content — would differ in bytes. Priming
// the registry with the pool's type graph first restores the canonical
// numbering for every binary that links this package.
func init() {
	gob.NewEncoder(io.Discard).Encode(&collector.Pool{
		Trajs:  []collector.Trajectory{{Steps: []gr.Step{{State: []float64{0}}}}},
		Failed: []collector.FailedCell{{}},
	})
}

// Wire protocol of the sage-coord control plane: length-prefixed frames
// (u32 big-endian payload length, then payload) carrying one gob-encoded
// Message each — the internal/serve framing idiom with gob bodies, since
// control-plane messages are low-rate and structured (campaign specs,
// parameter tensors) rather than per-packet hot-path data. Every
// exchange is a strict request/response pair initiated by the agent, so
// one connection serves an agent's work loop and heartbeat goroutine
// under a client-side mutex.
const (
	ProtoVersion = 1

	// maxFrame bounds one frame: big enough for a full parameter
	// broadcast or a multi-MB pool shard, small enough that a corrupt
	// length prefix cannot OOM the receiver.
	maxFrame = 1 << 28
)

// Message types. Agents send Hello once per connection, then loop on the
// work messages; the coordinator only ever replies.
const (
	MsgHello        = 1  // agent → coord: register a session (Role selects the service)
	MsgWelcome      = 2  // coord → agent: campaign spec / training state
	MsgRequestCell  = 3  // agent → coord: lease one collection cell
	MsgAssign       = 4  // coord → agent: cell lease granted
	MsgWait         = 5  // coord → agent: nothing assignable now, retry after Backoff
	MsgCampaignDone = 6  // coord → agent: campaign complete, drain
	MsgHeartbeat    = 7  // agent → coord: renew leases, ship telemetry snapshot
	MsgHeartbeatAck = 8  // coord → agent: Verdict ok|evicted
	MsgCellDone     = 9  // agent → coord: checksummed pool shard for a finished cell
	MsgCellFailed   = 10 // agent → coord: cell failed permanently
	MsgCellAck      = 11 // coord → agent: Verdict ok|duplicate|retry|evicted
	MsgGrads        = 12 // worker → coord: gradient shard for one training step
	MsgTrainStep    = 13 // coord → worker: post-step params (or resync / done)
	MsgError        = 14 // coord → agent: request could not be served; Err explains
)

// Verdicts returned in acks.
const (
	VerdictOK        = "ok"
	VerdictDuplicate = "duplicate" // cell already completed by another lease
	VerdictRetry     = "retry"     // shard arrived corrupt; resend
	VerdictEvicted   = "evicted"   // session declared dead; re-register or exit
)

// Message is the single envelope for every frame. Gob omits zero-value
// fields, so small control messages stay small even though the struct
// carries the union of all bodies.
type Message struct {
	Version byte
	Type    byte
	AgentID string
	Role    string // "collect" | "train"
	Err     string

	// Session is a nonce minted once per client process, and Req a
	// monotonically increasing request ID within that session. Together
	// they make every RPC idempotent: the coordinator replays its cached
	// reply for a (agent, session, req) it has already served, so a
	// request retried after a lost reply cannot execute twice, and a
	// client discards replies whose Req is not the one in flight (the
	// residue of a duplicated request frame). Replies echo Req.
	Session uint64
	Req     uint64

	// Collection service.
	Campaign    *Campaign
	LeaseTTL    time.Duration
	Scheme, Env string
	Backoff     time.Duration
	Shard       []byte // gzipped-gob single-cell pool payload
	Checksum    uint64 // CRC-64/ECMA of Shard
	Verdict     string
	Metrics     map[string]float64

	// Training service.
	WorkerIdx  int
	Workers    int
	Step       int // absolute applied-step index the payload corresponds to
	StepsTotal int
	CRR        *rl.CRRConfig
	Mask       []int
	Params     [][]float64
	Targets    [][]float64 // non-nil = full resync (join)
	RNG        uint64
	GradShard  *rl.GradShard
	Done       bool
}

var errFrameTooBig = errors.New("dist: frame exceeds size limit")

// writeMsg writes one length-prefixed gob frame.
func writeMsg(w io.Writer, m *Message) error {
	m.Version = ProtoVersion
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return fmt.Errorf("dist: encode: %w", err)
	}
	if buf.Len() > maxFrame {
		return errFrameTooBig
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// readMsg reads one frame and decodes its message.
func readMsg(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, errFrameTooBig
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var m Message
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&m); err != nil {
		return nil, fmt.Errorf("dist: decode: %w", err)
	}
	if m.Version != ProtoVersion {
		return nil, fmt.Errorf("dist: protocol version %d, want %d", m.Version, ProtoVersion)
	}
	return &m, nil
}

// ParseAddr validates and splits a coordinator address spec:
// "unix:/path/to.sock" for a Unix socket, otherwise "host:port" TCP.
// CLI flags run it before any work so a typo fails in microseconds, not
// after a campaign's worth of setup.
func ParseAddr(spec string) (network, addr string, err error) {
	if spec == "" {
		return "", "", errors.New("dist: empty coordinator address")
	}
	if p, ok := strings.CutPrefix(spec, "unix:"); ok {
		if p == "" {
			return "", "", errors.New("dist: unix: address needs a socket path")
		}
		return "unix", p, nil
	}
	host, port, err := net.SplitHostPort(spec)
	if err != nil {
		return "", "", fmt.Errorf("dist: address %q: %w (want host:port or unix:/path)", spec, err)
	}
	if port == "" {
		return "", "", fmt.Errorf("dist: address %q: missing port", spec)
	}
	_ = host // empty host means all interfaces for listeners, loopback resolution for dials
	return "tcp", spec, nil
}

// client is one serialized request/response connection to the
// coordinator, shared by an agent's work and heartbeat goroutines.
type client struct {
	mu      sync.Mutex
	conn    net.Conn
	timeout time.Duration // per-RPC deadline; 0 disables
	onStale func()        // observes each discarded stale reply
}

// dial connects to the coordinator at spec. timeout is the per-RPC
// deadline applied to every roundTrip on the connection (0 = none).
func dial(spec string, timeout time.Duration) (*client, error) {
	network, addr, err := ParseAddr(spec)
	if err != nil {
		return nil, err
	}
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return &client{conn: conn, timeout: timeout}, nil
}

// maxStaleReplies bounds how many mismatched replies one roundTrip will
// discard before declaring the stream hopeless.
const maxStaleReplies = 32

// roundTrip sends req and waits for the coordinator's reply. With a
// timeout set, the whole exchange runs under one absolute deadline — a
// stalled coordinator (or a partition eating the reply) surfaces as a
// timeout error instead of blocking the caller forever. Replies whose
// Req does not match the request are leftovers of duplicated frames and
// are discarded.
func (c *client) roundTrip(req *Message) (*Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := writeMsg(c.conn, req); err != nil {
		return nil, err
	}
	for stale := 0; ; {
		resp, err := readMsg(c.conn)
		if err != nil {
			return nil, err
		}
		if req.Req != 0 && resp.Req != req.Req {
			if c.onStale != nil {
				c.onStale()
			}
			if stale++; stale > maxStaleReplies {
				return nil, fmt.Errorf("dist: %d replies in a row for other requests (want req %d)", stale, req.Req)
			}
			continue
		}
		if resp.Type == MsgError {
			return resp, fmt.Errorf("dist: coordinator: %s", resp.Err)
		}
		return resp, nil
	}
}

func (c *client) close() error { return c.conn.Close() }
