package trace

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sage/internal/sim"
)

func TestParseMahimahi(t *testing.T) {
	in := "0\n1\n# comment\n\n5\n3\n"
	ops, err := ParseMahimahi(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 1, 3, 5} // sorted
	if len(ops) != 4 {
		t.Fatalf("ops = %v", ops)
	}
	for i, v := range want {
		if ops[i] != v {
			t.Fatalf("ops = %v", ops)
		}
	}
	if _, err := ParseMahimahi(strings.NewReader("abc\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ParseMahimahi(strings.NewReader("-1\n")); err == nil {
		t.Fatal("negative accepted")
	}
	if _, err := ParseMahimahi(strings.NewReader("")); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestMahimahiToSchedule(t *testing.T) {
	// 10 opportunities in the first 100 ms bin -> 10 * 12000 bits / 0.1 s
	// = 1.2 Mb/s; nothing in the second; 5 in the third.
	var ops []int64
	for i := 0; i < 10; i++ {
		ops = append(ops, int64(i*10))
	}
	for i := 0; i < 5; i++ {
		ops = append(ops, int64(200+i*20))
	}
	s, err := MahimahiToSchedule(ops, 100*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At(50 * sim.Millisecond); math.Abs(got-1.2e6) > 1 {
		t.Fatalf("bin 0 rate = %v", got)
	}
	if got := s.At(150 * sim.Millisecond); got != 0 {
		t.Fatalf("bin 1 rate = %v", got)
	}
	if got := s.At(250 * sim.Millisecond); math.Abs(got-0.6e6) > 1 {
		t.Fatalf("bin 2 rate = %v", got)
	}
}

func TestMahimahiRoundTrip(t *testing.T) {
	// Export a synthetic cellular trace and load it back: the reloaded
	// schedule's mean rate should track the original's.
	orig := Cellular(5, 20*sim.Second)
	var buf bytes.Buffer
	if err := WriteMahimahi(&buf, orig, 20*sim.Second); err != nil {
		t.Fatal(err)
	}
	ops, err := ParseMahimahi(&buf)
	if err != nil {
		t.Fatal(err)
	}
	re, err := MahimahiToSchedule(ops, 100*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	m1 := orig.MeanRateUntil(20 * sim.Second)
	m2 := re.MeanRateUntil(20 * sim.Second)
	if math.Abs(m1-m2)/m1 > 0.15 {
		t.Fatalf("round trip mean: %.2f vs %.2f Mb/s", m1/1e6, m2/1e6)
	}
}

func TestLoadMahimahiFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trace")
	if err := os.WriteFile(path, []byte("0\n1\n2\n3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadMahimahi(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0) <= 0 {
		t.Fatal("zero rate")
	}
	if _, err := LoadMahimahi(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}
