package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"sage/internal/netem"
	"sage/internal/sim"
)

// Mahimahi trace format: one integer per line, each a millisecond timestamp
// at which the link can deliver one MTU-sized packet. The paper's emulation
// replays 23 cellular traces in this format; this reader converts a trace
// into a piecewise rate schedule so recorded traces can drive the emulator
// directly.

// ParseMahimahi reads a Mahimahi-format trace and returns the delivery
// opportunities in milliseconds.
func ParseMahimahi(r io.Reader) ([]int64, error) {
	var out []int64
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("trace: line %d: negative timestamp", line)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// MahimahiToSchedule converts delivery opportunities into a rate schedule by
// binning them into bin-sized windows: rate(bin) = opportunities × MTU×8 /
// bin. The trace loops implicitly: the final window's rate extends forever,
// so callers should load a trace at least as long as the experiment.
func MahimahiToSchedule(opportunitiesMs []int64, bin sim.Time) (*netem.RateSchedule, error) {
	if bin <= 0 {
		bin = 100 * sim.Millisecond
	}
	last := opportunitiesMs[len(opportunitiesMs)-1]
	n := int(sim.Time(last)*sim.Millisecond/bin) + 1
	counts := make([]int, n)
	for _, ms := range opportunitiesMs {
		idx := int(sim.Time(ms) * sim.Millisecond / bin)
		if idx >= n {
			idx = n - 1
		}
		counts[idx]++
	}
	times := make([]sim.Time, n)
	bps := make([]float64, n)
	for i := range counts {
		times[i] = sim.Time(i) * bin
		bps[i] = float64(counts[i]) * netem.MTU * 8 / bin.Seconds()
	}
	// Keep the trailing segment alive so the link never stalls forever.
	if bps[n-1] == 0 {
		bps[n-1] = netem.MTU * 8 / bin.Seconds()
	}
	return netem.NewRateSchedule(times, bps)
}

// LoadMahimahi reads a Mahimahi trace file into a rate schedule with 100 ms
// bins.
func LoadMahimahi(path string) (*netem.RateSchedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	ops, err := ParseMahimahi(f)
	if err != nil {
		return nil, err
	}
	return MahimahiToSchedule(ops, 100*sim.Millisecond)
}

// WriteMahimahi renders a rate schedule back into Mahimahi format over
// [0, dur] — useful for exporting the synthetic cellular traces to tools
// that consume the standard format.
func WriteMahimahi(w io.Writer, s *netem.RateSchedule, dur sim.Time) error {
	bw := bufio.NewWriter(w)
	// Walk the schedule emitting one timestamp per packet-time.
	t := sim.Time(0)
	for t < dur {
		rate := s.At(t)
		if rate <= 0 {
			t += 10 * sim.Millisecond
			continue
		}
		if _, err := fmt.Fprintf(bw, "%d\n", int64(t/sim.Millisecond)); err != nil {
			return err
		}
		t += sim.FromSeconds(netem.MTU * 8 / rate)
	}
	return bw.Flush()
}
