package trace

import (
	"testing"

	"sage/internal/cc"
	"sage/internal/rollout"
	"sage/internal/sim"
)

func TestCellularTraceProperties(t *testing.T) {
	s := Cellular(3, 30*sim.Second)
	if s.MaxRate() > 50e6 || s.MaxRate() < 0.5e6 {
		t.Fatalf("max rate %v", s.MaxRate())
	}
	// Variability: the mean over the run must be well below the max.
	mean := s.MeanRateUntil(30 * sim.Second)
	if mean >= s.MaxRate() {
		t.Fatal("trace is not variable")
	}
	if mean <= 0 {
		t.Fatal("trace is dead")
	}
	// Determinism per id, distinct across ids.
	again := Cellular(3, 30*sim.Second)
	if again.At(5*sim.Second) != s.At(5*sim.Second) {
		t.Fatal("trace not deterministic")
	}
	other := Cellular(4, 30*sim.Second)
	same := true
	for ts := sim.Time(0); ts < 10*sim.Second; ts += sim.Second {
		if other.At(ts) != s.At(ts) {
			same = false
		}
	}
	if same {
		t.Fatal("different ids produced identical traces")
	}
}

func TestScenarioGenerators(t *testing.T) {
	intra := IntraContinental(4, 5*sim.Second)
	inter := InterContinental(4, 5*sim.Second)
	cell := CellularScenarios(3, 5*sim.Second)
	if len(intra) != 4 || len(inter) != 4 || len(cell) != 3 {
		t.Fatal("counts")
	}
	for _, sc := range intra {
		if sc.MinRTT > 60*sim.Millisecond {
			t.Fatalf("intra RTT %v", sc.MinRTT)
		}
	}
	for _, sc := range inter {
		if sc.MinRTT < 80*sim.Millisecond {
			t.Fatalf("inter RTT %v", sc.MinRTT)
		}
		if sc.LossProb <= 0 {
			t.Fatal("inter must have stochastic loss")
		}
	}
}

func TestCubicRunsOverCellular(t *testing.T) {
	sc := CellularScenarios(1, 10*sim.Second)[0]
	res := rollout.Run(sc, cc.MustNew("cubic"), rollout.Options{})
	if res.ThroughputBps <= 0 {
		t.Fatal("no traffic over cellular trace")
	}
	// Outages and variability must not wedge the connection.
	if res.ThroughputBps < 0.2e6 {
		t.Fatalf("throughput %.2f Mb/s suspiciously low", res.ThroughputBps/1e6)
	}
}

func TestDelayVsLossOverInterContinental(t *testing.T) {
	// Stochastic loss on long paths: Vegas backs off on noise, Cubic pushes
	// through — the regime distinction Fig. 8b relies on.
	sc := InterContinental(1, 15*sim.Second)[0]
	cub := rollout.Run(sc, cc.MustNew("cubic"), rollout.Options{})
	veg := rollout.Run(sc, cc.MustNew("vegas"), rollout.Options{})
	if cub.ThroughputBps <= veg.ThroughputBps {
		t.Fatalf("cubic %.2f <= vegas %.2f Mb/s on lossy long path",
			cub.ThroughputBps/1e6, veg.ThroughputBps/1e6)
	}
}
