// Package trace builds the synthetic stand-ins for the paper's real-world
// evaluation substrate (Section 6.1): Markov-modulated cellular traces in
// place of the 23 recorded LTE traces, and intra-/inter-continental path
// models in place of the GENI/AWS server pairs. The substitution preserves
// what Fig. 8 measures — the three regimes differ in RTT scale, rate
// variability, and stochastic loss, which is exactly what these models
// control.
package trace

import (
	"fmt"
	"math"
	"math/rand"

	"sage/internal/netem"
	"sage/internal/sim"
)

// Cellular returns a Markov-modulated rate schedule emulating a cellular
// link: the log-rate follows a mean-reverting random walk between ~0.5 and
// ~50 Mb/s with occasional short outages, resampled every 100 ms — the
// variability profile of the paper's walking/driving LTE traces.
func Cellular(id int, dur sim.Time) *netem.RateSchedule {
	rng := rand.New(rand.NewSource(int64(id)*7919 + 12345))
	const seg = 100 * sim.Millisecond
	n := int(dur/seg) + 2
	times := make([]sim.Time, 0, n)
	bps := make([]float64, 0, n)
	logRate := math.Log(4e6 + rng.Float64()*16e6) // start 4-20 Mb/s
	mean := logRate
	outage := 0
	for i := 0; i < n; i++ {
		times = append(times, sim.Time(i)*seg)
		if outage > 0 {
			outage--
			bps = append(bps, 0)
			continue
		}
		if rng.Float64() < 0.01 {
			outage = 1 + rng.Intn(3) // 100-400 ms outage
			bps = append(bps, 0)
			continue
		}
		logRate += 0.3*(mean-logRate) + rng.NormFloat64()*0.35
		r := math.Exp(logRate)
		if r < 0.5e6 {
			r = 0.5e6
		}
		if r > 50e6 {
			r = 50e6
		}
		bps = append(bps, r)
	}
	// Final segment must be positive so the link never stalls forever.
	if bps[len(bps)-1] == 0 {
		bps[len(bps)-1] = 2e6
	}
	s, err := netem.NewRateSchedule(times, bps)
	if err != nil {
		panic("trace: " + err.Error()) // construction is by-definition valid
	}
	return s
}

// CellularScenarios builds n highly-variable-link scenarios (Fig. 8c):
// cellular rate traces, 40 ms propagation RTT, generous buffers (cellular
// base stations are deep-buffered).
func CellularScenarios(n int, dur sim.Time) []netem.Scenario {
	out := make([]netem.Scenario, n)
	for i := range out {
		rate := Cellular(i, dur)
		mrtt := 40 * sim.Millisecond
		out[i] = netem.Scenario{
			Name:       fmt.Sprintf("cellular-%02d", i),
			Rate:       rate,
			MinRTT:     mrtt,
			QueueBytes: 8 * netem.BDPBytes(20e6, mrtt), // deep cellular buffer
			Duration:   dur,
			Seed:       int64(i) + 900,
		}
	}
	return out
}

// IntraContinental builds n scenarios modeled on the paper's 16 US paths
// (Fig. 8a): short RTTs (7–60 ms), high stable rates, light jitter,
// negligible random loss.
func IntraContinental(n int, dur sim.Time) []netem.Scenario {
	rng := rand.New(rand.NewSource(4242))
	out := make([]netem.Scenario, n)
	for i := range out {
		rttMs := 7 + rng.Float64()*53
		bw := 20 + rng.Float64()*130 // Mb/s
		mrtt := sim.FromMillis(rttMs)
		out[i] = netem.Scenario{
			Name:       fmt.Sprintf("intra-%02d-%.0fms-%.0fmbps", i, rttMs, bw),
			Rate:       netem.FlatRate(netem.Mbps(bw)),
			MinRTT:     mrtt,
			QueueBytes: 2 * netem.BDPBytes(netem.Mbps(bw), mrtt),
			Duration:   dur,
			Jitter:     sim.FromMillis(0.5),
			LossProb:   0.00005,
			Seed:       int64(i) + 700,
		}
	}
	return out
}

// InterContinental builds n scenarios modeled on the paper's 13 global
// paths (Fig. 8b): long RTTs (80–237 ms), moderate rates, more jitter and
// a small stochastic loss rate — the regime where loss-blind delay-based
// schemes starve.
func InterContinental(n int, dur sim.Time) []netem.Scenario {
	rng := rand.New(rand.NewSource(1717))
	out := make([]netem.Scenario, n)
	for i := range out {
		rttMs := 80 + rng.Float64()*157
		bw := 10 + rng.Float64()*90 // Mb/s
		mrtt := sim.FromMillis(rttMs)
		out[i] = netem.Scenario{
			Name:       fmt.Sprintf("inter-%02d-%.0fms-%.0fmbps", i, rttMs, bw),
			Rate:       netem.FlatRate(netem.Mbps(bw)),
			MinRTT:     mrtt,
			QueueBytes: netem.BDPBytes(netem.Mbps(bw), mrtt),
			Duration:   dur,
			Jitter:     sim.FromMillis(2),
			LossProb:   0.0005,
			Seed:       int64(i) + 800,
		}
	}
	return out
}
