// Package sentinel is the training-time counterpart of internal/guard: a
// divergence watchdog around the offline CRR learner. The guardian
// protects the serving path from a policy that has already gone bad; the
// sentinel stops the training path from producing one in the first place.
//
// It drives the learner step by step and inspects every TrainStats record
// before the optimizer is allowed to apply the batch:
//
//   - a batch whose loss or gradients are non-finite (NaN rewards from a
//     crashed collector worker, an overflowed activation) or whose
//     gradient norm explodes past a ceiling is rejected outright — the
//     gradients are discarded and the weights never see them;
//   - a finite critic loss spiking past SpikeFactor× its EMA is treated
//     the same way (the early signature of divergence CRR shares with the
//     Aurora-style trainers);
//   - a periodic parameter sweep catches corruption that slipped past the
//     batch gate (bit flips, a poisoned hot-swap): the sentinel rolls the
//     learner back to the last good checkpoint (bitwise-exact resume,
//     including RNG streams and Adam moments), halves the learning rate
//     under a cooldown, and deterministically skips the offending batch;
//   - after MaxRollbacks consecutive rollbacks — or MaxSkipStreak
//     consecutive rejected batches — training aborts with a diagnostic
//     bundle (trip log, recent stats window, offending batch ids, and a
//     parameter histogram) instead of burning hours on a doomed run.
//
// Every decision is recorded through internal/telemetry: sentinel.*
// counters in an optional Registry plus an in-memory event log
// exportable as JSONL.
package sentinel

import (
	"context"
	"fmt"
	"math"

	"sage/internal/rl"
	"sage/internal/telemetry"
)

// Config tunes the sentinel. The zero value of every field except
// CheckpointPath (required) is a conservative default.
type Config struct {
	// SpikeFactor k: a finite critic loss above k× its EMA counts as a
	// divergence spike and the batch is skipped (default 25 — generous,
	// because per-batch CRR losses are noisy).
	SpikeFactor float64
	// EMADecay is the critic-loss EMA decay (default 0.99).
	EMADecay float64
	// Warmup is how many applied steps the EMA must see before spike
	// detection arms (default 50).
	Warmup int
	// GradCeil is the absolute pre-clip gradient-norm ceiling; a finite
	// norm above it is treated as an explosion and the batch is skipped
	// (default 1e4).
	GradCeil float64
	// ParamSweepEvery is the period, in applied steps, of the non-finite
	// parameter sweep (default 25).
	ParamSweepEvery int

	// MaxRollbacks is how many consecutive rollbacks (with no clean
	// cooldown between them) the sentinel tolerates before aborting with
	// a diagnostic bundle (default 4).
	MaxRollbacks int
	// MaxSkipStreak is how many consecutive rejected batches the sentinel
	// tolerates before concluding the pool itself is garbage (default 64).
	MaxSkipStreak int

	// LRBackoff is the learning-rate multiplier applied on every rollback
	// (default 0.5), floored at LRFloor× the configured rate (default
	// 1/64). After CooldownSteps clean applied steps the rate recovers
	// one backoff notch at a time.
	LRBackoff float64
	LRFloor   float64
	// CooldownSteps is how many consecutive clean applied steps reset the
	// rollback streak and recover one LR notch (default 200).
	CooldownSteps int

	// CheckpointPath anchors rollback: the sentinel saves rotating known-
	// good checkpoints there every CheckpointEvery applied steps (default
	// 500), keeping CheckpointKeep rotations (default 2). Required.
	CheckpointPath  string
	CheckpointEvery int
	CheckpointKeep  int

	// StatsWindow is how many recent TrainStats the diagnostic bundle
	// retains (default 64).
	StatsWindow int
	// DiagPath is where the abort bundle is written (default
	// CheckpointPath + ".diag.json").
	DiagPath string

	// Metrics, when non-nil, receives the sentinel.* counters. Nil costs
	// nothing (telemetry counters are nil-safe).
	Metrics *telemetry.Registry
}

func (c Config) fill() Config {
	if c.SpikeFactor == 0 {
		c.SpikeFactor = 25
	}
	if c.EMADecay == 0 {
		c.EMADecay = 0.99
	}
	if c.Warmup == 0 {
		c.Warmup = 50
	}
	if c.GradCeil == 0 {
		c.GradCeil = 1e4
	}
	if c.ParamSweepEvery == 0 {
		c.ParamSweepEvery = 25
	}
	if c.MaxRollbacks == 0 {
		c.MaxRollbacks = 4
	}
	if c.MaxSkipStreak == 0 {
		c.MaxSkipStreak = 64
	}
	if c.LRBackoff == 0 {
		c.LRBackoff = 0.5
	}
	if c.LRFloor == 0 {
		c.LRFloor = 1.0 / 64
	}
	if c.CooldownSteps == 0 {
		c.CooldownSteps = 200
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 500
	}
	if c.CheckpointKeep == 0 {
		c.CheckpointKeep = 2
	}
	if c.StatsWindow == 0 {
		c.StatsWindow = 64
	}
	if c.DiagPath == "" {
		c.DiagPath = c.CheckpointPath + ".diag.json"
	}
	return c
}

// Trip/skip reasons and metric names.
const (
	ReasonNonFiniteLoss   = "non-finite loss"
	ReasonNonFiniteGrad   = "non-finite gradient"
	ReasonGradExplosion   = "gradient explosion"
	ReasonLossSpike       = "loss spike"
	ReasonNonFiniteParams = "non-finite parameters"

	KindSkip       = "skip"
	KindRollback   = "rollback"
	KindLRBackoff  = "lr_backoff"
	KindLRRecover  = "lr_recover"
	KindCheckpoint = "checkpoint"
	KindAbort      = "abort"

	MetricTrips           = "sentinel.trips"
	MetricSkips           = "sentinel.batch_skips"
	MetricRollbacks       = "sentinel.rollbacks"
	MetricLRBackoffs      = "sentinel.lr_backoffs"
	MetricLRRecoveries    = "sentinel.lr_recoveries"
	MetricNonFiniteLoss   = "sentinel.nonfinite_loss"
	MetricNonFiniteGrad   = "sentinel.nonfinite_grad"
	MetricLossSpikes      = "sentinel.loss_spikes"
	MetricGradExplosions  = "sentinel.grad_explosions"
	MetricNonFiniteParams = "sentinel.nonfinite_params"
	MetricCheckpoints     = "sentinel.checkpoints"
	MetricAborts          = "sentinel.aborts"
)

// Event is one sentinel decision, in JSONL-friendly form.
type Event struct {
	Step       int     `json:"step"`
	Kind       string  `json:"event"`                 // skip | rollback | lr_backoff | lr_recover | checkpoint | abort
	Reason     string  `json:"reason,omitempty"`      // what tripped ("" for checkpoints/recoveries)
	BatchID    uint64  `json:"batch_id,omitempty"`    // sampler position of the offending batch
	CriticLoss float64 `json:"critic_loss,omitempty"` // loss that tripped (skip events)
	LossEMA    float64 `json:"loss_ema,omitempty"`
	LRScale    float64 `json:"lr_scale,omitempty"`  // LR multiplier in effect after the event
	FromStep   int     `json:"from_step,omitempty"` // rollback: step rolled back from
	ToStep     int     `json:"to_step,omitempty"`   // rollback: checkpoint step resumed at
}

// Sentinel owns the divergence state machine for one training run. Not
// safe for concurrent use; one instance per Run.
type Sentinel struct {
	cfg Config

	learner *rl.CRR
	basePi  float64
	baseQ   float64
	lrScale float64

	ema     float64
	emaN    int // applied steps folded into the EMA
	pending string

	skipStreak     int
	rollbackStreak int
	cleanStreak    int

	trips     int
	skips     int
	rollbacks int

	events   []Event
	statsWin []rl.TrainStats
	offend   []uint64
}

// New builds a sentinel for one training run.
func New(cfg Config) *Sentinel {
	return &Sentinel{cfg: cfg.fill(), lrScale: 1}
}

// Run drives learner.Cfg.Steps gradient steps under guard and returns the
// learner that finished them — not necessarily the one passed in, because
// a rollback reconstructs the learner from the last good checkpoint (the
// OnStep hook and learning-rate scale are carried over). progress
// (optional) receives a run-local step counter with each applied or
// skipped step; after a rollback the replayed steps are reported again.
// Cancelling ctx returns the current learner cleanly (nil error) so the
// caller's checkpoint-and-exit path works unchanged.
func (s *Sentinel) Run(ctx context.Context, learner *rl.CRR, ds *rl.Dataset, progress func(step int, criticLoss, policyLoss float64)) (*rl.CRR, error) {
	if s.cfg.CheckpointPath == "" {
		return learner, fmt.Errorf("sentinel: Config.CheckpointPath is required (rollback anchor)")
	}
	if ds.Transitions() == 0 {
		return learner, fmt.Errorf("sentinel: dataset has no usable transitions")
	}
	s.learner = learner
	s.basePi, s.baseQ = learner.LearningRates()
	target := learner.StepsDone() + learner.Cfg.Steps

	// Anchor: a rollback must always have somewhere to land, including on
	// the very first step.
	if err := s.checkpoint(); err != nil {
		return learner, err
	}

	s.learner.GradGate = s.gate
	defer func() { s.learner.GradGate = nil }()

	local := 0
	for s.learner.StepsDone() < target {
		if ctx != nil && ctx.Err() != nil {
			return s.learner, nil
		}
		s.pending = ""
		st := s.learner.TrainStep(ds)
		local++
		if progress != nil {
			progress(local, st.CriticLoss, st.PolicyLoss)
		}

		if st.Skipped {
			s.skips++
			s.skipStreak++
			s.cleanStreak = 0
			if s.skipStreak >= s.cfg.MaxSkipStreak {
				return s.learner, s.abort(fmt.Sprintf(
					"%d consecutive batches rejected (%s last) — the pool itself looks poisoned; run the data-quality gate (sage-train -sanitize)",
					s.skipStreak, s.pending))
			}
			continue
		}

		// Applied step: fold the loss into the EMA, sweep parameters.
		s.foldEMA(st.CriticLoss)
		due := s.learner.StepsDone()%s.cfg.ParamSweepEvery == 0
		if due && !s.learner.ParamsFinite() {
			s.cfg.Metrics.Counter(MetricNonFiniteParams).Inc()
			if err := s.rollback(ds, ReasonNonFiniteParams, st); err != nil {
				return s.learner, err
			}
			continue
		}

		s.skipStreak = 0
		s.cleanStreak++
		if s.cleanStreak >= s.cfg.CooldownSteps {
			s.rollbackStreak = 0
			if s.lrScale < 1 {
				s.recoverLR(st.Step)
				s.cleanStreak = 0
			}
		}
		if s.learner.StepsDone()%s.cfg.CheckpointEvery == 0 {
			if err := s.checkpoint(); err != nil {
				return s.learner, err
			}
		}
	}
	return s.learner, nil
}

// gate is the CRR.GradGate hook: it sees every batch's stats before the
// optimizer and decides whether the batch may apply.
func (s *Sentinel) gate(st rl.TrainStats) bool {
	reason := ""
	switch {
	case !finite(st.CriticLoss) || !finite(st.PolicyLoss):
		reason = ReasonNonFiniteLoss
		s.cfg.Metrics.Counter(MetricNonFiniteLoss).Inc()
	case !finite(st.GradNormPi) || !finite(st.GradNormQ):
		reason = ReasonNonFiniteGrad
		s.cfg.Metrics.Counter(MetricNonFiniteGrad).Inc()
	case st.GradNormPi > s.cfg.GradCeil || st.GradNormQ > s.cfg.GradCeil:
		reason = ReasonGradExplosion
		s.cfg.Metrics.Counter(MetricGradExplosions).Inc()
	case s.emaN >= s.cfg.Warmup && s.ema > 1e-12 && st.CriticLoss > s.cfg.SpikeFactor*s.ema:
		reason = ReasonLossSpike
		s.cfg.Metrics.Counter(MetricLossSpikes).Inc()
	}
	s.record(st)
	if reason == "" {
		return true
	}
	s.pending = reason
	s.trips++
	s.cfg.Metrics.Counter(MetricTrips).Inc()
	s.cfg.Metrics.Counter(MetricSkips).Inc()
	s.offend = append(s.offend, st.BatchID)
	s.event(Event{
		Step: st.Step, Kind: KindSkip, Reason: reason, BatchID: st.BatchID,
		CriticLoss: st.CriticLoss, LossEMA: s.ema, LRScale: s.lrScale,
	})
	return false
}

// rollback reconstructs the learner from the last good checkpoint, halves
// the learning rate, and deterministically skips the batch that tripped.
func (s *Sentinel) rollback(ds *rl.Dataset, reason string, st rl.TrainStats) error {
	s.trips++
	s.rollbacks++
	s.rollbackStreak++
	s.cleanStreak = 0
	s.cfg.Metrics.Counter(MetricTrips).Inc()
	s.cfg.Metrics.Counter(MetricRollbacks).Inc()
	s.offend = append(s.offend, st.BatchID)

	fromStep := s.learner.StepsDone()
	if s.rollbackStreak > s.cfg.MaxRollbacks {
		return s.abort(fmt.Sprintf("%d consecutive rollbacks (%s at step %d)",
			s.rollbackStreak, reason, fromStep))
	}
	restored, steps, _, err := rl.LoadCheckpointAuto(s.cfg.CheckpointPath, ds)
	if err != nil {
		s.event(Event{Step: fromStep, Kind: KindRollback, Reason: reason, LRScale: s.lrScale})
		return s.abort(fmt.Sprintf("rollback from step %d failed: %v", fromStep, err))
	}
	restored.OnStep = s.learner.OnStep
	restored.Cfg.Steps = s.learner.Cfg.Steps
	restored.GradGate = s.gate
	s.learner = restored

	s.backoffLR(fromStep)
	s.learner.SkipBatch()
	s.event(Event{
		Step: fromStep, Kind: KindRollback, Reason: reason, BatchID: st.BatchID,
		LRScale: s.lrScale, FromStep: fromStep, ToStep: steps,
	})
	return nil
}

func (s *Sentinel) backoffLR(step int) {
	next := s.lrScale * s.cfg.LRBackoff
	if next < s.cfg.LRFloor {
		next = s.cfg.LRFloor
	}
	if next != s.lrScale {
		s.lrScale = next
		s.cfg.Metrics.Counter(MetricLRBackoffs).Inc()
		s.event(Event{Step: step, Kind: KindLRBackoff, LRScale: s.lrScale})
	}
	s.learner.SetLearningRates(s.basePi*s.lrScale, s.baseQ*s.lrScale)
}

func (s *Sentinel) recoverLR(step int) {
	s.lrScale /= s.cfg.LRBackoff
	if s.lrScale > 1 {
		s.lrScale = 1
	}
	s.learner.SetLearningRates(s.basePi*s.lrScale, s.baseQ*s.lrScale)
	s.cfg.Metrics.Counter(MetricLRRecoveries).Inc()
	s.event(Event{Step: step, Kind: KindLRRecover, LRScale: s.lrScale})
}

// checkpoint saves a known-good rollback anchor. The parameter sweep runs
// first: checkpointing corrupt weights would poison the anchor the whole
// mechanism depends on.
func (s *Sentinel) checkpoint() error {
	if !s.learner.ParamsFinite() {
		return s.abort(fmt.Sprintf("refusing to checkpoint non-finite weights at step %d", s.learner.StepsDone()))
	}
	if err := s.learner.SaveCheckpointRotate(s.cfg.CheckpointPath, s.learner.StepsDone(), s.cfg.CheckpointKeep); err != nil {
		return fmt.Errorf("sentinel: %w", err)
	}
	s.cfg.Metrics.Counter(MetricCheckpoints).Inc()
	s.event(Event{Step: s.learner.StepsDone(), Kind: KindCheckpoint, LRScale: s.lrScale})
	return nil
}

func (s *Sentinel) foldEMA(loss float64) {
	if !finite(loss) {
		return
	}
	if s.emaN == 0 {
		s.ema = loss
	} else {
		s.ema = s.cfg.EMADecay*s.ema + (1-s.cfg.EMADecay)*loss
	}
	s.emaN++
}

func (s *Sentinel) record(st rl.TrainStats) {
	s.statsWin = append(s.statsWin, st)
	if n := len(s.statsWin) - s.cfg.StatsWindow; n > 0 {
		s.statsWin = append(s.statsWin[:0], s.statsWin[n:]...)
	}
}

// event appends to the decision log, clamping non-finite floats to zero
// (JSON cannot carry NaN/Inf; the Reason field already names the trip).
func (s *Sentinel) event(e Event) {
	if !finite(e.CriticLoss) {
		e.CriticLoss = 0
	}
	if !finite(e.LossEMA) {
		e.LossEMA = 0
	}
	s.events = append(s.events, e)
}

// Trips returns how many batches the sentinel flagged (skips + rollbacks).
func (s *Sentinel) Trips() int { return s.trips }

// Skips returns how many batches were rejected without a rollback.
func (s *Sentinel) Skips() int { return s.skips }

// Rollbacks returns how many checkpoint rollbacks were performed.
func (s *Sentinel) Rollbacks() int { return s.rollbacks }

// LRScale returns the learning-rate multiplier currently in effect.
func (s *Sentinel) LRScale() float64 { return s.lrScale }

// Events returns a copy of the decision log.
func (s *Sentinel) Events() []Event {
	return append([]Event(nil), s.events...)
}

// EmitEvents writes every sentinel event to the JSONL emitter (one line
// per event, the telemetry wire format).
func (s *Sentinel) EmitEvents(j *telemetry.JSONL) error {
	for _, e := range s.events {
		if err := j.Emit(e); err != nil {
			return err
		}
	}
	return nil
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
