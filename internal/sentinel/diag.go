package sentinel

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"sage/internal/nn"
	"sage/internal/rl"
	"sage/internal/safeio"
)

// ParamHistogram summarizes the magnitude distribution of a module's
// parameters: |v| bucketed by decade plus explicit zero/NaN/Inf counts.
// It makes "how broken are the weights" legible from the diagnostic
// bundle without shipping the weights themselves.
type ParamHistogram struct {
	Total int `json:"total"`
	Zero  int `json:"zero"`
	NaN   int `json:"nan"`
	Inf   int `json:"inf"`
	// Decades[d] counts finite non-zero values with floor(log10|v|) == d,
	// clamped to [MinDecade, MaxDecade]. Keys are the decade exponents.
	Decades map[int]int `json:"decades"`
}

const (
	minDecade = -12
	maxDecade = 12
)

// HistogramParams buckets every parameter scalar of the module.
func HistogramParams(m nn.Module) ParamHistogram {
	h := ParamHistogram{Decades: map[int]int{}}
	for _, p := range m.Params() {
		for _, v := range p.Data {
			h.Total++
			switch {
			case math.IsNaN(v):
				h.NaN++
			case math.IsInf(v, 0):
				h.Inf++
			case v == 0:
				h.Zero++
			default:
				d := int(math.Floor(math.Log10(math.Abs(v))))
				if d < minDecade {
					d = minDecade
				}
				if d > maxDecade {
					d = maxDecade
				}
				h.Decades[d]++
			}
		}
	}
	return h
}

// Diagnostics is the abort bundle: everything needed to understand a run
// the sentinel gave up on, written as plain JSON next to the checkpoint.
type Diagnostics struct {
	Reason    string  `json:"reason"`
	Step      int     `json:"step"`      // absolute learner step at abort
	Trips     int     `json:"trips"`     // total flagged batches
	Skips     int     `json:"skips"`     // batches rejected pre-optimizer
	Rollbacks int     `json:"rollbacks"` // checkpoint rollbacks performed
	LRScale   float64 `json:"lr_scale"`  // LR multiplier at abort
	LossEMA   float64 `json:"loss_ema"`  // critic-loss EMA at abort

	// OffendingBatches are the sampler positions (rl.TrainStats.BatchID)
	// of every batch that tripped the sentinel, in order.
	OffendingBatches []uint64 `json:"offending_batches"`
	// StatsWindow is the most recent TrainStats seen (applied or skipped).
	StatsWindow []rl.TrainStats `json:"stats_window"`
	// Events is the full decision log.
	Events []Event `json:"events"`
	// PolicyParams and CriticParams summarize the final weights.
	PolicyParams ParamHistogram `json:"policy_params"`
	CriticParams ParamHistogram `json:"critic_params"`
}

// abort assembles the bundle, writes it atomically, bumps the counter,
// and returns the terminal error.
func (s *Sentinel) abort(reason string) error {
	s.cfg.Metrics.Counter(MetricAborts).Inc()
	step := s.learner.StepsDone()
	s.event(Event{Step: step, Kind: KindAbort, Reason: reason, LRScale: s.lrScale})
	d := Diagnostics{
		Reason:           reason,
		Step:             step,
		Trips:            s.trips,
		Skips:            s.skips,
		Rollbacks:        s.rollbacks,
		LRScale:          s.lrScale,
		LossEMA:          s.ema,
		OffendingBatches: append([]uint64(nil), s.offend...),
		StatsWindow:      append([]rl.TrainStats(nil), s.statsWin...),
		Events:           s.Events(),
		PolicyParams:     HistogramParams(s.learner.Policy),
		CriticParams:     HistogramParams(s.learner.CriticModule()),
	}
	werr := WriteDiagnostics(s.cfg.DiagPath, d)
	if werr != nil {
		return fmt.Errorf("sentinel: training aborted at step %d: %s (and writing diagnostics failed: %v)", step, reason, werr)
	}
	return fmt.Errorf("sentinel: training aborted at step %d: %s (diagnostics: %s)", step, reason, s.cfg.DiagPath)
}

// WriteDiagnostics writes the bundle as indented JSON via an atomic
// rename, so a crash mid-abort never leaves a truncated report.
func WriteDiagnostics(path string, d Diagnostics) error {
	// NaN/Inf stats are expected in an abort bundle but are not valid
	// JSON; sanitize them to sentinel strings field-by-field is overkill —
	// instead clamp non-finite floats in the stats window.
	for i := range d.StatsWindow {
		sanitizeStats(&d.StatsWindow[i])
	}
	for i := range d.Events {
		if !finite(d.Events[i].CriticLoss) {
			d.Events[i].CriticLoss = 0
		}
		if !finite(d.Events[i].LossEMA) {
			d.Events[i].LossEMA = 0
		}
	}
	if !finite(d.LossEMA) {
		d.LossEMA = 0
	}
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return safeio.WriteFileRaw(path, func(w io.Writer) error {
		_, werr := w.Write(b)
		return werr
	})
}

func sanitizeStats(st *rl.TrainStats) {
	for _, f := range []*float64{
		&st.CriticLoss, &st.PolicyLoss, &st.MeanFilter, &st.FilterAccept,
		&st.AdvMean, &st.AdvStd, &st.GradNormPi, &st.GradNormQ,
		&st.GradNormPiClip, &st.GradNormQClip,
	} {
		if !finite(*f) {
			*f = 0
		}
	}
}
