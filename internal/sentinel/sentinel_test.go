package sentinel_test

import (
	"bufio"
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"sage/internal/chaos"
	"sage/internal/nn"
	"sage/internal/rl"
	"sage/internal/sentinel"
	"sage/internal/telemetry"
)

// cleanTraj returns a synthetic trajectory in a fixed two-feature state:
// action +0.5 earns reward 1, action −0.5 earns 0 (the bandit dataset the
// CRR tests converge on).
func cleanTraj(scheme string, action, reward float64, n int) rl.Traj {
	tr := rl.Traj{Scheme: scheme, Env: "synthetic"}
	for i := 0; i < n; i++ {
		tr.States = append(tr.States, []float64{1, -1})
		tr.Actions = append(tr.Actions, action)
		tr.Rewards = append(tr.Rewards, reward)
	}
	return tr
}

func cleanDataset() *rl.Dataset {
	ds := &rl.Dataset{Mask: []int{0, 1}}
	ds.Trajs = []rl.Traj{
		cleanTraj("good", 0.5, 1, 120),
		cleanTraj("bad", -0.5, 0, 120),
	}
	ds.Norm = nn.FitNormalizer(ds.Trajs[0].States)
	return ds
}

func tinyCRR(ds *rl.Dataset, steps int) *rl.CRR {
	return rl.NewCRR(ds, rl.CRRConfig{
		Policy: nn.PolicyConfig{Enc: 8, Hidden: 4, ResBlocks: 1, K: 2},
		Steps:  steps, Batch: 4, SeqLen: 2, Seed: 11,
	})
}

// A pool with a NaN-reward trajectory mixed in: batches that sample it
// must be rejected pre-optimizer, batches that miss it must apply, and
// the run must end with finite weights.
func TestSentinelSkipsPoisonedBatches(t *testing.T) {
	ds := cleanDataset()
	poison := cleanTraj("poison", 0.5, 1, 120)
	for i := range poison.Rewards {
		poison.Rewards[i] = math.NaN()
	}
	ds.Trajs = append(ds.Trajs, poison)

	reg := telemetry.NewRegistry()
	dir := t.TempDir()
	learner := tinyCRR(ds, 80)
	sn := sentinel.New(sentinel.Config{
		CheckpointPath: filepath.Join(dir, "ckpt.gob.gz"),
		MaxSkipStreak:  1000, // the poisoned traj is sampled often; don't abort
		Metrics:        reg,
	})
	learner, err := sn.Run(context.Background(), learner, ds, nil)
	if err != nil {
		t.Fatalf("sentinel aborted on a recoverable pool: %v", err)
	}
	if sn.Skips() == 0 {
		t.Fatal("no batches skipped despite NaN rewards in the pool")
	}
	if !learner.ParamsFinite() {
		t.Fatal("weights went non-finite under the sentinel")
	}
	if got := reg.Counter(sentinel.MetricSkips).Value(); got != int64(sn.Skips()) {
		t.Fatalf("skip counter %d, accessor %d", got, sn.Skips())
	}
	if reg.Counter(sentinel.MetricTrips).Value() == 0 {
		t.Fatal("trip counter not bumped")
	}

	// Every skip event must carry the reason and a batch id, and the whole
	// log must round-trip as JSONL.
	events := sn.Events()
	skips := 0
	for _, e := range events {
		if e.Kind == sentinel.KindSkip {
			skips++
			if e.Reason != sentinel.ReasonNonFiniteLoss && e.Reason != sentinel.ReasonNonFiniteGrad {
				t.Fatalf("skip event with unexpected reason %q", e.Reason)
			}
		}
	}
	if skips != sn.Skips() {
		t.Fatalf("%d skip events, %d skips", skips, sn.Skips())
	}
	path := filepath.Join(dir, "events.jsonl")
	j, err := telemetry.CreateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sn.EmitEvents(j); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	scan := bufio.NewScanner(f)
	for scan.Scan() {
		var e sentinel.Event
		if err := json.Unmarshal(scan.Bytes(), &e); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		lines++
	}
	if lines != len(events) {
		t.Fatalf("emitted %d lines, %d events", lines, len(events))
	}
}

// Weight corruption that slips past the batch gate (injected here straight
// into the parameters mid-run) must trigger a checkpoint rollback, a
// learning-rate backoff, and — after a clean cooldown — a recovery.
func TestSentinelRollsBackOnParamCorruption(t *testing.T) {
	ds := cleanDataset()
	reg := telemetry.NewRegistry()
	learner := tinyCRR(ds, 30)
	fired := false
	learner.OnStep = func(st rl.TrainStats) {
		if !fired && st.Step == 10 {
			fired = true
			chaos.PoisonPolicy(learner.Policy)
		}
	}
	sn := sentinel.New(sentinel.Config{
		CheckpointPath:  filepath.Join(t.TempDir(), "ckpt.gob.gz"),
		ParamSweepEvery: 1,
		CooldownSteps:   8,
		Metrics:         reg,
	})
	out, err := sn.Run(context.Background(), learner, ds, nil)
	if err != nil {
		t.Fatalf("sentinel aborted instead of rolling back: %v", err)
	}
	if sn.Rollbacks() != 1 {
		t.Fatalf("rollbacks = %d, want 1", sn.Rollbacks())
	}
	if !out.ParamsFinite() {
		t.Fatal("returned learner has non-finite weights")
	}
	if out.StepsDone() != 30 {
		t.Fatalf("StepsDone = %d, want 30 (replayed after rollback)", out.StepsDone())
	}
	if reg.Counter(sentinel.MetricRollbacks).Value() != 1 {
		t.Fatal("rollback counter not bumped")
	}
	if reg.Counter(sentinel.MetricLRBackoffs).Value() != 1 {
		t.Fatal("lr backoff counter not bumped")
	}
	// 20 clean replayed steps > CooldownSteps: the halved LR must recover.
	if reg.Counter(sentinel.MetricLRRecoveries).Value() == 0 {
		t.Fatal("lr never recovered after cooldown")
	}
	if sn.LRScale() != 1 {
		t.Fatalf("final LR scale %v, want 1 after recovery", sn.LRScale())
	}
	// The rollback event must record the jump.
	found := false
	for _, e := range sn.Events() {
		if e.Kind == sentinel.KindRollback {
			found = true
			if e.Reason != sentinel.ReasonNonFiniteParams {
				t.Fatalf("rollback reason %q", e.Reason)
			}
			if e.FromStep <= e.ToStep {
				t.Fatalf("rollback from %d to %d not a rewind", e.FromStep, e.ToStep)
			}
		}
	}
	if !found {
		t.Fatal("no rollback event logged")
	}
}

// A fully poisoned pool exhausts the skip streak: training must abort
// with an error and a parseable diagnostic bundle on disk.
func TestSentinelAbortsOnHopelessPool(t *testing.T) {
	ds := &rl.Dataset{Mask: []int{0, 1}}
	p1 := cleanTraj("p1", 0.5, math.NaN(), 120)
	p2 := cleanTraj("p2", -0.5, math.NaN(), 120)
	ds.Trajs = []rl.Traj{p1, p2}
	ds.Norm = nn.FitNormalizer(p1.States)

	reg := telemetry.NewRegistry()
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.gob.gz")
	learner := tinyCRR(ds, 200)
	sn := sentinel.New(sentinel.Config{
		CheckpointPath: ckpt,
		MaxSkipStreak:  8,
		Metrics:        reg,
	})
	_, err := sn.Run(context.Background(), learner, ds, nil)
	if err == nil {
		t.Fatal("sentinel trained to completion on an all-NaN pool")
	}
	if reg.Counter(sentinel.MetricAborts).Value() != 1 {
		t.Fatal("abort counter not bumped")
	}
	b, rerr := os.ReadFile(ckpt + ".diag.json")
	if rerr != nil {
		t.Fatalf("diagnostic bundle missing: %v", rerr)
	}
	var d sentinel.Diagnostics
	if err := json.Unmarshal(b, &d); err != nil {
		t.Fatalf("diagnostic bundle not valid JSON: %v", err)
	}
	if d.Reason == "" || d.Skips != 8 {
		t.Fatalf("bundle reason %q skips %d, want 8 consecutive skips", d.Reason, d.Skips)
	}
	if len(d.OffendingBatches) != 8 {
		t.Fatalf("%d offending batch ids, want 8", len(d.OffendingBatches))
	}
	if len(d.StatsWindow) == 0 || len(d.Events) == 0 {
		t.Fatal("bundle missing stats window or events")
	}
	if d.PolicyParams.Total == 0 || d.CriticParams.Total == 0 {
		t.Fatal("bundle missing parameter histograms")
	}
	if d.PolicyParams.NaN != 0 {
		t.Fatal("gate let NaN gradients corrupt the policy weights")
	}
}

// HistogramParams must classify zeros, NaNs, Infs, and decade buckets.
func TestHistogramParams(t *testing.T) {
	pol := nn.NewPolicy(nn.PolicyConfig{InDim: 2, Enc: 4, Hidden: 3, K: 2, Seed: 1})
	ps := pol.Params()
	ps[0].Data[0] = math.NaN()
	ps[0].Data[1] = math.Inf(1)
	ps[0].Data[2] = 0
	ps[0].Data[3] = 1234.5 // decade 3
	h := sentinel.HistogramParams(pol)
	if h.NaN != 1 || h.Inf != 1 {
		t.Fatalf("NaN=%d Inf=%d", h.NaN, h.Inf)
	}
	if h.Zero == 0 {
		t.Fatal("zero bucket empty")
	}
	if h.Decades[3] != 1 {
		t.Fatalf("decade 3 count %d", h.Decades[3])
	}
	if h.Total != nn.ParamCount(pol) {
		t.Fatalf("total %d, want %d", h.Total, nn.ParamCount(pol))
	}
}
