package eval

import (
	"math"
	"testing"
	"testing/quick"

	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/sim"
)

func TestPowerScore(t *testing.T) {
	// α=2: 1.4× throughput ≈ 2× lower delay (the paper's rationale).
	base := PowerScore(10e6, 20, 2)
	moreThr := PowerScore(10e6*math.Sqrt2, 20, 2)
	lessDelay := PowerScore(10e6, 10, 2)
	if math.Abs(moreThr-lessDelay) > 1e-9 {
		t.Fatalf("%v vs %v", moreThr, lessDelay)
	}
	if base >= moreThr {
		t.Fatal("ordering broken")
	}
	if PowerScore(1, 0, 2) != 0 {
		t.Fatal("zero delay must score 0")
	}
}

func TestFriendlinessScore(t *testing.T) {
	if FriendlinessScore(10e6, 10e6) != 0 {
		t.Fatal("perfect share must be 0")
	}
	if FriendlinessScore(5e6, 10e6) != FriendlinessScore(15e6, 10e6) {
		t.Fatal("must be symmetric")
	}
	if FriendlinessScore(5e6, 10e6) != 5 {
		t.Fatalf("got %v", FriendlinessScore(5e6, 10e6))
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal shares: %v", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("one hog: %v", got)
	}
	if JainIndex(nil) != 0 || JainIndex([]float64{0, 0}) != 0 {
		t.Fatal("degenerate")
	}
}

// Property: Jain index is in (0,1] and scale-invariant.
func TestJainIndexProperty(t *testing.T) {
	f := func(raw []uint16, scale uint16) bool {
		if len(raw) == 0 || scale == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		any := false
		for i, v := range raw {
			xs[i] = float64(v)
			ys[i] = float64(v) * float64(scale)
			if v != 0 {
				any = true
			}
		}
		if !any {
			return true
		}
		j1, j2 := JainIndex(xs), JainIndex(ys)
		return j1 > 0 && j1 <= 1+1e-12 && math.Abs(j1-j2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCosine(t *testing.T) {
	u := []float64{1, 0}
	if CosineSimilarity(u, []float64{2, 0}) != 1 {
		t.Fatal("parallel")
	}
	if got := CosineSimilarity(u, []float64{0, 3}); got != 0 {
		t.Fatalf("orthogonal: %v", got)
	}
	if got := CosineDistance(u, []float64{-1, 0}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("antiparallel: %v", got)
	}
	if CosineSimilarity(u, []float64{0, 0}) != 0 {
		t.Fatal("zero vector")
	}
}

func stepsOf(vals ...float64) []gr.Step {
	var out []gr.Step
	for _, v := range vals {
		out = append(out, gr.Step{State: []float64{v, 2 * v}, Action: v / 10, Reward: 0})
	}
	return out
}

func TestTransitionVectors(t *testing.T) {
	steps := stepsOf(1, 2, 3)
	vs := TransitionVectors(steps)
	if len(vs) != 2 {
		t.Fatalf("len %d", len(vs))
	}
	want := []float64{1, 2, 0.1, 2, 4}
	for i, v := range want {
		if vs[0][i] != v {
			t.Fatalf("vs[0] = %v", vs[0])
		}
	}
	if TransitionVectors(steps[:1]) != nil {
		t.Fatal("single step must yield nil")
	}
}

func TestMinDistancesAndSimilarity(t *testing.T) {
	pool := [][]float64{{1, 0}, {0, 1}}
	queries := [][]float64{{1, 0.01}, {-1, 0}}
	ds := MinDistances(queries, pool, 1)
	if ds[0] > 0.01 {
		t.Fatalf("near-identical query distance %v", ds[0])
	}
	if ds[1] < 0.9 {
		t.Fatalf("opposite query distance %v", ds[1])
	}
	sim := MeanSimilarity([][]float64{{1, 0}}, pool, 1)
	if math.Abs(sim-1) > 1e-9 {
		t.Fatalf("similarity %v", sim)
	}
	if MeanSimilarity(nil, pool, 1) != 0 {
		t.Fatal("empty queries")
	}
}

func TestCDFAndPercentile(t *testing.T) {
	xs, ys := CDF([]float64{3, 1, 2})
	if xs[0] != 1 || xs[2] != 3 || ys[2] != 1 {
		t.Fatalf("cdf %v %v", xs, ys)
	}
	if got := Percentile([]float64{1, 2, 3, 4, 5}, 50); got != 3 {
		t.Fatalf("median %v", got)
	}
	if got := Percentile([]float64{1, 2, 3, 4, 5}, 100); got != 5 {
		t.Fatalf("p100 %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestTSNESeparatesClusters(t *testing.T) {
	// Two well-separated Gaussian blobs in 10-D must stay separated in 2-D.
	var pts [][]float64
	var labels []int
	for i := 0; i < 30; i++ {
		p := make([]float64, 10)
		q := make([]float64, 10)
		for k := range p {
			p[k] = 0 + 0.1*float64((i*k)%7)/7
			q[k] = 5 + 0.1*float64((i*k)%5)/5
		}
		pts = append(pts, p, q)
		labels = append(labels, 0, 1)
	}
	emb := TSNE(pts, TSNEOptions{Perplexity: 10, Iterations: 250})
	if len(emb) != len(pts) {
		t.Fatalf("embedding size %d", len(emb))
	}
	if sep := ClusterSeparation(emb, labels); sep < 2 {
		t.Fatalf("cluster separation %v, want clearly separated", sep)
	}
	if TSNE(nil, TSNEOptions{}) != nil {
		t.Fatal("empty input")
	}
	if got := TSNE([][]float64{{1}}, TSNEOptions{}); len(got) != 1 {
		t.Fatal("single point")
	}
}

func TestRunLeagueRanksByDesign(t *testing.T) {
	// Vegas (low delay) should out-rank cubic on deep-buffer single-flow
	// scenarios under Sp; cubic should win the multi-flow friendliness set.
	setI := []netem.Scenario{
		{Name: "deep", Rate: netem.FlatRate(netem.Mbps(24)), MinRTT: 20 * sim.Millisecond,
			QueueBytes: 8 * netem.BDPBytes(netem.Mbps(24), 20*sim.Millisecond), Duration: 8 * sim.Second},
	}
	setII := netem.SetII(netem.SetIIOptions{Level: netem.GridTiny, Duration: 20 * sim.Second})[:1]
	res := RunLeague([]Entrant{SchemeEntrant("cubic"), SchemeEntrant("vegas")}, setI, setII, LeagueOptions{})
	if len(res.Entrants) != 2 {
		t.Fatal("entrants")
	}
	if res.RateSingle["vegas"] <= res.RateSingle["cubic"] {
		t.Fatalf("Set I: vegas %.2f <= cubic %.2f", res.RateSingle["vegas"], res.RateSingle["cubic"])
	}
	if res.RateMulti["cubic"] <= res.RateMulti["vegas"] {
		t.Fatalf("Set II: cubic %.2f <= vegas %.2f", res.RateMulti["cubic"], res.RateMulti["vegas"])
	}
	if got := res.RankingSingle()[0]; got != "vegas" {
		t.Fatalf("ranking single: %v", got)
	}
	if got := res.RankingMulti()[0]; got != "cubic" {
		t.Fatalf("ranking multi: %v", got)
	}
}

func TestMatrixRescoring(t *testing.T) {
	// One matrix, two scorings: tightening the margin can only reduce (or
	// keep) each entrant's winning rate, never raise it.
	setI := netem.SetI(netem.SetIOptions{Level: netem.GridTiny, Duration: 3 * sim.Second})[:3]
	entrants := []Entrant{SchemeEntrant("cubic"), SchemeEntrant("vegas"), SchemeEntrant("bbr2")}
	m := RunMatrix(entrants, setI, LeagueOptions{})
	loose := ScoreLeague(m, LeagueOptions{Margin: 0.10})
	tight := ScoreLeague(m, LeagueOptions{Margin: 0.05})
	for _, e := range entrants {
		if tight.RateSingle[e.Name] > loose.RateSingle[e.Name]+1e-12 {
			t.Fatalf("%s: tighter margin raised the rate (%v > %v)",
				e.Name, tight.RateSingle[e.Name], loose.RateSingle[e.Name])
		}
	}
	// Every cell has at least one winner under any margin.
	sum := 0.0
	for _, e := range entrants {
		sum += tight.RateSingle[e.Name]
	}
	if sum < 1.0-1e-9 {
		t.Fatalf("winner coverage %v < 1 (every cell needs a winner)", sum)
	}
}
