package eval

import (
	"math"
	"sort"

	"sage/internal/gr"
)

// CosineSimilarity returns u·v / (‖u‖‖v‖), the Similarity Index primitive of
// Section 7.2. Zero vectors yield 0.
func CosineSimilarity(u, v []float64) float64 {
	var dot, nu, nv float64
	for i := range u {
		dot += u[i] * v[i]
		nu += u[i] * u[i]
		nv += v[i] * v[i]
	}
	if nu == 0 || nv == 0 {
		return 0
	}
	return dot / (math.Sqrt(nu) * math.Sqrt(nv))
}

// CosineDistance is 1 − CosineSimilarity (the Distance of Section 7.1).
func CosineDistance(u, v []float64) float64 { return 1 - CosineSimilarity(u, v) }

// TransitionVectors flattens a trajectory into (s_t, a_t, s_{t+1}) vectors,
// the representation Figs. 11 and 13 compare.
func TransitionVectors(steps []gr.Step) [][]float64 {
	if len(steps) < 2 {
		return nil
	}
	out := make([][]float64, 0, len(steps)-1)
	for i := 0; i+1 < len(steps); i++ {
		v := make([]float64, 0, 2*len(steps[i].State)+1)
		v = append(v, steps[i].State...)
		v = append(v, steps[i].Action)
		v = append(v, steps[i+1].State...)
		out = append(out, v)
	}
	return out
}

// MinDistances returns, for each query transition, the minimum pairwise
// cosine distance to the pool transitions — the Distance metric whose CDF
// Fig. 11 plots. poolStride subsamples the pool for tractability (1 = all).
func MinDistances(queries, pool [][]float64, poolStride int) []float64 {
	if poolStride < 1 {
		poolStride = 1
	}
	out := make([]float64, len(queries))
	for i, q := range queries {
		best := math.Inf(1)
		for j := 0; j < len(pool); j += poolStride {
			if d := CosineDistance(q, pool[j]); d < best {
				best = d
			}
		}
		if math.IsInf(best, 1) {
			best = 0
		}
		out[i] = best
	}
	return out
}

// MeanSimilarity averages the cosine similarity between each query vector
// and its nearest (most similar) reference vector — the Similarity Index of
// Fig. 13.
func MeanSimilarity(queries, refs [][]float64, refStride int) float64 {
	if len(queries) == 0 || len(refs) == 0 {
		return 0
	}
	if refStride < 1 {
		refStride = 1
	}
	sum := 0.0
	for _, q := range queries {
		best := -1.0
		for j := 0; j < len(refs); j += refStride {
			if s := CosineSimilarity(q, refs[j]); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(queries))
}

// CDF returns the sorted values and their cumulative fractions.
func CDF(values []float64) (xs, ys []float64) {
	xs = append([]float64(nil), values...)
	sort.Float64s(xs)
	ys = make([]float64, len(xs))
	for i := range xs {
		ys[i] = float64(i+1) / float64(len(xs))
	}
	return xs, ys
}

// Percentile returns the p-th percentile (0..100) of values.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	xs := append([]float64(nil), values...)
	sort.Float64s(xs)
	idx := p / 100 * float64(len(xs)-1)
	lo := int(idx)
	if lo >= len(xs)-1 {
		return xs[len(xs)-1]
	}
	frac := idx - float64(lo)
	return xs[lo]*(1-frac) + xs[lo+1]*frac
}
