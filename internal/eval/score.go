// Package eval implements the paper's evaluation machinery (Section 5.1 and
// Appendix D): the power score Sp = r^α/d for single-flow scenarios, the
// friendliness score Sfr = |fc − rc| for multi-flow scenarios, per-interval
// winner determination with a configurable margin, winning rates, league
// rankings, and the cosine Distance/Similarity analyses of Section 7.
package eval

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"

	"sage/internal/cc"
	"sage/internal/netem"
	"sage/internal/rollout"
	"sage/internal/tcp"
)

// Entrant is a scheme that can compete in a league: either a plain CC
// module, or a policy agent driving TCP Pure through a Controller.
type Entrant struct {
	Name string
	// CC builds the kernel module for one flow (used when Controller is nil).
	CC func() tcp.CongestionControl
	// CCFor builds a scenario-aware module (takes precedence over CC) —
	// used by oracles like NATCP that receive network assistance.
	CCFor func(sc netem.Scenario) tcp.CongestionControl
	// Controller builds a fresh periodic controller; the flow then runs
	// TCP Pure underneath.
	Controller func() rollout.Controller
}

// SchemeEntrant wraps a registered cc scheme.
func SchemeEntrant(name string) Entrant {
	return Entrant{Name: name, CC: func() tcp.CongestionControl { return cc.MustNew(name) }}
}

// ControllerEntrant wraps a policy-driven scheme.
func ControllerEntrant(name string, newCtl func() rollout.Controller) Entrant {
	return Entrant{Name: name, Controller: newCtl}
}

// Run executes the entrant in the scenario. A controller entrant runs over
// TCP Pure unless it also names an underlying CC (hybrid schemes like Orca
// run their controller on top of Cubic).
func (e Entrant) Run(sc netem.Scenario, opt rollout.Options) rollout.Result {
	var under tcp.CongestionControl
	switch {
	case e.CCFor != nil:
		under = e.CCFor(sc)
	case e.CC != nil:
		under = e.CC()
	default:
		under = cc.MustNew("pure")
	}
	if e.Controller != nil {
		opt.Controller = e.Controller()
	}
	r := rollout.Run(sc, under, opt)
	r.Scheme = e.Name
	return r
}

// HybridEntrant wraps a controller running on top of a kernel scheme.
func HybridEntrant(name, underlying string, newCtl func() rollout.Controller) Entrant {
	return Entrant{
		Name:       name,
		CC:         func() tcp.CongestionControl { return cc.MustNew(underlying) },
		Controller: newCtl,
	}
}

// PowerScore computes Sp = r^α / d (r in Mb/s, d in ms — units cancel when
// comparing schemes within a scenario).
func PowerScore(thrBps float64, rtt float64, alpha float64) float64 {
	if rtt <= 0 {
		return 0
	}
	return math.Pow(thrBps/1e6, alpha) / rtt
}

// FriendlinessScore computes Sfr = |fc − rc| in Mb/s (smaller is better).
func FriendlinessScore(thrBps, fairBps float64) float64 {
	return math.Abs(fairBps-thrBps) / 1e6
}

// LeagueOptions tunes a league run.
type LeagueOptions struct {
	Alpha     float64 // throughput/delay exponent in Sp (default 2)
	Margin    float64 // winner margin (default 0.10; Appendix D.2 uses 0.05)
	Intervals int     // score intervals per scenario (default 4)
	Parallel  int     // rollout workers (default NumCPU)
	Rollout   rollout.Options
	// Ctx, when non-nil, cancels the league: no new rollouts are
	// dispatched and in-flight ones stop at their next GR tick. The
	// partial matrix is not meaningful for scoring; callers check the
	// context before ranking.
	Ctx context.Context
}

func (o LeagueOptions) fill() LeagueOptions {
	if o.Alpha == 0 {
		o.Alpha = 2
	}
	if o.Margin == 0 {
		o.Margin = 0.10
	}
	if o.Intervals == 0 {
		o.Intervals = 4
	}
	if o.Parallel == 0 {
		o.Parallel = runtime.NumCPU()
	}
	return o
}

// LeagueResult is the outcome of a league: winning rates per entrant for the
// single-flow (Set I) and multi-flow (Set II) scenario groups.
type LeagueResult struct {
	Entrants   []string
	RateSingle map[string]float64
	RateMulti  map[string]float64
}

// RankingSingle returns entrants sorted by Set I winning rate, descending.
func (r *LeagueResult) RankingSingle() []string { return rankBy(r.Entrants, r.RateSingle) }

// RankingMulti returns entrants sorted by Set II winning rate, descending.
func (r *LeagueResult) RankingMulti() []string { return rankBy(r.Entrants, r.RateMulti) }

func rankBy(names []string, score map[string]float64) []string {
	out := append([]string(nil), names...)
	sort.SliceStable(out, func(i, j int) bool { return score[out[i]] > score[out[j]] })
	return out
}

// Matrix holds the rollout results of every entrant over every scenario —
// the raw material leagues are scored from. Collecting it once lets the
// same runs be re-scored under different margins and α values
// (Figs. 20/21, Tables 2/3).
type Matrix struct {
	Entrants  []Entrant
	Scenarios []netem.Scenario
	Results   [][]rollout.Result // [entrant][scenario]
}

// RunMatrix rolls every entrant through every scenario in parallel.
func RunMatrix(entrants []Entrant, scenarios []netem.Scenario, opt LeagueOptions) *Matrix {
	opt = opt.fill()
	nE, nS := len(entrants), len(scenarios)
	results := make([][]rollout.Result, nE)
	for i := range results {
		results[i] = make([]rollout.Result, nS)
	}
	type job struct{ e, s int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < opt.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if opt.Ctx != nil && opt.Ctx.Err() != nil {
					continue
				}
				ro := opt.Rollout
				ro.Intervals = opt.Intervals
				ro.Ctx = opt.Ctx
				results[j.e][j.s] = entrants[j.e].Run(scenarios[j.s], ro)
			}
		}()
	}
dispatch:
	for e := 0; e < nE; e++ {
		for s := 0; s < nS; s++ {
			if opt.Ctx != nil && opt.Ctx.Err() != nil {
				break dispatch
			}
			jobs <- job{e, s}
		}
	}
	close(jobs)
	wg.Wait()
	return &Matrix{Entrants: entrants, Scenarios: scenarios, Results: results}
}

// RunLeague rolls every entrant through every scenario and computes winning
// rates per the paper's definition: an entrant wins a (scenario, interval)
// cell when its score is within Margin of the best score in that cell; the
// winning rate is wins over total cells.
func RunLeague(entrants []Entrant, setI, setII []netem.Scenario, opt LeagueOptions) *LeagueResult {
	all := append(append([]netem.Scenario(nil), setI...), setII...)
	return ScoreLeague(RunMatrix(entrants, all, opt), opt)
}

// ScoreLeague computes winning rates from an existing result matrix.
func ScoreLeague(m *Matrix, opt LeagueOptions) *LeagueResult {
	opt = opt.fill()
	entrants, all, results := m.Entrants, m.Scenarios, m.Results
	nE, nS := len(entrants), len(all)

	res := &LeagueResult{
		RateSingle: map[string]float64{},
		RateMulti:  map[string]float64{},
	}
	for _, e := range entrants {
		res.Entrants = append(res.Entrants, e.Name)
	}

	winsSingle := make([]int, nE)
	winsMulti := make([]int, nE)
	cellsSingle, cellsMulti := 0, 0
	for s := 0; s < nS; s++ {
		multi := all[s].CubicFlows > 0
		for iv := 0; iv < opt.Intervals; iv++ {
			winners := cellWinners(results, s, iv, multi, opt)
			if multi {
				cellsMulti++
				for _, w := range winners {
					winsMulti[w]++
				}
			} else {
				cellsSingle++
				for _, w := range winners {
					winsSingle[w]++
				}
			}
		}
	}
	for i, e := range entrants {
		if cellsSingle > 0 {
			res.RateSingle[e.Name] = float64(winsSingle[i]) / float64(cellsSingle)
		}
		if cellsMulti > 0 {
			res.RateMulti[e.Name] = float64(winsMulti[i]) / float64(cellsMulti)
		}
	}
	return res
}

// cellWinners returns the entrant indices winning the (scenario, interval)
// cell under the margin rule.
func cellWinners(results [][]rollout.Result, s, iv int, multi bool, opt LeagueOptions) []int {
	type scored struct {
		idx int
		val float64
	}
	var cells []scored
	for e := range results {
		r := results[e][s]
		if iv >= len(r.Intervals) {
			continue
		}
		ivs := r.Intervals[iv]
		var v float64
		if multi {
			v = FriendlinessScore(ivs.ThroughputBps, r.FairShareBps)
		} else {
			v = PowerScore(ivs.ThroughputBps, ivs.AvgRTT.Millis(), opt.Alpha)
		}
		cells = append(cells, scored{e, v})
	}
	if len(cells) == 0 {
		return nil
	}
	var winners []int
	if multi {
		// Smaller Sfr is better; win when within (1+Margin)× the best,
		// with a small absolute slack so a perfect 0 doesn't exclude
		// near-perfect peers.
		best := cells[0].val
		for _, c := range cells {
			if c.val < best {
				best = c.val
			}
		}
		slack := best*opt.Margin + 0.05
		for _, c := range cells {
			if c.val <= best+slack {
				winners = append(winners, c.idx)
			}
		}
	} else {
		best := 0.0
		for _, c := range cells {
			if c.val > best {
				best = c.val
			}
		}
		for _, c := range cells {
			if c.val >= (1-opt.Margin)*best {
				winners = append(winners, c.idx)
			}
		}
	}
	return winners
}

// JainIndex computes Jain's fairness index over per-flow throughputs.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}
