package eval

import (
	"math"
	"math/rand"
)

// TSNEOptions tunes the embedding.
type TSNEOptions struct {
	Perplexity float64 // default 20
	Iterations int     // default 400
	LearnRate  float64 // default 100
	Seed       int64
}

func (o TSNEOptions) fill() TSNEOptions {
	if o.Perplexity == 0 {
		o.Perplexity = 20
	}
	if o.Iterations == 0 {
		o.Iterations = 400
	}
	if o.LearnRate == 0 {
		o.LearnRate = 100
	}
	return o
}

// TSNE embeds the points into 2-D with the exact t-SNE algorithm
// (van der Maaten & Hinton 2008), used for Fig. 16's hidden-layer
// visualization. Suitable for up to a few thousand points.
func TSNE(points [][]float64, opt TSNEOptions) [][2]float64 {
	opt = opt.fill()
	n := len(points)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return make([][2]float64, 1)
	}
	rng := rand.New(rand.NewSource(opt.Seed + 17))

	// Pairwise squared distances.
	d2 := make([][]float64, n)
	for i := range d2 {
		d2[i] = make([]float64, n)
		for j := 0; j < i; j++ {
			s := 0.0
			for k := range points[i] {
				d := points[i][k] - points[j][k]
				s += d * d
			}
			d2[i][j] = s
			d2[j][i] = s
		}
	}

	// Conditional probabilities with per-point bandwidth found by binary
	// search on the perplexity.
	p := make([][]float64, n)
	logPerp := math.Log(opt.Perplexity)
	for i := 0; i < n; i++ {
		p[i] = make([]float64, n)
		lo, hi := 1e-20, 1e20
		beta := 1.0
		for iter := 0; iter < 50; iter++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				if j != i {
					p[i][j] = math.Exp(-d2[i][j] * beta)
					sum += p[i][j]
				}
			}
			if sum == 0 {
				sum = 1e-12
			}
			h := 0.0
			for j := 0; j < n; j++ {
				if j != i && p[i][j] > 0 {
					pj := p[i][j] / sum
					h -= pj * math.Log(pj)
				}
			}
			for j := 0; j < n; j++ {
				p[i][j] /= sum
			}
			if math.Abs(h-logPerp) < 1e-4 {
				break
			}
			if h > logPerp {
				lo = beta
				if hi > 1e19 {
					beta *= 2
				} else {
					beta = (beta + hi) / 2
				}
			} else {
				hi = beta
				beta = (beta + lo) / 2
			}
		}
	}
	// Symmetrize, with early exaggeration.
	P := make([][]float64, n)
	for i := range P {
		P[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := (p[i][j] + p[j][i]) / (2 * float64(n))
			if v < 1e-12 {
				v = 1e-12
			}
			P[i][j] = v * 4
		}
	}

	y := make([][2]float64, n)
	for i := range y {
		y[i][0] = rng.NormFloat64() * 1e-2
		y[i][1] = rng.NormFloat64() * 1e-2
	}
	vel := make([][2]float64, n)
	grad := make([][2]float64, n)
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
	}

	for iter := 0; iter < opt.Iterations; iter++ {
		if iter == opt.Iterations/4 {
			for i := range P { // end early exaggeration
				for j := range P[i] {
					P[i][j] /= 4
				}
			}
		}
		z := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				dx := y[i][0] - y[j][0]
				dy := y[i][1] - y[j][1]
				q[i][j] = 1 / (1 + dx*dx + dy*dy)
				z += q[i][j]
			}
		}
		momentum := 0.5
		if iter > 100 {
			momentum = 0.8
		}
		for i := 0; i < n; i++ {
			grad[i] = [2]float64{}
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				qn := q[i][j] / z
				mult := 4 * (P[i][j] - qn) * q[i][j]
				grad[i][0] += mult * (y[i][0] - y[j][0])
				grad[i][1] += mult * (y[i][1] - y[j][1])
			}
		}
		for i := 0; i < n; i++ {
			for k := 0; k < 2; k++ {
				vel[i][k] = momentum*vel[i][k] - opt.LearnRate*grad[i][k]
				y[i][k] += vel[i][k]
			}
		}
	}
	return y
}

// ClusterSeparation scores how well labeled groups separate in an embedding:
// the ratio of mean inter-label distance to mean intra-label distance
// (higher = cleaner separation). Used to compare Sage-s/m/l in Fig. 16
// without eyeballing a scatter plot.
func ClusterSeparation(points [][2]float64, labels []int) float64 {
	var intra, inter float64
	var nIntra, nInter int
	for i := range points {
		for j := i + 1; j < len(points); j++ {
			dx := points[i][0] - points[j][0]
			dy := points[i][1] - points[j][1]
			d := math.Sqrt(dx*dx + dy*dy)
			if labels[i] == labels[j] {
				intra += d
				nIntra++
			} else {
				inter += d
				nInter++
			}
		}
	}
	if nIntra == 0 || nInter == 0 || intra == 0 {
		return 0
	}
	return (inter / float64(nInter)) / (intra / float64(nIntra))
}
