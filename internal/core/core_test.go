package core

import (
	"context"
	"path/filepath"
	"testing"

	"sage/internal/cc"
	"sage/internal/collector"
	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/nn"
	"sage/internal/rl"
	"sage/internal/rollout"
	"sage/internal/sim"
)

// tinyPool collects a very small pool for fast tests.
func tinyPool(t *testing.T) *collector.Pool {
	t.Helper()
	setI := netem.SetI(netem.SetIOptions{Level: netem.GridTiny, Duration: 4 * sim.Second})[:3]
	setII := netem.SetII(netem.SetIIOptions{Level: netem.GridTiny, Duration: 6 * sim.Second})[:2]
	p, err := collector.Collect(context.Background(), []string{"cubic", "vegas", "bbr2"},
		append(setI, setII...), collector.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func tinyCRR() rl.CRRConfig {
	return rl.CRRConfig{
		Policy: nn.PolicyConfig{Enc: 16, Hidden: 8, ResBlocks: 1, K: 3},
		Critic: nn.CriticConfig{Hidden: 16, Atoms: 11},
		Steps:  60,
		Batch:  4,
		SeqLen: 4,
	}
}

func TestTrainDeployRoundTrip(t *testing.T) {
	pool := tinyPool(t)
	model := Train(pool, Config{CRR: tinyCRR()}, nil)
	if model.Policy == nil || len(model.Mask) != gr.StateDim {
		t.Fatal("model incomplete")
	}

	// Deploy on a fresh scenario through TCP Pure.
	sc := netem.SetI(netem.SetIOptions{Level: netem.GridTiny, Duration: 4 * sim.Second})[0]
	agent := model.NewAgent(1)
	res := rollout.Run(sc, cc.MustNew("pure"), rollout.Options{Controller: agent})
	if res.ThroughputBps <= 0 {
		t.Fatal("deployed agent moved no traffic")
	}
	if res.AvgRTT <= 0 {
		t.Fatal("no RTT measured")
	}

	// Save/load keeps behaviour identical.
	path := filepath.Join(t.TempDir(), "sage.model")
	if err := model.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	a2 := loaded.NewAgent(1)
	res2 := rollout.Run(sc, cc.MustNew("pure"), rollout.Options{Controller: a2})
	if res2.ThroughputBps != res.ThroughputBps {
		t.Fatalf("loaded model diverges: %v vs %v", res2.ThroughputBps, res.ThroughputBps)
	}
	if _, err := LoadModel(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing model accepted")
	}
}

func TestAgentRespectsBounds(t *testing.T) {
	pool := tinyPool(t)
	model := Train(pool, Config{CRR: tinyCRR()}, nil)
	agent := model.NewAgent(0)
	agent.MaxCwnd = 50
	sc := netem.SetI(netem.SetIOptions{Level: netem.GridTiny, Duration: 3 * sim.Second})[0]
	res := rollout.Run(sc, cc.MustNew("pure"), rollout.Options{Controller: agent, SamplePeriod: 100 * sim.Millisecond})
	for _, s := range res.Series {
		if s.Cwnd > 51 {
			t.Fatalf("cwnd %v exceeded MaxCwnd", s.Cwnd)
		}
	}
	agent.Reset()
	if len(agent.hidden) != len(model.Policy.InitHidden()) {
		t.Fatal("reset broke hidden state")
	}
}

func TestWrapPolicyAndEmbedding(t *testing.T) {
	pool := tinyPool(t)
	ds := rl.BuildDataset(pool, nil)
	bc, err := rl.TrainBC(ds, rl.BCConfig{
		Policy: nn.PolicyConfig{Enc: 12, Hidden: 6, ResBlocks: 1, K: 2},
		Steps:  30, Batch: 4, SeqLen: 4,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	model := WrapPolicy(bc, nil, gr.Config{})
	agent := model.NewAgent(0)
	emb := agent.LastHiddenEmbedding(pool.Trajs[0].Steps[0].State)
	if len(emb) != 12 {
		t.Fatalf("embedding dim %d", len(emb))
	}
	sc := netem.SetI(netem.SetIOptions{Level: netem.GridTiny, Duration: 2 * sim.Second})[0]
	res := rollout.Run(sc, cc.MustNew("pure"), rollout.Options{Controller: agent})
	if res.ThroughputBps <= 0 {
		t.Fatal("BC agent moved no traffic")
	}
}

func TestCRRLearnsFromPool(t *testing.T) {
	// Sanity: the learner's losses must be finite and the policy must
	// produce in-range actions after training.
	pool := tinyPool(t)
	ds := rl.BuildDataset(pool, nil)
	if ds.Transitions() < 500 {
		t.Fatalf("dataset too small: %d", ds.Transitions())
	}
	learner := rl.NewCRR(ds, tinyCRR())
	var lastC, lastP float64
	learner.Train(context.Background(), ds, func(step int, cl, pl float64) { lastC, lastP = cl, pl })
	if lastC != lastC || lastP != lastP { // NaN check
		t.Fatalf("losses NaN: %v %v", lastC, lastP)
	}
	if learner.LastMeanFilter <= 0 {
		t.Fatal("advantage filter inactive")
	}
	// Policy actions must stay in the u-space the data occupies.
	h := learner.Policy.InitHidden()
	for _, tr := range pool.Trajs[:2] {
		for _, s := range tr.Steps[:10] {
			head, hn, _ := learner.Policy.Forward(gr.ApplyMask(s.State, ds.Mask), h)
			h = hn
			u := learner.Policy.GMM.Mean(head)
			if u != u {
				t.Fatal("NaN action")
			}
		}
	}
}

func TestActionTransforms(t *testing.T) {
	if rl.ActionToU(1) != 0 || rl.ActionToU(2) != 1 || rl.ActionToU(0.5) != -1 {
		t.Fatal("ActionToU")
	}
	if rl.ActionToU(100) != 1 || rl.ActionToU(0) != -1 {
		t.Fatal("ActionToU clamping")
	}
	if rl.UToRatio(0) != 1 || rl.UToRatio(1) != 2 || rl.UToRatio(-1) != 0.5 {
		t.Fatal("UToRatio")
	}
	if rl.UToRatio(5) != 2 || rl.UToRatio(-5) != 0.5 {
		t.Fatal("UToRatio clamping")
	}
}
