// Package core is Sage's public API: it ties the Policy Collector's pool to
// the Core Learning block and wraps the learned policy as a deployment-ready
// congestion-control agent (the Execution block of Fig. 3, "TCP Pure").
//
// The full pipeline a user runs:
//
//	pool, err := collector.Collect(ctx, cc.PoolNames(), scenarios, collector.Options{})
//	model  := core.Train(pool, core.Config{}, nil)
//	agent  := model.NewAgent(0)
//	pure, _ := cc.New("pure")
//	res    := rollout.Run(scenario, pure, rollout.Options{Controller: agent})
//
// Production deployments wrap the agent in guard.New(agent, guard.Config{})
// so a misbehaving inference falls back to a heuristic instead of
// blackholing the connection (see internal/guard).
package core

import (
	"context"
	"fmt"
	"math/rand"

	"sage/internal/collector"
	"sage/internal/gr"
	"sage/internal/nn"
	"sage/internal/rl"
	"sage/internal/safeio"
	"sage/internal/sim"
	"sage/internal/tcp"
)

// Config gathers everything Train needs.
type Config struct {
	GR   gr.Config    // must match the pool's GR config
	Mask []int        // input subset (nil = full 69-signal vector)
	CRR  rl.CRRConfig // learner configuration
}

// Model is a trained Sage policy plus the metadata needed to run it.
type Model struct {
	Policy *nn.Policy
	Mask   []int
	GR     gr.Config
}

// Train runs the offline CRR learner on the pool and returns the model.
// progress (optional) receives (step, criticLoss, policyLoss).
func Train(pool *collector.Pool, cfg Config, progress func(step int, criticLoss, policyLoss float64)) *Model {
	if cfg.Mask == nil {
		cfg.Mask = gr.MaskFull()
	}
	cfg.GR = cfg.GR.Fill()
	ds := rl.BuildDataset(pool, cfg.Mask)
	learner := rl.NewCRR(ds, cfg.CRR)
	learner.Train(context.Background(), ds, progress)
	return &Model{Policy: learner.Policy, Mask: cfg.Mask, GR: cfg.GR}
}

// Agent drives a TCP Pure connection from the model: every GR interval it
// reads the state vector and multiplies cwnd by 2^u, u ∈ [−1, 1].
// It implements rollout.Controller.
type Agent struct {
	model      *Model
	hidden     []float64
	maskBuf    []float64 // scratch for the masked state (reused every interval)
	meanBuf    []float64 // scratch for GMM weight normalization
	Stochastic bool      // sample from the GMM instead of taking its mean
	UseMode    bool      // act on the highest-weight component instead of the mixture mean
	rng        *rand.Rand

	MinCwnd float64
	MaxCwnd float64
}

// NewAgent returns a fresh deployment agent (its own recurrent state).
func (m *Model) NewAgent(seed int64) *Agent {
	return &Agent{
		model:   m,
		hidden:  m.Policy.InitHidden(),
		rng:     rand.New(rand.NewSource(seed + 77)),
		MinCwnd: 2,
		MaxCwnd: 20000,
	}
}

// Reset clears the recurrent state (call between flows).
func (a *Agent) Reset() { a.hidden = a.model.Policy.InitHidden() }

// Control implements rollout.Controller. The mask projection and mixture
// mean reuse per-agent scratch so the per-interval decision path allocates
// only what Policy.Forward itself needs.
func (a *Agent) Control(now sim.Time, conn *tcp.Conn, state []float64) {
	a.maskBuf = gr.ApplyMaskInto(a.maskBuf, state, a.model.Mask)
	head, h, _ := a.model.Policy.Forward(a.maskBuf, a.hidden)
	a.hidden = h
	var u float64
	switch {
	case a.Stochastic:
		u = a.model.Policy.GMM.Sample(head, a.rng)
	case a.UseMode:
		u = a.model.Policy.GMM.Mode(head)
	default:
		if cap(a.meanBuf) < a.model.Policy.GMM.K {
			a.meanBuf = make([]float64, a.model.Policy.GMM.K)
		}
		u = a.model.Policy.GMM.MeanInto(head, a.meanBuf[:a.model.Policy.GMM.K])
	}
	conn.SetCwnd(tcp.ClampCwnd(conn.Cwnd*rl.UToRatio(u), a.MinCwnd, a.MaxCwnd))
}

// LastHiddenEmbedding runs the policy on a state (stateful) and returns the
// last hidden layer activation — the embedding Fig. 16 visualizes.
func (a *Agent) LastHiddenEmbedding(state []float64) []float64 {
	masked := gr.ApplyMask(state, a.model.Mask)
	head, h, cache := a.model.Policy.Forward(masked, a.hidden)
	_ = head
	a.hidden = h
	return a.model.Policy.LastHidden(cache)
}

// modelBlob is the serialized form.
type modelBlob struct {
	Cfg    nn.PolicyConfig
	Norm   nn.Normalizer
	Params [][]float64
	Mask   []int
	GR     gr.Config
}

// Save writes the model to path as gzipped gob inside safeio's atomic,
// checksummed container: a crash mid-save never clobbers a good model.
func (m *Model) Save(path string) error {
	blob := modelBlob{Cfg: m.Policy.Cfg, Norm: *m.Policy.Norm, Mask: m.Mask, GR: m.GR}
	for _, p := range m.Policy.Params() {
		blob.Params = append(blob.Params, append([]float64(nil), p.Data...))
	}
	if err := safeio.WriteGobGz(path, &blob); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	return nil
}

// LoadModel reads a model written by Save, detecting truncation and
// corruption up front.
func LoadModel(path string) (*Model, error) {
	var blob modelBlob
	if err := safeio.ReadGobGz(path, &blob); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	pol := nn.NewPolicy(blob.Cfg)
	pol.Norm = &blob.Norm
	ps := pol.Params()
	if len(ps) != len(blob.Params) {
		return nil, fmt.Errorf("core: blob has %d tensors, want %d", len(blob.Params), len(ps))
	}
	for i, p := range ps {
		if len(p.Data) != len(blob.Params[i]) {
			return nil, fmt.Errorf("core: tensor %d size mismatch", i)
		}
		copy(p.Data, blob.Params[i])
	}
	return &Model{Policy: pol, Mask: blob.Mask, GR: blob.GR}, nil
}

// WrapPolicy builds a Model around an externally trained policy (the BC and
// online-RL baselines reuse the same deployment path).
func WrapPolicy(pol *nn.Policy, mask []int, grCfg gr.Config) *Model {
	if mask == nil {
		mask = gr.MaskFull()
	}
	return &Model{Policy: pol, Mask: mask, GR: grCfg.Fill()}
}
