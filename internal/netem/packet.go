// Package netem is a packet-level network emulator: a single bottleneck link
// with a configurable (possibly time-varying) rate, a finite queue managed by
// a pluggable AQM, and symmetric propagation delay. It plays the role
// Mahimahi plays in the paper: the only emulated component; everything above
// it (TCP datapath, CC logic) is the real control loop.
package netem

import "sage/internal/sim"

// MTU is the default packet size in bytes (payload + headers), matching the
// 1500-byte packets the paper's emulator carries.
const MTU = 1500

// Packet is the unit carried by the emulator. The transport layer stores its
// own bookkeeping in the exported fields; netem itself reads only Size and
// stamps Enqueued.
type Packet struct {
	FlowID   int
	Seq      int64
	Size     int      // bytes on the wire
	Sent     sim.Time // when the sender handed it to the network
	Enqueued sim.Time // when it entered the bottleneck queue (set by the queue)
	Ack      bool     // true for acknowledgment packets (reverse path)
	Retrans  bool
	ECT      bool // ECN-capable transport: AQMs mark instead of dropping
	ECE      bool // congestion experienced, set by a marking AQM
	Payload  any  // transport-layer data (e.g. the ACK contents)
}

// Receiver consumes packets delivered by the network.
type Receiver interface {
	Receive(p *Packet, now sim.Time)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(p *Packet, now sim.Time)

// Receive implements Receiver.
func (f ReceiverFunc) Receive(p *Packet, now sim.Time) { f(p, now) }
