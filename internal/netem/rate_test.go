package netem

import (
	"math"
	"testing"
	"testing/quick"

	"sage/internal/sim"
)

func TestFlatRateTxDone(t *testing.T) {
	r := FlatRate(Mbps(12)) // 12 Mb/s -> 1500B = 12000 bits takes 1 ms
	done, ok := r.TxDone(0, 12000)
	if !ok || done != sim.Millisecond {
		t.Fatalf("TxDone = %v, %v", done, ok)
	}
	done, ok = r.TxDone(5*sim.Millisecond, 24000)
	if !ok || done != 7*sim.Millisecond {
		t.Fatalf("TxDone = %v, %v", done, ok)
	}
}

func TestStepRateAt(t *testing.T) {
	r := StepRate(Mbps(24), Mbps(48), sim.Second)
	if r.At(0) != Mbps(24) || r.At(sim.Second-1) != Mbps(24) {
		t.Fatal("before step wrong")
	}
	if r.At(sim.Second) != Mbps(48) || r.At(2*sim.Second) != Mbps(48) {
		t.Fatal("after step wrong")
	}
}

func TestTxDoneAcrossStep(t *testing.T) {
	// 12 Mb/s for 1 ms then 24 Mb/s. Start at t=0 with 24000 bits:
	// first 1 ms carries 12000 bits, remaining 12000 bits at 24 Mb/s = 0.5 ms.
	r := StepRate(Mbps(12), Mbps(24), sim.Millisecond)
	done, ok := r.TxDone(0, 24000)
	if !ok || done != 1500*sim.Microsecond {
		t.Fatalf("TxDone across step = %v, %v", done, ok)
	}
}

func TestTxDoneThroughOutage(t *testing.T) {
	// 12 Mb/s, outage for 10 ms, then 12 Mb/s again.
	r, err := NewRateSchedule(
		[]sim.Time{0, sim.Millisecond, 11 * sim.Millisecond},
		[]float64{Mbps(12), 0, Mbps(12)},
	)
	if err != nil {
		t.Fatal(err)
	}
	// 24000 bits from t=0: 12000 in first ms, stall 10 ms, 12000 more in 1 ms.
	done, ok := r.TxDone(0, 24000)
	if !ok || done != 12*sim.Millisecond {
		t.Fatalf("TxDone through outage = %v, %v", done, ok)
	}
}

func TestTxDonePermanentOutage(t *testing.T) {
	r, err := NewRateSchedule([]sim.Time{0, sim.Millisecond}, []float64{Mbps(12), 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.TxDone(2*sim.Millisecond, 100); ok {
		t.Fatal("expected permanent outage to fail")
	}
	if done, ok := r.TxDone(0, 12000); !ok || done != sim.Millisecond {
		t.Fatalf("edge fit = %v, %v", done, ok)
	}
}

func TestNewRateScheduleValidation(t *testing.T) {
	if _, err := NewRateSchedule(nil, nil); err == nil {
		t.Fatal("empty schedule accepted")
	}
	if _, err := NewRateSchedule([]sim.Time{1}, []float64{1}); err == nil {
		t.Fatal("nonzero start accepted")
	}
	if _, err := NewRateSchedule([]sim.Time{0, 0}, []float64{1, 2}); err == nil {
		t.Fatal("non-increasing times accepted")
	}
	if _, err := NewRateSchedule([]sim.Time{0}, []float64{-1}); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestMeanRateUntil(t *testing.T) {
	r := StepRate(Mbps(10), Mbps(30), sim.Second)
	got := r.MeanRateUntil(2 * sim.Second)
	if math.Abs(got-Mbps(20)) > 1 {
		t.Fatalf("MeanRateUntil = %v", got)
	}
	if r.MaxRate() != Mbps(30) {
		t.Fatalf("MaxRate = %v", r.MaxRate())
	}
}

// Property: TxDone is monotone in bits and never earlier than start.
func TestTxDoneMonotoneProperty(t *testing.T) {
	r := StepRate(Mbps(5), Mbps(50), 20*sim.Millisecond)
	f := func(b1, b2 uint16) bool {
		lo, hi := float64(b1), float64(b1)+float64(b2)
		d1, ok1 := r.TxDone(0, lo)
		d2, ok2 := r.TxDone(0, hi)
		return ok1 && ok2 && d1 >= 0 && d2 >= d1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
