package netem

import (
	"testing"

	"sage/internal/sim"
)

func TestLinkServesAtRate(t *testing.T) {
	loop := sim.NewLoop()
	var deliveries []sim.Time
	link := NewLink(loop, NewDropTail(1<<20), FlatRate(Mbps(12)),
		ReceiverFunc(func(p *Packet, now sim.Time) { deliveries = append(deliveries, now) }))
	for i := 0; i < 3; i++ {
		link.Send(&Packet{Size: MTU, Seq: int64(i)}, 0)
	}
	loop.Run()
	// 12 Mb/s serves one 1500 B packet per ms.
	want := []sim.Time{sim.Millisecond, 2 * sim.Millisecond, 3 * sim.Millisecond}
	if len(deliveries) != 3 {
		t.Fatalf("deliveries = %v", deliveries)
	}
	for i := range want {
		if deliveries[i] != want[i] {
			t.Fatalf("delivery %d at %v, want %v", i, deliveries[i], want[i])
		}
	}
	if link.DeliveredPkts != 3 || link.DeliveredBytes != 3*MTU {
		t.Fatalf("link stats %d/%d", link.DeliveredPkts, link.DeliveredBytes)
	}
}

func TestNetworkEndToEnd(t *testing.T) {
	loop := sim.NewLoop()
	n := New(loop, Config{
		Rate:   FlatRate(Mbps(12)),
		MinRTT: 20 * sim.Millisecond,
		Queue:  NewDropTail(1 << 20),
	})
	var dataAt, ackAt sim.Time
	n.Attach(1, Endpoints{
		Data: ReceiverFunc(func(p *Packet, now sim.Time) {
			dataAt = now
			n.SendAck(&Packet{FlowID: 1, Ack: true}, now)
		}),
		Ack: ReceiverFunc(func(p *Packet, now sim.Time) { ackAt = now }),
	})
	n.SendData(&Packet{FlowID: 1, Size: MTU}, 0)
	loop.Run()
	// tx 1 ms + owd 10 ms = 11 ms data; +10 ms ack = 21 ms.
	if dataAt != 11*sim.Millisecond {
		t.Fatalf("data delivered at %v", dataAt)
	}
	if ackAt != 21*sim.Millisecond {
		t.Fatalf("ack delivered at %v", ackAt)
	}
	if n.MinRTT() != 20*sim.Millisecond {
		t.Fatalf("MinRTT = %v", n.MinRTT())
	}
}

func TestNetworkRandomLoss(t *testing.T) {
	loop := sim.NewLoop()
	n := New(loop, Config{
		Rate:     FlatRate(Mbps(100)),
		MinRTT:   10 * sim.Millisecond,
		Queue:    NewDropTail(1 << 24),
		LossProb: 0.5,
		Seed:     3,
	})
	got := 0
	n.Attach(1, Endpoints{Data: ReceiverFunc(func(p *Packet, now sim.Time) { got++ })})
	sent := 1000
	for i := 0; i < sent; i++ {
		n.SendData(&Packet{FlowID: 1, Size: MTU}, loop.Now())
		loop.RunUntil(loop.Now() + sim.Millisecond)
	}
	loop.Run()
	if n.RandomLosses == 0 || got == sent {
		t.Fatalf("loss not applied: got=%d losses=%d", got, n.RandomLosses)
	}
	if got+int(n.RandomLosses) != sent {
		t.Fatalf("conservation: %d delivered + %d lost != %d", got, n.RandomLosses, sent)
	}
}

func TestBDPBytes(t *testing.T) {
	// 48 Mb/s * 40 ms = 240 kB.
	if got := BDPBytes(Mbps(48), 40*sim.Millisecond); got != 240000 {
		t.Fatalf("BDPBytes = %d", got)
	}
}

func TestSetIGeneration(t *testing.T) {
	scens := SetI(SetIOptions{Level: GridTiny})
	if len(scens) == 0 {
		t.Fatal("no scenarios")
	}
	flat, step := 0, 0
	for _, s := range scens {
		if s.CubicFlows != 0 {
			t.Fatalf("%s: Set I must be single-flow", s.Name)
		}
		if s.Rate.MaxRate() > Mbps(200) {
			t.Fatalf("%s exceeds the 200 Mb/s cap", s.Name)
		}
		if s.QueueBytes < 2*MTU {
			t.Fatalf("%s queue too small: %d", s.Name, s.QueueBytes)
		}
		if len(s.Rate.bps) == 1 {
			flat++
		} else {
			step++
		}
	}
	if flat == 0 || step == 0 {
		t.Fatalf("want both flat and step scenarios, got %d/%d", flat, step)
	}
	if len(SetI(SetIOptions{Level: GridFull})) <= len(scens) {
		t.Fatal("full grid should be larger than tiny")
	}
}

func TestSetIIGeneration(t *testing.T) {
	scens := SetII(SetIIOptions{Level: GridTiny})
	if len(scens) == 0 {
		t.Fatal("no scenarios")
	}
	for _, s := range scens {
		if s.CubicFlows < 1 {
			t.Fatalf("%s: Set II needs competing cubic", s.Name)
		}
		if s.TestStart <= 0 || s.TestStart >= s.Duration {
			t.Fatalf("%s: bad TestStart %v", s.Name, s.TestStart)
		}
		bdp := BDPBytes(s.Rate.At(0), s.MinRTT)
		if s.QueueBytes < bdp && s.QueueBytes >= 2*MTU && bdp >= 2*MTU {
			t.Fatalf("%s: Set II buffer %d under 1 BDP %d", s.Name, s.QueueBytes, bdp)
		}
		if got := s.FairShare(); got <= 0 || got > s.Rate.MaxRate() {
			t.Fatalf("%s: fair share %v", s.Name, got)
		}
	}
	// Names unique.
	seen := map[string]bool{}
	for _, s := range scens {
		if seen[s.Name] {
			t.Fatalf("duplicate scenario %s", s.Name)
		}
		seen[s.Name] = true
	}
}
