package netem

import (
	"fmt"
	"sort"

	"sage/internal/sim"
)

// Mbps converts megabits/second to bits/second.
func Mbps(m float64) float64 { return m * 1e6 }

// RateSchedule is a piecewise-constant link rate in bits/second. Segment i
// starts at times[i] and lasts until times[i+1] (the final segment extends
// forever). It supports exact integration, so transmission completion times
// are correct across rate changes — including zero-rate outage segments,
// which simply stall the link (as a cellular trace can).
type RateSchedule struct {
	times []sim.Time
	bps   []float64
}

// FlatRate returns a schedule with a single constant rate.
func FlatRate(bps float64) *RateSchedule {
	return &RateSchedule{times: []sim.Time{0}, bps: []float64{bps}}
}

// StepRate returns a schedule that runs at before until at, then switches to
// after, reproducing the paper's "step scenarios".
func StepRate(before, after float64, at sim.Time) *RateSchedule {
	return &RateSchedule{times: []sim.Time{0, at}, bps: []float64{before, after}}
}

// NewRateSchedule builds a schedule from parallel slices of segment start
// times (strictly increasing, first must be 0) and rates in bits/second.
func NewRateSchedule(times []sim.Time, bps []float64) (*RateSchedule, error) {
	if len(times) == 0 || len(times) != len(bps) {
		return nil, fmt.Errorf("netem: schedule needs equal-length non-empty slices (%d, %d)", len(times), len(bps))
	}
	if times[0] != 0 {
		return nil, fmt.Errorf("netem: schedule must start at t=0, got %v", times[0])
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return nil, fmt.Errorf("netem: schedule times not increasing at %d", i)
		}
	}
	for i, r := range bps {
		if r < 0 {
			return nil, fmt.Errorf("netem: negative rate at segment %d", i)
		}
	}
	return &RateSchedule{times: append([]sim.Time(nil), times...), bps: append([]float64(nil), bps...)}, nil
}

// At returns the rate in bits/second at time t.
func (s *RateSchedule) At(t sim.Time) float64 {
	i := sort.Search(len(s.times), func(i int) bool { return s.times[i] > t }) - 1
	if i < 0 {
		i = 0
	}
	return s.bps[i]
}

// segmentEnd returns the end time of segment i, or -1 for the last segment.
func (s *RateSchedule) segmentEnd(i int) sim.Time {
	if i+1 < len(s.times) {
		return s.times[i+1]
	}
	return -1
}

// TxDone returns the time at which a transmission of the given number of
// bits, starting at start, completes under the schedule. If the remaining
// schedule can never carry the bits (trailing zero-rate segment), it returns
// (0, false).
func (s *RateSchedule) TxDone(start sim.Time, bits float64) (sim.Time, bool) {
	if bits <= 0 {
		return start, true
	}
	i := sort.Search(len(s.times), func(i int) bool { return s.times[i] > start }) - 1
	if i < 0 {
		i = 0
	}
	t := start
	for {
		end := s.segmentEnd(i)
		rate := s.bps[i]
		if end < 0 { // final segment
			if rate <= 0 {
				return 0, false
			}
			return t + sim.Time(bits/rate*float64(sim.Second)+0.5), true
		}
		if rate > 0 {
			span := float64(end-t) / float64(sim.Second)
			capacity := rate * span
			if capacity >= bits {
				return t + sim.Time(bits/rate*float64(sim.Second)+0.5), true
			}
			bits -= capacity
		}
		t = end
		i++
	}
}

// MaxRate returns the highest rate in the schedule.
func (s *RateSchedule) MaxRate() float64 {
	m := 0.0
	for _, r := range s.bps {
		if r > m {
			m = r
		}
	}
	return m
}

// MeanRateUntil returns the time-average rate over [0, horizon].
func (s *RateSchedule) MeanRateUntil(horizon sim.Time) float64 {
	if horizon <= 0 {
		return s.bps[0]
	}
	total := 0.0
	for i := range s.times {
		start := s.times[i]
		if start >= horizon {
			break
		}
		end := s.segmentEnd(i)
		if end < 0 || end > horizon {
			end = horizon
		}
		total += s.bps[i] * float64(end-start)
	}
	return total / float64(horizon)
}
