package netem

import (
	"sage/internal/sim"
)

// Link models the bottleneck: packets are queued by the discipline and
// served one at a time at the (possibly time-varying) schedule rate,
// then handed to out.
type Link struct {
	loop  *sim.Loop
	queue Queue
	rate  *RateSchedule
	out   Receiver

	busy           bool
	DeliveredPkts  int64
	DeliveredBytes int64
	StalledDrops   int64 // packets abandoned because the schedule ends at rate 0
}

// NewLink builds a link serving queue at the schedule rate, delivering into
// out.
func NewLink(loop *sim.Loop, queue Queue, rate *RateSchedule, out Receiver) *Link {
	return &Link{loop: loop, queue: queue, rate: rate, out: out}
}

// Queue exposes the link's queue (for stats and tests).
func (l *Link) Queue() Queue { return l.queue }

// Rate exposes the link's rate schedule.
func (l *Link) Rate() *RateSchedule { return l.rate }

// Send enqueues p at the bottleneck, reporting whether it was admitted, and
// kicks the server if the link is idle.
func (l *Link) Send(p *Packet, now sim.Time) bool {
	ok := l.queue.Enqueue(p, now)
	if ok && !l.busy {
		l.busy = true
		l.serve(now)
	}
	return ok
}

func (l *Link) serve(now sim.Time) {
	p := l.queue.Dequeue(now)
	if p == nil {
		l.busy = false
		return
	}
	done, ok := l.rate.TxDone(now, float64(p.Size)*8)
	if !ok {
		// The schedule ends in a permanent outage; the packet can never leave.
		l.StalledDrops++
		l.busy = false
		return
	}
	l.loop.At(done, func(t sim.Time) {
		l.DeliveredPkts++
		l.DeliveredBytes += int64(p.Size)
		l.out.Receive(p, t)
		l.serve(t)
	})
}
