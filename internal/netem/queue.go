package netem

import (
	"math"
	"math/rand"

	"sage/internal/sim"
)

// Queue is a bottleneck buffer with an embedded queue-management discipline.
// Enqueue returns false when the packet is dropped on arrival; Dequeue may
// itself drop packets (CoDel-style) before returning the next one to serve.
type Queue interface {
	Enqueue(p *Packet, now sim.Time) bool
	Dequeue(now sim.Time) *Packet
	Len() int
	Bytes() int
	Drops() int
}

// fifo is the shared ring buffer beneath every discipline.
type fifo struct {
	pkts  []*Packet
	bytes int
	drops int
	marks int
}

// Marks returns how many packets were ECN-marked instead of dropped.
func (q *fifo) Marks() int { return q.marks }

// markOrDrop applies the discipline's congestion signal to p: ECN-capable
// packets are marked (and the caller must admit/deliver them), others count
// as a drop. It reports whether the packet was marked.
func (q *fifo) markOrDrop(p *Packet) bool {
	if p.ECT {
		p.ECE = true
		q.marks++
		return true
	}
	q.drops++
	return false
}

func (q *fifo) push(p *Packet, now sim.Time) {
	p.Enqueued = now
	q.pkts = append(q.pkts, p)
	q.bytes += p.Size
}

func (q *fifo) popHead() *Packet {
	if len(q.pkts) == 0 {
		return nil
	}
	p := q.pkts[0]
	q.pkts[0] = nil
	q.pkts = q.pkts[1:]
	q.bytes -= p.Size
	return p
}

func (q *fifo) Len() int   { return len(q.pkts) }
func (q *fifo) Bytes() int { return q.bytes }
func (q *fifo) Drops() int { return q.drops }

// DropTail drops arriving packets once the buffer holds capacity bytes
// (the classic tail-drop queue, "TDrop" in Fig. 23).
type DropTail struct {
	fifo
	capacity int
}

// NewDropTail returns a tail-drop queue holding at most capacity bytes.
func NewDropTail(capacityBytes int) *DropTail {
	return &DropTail{capacity: capacityBytes}
}

// Enqueue implements Queue.
func (q *DropTail) Enqueue(p *Packet, now sim.Time) bool {
	if q.bytes+p.Size > q.capacity {
		q.drops++
		return false
	}
	q.push(p, now)
	return true
}

// Dequeue implements Queue.
func (q *DropTail) Dequeue(now sim.Time) *Packet { return q.popHead() }

// HeadDrop admits every arrival and evicts from the head of the queue until
// the new packet fits ("HDrop" in Fig. 23). Head drop signals congestion to
// the sender a full queueing delay earlier than tail drop.
type HeadDrop struct {
	fifo
	capacity int
}

// NewHeadDrop returns a head-drop queue holding at most capacity bytes.
func NewHeadDrop(capacityBytes int) *HeadDrop {
	return &HeadDrop{capacity: capacityBytes}
}

// Enqueue implements Queue.
func (q *HeadDrop) Enqueue(p *Packet, now sim.Time) bool {
	if p.Size > q.capacity {
		q.drops++
		return false
	}
	for q.bytes+p.Size > q.capacity && len(q.pkts) > 0 {
		q.popHead()
		q.drops++
	}
	q.push(p, now)
	return true
}

// Dequeue implements Queue.
func (q *HeadDrop) Dequeue(now sim.Time) *Packet { return q.popHead() }

// CoDel implements the Controlled Delay AQM (Nichols & Jacobson, CACM 2012):
// packets whose sojourn time has exceeded Target for a full Interval are
// dropped at dequeue, with the drop rate increasing by a sqrt control law.
type CoDel struct {
	fifo
	capacity int
	Target   sim.Time
	Interval sim.Time

	dropping      bool
	firstAboveAt  sim.Time
	dropNext      sim.Time
	dropCount     int
	lastDropCount int
}

// NewCoDel returns a CoDel queue with the RFC 8289 defaults
// (target 5 ms, interval 100 ms) over a byte-capacity FIFO.
func NewCoDel(capacityBytes int) *CoDel {
	return &CoDel{
		capacity: capacityBytes,
		Target:   5 * sim.Millisecond,
		Interval: 100 * sim.Millisecond,
	}
}

// Enqueue implements Queue.
func (q *CoDel) Enqueue(p *Packet, now sim.Time) bool {
	if q.bytes+p.Size > q.capacity {
		q.drops++
		return false
	}
	q.push(p, now)
	return true
}

func (q *CoDel) controlLaw(t sim.Time, count int) sim.Time {
	return t + sim.Time(float64(q.Interval)/math.Sqrt(float64(count)))
}

// shouldDrop implements the "sojourn above target for interval" detector.
func (q *CoDel) shouldDrop(p *Packet, now sim.Time) bool {
	sojourn := now - p.Enqueued
	if sojourn < q.Target || q.bytes <= 2*MTU {
		q.firstAboveAt = 0
		return false
	}
	if q.firstAboveAt == 0 {
		q.firstAboveAt = now + q.Interval
		return false
	}
	return now >= q.firstAboveAt
}

// Dequeue implements Queue.
func (q *CoDel) Dequeue(now sim.Time) *Packet {
	p := q.popHead()
	if p == nil {
		q.dropping = false
		return nil
	}
	drop := q.shouldDrop(p, now)
	if q.dropping {
		if !drop {
			q.dropping = false
		} else if now >= q.dropNext {
			for now >= q.dropNext && q.dropping {
				q.dropCount++
				q.dropNext = q.controlLaw(q.dropNext, q.dropCount)
				if q.markOrDrop(p) {
					return p // ECN: marked and delivered (RFC 8289 §3)
				}
				p = q.popHead()
				if p == nil {
					q.dropping = false
					return nil
				}
				if !q.shouldDrop(p, now) {
					q.dropping = false
				}
			}
		}
	} else if drop {
		q.dropCount = 1
		if q.lastDropCount > 2 {
			q.dropCount = q.lastDropCount - 2
		}
		q.lastDropCount = q.dropCount
		q.dropping = true
		q.dropNext = q.controlLaw(now, q.dropCount)
		if q.markOrDrop(p) {
			return p
		}
		p = q.popHead()
		if p == nil {
			q.dropping = false
			return nil
		}
	}
	return p
}

// PIE implements the Proportional Integral controller Enhanced AQM
// (RFC 8033): arrivals are dropped with a probability driven toward keeping
// the estimated queueing delay at Target.
type PIE struct {
	fifo
	capacity int
	Target   sim.Time
	TUpdate  sim.Time
	Alpha    float64
	Beta     float64

	rng        *rand.Rand
	prob       float64
	lastUpdate sim.Time
	oldDelay   sim.Time
	drainRate  float64 // bytes/sec, EWMA measured at dequeue
	lastDeq    sim.Time
}

// NewPIE returns a PIE queue with RFC 8033 defaults
// (target 15 ms, update every 15 ms, alpha 0.125, beta 1.25).
func NewPIE(capacityBytes int, seed int64) *PIE {
	return &PIE{
		capacity: capacityBytes,
		Target:   15 * sim.Millisecond,
		TUpdate:  15 * sim.Millisecond,
		Alpha:    0.125,
		Beta:     1.25,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

func (q *PIE) estDelay() sim.Time {
	if q.drainRate <= 0 {
		return 0
	}
	return sim.Time(float64(q.bytes) / q.drainRate * float64(sim.Second))
}

func (q *PIE) updateProb(now sim.Time) {
	if now-q.lastUpdate < q.TUpdate {
		return
	}
	q.lastUpdate = now
	delay := q.estDelay()
	p := q.Alpha*(delay-q.Target).Seconds() + q.Beta*(delay-q.oldDelay).Seconds()
	// RFC 8033 auto-tuning: scale the adjustment with the operating point.
	switch {
	case q.prob < 0.000001:
		p /= 2048
	case q.prob < 0.00001:
		p /= 512
	case q.prob < 0.0001:
		p /= 128
	case q.prob < 0.001:
		p /= 32
	case q.prob < 0.01:
		p /= 8
	case q.prob < 0.1:
		p /= 2
	}
	q.prob += p
	if delay == 0 && q.oldDelay == 0 {
		q.prob *= 0.98
	}
	q.prob = math.Max(0, math.Min(q.prob, 0.9))
	q.oldDelay = delay
}

// Enqueue implements Queue.
func (q *PIE) Enqueue(p *Packet, now sim.Time) bool {
	q.updateProb(now)
	if q.bytes+p.Size > q.capacity {
		q.drops++
		return false
	}
	// RFC 8033 §5.1 burst allowance: never drop below 2 packets of backlog.
	if q.prob > 0 && q.bytes > 2*MTU && q.rng.Float64() < q.prob {
		if !q.markOrDrop(p) {
			return false
		}
		// ECN: marked and admitted.
	}
	q.push(p, now)
	return true
}

// Dequeue implements Queue.
func (q *PIE) Dequeue(now sim.Time) *Packet {
	p := q.popHead()
	if p != nil {
		if q.lastDeq > 0 && now > q.lastDeq {
			inst := float64(p.Size) / (now - q.lastDeq).Seconds()
			if q.drainRate == 0 {
				q.drainRate = inst
			} else {
				q.drainRate = 0.9*q.drainRate + 0.1*inst
			}
		}
		q.lastDeq = now
	}
	return p
}

// BoDe approximates the Bounding-Queue-Delay discipline (Abbasloo & Chao,
// 2019): it measures the drain rate and drops arrivals whose projected
// sojourn would exceed Bound, keeping worst-case queueing delay bounded on
// variable links.
type BoDe struct {
	fifo
	capacity  int
	Bound     sim.Time
	drainRate float64
	lastDeq   sim.Time
}

// NewBoDe returns a BoDe queue bounding queueing delay at bound.
func NewBoDe(capacityBytes int, bound sim.Time) *BoDe {
	return &BoDe{capacity: capacityBytes, Bound: bound}
}

// Enqueue implements Queue.
func (q *BoDe) Enqueue(p *Packet, now sim.Time) bool {
	if q.bytes+p.Size > q.capacity {
		q.drops++
		return false
	}
	if q.drainRate > 0 && q.bytes > 2*MTU {
		projected := sim.Time(float64(q.bytes+p.Size) / q.drainRate * float64(sim.Second))
		if projected > q.Bound {
			q.drops++
			return false
		}
	}
	q.push(p, now)
	return true
}

// Dequeue implements Queue.
func (q *BoDe) Dequeue(now sim.Time) *Packet {
	p := q.popHead()
	if p != nil {
		if q.lastDeq > 0 && now > q.lastDeq {
			inst := float64(p.Size) / (now - q.lastDeq).Seconds()
			if q.drainRate == 0 {
				q.drainRate = inst
			} else {
				q.drainRate = 0.9*q.drainRate + 0.1*inst
			}
		}
		q.lastDeq = now
	}
	return p
}

// AQMKind selects the queue discipline of a scenario.
type AQMKind int

// Queue disciplines available at the bottleneck (Fig. 23 evaluates all five).
const (
	AQMDropTail AQMKind = iota
	AQMHeadDrop
	AQMCoDel
	AQMPIE
	AQMBoDe
)

// String returns the discipline name as used in the paper's figures.
func (k AQMKind) String() string {
	switch k {
	case AQMDropTail:
		return "TDrop"
	case AQMHeadDrop:
		return "HDrop"
	case AQMCoDel:
		return "CoDel"
	case AQMPIE:
		return "PIE"
	case AQMBoDe:
		return "BoDe"
	}
	return "unknown"
}

// NewQueue constructs the queue discipline k with the given byte capacity.
func NewQueue(k AQMKind, capacityBytes int, seed int64) Queue {
	switch k {
	case AQMHeadDrop:
		return NewHeadDrop(capacityBytes)
	case AQMCoDel:
		return NewCoDel(capacityBytes)
	case AQMPIE:
		return NewPIE(capacityBytes, seed)
	case AQMBoDe:
		return NewBoDe(capacityBytes, 20*sim.Millisecond)
	default:
		return NewDropTail(capacityBytes)
	}
}

// ThresholdECN is the datacenter-style step-marking queue DCTCP assumes
// (Alizadeh et al. 2010): every ECN-capable arrival is marked once the
// instantaneous backlog reaches K packets; non-ECT packets are dropped only
// on overflow. Unlike CoDel/PIE, there is no control lag — which is what
// makes the scheme work at microsecond RTTs.
type ThresholdECN struct {
	fifo
	capacity int
	K        int // marking threshold in packets
}

// NewThresholdECN returns a step-marking queue with threshold kPkts.
func NewThresholdECN(capacityBytes, kPkts int) *ThresholdECN {
	return &ThresholdECN{capacity: capacityBytes, K: kPkts}
}

// Enqueue implements Queue.
func (q *ThresholdECN) Enqueue(p *Packet, now sim.Time) bool {
	if q.bytes+p.Size > q.capacity {
		q.drops++
		return false
	}
	if q.Len() >= q.K && p.ECT {
		p.ECE = true
		q.marks++
	}
	q.push(p, now)
	return true
}

// Dequeue implements Queue.
func (q *ThresholdECN) Dequeue(now sim.Time) *Packet { return q.popHead() }
