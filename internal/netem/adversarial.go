package netem

import (
	"fmt"
	"math/rand"

	"sage/internal/sim"
)

// GilbertElliott parameterizes the classic two-state burst-loss model: the
// channel alternates between a Good and a Bad state with per-packet
// transition probabilities, dropping packets with a state-dependent
// probability. It reproduces the clustered losses of wireless links, which
// iid LossProb cannot: the same average loss rate arriving in bursts is far
// harder on loss-based CC and on a learned policy that never saw it.
type GilbertElliott struct {
	PGoodBad float64 // per-packet P(Good → Bad)
	PBadGood float64 // per-packet P(Bad → Good)
	LossGood float64 // drop probability while Good (usually ~0)
	LossBad  float64 // drop probability while Bad (the burst)
}

// Enabled reports whether the model does anything at all.
func (g GilbertElliott) Enabled() bool {
	return g.PGoodBad > 0 && (g.LossBad > 0 || g.LossGood > 0)
}

// Validate rejects out-of-range probabilities.
func (g GilbertElliott) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"PGoodBad", g.PGoodBad}, {"PBadGood", g.PBadGood},
		{"LossGood", g.LossGood}, {"LossBad", g.LossBad},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("netem: Gilbert-Elliott %s = %g outside [0,1]", p.name, p.v)
		}
	}
	if g.PGoodBad > 0 && g.PBadGood == 0 {
		return fmt.Errorf("netem: Gilbert-Elliott PBadGood = 0 with PGoodBad > 0 (bad state would be absorbing)")
	}
	return nil
}

// geChain is the per-network runtime state of the model.
type geChain struct {
	cfg GilbertElliott
	rng *rand.Rand
	bad bool
}

// drop advances the chain one packet and reports whether it is lost.
func (c *geChain) drop() bool {
	if c.bad {
		if c.rng.Float64() < c.cfg.PBadGood {
			c.bad = false
		}
	} else if c.rng.Float64() < c.cfg.PGoodBad {
		c.bad = true
	}
	p := c.cfg.LossGood
	if c.bad {
		p = c.cfg.LossBad
	}
	return p > 0 && c.rng.Float64() < p
}

// FlapRate builds a schedule that alternates between rate and a dead link:
// starting at firstAt, the link goes dark for outage, carries traffic for
// period−outage, and repeats until total (the final segment restores the
// rate so the schedule never ends in a permanent outage). It models
// interface flaps, handovers, and scheduled blackouts.
func FlapRate(rate float64, firstAt, period, outage, total sim.Time) *RateSchedule {
	times := []sim.Time{0}
	bps := []float64{rate}
	for at := firstAt; at < total && outage > 0 && period > 0; at += period {
		end := at + outage
		if end > total {
			end = total
		}
		times = append(times, at, end)
		bps = append(bps, 0, rate)
	}
	return &RateSchedule{times: times, bps: bps}
}

// BlackoutRate is FlapRate with a single outage window [at, at+outage).
func BlackoutRate(rate float64, at, outage sim.Time) *RateSchedule {
	return &RateSchedule{times: []sim.Time{0, at, at + outage}, bps: []float64{rate, 0, rate}}
}

// AdversarialOptions tunes the generated adversarial scenarios.
type AdversarialOptions struct {
	Level    GridLevel
	Duration sim.Time // per-scenario run length (default 10 s)
	Seed     int64
}

// AdversarialGrid generates the named adversarial conditions the robustness
// experiment (and the guardian's tests) run against: link flaps, a hard
// mid-run blackout, packet reordering, ACK-path loss and duplication,
// Gilbert-Elliott burst loss, and a kitchen-sink combination. None of these
// pathologies appear in the Set I / Set II training pool — they are
// deliberately out-of-distribution for the learned policy.
func AdversarialGrid(opt AdversarialOptions) []Scenario {
	if opt.Duration == 0 {
		opt.Duration = 10 * sim.Second
	}
	a := axes(opt.Level)
	// One mid-grid operating point per (bw, rtt) pair keeps the grid small
	// enough to run per-condition variants at every density level.
	points := [][2]float64{{a.bwMbps[len(a.bwMbps)/2], a.rttMs[len(a.rttMs)/2]}}
	if opt.Level >= GridSmall {
		points = append(points, [2]float64{a.bwMbps[0], a.rttMs[len(a.rttMs)-1]})
	}
	if opt.Level >= GridFull {
		points = append(points, [2]float64{a.bwMbps[len(a.bwMbps)-1], a.rttMs[0]})
	}

	dur := opt.Duration
	var out []Scenario
	seed := opt.Seed + 40_000
	for _, pt := range points {
		bw, rtt := pt[0], pt[1]
		mrtt := sim.FromMillis(rtt)
		qb := queueBytes(Mbps(bw), mrtt, 2)
		base := func(name string) Scenario {
			seed++
			return Scenario{
				Name:       fmt.Sprintf("%s-%gmbps-%gms", name, bw, rtt),
				Rate:       FlatRate(Mbps(bw)),
				MinRTT:     mrtt,
				QueueBytes: qb,
				Duration:   dur,
				Seed:       seed,
			}
		}

		flap := base("flap")
		flap.Rate = FlapRate(Mbps(bw), dur/5, dur/4, dur/16, dur)
		out = append(out, flap)

		blackout := base("blackout")
		blackout.Rate = BlackoutRate(Mbps(bw), dur/2, dur/8)
		out = append(out, blackout)

		reorder := base("reorder")
		reorder.ReorderProb = 0.10
		reorder.ReorderDelay = mrtt / 2
		out = append(out, reorder)

		ackloss := base("ackloss")
		ackloss.AckLossProb = 0.20
		out = append(out, ackloss)

		ackdup := base("ackdup")
		ackdup.AckDupProb = 0.30
		out = append(out, ackdup)

		burst := base("burstloss")
		burst.Gilbert = GilbertElliott{PGoodBad: 0.005, PBadGood: 0.15, LossBad: 0.5}
		out = append(out, burst)

		combo := base("combo")
		combo.Rate = FlapRate(Mbps(bw), dur/4, dur/3, dur/20, dur)
		combo.ReorderProb = 0.05
		combo.ReorderDelay = mrtt / 4
		combo.AckLossProb = 0.05
		combo.Gilbert = GilbertElliott{PGoodBad: 0.002, PBadGood: 0.2, LossBad: 0.3}
		out = append(out, combo)
	}
	return dedupeScenarios(out)
}

// AdversarialNames lists the condition families AdversarialGrid generates.
func AdversarialNames() []string {
	return []string{"flap", "blackout", "reorder", "ackloss", "ackdup", "burstloss", "combo"}
}
