package netem

import (
	"testing"
	"testing/quick"

	"sage/internal/sim"
)

func pkt(size int) *Packet { return &Packet{Size: size} }

func TestDropTail(t *testing.T) {
	q := NewDropTail(3000)
	if !q.Enqueue(pkt(1500), 0) || !q.Enqueue(pkt(1500), 0) {
		t.Fatal("admission failed under capacity")
	}
	if q.Enqueue(pkt(1500), 0) {
		t.Fatal("over-capacity packet admitted")
	}
	if q.Drops() != 1 || q.Len() != 2 || q.Bytes() != 3000 {
		t.Fatalf("stats: drops=%d len=%d bytes=%d", q.Drops(), q.Len(), q.Bytes())
	}
	if p := q.Dequeue(0); p == nil || q.Bytes() != 1500 {
		t.Fatal("dequeue broken")
	}
}

func TestHeadDropEvictsOldest(t *testing.T) {
	q := NewHeadDrop(3000)
	a, b, c := pkt(1500), pkt(1500), pkt(1500)
	a.Seq, b.Seq, c.Seq = 1, 2, 3
	q.Enqueue(a, 0)
	q.Enqueue(b, 0)
	if !q.Enqueue(c, 0) {
		t.Fatal("head-drop should admit the newcomer")
	}
	if q.Drops() != 1 {
		t.Fatalf("drops = %d", q.Drops())
	}
	if p := q.Dequeue(0); p.Seq != 2 {
		t.Fatalf("head after evict = %d, want 2", p.Seq)
	}
}

func TestCoDelDropsPersistentQueue(t *testing.T) {
	q := NewCoDel(1 << 20)
	// Fill with packets enqueued at t=0, then dequeue slowly so sojourn
	// stays far above the 5 ms target for longer than the 100 ms interval.
	for i := 0; i < 200; i++ {
		q.Enqueue(pkt(MTU), 0)
	}
	drops := 0
	now := 200 * sim.Millisecond
	for q.Len() > 0 {
		before := q.Drops()
		if q.Dequeue(now) == nil {
			break
		}
		drops += q.Drops() - before
		now += 5 * sim.Millisecond
	}
	if drops == 0 {
		t.Fatal("CoDel never dropped under persistent standing queue")
	}
}

func TestCoDelIdleBelowTarget(t *testing.T) {
	q := NewCoDel(1 << 20)
	for i := 0; i < 50; i++ {
		q.Enqueue(pkt(MTU), sim.Time(i))
		if q.Dequeue(sim.Time(i)+sim.Millisecond) == nil {
			t.Fatal("packet lost")
		}
	}
	if q.Drops() != 0 {
		t.Fatalf("CoDel dropped %d with sub-target sojourn", q.Drops())
	}
}

func TestPIEDropsWhenDelayHigh(t *testing.T) {
	q := NewPIE(1<<20, 42)
	now := sim.Time(0)
	admitted, dropped := 0, 0
	// Arrivals at 2x the drain rate -> delay grows -> PIE probability rises.
	for i := 0; i < 4000; i++ {
		if q.Enqueue(pkt(MTU), now) {
			admitted++
		} else {
			dropped++
		}
		if i%2 == 0 {
			q.Dequeue(now) // drain at half the arrival rate
		}
		now += sim.Millisecond
	}
	if dropped == 0 {
		t.Fatal("PIE never dropped under sustained overload")
	}
	if admitted == 0 {
		t.Fatal("PIE admitted nothing")
	}
}

func TestBoDeBoundsDelay(t *testing.T) {
	q := NewBoDe(1<<20, 20*sim.Millisecond)
	now := sim.Time(0)
	// Establish a drain rate of one MTU per ms (12 Mb/s).
	for i := 0; i < 50; i++ {
		q.Enqueue(pkt(MTU), now)
		q.Dequeue(now)
		now += sim.Millisecond
	}
	// Now flood without draining: backlog beyond 20 ms worth must be refused.
	refused := 0
	for i := 0; i < 100; i++ {
		if !q.Enqueue(pkt(MTU), now) {
			refused++
		}
	}
	if refused == 0 {
		t.Fatal("BoDe never bounded the projected delay")
	}
	if q.Bytes() > 30*MTU {
		t.Fatalf("BoDe backlog %d bytes exceeds bound region", q.Bytes())
	}
}

func TestNewQueueKinds(t *testing.T) {
	kinds := []AQMKind{AQMDropTail, AQMHeadDrop, AQMCoDel, AQMPIE, AQMBoDe}
	names := []string{"TDrop", "HDrop", "CoDel", "PIE", "BoDe"}
	for i, k := range kinds {
		q := NewQueue(k, 10*MTU, 1)
		if q == nil {
			t.Fatalf("NewQueue(%v) = nil", k)
		}
		if k.String() != names[i] {
			t.Fatalf("String(%v) = %q", k, k.String())
		}
		if !q.Enqueue(pkt(MTU), 0) {
			t.Fatalf("%v rejected first packet", k)
		}
		if p := q.Dequeue(sim.Millisecond); p == nil {
			t.Fatalf("%v lost the packet", k)
		}
	}
	if AQMKind(99).String() != "unknown" {
		t.Fatal("unknown kind name")
	}
}

// Property: for every discipline, bytes accounting stays consistent and
// non-negative through arbitrary enqueue/dequeue interleavings.
func TestQueueAccountingProperty(t *testing.T) {
	f := func(ops []bool, kindSel uint8) bool {
		k := AQMKind(int(kindSel) % 5)
		q := NewQueue(k, 20*MTU, 7)
		now := sim.Time(0)
		for _, enq := range ops {
			if enq {
				q.Enqueue(pkt(MTU), now)
			} else {
				q.Dequeue(now)
			}
			now += 100 * sim.Microsecond
			if q.Bytes() < 0 || q.Len() < 0 || q.Bytes() != q.Len()*MTU {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdECNStepMarking(t *testing.T) {
	q := NewThresholdECN(100*MTU, 5)
	// Below K: no marks.
	for i := 0; i < 5; i++ {
		p := &Packet{Size: MTU, ECT: true}
		q.Enqueue(p, 0)
		if p.ECE {
			t.Fatalf("marked below threshold at depth %d", i)
		}
	}
	// At and above K: every ECT arrival marked.
	p := &Packet{Size: MTU, ECT: true}
	q.Enqueue(p, 0)
	if !p.ECE {
		t.Fatal("not marked at threshold")
	}
	// Non-ECT packets pass unmarked.
	np := &Packet{Size: MTU}
	q.Enqueue(np, 0)
	if np.ECE {
		t.Fatal("non-ECT packet marked")
	}
	if q.Marks() != 1 {
		t.Fatalf("marks = %d", q.Marks())
	}
	// Overflow still drops.
	for i := 0; i < 200; i++ {
		q.Enqueue(&Packet{Size: MTU, ECT: true}, 0)
	}
	if q.Drops() == 0 {
		t.Fatal("overflow did not drop")
	}
}
