package netem

import (
	"testing"

	"sage/internal/sim"
)

// BenchmarkLinkThroughput measures simulated packets per wall-clock second
// through the bottleneck — the number that bounds how much emulated traffic
// the experiment harness can push.
func BenchmarkLinkThroughput(b *testing.B) {
	loop := sim.NewLoop()
	delivered := 0
	link := NewLink(loop, NewDropTail(1<<30), FlatRate(Mbps(1000)),
		ReceiverFunc(func(p *Packet, now sim.Time) { delivered++ }))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		link.Send(&Packet{Size: MTU, Seq: int64(i)}, loop.Now())
		loop.Step()
	}
	if delivered == 0 && b.N > 1 {
		b.Fatal("nothing delivered")
	}
}

// BenchmarkQueueDisciplines compares enqueue/dequeue cost across AQMs.
func BenchmarkQueueDisciplines(b *testing.B) {
	for _, k := range []AQMKind{AQMDropTail, AQMHeadDrop, AQMCoDel, AQMPIE, AQMBoDe} {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			q := NewQueue(k, 64*MTU, 1)
			now := sim.Time(0)
			for i := 0; i < b.N; i++ {
				q.Enqueue(&Packet{Size: MTU}, now)
				if i%2 == 1 {
					q.Dequeue(now + sim.Millisecond)
				}
				now += 100 * sim.Microsecond
			}
		})
	}
}
