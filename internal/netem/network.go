package netem

import (
	"math/rand"

	"sage/internal/sim"
)

// Endpoints identifies the two receivers of a flow: the data sink at the far
// end and the ACK sink back at the sender.
type Endpoints struct {
	Data Receiver // receives data packets (the flow's receiver)
	Ack  Receiver // receives ACK packets (the flow's sender)
}

// Network wires senders and receivers through one shared bottleneck with
// symmetric propagation delay. Data packets traverse the bottleneck then a
// one-way delay; ACKs traverse only the return one-way delay (the reverse
// path is assumed uncongested, as in the paper's emulation).
type Network struct {
	Loop *sim.Loop
	Link *Link

	owd      sim.Time // one-way propagation delay, each direction
	jitter   sim.Time // max uniform extra per-packet delay (0 = none)
	lossProb float64  // random (non-congestive) loss on the data path
	rng      *rand.Rand

	// Adversarial conditions (all off by default).
	reorderProb  float64
	reorderDelay sim.Time
	ackLossProb  float64
	ackDupProb   float64
	ge           *geChain

	flows map[int]Endpoints

	RandomLosses int64
	BurstLosses  int64 // data packets dropped by the Gilbert-Elliott chain
	Reordered    int64 // data packets given extra reorder delay
	AckLosses    int64 // ACK packets dropped on the reverse path
	AckDups      int64 // ACK packets duplicated on the reverse path
}

// Config parameterizes a Network.
type Config struct {
	Rate     *RateSchedule
	MinRTT   sim.Time // propagation round-trip (split evenly per direction)
	Queue    Queue    // bottleneck buffer; nil means a 1-BDP DropTail
	Jitter   sim.Time // max uniform extra one-way delay per packet
	LossProb float64  // iid random loss probability on the data path
	Seed     int64

	// Adversarial conditions (see Scenario and AdversarialGrid).
	ReorderProb  float64        // probability a data packet gets extra reorder delay
	ReorderDelay sim.Time       // max extra delay for a reordered packet
	AckLossProb  float64        // iid loss on the ACK path
	AckDupProb   float64        // iid duplication on the ACK path
	Gilbert      GilbertElliott // burst loss on the data path
}

// BDPBytes returns the bandwidth-delay product in bytes.
func BDPBytes(bps float64, rtt sim.Time) int {
	return int(bps / 8 * rtt.Seconds())
}

// New creates a network with a single bottleneck described by cfg.
func New(loop *sim.Loop, cfg Config) *Network {
	q := cfg.Queue
	if q == nil {
		q = NewDropTail(BDPBytes(cfg.Rate.At(0), cfg.MinRTT))
	}
	n := &Network{
		Loop:         loop,
		owd:          cfg.MinRTT / 2,
		jitter:       cfg.Jitter,
		lossProb:     cfg.LossProb,
		reorderProb:  cfg.ReorderProb,
		reorderDelay: cfg.ReorderDelay,
		ackLossProb:  cfg.AckLossProb,
		ackDupProb:   cfg.AckDupProb,
		rng:          rand.New(rand.NewSource(cfg.Seed + 1)),
		flows:        make(map[int]Endpoints),
	}
	if cfg.Gilbert.Enabled() {
		n.ge = &geChain{cfg: cfg.Gilbert, rng: rand.New(rand.NewSource(cfg.Seed + 2))}
	}
	n.Link = NewLink(loop, q, cfg.Rate, ReceiverFunc(n.afterBottleneck))
	return n
}

// MinRTT returns the propagation round-trip time.
func (n *Network) MinRTT() sim.Time { return 2 * n.owd }

// Attach registers the endpoints of flow id.
func (n *Network) Attach(id int, ep Endpoints) { n.flows[id] = ep }

// SendData injects a data packet from flow p.FlowID into the bottleneck.
// It returns false if the packet was dropped at the queue or by random loss.
func (n *Network) SendData(p *Packet, now sim.Time) bool {
	if n.lossProb > 0 && n.rng.Float64() < n.lossProb {
		n.RandomLosses++
		return false
	}
	if n.ge != nil && n.ge.drop() {
		n.BurstLosses++
		return false
	}
	return n.Link.Send(p, now)
}

func (n *Network) afterBottleneck(p *Packet, now sim.Time) {
	d := n.owd + n.extraJitter() + n.extraReorder()
	n.Loop.At(now+d, func(t sim.Time) {
		if ep, ok := n.flows[p.FlowID]; ok && ep.Data != nil {
			ep.Data.Receive(p, t)
		}
	})
}

// SendAck carries an ACK back to flow p.FlowID's sender over the
// uncongested reverse path. Under adversarial conditions the reverse path
// can drop or duplicate ACKs: the sender must survive both the missing
// acknowledgments (cumulative delivery arrives late, via later ACKs) and
// the duplicate ones (already-resolved sequence numbers re-acknowledged).
func (n *Network) SendAck(p *Packet, now sim.Time) {
	if n.ackLossProb > 0 && n.rng.Float64() < n.ackLossProb {
		n.AckLosses++
		return
	}
	deliver := func(d sim.Time) {
		n.Loop.At(now+d, func(t sim.Time) {
			if ep, ok := n.flows[p.FlowID]; ok && ep.Ack != nil {
				ep.Ack.Receive(p, t)
			}
		})
	}
	deliver(n.owd + n.extraJitter())
	if n.ackDupProb > 0 && n.rng.Float64() < n.ackDupProb {
		n.AckDups++
		// The copy trails the original by a small extra delay, as a
		// duplicated ACK on a real path would.
		deliver(n.owd + n.extraJitter() + n.owd/4 + 1)
	}
}

func (n *Network) extraJitter() sim.Time {
	if n.jitter <= 0 {
		return 0
	}
	return sim.Time(n.rng.Int63n(int64(n.jitter) + 1))
}

// extraReorder returns the occasional large extra delay that makes later
// packets overtake this one — per-packet reordering, as opposed to the
// small always-on jitter.
func (n *Network) extraReorder() sim.Time {
	if n.reorderProb <= 0 || n.reorderDelay <= 0 {
		return 0
	}
	if n.rng.Float64() >= n.reorderProb {
		return 0
	}
	n.Reordered++
	return 1 + sim.Time(n.rng.Int63n(int64(n.reorderDelay)))
}
