package netem

import (
	"math/rand"

	"sage/internal/sim"
)

// Endpoints identifies the two receivers of a flow: the data sink at the far
// end and the ACK sink back at the sender.
type Endpoints struct {
	Data Receiver // receives data packets (the flow's receiver)
	Ack  Receiver // receives ACK packets (the flow's sender)
}

// Network wires senders and receivers through one shared bottleneck with
// symmetric propagation delay. Data packets traverse the bottleneck then a
// one-way delay; ACKs traverse only the return one-way delay (the reverse
// path is assumed uncongested, as in the paper's emulation).
type Network struct {
	Loop *sim.Loop
	Link *Link

	owd      sim.Time // one-way propagation delay, each direction
	jitter   sim.Time // max uniform extra per-packet delay (0 = none)
	lossProb float64  // random (non-congestive) loss on the data path
	rng      *rand.Rand

	flows map[int]Endpoints

	RandomLosses int64
}

// Config parameterizes a Network.
type Config struct {
	Rate     *RateSchedule
	MinRTT   sim.Time // propagation round-trip (split evenly per direction)
	Queue    Queue    // bottleneck buffer; nil means a 1-BDP DropTail
	Jitter   sim.Time // max uniform extra one-way delay per packet
	LossProb float64  // iid random loss probability on the data path
	Seed     int64
}

// BDPBytes returns the bandwidth-delay product in bytes.
func BDPBytes(bps float64, rtt sim.Time) int {
	return int(bps / 8 * rtt.Seconds())
}

// New creates a network with a single bottleneck described by cfg.
func New(loop *sim.Loop, cfg Config) *Network {
	q := cfg.Queue
	if q == nil {
		q = NewDropTail(BDPBytes(cfg.Rate.At(0), cfg.MinRTT))
	}
	n := &Network{
		Loop:     loop,
		owd:      cfg.MinRTT / 2,
		jitter:   cfg.Jitter,
		lossProb: cfg.LossProb,
		rng:      rand.New(rand.NewSource(cfg.Seed + 1)),
		flows:    make(map[int]Endpoints),
	}
	n.Link = NewLink(loop, q, cfg.Rate, ReceiverFunc(n.afterBottleneck))
	return n
}

// MinRTT returns the propagation round-trip time.
func (n *Network) MinRTT() sim.Time { return 2 * n.owd }

// Attach registers the endpoints of flow id.
func (n *Network) Attach(id int, ep Endpoints) { n.flows[id] = ep }

// SendData injects a data packet from flow p.FlowID into the bottleneck.
// It returns false if the packet was dropped at the queue or by random loss.
func (n *Network) SendData(p *Packet, now sim.Time) bool {
	if n.lossProb > 0 && n.rng.Float64() < n.lossProb {
		n.RandomLosses++
		return false
	}
	return n.Link.Send(p, now)
}

func (n *Network) afterBottleneck(p *Packet, now sim.Time) {
	d := n.owd + n.extraJitter()
	n.Loop.At(now+d, func(t sim.Time) {
		if ep, ok := n.flows[p.FlowID]; ok && ep.Data != nil {
			ep.Data.Receive(p, t)
		}
	})
}

// SendAck carries an ACK back to flow p.FlowID's sender over the
// uncongested reverse path.
func (n *Network) SendAck(p *Packet, now sim.Time) {
	d := n.owd + n.extraJitter()
	n.Loop.At(now+d, func(t sim.Time) {
		if ep, ok := n.flows[p.FlowID]; ok && ep.Ack != nil {
			ep.Ack.Receive(p, t)
		}
	})
}

func (n *Network) extraJitter() sim.Time {
	if n.jitter <= 0 {
		return 0
	}
	return sim.Time(n.rng.Int63n(int64(n.jitter) + 1))
}
