package netem

import (
	"math/rand"
	"strings"
	"testing"

	"sage/internal/sim"
)

func TestFlapRateAlternatesAndRecovers(t *testing.T) {
	rate := Mbps(12)
	s := FlapRate(rate, 1*sim.Second, 2*sim.Second, 500*sim.Millisecond, 10*sim.Second)
	cases := []struct {
		at   sim.Time
		want float64
	}{
		{0, rate},                      // before the first flap
		{1100 * sim.Millisecond, 0},    // inside the first outage
		{1600 * sim.Millisecond, rate}, // restored
		{3200 * sim.Millisecond, 0},    // second outage (period 2 s)
		{9600 * sim.Millisecond, rate}, // after the last outage
		{20 * sim.Second, rate},        // never ends dark
	}
	for _, c := range cases {
		if got := s.At(c.at); got != c.want {
			t.Fatalf("At(%v) = %g, want %g", c.at, got, c.want)
		}
	}
	if s.MaxRate() != rate {
		t.Fatalf("MaxRate = %g", s.MaxRate())
	}
}

func TestBlackoutRate(t *testing.T) {
	rate := Mbps(24)
	s := BlackoutRate(rate, 5*sim.Second, 1*sim.Second)
	for _, c := range []struct {
		at   sim.Time
		want float64
	}{{0, rate}, {5500 * sim.Millisecond, 0}, {6 * sim.Second, rate}} {
		if got := s.At(c.at); got != c.want {
			t.Fatalf("At(%v) = %g, want %g", c.at, got, c.want)
		}
	}
}

func TestGilbertElliottValidate(t *testing.T) {
	bad := []GilbertElliott{
		{PGoodBad: -0.1, PBadGood: 0.5},
		{PGoodBad: 0.1, PBadGood: 1.5},
		{PGoodBad: 0.1, PBadGood: 0.5, LossBad: 2},
		{PGoodBad: 0.1, PBadGood: 0, LossBad: 0.5}, // absorbing bad state
	}
	for _, g := range bad {
		if g.Validate() == nil {
			t.Fatalf("%+v validated", g)
		}
	}
	good := GilbertElliott{PGoodBad: 0.01, PBadGood: 0.2, LossBad: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if !good.Enabled() {
		t.Fatal("configured model reports disabled")
	}
	if (GilbertElliott{}).Enabled() {
		t.Fatal("zero model reports enabled")
	}
}

func TestGilbertElliottBursts(t *testing.T) {
	c := &geChain{
		cfg: GilbertElliott{PGoodBad: 0.02, PBadGood: 0.2, LossBad: 1},
		rng: rand.New(rand.NewSource(7)),
	}
	const n = 20000
	losses, runs, inRun := 0, 0, false
	for i := 0; i < n; i++ {
		if c.drop() {
			losses++
			if !inRun {
				runs++
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	if losses == 0 {
		t.Fatal("no losses")
	}
	// Stationary bad-state share = p/(p+q) ≈ 9%; loss rate should land
	// near it, and losses must be clustered: far fewer runs than losses.
	rate := float64(losses) / n
	if rate < 0.03 || rate > 0.20 {
		t.Fatalf("loss rate %.3f outside plausible band", rate)
	}
	if avgRun := float64(losses) / float64(runs); avgRun < 2 {
		t.Fatalf("mean burst length %.2f, losses not clustered", avgRun)
	}
}

func TestNetworkReordersData(t *testing.T) {
	loop := sim.NewLoop()
	n := New(loop, Config{
		Rate:         FlatRate(Mbps(48)),
		MinRTT:       20 * sim.Millisecond,
		Queue:        NewDropTail(1 << 20),
		ReorderProb:  0.5,
		ReorderDelay: 5 * sim.Millisecond,
		Seed:         3,
	})
	var seqs []int64
	n.Attach(1, Endpoints{Data: ReceiverFunc(func(p *Packet, _ sim.Time) { seqs = append(seqs, p.Seq) })})
	const pkts = 50
	for i := 0; i < pkts; i++ {
		n.SendData(&Packet{FlowID: 1, Size: MTU, Seq: int64(i)}, 0)
	}
	loop.Run()
	if len(seqs) != pkts {
		t.Fatalf("delivered %d/%d", len(seqs), pkts)
	}
	if n.Reordered == 0 {
		t.Fatal("no packets marked reordered")
	}
	ooo := 0
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			ooo++
		}
	}
	if ooo == 0 {
		t.Fatalf("arrival order is monotone despite reordering (Reordered=%d)", n.Reordered)
	}
}

func TestNetworkAckLossAndDuplication(t *testing.T) {
	run := func(lossP, dupP float64) (sent, got int, n *Network) {
		loop := sim.NewLoop()
		n = New(loop, Config{
			Rate:        FlatRate(Mbps(48)),
			MinRTT:      20 * sim.Millisecond,
			Queue:       NewDropTail(1 << 20),
			AckLossProb: lossP,
			AckDupProb:  dupP,
			Seed:        5,
		})
		n.Attach(1, Endpoints{
			Data: ReceiverFunc(func(p *Packet, now sim.Time) {
				n.SendAck(&Packet{FlowID: 1, Ack: true, Seq: p.Seq}, now)
			}),
			Ack: ReceiverFunc(func(*Packet, sim.Time) { got++ }),
		})
		for i := 0; i < 200; i++ {
			n.SendData(&Packet{FlowID: 1, Size: MTU, Seq: int64(i)}, 0)
		}
		loop.Run()
		return 200, got, n
	}

	sent, got, n := run(0.5, 0)
	if n.AckLosses == 0 || got >= sent {
		t.Fatalf("ack loss: got %d/%d acks, AckLosses=%d", got, sent, n.AckLosses)
	}
	sent, got, n = run(0, 1)
	if n.AckDups == 0 || got != 2*sent {
		t.Fatalf("ack dup: got %d acks for %d data, AckDups=%d", got, sent, n.AckDups)
	}
}

func TestNetworkBurstLossDropsData(t *testing.T) {
	loop := sim.NewLoop()
	n := New(loop, Config{
		Rate:    FlatRate(Mbps(48)),
		MinRTT:  20 * sim.Millisecond,
		Queue:   NewDropTail(1 << 20),
		Gilbert: GilbertElliott{PGoodBad: 0.2, PBadGood: 0.2, LossBad: 1},
		Seed:    11,
	})
	delivered := 0
	n.Attach(1, Endpoints{Data: ReceiverFunc(func(*Packet, sim.Time) { delivered++ })})
	const pkts = 500
	for i := 0; i < pkts; i++ {
		n.SendData(&Packet{FlowID: 1, Size: MTU, Seq: int64(i)}, 0)
	}
	loop.Run()
	if n.BurstLosses == 0 {
		t.Fatal("Gilbert-Elliott chain dropped nothing")
	}
	if delivered+int(n.BurstLosses) != pkts {
		t.Fatalf("delivered %d + burst-lost %d != sent %d", delivered, n.BurstLosses, pkts)
	}
}

func TestScenarioValidateRejectsNonsense(t *testing.T) {
	ok := Scenario{
		Name: "ok", Rate: FlatRate(Mbps(12)), MinRTT: 20 * sim.Millisecond,
		QueueBytes: 1 << 16, Duration: 5 * sim.Second,
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}

	mutate := []struct {
		name string
		f    func(*Scenario)
		want string
	}{
		{"nil rate", func(s *Scenario) { s.Rate = nil }, "nil rate"},
		{"zero rate", func(s *Scenario) { s.Rate = FlatRate(0) }, "never exceeds 0"},
		{"zero duration", func(s *Scenario) { s.Duration = 0 }, "duration"},
		{"zero rtt", func(s *Scenario) { s.MinRTT = 0 }, "MinRTT"},
		{"negative queue", func(s *Scenario) { s.QueueBytes = -1 }, "queue"},
		{"negative loss", func(s *Scenario) { s.LossProb = -0.1 }, "LossProb"},
		{"loss > 1", func(s *Scenario) { s.LossProb = 1.5 }, "LossProb"},
		{"negative jitter", func(s *Scenario) { s.Jitter = -sim.Millisecond }, "jitter"},
		{"teststart at end", func(s *Scenario) { s.TestStart = s.Duration }, "TestStart"},
		{"negative cubic flows", func(s *Scenario) { s.CubicFlows = -1 }, "CubicFlows"},
		{"reorder without delay", func(s *Scenario) { s.ReorderProb = 0.1 }, "ReorderDelay"},
		{"ack loss prob", func(s *Scenario) { s.AckLossProb = 2 }, "AckLossProb"},
		{"absorbing gilbert", func(s *Scenario) { s.Gilbert = GilbertElliott{PGoodBad: 0.1, LossBad: 1} }, "Gilbert"},
	}
	for _, m := range mutate {
		s := ok
		m.f(&s)
		err := s.Validate()
		if err == nil {
			t.Fatalf("%s: validated", m.name)
		}
		if !strings.Contains(err.Error(), m.want) {
			t.Fatalf("%s: error %q missing %q", m.name, err, m.want)
		}
	}

	bad := ok
	bad.Duration = 0
	if err := ValidateAll([]Scenario{ok, bad}); err == nil {
		t.Fatal("ValidateAll missed the bad scenario")
	}
}

func TestAdversarialGridIsValidAndComplete(t *testing.T) {
	for _, lvl := range []GridLevel{GridTiny, GridSmall, GridFull} {
		grid := AdversarialGrid(AdversarialOptions{Level: lvl, Duration: 8 * sim.Second, Seed: 1})
		if len(grid) == 0 {
			t.Fatalf("level %d: empty grid", lvl)
		}
		if err := ValidateAll(grid); err != nil {
			t.Fatalf("level %d: %v", lvl, err)
		}
		for _, fam := range AdversarialNames() {
			found := false
			for _, sc := range grid {
				if strings.HasPrefix(sc.Name, fam+"-") {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("level %d: no %q scenario", lvl, fam)
			}
		}
		seen := map[string]bool{}
		for _, sc := range grid {
			if seen[sc.Name] {
				t.Fatalf("level %d: duplicate scenario %q", lvl, sc.Name)
			}
			seen[sc.Name] = true
			if sc.Duration != 8*sim.Second {
				t.Fatalf("%s: duration %v", sc.Name, sc.Duration)
			}
		}
	}
}
