package netem

import (
	"fmt"

	"sage/internal/sim"
)

// Scenario fully describes one emulated network environment, mirroring the
// four knobs the paper controls: link capacity, minimum end-to-end delay,
// bottleneck buffer size, and the presence of competing Cubic flows
// (Appendix C).
type Scenario struct {
	Name       string
	Rate       *RateSchedule
	MinRTT     sim.Time
	QueueBytes int
	AQM        AQMKind
	Duration   sim.Time
	CubicFlows int      // competing Cubic background flows (Set II)
	TestStart  sim.Time // when the flow under test joins (after Cubic warms up)
	Jitter     sim.Time
	LossProb   float64
	Seed       int64

	// Adversarial conditions (see AdversarialGrid). All zero values mean
	// "well-behaved network", so existing scenarios are unaffected.
	ReorderProb  float64        // per-data-packet probability of extra reorder delay
	ReorderDelay sim.Time       // max extra one-way delay for a reordered packet
	AckLossProb  float64        // iid loss on the ACK (reverse) path
	AckDupProb   float64        // iid duplication on the ACK path
	Gilbert      GilbertElliott // burst loss on the data path
}

// Build instantiates the scenario's network on loop.
func (s Scenario) Build(loop *sim.Loop) *Network {
	return New(loop, Config{
		Rate:         s.Rate,
		MinRTT:       s.MinRTT,
		Queue:        NewQueue(s.AQM, s.QueueBytes, s.Seed),
		Jitter:       s.Jitter,
		LossProb:     s.LossProb,
		ReorderProb:  s.ReorderProb,
		ReorderDelay: s.ReorderDelay,
		AckLossProb:  s.AckLossProb,
		AckDupProb:   s.AckDupProb,
		Gilbert:      s.Gilbert,
		Seed:         s.Seed,
	})
}

// Validate rejects nonsensical scenario configurations with descriptive
// errors. Collection and evaluation entry points call it before running,
// so a bad hand-built scenario fails up front instead of silently
// producing a simulation that stalls forever or divides by zero.
func (s Scenario) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("netem: scenario %q: %s", s.Name, fmt.Sprintf(format, args...))
	}
	if s.Rate == nil {
		return fail("nil rate schedule")
	}
	if s.Rate.MaxRate() <= 0 {
		return fail("rate schedule never exceeds 0 bps (the link could carry nothing)")
	}
	if s.Duration <= 0 {
		return fail("non-positive duration %v", s.Duration)
	}
	if s.MinRTT <= 0 {
		return fail("non-positive MinRTT %v", s.MinRTT)
	}
	if s.QueueBytes < 0 {
		return fail("negative queue size %d bytes", s.QueueBytes)
	}
	if s.TestStart < 0 {
		return fail("negative TestStart %v", s.TestStart)
	}
	if s.TestStart >= s.Duration {
		return fail("TestStart %v is not before Duration %v (the flow under test would never run)", s.TestStart, s.Duration)
	}
	if s.CubicFlows < 0 {
		return fail("negative CubicFlows %d", s.CubicFlows)
	}
	if s.Jitter < 0 {
		return fail("negative jitter %v", s.Jitter)
	}
	if s.ReorderDelay < 0 {
		return fail("negative reorder delay %v", s.ReorderDelay)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"LossProb", s.LossProb}, {"ReorderProb", s.ReorderProb},
		{"AckLossProb", s.AckLossProb}, {"AckDupProb", s.AckDupProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fail("%s = %g outside [0,1]", p.name, p.v)
		}
	}
	if s.ReorderProb > 0 && s.ReorderDelay <= 0 {
		return fail("ReorderProb %g with zero ReorderDelay (would reorder nothing)", s.ReorderProb)
	}
	if err := s.Gilbert.Validate(); err != nil {
		return fail("%v", err)
	}
	return nil
}

// ValidateAll validates every scenario and reports the first offender.
func ValidateAll(scens []Scenario) error {
	for _, sc := range scens {
		if err := sc.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// FairShare returns the ideal fair share in bits/second for the flow under
// test over the scenario's active test window.
func (s Scenario) FairShare() float64 {
	return s.Rate.MeanRateUntil(s.Duration) / float64(s.CubicFlows+1)
}

// GridLevel selects how densely the Set I / Set II parameter ranges are
// sampled. The paper's pool covers >1000 environments (GridFull); tests and
// benches use the sparser levels with the same parameter ranges.
type GridLevel int

// Grid densities.
const (
	GridTiny GridLevel = iota
	GridSmall
	GridFull
)

// ParseLevel maps the CLI spelling of a grid density to its GridLevel —
// shared by sage-collect and sage-coord so a campaign spec serialized by
// one is guaranteed to mean the same grid to the other.
func ParseLevel(s string) (GridLevel, error) {
	switch s {
	case "tiny":
		return GridTiny, nil
	case "small":
		return GridSmall, nil
	case "full":
		return GridFull, nil
	}
	return 0, fmt.Errorf("netem: unknown grid level %q (want tiny|small|full)", s)
}

// LevelName is ParseLevel's inverse, for logs and campaign specs.
func (l GridLevel) LevelName() string {
	switch l {
	case GridSmall:
		return "small"
	case GridFull:
		return "full"
	}
	return "tiny"
}

type gridAxes struct {
	bwMbps  []float64
	rttMs   []float64
	qsBDP   []float64
	stepMul []float64
}

func axes(level GridLevel) gridAxes {
	switch level {
	case GridTiny:
		return gridAxes{
			bwMbps:  []float64{24, 96},
			rttMs:   []float64{20, 80},
			qsBDP:   []float64{1, 4},
			stepMul: []float64{0.5, 2},
		}
	case GridSmall:
		return gridAxes{
			bwMbps:  []float64{12, 48, 192},
			rttMs:   []float64{10, 40, 160},
			qsBDP:   []float64{0.5, 2, 8},
			stepMul: []float64{0.25, 0.5, 2, 4},
		}
	default:
		return gridAxes{
			bwMbps:  []float64{12, 24, 48, 96, 192},
			rttMs:   []float64{10, 20, 40, 80, 160},
			qsBDP:   []float64{0.5, 1, 2, 4, 8, 16},
			stepMul: []float64{0.25, 0.5, 2, 4},
		}
	}
}

// SetIOptions tunes the generated single-flow scenarios.
type SetIOptions struct {
	Level    GridLevel
	Duration sim.Time // per-scenario run length (default 10 s)
	StepAt   sim.Time // when step scenarios switch rate (default Duration/2)
	Seed     int64
}

// SetI generates the paper's Set I: single-flow flat scenarios over
// BW ∈ [12,192] Mb/s, minRTT ∈ [10,160] ms, qs ∈ [½,16]×BDP, plus step
// scenarios where the rate is multiplied by m ∈ {0.25, 0.5, 2, 4} mid-run
// (capped at 200 Mb/s, per Appendix C.1).
func SetI(opt SetIOptions) []Scenario {
	a := axes(opt.Level)
	if opt.Duration == 0 {
		opt.Duration = 10 * sim.Second
	}
	if opt.StepAt == 0 {
		opt.StepAt = opt.Duration / 2
	}
	var out []Scenario
	seed := opt.Seed
	for _, bw := range a.bwMbps {
		for _, rtt := range a.rttMs {
			for _, qs := range a.qsBDP {
				mrtt := sim.FromMillis(rtt)
				qb := queueBytes(Mbps(bw), mrtt, qs)
				seed++
				out = append(out, Scenario{
					Name:       fmt.Sprintf("flat-%gmbps-%gms-%gbdp", bw, rtt, qs),
					Rate:       FlatRate(Mbps(bw)),
					MinRTT:     mrtt,
					QueueBytes: qb,
					Duration:   opt.Duration,
					Seed:       seed,
				})
			}
		}
	}
	// Step scenarios: vary bw and multiplier at a mid grid point of rtt/qs.
	midRTT := a.rttMs[len(a.rttMs)/2]
	midQS := a.qsBDP[len(a.qsBDP)/2]
	for _, bw := range a.bwMbps {
		for _, m := range a.stepMul {
			after := bw * m
			if after > 200 || after < 1 {
				continue
			}
			mrtt := sim.FromMillis(midRTT)
			ref := bw
			if after > ref {
				ref = after
			}
			qb := queueBytes(Mbps(ref), mrtt, midQS)
			seed++
			out = append(out, Scenario{
				Name:       fmt.Sprintf("step-%gto%gmbps-%gms-%gbdp", bw, after, midRTT, midQS),
				Rate:       StepRate(Mbps(bw), Mbps(after), opt.StepAt),
				MinRTT:     mrtt,
				QueueBytes: qb,
				Duration:   opt.Duration,
				Seed:       seed,
			})
		}
	}
	return out
}

// SetIIOptions tunes the generated multi-flow (TCP-friendliness) scenarios.
type SetIIOptions struct {
	Level      GridLevel
	Duration   sim.Time // default 30 s (paper uses 120 s; scaled)
	CubicFlows int      // default 1 (the paper's two-flow pool scenarios)
	Seed       int64
}

// SetII generates the paper's Set II: the scheme under test joins a
// bottleneck already carrying Cubic traffic, with qs ∈ [1,16]×BDP so the
// buffer can absorb more than one flow (Appendix C.2).
func SetII(opt SetIIOptions) []Scenario {
	a := axes(opt.Level)
	if opt.Duration == 0 {
		opt.Duration = 30 * sim.Second
	}
	if opt.CubicFlows == 0 {
		opt.CubicFlows = 1
	}
	var out []Scenario
	seed := opt.Seed + 10_000
	for _, bw := range a.bwMbps {
		for _, rtt := range a.rttMs {
			for _, qs := range a.qsBDP {
				if qs < 1 {
					qs = 1
				}
				mrtt := sim.FromMillis(rtt)
				qb := queueBytes(Mbps(bw), mrtt, qs)
				seed++
				out = append(out, Scenario{
					Name:       fmt.Sprintf("vs%dcubic-%gmbps-%gms-%gbdp", opt.CubicFlows, bw, rtt, qs),
					Rate:       FlatRate(Mbps(bw)),
					MinRTT:     mrtt,
					QueueBytes: qb,
					Duration:   opt.Duration,
					CubicFlows: opt.CubicFlows,
					TestStart:  opt.Duration / 10,
					Seed:       seed,
				})
			}
		}
	}
	return dedupeScenarios(out)
}

func queueBytes(bps float64, rtt sim.Time, bdpMult float64) int {
	qb := int(float64(BDPBytes(bps, rtt)) * bdpMult)
	if qb < 2*MTU {
		qb = 2 * MTU
	}
	return qb
}

func dedupeScenarios(in []Scenario) []Scenario {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if seen[s.Name] {
			continue
		}
		seen[s.Name] = true
		out = append(out, s)
	}
	return out
}
