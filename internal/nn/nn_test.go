package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// numGrad computes a central finite difference of f wrt p.Data[i].
func numGrad(p *Param, i int, f func() float64) float64 {
	const h = 1e-6
	old := p.Data[i]
	p.Data[i] = old + h
	up := f()
	p.Data[i] = old - h
	down := f()
	p.Data[i] = old
	return (up - down) / (2 * h)
}

func checkModuleGrads(t *testing.T, m Module, loss func() float64, backward func(), tol float64) {
	t.Helper()
	ZeroGrads(m)
	backward()
	rng := rand.New(rand.NewSource(5))
	for _, p := range m.Params() {
		// Sample a few indices per tensor; full sweeps are slow.
		for trial := 0; trial < 4; trial++ {
			i := rng.Intn(len(p.Data))
			want := numGrad(p, i, loss)
			got := p.Grad[i]
			if math.Abs(want-got) > tol*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic %g vs numeric %g", p.Name, i, got, want)
			}
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense("d", 4, 3, rng)
	x := []float64{0.5, -1, 2, 0.1}
	// loss = sum of squares of output
	loss := func() float64 {
		y := d.Forward(x)
		s := 0.0
		for _, v := range y {
			s += v * v
		}
		return s
	}
	checkModuleGrads(t, d, loss, func() {
		y := d.Forward(x)
		dy := make([]float64, len(y))
		for i := range y {
			dy[i] = 2 * y[i]
		}
		d.Backward(x, dy)
	}, 1e-4)
}

func TestDenseInputGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense("d", 3, 2, rng)
	x := []float64{1, -0.5, 0.25}
	y := d.Forward(x)
	dy := []float64{1, -1}
	dx := d.Backward(x, dy)
	for j := range x {
		h := 1e-6
		x2 := append([]float64(nil), x...)
		x2[j] += h
		y2 := d.Forward(x2)
		num := ((y2[0] - y[0]) - (y2[1] - y[1])) / h
		if math.Abs(num-dx[j]) > 1e-4 {
			t.Fatalf("dx[%d] = %g, numeric %g", j, dx[j], num)
		}
	}
}

func TestLayerNormGradients(t *testing.T) {
	ln := NewLayerNorm("ln", 5)
	rng := rand.New(rand.NewSource(3))
	for i := range ln.G.Data {
		ln.G.Data[i] = 1 + 0.1*rng.Float64()
		ln.B.Data[i] = 0.1 * rng.NormFloat64()
	}
	x := []float64{0.3, -1.2, 0.8, 2.0, -0.5}
	target := []float64{1, 0, -1, 0.5, 0.2}
	loss := func() float64 {
		y, _ := ln.Forward(x)
		s := 0.0
		for i := range y {
			d := y[i] - target[i]
			s += d * d
		}
		return s
	}
	checkModuleGrads(t, ln, loss, func() {
		y, c := ln.Forward(x)
		dy := make([]float64, len(y))
		for i := range y {
			dy[i] = 2 * (y[i] - target[i])
		}
		ln.Backward(c, dy)
	}, 1e-4)

	// Input gradient.
	y, c := ln.Forward(x)
	dy := make([]float64, len(y))
	for i := range y {
		dy[i] = 2 * (y[i] - target[i])
	}
	dx := ln.Backward(c, dy)
	for j := range x {
		h := 1e-6
		x2 := append([]float64(nil), x...)
		x2[j] += h
		num := (lossOf(ln, x2, target) - lossOf(ln, x, target)) / h
		if math.Abs(num-dx[j]) > 1e-3 {
			t.Fatalf("ln dx[%d] = %g, numeric %g", j, dx[j], num)
		}
	}
}

func lossOf(ln *LayerNorm, x, target []float64) float64 {
	y, _ := ln.Forward(x)
	s := 0.0
	for i := range y {
		d := y[i] - target[i]
		s += d * d
	}
	return s
}

func TestGRUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := NewGRU("g", 3, 4, rng)
	x := []float64{0.5, -0.3, 1.1}
	h := []float64{0.2, -0.1, 0.4, 0}
	loss := func() float64 {
		hn, _ := g.Forward(x, h)
		s := 0.0
		for _, v := range hn {
			s += v * v
		}
		return s
	}
	checkModuleGrads(t, g, loss, func() {
		hn, c := g.Forward(x, h)
		dh := make([]float64, len(hn))
		for i := range hn {
			dh[i] = 2 * hn[i]
		}
		g.Backward(c, dh)
	}, 1e-4)

	// dx and dhPrev.
	hn, c := g.Forward(x, h)
	dhn := make([]float64, len(hn))
	for i := range hn {
		dhn[i] = 2 * hn[i]
	}
	dx, dhp := g.Backward(c, dhn)
	const eps = 1e-6
	for j := range x {
		x2 := append([]float64(nil), x...)
		x2[j] += eps
		if num := (gruLoss(g, x2, h) - gruLoss(g, x, h)) / eps; math.Abs(num-dx[j]) > 1e-3 {
			t.Fatalf("gru dx[%d] = %g, numeric %g", j, dx[j], num)
		}
	}
	for j := range h {
		h2 := append([]float64(nil), h...)
		h2[j] += eps
		if num := (gruLoss(g, x, h2) - gruLoss(g, x, h)) / eps; math.Abs(num-dhp[j]) > 1e-3 {
			t.Fatalf("gru dh[%d] = %g, numeric %g", j, dhp[j], num)
		}
	}
}

func gruLoss(g *GRU, x, h []float64) float64 {
	hn, _ := g.Forward(x, h)
	s := 0.0
	for _, v := range hn {
		s += v * v
	}
	return s
}

func TestGMMLogProbGrad(t *testing.T) {
	g := GMM{K: 3}
	rng := rand.New(rand.NewSource(6))
	p := make([]float64, g.HeadDim())
	for i := range p {
		p[i] = rng.NormFloat64() * 0.5
	}
	a := 0.3
	logp, dp := g.LogProbGrad(p, a)
	if math.Abs(logp-g.LogProb(p, a)) > 1e-12 {
		t.Fatal("LogProb and LogProbGrad disagree")
	}
	const h = 1e-6
	for i := range p {
		p2 := append([]float64(nil), p...)
		p2[i] += h
		num := (g.LogProb(p2, a) - logp) / h
		if math.Abs(num-dp[i]) > 1e-3 {
			t.Fatalf("dp[%d] = %g, numeric %g", i, dp[i], num)
		}
	}
}

func TestGMMSampleDistribution(t *testing.T) {
	g := GMM{K: 2}
	// Two well-separated components with equal weight.
	p := []float64{0, 0, -1, 1, -3, -3} // logits 0,0; means -1,1; logstd -3
	rng := rand.New(rand.NewSource(7))
	nLeft := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if g.Sample(p, rng) < 0 {
			nLeft++
		}
	}
	if nLeft < n/3 || nLeft > 2*n/3 {
		t.Fatalf("component balance off: %d/%d", nLeft, n)
	}
	if m := g.Mean(p); math.Abs(m) > 1e-9 {
		t.Fatalf("mixture mean = %v", m)
	}
	if mode := g.Mode(p); mode != -1 && mode != 1 {
		t.Fatalf("mode = %v", mode)
	}
}

func TestPolicyForwardBackwardGradients(t *testing.T) {
	cfg := PolicyConfig{InDim: 6, Enc: 8, Hidden: 5, ResBlocks: 2, K: 2, Seed: 11}
	p := NewPolicy(cfg)
	state := []float64{1, -2, 0.5, 3, -0.1, 0.7}
	hidden := p.InitHidden()
	action := 0.2
	loss := func() float64 {
		head, _, _ := p.Forward(state, hidden)
		return -p.GMM.LogProb(head, action)
	}
	checkModuleGrads(t, p, loss, func() {
		head, _, c := p.Forward(state, hidden)
		_, dp := p.GMM.LogProbGrad(head, action)
		for i := range dp {
			dp[i] = -dp[i]
		}
		p.Backward(c, dp, nil)
	}, 2e-3)
}

func TestPolicyBPTTHiddenGradient(t *testing.T) {
	cfg := PolicyConfig{InDim: 3, Enc: 6, Hidden: 4, ResBlocks: 1, K: 2, Seed: 12}
	p := NewPolicy(cfg)
	s1 := []float64{0.5, -1, 2}
	s2 := []float64{-0.3, 0.8, 0.1}
	a1, a2 := 0.1, -0.4
	// Two-step BPTT loss.
	loss := func() float64 {
		h0 := p.InitHidden()
		head1, h1, _ := p.Forward(s1, h0)
		head2, _, _ := p.Forward(s2, h1)
		return -p.GMM.LogProb(head1, a1) - p.GMM.LogProb(head2, a2)
	}
	checkModuleGrads(t, p, loss, func() {
		h0 := p.InitHidden()
		head1, h1, c1 := p.Forward(s1, h0)
		head2, _, c2 := p.Forward(s2, h1)
		_, dp2 := p.GMM.LogProbGrad(head2, a2)
		for i := range dp2 {
			dp2[i] = -dp2[i]
		}
		dh1 := p.Backward(c2, dp2, nil)
		_, dp1 := p.GMM.LogProbGrad(head1, a1)
		for i := range dp1 {
			dp1[i] = -dp1[i]
		}
		p.Backward(c1, dp1, dh1)
	}, 5e-3)
}

func TestPolicyAblationVariants(t *testing.T) {
	base := PolicyConfig{InDim: 4, Enc: 6, Hidden: 5, ResBlocks: 1, K: 2, Seed: 1}
	variants := []PolicyConfig{
		base,
		{InDim: 4, Enc: 6, ResBlocks: 1, K: 2, NoGRU: true, Seed: 1},
		{InDim: 4, Enc: 6, Hidden: 5, ResBlocks: 1, K: 2, NoEncoder: true, Seed: 1},
		{InDim: 4, Enc: 6, Hidden: 5, ResBlocks: 1, K: 1, Seed: 1}, // no GMM
	}
	for i, cfg := range variants {
		p := NewPolicy(cfg)
		head, h, c := p.Forward([]float64{1, 2, 3, 4}, p.InitHidden())
		if len(head) != 3*p.Cfg.K {
			t.Fatalf("variant %d: head dim %d", i, len(head))
		}
		if cfg.NoGRU && h != nil {
			t.Fatalf("variant %d: NoGRU produced hidden state", i)
		}
		dp := make([]float64, len(head))
		dp[0] = 1
		p.Backward(c, dp, nil)
		if len(p.LastHidden(c)) != p.Cfg.Enc {
			t.Fatalf("variant %d: last hidden dim", i)
		}
	}
}

func TestCriticProjectAndGradients(t *testing.T) {
	cfg := CriticConfig{InDim: 4, Hidden: 8, Atoms: 11, VMin: 0, VMax: 10, Seed: 3}
	c := NewCritic(cfg)
	state := []float64{1, -1, 0.5, 2}
	action := 0.3

	// Projection of a deterministic next distribution.
	next := make([]float64, 11)
	next[5] = 1 // mass at z=5
	m := c.Project(1, 0.9, next)
	sum := 0.0
	ev := 0.0
	for i, v := range m {
		sum += v
		ev += v * c.Z[i]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("projection mass %v", sum)
	}
	if math.Abs(ev-5.5) > 1e-9 { // 1 + 0.9*5
		t.Fatalf("projection mean %v, want 5.5", ev)
	}
	// Clamping at the support edges.
	m2 := c.Project(100, 1, next)
	if math.Abs(m2[10]-1) > 1e-9 {
		t.Fatalf("projection clamp: %v", m2)
	}

	loss := func() float64 {
		probs, _ := c.Dist(state, action)
		return CELoss(probs, m)
	}
	checkModuleGrads(t, c, loss, func() {
		_, cache := c.Dist(state, action)
		c.BackwardCE(cache, m, 1)
	}, 1e-3)
}

func TestAdamReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := NewDense("d", 2, 1, rng)
	opt := NewAdam(0.05)
	// Fit y = 3x1 - 2x2 + 1.
	data := [][3]float64{}
	for i := 0; i < 64; i++ {
		x1, x2 := rng.NormFloat64(), rng.NormFloat64()
		data = append(data, [3]float64{x1, x2, 3*x1 - 2*x2 + 1})
	}
	lossAt := func() float64 {
		s := 0.0
		for _, r := range data {
			y := d.Forward([]float64{r[0], r[1]})
			e := y[0] - r[2]
			s += e * e
		}
		return s / float64(len(data))
	}
	before := lossAt()
	for epoch := 0; epoch < 300; epoch++ {
		for _, r := range data {
			x := []float64{r[0], r[1]}
			y := d.Forward(x)
			d.Backward(x, []float64{2 * (y[0] - r[2]) / float64(len(data))})
		}
		opt.Step(d)
	}
	after := lossAt()
	if after > before/100 || after > 0.01 {
		t.Fatalf("Adam failed to fit: %g -> %g", before, after)
	}
	if math.Abs(d.W.Data[0]-3) > 0.1 || math.Abs(d.W.Data[1]+2) > 0.1 || math.Abs(d.B.Data[0]-1) > 0.1 {
		t.Fatalf("fit params %v %v", d.W.Data, d.B.Data)
	}
}

func TestNormalizer(t *testing.T) {
	samples := [][]float64{{1, 100}, {3, 300}, {5, 500}}
	n := FitNormalizer(samples)
	y := n.Apply([]float64{3, 300})
	if math.Abs(y[0]) > 1e-9 || math.Abs(y[1]) > 1e-9 {
		t.Fatalf("mean not centered: %v", y)
	}
	y = n.Apply([]float64{1e9, -1e9})
	if y[0] != 10 || y[1] != -10 {
		t.Fatalf("clipping failed: %v", y)
	}
	if got := FitNormalizer(nil); len(got.Mean) != 0 {
		t.Fatal("empty fit")
	}
	// Constant feature: std floors to 1 so Apply stays finite.
	n2 := FitNormalizer([][]float64{{7}, {7}})
	if v := n2.Apply([]float64{7})[0]; v != 0 {
		t.Fatalf("constant feature normalized to %v", v)
	}
}

func TestTargetNetworkSync(t *testing.T) {
	p := NewPolicy(PolicyConfig{InDim: 3, Enc: 4, Hidden: 3, K: 2, Seed: 1})
	q := ClonePolicy(p)
	s := []float64{1, 2, 3}
	h1, _, _ := p.Forward(s, p.InitHidden())
	h2, _, _ := q.Forward(s, q.InitHidden())
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatal("clone diverges")
		}
	}
	// Perturb p, then Polyak-track it.
	p.Params()[0].Data[0] += 1
	PolyakUpdate(q, p, 0.5)
	if got := q.Params()[0].Data[0]; math.Abs(got-(h1[0]*0+p.Params()[0].Data[0]-0.5)) > 1e-9 {
		t.Fatalf("polyak = %v", got)
	}
	CopyParams(q, p)
	if q.Params()[0].Data[0] != p.Params()[0].Data[0] {
		t.Fatal("copy failed")
	}
	if ParamCount(p) == 0 {
		t.Fatal("param count")
	}
}

func TestClipGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := NewDense("d", 2, 2, rng)
	for i := range d.W.Grad {
		d.W.Grad[i] = 100
	}
	ClipGrads(d, 1)
	if n := GradNorm(d); math.Abs(n-1) > 1e-9 {
		t.Fatalf("grad norm after clip = %v", n)
	}
}

func TestPolicySaveLoadRoundTrip(t *testing.T) {
	p := NewPolicy(PolicyConfig{InDim: 5, Enc: 6, Hidden: 4, K: 3, Seed: 2})
	p.Norm = FitNormalizer([][]float64{{1, 2, 3, 4, 5}, {2, 3, 4, 5, 6}, {0, 1, 2, 3, 4}})
	path := t.TempDir() + "/policy.gob.gz"
	if err := SavePolicy(p, path); err != nil {
		t.Fatal(err)
	}
	q, err := LoadPolicy(path)
	if err != nil {
		t.Fatal(err)
	}
	s := []float64{1, 2, 3, 4, 5}
	a, _, _ := p.Forward(s, p.InitHidden())
	b, _, _ := q.Forward(s, q.InitHidden())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("loaded policy diverges")
		}
	}
	if _, err := LoadPolicy(t.TempDir() + "/nope"); err == nil {
		t.Fatal("missing file accepted")
	}
}

// Property: softmax output is a probability distribution for any input.
func TestSoftmaxProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		x := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			x[i] = math.Mod(v, 50)
		}
		y := Softmax(x)
		s := 0.0
		for _, v := range y {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			s += v
		}
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: GMM LogProb integrates sensibly — probability mass near the
// means exceeds mass far away.
func TestGMMMassConcentration(t *testing.T) {
	g := GMM{K: 2}
	p := []float64{0, 0, -0.5, 0.5, -2, -2}
	near := g.LogProb(p, 0.5)
	far := g.LogProb(p, 30)
	if near <= far {
		t.Fatalf("logp near %v <= far %v", near, far)
	}
}
