//go:build amd64

#include "textflag.h"

// func x86CpuidAVX2() bool
TEXT ·x86CpuidAVX2(SB), NOSPLIT, $0-1
	// CPUID.1: ECX[27] = OSXSAVE (XGETBV available and OS uses it).
	MOVQ $1, AX
	XORQ CX, CX
	CPUID
	MOVQ CX, R8
	SHRQ $27, R8
	ANDQ $1, R8
	JZ   no

	// XGETBV(0): EAX[2:1] = XMM and YMM state enabled by the OS.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no

	// CPUID.7.0: EBX[5] = AVX2.
	MOVQ $7, AX
	XORQ CX, CX
	CPUID
	SHRQ $5, BX
	ANDQ $1, BX
	MOVB BX, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func dotTile16(w *float64, xt *float64, n int, acc *[16]float64)
//
// Four YMM accumulators carry 16 batch rows. Per element j: broadcast
// w[j], then for each 4-lane group multiply by the tile column and add.
// VMULPD+VADDPD (not VFMADD) so every lane performs the exact scalar
// sequence acc = acc + (w[j] * x[j]) with intermediate rounding.
TEXT ·dotTile16(SB), NOSPLIT, $0-32
	MOVQ w+0(FP), SI
	MOVQ xt+8(FP), DI
	MOVQ n+16(FP), CX
	MOVQ acc+24(FP), DX

	VMOVUPD (DX), Y0
	VMOVUPD 32(DX), Y1
	VMOVUPD 64(DX), Y2
	VMOVUPD 96(DX), Y3

	TESTQ CX, CX
	JZ    done

loop:
	VBROADCASTSD (SI), Y4

	VMULPD (DI), Y4, Y5
	VADDPD Y5, Y0, Y0
	VMULPD 32(DI), Y4, Y6
	VADDPD Y6, Y1, Y1
	VMULPD 64(DI), Y4, Y7
	VADDPD Y7, Y2, Y2
	VMULPD 96(DI), Y4, Y8
	VADDPD Y8, Y3, Y3

	ADDQ $8, SI
	ADDQ $128, DI
	DECQ CX
	JNZ  loop

done:
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VMOVUPD Y2, 64(DX)
	VMOVUPD Y3, 96(DX)
	VZEROUPPER
	RET
