// Package nn is a small, dependency-free neural-network library sized for
// the paper's architecture (Fig. 6): dense layers, LayerNorm, a GRU cell
// trained with truncated BPTT, residual blocks, a Gaussian-mixture policy
// head, a C51-style categorical value head, and the Adam optimizer. All
// gradients are hand-derived; finite-difference tests in this package verify
// every backward pass.
package nn

import (
	"math"
	"math/rand"
)

// Param is a flat parameter tensor with its gradient accumulator.
type Param struct {
	Name string
	Rows int // output dimension (1 for vectors)
	Cols int // input dimension (length for vectors)
	Data []float64
	Grad []float64
}

// NewParam allocates a rows×cols parameter initialized to zero.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name: name,
		Rows: rows,
		Cols: cols,
		Data: make([]float64, rows*cols),
		Grad: make([]float64, rows*cols),
	}
}

// GlorotInit fills the parameter with Glorot-uniform values.
func (p *Param) GlorotInit(rng *rand.Rand) {
	limit := math.Sqrt(6 / float64(p.Rows+p.Cols))
	for i := range p.Data {
		p.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// Fill sets every element to v.
func (p *Param) Fill(v float64) {
	for i := range p.Data {
		p.Data[i] = v
	}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// Module is anything exposing trainable parameters.
type Module interface {
	Params() []*Param
}

// ZeroGrads clears gradients of all parameters of a module.
func ZeroGrads(m Module) {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// CopyParams copies src parameter data into dst (target-network sync).
// The two modules must have identical shapes.
func CopyParams(dst, src Module) {
	dp, sp := dst.Params(), src.Params()
	for i := range dp {
		copy(dp[i].Data, sp[i].Data)
	}
}

// PolyakUpdate blends dst ← (1−tau)·dst + tau·src.
func PolyakUpdate(dst, src Module, tau float64) {
	dp, sp := dst.Params(), src.Params()
	for i := range dp {
		for j := range dp[i].Data {
			dp[i].Data[j] = (1-tau)*dp[i].Data[j] + tau*sp[i].Data[j]
		}
	}
}

// ParamCount returns the total number of scalars in a module.
func ParamCount(m Module) int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.Data)
	}
	return n
}

// GradNorm returns the L2 norm of all gradients of a module.
func GradNorm(m Module) float64 {
	s := 0.0
	for _, p := range m.Params() {
		for _, g := range p.Grad {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// FiniteParams reports whether every parameter of the module is finite —
// the corruption sweep guards and the training sentinel run between
// optimizer steps.
func FiniteParams(m Module) bool {
	for _, p := range m.Params() {
		for _, v := range p.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
	}
	return true
}

// ClipGrads scales gradients so their global norm is at most maxNorm.
func ClipGrads(m Module, maxNorm float64) {
	n := GradNorm(m)
	if n <= maxNorm || n == 0 {
		return
	}
	f := maxNorm / n
	for _, p := range m.Params() {
		for i := range p.Grad {
			p.Grad[i] *= f
		}
	}
}
