package nn

import (
	"fmt"

	"sage/internal/safeio"
)

// policyBlob is the on-disk form of a trained policy.
type policyBlob struct {
	Cfg    PolicyConfig
	Norm   Normalizer
	Params [][]float64
}

// SavePolicy writes the policy (architecture, normalizer, weights) to path
// as gzipped gob.
func SavePolicy(p *Policy, path string) error {
	blob := policyBlob{Cfg: p.Cfg, Norm: *p.Norm}
	for _, pr := range p.Params() {
		blob.Params = append(blob.Params, append([]float64(nil), pr.Data...))
	}
	return writeGob(path, &blob)
}

// LoadPolicy reconstructs a policy written by SavePolicy.
func LoadPolicy(path string) (*Policy, error) {
	var blob policyBlob
	if err := readGob(path, &blob); err != nil {
		return nil, err
	}
	p := NewPolicy(blob.Cfg)
	p.Norm = &blob.Norm
	ps := p.Params()
	if len(ps) != len(blob.Params) {
		return nil, fmt.Errorf("nn: policy blob has %d tensors, want %d", len(blob.Params), len(ps))
	}
	for i, pr := range ps {
		if len(pr.Data) != len(blob.Params[i]) {
			return nil, fmt.Errorf("nn: tensor %d size mismatch", i)
		}
		copy(pr.Data, blob.Params[i])
	}
	return p, nil
}

// LastHidden returns the activation of the network's last hidden layer for a
// forward cache — the embedding Fig. 16 visualizes with t-SNE.
func (p *Policy) LastHidden(c *PolicyCache) []float64 { return c.resOut }

// ClonePolicy returns a deep copy (used for target networks).
func ClonePolicy(p *Policy) *Policy {
	q := NewPolicy(p.Cfg)
	q.Norm = p.Norm
	CopyParams(q, p)
	return q
}

// CloneCritic returns a deep copy (used for target networks).
func CloneCritic(c *Critic) *Critic {
	q := NewCritic(c.Cfg)
	q.Norm = c.Norm
	CopyParams(q, c)
	return q
}

// writeGob persists v through safeio: atomic rename, checksummed payload.
func writeGob(path string, v any) error {
	if err := safeio.WriteGobGz(path, v); err != nil {
		return fmt.Errorf("nn: save: %w", err)
	}
	return nil
}

func readGob(path string, v any) error {
	if err := safeio.ReadGobGz(path, v); err != nil {
		return fmt.Errorf("nn: load: %w", err)
	}
	return nil
}
