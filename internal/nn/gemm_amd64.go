//go:build amd64

package nn

// useAVX2 gates the vectorized GEMM tile kernel. The AVX2 path is
// bitwise identical to the scalar path: each SIMD lane carries one batch
// row's accumulator through the same mul-then-add sequence (no FMA — a
// fused multiply-add rounds differently, which would break the batched ==
// sequential equivalence contract).
var useAVX2 = x86CpuidAVX2()

// x86CpuidAVX2 reports OS-enabled AVX2 (OSXSAVE + YMM state + CPUID.7
// EBX[5]); implemented in gemm_amd64.s.
func x86CpuidAVX2() bool

// dotTile16 accumulates, for one weight row w[0:n] against a 16-row
// transposed tile xt (layout xt[j*16+l] = x_l[j]):
//
//	acc[l] = acc[l] + w[0]·x_l[0] + w[1]·x_l[1] + … (in j order)
//
// Each lane's operation order matches the scalar dot product exactly.
// Implemented in gemm_amd64.s; only called when useAVX2 is true.
//
//go:noescape
func dotTile16(w *float64, xt *float64, n int, acc *[16]float64)
