package nn

import (
	"fmt"
	"math"
)

// Adam is the Adam optimizer (Kingma & Ba 2015) over a module's parameters.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

// NewAdam returns Adam with the standard β₁=0.9, β₂=0.999 moments.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param][]float64),
		v: make(map[*Param][]float64),
	}
}

// Step applies one update using the accumulated gradients, then clears them.
func (a *Adam) Step(mod Module) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range mod.Params() {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.Data))
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = make([]float64, len(p.Data))
			a.v[p] = v
		}
		for i, g := range p.Grad {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			p.Data[i] -= a.LR * (m[i] / bc1) / (math.Sqrt(v[i]/bc2) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// AdamState is the optimizer's serializable state over one module's
// parameters, in Params() order. Checkpoints persist it so a resumed
// training run applies bitwise-identical updates — without the moments,
// Adam re-warms over a few hundred steps and the resumed loss curve
// diverges from the uninterrupted one.
type AdamState struct {
	T    int
	M, V [][]float64
}

// State snapshots the optimizer state for mod's parameters. Parameters the
// optimizer has never stepped snapshot as empty slices.
func (a *Adam) State(mod Module) AdamState {
	st := AdamState{T: a.t}
	for _, p := range mod.Params() {
		st.M = append(st.M, append([]float64(nil), a.m[p]...))
		st.V = append(st.V, append([]float64(nil), a.v[p]...))
	}
	return st
}

// Restore re-installs a snapshot taken with State onto mod's parameters.
// A zero-value AdamState resets to a fresh optimizer (legacy checkpoints
// that did not persist moments).
func (a *Adam) Restore(mod Module, st AdamState) error {
	ps := mod.Params()
	a.m = make(map[*Param][]float64, len(ps))
	a.v = make(map[*Param][]float64, len(ps))
	a.t = st.T
	if st.M == nil && st.V == nil {
		return nil
	}
	if len(st.M) != len(ps) || len(st.V) != len(ps) {
		return fmt.Errorf("nn: adam state has %d/%d tensors, module has %d", len(st.M), len(st.V), len(ps))
	}
	for i, p := range ps {
		if len(st.M[i]) == 0 && len(st.V[i]) == 0 {
			continue // never stepped at save time
		}
		if len(st.M[i]) != len(p.Data) || len(st.V[i]) != len(p.Data) {
			return fmt.Errorf("nn: adam state tensor %d size mismatch (%d vs %d)", i, len(st.M[i]), len(p.Data))
		}
		a.m[p] = append([]float64(nil), st.M[i]...)
		a.v[p] = append([]float64(nil), st.V[i]...)
	}
	return nil
}

// Normalizer standardizes feature vectors with statistics estimated from the
// pool (the model ships with them, so deployment needs no environment
// knowledge).
type Normalizer struct {
	Mean []float64
	Std  []float64
}

// FitNormalizer estimates per-feature mean and standard deviation.
// Non-finite values are excluded per feature: one NaN/Inf observation in
// a poisoned trajectory must not corrupt the statistics every state in
// the pool is standardized with. On all-finite data the result is
// bitwise-identical to the naive fit.
func FitNormalizer(samples [][]float64) *Normalizer {
	if len(samples) == 0 {
		return &Normalizer{}
	}
	dim := len(samples[0])
	n := &Normalizer{Mean: make([]float64, dim), Std: make([]float64, dim)}
	cnt := make([]float64, dim)
	for _, s := range samples {
		for i, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			n.Mean[i] += v
			cnt[i]++
		}
	}
	for i := range n.Mean {
		if cnt[i] > 0 {
			n.Mean[i] /= cnt[i]
		}
	}
	for _, s := range samples {
		for i, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			d := v - n.Mean[i]
			n.Std[i] += d * d
		}
	}
	for i := range n.Std {
		if cnt[i] > 0 {
			n.Std[i] = math.Sqrt(n.Std[i] / cnt[i])
		}
		if n.Std[i] < 1e-6 {
			n.Std[i] = 1
		}
	}
	return n
}

// Apply returns the standardized copy of x, clipped to ±10σ so deployment
// outliers cannot saturate the network.
func (n *Normalizer) Apply(x []float64) []float64 {
	if len(n.Mean) == 0 {
		return append([]float64(nil), x...)
	}
	y := make([]float64, len(x))
	for i, v := range x {
		z := (v - n.Mean[i]) / n.Std[i]
		if z > 10 {
			z = 10
		} else if z < -10 {
			z = -10
		}
		y[i] = z
	}
	return y
}
