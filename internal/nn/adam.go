package nn

import "math"

// Adam is the Adam optimizer (Kingma & Ba 2015) over a module's parameters.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

// NewAdam returns Adam with the standard β₁=0.9, β₂=0.999 moments.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param][]float64),
		v: make(map[*Param][]float64),
	}
}

// Step applies one update using the accumulated gradients, then clears them.
func (a *Adam) Step(mod Module) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range mod.Params() {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.Data))
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = make([]float64, len(p.Data))
			a.v[p] = v
		}
		for i, g := range p.Grad {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			p.Data[i] -= a.LR * (m[i] / bc1) / (math.Sqrt(v[i]/bc2) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// Normalizer standardizes feature vectors with statistics estimated from the
// pool (the model ships with them, so deployment needs no environment
// knowledge).
type Normalizer struct {
	Mean []float64
	Std  []float64
}

// FitNormalizer estimates per-feature mean and standard deviation.
func FitNormalizer(samples [][]float64) *Normalizer {
	if len(samples) == 0 {
		return &Normalizer{}
	}
	dim := len(samples[0])
	n := &Normalizer{Mean: make([]float64, dim), Std: make([]float64, dim)}
	for _, s := range samples {
		for i, v := range s {
			n.Mean[i] += v
		}
	}
	for i := range n.Mean {
		n.Mean[i] /= float64(len(samples))
	}
	for _, s := range samples {
		for i, v := range s {
			d := v - n.Mean[i]
			n.Std[i] += d * d
		}
	}
	for i := range n.Std {
		n.Std[i] = math.Sqrt(n.Std[i] / float64(len(samples)))
		if n.Std[i] < 1e-6 {
			n.Std[i] = 1
		}
	}
	return n
}

// Apply returns the standardized copy of x, clipped to ±10σ so deployment
// outliers cannot saturate the network.
func (n *Normalizer) Apply(x []float64) []float64 {
	if len(n.Mean) == 0 {
		return append([]float64(nil), x...)
	}
	y := make([]float64, len(x))
	for i, v := range x {
		z := (v - n.Mean[i]) / n.Std[i]
		if z > 10 {
			z = 10
		} else if z < -10 {
			z = -10
		}
		y[i] = z
	}
	return y
}
