package nn

import (
	"math"
	"math/rand"
)

// GRU is a gated recurrent unit cell (Chung et al. 2014), the memory block
// of the Sage architecture (Fig. 6):
//
//	z = σ(Wz·x + Uz·h + bz)
//	r = σ(Wr·x + Ur·h + br)
//	n = tanh(Wn·x + r ∘ (Un·h) + bn)
//	h' = (1−z) ∘ n + z ∘ h
type GRU struct {
	In, Hidden             int
	Wz, Uz, Bz, Wr, Ur, Br *Param
	Wn, Un, Bn             *Param
}

// NewGRU builds a Glorot-initialized GRU cell.
func NewGRU(name string, in, hidden int, rng *rand.Rand) *GRU {
	g := &GRU{
		In: in, Hidden: hidden,
		Wz: NewParam(name+".Wz", hidden, in), Uz: NewParam(name+".Uz", hidden, hidden), Bz: NewParam(name+".bz", 1, hidden),
		Wr: NewParam(name+".Wr", hidden, in), Ur: NewParam(name+".Ur", hidden, hidden), Br: NewParam(name+".br", 1, hidden),
		Wn: NewParam(name+".Wn", hidden, in), Un: NewParam(name+".Un", hidden, hidden), Bn: NewParam(name+".bn", 1, hidden),
	}
	for _, p := range []*Param{g.Wz, g.Uz, g.Wr, g.Ur, g.Wn, g.Un} {
		p.GlorotInit(rng)
	}
	return g
}

// Params implements Module.
func (g *GRU) Params() []*Param {
	return []*Param{g.Wz, g.Uz, g.Bz, g.Wr, g.Ur, g.Br, g.Wn, g.Un, g.Bn}
}

// GRUCache stores one step's intermediates for BPTT.
type GRUCache struct {
	x, h    []float64 // inputs
	z, r, n []float64
	unH     []float64 // Un·h
	hNew    []float64
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

func matVec(p *Param, x []float64, out []float64) {
	for i := 0; i < p.Rows; i++ {
		row := p.Data[i*p.Cols : (i+1)*p.Cols]
		s := 0.0
		for j, xj := range x {
			s += row[j] * xj
		}
		out[i] += s
	}
}

// matVecT accumulates out += Wᵀ·dy.
func matVecT(p *Param, dy []float64, out []float64) {
	for i := 0; i < p.Rows; i++ {
		row := p.Data[i*p.Cols : (i+1)*p.Cols]
		g := dy[i]
		if g == 0 {
			continue
		}
		for j := range out {
			out[j] += row[j] * g
		}
	}
}

// outerAcc accumulates p.Grad += dy ⊗ x.
func outerAcc(p *Param, dy, x []float64) {
	for i := 0; i < p.Rows; i++ {
		g := dy[i]
		if g == 0 {
			continue
		}
		grow := p.Grad[i*p.Cols : (i+1)*p.Cols]
		for j, xj := range x {
			grow[j] += g * xj
		}
	}
}

// Forward advances the cell one step, returning the new hidden state and a
// cache for Backward.
func (g *GRU) Forward(x, h []float64) ([]float64, *GRUCache) {
	H := g.Hidden
	c := &GRUCache{
		x: append([]float64(nil), x...),
		h: append([]float64(nil), h...),
		z: make([]float64, H), r: make([]float64, H), n: make([]float64, H),
		unH: make([]float64, H), hNew: make([]float64, H),
	}
	zPre := make([]float64, H)
	rPre := make([]float64, H)
	nPre := make([]float64, H)
	copy(zPre, g.Bz.Data)
	copy(rPre, g.Br.Data)
	matVec(g.Wz, x, zPre)
	matVec(g.Uz, h, zPre)
	matVec(g.Wr, x, rPre)
	matVec(g.Ur, h, rPre)
	for i := 0; i < H; i++ {
		c.z[i] = sigmoid(zPre[i])
		c.r[i] = sigmoid(rPre[i])
	}
	copy(nPre, g.Bn.Data)
	matVec(g.Wn, x, nPre)
	matVec(g.Un, h, c.unH)
	for i := 0; i < H; i++ {
		nPre[i] += c.r[i] * c.unH[i]
		c.n[i] = math.Tanh(nPre[i])
		c.hNew[i] = (1-c.z[i])*c.n[i] + c.z[i]*h[i]
	}
	return c.hNew, c
}

// Backward consumes the cache and the gradient wrt the new hidden state,
// accumulates parameter gradients, and returns (dx, dhPrev).
func (g *GRU) Backward(c *GRUCache, dhNew []float64) (dx, dh []float64) {
	H := g.Hidden
	dx = make([]float64, g.In)
	dh = make([]float64, H)
	dz := make([]float64, H)
	dn := make([]float64, H)
	dnPre := make([]float64, H)
	drPre := make([]float64, H)
	dzPre := make([]float64, H)
	dUnH := make([]float64, H)
	for i := 0; i < H; i++ {
		dz[i] = dhNew[i] * (c.h[i] - c.n[i])
		dn[i] = dhNew[i] * (1 - c.z[i])
		dh[i] += dhNew[i] * c.z[i]
		dnPre[i] = dn[i] * (1 - c.n[i]*c.n[i])
		dr := dnPre[i] * c.unH[i]
		dUnH[i] = dnPre[i] * c.r[i]
		drPre[i] = dr * c.r[i] * (1 - c.r[i])
		dzPre[i] = dz[i] * c.z[i] * (1 - c.z[i])
	}
	// n-gate.
	outerAcc(g.Wn, dnPre, c.x)
	matVecT(g.Wn, dnPre, dx)
	for i := 0; i < H; i++ {
		g.Bn.Grad[i] += dnPre[i]
	}
	outerAcc(g.Un, dUnH, c.h)
	matVecT(g.Un, dUnH, dh)
	// r-gate.
	outerAcc(g.Wr, drPre, c.x)
	matVecT(g.Wr, drPre, dx)
	outerAcc(g.Ur, drPre, c.h)
	matVecT(g.Ur, drPre, dh)
	for i := 0; i < H; i++ {
		g.Br.Grad[i] += drPre[i]
	}
	// z-gate.
	outerAcc(g.Wz, dzPre, c.x)
	matVecT(g.Wz, dzPre, dx)
	outerAcc(g.Uz, dzPre, c.h)
	matVecT(g.Uz, dzPre, dh)
	for i := 0; i < H; i++ {
		g.Bz.Grad[i] += dzPre[i]
	}
	return dx, dh
}
