package nn

import (
	"math"
	"math/rand"
)

// Dense is a fully-connected layer y = Wx + b. Layers are stateless: the
// caller keeps the input around and passes it back to Backward, which makes
// reuse across BPTT timesteps trivial.
type Dense struct {
	W, B     *Param
	In, Outs int
}

// NewDense builds a Glorot-initialized dense layer.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	d := &Dense{W: NewParam(name+".W", out, in), B: NewParam(name+".b", 1, out), In: in, Outs: out}
	d.W.GlorotInit(rng)
	return d
}

// Params implements Module.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// Forward computes y = Wx + b.
func (d *Dense) Forward(x []float64) []float64 {
	y := make([]float64, d.Outs)
	for i := 0; i < d.Outs; i++ {
		row := d.W.Data[i*d.In : (i+1)*d.In]
		s := d.B.Data[i]
		for j, xj := range x {
			s += row[j] * xj
		}
		y[i] = s
	}
	return y
}

// Backward accumulates parameter gradients for input x and output gradient
// dy, and returns dx.
func (d *Dense) Backward(x, dy []float64) []float64 {
	dx := make([]float64, d.In)
	for i := 0; i < d.Outs; i++ {
		g := dy[i]
		if g == 0 {
			continue
		}
		row := d.W.Data[i*d.In : (i+1)*d.In]
		grow := d.W.Grad[i*d.In : (i+1)*d.In]
		d.B.Grad[i] += g
		for j, xj := range x {
			grow[j] += g * xj
			dx[j] += row[j] * g
		}
	}
	return dx
}

// LayerNorm normalizes its input to zero mean / unit variance and applies a
// learned affine transform.
type LayerNorm struct {
	G, B *Param
	N    int
	Eps  float64
}

// NewLayerNorm builds a LayerNorm over n features (gain 1, bias 0).
func NewLayerNorm(name string, n int) *LayerNorm {
	ln := &LayerNorm{G: NewParam(name+".g", 1, n), B: NewParam(name+".b", 1, n), N: n, Eps: 1e-5}
	ln.G.Fill(1)
	return ln
}

// Params implements Module.
func (ln *LayerNorm) Params() []*Param { return []*Param{ln.G, ln.B} }

// lnCache carries the normalization statistics Backward needs.
type lnCache struct {
	xhat []float64
	std  float64
}

// Forward normalizes x; the returned cache must be passed to Backward.
func (ln *LayerNorm) Forward(x []float64) ([]float64, *lnCache) {
	n := float64(ln.N)
	mu := 0.0
	for _, v := range x {
		mu += v
	}
	mu /= n
	varr := 0.0
	for _, v := range x {
		d := v - mu
		varr += d * d
	}
	varr /= n
	std := math.Sqrt(varr + ln.Eps)
	xhat := make([]float64, ln.N)
	y := make([]float64, ln.N)
	for i, v := range x {
		xhat[i] = (v - mu) / std
		y[i] = xhat[i]*ln.G.Data[i] + ln.B.Data[i]
	}
	return y, &lnCache{xhat: xhat, std: std}
}

// Backward accumulates gradients and returns dx.
func (ln *LayerNorm) Backward(c *lnCache, dy []float64) []float64 {
	n := float64(ln.N)
	dxhat := make([]float64, ln.N)
	sumDxhat := 0.0
	sumDxhatX := 0.0
	for i := range dy {
		ln.G.Grad[i] += dy[i] * c.xhat[i]
		ln.B.Grad[i] += dy[i]
		dxhat[i] = dy[i] * ln.G.Data[i]
		sumDxhat += dxhat[i]
		sumDxhatX += dxhat[i] * c.xhat[i]
	}
	dx := make([]float64, ln.N)
	for i := range dx {
		dx[i] = (dxhat[i] - sumDxhat/n - c.xhat[i]*sumDxhatX/n) / c.std
	}
	return dx
}

// LeakyReLU applies max(x, alpha·x) elementwise.
func LeakyReLU(x []float64, alpha float64) []float64 {
	y := make([]float64, len(x))
	for i, v := range x {
		if v >= 0 {
			y[i] = v
		} else {
			y[i] = alpha * v
		}
	}
	return y
}

// LeakyReLUBackward returns dx given the layer input and dy.
func LeakyReLUBackward(x, dy []float64, alpha float64) []float64 {
	dx := make([]float64, len(x))
	for i, v := range x {
		if v >= 0 {
			dx[i] = dy[i]
		} else {
			dx[i] = alpha * dy[i]
		}
	}
	return dx
}

// Tanh applies tanh elementwise.
func Tanh(x []float64) []float64 {
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Tanh(v)
	}
	return y
}

// TanhBackward returns dx given the layer *output* y and dy.
func TanhBackward(y, dy []float64) []float64 {
	dx := make([]float64, len(y))
	for i := range y {
		dx[i] = dy[i] * (1 - y[i]*y[i])
	}
	return dx
}

// Softmax returns the softmax of x (numerically stable).
func Softmax(x []float64) []float64 {
	m := x[0]
	for _, v := range x {
		if v > m {
			m = v
		}
	}
	s := 0.0
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Exp(v - m)
		s += y[i]
	}
	for i := range y {
		y[i] /= s
	}
	return y
}

// LogSumExp computes log Σ exp(x_i), numerically stable.
func LogSumExp(x []float64) float64 {
	m := x[0]
	for _, v := range x {
		if v > m {
			m = v
		}
	}
	s := 0.0
	for _, v := range x {
		s += math.Exp(v - m)
	}
	return m + math.Log(s)
}
