package nn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func randVec(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// Batched inference must match the sequential path within 1e-12 for every
// architecture variant (in practice the kernels are bitwise identical;
// the tolerance guards against future loop-order changes).
func TestPolicyBatchForwardMatchesSequential(t *testing.T) {
	cfgs := map[string]PolicyConfig{
		"full":      {InDim: 69, Enc: 32, Hidden: 24, ResBlocks: 2, K: 5, Seed: 1},
		"noGRU":     {InDim: 69, Enc: 32, Hidden: 24, ResBlocks: 2, K: 5, NoGRU: true, Seed: 2},
		"noEncoder": {InDim: 69, Enc: 32, Hidden: 24, ResBlocks: 2, K: 5, NoEncoder: true, Seed: 3},
		"k1":        {InDim: 12, Enc: 16, Hidden: 8, ResBlocks: 1, K: 1, Seed: 4},
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			p := NewPolicy(cfg)
			rng := rand.New(rand.NewSource(99))
			// Non-trivial normalizer so BatchApply is exercised.
			var fit [][]float64
			for i := 0; i < 32; i++ {
				fit = append(fit, randVec(rng, cfg.InDim))
			}
			p.Norm = FitNormalizer(fit)

			const B = 33
			hidDim := len(p.InitHidden())
			states := NewMat(B, cfg.InDim)
			hidden := NewMat(B, hidDim)
			seqH := make([][]float64, B)
			for r := 0; r < B; r++ {
				states.SetRow(r, randVec(rng, cfg.InDim))
				h := p.InitHidden()
				for i := range h {
					h[i] = rng.NormFloat64()
				}
				seqH[r] = h
				hidden.SetRow(r, h)
			}

			scratch := p.NewBatchScratch()
			heads, hNew := p.BatchForward(states, hidden, scratch)

			wbuf := make([]float64, p.GMM.K)
			for r := 0; r < B; r++ {
				head, h2, _ := p.Forward(states.Row(r), seqH[r])
				for i := range head {
					if d := math.Abs(head[i] - heads.Row(r)[i]); d > 1e-12 {
						t.Fatalf("row %d head[%d]: batched %v vs sequential %v (Δ=%g)",
							r, i, heads.Row(r)[i], head[i], d)
					}
				}
				if hidDim > 0 {
					for i := range h2 {
						if d := math.Abs(h2[i] - hNew.Row(r)[i]); d > 1e-12 {
							t.Fatalf("row %d hidden[%d]: Δ=%g", r, i, d)
						}
					}
				}
				if mu, ms := p.GMM.Mean(head), p.GMM.MeanInto(heads.Row(r), wbuf); math.Abs(mu-ms) > 1e-12 {
					t.Fatalf("row %d mean: batched %v vs sequential %v", r, ms, mu)
				}
			}
		})
	}
}

// Multi-step: hidden state threaded through BatchForward calls must track
// the sequential recurrence exactly.
func TestPolicyBatchForwardRecurrent(t *testing.T) {
	cfg := PolicyConfig{InDim: 20, Enc: 16, Hidden: 12, ResBlocks: 2, K: 3, Seed: 11}
	p := NewPolicy(cfg)
	rng := rand.New(rand.NewSource(5))

	const B, steps = 7, 9
	hid := NewMat(B, cfg.Hidden)
	seqH := make([][]float64, B)
	for r := range seqH {
		seqH[r] = p.InitHidden()
	}
	scratch := p.NewBatchScratch()
	states := NewMat(B, cfg.InDim)
	for s := 0; s < steps; s++ {
		for r := 0; r < B; r++ {
			states.SetRow(r, randVec(rng, cfg.InDim))
		}
		heads, hNew := p.BatchForward(states, hid, scratch)
		for r := 0; r < B; r++ {
			head, h2, _ := p.Forward(states.Row(r), seqH[r])
			seqH[r] = h2
			for i := range head {
				if math.Abs(head[i]-heads.Row(r)[i]) > 1e-12 {
					t.Fatalf("step %d row %d head[%d] diverged", s, r, i)
				}
			}
		}
		// hNew aliases scratch: copy it back into the persistent mat the
		// way the serving engine does.
		hid.Reset(B, cfg.Hidden)
		copy(hid.Data, hNew.Data)
	}
}

// After warm-up a batched forward must not allocate: the engine reuses
// one scratch per worker across every batch it serves.
func TestPolicyBatchForwardNoAllocs(t *testing.T) {
	cfg := PolicyConfig{InDim: 30, Enc: 16, Hidden: 12, ResBlocks: 2, K: 3, Seed: 21}
	p := NewPolicy(cfg)
	rng := rand.New(rand.NewSource(6))
	const B = 16
	states := NewMat(B, cfg.InDim)
	hidden := NewMat(B, cfg.Hidden)
	for r := 0; r < B; r++ {
		states.SetRow(r, randVec(rng, cfg.InDim))
	}
	scratch := p.NewBatchScratch()
	hPersist := NewMat(B, cfg.Hidden)
	step := func() {
		heads, hNew := p.BatchForward(states, hidden, scratch)
		copy(hPersist.Data, hNew.Data)
		_ = heads
	}
	step() // warm the scratch buffers
	if allocs := testing.AllocsPerRun(50, step); allocs > 0 {
		t.Fatalf("BatchForward allocates %.1f objects/op after warm-up, want 0", allocs)
	}
}

func TestMatReset(t *testing.T) {
	m := NewMat(4, 8)
	data := &m.Data[0]
	m.Reset(2, 8)
	if &m.Data[0] != data {
		t.Fatal("shrinking Reset reallocated")
	}
	m.Reset(16, 8)
	if m.Rows != 16 || m.Cols != 8 || len(m.Data) != 128 {
		t.Fatalf("grow: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
}

func benchBatchPolicy() *Policy {
	return NewPolicy(PolicyConfig{InDim: 69, Enc: 64, Hidden: 32, ResBlocks: 2, K: 5, Seed: 1})
}

// BenchmarkPolicyBatchForward measures one batched decision round at
// various fleet sizes; compare per-flow cost against
// BenchmarkPolicySequentialForward at the same size.
func BenchmarkPolicyBatchForward(b *testing.B) {
	for _, B := range []int{10, 100, 1000} {
		B := B
		b.Run(fmt.Sprintf("flows=%d", B), func(b *testing.B) {
			p := benchBatchPolicy()
			rng := rand.New(rand.NewSource(2))
			states := NewMat(B, 69)
			hidden := NewMat(B, 32)
			for r := 0; r < B; r++ {
				states.SetRow(r, randVec(rng, 69))
			}
			scratch := p.NewBatchScratch()
			wbuf := make([]float64, p.GMM.K)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				heads, hNew := p.BatchForward(states, hidden, scratch)
				copy(hidden.Data, hNew.Data)
				for r := 0; r < B; r++ {
					_ = p.GMM.MeanInto(heads.Row(r), wbuf)
				}
			}
		})
	}
}

// BenchmarkPolicySequentialForward is the per-flow baseline the batched
// path is judged against: N independent Forward calls per round, as the
// per-flow controllers do today.
func BenchmarkPolicySequentialForward(b *testing.B) {
	for _, B := range []int{10, 100, 1000} {
		B := B
		b.Run(fmt.Sprintf("flows=%d", B), func(b *testing.B) {
			p := benchBatchPolicy()
			rng := rand.New(rand.NewSource(2))
			states := make([][]float64, B)
			hidden := make([][]float64, B)
			for r := 0; r < B; r++ {
				states[r] = randVec(rng, 69)
				hidden[r] = p.InitHidden()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < B; r++ {
					head, h, _ := p.Forward(states[r], hidden[r])
					hidden[r] = h
					_ = p.GMM.Mean(head)
				}
			}
		})
	}
}
