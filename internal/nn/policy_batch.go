package nn

// PolicyBatchScratch owns every intermediate buffer one batched forward
// pass needs. Allocate one per concurrent worker with NewBatchScratch and
// reuse it across calls: after warm-up a BatchForward performs zero heap
// allocations regardless of batch size.
type PolicyBatchScratch struct {
	xn, e1, e2  Mat
	hNew, ln    Mat
	e3, fc      Mat
	resLn, resD Mat
	head        Mat
	gru         GRUScratch
	gemm        gemmScratch
}

// NewBatchScratch returns an empty scratch set for p (buffers grow lazily
// to the batch sizes actually seen).
func (p *Policy) NewBatchScratch() *PolicyBatchScratch { return &PolicyBatchScratch{} }

// BatchForward runs one timestep for a whole batch of flows: row r of
// states is flow r's (masked, un-normalized) state vector and row r of
// hidden its recurrent state. It returns the GMM head outputs and the new
// hidden states as views into s — valid only until the next call with the
// same scratch; callers must copy out anything they keep.
//
// Per row the computation is operation-for-operation identical to
// Forward, so batched and sequential inference produce bitwise-equal
// decisions (see TestPolicyBatchForwardMatchesSequential).
func (p *Policy) BatchForward(states, hidden *Mat, s *PolicyBatchScratch) (heads, hNew *Mat) {
	p.Norm.BatchApply(states, &s.xn)
	p.enc1.batchForward(&s.xn, &s.e1, &s.gemm)
	leakyReLUInPlace(s.e1.Data, lreluAlpha)
	p.enc2.batchForward(&s.e1, &s.e2, &s.gemm)
	leakyReLUInPlace(s.e2.Data, lreluAlpha)

	trunk := &s.e2
	hNew = hidden
	if p.gru != nil {
		p.gru.BatchForward(&s.e2, hidden, &s.hNew, &s.gru)
		hNew = &s.hNew
		p.ln.BatchForward(&s.hNew, &s.ln)
		leakyReLUInPlace(s.ln.Data, lreluAlpha)
		trunk = &s.ln
	}
	if p.enc3 != nil {
		p.enc3.batchForward(trunk, &s.e3, &s.gemm)
		tanhInPlace(s.e3.Data)
		trunk = &s.e3
	}
	p.fc.batchForward(trunk, &s.fc, &s.gemm)
	leakyReLUInPlace(s.fc.Data, lreluAlpha)
	cur := &s.fc
	for i := range p.res {
		p.res[i].ln.BatchForward(cur, &s.resLn)
		leakyReLUInPlace(s.resLn.Data, lreluAlpha)
		p.res[i].fc.batchForward(&s.resLn, &s.resD, &s.gemm)
		for j, d := range s.resD.Data {
			cur.Data[j] += d
		}
	}
	p.head.batchForward(cur, &s.head, &s.gemm)
	return &s.head, hNew
}
