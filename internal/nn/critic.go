package nn

import (
	"math"
	"math/rand"
)

// CriticConfig sizes the distributional Q network. The paper stabilizes
// learning with "a distributional version of the Q update" (Bellemare et
// al.); this is a C51-style categorical critic over (state, action).
type CriticConfig struct {
	InDim  int // state dimension (the action adds one more input)
	Hidden int
	Atoms  int     // categorical support size (51 at paper scale)
	VMin   float64 // value-support lower bound
	VMax   float64 // value-support upper bound
	Seed   int64
}

// Fill applies defaults.
func (c CriticConfig) Fill() CriticConfig {
	if c.Hidden == 0 {
		c.Hidden = 64
	}
	if c.Atoms == 0 {
		c.Atoms = 21
	}
	if c.VMax == 0 {
		c.VMax = 50
	}
	return c
}

// Critic is a feed-forward categorical critic: (s, a) → distribution over
// value atoms. A feed-forward critic over the GR state (which already spans
// three timescales of history) is the documented simplification of Acme's
// recurrent critic.
type Critic struct {
	Cfg  CriticConfig
	Norm *Normalizer
	Z    []float64 // atom support

	l1, l2, l3 *Dense
}

// NewCritic builds a freshly initialized critic.
func NewCritic(cfg CriticConfig) *Critic {
	cfg = cfg.Fill()
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	c := &Critic{Cfg: cfg, Norm: &Normalizer{}}
	c.l1 = NewDense("q1", cfg.InDim+1, cfg.Hidden, rng)
	c.l2 = NewDense("q2", cfg.Hidden, cfg.Hidden, rng)
	c.l3 = NewDense("q3", cfg.Hidden, cfg.Atoms, rng)
	c.Z = make([]float64, cfg.Atoms)
	for i := range c.Z {
		c.Z[i] = cfg.VMin + (cfg.VMax-cfg.VMin)*float64(i)/float64(cfg.Atoms-1)
	}
	return c
}

// Params implements Module.
func (c *Critic) Params() []*Param {
	var out []*Param
	out = append(out, c.l1.Params()...)
	out = append(out, c.l2.Params()...)
	out = append(out, c.l3.Params()...)
	return out
}

// CriticCache holds a forward pass's intermediates.
type CriticCache struct {
	in        []float64
	h1pre, h1 []float64
	h2pre, h2 []float64
	logits    []float64
	probs     []float64
}

// Dist returns the categorical value distribution for (state, action).
func (c *Critic) Dist(state []float64, action float64) ([]float64, *CriticCache) {
	cache := &CriticCache{}
	xn := c.Norm.Apply(state)
	cache.in = append(xn, action)
	cache.h1pre = c.l1.Forward(cache.in)
	cache.h1 = LeakyReLU(cache.h1pre, lreluAlpha)
	cache.h2pre = c.l2.Forward(cache.h1)
	cache.h2 = LeakyReLU(cache.h2pre, lreluAlpha)
	cache.logits = c.l3.Forward(cache.h2)
	cache.probs = Softmax(cache.logits)
	return cache.probs, cache
}

// Q returns the expected value E[Z] for (state, action).
func (c *Critic) Q(state []float64, action float64) float64 {
	probs, _ := c.Dist(state, action)
	q := 0.0
	for i, p := range probs {
		q += p * c.Z[i]
	}
	return q
}

// BackwardCE accumulates gradients of the categorical cross-entropy
// −Σ mᵢ log pᵢ scaled by weight, given the forward cache and the target
// distribution m.
func (c *Critic) BackwardCE(cache *CriticCache, target []float64, weight float64) {
	dLogits := make([]float64, len(cache.logits))
	for i := range dLogits {
		dLogits[i] = (cache.probs[i] - target[i]) * weight
	}
	dh2 := c.l3.Backward(cache.h2, dLogits)
	dh2pre := LeakyReLUBackward(cache.h2pre, dh2, lreluAlpha)
	dh1 := c.l2.Backward(cache.h1, dh2pre)
	dh1pre := LeakyReLUBackward(cache.h1pre, dh1, lreluAlpha)
	c.l1.Backward(cache.in, dh1pre)
}

// CELoss returns −Σ mᵢ log pᵢ for reporting.
func CELoss(probs, target []float64) float64 {
	l := 0.0
	for i, m := range target {
		if m > 0 {
			p := probs[i]
			if p < 1e-12 {
				p = 1e-12
			}
			l -= m * math.Log(p)
		}
	}
	return l
}

// Project performs the Bellemare categorical projection of the target
// distribution r + γ·Z (with next-state distribution nextProbs) onto the
// critic's support.
func (c *Critic) Project(r, gamma float64, nextProbs []float64) []float64 {
	n := c.Cfg.Atoms
	m := make([]float64, n)
	dz := (c.Cfg.VMax - c.Cfg.VMin) / float64(n-1)
	for j := 0; j < n; j++ {
		tz := r + gamma*c.Z[j]
		if tz < c.Cfg.VMin {
			tz = c.Cfg.VMin
		}
		if tz > c.Cfg.VMax {
			tz = c.Cfg.VMax
		}
		b := (tz - c.Cfg.VMin) / dz
		if math.IsNaN(b) {
			// A non-finite reward or next-distribution must not turn into a
			// wild slice index. Fold the NaN into the target distribution so
			// the loss goes non-finite and the training sentinel can trip.
			m[0] += b
			continue
		}
		l := int(math.Floor(b))
		u := int(math.Ceil(b))
		if l < 0 {
			l = 0
		}
		if u > n-1 {
			u = n - 1
		}
		if l == u {
			m[l] += nextProbs[j]
		} else {
			m[l] += nextProbs[j] * (float64(u) - b)
			m[u] += nextProbs[j] * (b - float64(l))
		}
	}
	return m
}
