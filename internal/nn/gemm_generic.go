//go:build !amd64

package nn

// Non-amd64 builds use the blocked scalar kernels only.
const useAVX2 = false

func dotTile16(w *float64, xt *float64, n int, acc *[16]float64) {
	panic("nn: dotTile16 without AVX2")
}
