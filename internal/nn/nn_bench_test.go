package nn

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks for the hot paths of training and inference. Real-time
// deployment needs one policy forward per 20 ms action interval; training
// throughput is bounded by GRU BPTT.

func BenchmarkDenseForward256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense("d", 256, 256, rng)
	x := make([]float64, 256)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Forward(x)
	}
}

func BenchmarkGRUStep(b *testing.B) {
	for _, h := range []int{32, 128} {
		h := h
		b.Run(benchName("hidden", h), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			g := NewGRU("g", 64, h, rng)
			x := make([]float64, 64)
			hid := make([]float64, h)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hid2, _ := g.Forward(x, hid)
				_ = hid2
			}
		})
	}
}

func BenchmarkPolicyInference(b *testing.B) {
	// The deployment-relevant number: one state → one action.
	p := NewPolicy(PolicyConfig{InDim: 69, Enc: 32, Hidden: 16, ResBlocks: 2, K: 3, Seed: 1})
	state := make([]float64, 69)
	rng := rand.New(rand.NewSource(2))
	for i := range state {
		state[i] = rng.NormFloat64()
	}
	h := p.InitHidden()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		head, hn, _ := p.Forward(state, h)
		h = hn
		_ = p.GMM.Mean(head)
	}
}

func BenchmarkPolicyBPTTStep(b *testing.B) {
	// One training sample: forward+backward over an 8-step segment.
	p := NewPolicy(PolicyConfig{InDim: 69, Enc: 32, Hidden: 16, ResBlocks: 2, K: 3, Seed: 1})
	rng := rand.New(rand.NewSource(3))
	states := make([][]float64, 8)
	for i := range states {
		states[i] = make([]float64, 69)
		for j := range states[i] {
			states[i][j] = rng.NormFloat64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := p.InitHidden()
		heads := make([][]float64, 8)
		caches := make([]*PolicyCache, 8)
		for t := 0; t < 8; t++ {
			heads[t], h, caches[t] = p.Forward(states[t], h)
		}
		var dh []float64
		for t := 7; t >= 0; t-- {
			_, dp := p.GMM.LogProbGrad(heads[t], 0.1)
			dh = p.Backward(caches[t], dp, dh)
		}
		ZeroGrads(p)
	}
}

func BenchmarkNAFCriticQ(b *testing.B) {
	c := NewNAFCritic(NAFConfig{InDim: 69, Hidden: 48, Seed: 1})
	state := make([]float64, 69)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Q(state, 0.3)
	}
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
