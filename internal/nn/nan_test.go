package nn

import (
	"math"
	"math/rand"
	"testing"
)

// degenerateHeads enumerates broken GMM head vectors: all-NaN, all-Inf,
// and single poisoned entries in each of the three parameter groups.
func degenerateHeads(g GMM) [][]float64 {
	dim := g.HeadDim()
	mk := func(fill float64) []float64 {
		h := make([]float64, dim)
		for i := range h {
			h[i] = fill
		}
		return h
	}
	var heads [][]float64
	heads = append(heads, mk(math.NaN()), mk(math.Inf(1)), mk(math.Inf(-1)))
	for i := 0; i < 3; i++ { // one poisoned logit, mean, logstd
		h := mk(0)
		h[i*g.K] = math.NaN()
		heads = append(heads, h)
		h2 := mk(0)
		h2[i*g.K] = math.Inf(1)
		heads = append(heads, h2)
	}
	return heads
}

// TestGMMDegenerateHeadsDoNotPanic pins the failure contract the runtime
// guardian relies on: a poisoned head must surface as a (possibly
// non-finite) number, never as a panic inside the sampler.
func TestGMMDegenerateHeadsDoNotPanic(t *testing.T) {
	g := GMM{K: 3}
	rng := rand.New(rand.NewSource(1))
	for i, h := range degenerateHeads(g) {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("head %d: panic %v", i, r)
				}
			}()
			_ = g.Sample(h, rng)
			_ = g.Mean(h)
			_ = g.Mode(h)
			_ = g.LogProb(h, 0.25)
		}()
	}
}

// TestPolicyForwardNaNStateDoesNotPanic feeds a NaN observation through
// the full Fig. 6 network.
func TestPolicyForwardNaNStateDoesNotPanic(t *testing.T) {
	p := NewPolicy(PolicyConfig{InDim: 6, Enc: 8, Hidden: 4, K: 2, Seed: 1})
	state := []float64{1, math.NaN(), 0, math.Inf(1), -1, 0}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic: %v", r)
		}
	}()
	head, hid, _ := p.Forward(state, p.InitHidden())
	_ = p.GMM.Sample(head, rand.New(rand.NewSource(2)))
	_, _, _ = p.Forward(state, hid) // recurrent state poisoned too
}
