package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestNAFGradients(t *testing.T) {
	c := NewNAFCritic(NAFConfig{InDim: 4, Hidden: 8, Seed: 3})
	state := []float64{1, -0.5, 2, 0.3}
	a, y := 0.4, 1.7
	loss := func() float64 {
		q := c.Q(state, a)
		return 0.5 * (q - y) * (q - y)
	}
	checkModuleGrads(t, c, loss, func() {
		c.TDBackward(state, a, y, 1)
	}, 1e-3)
}

func TestNAFQuadraticShape(t *testing.T) {
	c := NewNAFCritic(NAFConfig{InDim: 2, Hidden: 8, Seed: 5})
	s := []float64{0.5, -1}
	m, v := c.Greedy(s)
	if m < -1 || m > 1 {
		t.Fatalf("maximizer %v outside tanh range", m)
	}
	// Q is maximized at m and concave.
	qm := c.Q(s, m)
	if qm > v+1e-9 {
		t.Fatalf("Q(m)=%v exceeds V=%v", qm, v)
	}
	for _, d := range []float64{0.2, 0.5, 1} {
		if c.Q(s, m+d) > qm+1e-12 || c.Q(s, m-d) > qm+1e-12 {
			t.Fatalf("Q not maximized at m")
		}
		if c.Q(s, m+d) < c.Q(s, m+d/2)-1e-12 == false && c.Q(s, m+d) > c.Q(s, m+d/2) {
			t.Fatalf("Q not concave away from m")
		}
	}
}

func TestNAFLearnsQuadratic(t *testing.T) {
	// Fit Q(s,a) with true optimum depending on the state's sign:
	// y = 4 − (a − 0.5·s₀)² (kept positive so the [0, VMax] target clamp
	// stays inactive).
	c := NewNAFCritic(NAFConfig{InDim: 1, Hidden: 16, Seed: 7})
	opt := NewAdam(0.01)
	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 3000; step++ {
		s0 := float64(rng.Intn(2)*2 - 1) // ±1
		a := rng.Float64()*2 - 1
		y := 4 - (a-0.5*s0)*(a-0.5*s0)
		c.TDBackward([]float64{s0}, a, y, 1)
		if step%8 == 7 {
			opt.Step(c)
		}
	}
	mPos, _ := c.Greedy([]float64{1})
	mNeg, _ := c.Greedy([]float64{-1})
	if math.Abs(mPos-0.5) > 0.15 || math.Abs(mNeg+0.5) > 0.15 {
		t.Fatalf("learned maximizers %v, %v; want ±0.5", mPos, mNeg)
	}
	if q := c.Q([]float64{1}, 0.5); math.Abs(q-4) > 0.3 {
		t.Fatalf("Q at optimum %v, want ~4", q)
	}
}

func TestCloneNAF(t *testing.T) {
	c := NewNAFCritic(NAFConfig{InDim: 2, Hidden: 4, Seed: 1})
	q := CloneNAF(c)
	s := []float64{1, 2}
	if c.Q(s, 0.3) != q.Q(s, 0.3) {
		t.Fatal("clone diverges")
	}
}
