package nn

import (
	"math"
	"math/rand"
)

// GMM is a Gaussian-mixture head over a scalar action: the last layer of
// Sage's policy network. A head output vector of length 3K is interpreted as
// K mixture logits, K means, K log-standard-deviations. The mixture lets the
// policy stay multi-modal instead of collapsing onto a single heuristic's
// behaviour (Section 4.2).
type GMM struct {
	K int
}

const (
	gmmLogStdMin = -5
	gmmLogStdMax = 2
	log2Pi       = 1.8378770664093453 // ln(2π)
)

// HeadDim returns the required head output width.
func (g GMM) HeadDim() int { return 3 * g.K }

func (g GMM) split(p []float64) (logits, means, logstds []float64) {
	return p[:g.K], p[g.K : 2*g.K], p[2*g.K : 3*g.K]
}

func clampLogStd(s float64) float64 {
	if s < gmmLogStdMin {
		return gmmLogStdMin
	}
	if s > gmmLogStdMax {
		return gmmLogStdMax
	}
	return s
}

// LogProb returns log π(a) under the mixture described by head output p.
func (g GMM) LogProb(p []float64, a float64) float64 {
	logits, means, logstds := g.split(p)
	logPi := make([]float64, g.K)
	lse := LogSumExp(logits)
	for k := 0; k < g.K; k++ {
		s := clampLogStd(logstds[k])
		z := (a - means[k]) / math.Exp(s)
		logN := -0.5*z*z - s - 0.5*log2Pi
		logPi[k] = logits[k] - lse + logN
	}
	return LogSumExp(logPi)
}

// LogProbGrad returns log π(a) and d logπ/dp (length 3K).
func (g GMM) LogProbGrad(p []float64, a float64) (float64, []float64) {
	logits, means, logstds := g.split(p)
	w := Softmax(logits)
	logJoint := make([]float64, g.K)
	sigma := make([]float64, g.K)
	inRange := make([]bool, g.K)
	lse := LogSumExp(logits)
	for k := 0; k < g.K; k++ {
		s := clampLogStd(logstds[k])
		inRange[k] = logstds[k] > gmmLogStdMin && logstds[k] < gmmLogStdMax
		sigma[k] = math.Exp(s)
		z := (a - means[k]) / sigma[k]
		logJoint[k] = (logits[k] - lse) + (-0.5*z*z - s - 0.5*log2Pi)
	}
	logp := LogSumExp(logJoint)
	dp := make([]float64, 3*g.K)
	for k := 0; k < g.K; k++ {
		gamma := math.Exp(logJoint[k] - logp) // responsibility
		// d/dlogits: γ_k − w_k (softmax prior gradient).
		dp[k] = gamma - w[k]
		z := (a - means[k]) / sigma[k]
		dp[g.K+k] = gamma * z / sigma[k] // d/dmean
		if inRange[k] {
			dp[2*g.K+k] = gamma * (z*z - 1) // d/dlogstd
		}
	}
	return logp, dp
}

// Sample draws an action from the mixture.
func (g GMM) Sample(p []float64, rng *rand.Rand) float64 {
	logits, means, logstds := g.split(p)
	w := Softmax(logits)
	u := rng.Float64()
	k := g.K - 1
	acc := 0.0
	for i, wi := range w {
		acc += wi
		if u <= acc {
			k = i
			break
		}
	}
	return means[k] + math.Exp(clampLogStd(logstds[k]))*rng.NormFloat64()
}

// Mean returns the mixture mean (the deterministic action used at
// deployment).
func (g GMM) Mean(p []float64) float64 {
	return g.MeanInto(p, make([]float64, g.K))
}

// MeanInto is Mean with a caller-supplied softmax scratch buffer (len ≥ K)
// so batched serving can take the mixture mean without allocating. The
// arithmetic is identical to Mean's, operation for operation.
func (g GMM) MeanInto(p, w []float64) float64 {
	logits, means, _ := g.split(p)
	w = w[:g.K]
	mx := logits[0]
	for _, v := range logits {
		if v > mx {
			mx = v
		}
	}
	s := 0.0
	for i, v := range logits {
		w[i] = math.Exp(v - mx)
		s += w[i]
	}
	for i := range w {
		w[i] /= s
	}
	m := 0.0
	for k := 0; k < g.K; k++ {
		m += w[k] * means[k]
	}
	return m
}

// Mode returns the mean of the highest-weight component — sharper than the
// mixture mean when components disagree.
func (g GMM) Mode(p []float64) float64 {
	logits, means, _ := g.split(p)
	best := 0
	for k := 1; k < g.K; k++ {
		if logits[k] > logits[best] {
			best = k
		}
	}
	return means[best]
}
