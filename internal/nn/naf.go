package nn

import (
	"math"
	"math/rand"
)

// NAFCritic is a Normalized-Advantage-Function critic (Gu et al. 2016) over
// a scalar action:
//
//	Q(s, a) = V(s) − p(s)·(a − m(s))²,  p(s) = softplus(·) ≥ 0
//
// The quadratic form matters here beyond convenience: congestion-control
// returns are confounded — in the pool, large positive window moves happen
// while flows are still ramping (low reward) and large cuts happen at
// saturation (high reward), so an unconstrained critic learns a spurious
// global negative slope in the action. NAF has no linear-in-a shortcut: the
// action enters only relative to the state-dependent maximizer m(s), which
// is also the right inductive bias (too small a window starves, too large
// bloats/loses).
type NAFCritic struct {
	Cfg  NAFConfig
	Norm *Normalizer

	l1, l2 *Dense
	headV  *Dense // V(s)
	headM  *Dense // pre-tanh maximizer
	headP  *Dense // pre-softplus curvature
}

// NAFConfig sizes the critic.
type NAFConfig struct {
	InDim  int
	Hidden int
	// VMax bounds value estimates (targets are clamped to [0, VMax]) —
	// rewards live in [0,1], so VMax ≈ 1/(1−γ) plays the role C51's
	// bounded support plays for stability. Default 100.
	VMax float64
	// PMin floors the curvature p(s) so the quadratic never flattens into
	// an unidentifiable m(s). Default 0.05.
	PMin float64
	Seed int64
}

// Fill applies defaults.
func (c NAFConfig) Fill() NAFConfig {
	if c.Hidden == 0 {
		c.Hidden = 64
	}
	if c.VMax == 0 {
		c.VMax = 100
	}
	if c.PMin == 0 {
		c.PMin = 0.05
	}
	return c
}

// NewNAFCritic builds a freshly initialized critic.
func NewNAFCritic(cfg NAFConfig) *NAFCritic {
	cfg = cfg.Fill()
	rng := rand.New(rand.NewSource(cfg.Seed + 29))
	c := &NAFCritic{Cfg: cfg, Norm: &Normalizer{}}
	c.l1 = NewDense("naf1", cfg.InDim, cfg.Hidden, rng)
	c.l2 = NewDense("naf2", cfg.Hidden, cfg.Hidden, rng)
	c.headV = NewDense("nafV", cfg.Hidden, 1, rng)
	c.headM = NewDense("nafM", cfg.Hidden, 1, rng)
	c.headP = NewDense("nafP", cfg.Hidden, 1, rng)
	return c
}

// Params implements Module.
func (c *NAFCritic) Params() []*Param {
	var out []*Param
	for _, m := range []*Dense{c.l1, c.l2, c.headV, c.headM, c.headP} {
		out = append(out, m.Params()...)
	}
	return out
}

// NAFCache holds forward intermediates.
type NAFCache struct {
	xn         []float64
	h1pre, h1  []float64
	h2pre, h2  []float64
	v, mPre, m float64
	pPre, p    float64
	a, q       float64
}

func softplus(x float64) float64 {
	if x > 30 {
		return x
	}
	return math.Log1p(math.Exp(x))
}

// forward evaluates Q(s, a) with a cache.
func (c *NAFCritic) forward(state []float64, a float64) *NAFCache {
	ca := &NAFCache{a: a}
	ca.xn = c.Norm.Apply(state)
	ca.h1pre = c.l1.Forward(ca.xn)
	ca.h1 = LeakyReLU(ca.h1pre, lreluAlpha)
	ca.h2pre = c.l2.Forward(ca.h1)
	ca.h2 = LeakyReLU(ca.h2pre, lreluAlpha)
	ca.v = c.headV.Forward(ca.h2)[0]
	ca.mPre = c.headM.Forward(ca.h2)[0]
	ca.m = math.Tanh(ca.mPre)
	ca.pPre = c.headP.Forward(ca.h2)[0]
	ca.p = softplus(ca.pPre) + c.Cfg.PMin
	d := a - ca.m
	ca.q = ca.v - ca.p*d*d
	return ca
}

// Q returns the action value.
func (c *NAFCritic) Q(state []float64, a float64) float64 { return c.forward(state, a).q }

// Greedy returns the critic's maximizing action m(s) and the value V(s).
func (c *NAFCritic) Greedy(state []float64) (m, v float64) {
	ca := c.forward(state, 0)
	return ca.m, ca.v
}

func sigmoidOf(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// TDBackward accumulates gradients of weight·½(Q(s,a) − y)² and returns the
// unweighted squared error. The target y is clamped to [0, VMax].
func (c *NAFCritic) TDBackward(state []float64, a, y, weight float64) float64 {
	if y < 0 {
		y = 0
	}
	if y > c.Cfg.VMax {
		y = c.Cfg.VMax
	}
	ca := c.forward(state, a)
	err := ca.q - y
	dq := err * weight
	d := a - ca.m
	// Q = v − p·d²
	dv := dq
	dp := -dq * d * d
	dm := dq * 2 * ca.p * d
	// Head pre-activations.
	dmPre := dm * (1 - ca.m*ca.m)
	var dpPre float64
	if ca.pPre > 30 {
		dpPre = dp
	} else {
		dpPre = dp * sigmoidOf(ca.pPre) // d softplus/dx = σ(x)
	}
	dh2 := c.headV.Backward(ca.h2, []float64{dv})
	dh2m := c.headM.Backward(ca.h2, []float64{dmPre})
	dh2p := c.headP.Backward(ca.h2, []float64{dpPre})
	for i := range dh2 {
		dh2[i] += dh2m[i] + dh2p[i]
	}
	dh2pre := LeakyReLUBackward(ca.h2pre, dh2, lreluAlpha)
	dh1 := c.l2.Backward(ca.h1, dh2pre)
	dh1pre := LeakyReLUBackward(ca.h1pre, dh1, lreluAlpha)
	c.l1.Backward(ca.xn, dh1pre)
	return err * err
}

// CloneNAF returns a deep copy (target network).
func CloneNAF(c *NAFCritic) *NAFCritic {
	q := NewNAFCritic(c.Cfg)
	q.Norm = c.Norm
	CopyParams(q, c)
	return q
}
