package nn

import "math"

// Batched inference kernels. A Mat is a row-major batch: row r is one
// flow's vector. Every Batch* kernel performs, per row, exactly the same
// floating-point operations in exactly the same order as its sequential
// counterpart, so a batched forward pass is bitwise identical to N
// sequential ones — the serving engine can multiplex thousands of flows
// onto one matrix pass without changing a single decision.
//
// The speedup comes from two places. First, matrix–matrix blocking:
// the GEMM kernels process four batch rows per weight-row pass, which
// loads each weight row once for four flows and — more importantly —
// runs four independent accumulation chains, hiding the FP-add latency
// that serializes a single dot product. Each row's own summation order
// is untouched, so equivalence survives. Second, amortization: no
// per-step cache construction and no per-call allocations; scratch
// buffers stay hot across the whole batch.

// Mat is a dense row-major matrix backed by a single flat slice.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat allocates a rows×cols matrix.
func NewMat(rows, cols int) *Mat {
	m := &Mat{}
	m.Reset(rows, cols)
	return m
}

// Reset resizes the matrix in place, reusing the backing array when it is
// large enough (contents are unspecified afterwards). Returns m.
func (m *Mat) Reset(rows, cols int) *Mat {
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Data = m.Data[:n]
	m.Rows, m.Cols = rows, cols
	return m
}

// Row returns row r as a slice view.
func (m *Mat) Row(r int) []float64 {
	return m.Data[r*m.Cols : (r+1)*m.Cols]
}

// SetRow copies x into row r.
func (m *Mat) SetRow(r int, x []float64) { copy(m.Row(r), x) }

// fillRows copies v into every row of m.
func (m *Mat) fillRows(v []float64) {
	for r := 0; r < m.Rows; r++ {
		copy(m.Row(r), v)
	}
}

// tileRows is the SIMD tile height: 16 batch rows = 4 YMM accumulators.
const tileRows = 16

// gemmScratch holds the transposed input tile the AVX2 kernels consume;
// one per concurrent worker (embedded in GRUScratch / PolicyBatchScratch).
type gemmScratch struct {
	xt []float64
}

func (s *gemmScratch) tile(cols int) []float64 {
	n := tileRows * cols
	if cap(s.xt) < n {
		s.xt = make([]float64, n)
	}
	return s.xt[:n]
}

// transposeTile packs rows [r, r+tileRows) of x into xt with layout
// xt[j*tileRows+l] = x[r+l][j], so one unaligned vector load fetches
// element j of four consecutive batch rows.
func transposeTile(x *Mat, r, cols int, xt []float64) {
	for l := 0; l < tileRows; l++ {
		xr := x.Row(r + l)[:cols]
		for j, v := range xr {
			xt[j*tileRows+l] = v
		}
	}
}

// matMulBias computes out[r][i] = bias[i] + Σ_j W[i][j]·x[r][j], the
// accumulator seeded with the bias exactly as Dense.Forward seeds it.
// On amd64 with AVX2, 16-row tiles run through dotTile16; remaining rows
// take the blocked scalar path (eight rows per weight pass).
func matMulBias(p *Param, bias []float64, x, out *Mat, sc *gemmScratch) {
	cols := p.Cols
	r := 0
	if useAVX2 && cols > 0 {
		xt := sc.tile(cols)
		for ; r+tileRows <= x.Rows; r += tileRows {
			transposeTile(x, r, cols, xt)
			for i := 0; i < p.Rows; i++ {
				w := p.Data[i*cols : (i+1)*cols]
				var acc [tileRows]float64
				b := bias[i]
				for l := range acc {
					acc[l] = b
				}
				dotTile16(&w[0], &xt[0], cols, &acc)
				for l := 0; l < tileRows; l++ {
					out.Data[(r+l)*out.Cols+i] = acc[l]
				}
			}
		}
	}
	for ; r+8 <= x.Rows; r += 8 {
		// Reslicing to cols lets the compiler drop the bounds checks in
		// the inner loop (len(w) == len(xN) == cols is then provable).
		x0, x1, x2, x3 := x.Row(r)[:cols], x.Row(r + 1)[:cols], x.Row(r + 2)[:cols], x.Row(r + 3)[:cols]
		x4, x5, x6, x7 := x.Row(r + 4)[:cols], x.Row(r + 5)[:cols], x.Row(r + 6)[:cols], x.Row(r + 7)[:cols]
		o0, o1, o2, o3 := out.Row(r), out.Row(r+1), out.Row(r+2), out.Row(r+3)
		o4, o5, o6, o7 := out.Row(r+4), out.Row(r+5), out.Row(r+6), out.Row(r+7)
		for i := 0; i < p.Rows; i++ {
			w := p.Data[i*cols : (i+1)*cols : (i+1)*cols]
			b := bias[i]
			s0, s1, s2, s3 := b, b, b, b
			s4, s5, s6, s7 := b, b, b, b
			for j, wj := range w {
				s0 += wj * x0[j]
				s1 += wj * x1[j]
				s2 += wj * x2[j]
				s3 += wj * x3[j]
				s4 += wj * x4[j]
				s5 += wj * x5[j]
				s6 += wj * x6[j]
				s7 += wj * x7[j]
			}
			o0[i], o1[i], o2[i], o3[i] = s0, s1, s2, s3
			o4[i], o5[i], o6[i], o7[i] = s4, s5, s6, s7
		}
	}
	for ; r < x.Rows; r++ {
		xr, or := x.Row(r)[:cols], out.Row(r)
		for i := 0; i < p.Rows; i++ {
			w := p.Data[i*cols : (i+1)*cols : (i+1)*cols]
			s := bias[i]
			for j, wj := range w {
				s += wj * xr[j]
			}
			or[i] = s
		}
	}
}

// matMulAcc computes out[r][i] += Σ_j W[i][j]·x[r][j] with the dot
// product summed separately and added once — the exact op order of the
// GRU's matVec helper. Same tiling strategy as matMulBias.
func matMulAcc(p *Param, x, out *Mat, sc *gemmScratch) {
	cols := p.Cols
	r := 0
	if useAVX2 && cols > 0 {
		xt := sc.tile(cols)
		for ; r+tileRows <= x.Rows; r += tileRows {
			transposeTile(x, r, cols, xt)
			for i := 0; i < p.Rows; i++ {
				w := p.Data[i*cols : (i+1)*cols]
				var acc [tileRows]float64
				dotTile16(&w[0], &xt[0], cols, &acc)
				for l := 0; l < tileRows; l++ {
					out.Data[(r+l)*out.Cols+i] += acc[l]
				}
			}
		}
	}
	for ; r+8 <= x.Rows; r += 8 {
		x0, x1, x2, x3 := x.Row(r)[:cols], x.Row(r + 1)[:cols], x.Row(r + 2)[:cols], x.Row(r + 3)[:cols]
		x4, x5, x6, x7 := x.Row(r + 4)[:cols], x.Row(r + 5)[:cols], x.Row(r + 6)[:cols], x.Row(r + 7)[:cols]
		o0, o1, o2, o3 := out.Row(r), out.Row(r+1), out.Row(r+2), out.Row(r+3)
		o4, o5, o6, o7 := out.Row(r+4), out.Row(r+5), out.Row(r+6), out.Row(r+7)
		for i := 0; i < p.Rows; i++ {
			w := p.Data[i*cols : (i+1)*cols : (i+1)*cols]
			var s0, s1, s2, s3 float64
			var s4, s5, s6, s7 float64
			for j, wj := range w {
				s0 += wj * x0[j]
				s1 += wj * x1[j]
				s2 += wj * x2[j]
				s3 += wj * x3[j]
				s4 += wj * x4[j]
				s5 += wj * x5[j]
				s6 += wj * x6[j]
				s7 += wj * x7[j]
			}
			o0[i] += s0
			o1[i] += s1
			o2[i] += s2
			o3[i] += s3
			o4[i] += s4
			o5[i] += s5
			o6[i] += s6
			o7[i] += s7
		}
	}
	for ; r < x.Rows; r++ {
		xr, or := x.Row(r)[:cols], out.Row(r)
		for i := 0; i < p.Rows; i++ {
			w := p.Data[i*cols : (i+1)*cols : (i+1)*cols]
			s := 0.0
			for j, wj := range w {
				s += wj * xr[j]
			}
			or[i] += s
		}
	}
}

// BatchForward computes out[r] = W·x[r] + b for every row, writing into
// out (resized to x.Rows × d.Outs). Per row it matches Forward exactly.
// This convenience form allocates its own tile scratch; hot paths go
// through Policy.BatchForward, whose PolicyBatchScratch is reused.
func (d *Dense) BatchForward(x, out *Mat) {
	var sc gemmScratch
	d.batchForward(x, out, &sc)
}

func (d *Dense) batchForward(x, out *Mat, sc *gemmScratch) {
	out.Reset(x.Rows, d.Outs)
	matMulBias(d.W, d.B.Data, x, out, sc)
}

// BatchForward normalizes every row of x into out (no cache: inference
// only). Per row it matches Forward exactly.
func (ln *LayerNorm) BatchForward(x, out *Mat) {
	out.Reset(x.Rows, ln.N)
	n := float64(ln.N)
	for r := 0; r < x.Rows; r++ {
		xr := x.Row(r)
		or := out.Row(r)
		mu := 0.0
		for _, v := range xr {
			mu += v
		}
		mu /= n
		varr := 0.0
		for _, v := range xr {
			d := v - mu
			varr += d * d
		}
		varr /= n
		std := math.Sqrt(varr + ln.Eps)
		for i, v := range xr {
			or[i] = ((v-mu)/std)*ln.G.Data[i] + ln.B.Data[i]
		}
	}
}

// GRUScratch holds the gate pre-activation matrices BatchForward reuses
// across calls; one scratch per concurrent worker.
type GRUScratch struct {
	zPre, rPre, nPre, unH Mat
	gemm                  gemmScratch
}

// BatchForward advances the cell one step for every row: hNew[r] =
// GRU(x[r], h[r]). Per row it performs Forward's operations in Forward's
// order, so results are bitwise identical to sequential stepping.
func (g *GRU) BatchForward(x, h, hNew *Mat, s *GRUScratch) {
	B, H := x.Rows, g.Hidden
	hNew.Reset(B, H)
	s.zPre.Reset(B, H)
	s.rPre.Reset(B, H)
	s.nPre.Reset(B, H)
	s.unH.Reset(B, H)

	s.zPre.fillRows(g.Bz.Data)
	s.rPre.fillRows(g.Br.Data)
	matMulAcc(g.Wz, x, &s.zPre, &s.gemm)
	matMulAcc(g.Uz, h, &s.zPre, &s.gemm)
	matMulAcc(g.Wr, x, &s.rPre, &s.gemm)
	matMulAcc(g.Ur, h, &s.rPre, &s.gemm)
	for i, v := range s.zPre.Data {
		s.zPre.Data[i] = sigmoid(v)
	}
	for i, v := range s.rPre.Data {
		s.rPre.Data[i] = sigmoid(v)
	}
	s.nPre.fillRows(g.Bn.Data)
	for i := range s.unH.Data {
		s.unH.Data[i] = 0
	}
	matMulAcc(g.Wn, x, &s.nPre, &s.gemm)
	matMulAcc(g.Un, h, &s.unH, &s.gemm)
	// zPre and rPre now hold z and r.
	for k := range s.nPre.Data {
		n := math.Tanh(s.nPre.Data[k] + s.rPre.Data[k]*s.unH.Data[k])
		z := s.zPre.Data[k]
		hNew.Data[k] = (1-z)*n + z*h.Data[k]
	}
}

// BatchApply standardizes every row of x into out with the same ±10σ
// clipping as Apply.
func (n *Normalizer) BatchApply(x, out *Mat) {
	out.Reset(x.Rows, x.Cols)
	if len(n.Mean) == 0 {
		copy(out.Data, x.Data)
		return
	}
	for r := 0; r < x.Rows; r++ {
		xr := x.Row(r)
		or := out.Row(r)
		for i, v := range xr {
			z := (v - n.Mean[i]) / n.Std[i]
			if z > 10 {
				z = 10
			} else if z < -10 {
				z = -10
			}
			or[i] = z
		}
	}
}

// leakyReLUInPlace applies max(x, alpha·x) elementwise over a flat buffer.
func leakyReLUInPlace(x []float64, alpha float64) {
	for i, v := range x {
		if v < 0 {
			x[i] = alpha * v
		}
	}
}

// tanhInPlace applies tanh elementwise over a flat buffer.
func tanhInPlace(x []float64) {
	for i, v := range x {
		x[i] = math.Tanh(v)
	}
}
