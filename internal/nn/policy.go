package nn

import (
	"math/rand"
)

// PolicyConfig sizes the Sage policy network of Fig. 6. The paper's scale is
// Enc=256, Hidden=1024, ResBlocks=2; the defaults here are CPU-sized and
// every experiment config can raise them.
type PolicyConfig struct {
	InDim     int
	Enc       int // encoder width (FC 256 in the paper)
	Hidden    int // GRU width (1024 in the paper)
	ResBlocks int // residual blocks after the FC (2 in the paper)
	K         int // GMM components; 1 reproduces the "no GMM" ablation head

	// Ablation switches (Fig. 12).
	NoGRU     bool // remove the GRU block
	NoEncoder bool // remove the encoder right after the GRU

	Seed int64
}

// Fill applies defaults.
func (c PolicyConfig) Fill() PolicyConfig {
	if c.Enc == 0 {
		c.Enc = 64
	}
	if c.Hidden == 0 {
		c.Hidden = 32
	}
	if c.ResBlocks == 0 {
		c.ResBlocks = 2
	}
	if c.K == 0 {
		c.K = 5
	}
	return c
}

// resBlock is a pre-activation residual block with LayerNorm:
// out = in + Dense(LReLU(LN(in))).
type resBlock struct {
	ln *LayerNorm
	fc *Dense
}

type resCache struct {
	in    []float64
	lnC   *lnCache
	lnOut []float64
	act   []float64
}

// Policy is the Fig. 6 network: encoder → GRU → LayerNorm+LReLU → encoder
// (tanh) → FC+LReLU → residual blocks → GMM head.
type Policy struct {
	Cfg  PolicyConfig
	GMM  GMM
	Norm *Normalizer

	enc1, enc2 *Dense
	gru        *GRU
	ln         *LayerNorm
	enc3       *Dense
	fc         *Dense
	res        []resBlock
	head       *Dense
}

// NewPolicy builds a freshly initialized policy network.
func NewPolicy(cfg PolicyConfig) *Policy {
	cfg = cfg.Fill()
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	p := &Policy{Cfg: cfg, GMM: GMM{K: cfg.K}, Norm: &Normalizer{}}
	p.enc1 = NewDense("enc1", cfg.InDim, cfg.Enc, rng)
	p.enc2 = NewDense("enc2", cfg.Enc, cfg.Enc, rng)
	width := cfg.Enc
	if !cfg.NoGRU {
		p.gru = NewGRU("gru", cfg.Enc, cfg.Hidden, rng)
		p.ln = NewLayerNorm("gru_ln", cfg.Hidden)
		width = cfg.Hidden
	}
	if !cfg.NoEncoder {
		p.enc3 = NewDense("enc3", width, cfg.Enc, rng)
		width = cfg.Enc
	}
	p.fc = NewDense("fc", width, cfg.Enc, rng)
	for i := 0; i < cfg.ResBlocks; i++ {
		p.res = append(p.res, resBlock{
			ln: NewLayerNorm("res_ln", cfg.Enc),
			fc: NewDense("res_fc", cfg.Enc, cfg.Enc, rng),
		})
	}
	p.head = NewDense("head", cfg.Enc, p.GMM.HeadDim(), rng)
	return p
}

// Params implements Module.
func (p *Policy) Params() []*Param {
	var out []*Param
	out = append(out, p.enc1.Params()...)
	out = append(out, p.enc2.Params()...)
	if p.gru != nil {
		out = append(out, p.gru.Params()...)
		out = append(out, p.ln.Params()...)
	}
	if p.enc3 != nil {
		out = append(out, p.enc3.Params()...)
	}
	out = append(out, p.fc.Params()...)
	for _, r := range p.res {
		out = append(out, r.ln.Params()...)
		out = append(out, r.fc.Params()...)
	}
	out = append(out, p.head.Params()...)
	return out
}

// InitHidden returns a zeroed recurrent state (empty when NoGRU).
func (p *Policy) InitHidden() []float64 {
	if p.gru == nil {
		return nil
	}
	return make([]float64, p.Cfg.Hidden)
}

// PolicyCache holds one forward step's intermediates.
type PolicyCache struct {
	xn         []float64 // normalized input
	e1pre, e1  []float64
	e2pre, e2  []float64
	gruC       *GRUCache
	lnC        *lnCache
	lnOut      []float64
	lrOut      []float64
	e3pre, e3  []float64
	fcIn       []float64
	fcPre, fcA []float64
	res        []resCache
	resOut     []float64
	headOut    []float64
}

const lreluAlpha = 0.01

// Forward runs one timestep: it normalizes the raw state, advances the GRU,
// and returns (GMM head output, new hidden state, cache).
func (p *Policy) Forward(state, hidden []float64) (head, hNew []float64, cache *PolicyCache) {
	c := &PolicyCache{}
	c.xn = p.Norm.Apply(state)
	c.e1pre = p.enc1.Forward(c.xn)
	c.e1 = LeakyReLU(c.e1pre, lreluAlpha)
	c.e2pre = p.enc2.Forward(c.e1)
	c.e2 = LeakyReLU(c.e2pre, lreluAlpha)

	trunk := c.e2
	hNew = hidden
	if p.gru != nil {
		hNew, c.gruC = p.gru.Forward(c.e2, hidden)
		c.lnOut, c.lnC = p.ln.Forward(hNew)
		c.lrOut = LeakyReLU(c.lnOut, lreluAlpha)
		trunk = c.lrOut
	}
	if p.enc3 != nil {
		c.e3pre = p.enc3.Forward(trunk)
		c.e3 = Tanh(c.e3pre)
		trunk = c.e3
	}
	c.fcIn = trunk
	c.fcPre = p.fc.Forward(trunk)
	c.fcA = LeakyReLU(c.fcPre, lreluAlpha)
	cur := c.fcA
	for i := range p.res {
		rc := resCache{in: cur}
		var lnOut []float64
		lnOut, rc.lnC = p.res[i].ln.Forward(cur)
		rc.lnOut = lnOut
		rc.act = LeakyReLU(lnOut, lreluAlpha)
		delta := p.res[i].fc.Forward(rc.act)
		next := make([]float64, len(cur))
		for j := range next {
			next[j] = cur[j] + delta[j]
		}
		c.res = append(c.res, rc)
		cur = next
	}
	c.resOut = cur
	c.headOut = p.head.Forward(cur)
	return c.headOut, hNew, c
}

// Backward propagates one step's gradients: dHead is the gradient wrt the
// GMM head output, dHiddenIn the gradient flowing back into this step's new
// hidden state from the *next* timestep (nil at the end of a BPTT segment).
// It accumulates parameter gradients and returns the gradient wrt the
// incoming hidden state (nil when NoGRU).
func (p *Policy) Backward(c *PolicyCache, dHead, dHiddenIn []float64) []float64 {
	dCur := p.head.Backward(c.resOut, dHead)
	for i := len(p.res) - 1; i >= 0; i-- {
		rc := c.res[i]
		dDelta := dCur // gradient into the block's Dense output
		dAct := p.res[i].fc.Backward(rc.act, dDelta)
		dLn := LeakyReLUBackward(rc.lnOut, dAct, lreluAlpha)
		dIn := p.res[i].ln.Backward(rc.lnC, dLn)
		next := make([]float64, len(dCur))
		for j := range next {
			next[j] = dCur[j] + dIn[j] // skip connection
		}
		dCur = next
	}
	dFcPre := LeakyReLUBackward(c.fcPre, dCur, lreluAlpha)
	dTrunk := p.fc.Backward(c.fcIn, dFcPre)
	if p.enc3 != nil {
		dE3pre := TanhBackward(c.e3, dTrunk)
		var src []float64
		if p.gru != nil {
			src = c.lrOut
		} else {
			src = c.e2
		}
		dTrunk = p.enc3.Backward(src, dE3pre)
	}
	var dHidden []float64
	dE2 := dTrunk
	if p.gru != nil {
		dLn := LeakyReLUBackward(c.lnOut, dTrunk, lreluAlpha)
		dHNew := p.ln.Backward(c.lnC, dLn)
		// hNew also feeds the next timestep directly: merge that gradient
		// before the single GRU backward pass.
		if dHiddenIn != nil {
			for i := range dHNew {
				dHNew[i] += dHiddenIn[i]
			}
		}
		var dx []float64
		dx, dHidden = p.gru.Backward(c.gruC, dHNew)
		dE2 = dx
	}
	dE2pre := LeakyReLUBackward(c.e2pre, dE2, lreluAlpha)
	dE1 := p.enc2.Backward(c.e1, dE2pre)
	dE1pre := LeakyReLUBackward(c.e1pre, dE1, lreluAlpha)
	p.enc1.Backward(c.xn, dE1pre)
	return dHidden
}
