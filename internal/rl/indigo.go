package rl

import (
	"fmt"
	"math/rand"

	"sage/internal/cc"
	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/nn"
	"sage/internal/rollout"
	"sage/internal/sim"
	"sage/internal/tcp"
)

// IndigoConfig tunes the Indigo baseline (Yan et al., ATC 2018): imitation
// learning from congestion-control oracles. The oracle's ideal window is the
// environment's BDP (or the fair-share BDP in multi-flow scenarios) — known
// here because training runs under emulation, exactly the assumption Indigo
// needs and the reason it cannot generalize beyond it (Section 6.2).
type IndigoConfig struct {
	Policy      nn.PolicyConfig
	GR          gr.Config
	Scenarios   []netem.Scenario // include multi-flow ones for Indigov2
	DaggerIters int              // DAgger outer iterations (default 3)
	StepsPer    int              // supervised steps per iteration (default 200)
	Batch       int
	SeqLen      int
	LR          float64
	Mask        []int
	Seed        int64
}

func (c IndigoConfig) fill() IndigoConfig {
	if c.DaggerIters == 0 {
		c.DaggerIters = 3
	}
	if c.StepsPer == 0 {
		c.StepsPer = 200
	}
	if c.Batch == 0 {
		c.Batch = 8
	}
	if c.SeqLen == 0 {
		c.SeqLen = 8
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.Mask == nil {
		c.Mask = gr.MaskFull()
	}
	return c
}

// oracleController labels every visited state with the expert action while
// letting either the oracle itself or the learner pick the executed action
// (DAgger's mixing).
type oracleController struct {
	sc      netem.Scenario
	learner *PolicyController // nil = pure oracle rollout
	mask    []int

	states  [][]float64
	targets []float64
}

func (o *oracleController) oracleU(conn *tcp.Conn, now sim.Time) float64 {
	capacity := o.sc.Rate.At(now)
	if o.sc.CubicFlows > 0 {
		capacity /= float64(o.sc.CubicFlows + 1)
	}
	ideal := capacity / 8 * o.sc.MinRTT.Seconds() / float64(conn.MSS())
	if ideal < 2 {
		ideal = 2
	}
	return ActionToU(ideal / conn.Cwnd)
}

// Control implements rollout.Controller.
func (o *oracleController) Control(now sim.Time, conn *tcp.Conn, state []float64) {
	u := o.oracleU(conn, now)
	o.states = append(o.states, gr.ApplyMask(state, o.mask))
	o.targets = append(o.targets, u)
	if o.learner != nil {
		o.learner.Control(now, conn, state)
		return
	}
	conn.SetCwnd(conn.Cwnd * UToRatio(u))
}

// TrainIndigo runs DAgger-style imitation of the oracle and returns the
// policy. A non-finite imitation loss fails fast with an error instead of
// silently emitting a NaN policy.
func TrainIndigo(cfg IndigoConfig) (*nn.Policy, error) {
	cfg = cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed + 888))
	cfg.Policy.InDim = len(cfg.Mask)
	cfg.Policy.Seed = cfg.Seed
	pol := nn.NewPolicy(cfg.Policy)
	opt := nn.NewAdam(cfg.LR)

	ds := &Dataset{Mask: cfg.Mask}
	for iter := 0; iter < cfg.DaggerIters; iter++ {
		// Collect labeled rollouts: first iteration from the oracle, later
		// iterations from the current policy (DAgger aggregation).
		for _, sc := range cfg.Scenarios {
			oc := &oracleController{sc: sc, mask: cfg.Mask}
			if iter > 0 {
				oc.learner = NewPolicyController(pol, cfg.Mask, false, cfg.Seed+int64(iter))
			}
			rollout.Run(sc, cc.MustNew("pure"), rollout.Options{GR: cfg.GR, Controller: oc})
			if len(oc.states) > 1 {
				ds.Trajs = append(ds.Trajs, Traj{
					Scheme:  "oracle",
					Env:     sc.Name,
					States:  oc.states,
					Actions: oc.targets,
					Rewards: make([]float64, len(oc.states)),
				})
			}
		}
		if ds.Norm == nil {
			var sample [][]float64
			for _, t := range ds.Trajs {
				sample = append(sample, t.States...)
			}
			ds.Norm = nn.FitNormalizer(sample)
			pol.Norm = ds.Norm
		}
		// Supervised regression on the aggregated dataset.
		for step := 0; step < cfg.StepsPer; step++ {
			nll := 0.0
			for b := 0; b < cfg.Batch; b++ {
				tr, start := ds.sampleSeq(rng, cfg.SeqLen)
				h := pol.InitHidden()
				heads := make([][]float64, cfg.SeqLen)
				caches := make([]*nn.PolicyCache, cfg.SeqLen)
				for i := 0; i < cfg.SeqLen; i++ {
					heads[i], h, caches[i] = pol.Forward(tr.States[start+i], h)
				}
				var dHidden []float64
				for i := cfg.SeqLen - 1; i >= 0; i-- {
					logp, dp := pol.GMM.LogProbGrad(heads[i], tr.Actions[start+i])
					nll += -logp
					w := -1.0 / float64(cfg.Batch*cfg.SeqLen)
					for k := range dp {
						dp[k] *= w
					}
					dHidden = pol.Backward(caches[i], dp, dHidden)
				}
			}
			if !finite(nll) {
				return nil, fmt.Errorf("rl: indigo diverged at iteration %d step %d: non-finite loss", iter, step)
			}
			nn.ClipGrads(pol, 10)
			opt.Step(pol)
		}
	}
	return pol, nil
}
