package rl

import (
	"fmt"
	"math/rand"

	"sage/internal/nn"
)

// BCConfig tunes behavioral cloning: the same policy architecture as Sage,
// trained purely by maximizing the data log-likelihood (the paper's BC,
// BC-top, BC-top3 and BCv2 baselines differ only in the pool they see).
type BCConfig struct {
	Policy nn.PolicyConfig
	Batch  int
	SeqLen int
	Steps  int
	LR     float64
	Seed   int64
}

// Fill applies defaults.
func (c BCConfig) Fill() BCConfig {
	if c.Batch == 0 {
		c.Batch = 16
	}
	if c.SeqLen == 0 {
		c.SeqLen = 8
	}
	if c.Steps == 0 {
		c.Steps = 1000
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	return c
}

// TrainBC trains a policy by log-likelihood on the dataset and returns it.
// A non-finite loss (NaN/Inf from poisoned data or a diverged update)
// fails fast with an error instead of silently emitting a NaN policy.
func TrainBC(ds *Dataset, cfg BCConfig, progress func(step int, nll float64)) (*nn.Policy, error) {
	cfg = cfg.Fill()
	cfg.Policy.InDim = ds.InDim()
	cfg.Policy.Seed = cfg.Seed
	pol := nn.NewPolicy(cfg.Policy)
	pol.Norm = ds.Norm
	opt := nn.NewAdam(cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed + 303))

	for step := 1; step <= cfg.Steps; step++ {
		nll := 0.0
		for b := 0; b < cfg.Batch; b++ {
			tr, start := ds.sampleSeq(rng, cfg.SeqLen)
			h := pol.InitHidden()
			heads := make([][]float64, cfg.SeqLen)
			caches := make([]*nn.PolicyCache, cfg.SeqLen)
			for i := 0; i < cfg.SeqLen; i++ {
				heads[i], h, caches[i] = pol.Forward(tr.States[start+i], h)
			}
			var dHidden []float64
			for i := cfg.SeqLen - 1; i >= 0; i-- {
				a := tr.Actions[start+i]
				logp, dp := pol.GMM.LogProbGrad(heads[i], a)
				nll += -logp
				w := -1.0 / float64(cfg.Batch*cfg.SeqLen)
				for k := range dp {
					dp[k] *= w
				}
				dHidden = pol.Backward(caches[i], dp, dHidden)
			}
		}
		if !finite(nll) {
			return nil, fmt.Errorf("rl: BC diverged at step %d: non-finite loss", step)
		}
		nn.ClipGrads(pol, 10)
		opt.Step(pol)
		if progress != nil {
			progress(step, nll/float64(cfg.Batch*cfg.SeqLen))
		}
	}
	return pol, nil
}
