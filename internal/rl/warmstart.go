package rl

import (
	"fmt"

	"sage/internal/nn"
)

// SeedFromPolicy copies src's network parameters into the learner's
// policy and target policy, warm-starting incremental retraining from an
// incumbent's weights. Only parameters move: the learner's normalizer
// stays the one NewCRR fitted on the training dataset, and checkpoints
// store exactly one normalizer shared by every network, so swapping it
// per-network would silently change critic normalization across a
// checkpoint round-trip. Call before the first Train step.
func (l *CRR) SeedFromPolicy(src *nn.Policy) error {
	if src == nil {
		return fmt.Errorf("rl: seed from nil policy")
	}
	dst, sp := l.Policy.Params(), src.Params()
	if len(dst) != len(sp) {
		return fmt.Errorf("rl: seed policy has %d parameter tensors, learner has %d (architecture mismatch)", len(sp), len(dst))
	}
	for i := range dst {
		if len(dst[i].Data) != len(sp[i].Data) {
			return fmt.Errorf("rl: seed policy tensor %d has %d values, learner has %d (architecture mismatch)", i, len(sp[i].Data), len(dst[i].Data))
		}
	}
	nn.CopyParams(l.Policy, src)
	nn.CopyParams(l.targetPolicy, src)
	return nil
}
