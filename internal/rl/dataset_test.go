package rl

import (
	"math/rand"
	"testing"

	"sage/internal/collector"
	"sage/internal/gr"
)

func stepTraj(scheme string, n int, u float64) collector.Trajectory {
	tr := collector.Trajectory{Scheme: scheme, Env: "env"}
	for i := 0; i < n; i++ {
		tr.Steps = append(tr.Steps, gr.Step{
			State:  make([]float64, gr.StateDim),
			Action: UToRatio(u),
			Reward: 1,
		})
	}
	return tr
}

// BuildDataset must drop zero- and single-step trajectories (no usable
// (s,a,r,s') transition) instead of producing unusable entries.
func TestBuildDatasetSkipsDegenerateTrajectories(t *testing.T) {
	pool := &collector.Pool{Trajs: []collector.Trajectory{
		stepTraj("empty", 0, 0),
		stepTraj("single", 1, 0),
		stepTraj("ok", 10, 0),
	}}
	ds := BuildDataset(pool, nil)
	if len(ds.Trajs) != 1 {
		t.Fatalf("%d trajs kept, want 1", len(ds.Trajs))
	}
	if ds.Trajs[0].Scheme != "ok" {
		t.Fatalf("kept %q", ds.Trajs[0].Scheme)
	}
	if ds.Transitions() != 9 {
		t.Fatalf("Transitions = %d, want 9", ds.Transitions())
	}
	if ds.Norm == nil {
		t.Fatal("normalizer not fitted")
	}
}

// An all-degenerate pool must yield an empty (Transitions()==0) dataset
// rather than panicking — callers gate on Transitions before training.
func TestBuildDatasetAllDegenerate(t *testing.T) {
	pool := &collector.Pool{Trajs: []collector.Trajectory{
		stepTraj("a", 0, 0),
		stepTraj("b", 1, 0),
	}}
	ds := BuildDataset(pool, nil)
	if len(ds.Trajs) != 0 || ds.Transitions() != 0 {
		t.Fatalf("kept %d trajs, %d transitions", len(ds.Trajs), ds.Transitions())
	}
}

// With no eventful steps (all |u| below the 0.15 threshold) the event
// index is empty and prioritized sampling must fall back to uniform
// sampling without panicking or biasing.
func TestSampleSeqPrioritizedEmptyEventIndex(t *testing.T) {
	ds := &Dataset{Mask: gr.MaskFull()}
	for i := 0; i < 3; i++ {
		tr := Traj{Scheme: "flat", Env: "env"}
		for j := 0; j < 20; j++ {
			tr.States = append(tr.States, make([]float64, len(ds.Mask)))
			tr.Actions = append(tr.Actions, 0.01) // well below event threshold
			tr.Rewards = append(tr.Rewards, 1)
		}
		ds.Trajs = append(ds.Trajs, tr)
	}
	rng := rand.New(rand.NewSource(1))
	const L = 4
	for i := 0; i < 200; i++ {
		tr, start := ds.sampleSeqPrioritized(rng, L, 1.0) // always ask for events
		if tr == nil {
			t.Fatal("nil trajectory")
		}
		if start < 0 || start+L >= len(tr.States)+1 {
			t.Fatalf("window [%d,%d) out of range (%d states)", start, start+L, len(tr.States))
		}
	}
	if len(ds.events) != 0 {
		t.Fatalf("event index has %d entries, want 0", len(ds.events))
	}
}

// With events present, anchored windows must stay in bounds even when the
// event sits at a trajectory edge.
func TestSampleSeqPrioritizedAnchorsInBounds(t *testing.T) {
	ds := &Dataset{Mask: gr.MaskFull()}
	tr := Traj{Scheme: "edgy", Env: "env"}
	for j := 0; j < 12; j++ {
		tr.States = append(tr.States, make([]float64, len(ds.Mask)))
		u := 0.01
		if j == 0 || j == 11 {
			u = 0.9 // events at both edges
		}
		tr.Actions = append(tr.Actions, u)
		tr.Rewards = append(tr.Rewards, 1)
	}
	ds.Trajs = []Traj{tr}
	rng := rand.New(rand.NewSource(2))
	const L = 4
	for i := 0; i < 500; i++ {
		got, start := ds.sampleSeqPrioritized(rng, L, 1.0)
		if start < 0 || start+L > len(got.States)-1 {
			t.Fatalf("window [%d,%d) lacks a next state (%d states)", start, start+L, len(got.States))
		}
	}
}
