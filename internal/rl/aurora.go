package rl

import (
	"fmt"
	"math/rand"
	"sort"

	"sage/internal/cc"
	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/nn"
	"sage/internal/rollout"
)

// AuroraConfig tunes the Aurora baseline (Jay et al., ICML 2019): a simple
// on-policy policy-gradient agent over a feed-forward network, trained with
// the single-flow reward only. With Curriculum set it becomes the Genet
// baseline (Xia et al., SIGCOMM 2022): training progresses from low-BDP,
// stable environments to the full set.
type AuroraConfig struct {
	Policy     nn.PolicyConfig // forced NoGRU (Aurora is feed-forward)
	GR         gr.Config
	Scenarios  []netem.Scenario
	Episodes   int     // on-policy episodes
	LR         float64 // default 1e-3
	Gamma      float64 // default 0.95
	Mask       []int
	Curriculum bool
	Seed       int64
}

func (c AuroraConfig) fill() AuroraConfig {
	if c.Episodes == 0 {
		c.Episodes = 20
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.Gamma == 0 {
		c.Gamma = 0.95
	}
	if c.Mask == nil {
		c.Mask = gr.MaskFull()
	}
	c.Policy.NoGRU = true
	return c
}

// difficulty orders scenarios for the Genet curriculum: small, stable pipes
// first; large-BDP and step scenarios later.
func difficulty(sc netem.Scenario) float64 {
	d := sc.Rate.MaxRate() * sc.MinRTT.Seconds()
	if len(sc.Name) >= 4 && sc.Name[:4] == "step" {
		d *= 4
	}
	if sc.CubicFlows > 0 {
		d *= 2
	}
	return d
}

// TrainAurora runs REINFORCE with a mean baseline and returns the policy.
// Non-finite returns or gradients (the divergence mode Jay et al. report
// for exactly this training loop) abort with an error instead of letting
// a NaN update silently corrupt the policy.
func TrainAurora(cfg AuroraConfig) (*nn.Policy, error) {
	cfg = cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed + 777))
	scens := append([]netem.Scenario(nil), cfg.Scenarios...)
	if cfg.Curriculum {
		sort.SliceStable(scens, func(i, j int) bool { return difficulty(scens[i]) < difficulty(scens[j]) })
	}

	// Seed rollout for the normalizer (run cubic once).
	seedRes := rollout.Run(scens[0], cc.MustNew("cubic"), rollout.Options{GR: cfg.GR, CollectSteps: true})
	var sample [][]float64
	for _, s := range seedRes.Steps {
		sample = append(sample, gr.ApplyMask(s.State, cfg.Mask))
	}
	cfg.Policy.InDim = len(cfg.Mask)
	cfg.Policy.Seed = cfg.Seed
	pol := nn.NewPolicy(cfg.Policy)
	pol.Norm = nn.FitNormalizer(sample)
	opt := nn.NewAdam(cfg.LR)

	for ep := 0; ep < cfg.Episodes; ep++ {
		var sc netem.Scenario
		if cfg.Curriculum {
			// Expand the pool of eligible environments as training advances.
			frac := float64(ep+1) / float64(cfg.Episodes)
			hi := int(frac * float64(len(scens)))
			if hi < 1 {
				hi = 1
			}
			sc = scens[rng.Intn(hi)]
		} else {
			sc = scens[rng.Intn(len(scens))]
		}
		ctl := NewPolicyController(pol, cfg.Mask, true, cfg.Seed+int64(ep))
		ctl.Record = true
		res := rollout.Run(sc, cc.MustNew("pure"), rollout.Options{
			GR: cfg.GR, CollectSteps: true, Controller: ctl,
			// Aurora considers only the single-flow reward (Section 6.2).
			RewardKind: gr.RewardSingleFlow, ForceReward: true,
		})
		if len(ctl.States) == 0 {
			continue
		}
		// Discounted returns with mean baseline.
		n := len(ctl.States)
		if n > len(res.Steps) {
			n = len(res.Steps)
		}
		returns := make([]float64, n)
		g := 0.0
		for i := n - 1; i >= 0; i-- {
			g = res.Steps[i].Reward + cfg.Gamma*g
			returns[i] = g
		}
		mean := 0.0
		for _, r := range returns {
			mean += r
		}
		mean /= float64(n)
		if !finite(mean) {
			return nil, fmt.Errorf("rl: aurora diverged at episode %d: non-finite return", ep)
		}

		for i := 0; i < n; i++ {
			head, _, cache := pol.Forward(ctl.States[i], nil)
			_, dp := pol.GMM.LogProbGrad(head, ctl.Actions[i])
			w := -(returns[i] - mean) / float64(n)
			for k := range dp {
				dp[k] *= w
			}
			pol.Backward(cache, dp, nil)
		}
		if !finite(nn.GradNorm(pol)) {
			return nil, fmt.Errorf("rl: aurora diverged at episode %d: non-finite gradient", ep)
		}
		nn.ClipGrads(pol, 10)
		opt.Step(pol)
	}
	return pol, nil
}
