package rl

import (
	"fmt"
	"math/rand"

	"sage/internal/nn"
)

// This file is the learner's surface for cross-process data-parallel
// training (internal/dist): a ShardWorker computes gradient shards in a
// trainer process, the coordinator's master learner sums them with
// ApplyShards, and parameter snapshots flow back. The decomposition
// mirrors stepParallel exactly — same per-worker RNG streams, same shard
// split, same worker-order gradient reduction — so an N-process
// distributed step is bitwise-identical to an in-process Workers=N step,
// and everything the checkpoint machinery already persists (Adam
// moments, RNG positions, step index) keeps working across restarts.

// ShardSums is the exported raw-sum form of one gradient shard's batch
// statistics. Shards from all workers add element-wise on the
// coordinator before normalization, exactly like in-process shardStats.
type ShardSums struct {
	CLoss, PLoss           float64
	FSum, AdvSum, AdvSqSum float64
	FCnt, Accepted         int
}

func (s ShardSums) toStats() shardStats {
	return shardStats{
		cLoss: s.CLoss, pLoss: s.PLoss,
		fSum: s.FSum, advSum: s.AdvSum, advSqSum: s.AdvSqSum,
		fCnt: s.FCnt, accepted: s.Accepted,
	}
}

func fromStats(st shardStats) ShardSums {
	return ShardSums{
		CLoss: st.cLoss, PLoss: st.pLoss,
		FSum: st.fSum, AdvSum: st.advSum, AdvSqSum: st.advSqSum,
		FCnt: st.fCnt, Accepted: st.accepted,
	}
}

// GradShard is one worker's contribution to one data-parallel step: the
// accumulated gradients of its shard, the raw batch-statistic sums, and
// its sampler positions before/after the shard (before feeds the batch
// identity fold; after is what a checkpoint must persist so a resumed
// worker redraws the same future batches).
type GradShard struct {
	Worker    int
	Step      int // 1-based step this shard was computed for
	Sums      ShardSums
	Grads     [][]float64
	RNGBefore uint64
	RNGAfter  uint64
	BusySec   float64
}

// dumpGrads snapshots gradient accumulators in Params order.
func dumpGrads(ms ...nn.Module) [][]float64 {
	var out [][]float64
	for _, m := range ms {
		for _, p := range m.Params() {
			out = append(out, append([]float64(nil), p.Grad...))
		}
	}
	return out
}

// paramModules returns the learner's trainable modules in the canonical
// snapshot order: policy first, then the active critic.
func (l *CRR) paramModules() []nn.Module { return []nn.Module{l.Policy, l.criticModule()} }

func (l *CRR) targetModules() []nn.Module {
	if l.NAF != nil {
		return []nn.Module{l.targetPolicy, l.targetNAF}
	}
	return []nn.Module{l.targetPolicy, l.targetCritic}
}

func snapshotModules(ms []nn.Module) [][]float64 {
	var out [][]float64
	for _, m := range ms {
		out = append(out, dumpParams(m)...)
	}
	return out
}

func installModules(ms []nn.Module, data [][]float64) error {
	var ps []*nn.Param
	for _, m := range ms {
		ps = append(ps, m.Params()...)
	}
	if len(ps) != len(data) {
		return fmt.Errorf("rl: snapshot has %d tensors, learner has %d", len(data), len(ps))
	}
	for i, p := range ps {
		if len(p.Data) != len(data[i]) {
			return fmt.Errorf("rl: snapshot tensor %d size mismatch (%d vs %d)", i, len(data[i]), len(p.Data))
		}
		copy(p.Data, data[i])
	}
	return nil
}

// SnapshotParams copies the online networks' parameters (policy, then
// critic) — the payload the coordinator broadcasts after each step.
func (l *CRR) SnapshotParams() [][]float64 { return snapshotModules(l.paramModules()) }

// SnapshotTargets copies the target networks' parameters. Only needed
// when a worker (re)joins mid-run: between syncs the targets are a pure
// function of the step schedule, which workers replicate locally.
func (l *CRR) SnapshotTargets() [][]float64 { return snapshotModules(l.targetModules()) }

// InstallParams overwrites the online networks from a SnapshotParams
// payload.
func (l *CRR) InstallParams(data [][]float64) error { return installModules(l.paramModules(), data) }

// InstallTargets overwrites the target networks from a SnapshotTargets
// payload.
func (l *CRR) InstallTargets(data [][]float64) error { return installModules(l.targetModules(), data) }

// SetStepIndex forces the absolute step counter — used when installing a
// coordinator's state into a joining worker replica.
func (l *CRR) SetStepIndex(n int) { l.stepIdx = n }

// WorkerRNGStates returns the per-worker sampler positions this learner
// knows about: live worker streams when in-process workers exist,
// otherwise the positions staged for checkpointing (a distributed
// coordinator tracks remote workers' streams through SetWorkerRNGStates).
func (l *CRR) WorkerRNGStates() []uint64 {
	if l.workerSet != nil {
		out := make([]uint64, len(l.workerSet))
		for i, w := range l.workerSet {
			out[i] = w.src.State()
		}
		return out
	}
	return append([]uint64(nil), l.resumeWorkerRNG...)
}

// SetWorkerRNGStates records per-worker sampler positions so the next
// SaveCheckpoint persists them. The distributed coordinator calls this
// after every applied step with the RNGAfter of each shard; on resume the
// states flow back out through WorkerRNGStates to re-seed remote workers.
func (l *CRR) SetWorkerRNGStates(states []uint64) {
	l.resumeWorkerRNG = append(l.resumeWorkerRNG[:0], states...)
}

// InitialWorkerRNGStates returns the sampler positions fresh workers
// start from under cfg — what a coordinator hands out when no checkpoint
// has recorded positions yet. The seeds match NewShardWorker (and the
// in-process worker streams), so a fresh distributed run draws the same
// batches as a fresh in-process Workers=N run.
func InitialWorkerRNGStates(cfg CRRConfig) []uint64 {
	cfg = cfg.Fill()
	out := make([]uint64, cfg.Workers)
	for i := range out {
		out[i] = newRNG(cfg.Seed + int64(i)*7907 + 11).State()
	}
	return out
}

// ApplyShards runs one coordinator-side optimizer step from the workers'
// gradient shards: gradients are summed in worker order (the same
// reduction order as stepParallel, so results are bitwise-comparable to
// in-process parallel training), then clipped, gated, and applied, with
// the target networks synced on the usual schedule. Every worker must
// contribute exactly one shard per step.
func (l *CRR) ApplyShards(shards []GradShard) (TrainStats, error) {
	n := l.Cfg.Workers
	if n < 2 {
		return TrainStats{}, fmt.Errorf("rl: ApplyShards needs Cfg.Workers >= 2, have %d", n)
	}
	if len(shards) != n {
		return TrainStats{}, fmt.Errorf("rl: got %d shards, want %d (one per worker)", len(shards), n)
	}
	bySlot := make([]*GradShard, n)
	for i := range shards {
		sh := &shards[i]
		if sh.Worker < 0 || sh.Worker >= n {
			return TrainStats{}, fmt.Errorf("rl: shard worker index %d out of range [0,%d)", sh.Worker, n)
		}
		if bySlot[sh.Worker] != nil {
			return TrainStats{}, fmt.Errorf("rl: duplicate shard from worker %d", sh.Worker)
		}
		bySlot[sh.Worker] = sh
	}
	var ps []*nn.Param
	for _, m := range l.paramModules() {
		nn.ZeroGrads(m)
		ps = append(ps, m.Params()...)
	}
	// Batch identity: the fold of the master stream position and every
	// worker's pre-shard position, in worker order — identical to the
	// in-process stepParallel fold.
	id := l.rngSrc.State()
	var st shardStats
	busy := make([]float64, n)
	for w, sh := range bySlot {
		id = id*31 + sh.RNGBefore
		if len(sh.Grads) != len(ps) {
			return TrainStats{}, fmt.Errorf("rl: worker %d shard has %d grad tensors, want %d", w, len(sh.Grads), len(ps))
		}
		for i, p := range ps {
			if len(sh.Grads[i]) != len(p.Grad) {
				return TrainStats{}, fmt.Errorf("rl: worker %d grad tensor %d size mismatch (%d vs %d)", w, i, len(sh.Grads[i]), len(p.Grad))
			}
			for j, g := range sh.Grads[i] {
				p.Grad[j] += g
			}
		}
		st.add(sh.Sums.toStats())
		busy[w] = sh.BusySec
	}
	l.lastBatchID = id
	l.finishStep(st, busy)
	// Target syncs follow the same absolute-step schedule as TrainStep.
	if l.stepIdx%l.Cfg.TargetEvery == 0 {
		nn.CopyParams(l.targetPolicy, l.Policy)
		if l.Critic != nil {
			nn.CopyParams(l.targetCritic, l.Critic)
		}
		if l.NAF != nil {
			nn.CopyParams(l.targetNAF, l.NAF)
		}
	}
	// Stage the post-shard sampler positions for the next checkpoint.
	states := make([]uint64, n)
	for w, sh := range bySlot {
		states[w] = sh.RNGAfter
	}
	l.SetWorkerRNGStates(states)
	return l.LastStats, nil
}

// ShardWorker computes gradient shards in a trainer process. It holds a
// full learner replica (the replica's own optimizer is never stepped —
// moments live on the coordinator) plus the same sampler stream an
// in-process worker with the same index would use, so the batches it
// draws are exactly the in-process worker's batches.
type ShardWorker struct {
	learner *CRR
	idx     int
	nSeqs   int
	rng     *rand.Rand
	src     *rngSource
}

// NewShardWorker builds the replica for worker idx of total. The config
// must be the coordinator's (including Workers=total); the dataset must
// be built from the same pool with the same mask.
func NewShardWorker(ds *Dataset, cfg CRRConfig, idx, total int) (*ShardWorker, error) {
	cfg = cfg.Fill()
	if total < 2 {
		return nil, fmt.Errorf("rl: shard worker needs total >= 2, have %d", total)
	}
	if idx < 0 || idx >= total {
		return nil, fmt.Errorf("rl: shard worker index %d out of range [0,%d)", idx, total)
	}
	if cfg.Workers != total {
		return nil, fmt.Errorf("rl: config Workers=%d but %d shard workers (the counts must agree for deterministic shard splits)", cfg.Workers, total)
	}
	per := cfg.Batch / total
	if idx < cfg.Batch%total {
		per++
	}
	src := newRNG(cfg.Seed + int64(idx)*7907 + 11) // the in-process worker stream
	return &ShardWorker{
		learner: NewCRR(ds, cfg),
		idx:     idx,
		nSeqs:   per,
		rng:     rand.New(src),
		src:     src,
	}, nil
}

// Index returns the worker's slot in the shard split.
func (w *ShardWorker) Index() int { return w.idx }

// SeqsPerShard returns how many sequences this worker samples per step.
func (w *ShardWorker) SeqsPerShard() int { return w.nSeqs }

// RNGState exposes the sampler position (for diagnostics and tests).
func (w *ShardWorker) RNGState() uint64 { return w.src.State() }

// Join installs a full coordinator state into the replica: online and
// target parameters, the absolute step index, and this worker's sampler
// position. Called once at connect (and again after a coordinator-led
// resync, e.g. when the worker restarted mid-run).
func (w *ShardWorker) Join(step int, params, targets [][]float64, rngState uint64) error {
	if err := w.learner.InstallParams(params); err != nil {
		return err
	}
	if err := w.learner.InstallTargets(targets); err != nil {
		return err
	}
	w.learner.SetStepIndex(step)
	w.src.SetState(rngState)
	return nil
}

// Sync installs the coordinator's post-step broadcast: the new online
// parameters and the step they resulted from. The worker replicates the
// target-sync schedule locally — the targets are copies of the online
// nets at scheduled steps, so no target payload is needed between joins.
func (w *ShardWorker) Sync(step int, params [][]float64) error {
	if err := w.learner.InstallParams(params); err != nil {
		return err
	}
	w.learner.SetStepIndex(step)
	if step%w.learner.Cfg.TargetEvery == 0 {
		nn.CopyParams(w.learner.targetPolicy, w.learner.Policy)
		if w.learner.Critic != nil {
			nn.CopyParams(w.learner.targetCritic, w.learner.Critic)
		}
		if w.learner.NAF != nil {
			nn.CopyParams(w.learner.targetNAF, w.learner.NAF)
		}
	}
	return nil
}

// ComputeShard draws this worker's share of the next batch and runs
// forward/backward over it, returning the accumulated gradients. The
// replica's parameters are untouched (no optimizer step); gradients are
// zeroed first so shards never bleed into each other.
func (w *ShardWorker) ComputeShard(ds *Dataset) GradShard {
	l := w.learner
	ds.buildEventIndex()
	nn.ZeroGrads(l.Policy)
	nn.ZeroGrads(l.criticModule())
	before := w.src.State()
	nets := netSet{policy: l.Policy, critic: l.Critic, naf: l.NAF}
	st := l.processSeqs(nets, ds, w.rng, w.nSeqs)
	return GradShard{
		Worker:    w.idx,
		Step:      l.stepIdx + 1,
		Sums:      fromStats(st),
		Grads:     dumpGrads(l.Policy, l.criticModule()),
		RNGBefore: before,
		RNGAfter:  w.src.State(),
	}
}

// StepsDone mirrors the replica's absolute step counter.
func (w *ShardWorker) StepsDone() int { return w.learner.stepIdx }
