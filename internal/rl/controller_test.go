package rl

import (
	"testing"

	"sage/internal/cc"
	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/nn"
	"sage/internal/sim"
	"sage/internal/tcp"
)

func controllerFixture(tb testing.TB) (*PolicyController, *tcp.Conn, []float64) {
	tb.Helper()
	pol := nn.NewPolicy(nn.PolicyConfig{InDim: gr.StateDim, Seed: 1})
	pc := NewPolicyController(pol, nil, false, 0)
	loop := sim.NewLoop()
	sc := netem.Scenario{
		Name: "ctl", Rate: netem.FlatRate(netem.Mbps(48)),
		MinRTT: 20 * sim.Millisecond, QueueBytes: 1 << 20, Duration: sim.Second,
	}
	n := sc.Build(loop)
	fl := tcp.NewFlow(loop, n, 1, cc.MustNew("pure"), tcp.Options{})
	state := make([]float64, gr.StateDim)
	for i := range state {
		state[i] = float64(i%7) * 0.25
	}
	return pc, fl.Conn, state
}

// Recording must snapshot the masked state: the controller reuses one
// scratch buffer across intervals, so the trajectory entries have to be
// copies, not views of it.
func TestControllerRecordCopiesState(t *testing.T) {
	pc, conn, state := controllerFixture(t)
	pc.Record = true
	pc.Control(sim.Second, conn, state)
	first := append([]float64(nil), pc.States[0]...)
	state[0] += 100 // next interval's observation differs
	pc.Control(2*sim.Second, conn, state)
	if len(pc.States) != 2 {
		t.Fatalf("recorded %d states, want 2", len(pc.States))
	}
	for i := range first {
		if pc.States[0][i] != first[i] {
			t.Fatalf("recorded state 0 mutated at %d: %v != %v", i, pc.States[0][i], first[i])
		}
	}
	if pc.States[1][0] == pc.States[0][0] {
		t.Error("recorded states alias one buffer")
	}
}

// BenchmarkControllerControl pins the per-interval allocation budget of
// the hot decision path. The mask projection and mixture mean reuse
// controller scratch; what remains is Policy.Forward's internal
// allocations (the batched serve path eliminates those too).
func BenchmarkControllerControl(b *testing.B) {
	pc, conn, state := controllerFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc.Control(sim.Second, conn, state)
	}
}
