package rl

import (
	"context"
	"math"
	"math/rand"

	"sage/internal/nn"
)

// CRRConfig tunes the Critic-Regularized-Regression learner (Wang et al.
// 2020), the algorithm beneath Sage's Core Learning block.
type CRRConfig struct {
	Policy nn.PolicyConfig
	Critic nn.CriticConfig // used when CriticKind is "c51"
	NAF    nn.NAFConfig    // used when CriticKind is "naf"

	// CriticKind selects the Q-function family: "naf" (default — the
	// normalized-advantage quadratic critic, immune to the dataset's
	// action/return confounding; see nn.NAFCritic) or "c51" (the
	// categorical distributional critic of the paper's description).
	CriticKind string

	Gamma        float64 // discount (default 0.95)
	Batch        int     // sequences per step (default 16)
	SeqLen       int     // BPTT segment length (default 8)
	Steps        int     // gradient steps
	LRPolicy     float64 // default 1e-3
	LRCritic     float64 // default 1e-3
	TargetEvery  int     // hard target sync period (default 100)
	ActionSample int     // π-samples for the advantage baseline (default 4)
	Beta         float64 // advantage temperature for the "exp" filter (default 1)
	FilterClip   float64 // cap on the "exp" filter (default 20)
	// Filter selects the CRR action filter: "binary" (f = 1[A>0], the
	// scale-free variant, default) or "exp" (f = exp(A/β) clipped).
	Filter string
	// NStep is the n-step return length for the distributional TD target
	// (default 5): per-20 ms micro-actions need multi-step credit for the
	// critic to see the consequences of sustained window moves.
	NStep int
	// EventFrac is the fraction of sampled sequences anchored around large
	// window moves (default 0.5): backoffs are <1% of the pool but carry
	// the congestion response the policy must learn.
	EventFrac float64
	// ClipNorm is the global L2 gradient-clip threshold applied to both
	// networks before each optimizer step (default 10).
	ClipNorm float64
	// Workers shards each batch across goroutines with per-worker network
	// clones (gradients are summed before the optimizer step) — the
	// repository's analogue of the paper's general-purpose-cluster
	// training. 0/1 = serial.
	Workers int
	Seed    int64
}

// Fill applies defaults.
func (c CRRConfig) Fill() CRRConfig {
	if c.Gamma == 0 {
		c.Gamma = 0.99
	}
	if c.Batch == 0 {
		c.Batch = 16
	}
	if c.SeqLen == 0 {
		c.SeqLen = 8
	}
	if c.Steps == 0 {
		c.Steps = 1000
	}
	if c.LRPolicy == 0 {
		c.LRPolicy = 1e-3
	}
	if c.LRCritic == 0 {
		c.LRCritic = 1e-3
	}
	if c.TargetEvery == 0 {
		c.TargetEvery = 100
	}
	if c.ActionSample == 0 {
		c.ActionSample = 4
	}
	if c.Beta == 0 {
		c.Beta = 1
	}
	if c.FilterClip == 0 {
		c.FilterClip = 20
	}
	if c.Filter == "" {
		c.Filter = "binary"
	}
	if c.NStep == 0 {
		c.NStep = 5
	}
	if c.CriticKind == "" {
		c.CriticKind = "naf"
	}
	if c.EventFrac == 0 {
		c.EventFrac = 0.5
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 10
	}
	return c
}

// CRR holds the learner's networks.
type CRR struct {
	Cfg          CRRConfig
	Policy       *nn.Policy
	Critic       *nn.Critic    // c51 variant (nil under "naf")
	NAF          *nn.NAFCritic // naf variant (nil under "c51")
	targetPolicy *nn.Policy
	targetCritic *nn.Critic
	targetNAF    *nn.NAFCritic

	rng       *rand.Rand
	rngSrc    *rngSource // rng's source, snapshot-able for checkpoints
	optPi     *nn.Adam
	optQ      *nn.Adam
	workerSet []*worker
	// resumeWorkerRNG holds checkpointed per-worker RNG positions until the
	// worker set is (lazily) built.
	resumeWorkerRNG []uint64
	stepIdx         int
	lastBatchID     uint64 // sampler stream position before the current batch
	// Diagnostics updated each Train step.
	LastCriticLoss float64
	LastPolicyLoss float64
	LastMeanFilter float64
	// LastStats is the full diagnostic record of the most recent step.
	LastStats TrainStats
	// OnStep, when set, receives every step's TrainStats — the training
	// telemetry hook (sage-train wires it to the -metrics JSONL stream).
	// It runs on the training goroutine after the optimizer step;
	// mutating the learner from it is not supported.
	OnStep func(TrainStats)
	// GradGate, when set, inspects each step's stats after gradients are
	// accumulated but before clipping and the optimizer step. Returning
	// false discards the batch: gradients are zeroed, the parameters are
	// untouched, and the step is recorded with Skipped=true. This is the
	// sentinel's hook for rejecting batches whose loss or gradients have
	// gone non-finite before they can poison the weights.
	GradGate func(TrainStats) bool
}

// TrainStats is the per-gradient-step diagnostic record: losses, the
// CRR filter acceptance rate, the advantage distribution the filter saw,
// pre-clip gradient norms, and (under Workers>1) per-worker busy time
// for utilization accounting.
type TrainStats struct {
	Step           int       // 1-based step index within this learner
	CriticLoss     float64   // mean TD/CE loss per transition
	PolicyLoss     float64   // mean filtered −logπ per transition
	MeanFilter     float64   // mean CRR filter weight f
	FilterAccept   float64   // fraction of transitions with f > 0
	AdvMean        float64   // mean advantage Q(s,a) − V̂(s)
	AdvStd         float64   // advantage standard deviation
	GradNormPi     float64   // policy gradient L2 norm, before clipping
	GradNormQ      float64   // critic gradient L2 norm, before clipping
	GradNormPiClip float64   // policy gradient L2 norm after clipping (0 when skipped)
	GradNormQClip  float64   // critic gradient L2 norm after clipping (0 when skipped)
	LRPolicy       float64   // policy learning rate in effect this step
	LRCritic       float64   // critic learning rate in effect this step
	BatchID        uint64    // sampler stream position that produced this batch
	Skipped        bool      // true when GradGate rejected the batch (no optimizer step)
	Workers        int       // goroutines that produced the gradients (≥1)
	WorkerBusy     []float64 // per-worker busy seconds (nil when serial)
}

// shardStats accumulates one batch shard's raw sums; shards from
// parallel workers add element-wise before finishStep normalizes them.
type shardStats struct {
	cLoss, pLoss           float64
	fSum, advSum, advSqSum float64
	fCnt, accepted         int
}

func (a *shardStats) add(b shardStats) {
	a.cLoss += b.cLoss
	a.pLoss += b.pLoss
	a.fSum += b.fSum
	a.advSum += b.advSum
	a.advSqSum += b.advSqSum
	a.fCnt += b.fCnt
	a.accepted += b.accepted
}

// / NewCRR builds the learner for a dataset: network input sizes and
// normalizers come from the data.
func NewCRR(ds *Dataset, cfg CRRConfig) *CRR {
	cfg = cfg.Fill()
	cfg.Policy.InDim = ds.InDim()
	cfg.Policy.Seed = cfg.Seed
	cfg.Critic.InDim = ds.InDim()
	cfg.Critic.Seed = cfg.Seed
	cfg.NAF.InDim = ds.InDim()
	cfg.NAF.Seed = cfg.Seed
	src := newRNG(cfg.Seed + 101)
	l := &CRR{
		Cfg:    cfg,
		Policy: nn.NewPolicy(cfg.Policy),
		rng:    rand.New(src),
		rngSrc: src,
	}
	l.Policy.Norm = ds.Norm
	l.targetPolicy = nn.ClonePolicy(l.Policy)
	if cfg.CriticKind == "c51" {
		l.Critic = nn.NewCritic(cfg.Critic)
		l.Critic.Norm = ds.Norm
		l.targetCritic = nn.CloneCritic(l.Critic)
	} else {
		l.NAF = nn.NewNAFCritic(cfg.NAF)
		l.NAF.Norm = ds.Norm
		l.targetNAF = nn.CloneNAF(l.NAF)
	}
	l.optPi = nn.NewAdam(cfg.LRPolicy)
	l.optQ = nn.NewAdam(cfg.LRCritic)
	return l
}

// QValue evaluates the learner's Q function.
func (l *CRR) QValue(s []float64, a float64) float64 {
	if l.NAF != nil {
		return l.NAF.Q(s, a)
	}
	return l.Critic.Q(s, a)
}

func (l *CRR) criticModule() nn.Module {
	if l.NAF != nil {
		return l.NAF
	}
	return l.Critic
}

// Train runs cfg.Steps gradient steps over the dataset, stopping early
// (after completing the in-flight step) when ctx is cancelled — the
// SIGINT path saves a checkpoint at that point and resumes later. A nil
// ctx trains to completion. The progress callback (optional) receives
// (step, criticLoss, policyLoss).
func (l *CRR) Train(ctx context.Context, ds *Dataset, progress func(step int, criticLoss, policyLoss float64)) {
	for step := 1; step <= l.Cfg.Steps; step++ {
		if ctx != nil && ctx.Err() != nil {
			return
		}
		st := l.TrainStep(ds)
		if progress != nil {
			progress(step, st.CriticLoss, st.PolicyLoss)
		}
	}
}

// TrainStep runs exactly one gradient step (including any due target
// sync) and returns its stats. Train is a loop over TrainStep; the
// divergence sentinel drives TrainStep directly so it can inspect every
// step and roll back between them.
func (l *CRR) TrainStep(ds *Dataset) TrainStats {
	l.step(ds)
	// Target syncs are scheduled on the absolute step index (stepIdx
	// survives checkpoint resume), so a resumed run syncs at the same
	// global steps as an uninterrupted one.
	if l.stepIdx%l.Cfg.TargetEvery == 0 {
		nn.CopyParams(l.targetPolicy, l.Policy)
		if l.Critic != nil {
			nn.CopyParams(l.targetCritic, l.Critic)
		}
		if l.NAF != nil {
			nn.CopyParams(l.targetNAF, l.NAF)
		}
	}
	return l.LastStats
}

// StepsDone returns the absolute number of gradient steps this learner has
// applied, including steps restored from a checkpoint.
func (l *CRR) StepsDone() int { return l.stepIdx }

// netSet is one worker's view of the trainable networks (the targets are
// shared and only read).
type netSet struct {
	policy *nn.Policy
	critic *nn.Critic
	naf    *nn.NAFCritic
}

func (n netSet) qValue(s []float64, a float64) float64 {
	if n.naf != nil {
		return n.naf.Q(s, a)
	}
	return n.critic.Q(s, a)
}

func (n netSet) criticModule() nn.Module {
	if n.naf != nil {
		return n.naf
	}
	return n.critic
}

// step performs one combined policy-evaluation + policy-improvement update
// on a batch of sampled subsequences.
func (l *CRR) step(ds *Dataset) (criticLoss, policyLoss float64) {
	cfg := l.Cfg
	if cfg.Workers > 1 {
		return l.stepParallel(ds)
	}
	l.lastBatchID = l.rngSrc.State()
	nets := netSet{policy: l.Policy, critic: l.Critic, naf: l.NAF}
	st := l.processSeqs(nets, ds, l.rng, cfg.Batch)
	l.finishStep(st, nil)
	return l.LastCriticLoss, l.LastPolicyLoss
}

// processSeqs runs nSeqs sampled subsequences through policy evaluation and
// improvement, accumulating gradients into nets.
func (l *CRR) processSeqs(nets netSet, ds *Dataset, rng *rand.Rand, nSeqs int) (st shardStats) {
	cfg := l.Cfg
	for b := 0; b < nSeqs; b++ {
		tr, start := ds.sampleSeqPrioritized(rng, cfg.SeqLen, cfg.EventFrac)

		// --- Forward the online policy over the segment (for logπ grads) and
		// the target policy over the segment plus the n-step lookahead
		// (for TD target actions at s_{t+n}).
		h := nets.policy.InitHidden()
		ht := l.targetPolicy.InitHidden()
		heads := make([][]float64, cfg.SeqLen)
		caches := make([]*nn.PolicyCache, cfg.SeqLen)
		horizon := cfg.SeqLen + cfg.NStep
		if start+horizon > len(tr.States)-1 {
			horizon = len(tr.States) - 1 - start
		}
		tHead := make([][]float64, horizon+1) // target head at s_{start+j}
		for j := 0; j <= horizon; j++ {
			tHead[j], ht, _ = l.targetPolicy.Forward(tr.States[start+j], ht)
		}
		for i := 0; i < cfg.SeqLen; i++ {
			heads[i], h, caches[i] = nets.policy.Forward(tr.States[start+i], h)
		}

		// --- Policy evaluation (Eq. 5): distributional n-step TD.
		for i := 0; i < cfg.SeqLen; i++ {
			idx := start + i
			n := cfg.NStep
			if i+n > horizon {
				n = horizon - i
			}
			if n < 1 {
				continue
			}
			s, a := tr.States[idx], tr.Actions[idx]
			// n-step discounted reward sum.
			rSum, g := 0.0, 1.0
			for k := 0; k < n; k++ {
				rSum += g * tr.Rewards[idx+k]
				g *= cfg.Gamma
			}
			aNext := clampU(l.targetPolicy.GMM.Sample(tHead[i+n], rng))
			w := 1 / float64(cfg.Batch*cfg.SeqLen)
			if nets.naf != nil {
				y := rSum + g*l.targetNAF.Q(tr.States[idx+n], aNext)
				st.cLoss += nets.naf.TDBackward(s, a, y, w)
			} else {
				nextProbs, _ := l.targetCritic.Dist(tr.States[idx+n], aNext)
				m := nets.critic.Project(rSum, g, nextProbs)
				probs, cache := nets.critic.Dist(s, a)
				st.cLoss += nn.CELoss(probs, m)
				nets.critic.BackwardCE(cache, m, w)
			}
		}

		// --- Policy improvement (Eq. 6): advantage-filtered regression.
		dHidden := []float64(nil)
		for i := cfg.SeqLen - 1; i >= 0; i-- {
			idx := start + i
			s, a := tr.States[idx], tr.Actions[idx]
			q := nets.qValue(s, a)
			baseline := 0.0
			for j := 0; j < cfg.ActionSample; j++ {
				aj := clampU(nets.policy.GMM.Sample(heads[i], rng))
				baseline += nets.qValue(s, aj)
			}
			baseline /= float64(cfg.ActionSample)
			adv := q - baseline
			var f float64
			if cfg.Filter == "exp" {
				f = math.Exp(adv / cfg.Beta)
				if f > cfg.FilterClip {
					f = cfg.FilterClip
				}
			} else if adv > 0 {
				f = 1 // binary CRR: regress only onto better-than-policy actions
			}
			st.fSum += f
			st.fCnt++
			st.advSum += adv
			st.advSqSum += adv * adv
			if f > 0 {
				st.accepted++
			}
			logp, dp := nets.policy.GMM.LogProbGrad(heads[i], a)
			st.pLoss += -f * logp
			w := -f / float64(cfg.Batch*cfg.SeqLen)
			for k := range dp {
				dp[k] *= w
			}
			dHidden = nets.policy.Backward(caches[i], dp, dHidden)
		}
	}
	return st
}

// finishStep clips, applies the optimizer (unless GradGate rejects the
// batch), and updates diagnostics. workerBusy carries per-worker busy
// seconds under parallel training.
func (l *CRR) finishStep(st shardStats, workerBusy []float64) {
	cfg := l.Cfg
	gradQ := nn.GradNorm(l.criticModule())
	gradPi := nn.GradNorm(l.Policy)

	n := float64(cfg.Batch * cfg.SeqLen)
	l.LastCriticLoss = st.cLoss / n
	l.LastPolicyLoss = st.pLoss / n
	if st.fCnt > 0 {
		l.LastMeanFilter = st.fSum / float64(st.fCnt)
	}
	l.stepIdx++
	stats := TrainStats{
		Step:       l.stepIdx,
		CriticLoss: l.LastCriticLoss,
		PolicyLoss: l.LastPolicyLoss,
		MeanFilter: l.LastMeanFilter,
		GradNormPi: gradPi,
		GradNormQ:  gradQ,
		LRPolicy:   l.optPi.LR,
		LRCritic:   l.optQ.LR,
		BatchID:    l.lastBatchID,
		Workers:    1,
		WorkerBusy: workerBusy,
	}
	if cfg.Workers > 1 {
		stats.Workers = cfg.Workers
	}
	if st.fCnt > 0 {
		fn := float64(st.fCnt)
		stats.FilterAccept = float64(st.accepted) / fn
		stats.AdvMean = st.advSum / fn
		variance := st.advSqSum/fn - stats.AdvMean*stats.AdvMean
		if variance > 0 {
			stats.AdvStd = math.Sqrt(variance)
		}
	}
	if l.GradGate != nil && !l.GradGate(stats) {
		// Rejected: drop the accumulated gradients on the floor so the
		// parameters (and Adam's moments) never see them.
		stats.Skipped = true
		nn.ZeroGrads(l.Policy)
		nn.ZeroGrads(l.criticModule())
	} else {
		nn.ClipGrads(l.criticModule(), cfg.ClipNorm)
		nn.ClipGrads(l.Policy, cfg.ClipNorm)
		stats.GradNormQClip = nn.GradNorm(l.criticModule())
		stats.GradNormPiClip = nn.GradNorm(l.Policy)
		l.optQ.Step(l.criticModule())
		l.optPi.Step(l.Policy)
	}
	l.LastStats = stats
	if l.OnStep != nil {
		l.OnStep(stats)
	}
}

// LearningRates returns the optimizers' current step sizes (policy, critic).
func (l *CRR) LearningRates() (pi, q float64) { return l.optPi.LR, l.optQ.LR }

// SetLearningRates overrides the optimizers' step sizes — the sentinel's
// backoff/recovery lever. Adam's moments are preserved.
func (l *CRR) SetLearningRates(pi, q float64) {
	l.optPi.LR = pi
	l.optQ.LR = q
}

// CriticModule returns whichever critic variant is active, as a module —
// for parameter sweeps and diagnostics outside the package.
func (l *CRR) CriticModule() nn.Module { return l.criticModule() }

// ParamsFinite reports whether every parameter of the online networks is
// finite — the sentinel's corruption sweep. (The targets are periodic
// copies of the online networks, so they cannot be corrupt while the
// online ones are clean.)
func (l *CRR) ParamsFinite() bool {
	return nn.FiniteParams(l.Policy) && nn.FiniteParams(l.criticModule())
}

// SkipBatch deterministically advances every batch-sampler stream by one
// draw, changing the composition of the next sampled batch without
// consuming a gradient step — the sentinel's "skip the offending batch"
// primitive after a rollback. The shift is a pure function of the stream
// state, so a run that rolls back and skips is itself reproducible.
func (l *CRR) SkipBatch() {
	l.rngSrc.Uint64()
	for _, w := range l.workerSet {
		w.src.Uint64()
	}
	// Workers not built yet (fresh from a checkpoint): advance the
	// checkpointed positions they will be built from.
	for i, s := range l.resumeWorkerRNG {
		src := &rngSource{s: s}
		src.Uint64()
		l.resumeWorkerRNG[i] = src.State()
	}
}

func clampU(u float64) float64 {
	if u > 1 {
		return 1
	}
	if u < -1 {
		return -1
	}
	return u
}

// finite reports whether x is a usable number (not NaN, not ±Inf).
func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
