package rl

import (
	"math"
	"testing"

	"sage/internal/cc"
	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/nn"
	"sage/internal/sim"
	"sage/internal/tcp"
)

// TestPolicyControllerNaNStateDoesNotPanic drives the controller with
// poisoned observations: the contract is "no panic" — the non-finite
// window it produces is the runtime guardian's problem (and its signal).
func TestPolicyControllerNaNStateDoesNotPanic(t *testing.T) {
	pol := nn.NewPolicy(nn.PolicyConfig{InDim: gr.StateDim, Enc: 8, Hidden: 4, K: 2, Seed: 1})
	ctl := NewPolicyController(pol, nil, false, 1)

	loop := sim.NewLoop()
	n := netem.New(loop, netem.Config{
		Rate: netem.FlatRate(netem.Mbps(12)), MinRTT: 20 * sim.Millisecond,
		Queue: netem.NewDropTail(1 << 20),
	})
	fl := tcp.NewFlow(loop, n, 1, cc.MustNew("pure"), tcp.Options{})

	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic on NaN state: %v", r)
		}
	}()
	state := make([]float64, gr.StateDim)
	state[7] = math.NaN()
	state[12] = math.Inf(1)
	ctl.Control(0, fl.Conn, state)
	// A second tick runs with the now-poisoned hidden state and cwnd.
	ctl.Control(20*sim.Millisecond, fl.Conn, state)

	// Reset must clear the recurrent state so a healed policy restarts
	// clean (the guardian calls this on re-admission).
	ctl.Reset()
	fl.Conn.SetCwnd(10)
	good := make([]float64, gr.StateDim)
	ctl.Control(40*sim.Millisecond, fl.Conn, good)
	if math.IsNaN(fl.Conn.Cwnd) {
		t.Fatal("cwnd still NaN after Reset and a finite observation")
	}
}
