package rl

// rngSource is a splitmix64 PRNG implementing rand.Source64 with
// snapshot-able state. math/rand's default source hides its state, so a
// checkpoint could not capture "where the sampler was" and a resumed run
// would draw a different batch sequence; with this source the checkpoint
// stores one uint64 per stream and resume is bitwise-deterministic.
// (rand.Rand adds no hidden state of its own on the Intn/Float64 paths the
// learner uses — every draw maps directly onto Source64 outputs.)
type rngSource struct{ s uint64 }

func newRNG(seed int64) *rngSource {
	return &rngSource{s: uint64(seed)}
}

func (r *rngSource) Seed(s int64) { r.s = uint64(s) }

func (r *rngSource) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rngSource) Int63() int64 { return int64(r.Uint64() >> 1) }

// State returns the stream position for checkpointing.
func (r *rngSource) State() uint64 { return r.s }

// SetState rewinds/advances the stream to a checkpointed position.
func (r *rngSource) SetState(s uint64) { r.s = s }
