package rl

import (
	"context"
	"fmt"
	"math/rand"

	"sage/internal/cc"
	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/nn"
	"sage/internal/rollout"
)

// OnlineRLConfig tunes the online off-policy actor-critic baseline
// ("OnlineRL" in Fig. 9) and its hybrid variants (Orca, Orcav2, DeepCC):
// the same networks and update rule as Sage, but the data is collected by
// the agent itself, iteratively, from live environments — exactly the
// paradigm whose scaling trouble Section 6.2 demonstrates.
type OnlineRLConfig struct {
	CRR        CRRConfig
	GR         gr.Config
	Scenarios  []netem.Scenario
	Rounds     int    // environment interactions
	StepsPer   int    // gradient steps after each rollout
	Underlying string // "pure" for clean-slate, "cubic" for hybrid (Orca/DeepCC)
	Mask       []int
	Seed       int64
}

func (c OnlineRLConfig) fill() OnlineRLConfig {
	if c.Rounds == 0 {
		c.Rounds = 10
	}
	if c.StepsPer == 0 {
		c.StepsPer = 50
	}
	if c.Underlying == "" {
		c.Underlying = "pure"
	}
	if c.Mask == nil {
		c.Mask = gr.MaskFull()
	}
	return c
}

// TrainOnlineRL runs the online loop: rollout the current (stochastic)
// policy on a random training environment, append the experience to the
// replay data, and take gradient steps. It returns the trained policy.
// Divergence — a non-finite loss or non-finite weights after a round of
// updates — aborts with an error instead of silently emitting a NaN
// policy (the failure mode Section 6.2 observes for this paradigm).
func TrainOnlineRL(cfg OnlineRLConfig) (*nn.Policy, error) {
	cfg = cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed + 555))

	ds := &Dataset{Mask: cfg.Mask}
	crrCfg := cfg.CRR
	crrCfg.Seed = cfg.Seed

	// Bootstrap replay with one random-ish rollout per round-robin env so
	// the normalizer has data.
	var learner *CRR
	for round := 0; round < cfg.Rounds; round++ {
		sc := cfg.Scenarios[rng.Intn(len(cfg.Scenarios))]
		var ctl *PolicyController
		if learner != nil {
			ctl = NewPolicyController(learner.Policy, cfg.Mask, true, cfg.Seed+int64(round))
		} else {
			// Before the first update the policy does not exist yet: run the
			// underlying scheme alone to seed the buffer.
			ctl = nil
		}
		opt := rollout.Options{GR: cfg.GR, CollectSteps: true}
		if ctl != nil {
			opt.Controller = ctl
		}
		res := rollout.Run(sc, cc.MustNew(cfg.Underlying), opt)
		tr := Traj{Scheme: "online", Env: sc.Name}
		for _, s := range res.Steps {
			tr.States = append(tr.States, gr.ApplyMask(s.State, cfg.Mask))
			tr.Actions = append(tr.Actions, ActionToU(s.Action))
			tr.Rewards = append(tr.Rewards, s.Reward)
		}
		if len(tr.States) > 1 {
			ds.Trajs = append(ds.Trajs, tr)
		}
		if learner == nil {
			if len(ds.Trajs) == 0 {
				continue
			}
			// Fit the normalizer on the seed data and build the learner.
			var sample [][]float64
			for _, t := range ds.Trajs {
				sample = append(sample, t.States...)
			}
			ds.Norm = nn.FitNormalizer(sample)
			learner = NewCRR(ds, crrCfg)
		}
		steps := cfg.StepsPer
		saved := learner.Cfg.Steps
		learner.Cfg.Steps = steps
		learner.Train(context.Background(), ds, nil)
		learner.Cfg.Steps = saved
		if !finite(learner.LastCriticLoss) || !finite(learner.LastPolicyLoss) || !learner.ParamsFinite() {
			return nil, fmt.Errorf("rl: online RL diverged in round %d: non-finite loss or weights", round)
		}
	}
	if learner == nil {
		// Degenerate config; return an untrained policy of the right shape.
		pc := crrCfg.Fill().Policy
		pc.InDim = len(cfg.Mask)
		return nn.NewPolicy(pc), nil
	}
	return learner.Policy, nil
}
