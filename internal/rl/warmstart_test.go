package rl

import (
	"testing"

	"sage/internal/nn"
)

func warmstartDS() *Dataset {
	ds := &Dataset{Mask: []int{0, 1}}
	tr := Traj{Scheme: "const", Env: "synthetic"}
	for i := 0; i < 16; i++ {
		tr.States = append(tr.States, []float64{1, -1})
		tr.Actions = append(tr.Actions, 0.25)
		tr.Rewards = append(tr.Rewards, 1)
	}
	ds.Trajs = []Traj{tr}
	ds.Norm = nn.FitNormalizer(tr.States)
	return ds
}

func paramsEqual(a, b nn.Module) bool {
	ap, bp := a.Params(), b.Params()
	for i := range ap {
		for j := range ap[i].Data {
			if ap[i].Data[j] != bp[i].Data[j] {
				return false
			}
		}
	}
	return true
}

func TestSeedFromPolicyCopiesBothNets(t *testing.T) {
	ds := warmstartDS()
	cfg := tinyPolicyCfg()
	learner := NewCRR(ds, CRRConfig{Policy: cfg, Steps: 1, Batch: 2, SeqLen: 2, Seed: 1})

	src := nn.NewPolicy(nn.PolicyConfig{InDim: 2, Enc: cfg.Enc, Hidden: cfg.Hidden, ResBlocks: cfg.ResBlocks, K: cfg.K, Seed: 77})
	if paramsEqual(learner.Policy, src) {
		t.Fatal("fresh learner already matches the seed source")
	}
	if err := learner.SeedFromPolicy(src); err != nil {
		t.Fatal(err)
	}
	if !paramsEqual(learner.Policy, src) {
		t.Fatal("policy params not copied")
	}
	if !paramsEqual(learner.targetPolicy, src) {
		t.Fatal("target policy params not copied — advantage baseline would drift from the seed")
	}
}

func TestSeedFromPolicyRejectsMismatchedShapes(t *testing.T) {
	learner := NewCRR(warmstartDS(), CRRConfig{Policy: tinyPolicyCfg(), Steps: 1, Batch: 2, SeqLen: 2, Seed: 1})
	if err := learner.SeedFromPolicy(nil); err == nil {
		t.Fatal("nil seed accepted")
	}
	wrong := nn.NewPolicy(nn.PolicyConfig{InDim: 2, Enc: 20, Hidden: 10, ResBlocks: 1, K: 2, Seed: 3})
	if err := learner.SeedFromPolicy(wrong); err == nil {
		t.Fatal("architecture mismatch accepted")
	}
}
