package rl

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"sage/internal/cc"
	"sage/internal/collector"
	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/nn"
	"sage/internal/rollout"
	"sage/internal/sim"
)

func tinyScenarios() []netem.Scenario {
	return netem.SetI(netem.SetIOptions{Level: netem.GridTiny, Duration: 3 * sim.Second})[:3]
}

func tinyPool(t *testing.T) *collector.Pool {
	t.Helper()
	p, err := collector.Collect(context.Background(), []string{"cubic", "vegas"}, tinyScenarios(), collector.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func tinyPolicyCfg() nn.PolicyConfig {
	return nn.PolicyConfig{Enc: 12, Hidden: 6, ResBlocks: 1, K: 2}
}

func TestBuildDatasetMasksAndTransforms(t *testing.T) {
	pool := tinyPool(t)
	mask := gr.MaskNoMinMax()
	ds := BuildDataset(pool, mask)
	if ds.InDim() != len(mask) {
		t.Fatalf("dim %d", ds.InDim())
	}
	if ds.Transitions() == 0 {
		t.Fatal("empty dataset")
	}
	for _, tr := range ds.Trajs {
		if len(tr.States[0]) != len(mask) {
			t.Fatal("mask not applied")
		}
		for _, a := range tr.Actions {
			if a < -1 || a > 1 {
				t.Fatalf("u-action %v out of range", a)
			}
		}
	}
	if ds.Norm == nil || len(ds.Norm.Mean) != len(mask) {
		t.Fatal("normalizer not fitted")
	}
}

func TestBCConvergesOnConstantPolicy(t *testing.T) {
	// A synthetic dataset where the expert always emits u=0.5 in a fixed
	// state: BC must converge its GMM mean toward 0.5.
	ds := &Dataset{Mask: []int{0, 1}}
	tr := Traj{Scheme: "const", Env: "synthetic"}
	for i := 0; i < 100; i++ {
		tr.States = append(tr.States, []float64{1, -1})
		tr.Actions = append(tr.Actions, 0.5)
		tr.Rewards = append(tr.Rewards, 1)
	}
	ds.Trajs = []Traj{tr}
	ds.Norm = nn.FitNormalizer(tr.States)
	pol, err := TrainBC(ds, BCConfig{Policy: nn.PolicyConfig{Enc: 8, Hidden: 4, ResBlocks: 1, K: 2}, Steps: 250, Batch: 4, SeqLen: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	head, _, _ := pol.Forward([]float64{1, -1}, pol.InitHidden())
	if got := pol.GMM.Mean(head); math.Abs(got-0.5) > 0.15 {
		t.Fatalf("BC mean action %v, want ~0.5", got)
	}
}

func TestCRRPrefersHighRewardActions(t *testing.T) {
	// Synthetic bandit-ish dataset: in the same state, action +0.5 earns
	// reward 1 and action −0.5 earns 0. CRR's advantage filter must tilt
	// the policy toward +0.5 while BC would sit at the average (0).
	ds := &Dataset{Mask: []int{0, 1}}
	good := Traj{Scheme: "good", Env: "synthetic"}
	bad := Traj{Scheme: "bad", Env: "synthetic"}
	for i := 0; i < 120; i++ {
		good.States = append(good.States, []float64{1, -1})
		good.Actions = append(good.Actions, 0.5)
		good.Rewards = append(good.Rewards, 1)
		bad.States = append(bad.States, []float64{1, -1})
		bad.Actions = append(bad.Actions, -0.5)
		bad.Rewards = append(bad.Rewards, 0)
	}
	ds.Trajs = []Traj{good, bad}
	ds.Norm = nn.FitNormalizer(good.States)
	learner := NewCRR(ds, CRRConfig{
		Policy: nn.PolicyConfig{Enc: 8, Hidden: 4, ResBlocks: 1, K: 2},
		Critic: nn.CriticConfig{Hidden: 16, Atoms: 11},
		Steps:  400, Batch: 8, SeqLen: 2, Seed: 3,
	})
	learner.Train(context.Background(), ds, nil)
	// The critic must rank the good action above the bad one.
	s := []float64{1, -1}
	if qGood, qBad := learner.QValue(s, 0.5), learner.QValue(s, -0.5); qGood <= qBad {
		t.Fatalf("critic ranking wrong: Q(+0.5)=%v <= Q(-0.5)=%v", qGood, qBad)
	}
	head, _, _ := learner.Policy.Forward(s, learner.Policy.InitHidden())
	if got := learner.Policy.GMM.Mean(head); got < 0.1 {
		t.Fatalf("CRR mean action %v, want tilted toward +0.5", got)
	}
}

func TestPolicyControllerDrivesFlow(t *testing.T) {
	pol := nn.NewPolicy(nn.PolicyConfig{InDim: gr.StateDim, Enc: 8, Hidden: 4, K: 2, Seed: 1})
	sc := tinyScenarios()[0]
	ctl := NewPolicyController(pol, nil, true, 7)
	ctl.Record = true
	res := rollout.Run(sc, cc.MustNew("pure"), rollout.Options{Controller: ctl})
	if res.ThroughputBps <= 0 {
		t.Fatal("no traffic")
	}
	if len(ctl.States) == 0 || len(ctl.Actions) != len(ctl.States) {
		t.Fatalf("recording broken: %d states, %d actions", len(ctl.States), len(ctl.Actions))
	}
	for _, u := range ctl.Actions {
		if u < -1 || u > 1 {
			t.Fatalf("action %v out of range", u)
		}
	}
}

func TestTrainOnlineRLProducesUsablePolicy(t *testing.T) {
	pol, err := TrainOnlineRL(OnlineRLConfig{
		CRR: CRRConfig{
			Policy: tinyPolicyCfg(),
			Critic: nn.CriticConfig{Hidden: 12, Atoms: 11},
			Batch:  4, SeqLen: 4,
		},
		Scenarios: tinyScenarios(),
		Rounds:    3,
		StepsPer:  10,
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pol == nil {
		t.Fatal("nil policy")
	}
	sc := tinyScenarios()[0]
	ctl := NewPolicyController(pol, nil, false, 1)
	res := rollout.Run(sc, cc.MustNew("pure"), rollout.Options{Controller: ctl})
	if res.ThroughputBps <= 0 {
		t.Fatal("online policy moved no traffic")
	}
}

func TestTrainAuroraAndGenet(t *testing.T) {
	for _, curriculum := range []bool{false, true} {
		pol, err := TrainAurora(AuroraConfig{
			Policy:     tinyPolicyCfg(),
			Scenarios:  tinyScenarios(),
			Episodes:   4,
			Curriculum: curriculum,
			Seed:       5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if pol == nil {
			t.Fatal("nil policy")
		}
		if pol.Cfg.NoGRU != true {
			t.Fatal("Aurora must be feed-forward")
		}
		ctl := NewPolicyController(pol, nil, false, 1)
		res := rollout.Run(tinyScenarios()[0], cc.MustNew("pure"), rollout.Options{Controller: ctl})
		if res.ThroughputBps <= 0 {
			t.Fatalf("aurora(curriculum=%v) moved no traffic", curriculum)
		}
	}
}

func TestTrainIndigoImitatesOracle(t *testing.T) {
	scens := tinyScenarios()[:2]
	pol, err := TrainIndigo(IndigoConfig{
		Policy:      tinyPolicyCfg(),
		Scenarios:   scens,
		DaggerIters: 2,
		StepsPer:    60,
		Seed:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl := NewPolicyController(pol, nil, false, 1)
	res := rollout.Run(scens[0], cc.MustNew("pure"), rollout.Options{Controller: ctl})
	if res.ThroughputBps <= 0 {
		t.Fatal("indigo moved no traffic")
	}
	// The oracle holds cwnd near the BDP: decent utilization, bounded delay.
	util := res.ThroughputBps / scens[0].Rate.At(0)
	if util < 0.2 {
		t.Fatalf("indigo utilization %.2f", util)
	}
}

func TestDifficultyOrdering(t *testing.T) {
	small := netem.Scenario{Name: "flat-a", Rate: netem.FlatRate(netem.Mbps(12)), MinRTT: 10 * sim.Millisecond}
	big := netem.Scenario{Name: "flat-b", Rate: netem.FlatRate(netem.Mbps(192)), MinRTT: 160 * sim.Millisecond}
	step := netem.Scenario{Name: "step-x", Rate: netem.FlatRate(netem.Mbps(12)), MinRTT: 10 * sim.Millisecond}
	if difficulty(small) >= difficulty(big) {
		t.Fatal("BDP ordering")
	}
	if difficulty(step) <= difficulty(small) {
		t.Fatal("step scenarios must rank harder")
	}
}

func TestSampleSeqBounds(t *testing.T) {
	ds := &Dataset{Mask: []int{0}}
	ds.Trajs = []Traj{{States: [][]float64{{1}, {2}, {3}}, Actions: []float64{0, 0, 0}, Rewards: []float64{0, 0, 0}}}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		tr, start := ds.sampleSeq(rng, 2)
		if start+2 >= len(tr.States)+1 {
			t.Fatalf("start %d overruns", start)
		}
	}
	// Sequence longer than any trajectory falls back gracefully.
	tr, start := ds.sampleSeq(rng, 10)
	if tr == nil || start != 0 {
		t.Fatal("fallback failed")
	}
}

func TestParallelTrainingMatchesShapes(t *testing.T) {
	pool := tinyPool(t)
	ds := BuildDataset(pool, nil)
	cfg := CRRConfig{
		Policy: tinyPolicyCfg(),
		Steps:  20, Batch: 8, SeqLen: 4, Workers: 4, Seed: 9,
	}
	learner := NewCRR(ds, cfg)
	learner.Train(context.Background(), ds, nil)
	if learner.LastCriticLoss != learner.LastCriticLoss { // NaN guard
		t.Fatal("NaN critic loss under parallel training")
	}
	// The trained policy must produce finite in-range actions.
	h := learner.Policy.InitHidden()
	head, _, _ := learner.Policy.Forward(ds.Trajs[0].States[0], h)
	u := learner.Policy.GMM.Mean(head)
	if u != u {
		t.Fatal("NaN action after parallel training")
	}
	// Workers are cached across steps.
	if len(learner.workerSet) != 4 {
		t.Fatalf("workers = %d", len(learner.workerSet))
	}
}

func TestParallelAndSerialBothLearnBandit(t *testing.T) {
	// The synthetic good/bad-action dataset from the serial test, trained
	// with 4 workers: the same qualitative outcome must hold.
	ds := &Dataset{Mask: []int{0, 1}}
	good := Traj{Scheme: "good", Env: "synthetic"}
	bad := Traj{Scheme: "bad", Env: "synthetic"}
	for i := 0; i < 120; i++ {
		good.States = append(good.States, []float64{1, -1})
		good.Actions = append(good.Actions, 0.5)
		good.Rewards = append(good.Rewards, 1)
		bad.States = append(bad.States, []float64{1, -1})
		bad.Actions = append(bad.Actions, -0.5)
		bad.Rewards = append(bad.Rewards, 0)
	}
	ds.Trajs = []Traj{good, bad}
	ds.Norm = nn.FitNormalizer(good.States)
	learner := NewCRR(ds, CRRConfig{
		Policy: nn.PolicyConfig{Enc: 8, Hidden: 4, ResBlocks: 1, K: 2},
		Steps:  400, Batch: 8, SeqLen: 2, Workers: 4, Seed: 3,
	})
	learner.Train(context.Background(), ds, nil)
	s := []float64{1, -1}
	if qG, qB := learner.QValue(s, 0.5), learner.QValue(s, -0.5); qG <= qB {
		t.Fatalf("parallel critic ranking wrong: %v <= %v", qG, qB)
	}
}

func TestTrainStatsTelemetry(t *testing.T) {
	pool := tinyPool(t)
	ds := BuildDataset(pool, nil)
	for _, workers := range []int{1, 3} {
		learner := NewCRR(ds, CRRConfig{
			Policy: tinyPolicyCfg(),
			Steps:  10, Batch: 6, SeqLen: 4, Workers: workers, Seed: 5,
		})
		var got []TrainStats
		learner.OnStep = func(s TrainStats) { got = append(got, s) }
		learner.Train(context.Background(), ds, nil)
		if len(got) != 10 {
			t.Fatalf("workers=%d: %d stats records, want 10", workers, len(got))
		}
		for i, s := range got {
			if s.Step != i+1 {
				t.Fatalf("workers=%d: step %d at index %d", workers, s.Step, i)
			}
			if s.CriticLoss != s.CriticLoss || s.PolicyLoss != s.PolicyLoss {
				t.Fatalf("workers=%d step %d: NaN loss", workers, s.Step)
			}
			if s.GradNormQ <= 0 {
				t.Fatalf("workers=%d step %d: critic grad norm %v", workers, s.Step, s.GradNormQ)
			}
			if s.FilterAccept < 0 || s.FilterAccept > 1 {
				t.Fatalf("filter accept %v", s.FilterAccept)
			}
			if s.AdvStd < 0 {
				t.Fatalf("adv std %v", s.AdvStd)
			}
			if s.Workers != workers {
				t.Fatalf("workers = %d, want %d", s.Workers, workers)
			}
			if workers > 1 {
				if len(s.WorkerBusy) != workers {
					t.Fatalf("worker busy = %v", s.WorkerBusy)
				}
			} else if s.WorkerBusy != nil {
				t.Fatal("serial step reported worker busy times")
			}
		}
		if learner.LastStats.Step != 10 {
			t.Fatalf("LastStats.Step = %d", learner.LastStats.Step)
		}
	}
}

// TestStatsHookDoesNotPerturbTraining proves the telemetry hook is
// observational: identical seeds with and without OnStep produce
// bitwise-identical loss sequences.
func TestStatsHookDoesNotPerturbTraining(t *testing.T) {
	pool := tinyPool(t)
	ds := BuildDataset(pool, nil)
	run := func(hook bool) []float64 {
		learner := NewCRR(ds, CRRConfig{Policy: tinyPolicyCfg(), Steps: 8, Batch: 4, SeqLen: 4, Seed: 11})
		if hook {
			learner.OnStep = func(TrainStats) {}
		}
		var losses []float64
		learner.Train(context.Background(), ds, func(step int, cl, pl float64) { losses = append(losses, cl, pl) })
		return losses
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loss %d differs with stats hook on: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCheckpointResume(t *testing.T) {
	pool := tinyPool(t)
	ds := BuildDataset(pool, nil)
	cfg := CRRConfig{Policy: tinyPolicyCfg(), Steps: 20, Batch: 4, SeqLen: 4, Seed: 6}
	learner := NewCRR(ds, cfg)
	learner.Train(context.Background(), ds, nil)

	path := t.TempDir() + "/ckpt.gob.gz"
	if err := learner.SaveCheckpoint(path, 20); err != nil {
		t.Fatal(err)
	}
	resumed, steps, err := LoadCheckpoint(path, ds)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 20 {
		t.Fatalf("steps = %d", steps)
	}
	// Restored policy behaves identically.
	s := ds.Trajs[0].States[0]
	h1, _, _ := learner.Policy.Forward(s, learner.Policy.InitHidden())
	h2, _, _ := resumed.Policy.Forward(s, resumed.Policy.InitHidden())
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatal("restored policy diverges")
		}
	}
	// Restored Q function behaves identically.
	if learner.QValue(s, 0.3) != resumed.QValue(s, 0.3) {
		t.Fatal("restored critic diverges")
	}
	// And training can continue.
	resumed.Cfg.Steps = 5
	resumed.Train(context.Background(), ds, nil)
	if _, _, err := LoadCheckpoint(t.TempDir()+"/missing", ds); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}

// TestResumeBitwiseDeterministic is the checkpoint contract: training N
// steps uninterrupted and training K steps → checkpoint → reload → N−K
// steps produce identical loss sequences, serial and data-parallel alike.
// It holds because checkpoints carry the Adam moments, every RNG stream
// position, and the absolute step index the target-network sync schedule
// keys off.
func TestResumeBitwiseDeterministic(t *testing.T) {
	pool := tinyPool(t)
	ds := BuildDataset(pool, nil)
	for _, workers := range []int{1, 3} {
		cfg := CRRConfig{Policy: tinyPolicyCfg(), Steps: 12, Batch: 4, SeqLen: 4, Seed: 17, Workers: workers}

		ref := NewCRR(ds, cfg)
		var want []float64
		ref.Train(context.Background(), ds, func(step int, cl, pl float64) { want = append(want, cl, pl) })
		if len(want) != 24 {
			t.Fatalf("workers=%d: reference recorded %d losses", workers, len(want))
		}

		head := NewCRR(ds, cfg)
		head.Cfg.Steps = 5
		var got []float64
		head.Train(context.Background(), ds, func(step int, cl, pl float64) { got = append(got, cl, pl) })
		path := t.TempDir() + "/ckpt.gob.gz"
		if err := head.SaveCheckpoint(path, head.StepsDone()); err != nil {
			t.Fatal(err)
		}
		resumed, steps, err := LoadCheckpoint(path, ds)
		if err != nil {
			t.Fatal(err)
		}
		if steps != 5 {
			t.Fatalf("workers=%d: resumed at step %d", workers, steps)
		}
		resumed.Cfg.Steps = cfg.Steps - steps
		resumed.Train(context.Background(), ds, func(step int, cl, pl float64) { got = append(got, cl, pl) })

		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d losses vs %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: loss %d differs after resume: %v vs %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestTrainCancellation: a cancelled context stops training between
// gradient steps, and StepsDone reports exactly how far it got.
func TestTrainCancellation(t *testing.T) {
	pool := tinyPool(t)
	ds := BuildDataset(pool, nil)
	learner := NewCRR(ds, CRRConfig{Policy: tinyPolicyCfg(), Steps: 1000, Batch: 4, SeqLen: 4, Seed: 3})
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	learner.Train(ctx, ds, func(step int, cl, pl float64) {
		ran = step
		if step == 3 {
			cancel()
		}
	})
	if ran != 3 {
		t.Fatalf("trained %d steps after cancel at 3", ran)
	}
	if learner.StepsDone() != 3 {
		t.Fatalf("StepsDone = %d", learner.StepsDone())
	}
}
