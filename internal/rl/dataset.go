// Package rl implements the Core Learning block (Section 4.2): the CRR-based
// offline learner that trains Sage's policy from the pool, plus the learning
// baselines of the ML league (behavioral cloning and its variants, online
// off-policy RL, Aurora-style on-policy policy gradient, Genet-style
// curriculum, Orca/DeepCC-style hybrid control, and Indigo-style oracle
// imitation).
package rl

import (
	"math"
	"math/rand"

	"sage/internal/collector"
	"sage/internal/gr"
	"sage/internal/nn"
)

// ActionToU maps the GR action (cwnd ratio) into the learner's action space
// u = clamp(log2(a), −1, 1); ratios are multiplicative, so the log makes the
// GMM's support symmetric around "hold".
func ActionToU(ratio float64) float64 {
	if ratio <= 0 {
		return -1
	}
	u := math.Log2(ratio)
	if u > 1 {
		u = 1
	}
	if u < -1 {
		u = -1
	}
	return u
}

// UToRatio is the inverse map applied at deployment: cwnd *= 2^u.
func UToRatio(u float64) float64 {
	if u > 1 {
		u = 1
	}
	if u < -1 {
		u = -1
	}
	return math.Exp2(u)
}

// Traj is one trajectory in learner form.
type Traj struct {
	Scheme  string
	Env     string
	States  [][]float64 // masked state vectors
	Actions []float64   // u-space actions
	Rewards []float64
}

// Dataset is the pool converted for training: masked states, log-ratio
// actions, and a fitted input normalizer.
type Dataset struct {
	Mask  []int
	Trajs []Traj
	Norm  *nn.Normalizer

	events []eventPos // lazily built index of large-action steps
}

// BuildDataset converts a collector pool, projecting states through mask
// (nil = all 69 signals) and fitting the normalizer.
func BuildDataset(pool *collector.Pool, mask []int) *Dataset {
	if mask == nil {
		mask = gr.MaskFull()
	}
	ds := &Dataset{Mask: mask}
	var sample [][]float64
	for _, tr := range pool.Trajs {
		if len(tr.Steps) < 2 {
			continue
		}
		t := Traj{Scheme: tr.Scheme, Env: tr.Env}
		for _, s := range tr.Steps {
			t.States = append(t.States, gr.ApplyMask(s.State, mask))
			t.Actions = append(t.Actions, ActionToU(s.Action))
			t.Rewards = append(t.Rewards, s.Reward)
		}
		ds.Trajs = append(ds.Trajs, t)
	}
	// Fit the normalizer on a subsample to bound memory.
	stride := 1
	if n := countStates(ds); n > 50000 {
		stride = n / 50000
	}
	i := 0
	for _, t := range ds.Trajs {
		for _, s := range t.States {
			if i%stride == 0 {
				sample = append(sample, s)
			}
			i++
		}
	}
	ds.Norm = nn.FitNormalizer(sample)
	return ds
}

func countStates(ds *Dataset) int {
	n := 0
	for _, t := range ds.Trajs {
		n += len(t.States)
	}
	return n
}

// Transitions returns the number of usable (s,a,r,s') tuples.
func (ds *Dataset) Transitions() int {
	n := 0
	for _, t := range ds.Trajs {
		if len(t.States) > 1 {
			n += len(t.States) - 1
		}
	}
	return n
}

// InDim returns the masked input dimension.
func (ds *Dataset) InDim() int { return len(ds.Mask) }

// sampleSeq draws a random subsequence of length L with a valid next state
// after every step (so index i+1 exists for TD targets).
func (ds *Dataset) sampleSeq(rng *rand.Rand, L int) (t *Traj, start int) {
	for tries := 0; tries < 100; tries++ {
		tr := &ds.Trajs[rng.Intn(len(ds.Trajs))]
		if len(tr.States) < L+1 {
			continue
		}
		return tr, rng.Intn(len(tr.States) - L)
	}
	// Fall back to the longest trajectory.
	best := &ds.Trajs[0]
	for i := range ds.Trajs {
		if len(ds.Trajs[i].States) > len(best.States) {
			best = &ds.Trajs[i]
		}
	}
	return best, 0
}

// eventPos locates "eventful" steps: large window moves (slow-start bursts,
// loss backoffs). They are a sub-percent fraction of the pool but carry all
// of the policy's congestion-response information, so the learner
// oversamples sequences around them (the offline-RL analogue of prioritized
// replay).
type eventPos struct {
	traj, step int
}

func (ds *Dataset) buildEventIndex() {
	if ds.events != nil {
		return
	}
	ds.events = []eventPos{}
	for ti := range ds.Trajs {
		tr := &ds.Trajs[ti]
		for si, u := range tr.Actions {
			if u >= 0.15 || u <= -0.15 {
				ds.events = append(ds.events, eventPos{ti, si})
			}
		}
	}
}

// sampleSeqPrioritized is sampleSeq, but with probability eventFrac the
// window is anchored around an eventful step.
func (ds *Dataset) sampleSeqPrioritized(rng *rand.Rand, L int, eventFrac float64) (*Traj, int) {
	ds.buildEventIndex()
	if len(ds.events) == 0 || rng.Float64() >= eventFrac {
		return ds.sampleSeq(rng, L)
	}
	for tries := 0; tries < 20; tries++ {
		ev := ds.events[rng.Intn(len(ds.events))]
		tr := &ds.Trajs[ev.traj]
		if len(tr.States) < L+1 {
			continue
		}
		start := ev.step - rng.Intn(L)
		if start < 0 {
			start = 0
		}
		if start > len(tr.States)-L-1 {
			start = len(tr.States) - L - 1
		}
		return tr, start
	}
	return ds.sampleSeq(rng, L)
}
