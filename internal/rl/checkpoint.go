package rl

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"os"

	"sage/internal/nn"
)

// checkpointBlob serializes a learner mid-training: both online networks,
// both targets, and the normalizer — enough to resume a long (paper-scale)
// training run across process restarts. Optimizer moments are intentionally
// not saved; Adam re-warms within a few hundred steps.
type checkpointBlob struct {
	Cfg        CRRConfig
	Norm       nn.Normalizer
	Policy     [][]float64
	TargetPol  [][]float64
	Critic     [][]float64
	TargetCrit [][]float64
	StepsDone  int
}

func dumpParams(m nn.Module) [][]float64 {
	var out [][]float64
	for _, p := range m.Params() {
		out = append(out, append([]float64(nil), p.Data...))
	}
	return out
}

func loadParams(m nn.Module, data [][]float64) error {
	ps := m.Params()
	if len(ps) != len(data) {
		return fmt.Errorf("rl: checkpoint has %d tensors, want %d", len(data), len(ps))
	}
	for i, p := range ps {
		if len(p.Data) != len(data[i]) {
			return fmt.Errorf("rl: tensor %d size mismatch", i)
		}
		copy(p.Data, data[i])
	}
	return nil
}

// SaveCheckpoint writes the learner's full training state to path.
func (l *CRR) SaveCheckpoint(path string, stepsDone int) error {
	blob := checkpointBlob{
		Cfg:       l.Cfg,
		Norm:      *l.Policy.Norm,
		Policy:    dumpParams(l.Policy),
		TargetPol: dumpParams(l.targetPolicy),
		StepsDone: stepsDone,
	}
	if l.Critic != nil {
		blob.Critic = dumpParams(l.Critic)
		blob.TargetCrit = dumpParams(l.targetCritic)
	} else {
		blob.Critic = dumpParams(l.NAF)
		blob.TargetCrit = dumpParams(l.targetNAF)
	}
	// Close the file exactly once: the previous defer f.Close() +
	// return f.Close() pattern closed it twice, and the deferred close
	// swallowed write-back errors on the success path.
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("rl: checkpoint: %w", err)
	}
	zw := gzip.NewWriter(f)
	if err := gob.NewEncoder(zw).Encode(&blob); err != nil {
		f.Close()
		return fmt.Errorf("rl: checkpoint encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		f.Close()
		return fmt.Errorf("rl: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("rl: checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reconstructs a learner from a checkpoint written by
// SaveCheckpoint, returning it and the number of completed steps. The
// dataset must be the same pool (or at least the same input layout) the
// checkpoint was trained on.
func LoadCheckpoint(path string, ds *Dataset) (*CRR, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("rl: checkpoint: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, 0, fmt.Errorf("rl: checkpoint gzip: %w", err)
	}
	var blob checkpointBlob
	if err := gob.NewDecoder(zr).Decode(&blob); err != nil {
		return nil, 0, fmt.Errorf("rl: checkpoint decode: %w", err)
	}
	l := NewCRR(ds, blob.Cfg)
	l.Policy.Norm = &blob.Norm
	if l.Critic != nil {
		l.Critic.Norm = &blob.Norm
	} else {
		l.NAF.Norm = &blob.Norm
	}
	if err := loadParams(l.Policy, blob.Policy); err != nil {
		return nil, 0, err
	}
	if err := loadParams(l.targetPolicy, blob.TargetPol); err != nil {
		return nil, 0, err
	}
	var crit, tcrit nn.Module
	if l.Critic != nil {
		crit, tcrit = l.Critic, l.targetCritic
	} else {
		crit, tcrit = l.NAF, l.targetNAF
	}
	if err := loadParams(crit, blob.Critic); err != nil {
		return nil, 0, err
	}
	if err := loadParams(tcrit, blob.TargetCrit); err != nil {
		return nil, 0, err
	}
	return l, blob.StepsDone, nil
}
