package rl

import (
	"errors"
	"fmt"
	"os"
	"strings"

	"sage/internal/nn"
	"sage/internal/safeio"
)

// checkpointBlob serializes a learner mid-training: both online networks,
// both targets, the normalizer, the Adam moments of both optimizers, and
// every RNG stream position — enough to resume a long (paper-scale)
// training run across process restarts with a bitwise-identical loss
// curve. Checkpoints from before the full-state format (HasFullState
// false, including legacy raw-gzip files) still load, but resume from
// them re-warms Adam and reseeds the samplers.
type checkpointBlob struct {
	Cfg        CRRConfig
	Norm       nn.Normalizer
	Policy     [][]float64
	TargetPol  [][]float64
	Critic     [][]float64
	TargetCrit [][]float64
	StepsDone  int

	HasFullState bool
	OptPi, OptQ  nn.AdamState
	RNG          uint64
	WorkerRNG    []uint64
}

func dumpParams(m nn.Module) [][]float64 {
	var out [][]float64
	for _, p := range m.Params() {
		out = append(out, append([]float64(nil), p.Data...))
	}
	return out
}

func loadParams(m nn.Module, data [][]float64) error {
	ps := m.Params()
	if len(ps) != len(data) {
		return fmt.Errorf("rl: checkpoint has %d tensors, want %d", len(data), len(ps))
	}
	for i, p := range ps {
		if len(p.Data) != len(data[i]) {
			return fmt.Errorf("rl: tensor %d size mismatch", i)
		}
		copy(p.Data, data[i])
	}
	return nil
}

// SaveCheckpoint atomically writes the learner's full training state to
// path (write-temp → fsync → rename, checksummed): a crash mid-save
// leaves the previous checkpoint intact.
func (l *CRR) SaveCheckpoint(path string, stepsDone int) error {
	blob := checkpointBlob{
		Cfg:          l.Cfg,
		Norm:         *l.Policy.Norm,
		Policy:       dumpParams(l.Policy),
		TargetPol:    dumpParams(l.targetPolicy),
		StepsDone:    stepsDone,
		HasFullState: true,
		OptPi:        l.optPi.State(l.Policy),
		OptQ:         l.optQ.State(l.criticModule()),
		RNG:          l.rngSrc.State(),
	}
	if l.Critic != nil {
		blob.Critic = dumpParams(l.Critic)
		blob.TargetCrit = dumpParams(l.targetCritic)
	} else {
		blob.Critic = dumpParams(l.NAF)
		blob.TargetCrit = dumpParams(l.targetNAF)
	}
	if l.workerSet != nil {
		for _, w := range l.workerSet {
			blob.WorkerRNG = append(blob.WorkerRNG, w.src.State())
		}
	} else {
		// No live worker goroutines: persist the staged positions instead.
		// They come from a checkpoint that was resumed before the worker
		// set was (lazily) rebuilt, or from a distributed coordinator
		// tracking remote trainer streams (SetWorkerRNGStates) — dropping
		// them would silently fork the batch sequence on the next resume.
		blob.WorkerRNG = append(blob.WorkerRNG, l.resumeWorkerRNG...)
	}
	if err := safeio.WriteGobGz(path, &blob); err != nil {
		return fmt.Errorf("rl: checkpoint: %w", err)
	}
	return nil
}

// SaveCheckpointRotate is SaveCheckpoint with generation rotation: the
// existing path is shifted to path.1, path.1 to path.2, …, keeping at
// most keep previous generations. If the newest checkpoint is later found
// corrupt (torn disk, bit rot), LoadCheckpointAuto falls back to a
// rotated predecessor instead of failing the run.
func (l *CRR) SaveCheckpointRotate(path string, stepsDone, keep int) error {
	if keep > 0 {
		os.Remove(rotName(path, keep))
		for k := keep - 1; k >= 1; k-- {
			os.Rename(rotName(path, k), rotName(path, k+1))
		}
		os.Rename(path, rotName(path, 1))
	}
	return l.SaveCheckpoint(path, stepsDone)
}

func rotName(path string, k int) string { return fmt.Sprintf("%s.%d", path, k) }

// LoadCheckpoint reconstructs a learner from a checkpoint written by
// SaveCheckpoint, returning it and the number of completed steps. The
// dataset must be the same pool (or at least the same input layout) the
// checkpoint was trained on.
func LoadCheckpoint(path string, ds *Dataset) (*CRR, int, error) {
	var blob checkpointBlob
	if err := safeio.ReadGobGz(path, &blob); err != nil {
		return nil, 0, fmt.Errorf("rl: checkpoint: %w", err)
	}
	l := NewCRR(ds, blob.Cfg)
	l.Policy.Norm = &blob.Norm
	l.targetPolicy.Norm = &blob.Norm
	if l.Critic != nil {
		l.Critic.Norm = &blob.Norm
		l.targetCritic.Norm = &blob.Norm
	} else {
		l.NAF.Norm = &blob.Norm
		l.targetNAF.Norm = &blob.Norm
	}
	if err := loadParams(l.Policy, blob.Policy); err != nil {
		return nil, 0, err
	}
	if err := loadParams(l.targetPolicy, blob.TargetPol); err != nil {
		return nil, 0, err
	}
	var crit, tcrit nn.Module
	if l.Critic != nil {
		crit, tcrit = l.Critic, l.targetCritic
	} else {
		crit, tcrit = l.NAF, l.targetNAF
	}
	if err := loadParams(crit, blob.Critic); err != nil {
		return nil, 0, err
	}
	if err := loadParams(tcrit, blob.TargetCrit); err != nil {
		return nil, 0, err
	}
	l.stepIdx = blob.StepsDone
	if blob.HasFullState {
		if err := l.optPi.Restore(l.Policy, blob.OptPi); err != nil {
			return nil, 0, fmt.Errorf("rl: checkpoint optimizer: %w", err)
		}
		if err := l.optQ.Restore(l.criticModule(), blob.OptQ); err != nil {
			return nil, 0, fmt.Errorf("rl: checkpoint optimizer: %w", err)
		}
		l.rngSrc.SetState(blob.RNG)
		l.resumeWorkerRNG = blob.WorkerRNG
	}
	return l, blob.StepsDone, nil
}

// LoadCheckpointAuto loads the newest checkpoint at path, falling back to
// rotated predecessors (path.1, path.2, …) when a file is corrupt or
// truncated. It returns the path actually loaded so callers can report
// the fallback. A missing path (and no rotations) returns an error
// wrapping fs.ErrNotExist, which callers treat as "fresh start".
func LoadCheckpointAuto(path string, ds *Dataset) (*CRR, int, string, error) {
	var attempts []string
	found := false
	for k := 0; ; k++ {
		p := path
		if k > 0 {
			p = rotName(path, k)
		}
		if _, err := os.Stat(p); err != nil {
			if k == 0 {
				// The newest file can be missing mid-rotation (crash
				// between rename and rewrite); the rotations may still
				// hold a good generation.
				continue
			}
			break
		}
		found = true
		l, steps, err := LoadCheckpoint(p, ds)
		if err == nil {
			return l, steps, p, nil
		}
		attempts = append(attempts, err.Error())
	}
	if !found {
		return nil, 0, "", fmt.Errorf("rl: checkpoint %s: %w", path, os.ErrNotExist)
	}
	return nil, 0, "", fmt.Errorf("rl: no loadable checkpoint at %s (tried %d generation(s)): %s",
		path, len(attempts), strings.Join(attempts, "; "))
}

// IsNotExist reports whether a LoadCheckpointAuto error just means "no
// checkpoint yet" (fresh start) rather than corruption.
func IsNotExist(err error) bool { return errors.Is(err, os.ErrNotExist) }
