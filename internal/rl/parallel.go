package rl

import (
	"math/rand"
	"sync"
	"time"

	"sage/internal/nn"
)

// worker holds one goroutine's network clones for data-parallel training.
type worker struct {
	nets netSet
	rng  *rand.Rand
	src  *rngSource // rng's source, snapshot-able for checkpoints
}

func (l *CRR) workers() []*worker {
	if l.workerSet != nil {
		return l.workerSet
	}
	ws := make([]*worker, l.Cfg.Workers)
	for i := range ws {
		src := newRNG(l.Cfg.Seed + int64(i)*7907 + 11)
		w := &worker{rng: rand.New(src), src: src}
		w.nets.policy = nn.ClonePolicy(l.Policy)
		if l.Critic != nil {
			w.nets.critic = nn.CloneCritic(l.Critic)
		}
		if l.NAF != nil {
			w.nets.naf = nn.CloneNAF(l.NAF)
		}
		ws[i] = w
	}
	// A checkpoint taken mid-parallel-training recorded each worker's
	// sampler position; restore them so the resumed run draws the same
	// per-worker batch sequences.
	if len(l.resumeWorkerRNG) == len(ws) {
		for i, s := range l.resumeWorkerRNG {
			ws[i].src.SetState(s)
		}
	}
	l.resumeWorkerRNG = nil
	l.workerSet = ws
	return ws
}

// stepParallel shards the batch across Workers goroutines, each computing
// gradients on its own clone of the networks; the gradients are summed into
// the main networks before the optimizer step. This is synchronous
// data-parallel SGD — the general-purpose-cluster analogue the paper's
// training phase leans on, scaled to cores.
func (l *CRR) stepParallel(ds *Dataset) (criticLoss, policyLoss float64) {
	cfg := l.Cfg
	ds.buildEventIndex() // before fan-out: the lazy index must not race
	ws := l.workers()
	// Batch identity under data parallelism is the fold of the per-worker
	// sampler positions (the main stream is not consumed here).
	id := l.rngSrc.State()
	for _, w := range ws {
		id = id*31 + w.src.State()
	}
	l.lastBatchID = id
	// Refresh worker parameters and clear their gradients.
	for _, w := range ws {
		nn.CopyParams(w.nets.policy, l.Policy)
		nn.ZeroGrads(w.nets.policy)
		if w.nets.critic != nil {
			nn.CopyParams(w.nets.critic, l.Critic)
			nn.ZeroGrads(w.nets.critic)
		}
		if w.nets.naf != nil {
			nn.CopyParams(w.nets.naf, l.NAF)
			nn.ZeroGrads(w.nets.naf)
		}
	}
	// Shard the batch (first workers get the remainder). Each worker's
	// busy time is clocked so telemetry can report utilization: with an
	// even shard split, busy-time spread directly exposes stragglers.
	shares := make([]shardStats, len(ws))
	busy := make([]float64, len(ws))
	var wg sync.WaitGroup
	per := cfg.Batch / len(ws)
	extra := cfg.Batch % len(ws)
	for i, w := range ws {
		n := per
		if i < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, w *worker, n int) {
			defer wg.Done()
			start := time.Now()
			shares[i] = l.processSeqs(w.nets, ds, w.rng, n)
			busy[i] = time.Since(start).Seconds()
		}(i, w, n)
	}
	wg.Wait()

	// Reduce gradients into the main networks.
	addGrads := func(dst, src nn.Module) {
		dp, sp := dst.Params(), src.Params()
		for i := range dp {
			for j := range dp[i].Grad {
				dp[i].Grad[j] += sp[i].Grad[j]
			}
		}
	}
	var st shardStats
	for i, w := range ws {
		addGrads(l.Policy, w.nets.policy)
		addGrads(l.criticModule(), w.nets.criticModule())
		st.add(shares[i])
	}
	l.finishStep(st, busy)
	return l.LastCriticLoss, l.LastPolicyLoss
}
