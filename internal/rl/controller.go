package rl

import (
	"math/rand"

	"sage/internal/gr"
	"sage/internal/nn"
	"sage/internal/sim"
	"sage/internal/tcp"
)

// PolicyController drives a connection's cwnd from a policy network; it is
// the trainer-side counterpart of the deployment agent in internal/core and
// implements rollout.Controller.
type PolicyController struct {
	Policy     *nn.Policy
	Mask       []int
	Stochastic bool

	hidden  []float64
	maskBuf []float64 // scratch for the masked state (reused every interval)
	meanBuf []float64 // scratch for GMM weight normalization
	rng     *rand.Rand

	// Recorded trajectory (for online learners).
	Record  bool
	States  [][]float64
	Actions []float64
}

// NewPolicyController returns a controller with fresh recurrent state.
func NewPolicyController(pol *nn.Policy, mask []int, stochastic bool, seed int64) *PolicyController {
	if mask == nil {
		mask = gr.MaskFull()
	}
	return &PolicyController{
		Policy:     pol,
		Mask:       mask,
		Stochastic: stochastic,
		hidden:     pol.InitHidden(),
		rng:        rand.New(rand.NewSource(seed + 991)),
	}
}

// Reset clears the recurrent state (call between flows, or when the
// runtime guardian re-admits the policy after a fallback episode).
func (pc *PolicyController) Reset() { pc.hidden = pc.Policy.InitHidden() }

// Control implements rollout.Controller. The mask projection and mixture
// mean reuse per-controller scratch, so the decision path allocates only
// what Policy.Forward itself needs (and a trajectory copy when recording).
func (pc *PolicyController) Control(now sim.Time, conn *tcp.Conn, state []float64) {
	pc.maskBuf = gr.ApplyMaskInto(pc.maskBuf, state, pc.Mask)
	head, h, _ := pc.Policy.Forward(pc.maskBuf, pc.hidden)
	pc.hidden = h
	var u float64
	if pc.Stochastic {
		u = clampU(pc.Policy.GMM.Sample(head, pc.rng))
	} else {
		if cap(pc.meanBuf) < pc.Policy.GMM.K {
			pc.meanBuf = make([]float64, pc.Policy.GMM.K)
		}
		u = clampU(pc.Policy.GMM.MeanInto(head, pc.meanBuf[:pc.Policy.GMM.K]))
	}
	if pc.Record {
		pc.States = append(pc.States, append([]float64(nil), pc.maskBuf...))
		pc.Actions = append(pc.Actions, u)
	}
	conn.SetCwnd(tcp.ClampCwnd(conn.Cwnd*UToRatio(u), 2, 0))
}
