package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"sage/internal/telemetry"
)

// Mode is a rung of the brownout degradation ladder. The engine escalates
// immediately when load breaches a budget and de-escalates one rung at a
// time after sustained healthy windows (hysteresis), so recovery back to
// full service happens within a bounded, configurable time of load
// dropping — and never flaps.
type Mode int32

const (
	// ModeFull is normal operation: every admitted decision runs the
	// learned policy and shadow mirroring is active.
	ModeFull Mode = iota
	// ModeShedShadow keeps serving the learned policy but pauses shadow /
	// canary mirroring (the PR 8 Shadow observer): candidate evaluation is
	// the first load to go, before any live flow feels anything.
	ModeShedShadow
	// ModeDegraded serves low-priority flows with the cheap ratio-1.0
	// fallback path (no forward pass; a guard-wrapped flow trips to its
	// Cubic heuristic). High-priority flows still get the learned policy.
	// Decisions are always produced — degradation is never silence.
	ModeDegraded
	// ModeDraining admits no new sessions: unknown sessions are rejected
	// with a typed OVERLOAD reply and resident sessions are served the
	// cheap fallback path while the backlog drains.
	ModeDraining
)

// String names the rung for health documents and logs.
func (m Mode) String() string {
	switch m {
	case ModeFull:
		return "full"
	case ModeShedShadow:
		return "shed-shadow"
	case ModeDegraded:
		return "degraded"
	case ModeDraining:
		return "draining"
	default:
		return fmt.Sprintf("mode(%d)", int32(m))
	}
}

// Overload metric names (the serve.overload.* family).
const (
	MetricOverloadMode        = "serve.overload.mode"           // gauge: current Mode as 0..3
	MetricOverloadTransitions = "serve.overload.transitions"    // ladder mode changes, either direction
	MetricOverloadAdmitted    = "serve.overload.admitted"       // async decisions admitted past admission control
	MetricOverloadShed        = "serve.overload.shed"           // decisions rejected with a typed OVERLOAD reply
	MetricOverloadDegraded    = "serve.overload.degraded"       // decisions served via the cheap ratio-1.0 path
	MetricOverloadShadowShed  = "serve.overload.shadow_shed"    // decisions not mirrored to the shadow observer
	MetricOverloadMisses      = "serve.overload.deadline_miss"  // admitted decisions that blew DecisionBudget
	MetricOverloadConnShed    = "serve.overload.conn_shed"      // connections rejected at accept by MaxConns
	MetricOverloadRetryMs     = "serve.overload.retry_after_ms" // histogram of retry-after hints handed out
)

// OverloadError is the typed rejection admission control returns instead
// of queueing work it cannot serve in time. RetryAfter is a jittered hint
// (also carried to protocol clients in the OVERLOAD reply) so a thundering
// herd of retries does not arrive in phase.
type OverloadError struct {
	RetryAfter time.Duration
	Mode       Mode
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: overloaded (%s), retry after %v", e.Mode, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) match any OverloadError.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// ErrOverloaded is the errors.Is target for typed OverloadError rejections.
var ErrOverloaded = fmt.Errorf("serve: overloaded")

// OverloadConfig enables admission control and the brownout ladder on an
// Engine. The zero value of every field is a usable default; a nil
// *OverloadConfig in Config disables overload protection entirely
// (historical behavior: unbounded queues, no shedding).
type OverloadConfig struct {
	// MaxInflight caps async decisions admitted but not yet answered
	// (default 8×MaxBatch). At the cap Decide rejects with an
	// OverloadError instead of queueing: queue growth is bounded and the
	// caller learns immediately.
	MaxInflight int
	// MaxPending caps how much of one synchronous Flush backlog runs the
	// learned policy (default MaxInflight); overflow is served the cheap
	// ratio-1.0 path rather than growing the batched pass without bound.
	MaxPending int
	// BatchWaitBudget is the batch-wait budget (default 50×BatchDeadline):
	// an evaluation window in which more than ~1% of batches waited longer
	// than this counts as a p99 breach and escalates the ladder.
	BatchWaitBudget time.Duration
	// DecisionBudget is the end-to-end latency budget for one admitted
	// async decision (default 250ms). Windows where >5% of decisions miss
	// it escalate straight to ModeDegraded: stale decisions degrade flows
	// worse than explicit fallback does.
	DecisionBudget time.Duration
	// EvalInterval is the ladder evaluation period (default 10ms).
	EvalInterval time.Duration
	// HealthyEvals is how many consecutive healthy windows de-escalate one
	// rung (default 10). Full recovery from ModeDraining is therefore
	// bounded by 3×HealthyEvals×EvalInterval after load subsides.
	HealthyEvals int
	// RetryAfter is the base client retry hint (default 50ms); each
	// rejection jitters it uniformly in [RetryAfter/2, 3·RetryAfter/2).
	RetryAfter time.Duration
	// ShedFrac / DegradeFrac / DrainFrac are the queue-occupancy rungs:
	// when the window's peak in-flight count reaches this fraction of
	// MaxInflight the ladder escalates to shed-shadow / degraded /
	// draining respectively (defaults 0.5 / 0.75 / 0.95).
	ShedFrac, DegradeFrac, DrainFrac float64
}

// fill applies defaults; maxBatch and deadline come from the engine
// config the overload layer is attached to.
func (c OverloadConfig) fill(maxBatch int, deadline time.Duration) OverloadConfig {
	if c.MaxInflight == 0 {
		c.MaxInflight = 8 * maxBatch
	}
	if c.MaxPending == 0 {
		c.MaxPending = c.MaxInflight
	}
	if c.BatchWaitBudget == 0 {
		c.BatchWaitBudget = 50 * deadline
	}
	if c.DecisionBudget == 0 {
		c.DecisionBudget = 250 * time.Millisecond
	}
	if c.EvalInterval == 0 {
		c.EvalInterval = 10 * time.Millisecond
	}
	if c.HealthyEvals == 0 {
		c.HealthyEvals = 10
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = 50 * time.Millisecond
	}
	if c.ShedFrac == 0 {
		c.ShedFrac = 0.5
	}
	if c.DegradeFrac == 0 {
		c.DegradeFrac = 0.75
	}
	if c.DrainFrac == 0 {
		c.DrainFrac = 0.95
	}
	return c
}

// Breach fractions for the windowed budget signals: a window where >1% of
// batches waited past BatchWaitBudget approximates "batch-wait p99 over
// budget"; >5% of decisions missing DecisionBudget is conclusive
// staleness, not noise.
const (
	waitBreachFrac = 0.01
	missBreachFrac = 0.05
)

// overload is the engine's load controller: admission counters feed
// per-window signals, eval steps the ladder, and totals back the Health
// document. Signal recording is atomics-only (hot path); eval and the
// retry-jitter RNG serialize on mu.
type overload struct {
	cfg     OverloadConfig
	metrics *telemetry.Registry

	modeA atomic.Int32

	// Per-window signals, swapped out at each eval.
	peak     atomic.Int64 // max in-flight seen since last eval
	waits    atomic.Int64 // batches closed since last eval
	waitOver atomic.Int64 // ...of which waited past BatchWaitBudget
	decided  atomic.Int64 // admitted decisions completed since last eval
	missed   atomic.Int64 // ...of which blew DecisionBudget

	// Running totals for Health (metrics may be nil, so the controller is
	// its own source of truth).
	admittedT, shedT, degradedT, shadowShedT, missedT, transitionsT atomic.Int64

	mu       sync.Mutex
	healthy  int // consecutive windows below the current rung
	lastEval time.Time
	rng      *rand.Rand
}

func newOverload(cfg OverloadConfig, maxBatch int, deadline time.Duration, metrics *telemetry.Registry) *overload {
	o := &overload{
		cfg:     cfg.fill(maxBatch, deadline),
		metrics: metrics,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	metrics.Gauge(MetricOverloadMode).Set(0)
	return o
}

func (o *overload) mode() Mode { return Mode(o.modeA.Load()) }

// notePeak records an in-flight high-water mark (CAS max).
func (o *overload) notePeak(n int64) {
	for {
		p := o.peak.Load()
		if n <= p || o.peak.CompareAndSwap(p, n) {
			return
		}
	}
}

func (o *overload) noteAdmitted() {
	o.admittedT.Add(1)
	o.metrics.Counter(MetricOverloadAdmitted).Inc()
}

func (o *overload) noteBatchWait(d time.Duration) {
	o.waits.Add(1)
	if d > o.cfg.BatchWaitBudget {
		o.waitOver.Add(1)
	}
}

func (o *overload) noteLatency(d time.Duration) {
	o.decided.Add(1)
	if d > o.cfg.DecisionBudget {
		o.missed.Add(1)
		o.missedT.Add(1)
		o.metrics.Counter(MetricOverloadMisses).Inc()
	}
}

func (o *overload) noteDegraded(n int64) {
	o.degradedT.Add(n)
	o.metrics.Counter(MetricOverloadDegraded).Add(n)
}

func (o *overload) noteShadowShed(n int64) {
	o.shadowShedT.Add(n)
	o.metrics.Counter(MetricOverloadShadowShed).Add(n)
}

// retryAfter returns the jittered retry hint.
func (o *overload) retryAfter() time.Duration {
	base := o.cfg.RetryAfter
	o.mu.Lock()
	j := time.Duration(o.rng.Int63n(int64(base)))
	o.mu.Unlock()
	return base/2 + j
}

// reject builds the typed rejection for one shed decision.
func (o *overload) reject(m Mode) *OverloadError {
	ra := o.retryAfter()
	o.shedT.Add(1)
	o.metrics.Counter(MetricOverloadShed).Inc()
	o.metrics.Histogram(MetricOverloadRetryMs).Observe(float64(ra.Milliseconds()))
	return &OverloadError{RetryAfter: ra, Mode: m}
}

// maybeEval closes the current window if EvalInterval has elapsed; eval
// with force=true (the async ticker, OverloadTick) always closes it.
func (o *overload) maybeEval(now time.Time) { o.eval(now, false) }

func (o *overload) eval(now time.Time, force bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !force && now.Sub(o.lastEval) < o.cfg.EvalInterval {
		return
	}
	o.lastEval = now

	peak := o.peak.Swap(0)
	waits, over := o.waits.Swap(0), o.waitOver.Swap(0)
	dec, miss := o.decided.Swap(0), o.missed.Swap(0)

	frac := float64(peak) / float64(o.cfg.MaxInflight)
	target := ModeFull
	if frac >= o.cfg.ShedFrac {
		target = ModeShedShadow
	}
	if waits > 0 && float64(over)/float64(waits) > waitBreachFrac {
		target = max(target, ModeShedShadow)
	}
	if frac >= o.cfg.DegradeFrac {
		target = max(target, ModeDegraded)
	}
	if dec > 0 && float64(miss)/float64(dec) > missBreachFrac {
		target = max(target, ModeDegraded)
	}
	if frac >= o.cfg.DrainFrac {
		target = ModeDraining
	}

	cur := Mode(o.modeA.Load())
	switch {
	case target > cur:
		// Escalate immediately, possibly several rungs: overload is now.
		o.setModeLocked(target)
		o.healthy = 0
	case target < cur:
		// De-escalate one rung per HealthyEvals consecutive calm windows:
		// hysteresis keeps a marginal daemon from flapping between modes.
		o.healthy++
		if o.healthy >= o.cfg.HealthyEvals {
			o.setModeLocked(cur - 1)
			o.healthy = 0
		}
	default:
		o.healthy = 0
	}
}

func (o *overload) setModeLocked(m Mode) {
	o.modeA.Store(int32(m))
	o.transitionsT.Add(1)
	o.metrics.Counter(MetricOverloadTransitions).Inc()
	o.metrics.Gauge(MetricOverloadMode).Set(float64(m))
}

// Health is the point-in-time readiness document the daemon's health verb
// returns: the ladder mode plus the admission counters that explain it.
type Health struct {
	Mode           string `json:"mode"`
	Protected      bool   `json:"overload_protection"`
	QueueDepth     int64  `json:"queue_depth"`
	Sessions       int    `json:"sessions"`
	Admitted       int64  `json:"admitted"`
	Shed           int64  `json:"shed"`
	Degraded       int64  `json:"degraded"`
	ShadowShed     int64  `json:"shadow_shed"`
	DeadlineMisses int64  `json:"deadline_misses"`
	Transitions    int64  `json:"mode_transitions"`
	Conns          int    `json:"conns,omitempty"`    // filled by the Server
	Draining       bool   `json:"draining,omitempty"` // server shutdown in progress
}

// Ready reports whether the plane is serving full learned service (the
// readiness-probe criterion: full or shed-shadow — live flows unaffected).
func (h Health) Ready() bool {
	return h.Mode == ModeFull.String() || h.Mode == ModeShedShadow.String()
}

// ---------------------------------------------------------------------------
// Engine surface.

// OverloadMode reports the current brownout rung (ModeFull when overload
// protection is disabled).
func (e *Engine) OverloadMode() Mode {
	if e.ov == nil {
		return ModeFull
	}
	return e.ov.mode()
}

// OverloadActive reports whether the engine is anywhere on the brownout
// ladder above full service. The promotion manager masks its demotion
// watchdog while this is true: overload-driven fallback storms are a
// capacity problem, not a model regression.
func (e *Engine) OverloadActive() bool { return e.OverloadMode() != ModeFull }

// OverloadTick forces one ladder evaluation window to close now. The
// async path runs this from an internal ticker; the synchronous path runs
// it on Flush. Exposed so tests and embedding daemons can drive the
// ladder deterministically.
func (e *Engine) OverloadTick() {
	if e.ov != nil {
		e.ov.eval(time.Now(), true)
	}
}

// Health returns the engine's overload/readiness document.
func (e *Engine) Health() Health {
	h := Health{
		Mode:       e.OverloadMode().String(),
		QueueDepth: e.queued.Load(),
		Sessions:   e.Sessions(),
	}
	if e.ov != nil {
		h.Protected = true
		h.Admitted = e.ov.admittedT.Load()
		h.Shed = e.ov.shedT.Load()
		h.Degraded = e.ov.degradedT.Load()
		h.ShadowShed = e.ov.shadowShedT.Load()
		h.DeadlineMisses = e.ov.missedT.Load()
		h.Transitions = e.ov.transitionsT.Load()
	}
	return h
}

// retryHint is the jittered retry-after the server quotes when shedding
// at accept time (50ms fixed when overload protection is off).
func (e *Engine) retryHint() time.Duration {
	if e.ov == nil {
		return 50 * time.Millisecond
	}
	return e.ov.retryAfter()
}

// overloadLoop is the async-path ladder driver, started by Start when
// overload protection is configured. stop is captured at spawn: Close
// nils the field it came from, and re-reading it here would turn the
// select into a forever-blocking receive on a nil channel.
func (e *Engine) overloadLoop(stop <-chan struct{}) {
	defer e.wg.Done()
	t := time.NewTicker(e.ov.cfg.EvalInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			e.ov.eval(now, true)
		}
	}
}
