package serve_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sage/internal/serve"
)

// memSink collects exported windows for assertions.
type memSink struct {
	mu      sync.Mutex
	windows []serve.TraceWindow
}

func (m *memSink) ExportWindow(w serve.TraceWindow) {
	m.mu.Lock()
	m.windows = append(m.windows, w)
	m.mu.Unlock()
}

func (m *memSink) take() []serve.TraceWindow {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.windows
	m.windows = nil
	return out
}

func (m *memSink) byReason(reason string) []serve.TraceWindow {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []serve.TraceWindow
	for _, w := range m.windows {
		if w.Reason == reason {
			out = append(out, w)
		}
	}
	return out
}

// decideN runs n decisions for session id and returns the states used.
func decideN(t *testing.T, e *serve.Engine, id uint64, n int, rng *rand.Rand) [][]float64 {
	t.Helper()
	var states [][]float64
	for i := 0; i < n; i++ {
		st := randState(rng)
		if _, _, err := e.Decide(id, 100, st); err != nil {
			t.Fatal(err)
		}
		states = append(states, st)
	}
	return states
}

// A closed session flushes one complete window: every decision, in order,
// with the exact states served.
func TestTraceCloseFlushesCompleteWindow(t *testing.T) {
	sink := &memSink{}
	e := serve.NewEngine(serve.Config{Policy: testPolicy(1), Trace: sink, BatchDeadline: time.Millisecond})
	e.Start()
	defer e.Close()

	rng := rand.New(rand.NewSource(2))
	sid := e.NewSessionID()
	states := decideN(t, e, sid, 5, rng)
	e.CloseSession(sid)

	got := sink.take()
	if len(got) != 1 {
		t.Fatalf("got %d windows, want 1", len(got))
	}
	w := got[0]
	if w.SID != sid || w.Reason != serve.TraceReasonClose {
		t.Fatalf("window = sid %d reason %q, want sid %d reason close", w.SID, w.Reason, sid)
	}
	if len(w.Steps) != len(states) {
		t.Fatalf("window has %d steps, want %d (no truncation)", len(w.Steps), len(states))
	}
	for i, st := range w.Steps {
		for j := range st.State {
			if st.State[j] != states[i][j] {
				t.Fatalf("step %d state[%d] = %g, want %g", i, j, st.State[j], states[i][j])
			}
		}
		if st.Fallback {
			t.Fatalf("step %d marked fallback on finite state", i)
		}
		if math.IsNaN(st.Ratio) || st.Ratio <= 0 {
			t.Fatalf("step %d ratio %g", i, st.Ratio)
		}
	}
}

// Satellite: LRU eviction must flush the evicted session's *complete*
// window — the decisions served before eviction are experience, not
// garbage.
func TestTraceEvictionFlushesCompleteWindow(t *testing.T) {
	sink := &memSink{}
	e := serve.NewEngine(serve.Config{
		Policy: testPolicy(1), Trace: sink,
		MaxSessions: 2, BatchDeadline: time.Millisecond,
	})
	e.Start()
	defer e.Close()

	rng := rand.New(rand.NewSource(3))
	first := e.NewSessionID()
	served := decideN(t, e, first, 4, rng)

	// Two more sessions push the first out of the LRU.
	decideN(t, e, e.NewSessionID(), 1, rng)
	decideN(t, e, e.NewSessionID(), 1, rng)

	evicted := sink.byReason(serve.TraceReasonEvict)
	if len(evicted) != 1 {
		t.Fatalf("got %d evict windows, want 1", len(evicted))
	}
	w := evicted[0]
	if w.SID != first {
		t.Fatalf("evict window sid = %d, want %d", w.SID, first)
	}
	if len(w.Steps) != len(served) {
		t.Fatalf("evict window has %d steps, want %d (complete, not truncated)", len(w.Steps), len(served))
	}
}

// Satellite: Swap's drain must flush every resident session's window
// before the new model serves — no exported window may mix two models'
// actions.
func TestTraceSwapFlushesBeforeNewModel(t *testing.T) {
	sink := &memSink{}
	e := serve.NewEngine(serve.Config{Policy: testPolicy(1), Trace: sink, BatchDeadline: time.Millisecond})
	e.Start()
	defer e.Close()

	rng := rand.New(rand.NewSource(4))
	sid := e.NewSessionID()
	preSwap := decideN(t, e, sid, 3, rng)

	if _, err := e.Swap(testPolicyWide(9), nil); err != nil {
		t.Fatal(err)
	}
	swapped := sink.byReason(serve.TraceReasonSwap)
	if len(swapped) != 1 {
		t.Fatalf("got %d swap windows, want 1", len(swapped))
	}
	if got := len(swapped[0].Steps); got != len(preSwap) {
		t.Fatalf("swap window has %d steps, want %d (complete pre-swap window)", got, len(preSwap))
	}

	// Decisions under the new model land in a fresh window.
	postSwap := decideN(t, e, sid, 2, rng)
	e.CloseSession(sid)
	closed := sink.byReason(serve.TraceReasonClose)
	if len(closed) != 1 || len(closed[0].Steps) != len(postSwap) {
		t.Fatalf("post-swap window = %+v, want %d fresh steps", closed, len(postSwap))
	}
}

// Engine drain (Close) flushes every open window so a daemon shutdown
// strands nothing in memory.
func TestTraceDrainFlushesAllSessions(t *testing.T) {
	sink := &memSink{}
	e := serve.NewEngine(serve.Config{Policy: testPolicy(1), Trace: sink, BatchDeadline: time.Millisecond})
	e.Start()

	rng := rand.New(rand.NewSource(5))
	want := map[uint64]int{}
	for i := 0; i < 3; i++ {
		sid := e.NewSessionID()
		decideN(t, e, sid, i+1, rng)
		want[sid] = i + 1
	}
	e.Close()

	drained := sink.byReason(serve.TraceReasonDrain)
	if len(drained) != len(want) {
		t.Fatalf("got %d drain windows, want %d", len(drained), len(want))
	}
	for _, w := range drained {
		if want[w.SID] != len(w.Steps) {
			t.Fatalf("sid %d drained %d steps, want %d", w.SID, len(w.Steps), want[w.SID])
		}
	}
}

// A window that reaches TraceWindowSteps rotates out whole and a fresh
// one starts — no step is dropped at the boundary.
func TestTraceRotation(t *testing.T) {
	sink := &memSink{}
	e := serve.NewEngine(serve.Config{
		Policy: testPolicy(1), Trace: sink,
		TraceWindowSteps: 4, BatchDeadline: time.Millisecond,
	})
	e.Start()
	defer e.Close()

	rng := rand.New(rand.NewSource(6))
	sid := e.NewSessionID()
	decideN(t, e, sid, 10, rng)
	e.CloseSession(sid)

	rotated := sink.byReason(serve.TraceReasonRotate)
	if len(rotated) != 2 {
		t.Fatalf("got %d rotate windows, want 2", len(rotated))
	}
	total := 0
	for _, w := range append(rotated, sink.byReason(serve.TraceReasonClose)...) {
		total += len(w.Steps)
	}
	if total != 10 {
		t.Fatalf("steps across windows = %d, want 10", total)
	}
}

// Non-finite states never enter a window (they carry no observation), and
// an engine with no sink pays nothing.
func TestTraceSkipsNonFiniteStates(t *testing.T) {
	sink := &memSink{}
	e := serve.NewEngine(serve.Config{Policy: testPolicy(1), Trace: sink, BatchDeadline: time.Millisecond})
	e.Start()
	defer e.Close()

	rng := rand.New(rand.NewSource(7))
	sid := e.NewSessionID()
	decideN(t, e, sid, 2, rng)
	bad := randState(rng)
	bad[3] = math.NaN()
	if _, fb, err := e.Decide(sid, 100, bad); err != nil || !fb {
		t.Fatalf("NaN state: fallback=%v err=%v, want fallback", fb, err)
	}
	e.CloseSession(sid)

	got := sink.take()
	if len(got) != 1 || len(got[0].Steps) != 2 {
		t.Fatalf("windows = %+v, want one 2-step window (NaN step excluded)", got)
	}
}
