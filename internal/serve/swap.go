package serve

import (
	"errors"
	"fmt"
	"time"

	"sage/internal/gr"
	"sage/internal/nn"
)

// ErrSwapClosed reports a Swap on an engine that already drained.
var ErrSwapClosed = errors.New("serve: swap on closed engine")

// SwapStats reports one hot-swap's session migration outcome.
type SwapStats struct {
	Sessions int // resident sessions at swap time
	Reprimed int // hidden state rebuilt by replaying the trace window
	Fresh    int // no decided states yet: restarted from the new model's initial hidden state
	Degraded int // re-prime produced non-finite state: pinned to fallback until reset
}

func (s SwapStats) String() string {
	return fmt.Sprintf("sessions=%d reprimed=%d fresh=%d degraded=%d",
		s.Sessions, s.Reprimed, s.Fresh, s.Degraded)
}

// Swap replaces the engine's policy with pol/mask without dropping a single
// decision: it blocks new async requests, waits for every queued and
// in-flight batch to complete under the old model, then migrates each
// resident session onto the new one. A session's recurrent hidden state is
// re-primed by replaying its recent trace window (the last
// Config.ReprimeWindow decided states) through the new network — the same
// observations that shaped its behaviour under the incumbent — so a
// long-lived flow resumes with context instead of restarting cold. If
// re-priming yields non-finite state the session is pinned to fallback
// (ratio-1) decisions and reported Degraded; a guard-wrapped flow then
// trips to the heuristic path and is re-admitted fresh after probation.
//
// Decisions already enqueued on the synchronous path but not yet flushed
// are carried across: the next Flush serves them with the new model.
// Decisions blocked in Decide during the swap are served by the new model
// once it completes; none are dropped.
//
// Swap must not run concurrently with Flush (both belong to the engine's
// single synchronous caller); it is safe against concurrent Decide. A nil
// mask means the full state vector.
func (e *Engine) Swap(pol *nn.Policy, mask []int) (SwapStats, error) {
	if pol == nil {
		return SwapStats{}, errors.New("serve: Swap with nil policy")
	}
	if mask == nil {
		mask = gr.MaskFull()
	}

	// Stop the world: no new Decide can enter (closeMu held exclusively),
	// and every request that did enter has incremented queued before
	// releasing its read lock — so queued draining to zero means every
	// in-flight batch has completed under the old model.
	e.closeMu.Lock()
	defer e.closeMu.Unlock()
	if e.closed {
		return SwapStats{}, ErrSwapClosed
	}
	if e.started {
		for e.queued.Load() != 0 {
			time.Sleep(20 * time.Microsecond)
		}
	}

	var stats SwapStats
	e.mu.Lock()
	e.polMu.Lock()
	e.cfg.Policy = pol
	e.cfg.Mask = mask
	e.swapGen++
	gen := e.swapGen
	e.polMu.Unlock()
	// Rebuild the synchronous scratch eagerly (workers rebuild lazily via
	// the generation check when their next batch arrives).
	e.syncBuf.scratch = pol.NewBatchScratch()
	e.syncBuf.meanBuf = make([]float64, pol.GMM.K)
	e.syncBuf.gen = gen

	stats.Sessions = len(e.sessions)
	for _, s := range e.sessions {
		// The acting model is changing: flush the window accumulated under
		// the old model whole, so no exported trajectory ever mixes two
		// models' actions. The drain above guarantees the window is final.
		e.exportTrace(s, TraceReasonSwap)
		s.degraded = false
		trace := s.windowOrdered()
		if len(trace) == 0 {
			s.hidden = pol.InitHidden()
			stats.Fresh++
			continue
		}
		h := pol.InitHidden()
		for _, st := range trace {
			_, h, _ = pol.Forward(gr.ApplyMask(st, mask), h)
		}
		if finiteVec(h) {
			s.hidden = h
			stats.Reprimed++
		} else {
			s.hidden = pol.InitHidden()
			s.degraded = true
			s.clearWindow()
			stats.Degraded++
		}
	}
	e.mu.Unlock()

	e.cfg.Metrics.Counter(MetricSwaps).Inc()
	e.cfg.Metrics.Counter(MetricReprimed).Add(int64(stats.Reprimed))
	e.cfg.Metrics.Counter(MetricSwapDegrade).Add(int64(stats.Degraded))
	return stats, nil
}

// Policy returns the currently served policy and mask (the incumbent from
// the engine's point of view).
func (e *Engine) Policy() (*nn.Policy, []int) {
	e.polMu.RLock()
	defer e.polMu.RUnlock()
	return e.cfg.Policy, e.cfg.Mask
}
