package serve_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sage/internal/cc"
	"sage/internal/chaos"
	"sage/internal/gr"
	"sage/internal/guard"
	"sage/internal/nn"
	"sage/internal/rl"
	"sage/internal/serve"
	"sage/internal/sim"
	"sage/internal/tcp"
	"sage/internal/telemetry"
)

// testPolicyWide is a second architecture (different GRU width) so swap
// tests exercise the cross-model scratch-buffer rebuild, not just a
// weight refresh.
func testPolicyWide(seed int64) *nn.Policy {
	p := nn.NewPolicy(nn.PolicyConfig{InDim: gr.StateDim, Enc: 24, Hidden: 32, ResBlocks: 1, K: 3, Seed: seed})
	rng := rand.New(rand.NewSource(seed + 31))
	var fit [][]float64
	for i := 0; i < 64; i++ {
		v := make([]float64, gr.StateDim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		fit = append(fit, v)
	}
	p.Norm = nn.FitNormalizer(fit)
	return p
}

// After a swap, a brand-new session must behave bitwise identically to
// the same session on a fresh engine built around the new model: the old
// model leaves no residue in scratch buffers or config.
func TestSwapMatchesFreshEngine(t *testing.T) {
	pol1, pol2 := testPolicy(41), testPolicyWide(43)

	swapped := serve.NewEngine(serve.Config{Policy: pol1, BatchDeadline: time.Millisecond})
	swapped.Start()
	defer swapped.Close()
	fresh := serve.NewEngine(serve.Config{Policy: pol2, BatchDeadline: time.Millisecond})
	fresh.Start()
	defer fresh.Close()

	// Give the swapped engine history under the old model first.
	rng := rand.New(rand.NewSource(1))
	warm := swapped.NewSessionID()
	for i := 0; i < 6; i++ {
		if _, _, err := swapped.Decide(warm, 100, randState(rng)); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := swapped.Swap(pol2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sessions != 1 || stats.Reprimed != 1 {
		t.Fatalf("swap stats = %+v, want 1 session reprimed", stats)
	}

	seq := rand.New(rand.NewSource(7))
	states := make([][]float64, 10)
	for i := range states {
		states[i] = randState(seq)
	}
	sa, sb := swapped.NewSessionID(), fresh.NewSessionID()
	for i, st := range states {
		got, gf, err1 := swapped.Decide(sa, 100, st)
		want, wf, err2 := fresh.Decide(sb, 100, st)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if got != want || gf != wf {
			t.Fatalf("step %d: swapped engine cwnd=%v (fallback=%v), fresh engine cwnd=%v (fallback=%v)",
				i, got, gf, want, wf)
		}
	}
}

// A live session's hidden state is migrated by replaying its recent trace
// window through the new model, so its post-swap decisions are bitwise
// identical to a session that ran those same observations on the new
// model from the start.
func TestSwapReprimesFromTraceWindow(t *testing.T) {
	pol1, pol2 := testPolicy(51), testPolicyWide(53)

	migrated := serve.NewEngine(serve.Config{Policy: pol1, BatchDeadline: time.Millisecond, ReprimeWindow: 8})
	migrated.Start()
	defer migrated.Close()
	reference := serve.NewEngine(serve.Config{Policy: pol2, BatchDeadline: time.Millisecond, ReprimeWindow: 8})
	reference.Start()
	defer reference.Close()

	rng := rand.New(rand.NewSource(5))
	history := make([][]float64, 5) // < ReprimeWindow: the full history replays
	for i := range history {
		history[i] = randState(rng)
	}
	next := randState(rng)

	ma, rb := migrated.NewSessionID(), reference.NewSessionID()
	for _, st := range history {
		if _, _, err := migrated.Decide(ma, 100, st); err != nil {
			t.Fatal(err)
		}
		if _, _, err := reference.Decide(rb, 100, st); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := migrated.Swap(pol2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reprimed != 1 || stats.Degraded != 0 {
		t.Fatalf("swap stats = %+v, want the one session reprimed", stats)
	}

	got, _, err1 := migrated.Decide(ma, 100, next)
	want, _, err2 := reference.Decide(rb, 100, next)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if got != want {
		t.Fatalf("post-swap decision %v != reference %v: re-primed hidden state diverges from replaying the window", got, want)
	}
}

// Re-priming through a broken model must not poison the flow: the session
// is pinned to fallback decisions, reported Degraded, and a ResetSession
// (guard re-admission) clears the pin.
func TestSwapDegradedSessionPinsToFallback(t *testing.T) {
	pol := testPolicy(61)
	bad := testPolicy(62)
	chaos.PoisonPolicy(bad) // every weight NaN: any re-prime goes non-finite

	reg := telemetry.NewRegistry()
	eng := serve.NewEngine(serve.Config{Policy: pol, BatchDeadline: time.Millisecond, Metrics: reg})
	eng.Start()
	defer eng.Close()

	rng := rand.New(rand.NewSource(9))
	sid := eng.NewSessionID()
	for i := 0; i < 4; i++ {
		if _, _, err := eng.Decide(sid, 100, randState(rng)); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := eng.Swap(bad, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Degraded != 1 {
		t.Fatalf("swap stats = %+v, want the session degraded", stats)
	}
	if !eng.SessionDegraded(sid) {
		t.Fatal("session not marked degraded after non-finite re-prime")
	}
	if got := reg.Counter(serve.MetricSwapDegrade).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", serve.MetricSwapDegrade, got)
	}

	newCwnd, fallback, err := eng.Decide(sid, 100, randState(rng))
	if err != nil {
		t.Fatal(err)
	}
	if !fallback || newCwnd != 100 {
		t.Fatalf("degraded session decision = (%v, fallback=%v), want the ratio-1 no-op", newCwnd, fallback)
	}

	eng.ResetSession(sid)
	if eng.SessionDegraded(sid) {
		t.Fatal("ResetSession did not clear the degraded pin")
	}
}

// A swap in the middle of heavy async traffic drops nothing: every Decide
// issued before, during, and after the swap gets a decision, and every
// session survives.
func TestSwapMidTrafficDropsNothing(t *testing.T) {
	pol1, pol2 := testPolicy(71), testPolicyWide(73)
	reg := telemetry.NewRegistry()
	eng := serve.NewEngine(serve.Config{
		Policy:        pol1,
		MaxBatch:      32,
		BatchDeadline: 50 * time.Microsecond,
		Workers:       2,
		Metrics:       reg,
	})
	eng.Start()
	defer eng.Close()

	const flows, calls = 8, 200
	var wg sync.WaitGroup
	errs := make([]error, flows)
	for f := 0; f < flows; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(f)))
			sid := eng.NewSessionID()
			for i := 0; i < calls; i++ {
				if _, _, err := eng.Decide(sid, 50, randState(rng)); err != nil {
					errs[f] = err
					return
				}
			}
		}(f)
	}
	for i, p := range []*nn.Policy{pol2, pol1, pol2} {
		time.Sleep(2 * time.Millisecond)
		if _, err := eng.Swap(p, nil); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
	}
	wg.Wait()
	for f, err := range errs {
		if err != nil {
			t.Fatalf("flow %d: %v", f, err)
		}
	}
	if got := reg.Counter(serve.MetricDecisions).Value(); got != flows*calls {
		t.Fatalf("decisions = %d, want %d (swap dropped requests)", got, flows*calls)
	}
	if got := eng.Sessions(); got != flows {
		t.Fatalf("sessions = %d, want %d (swap dropped sessions)", got, flows)
	}
	if got := reg.Counter(serve.MetricSwaps).Value(); got != 3 {
		t.Fatalf("%s = %d, want 3", serve.MetricSwaps, got)
	}
}

// A guard-tripped flow whose trip came from a failed hot-swap re-prime
// must be re-admitted against the *new* incumbent, not stale hidden
// state: after probation the guardian resets the session and the next
// decision is bitwise what the new model produces from a fresh hidden
// state.
func TestGuardRestoreAfterSwapUsesNewModel(t *testing.T) {
	pol1 := testPolicy(81)
	broken := testPolicy(82)
	chaos.PoisonPolicy(broken)
	pol3 := testPolicyWide(83) // the healthy new incumbent

	reg := telemetry.NewRegistry()
	eng := serve.NewEngine(serve.Config{Policy: pol1, Metrics: reg})
	ctl := serve.NewController(eng)
	g := guard.NewBatched(ctl, guard.Config{Probation: 2, Metrics: reg})

	loop := sim.NewLoop()
	n := testScenario(sim.Second).Build(loop)
	fl := tcp.NewFlow(loop, n, 1, cc.MustNew("pure"), tcp.Options{})
	conn := fl.Conn
	conn.Start(0)

	rng := rand.New(rand.NewSource(3))
	now := sim.Time(0)
	step := 20 * sim.Millisecond
	tick := func(state []float64) {
		now += step
		loop.RunUntil(now)
		g.Control(now, conn, state)
		g.FlushBatch(now)
	}

	for i := 0; i < 6; i++ {
		tick(randState(rng)) // build up a trace window under pol1
	}

	// Swap to a broken model: the re-prime goes non-finite and the
	// session is degraded.
	stats, err := eng.Swap(broken, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Degraded != 1 {
		t.Fatalf("swap stats = %+v, want the session degraded", stats)
	}
	tick(randState(rng))
	if !g.Tripped() {
		t.Fatal("guardian did not trip the degraded session to the fallback")
	}
	if got := reg.Counter(guard.MetricSwapTrips).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", guard.MetricSwapTrips, got)
	}

	// The fleet swaps again to a healthy new incumbent while this flow
	// rides the fallback.
	if _, err := eng.Swap(pol3, nil); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 50 && g.Tripped(); i++ {
		tick(randState(rng)) // fallback delivers; probation elapses
	}
	if g.Tripped() || g.Restores() != 1 {
		t.Fatalf("guardian did not restore (tripped=%v restores=%d)", g.Tripped(), g.Restores())
	}

	// First post-restore decision: must equal pol3 from a *fresh* hidden
	// state (the guardian's restore reset the session).
	state := randState(rng)
	before := conn.Cwnd
	tick(state)
	gotRatio := conn.Cwnd / before

	masked := gr.ApplyMask(state, gr.MaskFull())
	head, _, _ := pol3.Forward(masked, pol3.InitHidden())
	mean := make([]float64, pol3.GMM.K)
	wantRatio := rl.UToRatio(pol3.GMM.MeanInto(head, mean))
	if math.Abs(gotRatio-wantRatio) > 1e-12 {
		t.Fatalf("post-restore ratio %v != fresh new-model ratio %v: re-admitted against stale state", gotRatio, wantRatio)
	}
}
