package serve_test

import (
	"errors"
	"math"
	"math/rand"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sage/internal/serve"
	"sage/internal/telemetry"
)

// startServer runs a daemon on a per-test Unix socket and returns the
// socket path plus a shutdown func.
func startServer(t *testing.T, eng *serve.Engine) (string, func()) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "sage.sock")
	srv := serve.NewServer(eng)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(sock) }()
	// Wait for the socket to accept.
	var cli *serve.Client
	var err error
	for i := 0; i < 200; i++ {
		cli, err = serve.Dial(sock)
		if err == nil {
			cli.Close()
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	return sock, func() {
		srv.Shutdown()
		// Serve must have returned once Shutdown completes, and with the
		// sentinel the daemon uses to tell a drain from a real failure.
		if err := <-errCh; !errors.Is(err, net.ErrClosed) {
			t.Errorf("Serve returned %v after Shutdown, want net.ErrClosed", err)
		}
	}
}

// End-to-end daemon exercise: decisions, fallback status, session reset
// and close, all over the wire, from concurrent clients.
func TestProtoEndToEnd(t *testing.T) {
	pol := testPolicy(29)
	reg := telemetry.NewRegistry()
	eng := serve.NewEngine(serve.Config{
		Policy:        pol,
		MaxBatch:      32,
		BatchDeadline: 5 * time.Millisecond,
		Workers:       2,
		Metrics:       reg,
	})
	sock, shutdown := startServer(t, eng)
	defer shutdown()

	const clients = 8
	var wg sync.WaitGroup
	failures := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli, err := serve.Dial(sock)
			if err != nil {
				failures[i] = err
				return
			}
			defer cli.Close()
			rng := rand.New(rand.NewSource(int64(100 + i)))
			sid := uint64(i + 1)
			cwnd := 10.0
			for step := 0; step < 20; step++ {
				newCwnd, status, err := cli.Decide(sid, cwnd, randState(rng))
				if err != nil {
					failures[i] = err
					return
				}
				if status != serve.StatusOK {
					failures[i] = errStatus(status)
					return
				}
				if math.IsNaN(newCwnd) || newCwnd < 2 {
					failures[i] = errBadCwnd(newCwnd)
					return
				}
				cwnd = newCwnd
			}
			if err := cli.Reset(sid); err != nil {
				failures[i] = err
				return
			}
			failures[i] = cli.CloseSession(sid)
		}(i)
	}
	wg.Wait()
	for i, err := range failures {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	// Fallback decisions surface as StatusFallback with cwnd unchanged.
	cli, err := serve.Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	poison := randState(rand.New(rand.NewSource(999)))
	poison[0] = math.Inf(1)
	newCwnd, status, err := cli.Decide(77, 10, poison)
	if err != nil {
		t.Fatal(err)
	}
	if status != serve.StatusFallback {
		t.Errorf("poisoned decide status = %d, want StatusFallback", status)
	}
	if newCwnd != 10 {
		t.Errorf("fallback cwnd = %v, want unchanged 10", newCwnd)
	}
}

// Shutdown drains: a decision in flight when SIGTERM-style shutdown
// begins still gets its response, and afterwards the socket is gone.
func TestServerGracefulDrain(t *testing.T) {
	pol := testPolicy(31)
	reg := telemetry.NewRegistry()
	eng := serve.NewEngine(serve.Config{
		Policy:        pol,
		MaxBatch:      64,
		BatchDeadline: 200 * time.Millisecond, // long: requests are in flight during Shutdown
		Workers:       1,
		Metrics:       reg,
	})
	sock, shutdown := startServer(t, eng)

	const inflight = 4
	type outcome struct {
		status byte
		err    error
	}
	outcomes := make(chan outcome, inflight)
	for i := 0; i < inflight; i++ {
		go func(i int) {
			cli, err := serve.Dial(sock)
			if err != nil {
				outcomes <- outcome{err: err}
				return
			}
			defer cli.Close()
			_, status, err := cli.Decide(uint64(i+1), 10, randState(rand.New(rand.NewSource(int64(i)))))
			outcomes <- outcome{status: status, err: err}
		}(i)
	}
	// Wait until all requests are queued in the open batch, then drain
	// while they sit on the batch deadline.
	waitUntil := time.Now().Add(5 * time.Second)
	for reg.Gauge(serve.MetricQueueDepth).Value() < inflight {
		if time.Now().After(waitUntil) {
			t.Fatal("requests never queued")
		}
		time.Sleep(time.Millisecond)
	}
	shutdown()
	for i := 0; i < inflight; i++ {
		o := <-outcomes
		if o.err != nil {
			t.Fatalf("in-flight decision dropped during drain: %v", o.err)
		}
		if o.status != serve.StatusOK {
			t.Fatalf("in-flight decision status = %d, want StatusOK", o.status)
		}
	}
	if _, err := serve.Dial(sock); err == nil {
		t.Error("socket still accepting after Shutdown")
	}
}

type errStatus byte

func (e errStatus) Error() string { return "unexpected status " + string('0'+byte(e)) }

type errBadCwnd float64

func (e errBadCwnd) Error() string { return "bad cwnd" }

// TestClientTimeoutOnStalledServer: a daemon that accepts the request
// but never answers must not wedge the caller — with SetTimeout the
// round trip fails with a timeout net.Error instead of blocking a
// congestion-control tick forever.
func TestClientTimeoutOnStalledServer(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	defer serverEnd.Close()
	stalled := make(chan struct{})
	go func() {
		// Swallow the request frame, then go silent.
		buf := make([]byte, 1<<10)
		serverEnd.Read(buf)
		close(stalled)
		<-make(chan struct{})
	}()

	cli := serve.NewClient(clientEnd)
	defer cli.Close()
	cli.SetTimeout(50 * time.Millisecond)
	start := time.Now()
	_, _, err := cli.Decide(1, 10, []float64{1, 2, 3})
	if err == nil {
		t.Fatal("Decide against a stalled server returned no error")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("Decide error = %v, want a timeout net.Error", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("timed out only after %v", waited)
	}
	select {
	case <-stalled:
	case <-time.After(time.Second):
		t.Fatal("server never saw the request frame")
	}
}

// TestClientTimeoutLeavesFastServerAlone: a deadline well above the
// server's response time never fires, and calls after SetTimeout(0) go
// back to running without deadlines at all.
func TestClientTimeoutLeavesFastServerAlone(t *testing.T) {
	eng := serve.NewEngine(serve.Config{
		Policy:        testPolicy(3),
		MaxBatch:      4,
		BatchDeadline: time.Millisecond,
		Workers:       1,
	})
	sock, shutdown := startServer(t, eng)
	defer shutdown()
	cli, err := serve.Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetTimeout(5 * time.Second)
	state := randState(rand.New(rand.NewSource(1)))
	if _, status, err := cli.Decide(1, 10, state); err != nil || status != serve.StatusOK {
		t.Fatalf("Decide with generous timeout: status=%d err=%v", status, err)
	}
	cli.SetTimeout(0)
	if _, status, err := cli.Decide(1, 10, state); err != nil || status != serve.StatusOK {
		t.Fatalf("Decide after clearing timeout: status=%d err=%v", status, err)
	}
}
