package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strconv"
	"sync"
	"time"
)

// Wire protocol of the sage-serve daemon: length-prefixed binary frames
// over a stream socket (Unix domain in practice).
//
//	frame    := u32(BE) payload length | payload
//	request  := u8 version | u8 op | u64(BE) session id | body
//	  OpDecide body: f64(BE) cwnd | u16(BE) dim | dim × f64(BE) state
//	  OpReset, OpCloseSession: empty body
//	response := u8 version | u8 status | f64(BE) new cwnd | u16(BE) len | msg
//
// All floats are IEEE-754 bits, big-endian. Session ids are chosen by the
// client (one per flow); an id the server has evicted silently restarts
// from a fresh hidden state, mirroring Engine session semantics.
const (
	ProtoVersion = 1

	OpDecide       = 1
	OpReset        = 2
	OpCloseSession = 3
	// OpSwap asks the daemon to hot-swap its serving model. Body: u16(BE)
	// length + model id bytes (empty id = reload the registry incumbent).
	// The response msg carries a human-readable swap report.
	OpSwap = 4
	// OpStatus asks for the daemon's lifecycle status. Empty body; the
	// response msg carries a JSON status document.
	OpStatus = 5
	// OpHealth asks for the daemon's overload/readiness document. Empty
	// body; the response msg carries a JSON serve.Health document.
	OpHealth = 6

	StatusOK       = 0 // decision served from the policy
	StatusFallback = 1 // decision served, but as a safety no-op (ratio 1)
	StatusBusy     = 2 // session already has a request in flight
	StatusError    = 3 // malformed request or draining server; msg explains
	// StatusOverload is the typed OVERLOAD reply: admission control shed
	// the request (or the accept-time connection cap shed the whole
	// connection). The cwnd field echoes the request unchanged and the msg
	// carries a jittered retry-after hint in integer milliseconds —
	// explicit rejection, never a stalled or silently dropped caller.
	StatusOverload = 4

	// maxFrame bounds a frame payload (a 69-signal Decide is ~600 bytes;
	// anything near this limit is a corrupt or hostile frame). Both the
	// client and server read paths enforce it *before* allocating, so a
	// corrupt or malicious length prefix — including one with the sign bit
	// set, which would be negative read as int32 and near-4GiB read as
	// uint32 — can never drive an unbounded allocation.
	maxFrame = 1 << 16
)

var errFrameTooBig = errors.New("serve: frame exceeds size limit")

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return errFrameTooBig
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame into buf (grown as needed) and returns the
// payload slice. The length prefix is validated against maxFrame before
// any allocation or payload read: a hostile prefix costs the peer its
// connection, not our memory.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		// Covers every oversized prefix, including 0x80000000 and up —
		// values that would be negative if naively decoded as int32.
		return nil, errFrameTooBig
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Decide priority classes carried in the optional trailing priority byte.
const (
	priorityLow  = 0
	priorityHigh = 1
)

// appendDecideRequest encodes an OpDecide request payload. The priority
// byte trails the state vector so decoders predating it still parse the
// frame (a missing byte means low priority).
func appendDecideRequest(b []byte, sid uint64, cwnd float64, state []float64, highPri bool) []byte {
	b = append(b, ProtoVersion, OpDecide)
	b = binary.BigEndian.AppendUint64(b, sid)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(cwnd))
	b = binary.BigEndian.AppendUint16(b, uint16(len(state)))
	for _, v := range state {
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(v))
	}
	pri := byte(priorityLow)
	if highPri {
		pri = priorityHigh
	}
	return append(b, pri)
}

// appendSessionRequest encodes an OpReset / OpCloseSession payload.
func appendSessionRequest(b []byte, op byte, sid uint64) []byte {
	b = append(b, ProtoVersion, op)
	return binary.BigEndian.AppendUint64(b, sid)
}

// appendControlRequest encodes an OpSwap / OpStatus payload (the session id
// field is unused and zero; arg is the model id for OpSwap).
func appendControlRequest(b []byte, op byte, arg string) []byte {
	b = append(b, ProtoVersion, op)
	b = binary.BigEndian.AppendUint64(b, 0)
	b = binary.BigEndian.AppendUint16(b, uint16(len(arg)))
	return append(b, arg...)
}

// appendResponse encodes a response payload.
func appendResponse(b []byte, status byte, cwnd float64, msg string) []byte {
	b = append(b, ProtoVersion, status)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(cwnd))
	b = binary.BigEndian.AppendUint16(b, uint16(len(msg)))
	return append(b, msg...)
}

// decodedRequest is a parsed request frame. State aliases the read buffer
// and is only valid until the next read.
type decodedRequest struct {
	Op    byte
	SID   uint64
	Cwnd  float64
	State []float64
	Pri   bool   // OpDecide high-priority class
	Arg   string // OpSwap model id
}

// parseRequest decodes a request payload; stateBuf is reused for the
// state vector.
func parseRequest(p []byte, stateBuf []float64) (decodedRequest, []float64, error) {
	var req decodedRequest
	if len(p) < 10 {
		return req, stateBuf, errors.New("serve: short request")
	}
	if p[0] != ProtoVersion {
		return req, stateBuf, fmt.Errorf("serve: protocol version %d, want %d", p[0], ProtoVersion)
	}
	req.Op = p[1]
	req.SID = binary.BigEndian.Uint64(p[2:10])
	p = p[10:]
	switch req.Op {
	case OpReset, OpCloseSession:
		return req, stateBuf, nil
	case OpSwap, OpStatus, OpHealth:
		if len(p) < 2 {
			return req, stateBuf, errors.New("serve: short control body")
		}
		n := int(binary.BigEndian.Uint16(p[:2]))
		p = p[2:]
		if len(p) != n {
			return req, stateBuf, fmt.Errorf("serve: control arg len %d but %d payload bytes", n, len(p))
		}
		req.Arg = string(p)
		return req, stateBuf, nil
	case OpDecide:
		if len(p) < 10 {
			return req, stateBuf, errors.New("serve: short decide body")
		}
		req.Cwnd = math.Float64frombits(binary.BigEndian.Uint64(p[:8]))
		dim := int(binary.BigEndian.Uint16(p[8:10]))
		p = p[10:]
		// An optional priority byte trails the state vector (absent in
		// frames from pre-overload clients: low priority).
		if len(p) == 8*dim+1 {
			req.Pri = p[8*dim] == priorityHigh
			p = p[:8*dim]
		}
		if len(p) != 8*dim {
			return req, stateBuf, fmt.Errorf("serve: state dim %d but %d payload bytes", dim, len(p))
		}
		if cap(stateBuf) < dim {
			stateBuf = make([]float64, dim)
		}
		stateBuf = stateBuf[:dim]
		for i := 0; i < dim; i++ {
			stateBuf[i] = math.Float64frombits(binary.BigEndian.Uint64(p[8*i : 8*i+8]))
		}
		req.State = stateBuf
		return req, stateBuf, nil
	default:
		return req, stateBuf, fmt.Errorf("serve: unknown op %d", req.Op)
	}
}

// Client talks the sage-serve protocol over one connection. Methods are
// serialized by an internal mutex; use one Client per concurrent flow (or
// one per goroutine) to let the server batch across them.
type Client struct {
	mu         sync.Mutex
	conn       net.Conn
	timeout    time.Duration
	highPri    bool
	retryAfter time.Duration // last OVERLOAD reply's hint
	wbuf       []byte
	rbuf       []byte
}

// DefaultDialTimeout bounds Dial's connect phase. A daemon whose accept
// queue is wedged (or a socket file pointing at a hung process) must not
// block a caller forever; callers that want different bounds use
// DialTimeout or DialContext.
const DefaultDialTimeout = 10 * time.Second

// Dial connects to a sage-serve daemon's Unix socket, bounding the
// connect by DefaultDialTimeout.
func Dial(socketPath string) (*Client, error) {
	return DialTimeout(socketPath, DefaultDialTimeout)
}

// DialTimeout connects with an explicit connect-phase bound (0 = no
// bound). Established-connection calls are bounded separately by
// SetTimeout.
func DialTimeout(socketPath string, d time.Duration) (*Client, error) {
	ctx := context.Background()
	if d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	return DialContext(ctx, socketPath)
}

// DialContext connects under the caller's context: cancellation or
// deadline expiry aborts a hung connect instead of blocking forever.
func DialContext(ctx context.Context, socketPath string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "unix", socketPath)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client { return &Client{conn: conn} }

// SetTimeout bounds every subsequent call's full round trip (request
// write through response read). Zero restores the default: block until
// the server answers or the connection dies. A Decide sitting inside a
// congestion-control tick cannot afford to wait out a wedged daemon, so
// flow integrations should set this to a small multiple of the batch
// deadline; a call that exceeds it fails with a net.Error whose
// Timeout() is true, after which the connection is poisoned (the late
// response would desynchronize framing) and the client should redial.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d < 0 {
		d = 0
	}
	c.timeout = d
}

// SetHighPriority marks this client's subsequent Decide requests as the
// high-priority class. During brownout (ModeDegraded) the engine keeps
// serving high-priority flows from the policy while low-priority flows
// get the cheap ratio-1.0 fallback; the default is low priority.
func (c *Client) SetHighPriority(v bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.highPri = v
}

// RetryAfter returns the retry-after hint from the most recent
// StatusOverload reply (zero if none seen yet). Callers that receive
// StatusOverload should back off at least this long before retrying.
func (c *Client) RetryAfter() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retryAfter
}

// Decide requests a cwnd decision for session sid currently at cwnd with
// observation state. status is one of the Status* constants; for StatusOK
// and StatusFallback newCwnd is the window to apply. StatusOverload means
// admission control shed the request: cwnd is echoed unchanged and
// RetryAfter carries the server's backoff hint.
func (c *Client) Decide(sid uint64, cwnd float64, state []float64) (newCwnd float64, status byte, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wbuf = appendDecideRequest(c.wbuf[:0], sid, cwnd, state, c.highPri)
	return c.roundTrip()
}

// Reset clears session sid's recurrent state on the server.
func (c *Client) Reset(sid uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wbuf = appendSessionRequest(c.wbuf[:0], OpReset, sid)
	_, status, err := c.roundTrip()
	return statusErr(status, err)
}

// CloseSession frees session sid on the server.
func (c *Client) CloseSession(sid uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wbuf = appendSessionRequest(c.wbuf[:0], OpCloseSession, sid)
	_, status, err := c.roundTrip()
	return statusErr(status, err)
}

// Swap asks the daemon to hot-swap its serving model. An empty id means
// "reload the registry incumbent"; a specific id force-swaps that model
// (the demotion watchdog still protects a bad forced swap). The returned
// string is the daemon's human-readable swap report.
func (c *Client) Swap(id string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wbuf = appendControlRequest(c.wbuf[:0], OpSwap, id)
	_, status, msg, err := c.roundTripMsg()
	if err != nil {
		return msg, err
	}
	if status != StatusOK {
		return msg, fmt.Errorf("serve: unexpected status %d", status)
	}
	return msg, nil
}

// Status returns the daemon's lifecycle status document (JSON).
func (c *Client) Status() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wbuf = appendControlRequest(c.wbuf[:0], OpStatus, "")
	_, status, msg, err := c.roundTripMsg()
	if err != nil {
		return msg, err
	}
	if status != StatusOK {
		return msg, fmt.Errorf("serve: unexpected status %d", status)
	}
	return msg, nil
}

// Health returns the daemon's overload/readiness document (a JSON
// serve.Health). Unlike Status it is served even while the daemon is
// shedding load, so probes keep seeing brownout transitions.
func (c *Client) Health() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wbuf = appendControlRequest(c.wbuf[:0], OpHealth, "")
	_, status, msg, err := c.roundTripMsg()
	if err != nil {
		return msg, err
	}
	if status != StatusOK {
		return msg, fmt.Errorf("serve: unexpected status %d", status)
	}
	return msg, nil
}

// Close closes the connection (server-side sessions persist until evicted
// or explicitly closed).
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip() (float64, byte, error) {
	cwnd, status, _, err := c.roundTripMsg()
	return cwnd, status, err
}

func (c *Client) roundTripMsg() (float64, byte, string, error) {
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return 0, StatusError, "", err
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := writeFrame(c.conn, c.wbuf); err != nil {
		return 0, StatusError, "", err
	}
	p, err := readFrame(c.conn, c.rbuf)
	if err != nil {
		return 0, StatusError, "", err
	}
	c.rbuf = p[:0]
	if len(p) < 12 {
		return 0, StatusError, "", errors.New("serve: short response")
	}
	if p[0] != ProtoVersion {
		return 0, StatusError, "", fmt.Errorf("serve: protocol version %d, want %d", p[0], ProtoVersion)
	}
	status := p[1]
	cwnd := math.Float64frombits(binary.BigEndian.Uint64(p[2:10]))
	msgLen := int(binary.BigEndian.Uint16(p[10:12]))
	msg := ""
	if 12+msgLen <= len(p) && msgLen > 0 {
		msg = string(p[12 : 12+msgLen])
	}
	if status == StatusError {
		if msg == "" {
			msg = "server error"
		}
		return cwnd, status, msg, errors.New("serve: " + msg)
	}
	if status == StatusOverload {
		// The msg is the server's jittered retry-after hint in integer
		// milliseconds. An unparsable hint is not an error — the status
		// alone tells the caller to back off.
		if ms, perr := strconv.Atoi(msg); perr == nil && ms >= 0 {
			c.retryAfter = time.Duration(ms) * time.Millisecond
		}
	}
	return cwnd, status, msg, nil
}

func statusErr(status byte, err error) error {
	if err != nil {
		return err
	}
	if status != StatusOK {
		return fmt.Errorf("serve: unexpected status %d", status)
	}
	return nil
}
