package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

// limitedReader wraps a reader and fails the test if more than max bytes
// are ever requested — the proof that a hostile length prefix is rejected
// before any allocation-sized read happens.
type countingReader struct {
	r    io.Reader
	read int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.read += n
	return n, err
}

// Hostile length prefixes — including values whose sign bit is set, which
// would be negative decoded as int32 and ~4GiB decoded as uint32 — must be
// rejected before any payload allocation, on the shared read path both the
// client and server use.
func TestReadFrameRejectsHostilePrefixes(t *testing.T) {
	for _, n := range []uint32{maxFrame + 1, 1 << 20, 0x80000000, 0xFFFFFFFF} {
		var b bytes.Buffer
		hdr := make([]byte, 4)
		binary.BigEndian.PutUint32(hdr, n)
		b.Write(hdr)
		b.Write(make([]byte, 64)) // garbage a naive reader would start consuming

		cr := &countingReader{r: &b}
		_, err := readFrame(cr, nil)
		if !errors.Is(err, errFrameTooBig) {
			t.Errorf("prefix %#x: err = %v, want errFrameTooBig", n, err)
		}
		if cr.read > 4 {
			t.Errorf("prefix %#x: read %d bytes past the header", n, cr.read-4)
		}
	}

	// The boundary itself still works.
	var b bytes.Buffer
	if err := writeFrame(&b, make([]byte, maxFrame)); err != nil {
		t.Fatalf("writeFrame at limit: %v", err)
	}
	if p, err := readFrame(&b, nil); err != nil || len(p) != maxFrame {
		t.Fatalf("readFrame at limit: len %d, %v", len(p), err)
	}
}

// The write side refuses to emit a frame the read side would drop.
func TestWriteFrameRejectsOversize(t *testing.T) {
	var b bytes.Buffer
	if err := writeFrame(&b, make([]byte, maxFrame+1)); !errors.Is(err, errFrameTooBig) {
		t.Fatalf("writeFrame oversize: %v, want errFrameTooBig", err)
	}
	if b.Len() != 0 {
		t.Fatalf("oversize writeFrame emitted %d bytes", b.Len())
	}
}

// The optional trailing priority byte round-trips and its absence decodes
// as low priority (backward compatibility with pre-overload clients).
func TestDecidePriorityByte(t *testing.T) {
	state := []float64{1, 2, 3}
	for _, hi := range []bool{false, true} {
		p := appendDecideRequest(nil, 7, 12.5, state, hi)
		req, _, err := parseRequest(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if req.Pri != hi || req.SID != 7 || req.Cwnd != 12.5 || len(req.State) != 3 {
			t.Fatalf("round trip (hi=%v): %+v", hi, req)
		}
	}
	// Legacy frame: no priority byte at all.
	legacy := appendDecideRequest(nil, 9, 4, state, true)
	legacy = legacy[:len(legacy)-1]
	req, _, err := parseRequest(legacy, nil)
	if err != nil {
		t.Fatalf("legacy frame: %v", err)
	}
	if req.Pri {
		t.Fatal("legacy frame decoded as high priority")
	}
	// Truncated state with a stray byte must still be rejected.
	bad := appendDecideRequest(nil, 9, 4, state, false)
	if _, _, err := parseRequest(bad[:len(bad)-3], nil); err == nil {
		t.Fatal("truncated decide body accepted")
	}
}

// FuzzParseRequest: no payload may panic the request parser or make it
// retain more state than the declared dimension.
func FuzzParseRequest(f *testing.F) {
	f.Add(appendDecideRequest(nil, 1, 10, []float64{1, 2, 3}, false))
	f.Add(appendDecideRequest(nil, 2, 1, nil, true))
	f.Add(appendSessionRequest(nil, OpReset, 3))
	f.Add(appendControlRequest(nil, OpSwap, "model-a"))
	f.Add(appendControlRequest(nil, OpHealth, ""))
	f.Add([]byte{ProtoVersion, OpDecide, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, p []byte) {
		req, _, err := parseRequest(p, nil)
		if err != nil {
			return
		}
		if len(req.State) > maxFrame/8 {
			t.Fatalf("parser produced a %d-element state from a %d-byte payload", len(req.State), len(p))
		}
		for _, v := range req.State {
			_ = math.IsNaN(v) // touch every element: catches aliasing past the buffer
		}
	})
}
