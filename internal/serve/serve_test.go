package serve_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sage/internal/cc"
	"sage/internal/gr"
	"sage/internal/guard"
	"sage/internal/netem"
	"sage/internal/nn"
	"sage/internal/rl"
	"sage/internal/rollout"
	"sage/internal/serve"
	"sage/internal/sim"
	"sage/internal/tcp"
	"sage/internal/telemetry"
)

func testPolicy(seed int64) *nn.Policy {
	p := nn.NewPolicy(nn.PolicyConfig{InDim: gr.StateDim, Enc: 32, Hidden: 24, ResBlocks: 2, K: 5, Seed: seed})
	rng := rand.New(rand.NewSource(seed + 31))
	var fit [][]float64
	for i := 0; i < 64; i++ {
		v := make([]float64, gr.StateDim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		fit = append(fit, v)
	}
	p.Norm = nn.FitNormalizer(fit)
	return p
}

func randState(rng *rand.Rand) []float64 {
	v := make([]float64, gr.StateDim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func testScenario(dur sim.Time) netem.Scenario {
	mrtt := 20 * sim.Millisecond
	return netem.Scenario{
		Name:       "serve",
		Rate:       netem.FlatRate(netem.Mbps(48)),
		MinRTT:     mrtt,
		QueueBytes: netem.BDPBytes(netem.Mbps(48), mrtt),
		Duration:   dur,
	}
}

// A RunMulti fleet served by one shared engine must behave bitwise
// identically to the same fleet where every flow owns a sequential
// rl.PolicyController: same cwnd at every sample, same throughput.
func TestEngineMatchesSequential(t *testing.T) {
	pol := testPolicy(5)
	const flows = 4
	sc := testScenario(8 * sim.Second)

	run := func(batched bool) []rollout.FlowResult {
		var eng *serve.Engine
		if batched {
			eng = serve.NewEngine(serve.Config{Policy: pol})
		}
		specs := make([]rollout.FlowSpec, flows)
		for i := range specs {
			var ctl rollout.Controller
			if batched {
				ctl = serve.NewController(eng)
			} else {
				ctl = rl.NewPolicyController(pol, nil, false, 0)
			}
			specs[i] = rollout.FlowSpec{
				Name:       "f",
				CC:         cc.MustNew("pure"),
				Controller: ctl,
				Start:      sim.Time(i) * 500 * sim.Millisecond,
			}
		}
		return rollout.RunMulti(sc, specs, rollout.MultiOptions{SamplePeriod: sim.Second})
	}

	seq := run(false)
	bat := run(true)
	for i := range seq {
		if seq[i].ThroughputBps != bat[i].ThroughputBps {
			t.Errorf("flow %d throughput: sequential %v, batched %v", i, seq[i].ThroughputBps, bat[i].ThroughputBps)
		}
		if len(seq[i].Series) != len(bat[i].Series) {
			t.Fatalf("flow %d series length %d vs %d", i, len(seq[i].Series), len(bat[i].Series))
		}
		for j := range seq[i].Series {
			if seq[i].Series[j].Cwnd != bat[i].Series[j].Cwnd {
				t.Fatalf("flow %d sample %d cwnd: sequential %v, batched %v",
					i, j, seq[i].Series[j].Cwnd, bat[i].Series[j].Cwnd)
			}
		}
	}
}

// newGuarded wraps a fresh per-flow serve controller in the runtime
// guardian, production-style: the guard keeps the flush path intact and a
// trip would reset only this flow's session.
func newGuarded(tb testing.TB, eng *serve.Engine) rollout.Controller {
	tb.Helper()
	return guard.NewBatched(serve.NewController(eng), guard.Config{})
}

// A guard-wrapped batching controller must keep the flush path intact:
// the fleet runs, decisions are served, and nothing trips on a healthy
// policy.
func TestGuardedBatchedFleet(t *testing.T) {
	pol := testPolicy(11)
	eng := serve.NewEngine(serve.Config{Policy: pol})
	sc := testScenario(4 * sim.Second)
	specs := []rollout.FlowSpec{
		{Name: "a", CC: cc.MustNew("pure"), Controller: newGuarded(t, eng), Start: 0},
		{Name: "b", CC: cc.MustNew("pure"), Controller: newGuarded(t, eng), Start: 0},
	}
	res := rollout.RunMulti(sc, specs, rollout.MultiOptions{})
	for i, r := range res {
		if r.ThroughputBps <= 0 {
			t.Errorf("flow %d moved no data through the guarded batched path", i)
		}
	}
}

// Sessions past the cap are LRU-evicted, and an evicted session's next
// use restarts from a fresh hidden state.
func TestSessionEviction(t *testing.T) {
	pol := testPolicy(7)
	reg := telemetry.NewRegistry()
	eng := serve.NewEngine(serve.Config{Policy: pol, MaxSessions: 4, Metrics: reg})
	rng := rand.New(rand.NewSource(3))

	conn := benchConn(t)
	const ids = 10
	for round := 0; round < 2; round++ {
		for id := uint64(1); id <= ids; id++ {
			eng.Enqueue(id, conn, randState(rng))
			eng.Flush(sim.Second)
		}
	}
	if got := eng.Sessions(); got > 4 {
		t.Errorf("resident sessions = %d, cap 4", got)
	}
	evicted := reg.Counter(serve.MetricSessEvicted).Value()
	if evicted < ids-4 {
		t.Errorf("evictions = %d, want >= %d", evicted, ids-4)
	}
	// Round 2 recreated evicted ids from scratch.
	opened := reg.Counter(serve.MetricSessOpened).Value()
	if opened <= ids {
		t.Errorf("sessions opened = %d, want > %d (evicted ids must be recreated)", opened, ids)
	}
}

// A non-finite observation is served as a safety no-op: ratio 1, hidden
// untouched, fallback counted — and other rows in the same batch are
// unaffected.
func TestFallbackIsolatesBatch(t *testing.T) {
	pol := testPolicy(13)
	reg := telemetry.NewRegistry()
	eng := serve.NewEngine(serve.Config{Policy: pol, Metrics: reg})
	rng := rand.New(rand.NewSource(9))

	good, bad := benchConn(t), benchConn(t)
	goodBefore, badBefore := good.Cwnd, bad.Cwnd

	poison := randState(rng)
	poison[3] = math.NaN()
	eng.Enqueue(1, good, randState(rng))
	eng.Enqueue(2, bad, poison)
	eng.Flush(sim.Second)

	if bad.Cwnd != math.Max(badBefore, 2) {
		t.Errorf("poisoned flow cwnd = %v, want unchanged %v", bad.Cwnd, badBefore)
	}
	if good.Cwnd == goodBefore {
		t.Errorf("healthy flow in the same batch got no decision (cwnd still %v)", good.Cwnd)
	}
	if got := reg.Counter(serve.MetricFallbacks).Value(); got != 1 {
		t.Errorf("fallbacks = %d, want 1", got)
	}
	if got := reg.Counter(serve.MetricDecisions).Value(); got != 2 {
		t.Errorf("decisions = %d, want 2", got)
	}
}

// The async micro-batcher must coalesce concurrent requests into shared
// passes and complete every future, including across Close.
func TestAsyncBatchingAndDrain(t *testing.T) {
	pol := testPolicy(17)
	reg := telemetry.NewRegistry()
	eng := serve.NewEngine(serve.Config{
		Policy:        pol,
		MaxBatch:      64,
		BatchDeadline: 20 * time.Millisecond,
		Workers:       2,
		Metrics:       reg,
	})
	eng.Start()

	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			_, _, errs[i] = eng.Decide(uint64(i+1), 10, randState(rng))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Decide %d: %v", i, err)
		}
	}
	if got := reg.Counter(serve.MetricDecisions).Value(); got != n {
		t.Errorf("decisions = %d, want %d", got, n)
	}
	// The 20ms deadline dwarfs goroutine launch time, so the requests
	// must have shared batches rather than each running alone.
	if batches := reg.Counter(serve.MetricBatches).Value(); batches >= n {
		t.Errorf("batches = %d for %d requests: no coalescing happened", batches, n)
	}
	eng.Close()
	if _, _, err := eng.Decide(1, 10, randState(rand.New(rand.NewSource(1)))); err != serve.ErrClosed {
		t.Errorf("Decide after Close = %v, want ErrClosed", err)
	}
}

// One outstanding request per session: a second Decide for a session with
// one in flight reports ErrSessionBusy instead of racing the hidden state.
func TestSessionBusy(t *testing.T) {
	pol := testPolicy(19)
	eng := serve.NewEngine(serve.Config{
		Policy:        pol,
		MaxBatch:      2,
		BatchDeadline: time.Second, // batch waits for a 2nd request or 1s
		Workers:       1,
	})
	eng.Start()
	defer eng.Close()

	// Two concurrent Decides for session 1: with MaxBatch 2 the winner
	// blocks waiting for a batch mate, so the loser must observe the busy
	// session and fail fast instead of racing the hidden state.
	res := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(seed int64) {
			_, _, err := eng.Decide(1, 10, randState(rand.New(rand.NewSource(seed))))
			res <- err
		}(int64(21 + i))
	}
	select {
	case err := <-res:
		if err != serve.ErrSessionBusy {
			t.Fatalf("loser returned %v, want ErrSessionBusy", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("neither Decide returned")
	}
	// A different session fills the batch and releases the winner.
	if _, _, err := eng.Decide(2, 10, randState(rand.New(rand.NewSource(24)))); err != nil {
		t.Fatalf("Decide session 2: %v", err)
	}
	if err := <-res; err != nil {
		t.Fatalf("winner returned %v, want nil", err)
	}
}

// benchConn builds a standalone connection whose cwnd can be driven
// without running the simulation (an unstarted conn never transmits).
func benchConn(tb testing.TB) *tcp.Conn {
	tb.Helper()
	loop := sim.NewLoop()
	n := testScenario(sim.Second).Build(loop)
	f := tcp.NewFlow(loop, n, 1, cc.MustNew("pure"), tcp.Options{})
	return f.Conn
}
