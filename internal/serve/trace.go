package serve

// Trace export: the serving half of the closed learning loop. When
// Config.Trace is set, every session accumulates the decisions it serves
// (raw GR state, applied cwnd ratio, fallback flag) into a bounded
// window, and the engine hands the *complete* window to the sink at every
// point where the window's story ends: session close, LRU eviction,
// explicit reset, engine drain, hot-swap (a window must never mix two
// models' actions), or simply filling up (rotation). Windows are never
// flushed mid-decision, so a sink sees whole trajectories or nothing.
//
// The sink runs on the engine's batch path and must not block; a slow
// consumer has to shed (see feedback.SpoolSink) rather than stall serving.

// Trace metric names.
const (
	MetricTraceWindows = "serve.trace_windows"
	MetricTraceSteps   = "serve.trace_steps"
)

// Window flush reasons, recorded in every exported window so the consumer
// can tell a naturally-complete trajectory from a lifecycle-truncated one.
const (
	TraceReasonClose  = "close"  // CloseSession freed the flow
	TraceReasonEvict  = "evict"  // LRU eviction past MaxSessions
	TraceReasonReset  = "reset"  // ResetSession cleared recurrent state
	TraceReasonDrain  = "drain"  // engine Close drained the session table
	TraceReasonSwap   = "swap"   // hot-swap: the acting model is changing
	TraceReasonRotate = "rotate" // window hit TraceWindowSteps and rolled
)

// TraceStep is one served decision: the raw (unmasked) GR state the
// decision was computed from and the cwnd ratio actually applied.
// Fallback marks safety no-ops (degraded session); such steps carry
// ratio 1 and never touched the recurrent state. Steps with non-finite
// state are never recorded — they carry no usable observation.
type TraceStep struct {
	State    []float64
	Ratio    float64
	Fallback bool
}

// TraceWindow is one session's contiguous run of decisions under a single
// model, flushed whole.
type TraceWindow struct {
	SID    uint64
	Reason string
	Steps  []TraceStep
}

// TraceSink receives completed windows. ExportWindow must not block and
// must not retain the window's slices beyond the call unless it owns them
// (the engine hands over ownership — it never touches a window again).
// Implementations must be safe for concurrent use: windows are exported
// from worker goroutines and from lifecycle paths holding engine locks.
type TraceSink interface {
	ExportWindow(w TraceWindow)
}

// recordTrace appends one decided step to the session's open window,
// copying state. Caller owns the session (holds e.mu, or busy=true).
func (s *session) recordTrace(state []float64, ratio float64, fallback bool) {
	s.trace = append(s.trace, TraceStep{
		State:    append([]float64(nil), state...),
		Ratio:    ratio,
		Fallback: fallback,
	})
}

// exportTrace hands the session's open window (if any) to the sink and
// starts a fresh one. Caller owns the session. The sink call itself is
// lock-free on the engine side, so it is safe under e.mu — the contract
// is that the sink does not re-enter the engine.
func (e *Engine) exportTrace(s *session, reason string) {
	if e.cfg.Trace == nil || len(s.trace) == 0 {
		return
	}
	w := TraceWindow{SID: s.id, Reason: reason, Steps: s.trace}
	s.trace = nil // ownership transfers to the sink
	e.cfg.Metrics.Counter(MetricTraceWindows).Inc()
	e.cfg.Metrics.Counter(MetricTraceSteps).Add(int64(len(w.Steps)))
	e.cfg.Trace.ExportWindow(w)
}
