package serve

import (
	"errors"
	"testing"
	"time"

	"sage/internal/gr"
	"sage/internal/nn"
)

func plainPolicy() *nn.Policy { return nn.NewPolicy(nn.PolicyConfig{InDim: gr.StateDim}) }

// forceMode pins the ladder to a rung for tests that exercise behavior at
// that rung without having to manufacture the load that reaches it.
func forceMode(e *Engine, m Mode) {
	e.ov.mu.Lock()
	e.ov.setModeLocked(m)
	e.ov.healthy = 0
	e.ov.mu.Unlock()
}

func overloadEngine(cfg OverloadConfig) *Engine {
	return NewEngine(Config{
		Policy:        plainPolicy(),
		MaxBatch:      8,
		BatchDeadline: 200 * time.Microsecond,
		Workers:       2,
		Overload:      &cfg,
	})
}

// The ladder escalates immediately on breach — possibly several rungs at
// once — and de-escalates one rung per HealthyEvals calm windows, so full
// recovery is bounded by 3×HealthyEvals evaluation windows.
func TestLadderEscalateAndBoundedRecovery(t *testing.T) {
	o := newOverload(OverloadConfig{MaxInflight: 100, HealthyEvals: 2}, 8, time.Millisecond, nil)
	now := time.Now()

	o.notePeak(100) // 100% occupancy: straight to draining
	o.eval(now, true)
	if got := o.mode(); got != ModeDraining {
		t.Fatalf("mode after saturation = %v, want draining", got)
	}

	// Calm windows: one rung per HealthyEvals, so at most 3×HealthyEvals
	// windows from draining back to full.
	evals := 0
	for o.mode() != ModeFull {
		o.eval(now, true)
		evals++
		if evals > 3*o.cfg.HealthyEvals {
			t.Fatalf("still at %v after %d calm windows", o.mode(), evals)
		}
	}
	if evals != 3*o.cfg.HealthyEvals {
		t.Errorf("recovered in %d windows, want exactly %d (one rung per HealthyEvals)", evals, 3*o.cfg.HealthyEvals)
	}

	// A breach mid-recovery resets the hysteresis counter.
	o.notePeak(60) // 60% ≥ ShedFrac
	o.eval(now, true)
	if got := o.mode(); got != ModeShedShadow {
		t.Fatalf("mode after 60%% occupancy = %v, want shed-shadow", got)
	}
	o.eval(now, true) // healthy = 1
	o.notePeak(60)
	o.eval(now, true) // breach again: healthy back to 0
	o.eval(now, true) // healthy = 1
	if got := o.mode(); got != ModeShedShadow {
		t.Fatalf("mode flapped to %v despite unexpired hysteresis", got)
	}
}

// Each budget signal maps to its documented rung.
func TestLadderSignalRungs(t *testing.T) {
	now := time.Now()

	cases := []struct {
		name string
		load func(o *overload)
		want Mode
	}{
		{"batch-wait p99 breach", func(o *overload) {
			for i := 0; i < 100; i++ {
				o.noteBatchWait(time.Microsecond)
			}
			for i := 0; i < 5; i++ {
				o.noteBatchWait(time.Second) // 5% > waitBreachFrac
			}
		}, ModeShedShadow},
		{"decision deadline misses", func(o *overload) {
			for i := 0; i < 90; i++ {
				o.noteLatency(time.Millisecond)
			}
			for i := 0; i < 10; i++ {
				o.noteLatency(time.Second) // 10% > missBreachFrac
			}
		}, ModeDegraded},
		{"occupancy at degrade fraction", func(o *overload) {
			o.notePeak(80) // 80% ≥ DegradeFrac
		}, ModeDegraded},
	}
	for _, tc := range cases {
		o := newOverload(OverloadConfig{MaxInflight: 100, DecisionBudget: 250 * time.Millisecond}, 8, time.Millisecond, nil)
		tc.load(o)
		o.eval(now, true)
		if got := o.mode(); got != tc.want {
			t.Errorf("%s: mode = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// At ModeDegraded the async path serves low-priority requests with the
// explicit cheap fallback — instantly, without touching session state —
// while high-priority requests still run the learned policy.
func TestDecideBrownoutPriority(t *testing.T) {
	eng := overloadEngine(OverloadConfig{MaxInflight: 1024})
	eng.Start()
	defer eng.Close()
	forceMode(eng, ModeDegraded)

	state := make([]float64, gr.StateDim)
	w, fb, err := eng.DecidePri(1, 10, state, false)
	if err != nil || !fb {
		t.Fatalf("low-pri under brownout: (%v, fb=%v, %v), want explicit fallback", w, fb, err)
	}
	if w != 10 {
		t.Fatalf("low-pri fallback cwnd = %v, want the clamped echo 10", w)
	}
	if n := eng.Sessions(); n != 0 {
		t.Fatalf("cheap path materialized %d sessions, want 0", n)
	}

	if _, _, err := eng.DecidePri(2, 10, state, true); err != nil {
		t.Fatalf("high-pri under brownout: %v, want served", err)
	}
	if n := eng.Sessions(); n != 1 {
		t.Fatalf("high-pri decision left %d sessions, want 1", n)
	}

	// ModeDraining: resident sessions drain on the cheap path, unknown
	// sessions are rejected with the typed error.
	forceMode(eng, ModeDraining)
	if _, fb, err := eng.DecidePri(2, 10, state, true); err != nil || !fb {
		t.Fatalf("draining resident session: (fb=%v, %v), want cheap fallback", fb, err)
	}
	_, _, err = eng.DecidePri(99, 10, state, true)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("draining new session: %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
		t.Fatalf("rejection %v carries no retry-after hint", err)
	}
	base := eng.ov.cfg.RetryAfter
	if oe.RetryAfter < base/2 || oe.RetryAfter >= base/2+base {
		t.Fatalf("retry-after %v outside jitter range [%v, %v)", oe.RetryAfter, base/2, base/2+base)
	}
	if n := eng.Sessions(); n != 1 {
		t.Fatalf("rejected decide changed session count to %d", n)
	}
}

// The global in-flight cap rejects rather than queues: with MaxInflight=1
// and a parked worker pool, a second concurrent Decide must get the typed
// overload error, and an undone admission must not leak queue slots.
func TestDecideInflightCap(t *testing.T) {
	eng := overloadEngine(OverloadConfig{MaxInflight: 1})
	// Long deadline parks the first request in the dispatcher's open batch.
	eng.cfg.BatchDeadline = 200 * time.Millisecond
	eng.cfg.MaxBatch = 64
	eng.Start()
	defer eng.Close()

	state := make([]float64, gr.StateDim)
	first := make(chan error, 1)
	go func() {
		_, _, err := eng.Decide(1, 10, state)
		first <- err
	}()
	// Wait until session 1's request is actually admitted.
	for i := 0; eng.queued.Load() == 0; i++ {
		if i > 1000 {
			t.Fatal("first decide never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := eng.Decide(2, 10, state); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("decide over cap: %v, want ErrOverloaded", err)
	}
	// The rejected session must be released for a future attempt.
	eng.mu.Lock()
	s2 := eng.sessions[2]
	busy := s2 != nil && s2.busy
	eng.mu.Unlock()
	if busy {
		t.Fatal("rejected session left busy")
	}
	if err := <-first; err != nil {
		t.Fatalf("admitted decide failed: %v", err)
	}
	if got := eng.queued.Load(); got != 0 {
		t.Fatalf("queued = %d after drain, want 0", got)
	}
	if eng.ov.shedT.Load() == 0 {
		t.Fatal("shed total not incremented")
	}
}

// Health reflects the ladder and its counters; readiness covers exactly
// the rungs where live flows still get full learned service.
func TestHealthDoc(t *testing.T) {
	eng := overloadEngine(OverloadConfig{MaxInflight: 1024})
	eng.Start()
	defer eng.Close()

	h := eng.Health()
	if !h.Protected || h.Mode != "full" || !h.Ready() {
		t.Fatalf("baseline health = %+v, want protected, full, ready", h)
	}
	forceMode(eng, ModeShedShadow)
	if h := eng.Health(); !h.Ready() {
		t.Fatalf("shed-shadow not ready: %+v (live flows are unaffected at this rung)", h)
	}
	forceMode(eng, ModeDegraded)
	if h := eng.Health(); h.Ready() {
		t.Fatalf("degraded reported ready: %+v", h)
	}
	state := make([]float64, gr.StateDim)
	if _, _, err := eng.Decide(7, 10, state); err != nil {
		t.Fatal(err)
	}
	if h := eng.Health(); h.Degraded == 0 {
		t.Fatalf("health after degraded decision = %+v, want Degraded > 0", h)
	}

	// An unprotected engine is always ready at mode "full".
	plain := NewEngine(Config{Policy: plainPolicy()})
	if h := plain.Health(); h.Protected || !h.Ready() {
		t.Fatalf("unprotected health = %+v, want unprotected and ready", h)
	}
}
