package serve_test

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"sage/internal/serve"
	"sage/internal/telemetry"
)

// shadowRecorder counts mirrored decisions (the PR 8 shadow interface).
type shadowRecorder struct{ n int }

func (s *shadowRecorder) Observe(sid uint64, state []float64, ratio float64, fallback bool) { s.n++ }

// Synchronous-path brownout, end to end over exported surface only: a
// backlog past the occupancy rungs escalates the ladder at Flush; the
// shadow observer is shed first; at ModeDegraded every flow still gets an
// explicit cheap decision (never silence) and guard-facing controllers
// report BrownedOut; calm evaluation windows recover to full service
// within the documented bound.
func TestSyncBrownoutLadder(t *testing.T) {
	reg := telemetry.NewRegistry()
	healthy := 2
	eng := serve.NewEngine(serve.Config{
		Policy:   testPolicy(41),
		MaxBatch: 64,
		Metrics:  reg,
		Overload: &serve.OverloadConfig{MaxInflight: 8, HealthyEvals: healthy},
	})
	shadow := &shadowRecorder{}
	eng.SetShadow(shadow)
	ctrl := serve.NewController(eng)

	rng := rand.New(rand.NewSource(7))
	enqueueN := func(n int) {
		for i := 0; i < n; i++ {
			eng.Enqueue(uint64(100+i), benchConn(t), randState(rng))
		}
	}

	// 16 pending vs MaxInflight 8: occupancy 2.0 ≥ DrainFrac. The overflow
	// past MaxPending (8) is served the cheap path in the same Flush.
	enqueueN(16)
	eng.Flush(0)
	if got := eng.OverloadMode(); got != serve.ModeDraining {
		t.Fatalf("mode after saturated flush = %v, want draining", got)
	}
	if !ctrl.BrownedOut() {
		t.Fatal("controller does not report brownout at draining")
	}
	if got := reg.Counter(serve.MetricOverloadDegraded).Value(); got != 8 {
		t.Fatalf("overflow degraded count = %d, want 8", got)
	}
	preShadow := shadow.n
	if preShadow == 0 {
		t.Fatal("shadow saw nothing during the full-service flush prefix")
	}

	// Browned out: the next interval's decisions are all served — cheap
	// path, no policy pass, shadow untouched.
	enqueueN(4)
	eng.Flush(0)
	if got := reg.Counter(serve.MetricOverloadDegraded).Value(); got != 12 {
		t.Fatalf("degraded count = %d, want 12 (every flow still decided)", got)
	}
	if shadow.n != preShadow {
		t.Fatalf("shadow observed %d decisions during brownout, want 0 new", shadow.n-preShadow)
	}
	if reg.Gauge(serve.MetricOverloadMode).Value() != float64(serve.ModeDraining) {
		t.Fatalf("mode gauge = %v, want %d", reg.Gauge(serve.MetricOverloadMode).Value(), serve.ModeDraining)
	}

	// Bounded recovery: one rung per HealthyEvals calm windows.
	for i := 0; i < 3*healthy; i++ {
		eng.OverloadTick()
	}
	if got := eng.OverloadMode(); got != serve.ModeFull {
		t.Fatalf("mode after %d calm windows = %v, want full", 3*healthy, got)
	}
	if ctrl.BrownedOut() {
		t.Fatal("controller still browned out after recovery")
	}
	// Shed-shadow specifically: half occupancy pauses mirroring but keeps
	// serving the policy.
	enqueueN(4) // 4/8 = ShedFrac
	eng.Flush(0)
	eng.OverloadTick() // the flush's own eval may be inside the last window
	if got := eng.OverloadMode(); got != serve.ModeShedShadow {
		t.Fatalf("mode after half occupancy = %v, want shed-shadow", got)
	}
	pre := shadow.n
	enqueueN(2)
	eng.Flush(0)
	if shadow.n != pre {
		t.Fatal("shadow observed decisions while shed")
	}
	if reg.Counter(serve.MetricOverloadShadowShed).Value() == 0 {
		t.Fatal("shadow_shed counter not incremented")
	}
	if reg.Counter(serve.MetricDecisions).Value() == 0 {
		t.Fatal("policy decisions stopped at shed-shadow (live flows must be unaffected)")
	}
}

// A decide past the in-flight cap gets the typed OVERLOAD wire reply with
// a parseable retry-after hint, while the admitted request completes.
func TestWireOverloadReply(t *testing.T) {
	reg := telemetry.NewRegistry()
	eng := serve.NewEngine(serve.Config{
		Policy:        testPolicy(43),
		MaxBatch:      64,
		BatchDeadline: 150 * time.Millisecond, // parks the first request in the open batch
		Workers:       1,
		Metrics:       reg,
		Overload:      &serve.OverloadConfig{MaxInflight: 1, EvalInterval: time.Hour},
	})
	sock, stop := startServer(t, eng)
	defer stop()

	rng := rand.New(rand.NewSource(11))
	a, err := serve.Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := serve.Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	aDone := make(chan byte, 1)
	go func() {
		_, status, err := a.Decide(1, 10, randState(rng))
		if err != nil {
			t.Errorf("admitted decide: %v", err)
		}
		aDone <- status
	}()
	// Wait until the first request is admitted into the batcher.
	for i := 0; reg.Gauge(serve.MetricQueueDepth).Value() == 0; i++ {
		if i > 1000 {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	cwnd, status, err := b.Decide(2, 17, randState(rand.New(rand.NewSource(12))))
	if err != nil {
		t.Fatalf("overloaded decide errored: %v (must be an explicit reply)", err)
	}
	if status != serve.StatusOverload {
		t.Fatalf("status = %d, want StatusOverload", status)
	}
	if cwnd != 17 {
		t.Fatalf("OVERLOAD reply cwnd = %v, want the request echoed (17)", cwnd)
	}
	if ra := b.RetryAfter(); ra <= 0 {
		t.Fatalf("RetryAfter = %v, want a positive jittered hint", ra)
	}
	if st := <-aDone; st != serve.StatusOK && st != serve.StatusFallback {
		t.Fatalf("admitted request finished with status %d", st)
	}
	if reg.Counter(serve.MetricOverloadShed).Value() == 0 {
		t.Fatal("shed counter not incremented")
	}
}

// The health verb answers with a readiness document including the
// server-side connection count.
func TestWireHealthVerb(t *testing.T) {
	eng := serve.NewEngine(serve.Config{
		Policy:   testPolicy(47),
		Workers:  1,
		Overload: &serve.OverloadConfig{},
	})
	sock, stop := startServer(t, eng)
	defer stop()

	cl, err := serve.Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	doc, err := cl.Health()
	if err != nil {
		t.Fatal(err)
	}
	var h serve.Health
	if err := json.Unmarshal([]byte(doc), &h); err != nil {
		t.Fatalf("health doc %q: %v", doc, err)
	}
	if !h.Protected || h.Mode != "full" || !h.Ready() {
		t.Fatalf("health = %+v, want protected, full, ready", h)
	}
	// At least this probe's connection; the startup probe's may not have
	// been reaped yet.
	if h.Conns < 1 {
		t.Fatalf("health conns = %d, want ≥ 1", h.Conns)
	}
}

// Accepts beyond MaxConns are shed with one explicit OVERLOAD frame — a
// connection storm cannot stack handler goroutines.
func TestServerMaxConns(t *testing.T) {
	reg := telemetry.NewRegistry()
	eng := serve.NewEngine(serve.Config{
		Policy:   testPolicy(53),
		Workers:  1,
		Metrics:  reg,
		Overload: &serve.OverloadConfig{},
	})
	sock := filepath.Join(t.TempDir(), "sage.sock")
	srv := serve.NewServer(eng)
	srv.MaxConns = 1
	go srv.ListenAndServe(sock)
	defer srv.Shutdown()

	var first *serve.Client
	var err error
	for i := 0; i < 200; i++ {
		first, err = serve.Dial(sock)
		if err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if _, _, err := first.Decide(1, 10, randState(rand.New(rand.NewSource(3)))); err != nil {
		t.Fatalf("first connection: %v", err)
	}

	second, err := serve.Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	second.SetTimeout(2 * time.Second)
	_, status, err := second.Decide(2, 10, randState(rand.New(rand.NewSource(4))))
	if err != nil {
		t.Fatalf("shed connection got %v, want an explicit OVERLOAD frame", err)
	}
	if status != serve.StatusOverload {
		t.Fatalf("shed connection status = %d, want StatusOverload", status)
	}
	if ra := second.RetryAfter(); ra <= 0 {
		t.Fatalf("shed connection RetryAfter = %v, want positive", ra)
	}
	if reg.Counter(serve.MetricOverloadConnShed).Value() != 1 {
		t.Fatalf("conn_shed = %d, want 1", reg.Counter(serve.MetricOverloadConnShed).Value())
	}
}

// A canceled context aborts the connect instead of blocking on a hung
// daemon, and a dead socket path fails within the dial bound.
func TestDialContextAndTimeout(t *testing.T) {
	eng := serve.NewEngine(serve.Config{Policy: testPolicy(59), Workers: 1})
	sock, stop := startServer(t, eng)
	defer stop()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := serve.DialContext(ctx, sock); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled dial: %v, want context.Canceled", err)
	}

	start := time.Now()
	_, err := serve.DialTimeout(filepath.Join(t.TempDir(), "absent.sock"), 500*time.Millisecond)
	if err == nil {
		t.Fatal("dial to absent socket succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dial failure took %v, want bounded", elapsed)
	}

	// The priority byte round-trips: a high-priority client is served
	// normally at full service.
	cl, err := serve.DialContext(context.Background(), sock)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetHighPriority(true)
	if _, status, err := cl.Decide(1, 10, randState(rand.New(rand.NewSource(6)))); err != nil || (status != serve.StatusOK && status != serve.StatusFallback) {
		t.Fatalf("high-priority decide: status %d, err %v", status, err)
	}
}
