package serve_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"sage/internal/serve"
	"sage/internal/sim"
	"sage/internal/telemetry"
)

// Close racing the synchronous Enqueue/Flush path and the async Decide
// path must drain cleanly: no session is released while a flush is
// consuming it, post-close calls are no-ops, and nothing panics. The
// -race build of this test is the regression fence for the drain path.
func TestEngineCloseRacesEnqueueAndDecide(t *testing.T) {
	for round := 0; round < 8; round++ {
		pol := testPolicy(int64(100 + round))
		reg := telemetry.NewRegistry()
		eng := serve.NewEngine(serve.Config{
			Policy:        pol,
			MaxBatch:      16,
			BatchDeadline: 20 * time.Microsecond,
			Workers:       2,
			Metrics:       reg,
		})
		eng.Start()

		var wg sync.WaitGroup
		start := make(chan struct{})

		// The engine's one synchronous caller: Enqueue+Flush in a loop.
		// (Flush is not safe for concurrent use — exactly one goroutine
		// drives it, as rollout's sim thread would.)
		syncIDs := make([]uint64, 4)
		for i := range syncIDs {
			syncIDs[i] = eng.NewSessionID()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(round)))
			conn := benchConn(t)
			<-start
			for i := 0; i < 500; i++ {
				eng.Enqueue(syncIDs[i%4], conn, randState(rng))
				if i%3 == 0 {
					eng.Flush(sim.Time(i) * sim.Millisecond)
				}
			}
			eng.Flush(sim.Second)
		}()

		// Async clients hammering Decide across the close.
		for f := 0; f < 4; f++ {
			wg.Add(1)
			go func(f int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(1000 + f)))
				sid := eng.NewSessionID()
				<-start
				for i := 0; i < 500; i++ {
					if _, _, err := eng.Decide(sid, 50, randState(rng)); err != nil {
						if err == serve.ErrClosed {
							return // expected once the close lands
						}
						t.Errorf("flow %d: %v", f, err)
						return
					}
				}
			}(f)
		}

		close(start)
		time.Sleep(time.Duration(round) * 300 * time.Microsecond)
		eng.Close()
		wg.Wait()

		// Post-close, every entry point is a harmless no-op.
		conn := benchConn(t)
		eng.Enqueue(99, conn, randState(rand.New(rand.NewSource(1)))) // must not panic or deadlock
		eng.Flush(sim.Second)
		if _, _, err := eng.Decide(99, 50, randState(rand.New(rand.NewSource(2)))); err != serve.ErrClosed {
			t.Fatalf("post-close Decide err = %v, want ErrClosed", err)
		}
		if _, err := eng.Swap(pol, nil); err != serve.ErrSwapClosed {
			t.Fatalf("post-close Swap err = %v, want ErrSwapClosed", err)
		}
		eng.Close() // idempotent
	}
}
