// Package serve is the batched policy-serving engine: one inference
// service multiplexing any number of concurrent flows onto shared batched
// forward passes.
//
// A per-flow controller (rl.PolicyController, core.Agent) runs one full
// network forward per flow per control interval; at fleet scale that is
// thousands of small GEMV calls that thrash the cache and re-derive every
// scratch buffer. The Engine instead keeps one session per flow — just
// the recurrent hidden state plus bookkeeping — and folds all flows due
// for a decision into one matrix forward pass (nn.Policy.BatchForward),
// which is bitwise identical to the sequential path per row and several
// times faster in aggregate.
//
// Three ways in:
//
//   - serve.Controller implements rollout.Controller + rollout.BatchFlusher,
//     so fairness/friendliness RunMulti experiments transparently share one
//     engine: each flow's Control enqueues its state, and the end-of-interval
//     flush runs one batched pass and applies every cwnd decision.
//   - The sage-serve daemon (cmd/sage-serve) serves decisions over a Unix
//     socket with a length-prefixed binary protocol (proto.go, server.go),
//     micro-batching concurrent requests under a deadline.
//   - Direct library use: Engine.Decide (async, after Start) or the
//     enqueue/Flush pair (synchronous, deterministic).
//
// Safety: a session whose state vector or inferred action is non-finite
// falls back to a no-op decision (ratio 1.0, hidden state untouched) and
// increments serve.fallbacks — one poisoned flow never stalls or corrupts
// the rest of its batch. Guard integration: wrap each flow's Controller
// with guard.NewBatched; a tripped guard stops enqueuing (its flow simply
// contributes no row) and re-admission resets only that flow's session.
//
// Overload: the engine carries an always-on protection layer (overload.go)
// — a global in-flight admission cap with typed rejection (OverloadError /
// the wire OVERLOAD status, both carrying a jittered retry-after hint) and
// a brownout ladder (full → shed-shadow → degraded → draining) that sheds
// the cheapest work first and keeps producing explicit decisions at every
// rung; recovery to full service is hysteretic and time-bounded. Health()
// exposes a readiness document, served over the wire by the health verb.
package serve
