package serve_test

import (
	"fmt"
	"math/rand"
	"testing"

	"sage/internal/cc"
	"sage/internal/gr"
	"sage/internal/nn"
	"sage/internal/rl"
	"sage/internal/rollout"
	"sage/internal/serve"
	"sage/internal/sim"
	"sage/internal/tcp"
)

// benchFleet builds n standalone connections plus a per-flow random
// state sequence — everything both serving paths need for one control
// interval over the whole fleet.
type benchFleet struct {
	conns  []*tcp.Conn
	states [][]float64
}

// benchPolicy uses the production default architecture (Enc 64, Hidden
// 32, 2 res blocks, K 5) rather than the smaller test policy, so the
// scaling numbers reflect what a deployment serves.
func benchPolicy() *nn.Policy {
	p := nn.NewPolicy(nn.PolicyConfig{InDim: gr.StateDim, Seed: 1})
	rng := rand.New(rand.NewSource(2))
	var fit [][]float64
	for i := 0; i < 64; i++ {
		fit = append(fit, randState(rng))
	}
	p.Norm = nn.FitNormalizer(fit)
	return p
}

func newBenchFleet(tb testing.TB, n int) *benchFleet {
	tb.Helper()
	loop := sim.NewLoop()
	net := testScenario(sim.Second).Build(loop)
	rng := rand.New(rand.NewSource(1))
	f := &benchFleet{}
	for i := 0; i < n; i++ {
		fl := tcp.NewFlow(loop, net, i+1, cc.MustNew("pure"), tcp.Options{})
		f.conns = append(f.conns, fl.Conn)
		f.states = append(f.states, randState(rng))
	}
	return f
}

// BenchmarkServe{10,100,1000}Flows vs BenchmarkSequential*Flows pins the
// engine's scaling claim: one interval of decisions for the whole fleet,
// batched through the shared engine versus run as N independent
// rl.PolicyController forwards. The acceptance bar for this subsystem is
// batched >= 3x sequential at 1000 flows.
func benchmarkServe(b *testing.B, flows int) {
	pol := benchPolicy()
	fleet := newBenchFleet(b, flows)
	eng := serve.NewEngine(serve.Config{Policy: pol, MaxBatch: 1024, MaxSessions: flows + 1})
	ctls := make([]*serve.Controller, flows)
	for i := range ctls {
		ctls[i] = serve.NewController(eng)
	}
	now := sim.Second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, c := range ctls {
			c.Control(now, fleet.conns[j], fleet.states[j])
		}
		ctls[0].FlushBatch(now)
	}
}

func benchmarkSequential(b *testing.B, flows int) {
	pol := benchPolicy()
	fleet := newBenchFleet(b, flows)
	ctls := make([]*rl.PolicyController, flows)
	for i := range ctls {
		ctls[i] = rl.NewPolicyController(pol, nil, false, int64(i))
	}
	now := sim.Second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, c := range ctls {
			c.Control(now, fleet.conns[j], fleet.states[j])
		}
	}
}

func BenchmarkServe10Flows(b *testing.B)        { benchmarkServe(b, 10) }
func BenchmarkServe100Flows(b *testing.B)       { benchmarkServe(b, 100) }
func BenchmarkServe1000Flows(b *testing.B)      { benchmarkServe(b, 1000) }
func BenchmarkSequential10Flows(b *testing.B)   { benchmarkSequential(b, 10) }
func BenchmarkSequential100Flows(b *testing.B)  { benchmarkSequential(b, 100) }
func BenchmarkSequential1000Flows(b *testing.B) { benchmarkSequential(b, 1000) }

// BenchmarkRunMulti measures the end-to-end simulation win: a full
// multi-flow fairness run served batched vs sequentially.
func benchmarkRunMulti(b *testing.B, flows int, batched bool) {
	pol := benchPolicy()
	sc := testScenario(2 * sim.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var eng *serve.Engine
		if batched {
			eng = serve.NewEngine(serve.Config{Policy: pol, MaxBatch: 1024, MaxSessions: flows + 1})
		}
		specs := make([]rollout.FlowSpec, flows)
		for j := range specs {
			var ctl rollout.Controller
			if batched {
				ctl = serve.NewController(eng)
			} else {
				ctl = rl.NewPolicyController(pol, nil, false, int64(j))
			}
			specs[j] = rollout.FlowSpec{
				Name: fmt.Sprintf("f%d", j), CC: cc.MustNew("pure"), Controller: ctl,
			}
		}
		rollout.RunMulti(sc, specs, rollout.MultiOptions{})
	}
}

func BenchmarkRunMulti32Batched(b *testing.B)    { benchmarkRunMulti(b, 32, true) }
func BenchmarkRunMulti32Sequential(b *testing.B) { benchmarkRunMulti(b, 32, false) }
