package serve

import (
	"sage/internal/sim"
	"sage/internal/tcp"
)

// Controller adapts one flow onto a shared Engine: it implements
// rollout.Controller and rollout.BatchFlusher, so a RunMulti fleet where
// every FlowSpec carries its own serve.NewController(eng) transparently
// serves all flows from one batched forward pass per interval.
//
// Control only enqueues the flow's state; rollout calls FlushBatch after
// the whole control sweep, which runs the batch and applies every cwnd
// decision (SetCwnd + Kick) in enqueue order. Several controllers share
// one engine; the first FlushBatch of an interval serves everyone and the
// rest are no-ops on an empty queue.
//
// In deterministic mode the decisions are bitwise identical to giving
// each flow its own rl.PolicyController (see TestEngineMatchesSequential).
// For guarded deployments wrap it with guard.NewBatched, which preserves
// the flush path and resets only this flow's session on re-admission.
type Controller struct {
	eng *Engine
	sid uint64
}

// NewController binds a fresh engine session to a new per-flow controller.
func NewController(eng *Engine) *Controller {
	return &Controller{eng: eng, sid: eng.NewSessionID()}
}

// SessionID exposes the engine session this flow owns.
func (c *Controller) SessionID() uint64 { return c.sid }

// Control implements rollout.Controller by deferring the decision into
// the engine's current batch.
func (c *Controller) Control(now sim.Time, conn *tcp.Conn, state []float64) {
	c.eng.Enqueue(c.sid, conn, state)
}

// FlushBatch implements rollout.BatchFlusher.
func (c *Controller) FlushBatch(now sim.Time) { c.eng.Flush(now) }

// Reset clears this flow's recurrent state (guard re-admission, or reuse
// across runs). It also clears the hot-swap degraded pin, so a guardian
// restore after a swap re-admits the flow against the current model.
func (c *Controller) Reset() { c.eng.ResetSession(c.sid) }

// Degraded reports that a hot-swap failed to migrate this flow's recurrent
// state (re-priming produced non-finite values) and the session is pinned
// to fallback decisions. guard.GuardedController polls this and trips such
// a flow to its heuristic path.
func (c *Controller) Degraded() bool { return c.eng.SessionDegraded(c.sid) }

// BrownedOut reports that the shared engine's overload ladder has reached
// ModeDegraded or beyond, so this flow's decisions are being served by the
// cheap ratio-1.0 path instead of the learned policy. The guardian polls
// this and trips the flow to its Cubic heuristic — during brownout a real
// heuristic controls the window rather than a frozen one — and re-admits
// it after probation once the engine recovers.
func (c *Controller) BrownedOut() bool { return c.eng.OverloadMode() >= ModeDegraded }
