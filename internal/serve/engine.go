package serve

import (
	"container/list"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sage/internal/gr"
	"sage/internal/nn"
	"sage/internal/rl"
	"sage/internal/sim"
	"sage/internal/tcp"
	"sage/internal/telemetry"
)

// Engine errors.
var (
	// ErrSessionBusy reports a Decide for a session that already has a
	// request in flight. One outstanding request per session is the
	// concurrency contract that keeps recurrent state single-writer.
	ErrSessionBusy = errors.New("serve: session busy")
	// ErrClosed reports a Decide after Close started draining.
	ErrClosed = errors.New("serve: engine closed")
)

// Metric names the engine publishes (nil Registry costs nothing).
const (
	MetricDecisions   = "serve.decisions"
	MetricFallbacks   = "serve.fallbacks"
	MetricBatches     = "serve.batches"
	MetricBatchSize   = "serve.batch_size"
	MetricBatchWaitUs = "serve.batch_wait_us"
	MetricQueueDepth  = "serve.queue_depth"
	MetricSessions    = "serve.sessions"
	MetricSessOpened  = "serve.sessions_opened"
	MetricSessEvicted = "serve.sessions_evicted"
	MetricSessReset   = "serve.sessions_reset"
	MetricSwaps       = "serve.swaps"
	MetricReprimed    = "serve.swap_reprimed"
	MetricSwapDegrade = "serve.swap_degraded"
)

// ShadowObserver mirrors served decisions to a candidate model without
// affecting them: the engine calls Observe after each decision is final
// (internal/promote's shadow evaluator implements this). state is the raw
// (unmasked) observation and is only valid for the duration of the call;
// ratio is the cwnd multiplier the incumbent actually applied. Observe runs
// on the engine's batch path and must not block.
type ShadowObserver interface {
	Observe(sid uint64, state []float64, ratio float64, fallback bool)
}

// Config tunes an Engine. The zero value of every field but Policy is
// usable.
type Config struct {
	Policy *nn.Policy
	Mask   []int // input subset (nil = full 69-signal vector)

	// Stochastic samples actions from the GMM instead of taking its mean.
	// Deterministic mode is bitwise identical to a per-flow
	// rl.PolicyController; stochastic mode draws from per-worker RNG
	// streams, so individual draws differ from any per-flow sequence.
	Stochastic bool
	Seed       int64

	MinCwnd float64 // cwnd floor in packets (default 2, matching rl.PolicyController)
	MaxCwnd float64 // cwnd ceiling in packets (default 0 = none)

	// MaxSessions caps resident sessions; beyond it the least-recently
	// used idle session is evicted and a later request for its id starts
	// from a fresh hidden state (default 4096).
	MaxSessions int
	// MaxBatch bounds one batched forward pass (default 256). The
	// synchronous Flush path chunks larger backlogs; the async dispatcher
	// closes a batch early when it fills.
	MaxBatch int
	// BatchDeadline is how long the async dispatcher holds an open batch
	// waiting for more requests before running it (default 200µs).
	BatchDeadline time.Duration
	// Workers is the async forward-pass pool size (default GOMAXPROCS).
	Workers int

	// Overload, when non-nil, enables admission control and the brownout
	// degradation ladder (see OverloadConfig). Nil preserves historical
	// behavior: unbounded queues, no shedding, shadow always on.
	Overload *OverloadConfig

	// Trace, when non-nil, receives every session's completed decision
	// window (see TraceSink): the export side of the closed learning loop.
	// Nil disables tracing entirely at zero cost.
	Trace TraceSink
	// TraceWindowSteps caps one trace window's length; a window that fills
	// is flushed with reason "rotate" and a fresh one starts (default 256).
	TraceWindowSteps int

	// ReprimeWindow is how many recent decided states each session retains
	// for hot-swap hidden-state migration (default 8): Swap replays the
	// window through the incoming model so a long-lived flow's recurrent
	// state reflects its recent behaviour instead of restarting cold.
	// Negative disables retention (swapped sessions restart from a fresh
	// hidden state).
	ReprimeWindow int

	// Metrics, when non-nil, receives the serve.* counters above.
	Metrics *telemetry.Registry
}

func (c Config) fill() Config {
	if c.Mask == nil {
		c.Mask = gr.MaskFull()
	}
	if c.MinCwnd == 0 {
		c.MinCwnd = 2
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 4096
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 256
	}
	if c.BatchDeadline == 0 {
		c.BatchDeadline = 200 * time.Microsecond
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.TraceWindowSteps <= 0 {
		c.TraceWindowSteps = 256
	}
	if c.ReprimeWindow == 0 {
		c.ReprimeWindow = 8
	} else if c.ReprimeWindow < 0 {
		c.ReprimeWindow = 0
	}
	return c
}

// session is one flow's resident state: the recurrent hidden vector plus
// lifecycle bookkeeping. Sessions are created on first use, reset on
// guard re-admission, and LRU-evicted past Config.MaxSessions.
type session struct {
	id     uint64
	hidden []float64
	// stateBuf holds the raw state between enqueue and Flush on the
	// synchronous path (the monitor's slice is not ours to keep).
	stateBuf []float64
	busy     bool // one outstanding async request per session
	elem     *list.Element

	// window is a ring of the last Config.ReprimeWindow raw states that
	// produced a policy decision, oldest first from window[wpos]: the trace
	// Swap replays through an incoming model to migrate this session's
	// recurrent state. Fallback decisions are excluded — they never touched
	// the hidden state.
	window [][]float64
	wpos   int

	// degraded pins the session to fallback decisions (ratio 1) after a
	// hot-swap re-prime produced non-finite hidden state. Cleared by
	// ResetSession, so a guard trip/restore cycle re-admits the flow
	// against the new model from a fresh hidden state.
	degraded bool

	// pendingReset records a ResetSession that arrived while a worker owned
	// this session's state (busy); applied when the in-flight decision
	// releases it.
	pendingReset bool

	// trace is the open decision window exported to Config.Trace when this
	// session's story ends (close/evict/reset/drain/swap) or the window
	// fills. Nil when tracing is off.
	trace []TraceStep
}

// recordWindow appends a decided state to the re-prime ring (copying it).
func (s *session) recordWindow(state []float64, limit int) {
	if limit <= 0 {
		return
	}
	if len(s.window) < limit {
		s.window = append(s.window, append([]float64(nil), state...))
		return
	}
	dst := s.window[s.wpos]
	if len(dst) != len(state) {
		dst = make([]float64, len(state))
	}
	copy(dst, state)
	s.window[s.wpos] = dst[:len(state)]
	s.wpos = (s.wpos + 1) % limit
}

// windowOrdered returns the ring oldest-first (aliasing the ring's slices).
func (s *session) windowOrdered() [][]float64 {
	if s.wpos == 0 {
		return s.window
	}
	out := make([][]float64, 0, len(s.window))
	out = append(out, s.window[s.wpos:]...)
	return append(out, s.window[:s.wpos]...)
}

func (s *session) clearWindow() {
	s.window = s.window[:0]
	s.wpos = 0
}

// pendingDecision is one enqueued synchronous decision.
type pendingDecision struct {
	sess *session
	conn *tcp.Conn
}

// request is one in-flight async decision.
type request struct {
	sess  *session
	state []float64
	done  chan asyncResult
}

type asyncResult struct {
	ratio    float64
	fallback bool
}

// batchBuf is the per-worker scratch for one batched pass: input and
// hidden matrices plus the policy's own scratch set. After warm-up a pass
// allocates nothing.
type batchBuf struct {
	states, hidden nn.Mat
	scratch        *nn.PolicyBatchScratch
	meanBuf        []float64
	flags          []bool // per-row fallback flags
	rng            *rand.Rand
	gen            uint64 // swap generation the scratch was built for
}

// Engine multiplexes flows onto shared batched forward passes.
type Engine struct {
	cfg Config

	mu       sync.Mutex
	sessions map[uint64]*session
	lru      list.List // front = most recently used
	pending  []pendingDecision

	nextID atomic.Uint64

	syncBuf batchBuf // synchronous Flush path (single caller: the sim loop)

	// polMu guards the hot-swappable parts of cfg (Policy, Mask) plus the
	// swap generation and shadow observer. forwardChunk snapshots them
	// under a read lock; Swap mutates them only after draining every
	// in-flight batch.
	polMu   sync.RWMutex
	swapGen uint64
	shadow  ShadowObserver

	// Async machinery (Start/Decide/Close).
	closeMu sync.RWMutex
	closed  bool
	started bool
	reqCh   chan *request
	workCh  chan []*request
	wg      sync.WaitGroup
	queued  atomic.Int64

	// Overload protection (nil when Config.Overload is nil).
	ov     *overload
	ovStop chan struct{}
}

// NewEngine builds an engine around a policy. Panics if cfg.Policy is nil.
func NewEngine(cfg Config) *Engine {
	if cfg.Policy == nil {
		panic("serve: Config.Policy is required")
	}
	cfg = cfg.fill()
	e := &Engine{cfg: cfg, sessions: make(map[uint64]*session)}
	if cfg.Overload != nil {
		e.ov = newOverload(*cfg.Overload, cfg.MaxBatch, cfg.BatchDeadline, cfg.Metrics)
	}
	e.syncBuf = e.newBatchBuf(0)
	return e
}

func (e *Engine) newBatchBuf(worker int) batchBuf {
	return batchBuf{
		scratch: e.cfg.Policy.NewBatchScratch(),
		meanBuf: make([]float64, e.cfg.Policy.GMM.K),
		rng:     rand.New(rand.NewSource(e.cfg.Seed + 7919*int64(worker+1))),
	}
}

// NewSessionID allocates a session id no other caller holds. Sessions
// themselves materialize lazily on first use; ids chosen by external
// clients (the daemon protocol) work the same way.
func (e *Engine) NewSessionID() uint64 { return e.nextID.Add(1) }

// sessionLocked returns the session for id, creating it (and evicting the
// LRU idle session past the cap) as needed. Caller holds e.mu.
func (e *Engine) sessionLocked(id uint64) *session {
	if s, ok := e.sessions[id]; ok {
		e.lru.MoveToFront(s.elem)
		return s
	}
	for len(e.sessions) >= e.cfg.MaxSessions {
		if !e.evictLocked() {
			break // everything is busy; admit over cap rather than deadlock
		}
	}
	s := &session{id: id, hidden: e.cfg.Policy.InitHidden()}
	s.elem = e.lru.PushFront(s)
	e.sessions[id] = s
	e.cfg.Metrics.Counter(MetricSessOpened).Inc()
	e.cfg.Metrics.Gauge(MetricSessions).Set(float64(len(e.sessions)))
	return s
}

// evictLocked removes the least-recently-used non-busy session. Returns
// false when every resident session is busy.
func (e *Engine) evictLocked() bool {
	for el := e.lru.Back(); el != nil; el = el.Prev() {
		s := el.Value.(*session)
		if s.busy {
			continue
		}
		e.exportTrace(s, TraceReasonEvict)
		e.lru.Remove(el)
		delete(e.sessions, s.id)
		e.cfg.Metrics.Counter(MetricSessEvicted).Inc()
		e.cfg.Metrics.Gauge(MetricSessions).Set(float64(len(e.sessions)))
		return true
	}
	return false
}

// ResetSession clears a session's recurrent state (between flows, or when
// the runtime guardian re-admits the policy). It also clears the hot-swap
// degraded pin and the re-prime trace window, so a flow the guardian
// re-admits after a swap starts cleanly against the *current* model rather
// than replaying state from before its fallback episode. A session that
// was evicted or never used is a no-op: it would start fresh anyway.
// A reset racing an in-flight async decide is deferred: the decision in
// flight completes against the pre-reset state (busy means a worker owns
// the hidden vector exclusively), and the reset applies the moment that
// decision releases the session.
func (e *Engine) ResetSession(id uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s, ok := e.sessions[id]; ok {
		if s.busy {
			s.pendingReset = true
			return
		}
		e.resetLocked(s)
	}
}

// resetLocked clears a session's recurrent state, degraded pin, and
// re-prime window. Caller holds e.mu and the session must not be busy.
func (e *Engine) resetLocked(s *session) {
	e.exportTrace(s, TraceReasonReset)
	for i := range s.hidden {
		s.hidden[i] = 0
	}
	s.degraded = false
	s.pendingReset = false
	s.clearWindow()
	e.cfg.Metrics.Counter(MetricSessReset).Inc()
}

// SessionDegraded reports whether a hot-swap left this session pinned to
// fallback decisions (re-priming its hidden state produced non-finite
// values). The runtime guardian polls this to trip such flows to the
// heuristic path; ResetSession clears the pin.
func (e *Engine) SessionDegraded(id uint64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.sessions[id]
	return ok && s.degraded
}

// SetShadow installs (or, with nil, removes) a shadow observer that sees
// every subsequent decision. Safe to call while the engine is serving; the
// observer must not mutate the state slice it is handed.
func (e *Engine) SetShadow(obs ShadowObserver) {
	e.polMu.Lock()
	e.shadow = obs
	e.polMu.Unlock()
}

// CloseSession frees a session's resident state.
func (e *Engine) CloseSession(id uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s, ok := e.sessions[id]; ok && !s.busy {
		e.exportTrace(s, TraceReasonClose)
		e.lru.Remove(s.elem)
		delete(e.sessions, id)
		e.cfg.Metrics.Gauge(MetricSessions).Set(float64(len(e.sessions)))
	}
}

// Sessions reports the resident session count.
func (e *Engine) Sessions() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sessions)
}

// ---------------------------------------------------------------------------
// Synchronous path: enqueue during the control sweep, Flush at interval end.

// Enqueue records that session id's flow wants a decision on state this
// interval; the decision is computed and applied (SetCwnd + Kick) by the
// next Flush, in enqueue order. The state slice is copied. An Enqueue that
// races with Close is a no-op: a draining engine accepts no new work, and
// the session is left idle so CloseSession can release it.
func (e *Engine) Enqueue(id uint64, conn *tcp.Conn, state []float64) {
	e.closeMu.RLock()
	if e.closed {
		e.closeMu.RUnlock()
		return
	}
	e.mu.Lock()
	s := e.sessionLocked(id)
	if cap(s.stateBuf) < len(state) {
		s.stateBuf = make([]float64, len(state))
	}
	s.stateBuf = s.stateBuf[:len(state)]
	copy(s.stateBuf, state)
	e.pending = append(e.pending, pendingDecision{sess: s, conn: conn})
	e.mu.Unlock()
	e.closeMu.RUnlock()
}

// Flush runs the batched forward pass over everything enqueued since the
// last Flush and applies each flow's cwnd decision in enqueue order.
// Within one GR interval no simulation events run between the control
// sweep and the flush, so deferred application is semantically identical
// to deciding inline — and in deterministic mode bitwise identical to a
// per-flow rl.PolicyController. Not safe for concurrent use (the sim loop
// is single-threaded); concurrent servers use Start/Decide instead.
func (e *Engine) Flush(now sim.Time) {
	e.mu.Lock()
	pend := e.pending
	e.pending = e.pending[len(e.pending):]
	e.mu.Unlock()
	if len(pend) == 0 {
		return
	}
	if e.ov != nil {
		e.ov.notePeak(int64(len(pend)))
		switch {
		case e.ov.mode() >= ModeDegraded:
			// Brownout: every flow still gets an explicit decision this
			// interval — the cheap ratio-1.0 path, no forward pass. A
			// guard-wrapped flow sees BrownedOut() and trips to its
			// heuristic, which then really controls the window.
			e.applyFallback(pend, now)
			pend = pend[:0]
		case len(pend) > e.ov.cfg.MaxPending:
			// Bound the learned-path backlog; the overflow tail gets the
			// cheap path rather than growing the batched pass without limit.
			e.applyFallback(pend[e.ov.cfg.MaxPending:], now)
			pend = pend[:e.ov.cfg.MaxPending]
		}
		defer e.ov.maybeEval(time.Now())
	}
	for lo := 0; lo < len(pend); lo += e.cfg.MaxBatch {
		hi := lo + e.cfg.MaxBatch
		if hi > len(pend) {
			hi = len(pend)
		}
		chunk := pend[lo:hi]
		e.forwardChunk(chunk, &e.syncBuf, func(i int, ratio float64) {
			c := chunk[i].conn
			c.SetCwnd(tcp.ClampCwnd(c.Cwnd*ratio, e.cfg.MinCwnd, e.cfg.MaxCwnd))
			c.Kick(now)
		})
	}
	e.mu.Lock()
	if len(e.pending) == 0 {
		e.pending = pend[:0] // reclaim the backing array for the next interval
	}
	e.mu.Unlock()
}

// applyFallback serves pending synchronous decisions via the cheap
// ratio-1.0 path: the window is clamped in place and the flow kicked, so
// degradation is an explicit decision, never silence. Deliberately not
// counted in serve.decisions/serve.fallbacks — those describe the model's
// health, and brownout is a capacity condition (serve.overload.degraded
// carries it instead).
func (e *Engine) applyFallback(pend []pendingDecision, now sim.Time) {
	for _, p := range pend {
		c := p.conn
		c.SetCwnd(tcp.ClampCwnd(c.Cwnd, e.cfg.MinCwnd, e.cfg.MaxCwnd))
		c.Kick(now)
	}
	e.ov.noteDegraded(int64(len(pend)))
}

// forwardChunk runs one batched pass over chunk and hands each row's cwnd
// ratio to apply, in order. Fallback rows (non-finite state or action, or a
// session degraded by a failed hot-swap re-prime) get ratio 1.0 and keep
// their previous hidden state.
func (e *Engine) forwardChunk(chunk []pendingDecision, buf *batchBuf, apply func(i int, ratio float64)) {
	e.polMu.RLock()
	pol, mask, gen, shadow := e.cfg.Policy, e.cfg.Mask, e.swapGen, e.shadow
	e.polMu.RUnlock()
	if shadow != nil && e.ov != nil && e.ov.mode() >= ModeShedShadow {
		// First rung of the brownout ladder: candidate mirroring is load
		// the serving plane can shed before any live flow feels anything.
		e.ov.noteShadowShed(int64(len(chunk)))
		shadow = nil
	}
	if buf.gen != gen {
		// A hot-swap replaced the policy since this buffer last ran: its
		// scratch set and GMM mean buffer are sized for the old network.
		buf.scratch = pol.NewBatchScratch()
		buf.meanBuf = make([]float64, pol.GMM.K)
		buf.gen = gen
	}
	n := len(chunk)
	inDim := len(mask)
	hDim := len(chunk[0].sess.hidden)
	buf.states.Reset(n, inDim)
	buf.hidden.Reset(n, hDim)
	fallback := buf.ensureFlags(n)
	for i, p := range chunk {
		fallback[i] = p.sess.degraded || !finiteVec(p.sess.stateBuf)
		if fallback[i] {
			zero(buf.states.Row(i))
		} else {
			gr.ApplyMaskInto(buf.states.Row(i), p.sess.stateBuf, mask)
		}
		buf.hidden.SetRow(i, p.sess.hidden)
	}
	heads, hNew := pol.BatchForward(&buf.states, &buf.hidden, buf.scratch)
	for i := range chunk {
		ratio := 1.0
		if !fallback[i] {
			var u float64
			if e.cfg.Stochastic {
				u = pol.GMM.Sample(heads.Row(i), buf.rng)
			} else {
				u = pol.GMM.MeanInto(heads.Row(i), buf.meanBuf)
			}
			r := rl.UToRatio(u)
			if math.IsNaN(u) || math.IsNaN(r) || math.IsInf(r, 0) {
				fallback[i] = true
			} else {
				ratio = r
				copy(chunk[i].sess.hidden, hNew.Row(i))
				chunk[i].sess.recordWindow(chunk[i].sess.stateBuf, e.cfg.ReprimeWindow)
			}
		}
		if fallback[i] {
			e.cfg.Metrics.Counter(MetricFallbacks).Inc()
		}
		e.cfg.Metrics.Counter(MetricDecisions).Inc()
		// Trace before apply: apply releases session ownership on the async
		// path (busy=false), after which a concurrent CloseSession may
		// export the window.
		if e.cfg.Trace != nil && finiteVec(chunk[i].sess.stateBuf) {
			s := chunk[i].sess
			s.recordTrace(s.stateBuf, ratio, fallback[i])
			if len(s.trace) >= e.cfg.TraceWindowSteps {
				e.exportTrace(s, TraceReasonRotate)
			}
		}
		apply(i, ratio)
		if shadow != nil {
			shadow.Observe(chunk[i].sess.id, chunk[i].sess.stateBuf, ratio, fallback[i])
		}
	}
	e.cfg.Metrics.Counter(MetricBatches).Inc()
	e.cfg.Metrics.Histogram(MetricBatchSize).Observe(float64(n))
}

// ensureFlags returns a reusable []bool of length n.
func (b *batchBuf) ensureFlags(n int) []bool {
	if cap(b.flags) < n {
		b.flags = make([]bool, n)
	}
	b.flags = b.flags[:n]
	return b.flags
}

// ---------------------------------------------------------------------------
// Asynchronous path: a deadline micro-batcher in front of a worker pool.

// Start spins up the dispatcher and worker pool behind Decide. Safe to
// call once; the synchronous Enqueue/Flush path does not need it.
func (e *Engine) Start() {
	e.closeMu.Lock()
	defer e.closeMu.Unlock()
	if e.started || e.closed {
		return
	}
	e.started = true
	depth := 4 * e.cfg.MaxBatch
	if e.ov != nil && e.ov.cfg.MaxInflight > depth {
		// Admission control already bounds in-flight work at MaxInflight;
		// sizing the channel to match keeps every admitted send
		// non-blocking, so rejection — not stalling — is the only
		// backpressure an admitted caller ever sees.
		depth = e.ov.cfg.MaxInflight
	}
	e.reqCh = make(chan *request, depth)
	e.workCh = make(chan []*request, e.cfg.Workers)
	e.wg.Add(1 + e.cfg.Workers)
	go e.dispatch()
	for w := 0; w < e.cfg.Workers; w++ {
		buf := e.newBatchBuf(w + 1)
		go e.worker(buf)
	}
	if e.ov != nil {
		e.ovStop = make(chan struct{})
		e.wg.Add(1)
		go e.overloadLoop(e.ovStop)
	}
}

// Decide blocks until the engine has batched and served a decision for
// session id: it returns the new cwnd for a flow currently at cwnd whose
// state vector is state. fallback reports that the decision was a safety
// no-op (non-finite state or action, or an overload brownout serving the
// cheap path). A session with a request already in flight gets
// ErrSessionBusy — retry after the outstanding call returns. Decide is
// low-priority: under brownout it degrades first (see DecidePri).
func (e *Engine) Decide(id uint64, cwnd float64, state []float64) (newCwnd float64, fallback bool, err error) {
	return e.DecidePri(id, cwnd, state, false)
}

// DecidePri is Decide with an explicit priority class. With overload
// protection enabled, admission control applies:
//
//   - ModeDraining: sessions the engine does not already hold are rejected
//     with a typed *OverloadError (admit-nothing-new); resident sessions
//     are served the cheap ratio-1.0 fallback while the backlog drains.
//   - ModeDegraded: low-priority requests get the cheap ratio-1.0 fallback
//     immediately (an explicit decision, never silence); high-priority
//     requests still run the learned policy.
//   - At the global in-flight cap (MaxInflight) any request is rejected
//     with *OverloadError instead of queueing unboundedly.
//
// The cheap paths never create or touch session state, so a shed or
// degraded request cannot grow the session table.
func (e *Engine) DecidePri(id uint64, cwnd float64, state []float64, highPri bool) (newCwnd float64, fallback bool, err error) {
	e.closeMu.RLock()
	if e.closed || !e.started {
		e.closeMu.RUnlock()
		return cwnd, false, ErrClosed
	}
	if e.ov != nil {
		switch mode := e.ov.mode(); {
		case mode == ModeDraining:
			e.mu.Lock()
			_, resident := e.sessions[id]
			e.mu.Unlock()
			if !resident {
				err := e.ov.reject(mode)
				e.closeMu.RUnlock()
				return cwnd, false, err
			}
			e.ov.noteDegraded(1)
			e.closeMu.RUnlock()
			return tcp.ClampCwnd(cwnd, e.cfg.MinCwnd, e.cfg.MaxCwnd), true, nil
		case mode >= ModeDegraded && !highPri:
			e.ov.noteDegraded(1)
			e.closeMu.RUnlock()
			return tcp.ClampCwnd(cwnd, e.cfg.MinCwnd, e.cfg.MaxCwnd), true, nil
		}
	}
	e.mu.Lock()
	s := e.sessionLocked(id)
	if s.busy {
		e.mu.Unlock()
		e.closeMu.RUnlock()
		return cwnd, false, ErrSessionBusy
	}
	s.busy = true
	e.mu.Unlock()

	n := e.queued.Add(1)
	if e.ov != nil {
		if n > int64(e.ov.cfg.MaxInflight) {
			// Bounded queue: reject explicitly rather than stack work the
			// batcher cannot serve within budget.
			e.queued.Add(-1)
			e.mu.Lock()
			s.busy = false
			if s.pendingReset {
				e.resetLocked(s)
			}
			e.mu.Unlock()
			err := e.ov.reject(e.ov.mode())
			e.closeMu.RUnlock()
			return cwnd, false, err
		}
		e.ov.notePeak(n)
		e.ov.noteAdmitted()
	}
	var start time.Time
	if e.ov != nil {
		start = time.Now()
	}
	req := &request{sess: s, state: append([]float64(nil), state...), done: make(chan asyncResult, 1)}
	e.cfg.Metrics.Gauge(MetricQueueDepth).Set(float64(n))
	e.reqCh <- req
	e.closeMu.RUnlock() // the dispatcher now owns the request; drain will serve it

	res := <-req.done
	if e.ov != nil {
		e.ov.noteLatency(time.Since(start))
	}
	w := tcp.ClampCwnd(cwnd*res.ratio, e.cfg.MinCwnd, e.cfg.MaxCwnd)
	return w, res.fallback, nil
}

// dispatch coalesces requests into batches: a batch opens on the first
// request and closes when it reaches MaxBatch or BatchDeadline elapses.
func (e *Engine) dispatch() {
	defer e.wg.Done()
	defer close(e.workCh)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		first, open := <-e.reqCh
		if !open {
			return
		}
		batch := []*request{first}
		timer.Reset(e.cfg.BatchDeadline)
		start := time.Now()
	fill:
		for len(batch) < e.cfg.MaxBatch {
			select {
			case r, more := <-e.reqCh:
				if !more {
					break fill
				}
				batch = append(batch, r)
			case <-timer.C:
				break fill
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		wait := time.Since(start)
		e.cfg.Metrics.Histogram(MetricBatchWaitUs).Observe(float64(wait.Microseconds()))
		if e.ov != nil {
			e.ov.noteBatchWait(wait)
		}
		e.workCh <- batch
	}
}

// worker runs batched passes and completes each request's future.
func (e *Engine) worker(buf batchBuf) {
	defer e.wg.Done()
	var chunk []pendingDecision
	for batch := range e.workCh {
		chunk = chunk[:0]
		for _, r := range batch {
			// Reuse the session stateBuf slot so forwardChunk sees one code
			// path; busy=true guarantees exclusive access.
			r.sess.stateBuf = r.state
			chunk = append(chunk, pendingDecision{sess: r.sess})
		}
		e.forwardChunk(chunk, &buf, func(i int, ratio float64) {
			r := batch[i]
			fb := buf.flags[i]
			e.mu.Lock()
			r.sess.busy = false
			if r.sess.pendingReset {
				e.resetLocked(r.sess)
			}
			e.mu.Unlock()
			e.queued.Add(-1)
			e.cfg.Metrics.Gauge(MetricQueueDepth).Set(float64(e.queued.Load()))
			r.done <- asyncResult{ratio: ratio, fallback: fb}
		})
	}
}

// Close drains the async path: queued and in-flight decisions complete,
// then the dispatcher and workers exit. Decide afterwards returns ErrClosed
// and Enqueue becomes a no-op. Synchronous decisions enqueued but never
// flushed are dropped and their sessions released (not left pinned to a
// stale pending entry), so a drain that races a flow mid-Enqueue still
// lets CloseSession free everything. Safe to call multiple times; a
// never-Started engine just flips the closed flag.
func (e *Engine) Close() {
	e.closeMu.Lock()
	if e.closed {
		e.closeMu.Unlock()
		return
	}
	e.closed = true
	started := e.started
	if started {
		close(e.reqCh)
	}
	if e.ovStop != nil {
		close(e.ovStop)
		e.ovStop = nil
	}
	e.closeMu.Unlock()
	if started {
		e.wg.Wait()
	}
	// No Enqueue can be mid-flight here (Enqueue holds closeMu.RLock for
	// its full critical section), so dropping the backlog under e.mu is
	// race-free.
	e.mu.Lock()
	e.pending = nil
	// Every worker has exited and no new decision can start, so each
	// session's open trace window is final: flush them whole, so a drain
	// never strands served experience in memory.
	for _, s := range e.sessions {
		e.exportTrace(s, TraceReasonDrain)
	}
	e.mu.Unlock()
}

func finiteVec(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

func zero(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}
