package serve

import (
	"container/list"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sage/internal/gr"
	"sage/internal/nn"
	"sage/internal/rl"
	"sage/internal/sim"
	"sage/internal/tcp"
	"sage/internal/telemetry"
)

// Engine errors.
var (
	// ErrSessionBusy reports a Decide for a session that already has a
	// request in flight. One outstanding request per session is the
	// concurrency contract that keeps recurrent state single-writer.
	ErrSessionBusy = errors.New("serve: session busy")
	// ErrClosed reports a Decide after Close started draining.
	ErrClosed = errors.New("serve: engine closed")
)

// Metric names the engine publishes (nil Registry costs nothing).
const (
	MetricDecisions   = "serve.decisions"
	MetricFallbacks   = "serve.fallbacks"
	MetricBatches     = "serve.batches"
	MetricBatchSize   = "serve.batch_size"
	MetricBatchWaitUs = "serve.batch_wait_us"
	MetricQueueDepth  = "serve.queue_depth"
	MetricSessions    = "serve.sessions"
	MetricSessOpened  = "serve.sessions_opened"
	MetricSessEvicted = "serve.sessions_evicted"
	MetricSessReset   = "serve.sessions_reset"
)

// Config tunes an Engine. The zero value of every field but Policy is
// usable.
type Config struct {
	Policy *nn.Policy
	Mask   []int // input subset (nil = full 69-signal vector)

	// Stochastic samples actions from the GMM instead of taking its mean.
	// Deterministic mode is bitwise identical to a per-flow
	// rl.PolicyController; stochastic mode draws from per-worker RNG
	// streams, so individual draws differ from any per-flow sequence.
	Stochastic bool
	Seed       int64

	MinCwnd float64 // cwnd floor in packets (default 2, matching rl.PolicyController)
	MaxCwnd float64 // cwnd ceiling in packets (default 0 = none)

	// MaxSessions caps resident sessions; beyond it the least-recently
	// used idle session is evicted and a later request for its id starts
	// from a fresh hidden state (default 4096).
	MaxSessions int
	// MaxBatch bounds one batched forward pass (default 256). The
	// synchronous Flush path chunks larger backlogs; the async dispatcher
	// closes a batch early when it fills.
	MaxBatch int
	// BatchDeadline is how long the async dispatcher holds an open batch
	// waiting for more requests before running it (default 200µs).
	BatchDeadline time.Duration
	// Workers is the async forward-pass pool size (default GOMAXPROCS).
	Workers int

	// Metrics, when non-nil, receives the serve.* counters above.
	Metrics *telemetry.Registry
}

func (c Config) fill() Config {
	if c.Mask == nil {
		c.Mask = gr.MaskFull()
	}
	if c.MinCwnd == 0 {
		c.MinCwnd = 2
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 4096
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 256
	}
	if c.BatchDeadline == 0 {
		c.BatchDeadline = 200 * time.Microsecond
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// session is one flow's resident state: the recurrent hidden vector plus
// lifecycle bookkeeping. Sessions are created on first use, reset on
// guard re-admission, and LRU-evicted past Config.MaxSessions.
type session struct {
	id     uint64
	hidden []float64
	// stateBuf holds the raw state between enqueue and Flush on the
	// synchronous path (the monitor's slice is not ours to keep).
	stateBuf []float64
	busy     bool // one outstanding async request per session
	elem     *list.Element
}

// pendingDecision is one enqueued synchronous decision.
type pendingDecision struct {
	sess *session
	conn *tcp.Conn
}

// request is one in-flight async decision.
type request struct {
	sess  *session
	state []float64
	done  chan asyncResult
}

type asyncResult struct {
	ratio    float64
	fallback bool
}

// batchBuf is the per-worker scratch for one batched pass: input and
// hidden matrices plus the policy's own scratch set. After warm-up a pass
// allocates nothing.
type batchBuf struct {
	states, hidden nn.Mat
	scratch        *nn.PolicyBatchScratch
	meanBuf        []float64
	flags          []bool // per-row fallback flags
	rng            *rand.Rand
}

// Engine multiplexes flows onto shared batched forward passes.
type Engine struct {
	cfg Config

	mu       sync.Mutex
	sessions map[uint64]*session
	lru      list.List // front = most recently used
	pending  []pendingDecision

	nextID atomic.Uint64

	syncBuf batchBuf // synchronous Flush path (single caller: the sim loop)

	// Async machinery (Start/Decide/Close).
	closeMu sync.RWMutex
	closed  bool
	started bool
	reqCh   chan *request
	workCh  chan []*request
	wg      sync.WaitGroup
	queued  atomic.Int64
}

// NewEngine builds an engine around a policy. Panics if cfg.Policy is nil.
func NewEngine(cfg Config) *Engine {
	if cfg.Policy == nil {
		panic("serve: Config.Policy is required")
	}
	cfg = cfg.fill()
	e := &Engine{cfg: cfg, sessions: make(map[uint64]*session)}
	e.syncBuf = e.newBatchBuf(0)
	return e
}

func (e *Engine) newBatchBuf(worker int) batchBuf {
	return batchBuf{
		scratch: e.cfg.Policy.NewBatchScratch(),
		meanBuf: make([]float64, e.cfg.Policy.GMM.K),
		rng:     rand.New(rand.NewSource(e.cfg.Seed + 7919*int64(worker+1))),
	}
}

// NewSessionID allocates a session id no other caller holds. Sessions
// themselves materialize lazily on first use; ids chosen by external
// clients (the daemon protocol) work the same way.
func (e *Engine) NewSessionID() uint64 { return e.nextID.Add(1) }

// sessionLocked returns the session for id, creating it (and evicting the
// LRU idle session past the cap) as needed. Caller holds e.mu.
func (e *Engine) sessionLocked(id uint64) *session {
	if s, ok := e.sessions[id]; ok {
		e.lru.MoveToFront(s.elem)
		return s
	}
	for len(e.sessions) >= e.cfg.MaxSessions {
		if !e.evictLocked() {
			break // everything is busy; admit over cap rather than deadlock
		}
	}
	s := &session{id: id, hidden: e.cfg.Policy.InitHidden()}
	s.elem = e.lru.PushFront(s)
	e.sessions[id] = s
	e.cfg.Metrics.Counter(MetricSessOpened).Inc()
	e.cfg.Metrics.Gauge(MetricSessions).Set(float64(len(e.sessions)))
	return s
}

// evictLocked removes the least-recently-used non-busy session. Returns
// false when every resident session is busy.
func (e *Engine) evictLocked() bool {
	for el := e.lru.Back(); el != nil; el = el.Prev() {
		s := el.Value.(*session)
		if s.busy {
			continue
		}
		e.lru.Remove(el)
		delete(e.sessions, s.id)
		e.cfg.Metrics.Counter(MetricSessEvicted).Inc()
		e.cfg.Metrics.Gauge(MetricSessions).Set(float64(len(e.sessions)))
		return true
	}
	return false
}

// ResetSession clears a session's recurrent state (between flows, or when
// the runtime guardian re-admits the policy). A session that was evicted
// or never used is a no-op: it would start fresh anyway.
func (e *Engine) ResetSession(id uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s, ok := e.sessions[id]; ok {
		for i := range s.hidden {
			s.hidden[i] = 0
		}
		e.cfg.Metrics.Counter(MetricSessReset).Inc()
	}
}

// CloseSession frees a session's resident state.
func (e *Engine) CloseSession(id uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s, ok := e.sessions[id]; ok && !s.busy {
		e.lru.Remove(s.elem)
		delete(e.sessions, id)
		e.cfg.Metrics.Gauge(MetricSessions).Set(float64(len(e.sessions)))
	}
}

// Sessions reports the resident session count.
func (e *Engine) Sessions() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sessions)
}

// ---------------------------------------------------------------------------
// Synchronous path: enqueue during the control sweep, Flush at interval end.

// Enqueue records that session id's flow wants a decision on state this
// interval; the decision is computed and applied (SetCwnd + Kick) by the
// next Flush, in enqueue order. The state slice is copied.
func (e *Engine) Enqueue(id uint64, conn *tcp.Conn, state []float64) {
	e.mu.Lock()
	s := e.sessionLocked(id)
	if cap(s.stateBuf) < len(state) {
		s.stateBuf = make([]float64, len(state))
	}
	s.stateBuf = s.stateBuf[:len(state)]
	copy(s.stateBuf, state)
	e.pending = append(e.pending, pendingDecision{sess: s, conn: conn})
	e.mu.Unlock()
}

// Flush runs the batched forward pass over everything enqueued since the
// last Flush and applies each flow's cwnd decision in enqueue order.
// Within one GR interval no simulation events run between the control
// sweep and the flush, so deferred application is semantically identical
// to deciding inline — and in deterministic mode bitwise identical to a
// per-flow rl.PolicyController. Not safe for concurrent use (the sim loop
// is single-threaded); concurrent servers use Start/Decide instead.
func (e *Engine) Flush(now sim.Time) {
	e.mu.Lock()
	pend := e.pending
	e.pending = e.pending[len(e.pending):]
	e.mu.Unlock()
	if len(pend) == 0 {
		return
	}
	for lo := 0; lo < len(pend); lo += e.cfg.MaxBatch {
		hi := lo + e.cfg.MaxBatch
		if hi > len(pend) {
			hi = len(pend)
		}
		chunk := pend[lo:hi]
		e.forwardChunk(chunk, &e.syncBuf, func(i int, ratio float64) {
			c := chunk[i].conn
			c.SetCwnd(tcp.ClampCwnd(c.Cwnd*ratio, e.cfg.MinCwnd, e.cfg.MaxCwnd))
			c.Kick(now)
		})
	}
	e.mu.Lock()
	if len(e.pending) == 0 {
		e.pending = pend[:0] // reclaim the backing array for the next interval
	}
	e.mu.Unlock()
}

// forwardChunk runs one batched pass over chunk and hands each row's cwnd
// ratio to apply, in order. Fallback rows (non-finite state or action)
// get ratio 1.0 and keep their previous hidden state.
func (e *Engine) forwardChunk(chunk []pendingDecision, buf *batchBuf, apply func(i int, ratio float64)) {
	n := len(chunk)
	inDim := len(e.cfg.Mask)
	hDim := len(chunk[0].sess.hidden)
	buf.states.Reset(n, inDim)
	buf.hidden.Reset(n, hDim)
	fallback := buf.ensureFlags(n)
	for i, p := range chunk {
		fallback[i] = !finiteVec(p.sess.stateBuf)
		if fallback[i] {
			zero(buf.states.Row(i))
		} else {
			gr.ApplyMaskInto(buf.states.Row(i), p.sess.stateBuf, e.cfg.Mask)
		}
		buf.hidden.SetRow(i, p.sess.hidden)
	}
	heads, hNew := e.cfg.Policy.BatchForward(&buf.states, &buf.hidden, buf.scratch)
	for i := range chunk {
		ratio := 1.0
		if !fallback[i] {
			var u float64
			if e.cfg.Stochastic {
				u = e.cfg.Policy.GMM.Sample(heads.Row(i), buf.rng)
			} else {
				u = e.cfg.Policy.GMM.MeanInto(heads.Row(i), buf.meanBuf)
			}
			r := rl.UToRatio(u)
			if math.IsNaN(u) || math.IsNaN(r) || math.IsInf(r, 0) {
				fallback[i] = true
			} else {
				ratio = r
				copy(chunk[i].sess.hidden, hNew.Row(i))
			}
		}
		if fallback[i] {
			e.cfg.Metrics.Counter(MetricFallbacks).Inc()
		}
		e.cfg.Metrics.Counter(MetricDecisions).Inc()
		apply(i, ratio)
	}
	e.cfg.Metrics.Counter(MetricBatches).Inc()
	e.cfg.Metrics.Histogram(MetricBatchSize).Observe(float64(n))
}

// ensureFlags returns a reusable []bool of length n.
func (b *batchBuf) ensureFlags(n int) []bool {
	if cap(b.flags) < n {
		b.flags = make([]bool, n)
	}
	b.flags = b.flags[:n]
	return b.flags
}

// ---------------------------------------------------------------------------
// Asynchronous path: a deadline micro-batcher in front of a worker pool.

// Start spins up the dispatcher and worker pool behind Decide. Safe to
// call once; the synchronous Enqueue/Flush path does not need it.
func (e *Engine) Start() {
	e.closeMu.Lock()
	defer e.closeMu.Unlock()
	if e.started || e.closed {
		return
	}
	e.started = true
	e.reqCh = make(chan *request, 4*e.cfg.MaxBatch)
	e.workCh = make(chan []*request, e.cfg.Workers)
	e.wg.Add(1 + e.cfg.Workers)
	go e.dispatch()
	for w := 0; w < e.cfg.Workers; w++ {
		buf := e.newBatchBuf(w + 1)
		go e.worker(buf)
	}
}

// Decide blocks until the engine has batched and served a decision for
// session id: it returns the new cwnd for a flow currently at cwnd whose
// state vector is state. fallback reports that the decision was a safety
// no-op (non-finite state or action). A session with a request already in
// flight gets ErrSessionBusy — retry after the outstanding call returns.
func (e *Engine) Decide(id uint64, cwnd float64, state []float64) (newCwnd float64, fallback bool, err error) {
	e.closeMu.RLock()
	if e.closed || !e.started {
		e.closeMu.RUnlock()
		return cwnd, false, ErrClosed
	}
	e.mu.Lock()
	s := e.sessionLocked(id)
	if s.busy {
		e.mu.Unlock()
		e.closeMu.RUnlock()
		return cwnd, false, ErrSessionBusy
	}
	s.busy = true
	e.mu.Unlock()

	req := &request{sess: s, state: append([]float64(nil), state...), done: make(chan asyncResult, 1)}
	e.queued.Add(1)
	e.cfg.Metrics.Gauge(MetricQueueDepth).Set(float64(e.queued.Load()))
	e.reqCh <- req
	e.closeMu.RUnlock() // the dispatcher now owns the request; drain will serve it

	res := <-req.done
	w := tcp.ClampCwnd(cwnd*res.ratio, e.cfg.MinCwnd, e.cfg.MaxCwnd)
	return w, res.fallback, nil
}

// dispatch coalesces requests into batches: a batch opens on the first
// request and closes when it reaches MaxBatch or BatchDeadline elapses.
func (e *Engine) dispatch() {
	defer e.wg.Done()
	defer close(e.workCh)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		first, open := <-e.reqCh
		if !open {
			return
		}
		batch := []*request{first}
		timer.Reset(e.cfg.BatchDeadline)
		start := time.Now()
	fill:
		for len(batch) < e.cfg.MaxBatch {
			select {
			case r, more := <-e.reqCh:
				if !more {
					break fill
				}
				batch = append(batch, r)
			case <-timer.C:
				break fill
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		e.cfg.Metrics.Histogram(MetricBatchWaitUs).Observe(float64(time.Since(start).Microseconds()))
		e.workCh <- batch
	}
}

// worker runs batched passes and completes each request's future.
func (e *Engine) worker(buf batchBuf) {
	defer e.wg.Done()
	var chunk []pendingDecision
	for batch := range e.workCh {
		chunk = chunk[:0]
		for _, r := range batch {
			// Reuse the session stateBuf slot so forwardChunk sees one code
			// path; busy=true guarantees exclusive access.
			r.sess.stateBuf = r.state
			chunk = append(chunk, pendingDecision{sess: r.sess})
		}
		e.forwardChunk(chunk, &buf, func(i int, ratio float64) {
			r := batch[i]
			fb := buf.flags[i]
			e.mu.Lock()
			r.sess.busy = false
			e.mu.Unlock()
			e.queued.Add(-1)
			e.cfg.Metrics.Gauge(MetricQueueDepth).Set(float64(e.queued.Load()))
			r.done <- asyncResult{ratio: ratio, fallback: fb}
		})
	}
}

// Close drains the async path: queued and in-flight decisions complete,
// then the dispatcher and workers exit. Decide afterwards returns
// ErrClosed. Safe to call multiple times; a never-Started engine just
// flips the closed flag.
func (e *Engine) Close() {
	e.closeMu.Lock()
	if e.closed {
		e.closeMu.Unlock()
		return
	}
	e.closed = true
	started := e.started
	if started {
		close(e.reqCh)
	}
	e.closeMu.Unlock()
	if started {
		e.wg.Wait()
	}
}

func finiteVec(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

func zero(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}
