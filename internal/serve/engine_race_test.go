package serve_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sage/internal/serve"
)

// Session LRU eviction racing in-flight async decides: a tiny resident cap
// under a much wider id space forces constant eviction while requests are
// mid-batch (busy sessions must be skipped, not evicted), interleaved with
// CloseSession/ResetSession churn. Run under -race in CI; the only
// admissible errors are nil and ErrSessionBusy, and the engine must drain
// cleanly afterwards.
func TestEngineEvictionRacesInflightDecides(t *testing.T) {
	eng := serve.NewEngine(serve.Config{
		Policy:        testPolicy(61),
		MaxSessions:   4,
		MaxBatch:      8,
		BatchDeadline: 100 * time.Microsecond,
		Workers:       2,
	})
	eng.Start()

	const (
		goroutines = 8
		iters      = 150
		idSpace    = 64
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				id := uint64(rng.Intn(idSpace) + 1)
				switch rng.Intn(10) {
				case 0:
					eng.CloseSession(id)
				case 1:
					eng.ResetSession(id)
				default:
					_, _, err := eng.Decide(id, 10, randState(rng))
					if err != nil && !errors.Is(err, serve.ErrSessionBusy) {
						t.Errorf("Decide(%d): %v", id, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// The cap may be exceeded only transiently, when every resident session
	// was busy at admission time — bounded by the number of concurrent
	// callers, never by the id space.
	if n := eng.Sessions(); n > 4+goroutines {
		t.Errorf("resident sessions = %d, want ≤ cap (4) + %d concurrent callers", n, goroutines)
	}
	eng.Close()
	if _, _, err := eng.Decide(1, 10, randState(rand.New(rand.NewSource(0)))); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("Decide after Close: %v, want ErrClosed", err)
	}
}
