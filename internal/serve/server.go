package serve

import (
	"encoding/json"
	"errors"
	"net"
	"os"
	"strconv"
	"sync"
	"time"
)

// Control handles the lifecycle verbs of the wire protocol (OpSwap,
// OpStatus). The sage-serve daemon installs its promotion manager here;
// a server without one rejects control requests.
type Control interface {
	// Swap hot-swaps the serving model. Empty id = reload the registry
	// incumbent; otherwise the named registry model. Returns a
	// human-readable report.
	Swap(id string) (string, error)
	// Status returns a JSON lifecycle status document.
	Status() string
}

// Server exposes an Engine over a stream listener (a Unix domain socket
// for the sage-serve daemon). Each client connection is handled by one
// goroutine that decodes frames sequentially; concurrency across
// connections is what the engine's micro-batcher coalesces.
type Server struct {
	eng *Engine

	// MaxConns caps concurrently served connections (0 = unlimited). An
	// accept beyond the cap is shed explicitly: the new connection gets a
	// single StatusOverload frame with a jittered retry-after hint and is
	// closed, so a connection storm can never pile handler goroutines onto
	// an already-overloaded engine. Set before Serve.
	MaxConns int

	mu     sync.Mutex
	ctl    Control
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	doneCh chan struct{}
	wg     sync.WaitGroup
}

// SetControl installs the lifecycle handler for OpSwap/OpStatus.
func (s *Server) SetControl(ctl Control) {
	s.mu.Lock()
	s.ctl = ctl
	s.mu.Unlock()
}

func (s *Server) control() Control {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctl
}

// NewServer wraps an engine. The engine's async path is started on Serve.
func NewServer(eng *Engine) *Server {
	return &Server{
		eng:    eng,
		conns:  make(map[net.Conn]struct{}),
		doneCh: make(chan struct{}),
	}
}

// ListenAndServe listens on a Unix socket at path (removing a stale
// socket file first) and serves until Shutdown.
func (s *Server) ListenAndServe(path string) error {
	if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	ln, err := net.Listen("unix", path)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown. It always returns a
// non-nil error; after Shutdown the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	s.eng.Start()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return net.ErrClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		if s.MaxConns > 0 && len(s.conns) >= s.MaxConns {
			s.mu.Unlock()
			s.shedConn(conn)
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Shutdown drains gracefully: stop accepting, let queued and in-flight
// decisions complete (Engine.Close), then hang up on idle clients and
// wait for every handler to exit. Safe to call from a signal handler
// goroutine and to call more than once.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.doneCh) // wake handlers parked in a backpressure pause
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Unlock()

	// Drain the engine first: handlers blocked in Decide get their
	// responses out before connections are torn down.
	s.eng.Close()

	// Hang up the read side only: a handler mid-request still writes its
	// response over the intact write side, then exits on the next read.
	// Closing outright here would race the final response write.
	s.mu.Lock()
	for c := range s.conns {
		if rc, ok := c.(interface{ CloseRead() error }); ok {
			rc.CloseRead()
		} else {
			c.Close()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// shedConn rejects a connection beyond MaxConns: one explicit
// StatusOverload frame carrying a jittered retry-after hint (integer
// milliseconds), then hang up. The dialer learns to back off instead of
// observing a silent RST or, worse, a socket that accepts and stalls.
func (s *Server) shedConn(conn net.Conn) {
	hint := s.eng.retryHint()
	s.eng.cfg.Metrics.Counter(MetricOverloadConnShed).Inc()
	conn.SetWriteDeadline(time.Now().Add(time.Second))
	frame := appendResponse(nil, StatusOverload, 0, strconv.Itoa(int(hint.Milliseconds())))
	writeFrame(conn, frame)
	conn.Close()
}

// handle serves one client connection until EOF or Shutdown.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	var (
		rbuf     []byte
		wbuf     []byte
		stateBuf []float64
	)
	for {
		p, err := readFrame(conn, rbuf)
		if err != nil {
			return // EOF, hangup, or oversized frame: drop the connection
		}
		rbuf = p[:0]
		req, sb, err := parseRequest(p, stateBuf)
		stateBuf = sb
		if err != nil {
			wbuf = appendResponse(wbuf[:0], StatusError, 0, err.Error())
			if writeFrame(conn, wbuf) != nil {
				return
			}
			continue
		}
		var pause time.Duration
		switch req.Op {
		case OpDecide:
			newCwnd, fallback, err := s.eng.DecidePri(req.SID, req.Cwnd, req.State, req.Pri)
			var oe *OverloadError
			switch {
			case errors.As(err, &oe):
				// Typed OVERLOAD reply (cwnd echoed, retry hint in msg),
				// then read-side backpressure: pause before the next read
				// so a hot-looping client is rate-limited by its own TCP
				// window instead of hammering admission control.
				wbuf = appendResponse(wbuf[:0], StatusOverload, req.Cwnd,
					strconv.Itoa(int(oe.RetryAfter.Milliseconds())))
				pause = min(oe.RetryAfter, 100*time.Millisecond)
			case errors.Is(err, ErrSessionBusy):
				wbuf = appendResponse(wbuf[:0], StatusBusy, req.Cwnd, "")
			case errors.Is(err, ErrClosed):
				wbuf = appendResponse(wbuf[:0], StatusError, req.Cwnd, "server draining")
			case err != nil:
				wbuf = appendResponse(wbuf[:0], StatusError, req.Cwnd, err.Error())
			case fallback:
				wbuf = appendResponse(wbuf[:0], StatusFallback, newCwnd, "")
			default:
				wbuf = appendResponse(wbuf[:0], StatusOK, newCwnd, "")
			}
		case OpReset:
			s.eng.ResetSession(req.SID)
			wbuf = appendResponse(wbuf[:0], StatusOK, 0, "")
		case OpCloseSession:
			s.eng.CloseSession(req.SID)
			wbuf = appendResponse(wbuf[:0], StatusOK, 0, "")
		case OpSwap:
			if ctl := s.control(); ctl == nil {
				wbuf = appendResponse(wbuf[:0], StatusError, 0, "no lifecycle control handler")
			} else if report, err := ctl.Swap(req.Arg); err != nil {
				wbuf = appendResponse(wbuf[:0], StatusError, 0, err.Error())
			} else {
				wbuf = appendResponse(wbuf[:0], StatusOK, 0, report)
			}
		case OpStatus:
			if ctl := s.control(); ctl == nil {
				wbuf = appendResponse(wbuf[:0], StatusError, 0, "no lifecycle control handler")
			} else {
				wbuf = appendResponse(wbuf[:0], StatusOK, 0, ctl.Status())
			}
		case OpHealth:
			h := s.eng.Health()
			s.mu.Lock()
			h.Conns = len(s.conns)
			h.Draining = s.closed
			s.mu.Unlock()
			if doc, err := json.Marshal(h); err != nil {
				wbuf = appendResponse(wbuf[:0], StatusError, 0, err.Error())
			} else {
				wbuf = appendResponse(wbuf[:0], StatusOK, 0, string(doc))
			}
		}
		if writeFrame(conn, wbuf) != nil {
			return
		}
		if pause > 0 {
			select {
			case <-time.After(pause):
			case <-s.doneCh:
				return
			}
		}
	}
}
