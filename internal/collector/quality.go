package collector

import (
	"fmt"
	"math"

	"sage/internal/telemetry"
)

// QualityConfig tunes the per-trajectory data-quality gate. The gate is
// the collection-side half of the training-robustness story: a poisoned
// trajectory quarantined here never reaches the learner, so the training
// sentinel only has to catch what slips through (or corrupts later).
// The zero value of every field is a usable default.
type QualityConfig struct {
	// MinSteps is the shortest usable episode; BuildDataset needs at
	// least one (s,a,r,s') transition, i.e. 2 steps (default 2). Empty
	// and single-step trajectories are quarantined as truncated.
	MinSteps int
	// MaxAbsReward bounds |reward| per step (default 1e6): the gr reward
	// is a bounded combination of normalized delay/throughput terms, so
	// anything near this bound is a telemetry glitch, not a signal.
	MaxAbsReward float64
	// MaxActionRatio bounds the recorded cwnd ratio per step (default
	// 1024). Ratios must also be strictly positive: a window cannot
	// shrink to or below zero.
	MaxActionRatio float64
	// FrozenRun is how many consecutive identical state vectors mark a
	// frozen flow — a wedged monitor emitting the same observation
	// forever (default 64).
	FrozenRun int
}

func (c QualityConfig) fill() QualityConfig {
	if c.MinSteps == 0 {
		c.MinSteps = 2
	}
	if c.MaxAbsReward == 0 {
		c.MaxAbsReward = 1e6
	}
	if c.MaxActionRatio == 0 {
		c.MaxActionRatio = 1024
	}
	if c.FrozenRun == 0 {
		c.FrozenRun = 64
	}
	return c
}

// Quarantine reasons.
const (
	ReasonTruncated       = "truncated episode"
	ReasonNonFiniteState  = "non-finite state"
	ReasonNonFiniteAction = "non-finite action"
	ReasonNonFiniteReward = "non-finite reward"
	ReasonRewardRange     = "reward out of range"
	ReasonActionRange     = "action out of range"
	ReasonFrozenState     = "frozen state flow"
)

// TrajIssue is one quarantine decision, JSONL-friendly for the sidecar
// report next to the saved pool.
type TrajIssue struct {
	Index  int    `json:"index"` // position in Pool.Trajs
	Scheme string `json:"scheme"`
	Env    string `json:"env"`
	Reason string `json:"reason"`
	Step   int    `json:"step,omitempty"`   // first offending step
	Detail string `json:"detail,omitempty"` // human-readable specifics
}

// QualityReport summarizes one Sanitize pass.
type QualityReport struct {
	Total       int         `json:"total"`
	Kept        int         `json:"kept"`
	Quarantined int         `json:"quarantined"`
	Issues      []TrajIssue `json:"issues"`
}

// CheckTrajectory validates one trajectory and returns every issue found
// (empty = clean). Index/Scheme/Env are left for the caller to fill.
func CheckTrajectory(tr Trajectory, cfg QualityConfig) []TrajIssue {
	cfg = cfg.fill()
	var issues []TrajIssue
	add := func(reason string, step int, detail string) {
		issues = append(issues, TrajIssue{Reason: reason, Step: step, Detail: detail})
	}
	if len(tr.Steps) < cfg.MinSteps {
		add(ReasonTruncated, 0, fmt.Sprintf("%d steps, need %d", len(tr.Steps), cfg.MinSteps))
		return issues // nothing else worth scanning
	}
	frozen := 1
	for i, s := range tr.Steps {
		for _, v := range s.State {
			if !finiteQ(v) {
				add(ReasonNonFiniteState, i, "")
				return issues
			}
		}
		switch {
		case !finiteQ(s.Action):
			add(ReasonNonFiniteAction, i, "")
			return issues
		case s.Action <= 0 || s.Action > cfg.MaxActionRatio:
			add(ReasonActionRange, i, fmt.Sprintf("cwnd ratio %g", s.Action))
			return issues
		}
		switch {
		case !finiteQ(s.Reward):
			add(ReasonNonFiniteReward, i, "")
			return issues
		case math.Abs(s.Reward) > cfg.MaxAbsReward:
			add(ReasonRewardRange, i, fmt.Sprintf("reward %g", s.Reward))
			return issues
		}
		if i > 0 && equalStates(tr.Steps[i-1].State, s.State) {
			frozen++
			if frozen >= cfg.FrozenRun {
				add(ReasonFrozenState, i-frozen+1, fmt.Sprintf("%d identical states", frozen))
				return issues
			}
		} else if i > 0 {
			frozen = 1
		}
	}
	return issues
}

// Sanitize splits the pool into a clean copy and a quarantine report.
// The returned pool shares trajectory backing arrays with the input (the
// gate drops references, it does not rewrite data).
func Sanitize(p *Pool, cfg QualityConfig) (*Pool, QualityReport) {
	clean := &Pool{GR: p.GR, Failed: p.Failed}
	rep := QualityReport{Total: len(p.Trajs)}
	for i, tr := range p.Trajs {
		issues := CheckTrajectory(tr, cfg)
		if len(issues) == 0 {
			clean.Trajs = append(clean.Trajs, tr)
			continue
		}
		for j := range issues {
			issues[j].Index = i
			issues[j].Scheme = tr.Scheme
			issues[j].Env = tr.Env
		}
		rep.Issues = append(rep.Issues, issues...)
	}
	rep.Kept = len(clean.Trajs)
	rep.Quarantined = rep.Total - rep.Kept
	return clean, rep
}

// WriteSidecar writes the quarantine report as JSONL (one line per issue,
// preceded by a summary line) next to the pool it describes.
func (r QualityReport) WriteSidecar(path string) error {
	j, err := telemetry.CreateJSONL(path)
	if err != nil {
		return err
	}
	type summary struct {
		Total       int `json:"total"`
		Kept        int `json:"kept"`
		Quarantined int `json:"quarantined"`
	}
	if err := j.Emit(summary{r.Total, r.Kept, r.Quarantined}); err != nil {
		j.Close()
		return err
	}
	for _, is := range r.Issues {
		if err := j.Emit(is); err != nil {
			j.Close()
			return err
		}
	}
	return j.Close()
}

func equalStates(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func finiteQ(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
