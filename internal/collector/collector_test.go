package collector

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/sim"
	"sage/internal/telemetry"
)

func tinyScenarios() []netem.Scenario {
	setI := netem.SetI(netem.SetIOptions{Level: netem.GridTiny, Duration: 3 * sim.Second})[:2]
	setII := netem.SetII(netem.SetIIOptions{Level: netem.GridTiny, Duration: 5 * sim.Second})[:2]
	return append(setI, setII...)
}

func TestCollectBuildsPool(t *testing.T) {
	pool := Collect([]string{"cubic", "vegas"}, tinyScenarios(), Options{Parallel: 4})
	if len(pool.Trajs) != 8 {
		t.Fatalf("trajectories = %d", len(pool.Trajs))
	}
	if pool.Transitions() == 0 {
		t.Fatal("no transitions")
	}
	multi, single := 0, 0
	for _, tr := range pool.Trajs {
		if len(tr.Steps) == 0 {
			t.Fatalf("empty trajectory %s/%s", tr.Scheme, tr.Env)
		}
		if tr.MultiFlow {
			multi++
		} else {
			single++
		}
		for _, s := range tr.Steps {
			if len(s.State) != gr.StateDim {
				t.Fatalf("state dim %d", len(s.State))
			}
		}
	}
	if multi != 4 || single != 4 {
		t.Fatalf("multi=%d single=%d", multi, single)
	}
	if got := pool.Schemes(); len(got) != 2 {
		t.Fatalf("schemes = %v", got)
	}
}

func TestPoolFilters(t *testing.T) {
	pool := Collect([]string{"cubic", "vegas", "newreno"}, tinyScenarios()[:2], Options{Parallel: 4})
	f := pool.FilterSchemes("vegas")
	if len(f.Trajs) != 2 {
		t.Fatalf("filtered = %d", len(f.Trajs))
	}
	for _, tr := range f.Trajs {
		if tr.Scheme != "vegas" {
			t.Fatalf("leaked %s", tr.Scheme)
		}
	}
	w := pool.WinnersPerEnv()
	if len(w.Trajs) != 2 { // one winner per env
		t.Fatalf("winners = %d", len(w.Trajs))
	}
	for _, tr := range w.Trajs {
		for _, other := range pool.Trajs {
			if other.Env == tr.Env && other.Score > tr.Score {
				t.Fatalf("winner %s beaten by %s in %s", tr.Scheme, other.Scheme, tr.Env)
			}
		}
	}
	top := pool.TopSchemes(2)
	if len(top) == 0 || len(top) > 4 {
		t.Fatalf("top schemes = %v", top)
	}
}

func TestPoolSaveLoadRoundTrip(t *testing.T) {
	pool := Collect([]string{"cubic"}, tinyScenarios()[:1], Options{Parallel: 2})
	path := filepath.Join(t.TempDir(), "pool.gob.gz")
	if err := pool.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Transitions() != pool.Transitions() || len(got.Trajs) != len(pool.Trajs) {
		t.Fatalf("round trip mismatch: %d vs %d", got.Transitions(), pool.Transitions())
	}
	if got.Trajs[0].Scheme != "cubic" || got.Trajs[0].Score != pool.Trajs[0].Score {
		t.Fatal("trajectory metadata lost")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestMerge(t *testing.T) {
	a := Collect([]string{"cubic"}, tinyScenarios()[:1], Options{Parallel: 2})
	b := Collect([]string{"vegas"}, tinyScenarios()[1:2], Options{Parallel: 2})
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Trajs) != 2 {
		t.Fatalf("merged = %d", len(m.Trajs))
	}
	empty, err := Merge()
	if err != nil {
		t.Fatal(err)
	}
	if empty.Transitions() != 0 {
		t.Fatal("empty merge")
	}
}

func TestMergeGRMismatch(t *testing.T) {
	sc := tinyScenarios()[:1]
	a := Collect([]string{"cubic"}, sc, Options{Parallel: 2})
	b := Collect([]string{"cubic"}, sc, Options{Parallel: 2, GR: gr.Config{}.WithUniformWindow(5)})
	if _, err := Merge(a, b); err == nil {
		t.Fatal("GR config mismatch silently merged")
	}
	// An unset config and its explicit defaults are the same config.
	c := &Pool{GR: gr.Config{}}
	d := &Pool{GR: gr.Config{}.Fill()}
	if _, err := Merge(c, d); err != nil {
		t.Fatalf("default-equivalent configs rejected: %v", err)
	}
}

func TestDegeneratePools(t *testing.T) {
	var empty Pool
	if empty.Transitions() != 0 {
		t.Fatal("empty pool has transitions")
	}
	if s := empty.Schemes(); len(s) != 0 {
		t.Fatalf("empty pool schemes = %v", s)
	}
	// Trajectories with 0 or 1 steps contribute no transitions but do
	// contribute scheme names.
	p := Pool{Trajs: []Trajectory{
		{Scheme: "cubic"},
		{Scheme: "vegas", Steps: make([]gr.Step, 1)},
		{Scheme: "cubic", Steps: make([]gr.Step, 3)},
	}}
	if got := p.Transitions(); got != 2 {
		t.Fatalf("transitions = %d, want 2", got)
	}
	if got := p.Schemes(); len(got) != 2 || got[0] != "cubic" || got[1] != "vegas" {
		t.Fatalf("schemes = %v", got)
	}
	if w := p.WinnersPerEnv(); len(w.Trajs) != 1 {
		t.Fatalf("winners of degenerate pool = %d", len(w.Trajs))
	}
}

func TestCollectProgress(t *testing.T) {
	var buf bytes.Buffer
	total := int64(2 * len(tinyScenarios()))
	p := telemetry.NewProgress(&buf, "rollouts", total, time.Nanosecond)
	pool := Collect([]string{"cubic", "vegas"}, tinyScenarios(), Options{Parallel: 4, Progress: p})
	p.Finish()
	if p.Done() != total {
		t.Fatalf("progress done = %d, want %d", p.Done(), total)
	}
	if got := p.Extra(); got != int64(pool.Transitions()) {
		t.Fatalf("progress transitions = %d, want %d", got, pool.Transitions())
	}
	if !strings.Contains(buf.String(), "rollouts: 8/8") {
		t.Fatalf("progress output = %q", buf.String())
	}
}

func TestCollectDeterministic(t *testing.T) {
	sc := tinyScenarios()[:1]
	p1 := Collect([]string{"cubic"}, sc, Options{Parallel: 1})
	p2 := Collect([]string{"cubic"}, sc, Options{Parallel: 3})
	if p1.Transitions() != p2.Transitions() {
		t.Fatalf("nondeterministic: %d vs %d", p1.Transitions(), p2.Transitions())
	}
	s1 := p1.Trajs[0].Steps
	s2 := p2.Trajs[0].Steps
	for i := range s1 {
		if s1[i].Action != s2[i].Action || s1[i].Reward != s2[i].Reward {
			t.Fatalf("step %d differs across parallelism", i)
		}
	}
}
