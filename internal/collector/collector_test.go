package collector

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"sage/internal/safeio"

	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/sim"
	"sage/internal/telemetry"
)

// mustCollect is a test helper: Collect with a background context,
// failing the test on error.
func mustCollect(t *testing.T, schemes []string, scens []netem.Scenario, opt Options) *Pool {
	t.Helper()
	p, err := Collect(context.Background(), schemes, scens, opt)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func tinyScenarios() []netem.Scenario {
	setI := netem.SetI(netem.SetIOptions{Level: netem.GridTiny, Duration: 3 * sim.Second})[:2]
	setII := netem.SetII(netem.SetIIOptions{Level: netem.GridTiny, Duration: 5 * sim.Second})[:2]
	return append(setI, setII...)
}

func TestCollectBuildsPool(t *testing.T) {
	pool := mustCollect(t, []string{"cubic", "vegas"}, tinyScenarios(), Options{Parallel: 4})
	if len(pool.Trajs) != 8 {
		t.Fatalf("trajectories = %d", len(pool.Trajs))
	}
	if pool.Transitions() == 0 {
		t.Fatal("no transitions")
	}
	multi, single := 0, 0
	for _, tr := range pool.Trajs {
		if len(tr.Steps) == 0 {
			t.Fatalf("empty trajectory %s/%s", tr.Scheme, tr.Env)
		}
		if tr.MultiFlow {
			multi++
		} else {
			single++
		}
		for _, s := range tr.Steps {
			if len(s.State) != gr.StateDim {
				t.Fatalf("state dim %d", len(s.State))
			}
		}
	}
	if multi != 4 || single != 4 {
		t.Fatalf("multi=%d single=%d", multi, single)
	}
	if got := pool.Schemes(); len(got) != 2 {
		t.Fatalf("schemes = %v", got)
	}
}

func TestPoolFilters(t *testing.T) {
	pool := mustCollect(t, []string{"cubic", "vegas", "newreno"}, tinyScenarios()[:2], Options{Parallel: 4})
	f := pool.FilterSchemes("vegas")
	if len(f.Trajs) != 2 {
		t.Fatalf("filtered = %d", len(f.Trajs))
	}
	for _, tr := range f.Trajs {
		if tr.Scheme != "vegas" {
			t.Fatalf("leaked %s", tr.Scheme)
		}
	}
	w := pool.WinnersPerEnv()
	if len(w.Trajs) != 2 { // one winner per env
		t.Fatalf("winners = %d", len(w.Trajs))
	}
	for _, tr := range w.Trajs {
		for _, other := range pool.Trajs {
			if other.Env == tr.Env && other.Score > tr.Score {
				t.Fatalf("winner %s beaten by %s in %s", tr.Scheme, other.Scheme, tr.Env)
			}
		}
	}
	top := pool.TopSchemes(2)
	if len(top) == 0 || len(top) > 4 {
		t.Fatalf("top schemes = %v", top)
	}
}

func TestPoolSaveLoadRoundTrip(t *testing.T) {
	pool := mustCollect(t, []string{"cubic"}, tinyScenarios()[:1], Options{Parallel: 2})
	path := filepath.Join(t.TempDir(), "pool.gob.gz")
	if err := pool.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Transitions() != pool.Transitions() || len(got.Trajs) != len(pool.Trajs) {
		t.Fatalf("round trip mismatch: %d vs %d", got.Transitions(), pool.Transitions())
	}
	if got.Trajs[0].Scheme != "cubic" || got.Trajs[0].Score != pool.Trajs[0].Score {
		t.Fatal("trajectory metadata lost")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestMerge(t *testing.T) {
	a := mustCollect(t, []string{"cubic"}, tinyScenarios()[:1], Options{Parallel: 2})
	b := mustCollect(t, []string{"vegas"}, tinyScenarios()[1:2], Options{Parallel: 2})
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Trajs) != 2 {
		t.Fatalf("merged = %d", len(m.Trajs))
	}
	empty, err := Merge()
	if err != nil {
		t.Fatal(err)
	}
	if empty.Transitions() != 0 {
		t.Fatal("empty merge")
	}
}

func TestMergeGRMismatch(t *testing.T) {
	sc := tinyScenarios()[:1]
	a := mustCollect(t, []string{"cubic"}, sc, Options{Parallel: 2})
	b := mustCollect(t, []string{"cubic"}, sc, Options{Parallel: 2, GR: gr.Config{}.WithUniformWindow(5)})
	if _, err := Merge(a, b); err == nil {
		t.Fatal("GR config mismatch silently merged")
	}
	// An unset config and its explicit defaults are the same config.
	c := &Pool{GR: gr.Config{}}
	d := &Pool{GR: gr.Config{}.Fill()}
	if _, err := Merge(c, d); err != nil {
		t.Fatalf("default-equivalent configs rejected: %v", err)
	}
}

func TestDegeneratePools(t *testing.T) {
	var empty Pool
	if empty.Transitions() != 0 {
		t.Fatal("empty pool has transitions")
	}
	if s := empty.Schemes(); len(s) != 0 {
		t.Fatalf("empty pool schemes = %v", s)
	}
	// Trajectories with 0 or 1 steps contribute no transitions but do
	// contribute scheme names.
	p := Pool{Trajs: []Trajectory{
		{Scheme: "cubic"},
		{Scheme: "vegas", Steps: make([]gr.Step, 1)},
		{Scheme: "cubic", Steps: make([]gr.Step, 3)},
	}}
	if got := p.Transitions(); got != 2 {
		t.Fatalf("transitions = %d, want 2", got)
	}
	if got := p.Schemes(); len(got) != 2 || got[0] != "cubic" || got[1] != "vegas" {
		t.Fatalf("schemes = %v", got)
	}
	if w := p.WinnersPerEnv(); len(w.Trajs) != 1 {
		t.Fatalf("winners of degenerate pool = %d", len(w.Trajs))
	}
}

func TestCollectProgress(t *testing.T) {
	var buf bytes.Buffer
	total := int64(2 * len(tinyScenarios()))
	p := telemetry.NewProgress(&buf, "rollouts", total, time.Nanosecond)
	pool := mustCollect(t, []string{"cubic", "vegas"}, tinyScenarios(), Options{Parallel: 4, Progress: p})
	p.Finish()
	if p.Done() != total {
		t.Fatalf("progress done = %d, want %d", p.Done(), total)
	}
	if got := p.Extra(); got != int64(pool.Transitions()) {
		t.Fatalf("progress transitions = %d, want %d", got, pool.Transitions())
	}
	if !strings.Contains(buf.String(), "rollouts: 8/8") {
		t.Fatalf("progress output = %q", buf.String())
	}
}

func TestCollectDeterministic(t *testing.T) {
	sc := tinyScenarios()[:1]
	p1 := mustCollect(t, []string{"cubic"}, sc, Options{Parallel: 1})
	p2 := mustCollect(t, []string{"cubic"}, sc, Options{Parallel: 3})
	if p1.Transitions() != p2.Transitions() {
		t.Fatalf("nondeterministic: %d vs %d", p1.Transitions(), p2.Transitions())
	}
	s1 := p1.Trajs[0].Steps
	s2 := p2.Trajs[0].Steps
	for i := range s1 {
		if s1[i].Action != s2[i].Action || s1[i].Reward != s2[i].Reward {
			t.Fatalf("step %d differs across parallelism", i)
		}
	}
}

// TestResumeProducesIdenticalPool models sage-collect -resume: a campaign
// interrupted partway (first half of the cells done) and resumed (second
// half, skipping the first) must merge into a pool deeply equal to an
// uninterrupted run.
func TestResumeProducesIdenticalPool(t *testing.T) {
	schemes := []string{"cubic", "vegas"}
	scens := tinyScenarios()

	full := mustCollect(t, schemes, scens, Options{Parallel: 4})
	full.SortByCell()

	// "Interrupted": only cells of the first scheme completed.
	firstHalf := func(scheme, env string) bool { return scheme != "cubic" }
	prior := mustCollect(t, schemes, scens, Options{Parallel: 4, Skip: firstHalf})
	// "Resumed": skip exactly what the partial pool holds.
	skip := prior.Cells()
	rest := mustCollect(t, schemes, scens, Options{Parallel: 4, Skip: func(scheme, env string) bool {
		return skip[CellKey{scheme, env}]
	}})

	merged, err := Merge(prior, rest)
	if err != nil {
		t.Fatal(err)
	}
	merged.SortByCell()

	if !reflect.DeepEqual(merged, full) {
		t.Fatalf("resumed pool differs from uninterrupted run: %d vs %d trajs",
			len(merged.Trajs), len(full.Trajs))
	}
}

// TestCollectCancelledContext: a cancelled context returns immediately
// with its error and whatever completed (here: nothing).
func TestCollectCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, err := Collect(ctx, []string{"cubic"}, tinyScenarios(), Options{Parallel: 2})
	if err == nil {
		t.Fatal("cancelled collect reported success")
	}
	if len(p.Trajs) != 0 {
		t.Fatalf("cancelled collect produced %d trajs", len(p.Trajs))
	}
}

// TestCollectUnknownScheme fails fast with the known-scheme list.
func TestCollectUnknownScheme(t *testing.T) {
	_, err := Collect(context.Background(), []string{"cubic", "reno3000"}, tinyScenarios(), Options{})
	if err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if !strings.Contains(err.Error(), "reno3000") || !strings.Contains(err.Error(), "cubic") {
		t.Fatalf("error not actionable: %v", err)
	}
}

// TestOnCellReportsEveryOutcome: the manifest hook sees one call per
// completed cell.
func TestOnCellReportsEveryOutcome(t *testing.T) {
	var mu sync.Mutex
	calls := map[CellKey]bool{}
	scens := tinyScenarios()[:2]
	mustCollect(t, []string{"cubic", "vegas"}, scens, Options{
		Parallel: 2,
		OnCell: func(scheme, env string, err error) {
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				t.Errorf("cell %s/%s failed: %v", scheme, env, err)
			}
			calls[CellKey{scheme, env}] = true
		},
	})
	if len(calls) != 4 {
		t.Fatalf("OnCell saw %d cells, want 4", len(calls))
	}
}

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pool.manifest")
	m, seen, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 0 {
		t.Fatalf("fresh manifest has %d entries", len(seen))
	}
	m.Record("cubic", "env-a", nil)
	m.Record("vegas", "env-a", errors.New("worker panic: boom"))
	m.Record("vegas", "env-a", nil) // later entries win
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, seen, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if seen[CellKey{"cubic", "env-a"}] != "ok" || seen[CellKey{"vegas", "env-a"}] != "ok" {
		t.Fatalf("manifest state = %v", seen)
	}
}

// TestManifestTornFinalLine: a crash mid-append tears the last line; the
// loader keeps every complete entry and ignores the tail.
func TestManifestTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pool.manifest")
	m, _, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	m.Record("cubic", "env-a", nil)
	m.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"scheme":"vegas","env":"en`) // torn: no closing brace/newline
	f.Close()

	m2, seen, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if len(seen) != 1 || seen[CellKey{"cubic", "env-a"}] != "ok" {
		t.Fatalf("torn manifest state = %v", seen)
	}
}

// TestPoolLoadDetectsCorruption: collector.Load reports corruption of the
// saved pool via safeio instead of a bare gzip/gob error.
func TestPoolLoadDetectsCorruption(t *testing.T) {
	pool := mustCollect(t, []string{"cubic"}, tinyScenarios()[:1], Options{Parallel: 2})
	path := filepath.Join(t.TempDir(), "pool.gob.gz")
	if err := pool.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	raw[len(raw)/3] ^= 0x10
	os.WriteFile(path, raw, 0o644)
	if _, err := Load(path); !errors.Is(err, safeio.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}
