package collector

import (
	"path/filepath"
	"testing"

	"sage/internal/gr"
	"sage/internal/netem"
	"sage/internal/sim"
)

func tinyScenarios() []netem.Scenario {
	setI := netem.SetI(netem.SetIOptions{Level: netem.GridTiny, Duration: 3 * sim.Second})[:2]
	setII := netem.SetII(netem.SetIIOptions{Level: netem.GridTiny, Duration: 5 * sim.Second})[:2]
	return append(setI, setII...)
}

func TestCollectBuildsPool(t *testing.T) {
	pool := Collect([]string{"cubic", "vegas"}, tinyScenarios(), Options{Parallel: 4})
	if len(pool.Trajs) != 8 {
		t.Fatalf("trajectories = %d", len(pool.Trajs))
	}
	if pool.Transitions() == 0 {
		t.Fatal("no transitions")
	}
	multi, single := 0, 0
	for _, tr := range pool.Trajs {
		if len(tr.Steps) == 0 {
			t.Fatalf("empty trajectory %s/%s", tr.Scheme, tr.Env)
		}
		if tr.MultiFlow {
			multi++
		} else {
			single++
		}
		for _, s := range tr.Steps {
			if len(s.State) != gr.StateDim {
				t.Fatalf("state dim %d", len(s.State))
			}
		}
	}
	if multi != 4 || single != 4 {
		t.Fatalf("multi=%d single=%d", multi, single)
	}
	if got := pool.Schemes(); len(got) != 2 {
		t.Fatalf("schemes = %v", got)
	}
}

func TestPoolFilters(t *testing.T) {
	pool := Collect([]string{"cubic", "vegas", "newreno"}, tinyScenarios()[:2], Options{Parallel: 4})
	f := pool.FilterSchemes("vegas")
	if len(f.Trajs) != 2 {
		t.Fatalf("filtered = %d", len(f.Trajs))
	}
	for _, tr := range f.Trajs {
		if tr.Scheme != "vegas" {
			t.Fatalf("leaked %s", tr.Scheme)
		}
	}
	w := pool.WinnersPerEnv()
	if len(w.Trajs) != 2 { // one winner per env
		t.Fatalf("winners = %d", len(w.Trajs))
	}
	for _, tr := range w.Trajs {
		for _, other := range pool.Trajs {
			if other.Env == tr.Env && other.Score > tr.Score {
				t.Fatalf("winner %s beaten by %s in %s", tr.Scheme, other.Scheme, tr.Env)
			}
		}
	}
	top := pool.TopSchemes(2)
	if len(top) == 0 || len(top) > 4 {
		t.Fatalf("top schemes = %v", top)
	}
}

func TestPoolSaveLoadRoundTrip(t *testing.T) {
	pool := Collect([]string{"cubic"}, tinyScenarios()[:1], Options{Parallel: 2})
	path := filepath.Join(t.TempDir(), "pool.gob.gz")
	if err := pool.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Transitions() != pool.Transitions() || len(got.Trajs) != len(pool.Trajs) {
		t.Fatalf("round trip mismatch: %d vs %d", got.Transitions(), pool.Transitions())
	}
	if got.Trajs[0].Scheme != "cubic" || got.Trajs[0].Score != pool.Trajs[0].Score {
		t.Fatal("trajectory metadata lost")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestMerge(t *testing.T) {
	a := Collect([]string{"cubic"}, tinyScenarios()[:1], Options{Parallel: 2})
	b := Collect([]string{"vegas"}, tinyScenarios()[1:2], Options{Parallel: 2})
	m := Merge(a, b)
	if len(m.Trajs) != 2 {
		t.Fatalf("merged = %d", len(m.Trajs))
	}
	if Merge().Transitions() != 0 {
		t.Fatal("empty merge")
	}
}

func TestCollectDeterministic(t *testing.T) {
	sc := tinyScenarios()[:1]
	p1 := Collect([]string{"cubic"}, sc, Options{Parallel: 1})
	p2 := Collect([]string{"cubic"}, sc, Options{Parallel: 3})
	if p1.Transitions() != p2.Transitions() {
		t.Fatalf("nondeterministic: %d vs %d", p1.Transitions(), p2.Transitions())
	}
	s1 := p1.Trajs[0].Steps
	s2 := p2.Trajs[0].Steps
	for i := range s1 {
		if s1[i].Action != s2[i].Action || s1[i].Reward != s2[i].Reward {
			t.Fatalf("step %d differs across parallelism", i)
		}
	}
}
